#ifndef VWISE_CATALOG_SCHEMA_H_
#define VWISE_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "vector/types.h"

namespace vwise {

// One column of a table. NULLable columns are physically stored as two
// columns (paper Sec. I-B): the value column (with a type-appropriate "safe"
// value in NULL slots) and a u8 indicator column placed in the same PAX
// group; the rewriter decomposes expressions accordingly.
struct ColumnDef {
  std::string name;
  DataType type;
  bool nullable = false;

  ColumnDef(std::string n, DataType t, bool null = false)
      : name(std::move(n)), type(t), nullable(null) {}
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Index of column `name`, or -1.
  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); i++) {
      if (columns_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  std::vector<TypeId> PhysicalTypes() const {
    std::vector<TypeId> out;
    out.reserve(columns_.size());
    for (const auto& c : columns_) out.push_back(c.type.physical());
    return out;
  }

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

// Assignment of columns to storage groups: each group is one I/O unit per
// stripe. Singleton groups give DSM (pure columnar); multi-column groups
// give PAX (columns co-located in a block). The hybrid is the paper's
// PAX/DSM storage [3].
struct ColumnGroups {
  std::vector<std::vector<uint32_t>> groups;

  // One group per column (DSM).
  static ColumnGroups Dsm(size_t num_columns) {
    ColumnGroups g;
    for (uint32_t i = 0; i < num_columns; i++) g.groups.push_back({i});
    return g;
  }
  // All columns in one group (full PAX).
  static ColumnGroups Pax(size_t num_columns) {
    ColumnGroups g;
    g.groups.emplace_back();
    for (uint32_t i = 0; i < num_columns; i++) g.groups[0].push_back(i);
    return g;
  }

  // Group containing column `col`.
  uint32_t GroupOf(uint32_t col) const {
    for (uint32_t g = 0; g < groups.size(); g++) {
      for (uint32_t c : groups[g]) {
        if (c == col) return g;
      }
    }
    VWISE_CHECK_MSG(false, "column not in any group");
    return 0;
  }
};

}  // namespace vwise

#endif  // VWISE_CATALOG_SCHEMA_H_
