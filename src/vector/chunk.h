#ifndef VWISE_VECTOR_CHUNK_H_
#define VWISE_VECTOR_CHUNK_H_

#include <vector>

#include "common/macros.h"
#include "common/value.h"
#include "vector/vector.h"

namespace vwise {

// A set of position-aligned Vectors plus cardinality and an optional
// selection vector — the unit flowing between vectorized operators.
//
// Semantics (X100):
//   * `count()` physical rows are valid in every column, positions [0,count).
//   * If a selection is set, only the positions listed in `sel()` (strictly
//     increasing, `sel_count()` of them) are active; the others are dead but
//     still occupy their slots, keeping all columns aligned without copying.
//   * Primitives read and write *at selected positions*, so a chunk can pass
//     through many operators without compaction. `Flatten()` compacts when a
//     consumer needs dense data (exchange boundaries, result sets).
class DataChunk {
 public:
  DataChunk() = default;

  void Init(const std::vector<TypeId>& types, size_t capacity) {
    capacity_ = capacity;
    columns_.clear();
    columns_.reserve(types.size());
    for (TypeId t : types) columns_.emplace_back(t, capacity);
    sel_buf_ = Buffer::Allocate(capacity * sizeof(sel_t));
    Reset();
  }

  size_t capacity() const { return capacity_; }
  size_t num_columns() const { return columns_.size(); }
  Vector& column(size_t i) { return columns_[i]; }
  const Vector& column(size_t i) const { return columns_[i]; }
  std::vector<Vector>& columns() { return columns_; }

  // Physical row count (positions valid in each column).
  size_t count() const { return count_; }
  void SetCount(size_t n) {
    VWISE_DCHECK(n <= capacity_);
    count_ = n;
  }

  bool has_selection() const { return has_sel_; }
  sel_t* MutableSel() { return sel_buf_->As<sel_t>(); }
  const sel_t* sel() const { return has_sel_ ? sel_buf_->As<sel_t>() : nullptr; }
  size_t sel_count() const { return sel_count_; }
  void SetSelection(size_t n) {
    VWISE_DCHECK(n <= count_);
    has_sel_ = true;
    sel_count_ = n;
  }
  void ClearSelection() {
    has_sel_ = false;
    sel_count_ = 0;
  }

  // Number of active (visible) rows.
  size_t ActiveCount() const { return has_sel_ ? sel_count_ : count_; }

  // Clears cardinality, selection and per-column heap references. Callers
  // reset a chunk before each refill so heap keepalives don't accumulate
  // across iterations.
  void Reset() {
    count_ = 0;
    has_sel_ = false;
    sel_count_ = 0;
    for (Vector& col : columns_) {
      col.ClearHeapRefs();
      col.ResetEncoding();
    }
  }

  // Decode-on-demand boundary for whole chunks: materializes every encoded
  // column into its flat buffer (see Vector::Normalize). Operators without
  // encoded paths call this once per input chunk before touching Data<T>().
  void NormalizeColumns() {
    for (Vector& col : columns_) {
      if (col.IsEncoded()) col.Normalize(count_);
    }
  }

  // Compacts all columns so active rows occupy positions [0, ActiveCount())
  // and drops the selection. Normalizes encoded columns first.
  void Flatten();

  // Value of active row `row` in column `col` (slow; API/test use only).
  // The DataType is needed to render decimals/dates; plain physical rendering
  // is used when `type` is null.
  Value GetValue(size_t col, size_t row, const DataType* type = nullptr) const;

 private:
  std::vector<Vector> columns_;
  size_t capacity_ = 0;
  size_t count_ = 0;
  bool has_sel_ = false;
  size_t sel_count_ = 0;
  std::shared_ptr<Buffer> sel_buf_;
};

}  // namespace vwise

#endif  // VWISE_VECTOR_CHUNK_H_
