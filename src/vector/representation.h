#ifndef VWISE_VECTOR_REPRESENTATION_H_
#define VWISE_VECTOR_REPRESENTATION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "vector/string_heap.h"
#include "vector/types.h"

namespace vwise {

// Physical representation of the values inside a Vector, orthogonal to the
// logical/physical value type. Compressed execution (DESIGN.md §12) lets the
// scan hand storage encodings straight through to the executor; primitives
// that declare a capability for a representation (the catalog's caps column)
// consume it directly, everything else lands on Vector::Normalize(), which
// decodes into the flat layout on demand.
enum class VectorRepr : uint8_t {
  kFlat = 0,  // plain array of values — the only representation before PR 9
  kDict = 1,  // per-row uint32 codes into a shared string dictionary (PDICT)
  kRle = 2,   // run values + run start offsets (RLE); rows are implicit
};

const char* VectorReprToString(VectorRepr r);

// Capability bitmask: which representations a primitive (or an operator
// edge, in the plan verifier) accepts without normalization. These feed the
// catalog's 5th column and PlanProperties::reprs; every mask must include
// kReprFlat — Normalize() is always a legal landing.
inline constexpr uint8_t kReprFlat = 1u << 0;
inline constexpr uint8_t kReprDict = 1u << 1;
inline constexpr uint8_t kReprRle = 1u << 2;

std::string ReprMaskToString(uint8_t mask);

// Shared dictionary behind a kDict vector: the distinct values of one
// storage segment. The StringVals point into `heap`; both are shared by
// every chunk sliced out of the segment, so constant→code translations can
// be cached per dictionary identity (pointer equality).
struct StringDict {
  const StringVal* values = nullptr;  // `size` entries, storage order
  uint32_t size = 0;
  std::shared_ptr<StringHeap> heap;          // bytes backing `values`
  std::shared_ptr<const void> keepalive;     // owns the values array itself
};

// Code value guaranteed to equal no dictionary code (codes are dense indexes
// < dict size < 2^32-1). Constant→code translation returns this when the
// constant is absent from the dictionary, so sel_eq matches nothing and
// sel_ne passes every row without a special case in the kernel.
inline constexpr uint32_t kDictCodeNotFound = 0xFFFFFFFFu;

}  // namespace vwise

#endif  // VWISE_VECTOR_REPRESENTATION_H_
