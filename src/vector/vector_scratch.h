#ifndef VWISE_VECTOR_VECTOR_SCRATCH_H_
#define VWISE_VECTOR_VECTOR_SCRATCH_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/thread_annotations.h"

namespace vwise {

class VectorScratch;

// RAII lease on a scratch buffer: returns it to the arena's free list on
// destruction (or Release()). Holding operators keep handles as members, so
// the buffer stays theirs from OpenImpl to Close without any per-vector
// arena traffic.
class ScratchHandle {
 public:
  ScratchHandle() = default;
  ScratchHandle(ScratchHandle&& other) noexcept { *this = std::move(other); }
  ScratchHandle& operator=(ScratchHandle&& other) noexcept {
    Release();
    arena_ = other.arena_;
    buf_ = std::move(other.buf_);
    other.arena_ = nullptr;
    return *this;
  }
  ScratchHandle(const ScratchHandle&) = delete;
  ScratchHandle& operator=(const ScratchHandle&) = delete;
  ~ScratchHandle() { Release(); }

  // Hands the buffer back to the arena; the handle becomes empty.
  void Release();

  bool empty() const { return buf_ == nullptr; }
  size_t capacity_bytes() const { return buf_ ? buf_->capacity() : 0; }
  template <typename T>
  T* data() {
    return buf_->As<T>();
  }
  template <typename T>
  const T* data() const {
    return buf_->As<T>();
  }

 private:
  friend class VectorScratch;
  ScratchHandle(VectorScratch* arena, std::shared_ptr<Buffer> buf)
      : arena_(arena), buf_(std::move(buf)) {}

  VectorScratch* arena_ = nullptr;
  std::shared_ptr<Buffer> buf_;
};

// Per-query pool of reusable scratch buffers, owned by QueryContext. The
// operators of a query acquire their per-vector working arrays (hash
// scratch, gather index arrays, selection merge buffers) here at Open time
// instead of allocating privately, so
//
//   * re-running a prepared query or reopening an operator tree reuses the
//     same buffers — steady state does not touch the system allocator;
//   * scratch peaks are visible in one place (allocated_bytes) instead of
//     being smeared across operator members.
//
// Buffers are size-classed by power of two. Acquire/Release are
// mutex-guarded — cheap and cold: operators call them in OpenImpl/Close,
// never inside Next() (the hot-path analyzer enforces this; the lock lines
// below carry the corresponding escape rationales).
class VectorScratch {
 public:
  VectorScratch() = default;
  VectorScratch(const VectorScratch&) = delete;
  VectorScratch& operator=(const VectorScratch&) = delete;

  // Leases a buffer of at least `min_bytes` (rounded up to the size class),
  // reusing a pooled one when available.
  ScratchHandle Acquire(size_t min_bytes);

  // Convenience: a lease sized for `count` elements of T.
  template <typename T>
  ScratchHandle AcquireArray(size_t count) {
    return Acquire(count * sizeof(T));
  }

  // --- observability (tests, EXPLAIN ANALYZE) -------------------------------
  // Bytes ever allocated through this arena.
  size_t allocated_bytes() const;
  // Acquire calls served from the pool without allocating.
  size_t reuse_hits() const;
  // Buffers currently pooled (not leased out).
  size_t pooled_buffers() const;

 private:
  friend class ScratchHandle;
  void Recycle(std::shared_ptr<Buffer> buf);

  mutable Mutex mu_;
  // Free lists indexed by log2(size class).
  std::vector<std::vector<std::shared_ptr<Buffer>>> free_ VWISE_GUARDED_BY(mu_);
  size_t allocated_bytes_ VWISE_GUARDED_BY(mu_) = 0;
  size_t reuse_hits_ VWISE_GUARDED_BY(mu_) = 0;
};

}  // namespace vwise

#endif  // VWISE_VECTOR_VECTOR_SCRATCH_H_
