#include "vector/vector_scratch.h"

#include "common/bitutil.h"

namespace vwise {

namespace {

size_t SizeClass(size_t bytes) {
  size_t size = bit::NextPowerOfTwo(bytes < 64 ? 64 : bytes);
  size_t log2 = 0;
  while ((size_t{1} << log2) < size) log2++;
  return log2;
}

}  // namespace

ScratchHandle VectorScratch::Acquire(size_t min_bytes) {
  size_t cls = SizeClass(min_bytes);
  {
    // vwise-hotpath: allow(lock): Acquire runs in OpenImpl, once per query,
    // never inside Next()
    MutexLock lock(&mu_);
    if (cls < free_.size() && !free_[cls].empty()) {
      std::shared_ptr<Buffer> buf = std::move(free_[cls].back());
      free_[cls].pop_back();
      reuse_hits_++;
      return ScratchHandle(this, std::move(buf));
    }
    allocated_bytes_ += size_t{1} << cls;
  }
  return ScratchHandle(this, Buffer::Allocate(size_t{1} << cls));
}

// vwise-hotpath: allow(lock): Recycle runs from Close/teardown, never
// inside Next()
// vwise-hotpath: allow(alloc): the free-list push is bounded by the number
// of handles a query ever held; it runs at operator Close, off the per-
// vector path
void VectorScratch::Recycle(std::shared_ptr<Buffer> buf) {
  size_t cls = SizeClass(buf->capacity());
  MutexLock lock(&mu_);
  if (free_.size() <= cls) free_.resize(cls + 1);
  free_[cls].push_back(std::move(buf));
}

size_t VectorScratch::allocated_bytes() const {
  MutexLock lock(&mu_);
  return allocated_bytes_;
}

size_t VectorScratch::reuse_hits() const {
  MutexLock lock(&mu_);
  return reuse_hits_;
}

size_t VectorScratch::pooled_buffers() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& cls : free_) n += cls.size();
  return n;
}

void ScratchHandle::Release() {
  if (arena_ != nullptr && buf_ != nullptr) {
    arena_->Recycle(std::move(buf_));
  }
  arena_ = nullptr;
  buf_ = nullptr;
}

}  // namespace vwise
