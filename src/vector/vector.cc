#include "vector/vector.h"

#include <cstring>

#include "vector/representation.h"

namespace vwise {

const char* VectorReprToString(VectorRepr r) {
  switch (r) {
    case VectorRepr::kFlat:
      return "flat";
    case VectorRepr::kDict:
      return "dict";
    case VectorRepr::kRle:
      return "rle";
  }
  return "?";
}

std::string ReprMaskToString(uint8_t mask) {
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) out += "|";
    out += name;
  };
  if (mask & kReprFlat) add("flat");
  if (mask & kReprDict) add("dict");
  if (mask & kReprRle) add("rle");
  if (out.empty()) out = "none";
  return out;
}

namespace {

template <typename T>
void ExpandRuns(const T* run_vals, const uint32_t* starts, uint32_t n_runs,
                size_t n, T* out) {
  for (uint32_t r = 0; r < n_runs; r++) {
    T v = run_vals[r];
    size_t end = starts[r + 1] < n ? starts[r + 1] : n;
    for (size_t i = starts[r]; i < end; i++) out[i] = v;
  }
}

}  // namespace

void Vector::Normalize(size_t n) {
  switch (repr_) {
    case VectorRepr::kFlat:
      return;
    case VectorRepr::kDict: {
      VWISE_DCHECK(n <= capacity_);
      const StringDict* d = dict_.get();
      VWISE_DCHECK(d != nullptr && dict_codes_ != nullptr);
      StringVal* out = buffer_->As<StringVal>();
      for (size_t i = 0; i < n; i++) {
        VWISE_DCHECK(dict_codes_[i] < d->size);
        out[i] = d->values[dict_codes_[i]];
      }
      // The materialized StringVals point into the dictionary heap; pin it
      // like any other string source so the bytes outlive the dict view.
      if (d->heap != nullptr) AddStringHeapRef(d->heap);
      break;
    }
    case VectorRepr::kRle: {
      VWISE_DCHECK(n <= capacity_);
      VWISE_DCHECK(rle_values_ != nullptr && rle_starts_ != nullptr);
      switch (type_) {
        case TypeId::kU8:
          ExpandRuns(rle_values<uint8_t>(), rle_starts_, rle_runs_, n,
                     buffer_->As<uint8_t>());
          break;
        case TypeId::kI32:
          ExpandRuns(rle_values<int32_t>(), rle_starts_, rle_runs_, n,
                     buffer_->As<int32_t>());
          break;
        case TypeId::kI64:
          ExpandRuns(rle_values<int64_t>(), rle_starts_, rle_runs_, n,
                     buffer_->As<int64_t>());
          break;
        case TypeId::kF64:
          ExpandRuns(rle_values<double>(), rle_starts_, rle_runs_, n,
                     buffer_->As<double>());
          break;
        case TypeId::kStr:
          VWISE_CHECK_MSG(false, "RLE representation on a string vector");
      }
      break;
    }
  }
  repr_ = VectorRepr::kFlat;
  dict_codes_ = nullptr;
  dict_.reset();
  rle_values_ = nullptr;
  rle_starts_ = nullptr;
  rle_runs_ = 0;
  enc_keepalive_.reset();
}

}  // namespace vwise
