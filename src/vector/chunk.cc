#include "vector/chunk.h"

#include <cstring>

#include "common/date.h"

namespace vwise {

namespace {

template <typename T>
void CompactColumn(Vector* col, const sel_t* sel, size_t n, size_t capacity) {
  Vector dense(col->type(), capacity);
  const T* src = col->Data<T>();
  T* dst = dense.Data<T>();
  for (size_t i = 0; i < n; i++) dst[i] = src[sel[i]];
  dense.AddHeapsFrom(*col);
  // Keep the source buffer alive via the keepalive chain: string vectors may
  // point into the old buffer's heap; value copies are by value so only the
  // heap matters, which we carried over above.
  *col = std::move(dense);
}

}  // namespace

void DataChunk::Flatten() {
  NormalizeColumns();
  if (!has_sel_) return;
  const sel_t* s = sel();
  for (Vector& col : columns_) {
    switch (col.type()) {
      case TypeId::kU8:
        CompactColumn<uint8_t>(&col, s, sel_count_, capacity_);
        break;
      case TypeId::kI32:
        CompactColumn<int32_t>(&col, s, sel_count_, capacity_);
        break;
      case TypeId::kI64:
        CompactColumn<int64_t>(&col, s, sel_count_, capacity_);
        break;
      case TypeId::kF64:
        CompactColumn<double>(&col, s, sel_count_, capacity_);
        break;
      case TypeId::kStr:
        CompactColumn<StringVal>(&col, s, sel_count_, capacity_);
        break;
    }
  }
  count_ = sel_count_;
  ClearSelection();
}

Value DataChunk::GetValue(size_t col, size_t row, const DataType* type) const {
  VWISE_CHECK(col < columns_.size() && row < ActiveCount());
  size_t pos = has_sel_ ? sel()[row] : row;
  const Vector& v = columns_[col];
  // Encoded views are readable without mutating the (const) chunk.
  if (v.repr() == VectorRepr::kDict) {
    const StringDict* d = v.dict();
    uint32_t code = v.dict_codes()[pos];
    VWISE_CHECK(d != nullptr && code < d->size);
    return Value::String(d->values[code].ToString());
  }
  if (v.repr() == VectorRepr::kRle) {
    const uint32_t* starts = v.rle_starts();
    uint32_t run = 0;
    while (run + 1 < v.rle_runs() && starts[run + 1] <= pos) run++;
    switch (v.type()) {
      case TypeId::kU8:
        return Value::Int(v.rle_values<uint8_t>()[run]);
      case TypeId::kI32: {
        int32_t x = v.rle_values<int32_t>()[run];
        if (type != nullptr && type->kind == LType::kDate) {
          return Value::String(date::ToString(x));
        }
        return Value::Int(x);
      }
      case TypeId::kI64:
        return Value::Int(v.rle_values<int64_t>()[run]);
      case TypeId::kF64:
        return Value::Double(v.rle_values<double>()[run]);
      case TypeId::kStr:
        break;  // unreachable: RLE is numeric-only
    }
    return Value::Null();
  }
  switch (v.type()) {
    case TypeId::kU8:
      return Value::Int(v.Data<uint8_t>()[pos]);
    case TypeId::kI32: {
      int32_t x = v.Data<int32_t>()[pos];
      if (type != nullptr && type->kind == LType::kDate) {
        return Value::String(date::ToString(x));
      }
      return Value::Int(x);
    }
    case TypeId::kI64:
      return Value::Int(v.Data<int64_t>()[pos]);
    case TypeId::kF64:
      return Value::Double(v.Data<double>()[pos]);
    case TypeId::kStr:
      return Value::String(v.Data<StringVal>()[pos].ToString());
  }
  return Value::Null();
}

}  // namespace vwise
