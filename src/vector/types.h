#ifndef VWISE_VECTOR_TYPES_H_
#define VWISE_VECTOR_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace vwise {

// Physical representation of a value inside a Vector. Execution primitives
// are instantiated per physical type; logical types (below) map onto these.
enum class TypeId : uint8_t {
  kU8 = 0,   // bool / NULL indicator
  kI32 = 1,  // int32 / date (days since 1970-01-01)
  kI64 = 2,  // int64 / decimal (scaled integer)
  kF64 = 3,  // double
  kStr = 4,  // StringVal (pointer + length)
};

// Non-owning string reference. The bytes live either in storage-owned
// buffers (stable for the pin duration) or in a StringHeap kept alive by the
// Vector that holds the StringVal.
struct StringVal {
  const char* ptr = nullptr;
  uint32_t len = 0;

  StringVal() = default;
  StringVal(const char* p, uint32_t l) : ptr(p), len(l) {}
  explicit StringVal(std::string_view sv)
      : ptr(sv.data()), len(static_cast<uint32_t>(sv.size())) {}

  std::string_view view() const { return std::string_view(ptr, len); }
  std::string ToString() const { return std::string(ptr, len); }

  friend bool operator==(const StringVal& a, const StringVal& b) {
    return a.len == b.len && (a.len == 0 || std::memcmp(a.ptr, b.ptr, a.len) == 0);
  }
  friend bool operator!=(const StringVal& a, const StringVal& b) {
    return !(a == b);
  }
  friend bool operator<(const StringVal& a, const StringVal& b) {
    return a.view() < b.view();
  }
  friend bool operator<=(const StringVal& a, const StringVal& b) {
    return a.view() <= b.view();
  }
  friend bool operator>(const StringVal& a, const StringVal& b) {
    return a.view() > b.view();
  }
  friend bool operator>=(const StringVal& a, const StringVal& b) {
    return a.view() >= b.view();
  }
};

// Byte width of one value of physical type `t`.
inline size_t TypeWidth(TypeId t) {
  switch (t) {
    case TypeId::kU8:
      return 1;
    case TypeId::kI32:
      return 4;
    case TypeId::kI64:
      return 8;
    case TypeId::kF64:
      return 8;
    case TypeId::kStr:
      return sizeof(StringVal);
  }
  return 0;
}

const char* TypeIdToString(TypeId t);

// Logical (SQL-facing) type. Decimals are fixed-point scaled int64; dates are
// day numbers. NULLability is a column property (catalog), not a type
// property: per the paper, NULLable columns are physically (value, indicator)
// pairs and execution primitives stay NULL-oblivious.
enum class LType : uint8_t {
  kBool = 0,
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kDecimal = 4,  // int64 scaled by 10^scale
  kDate = 5,     // int32 days since epoch
  kVarchar = 6,
};

struct DataType {
  LType kind = LType::kInt64;
  uint8_t scale = 0;  // decimal digits after the point (kDecimal only)

  DataType() = default;
  DataType(LType k, uint8_t s = 0) : kind(k), scale(s) {}  // NOLINT

  static DataType Bool() { return DataType(LType::kBool); }
  static DataType Int32() { return DataType(LType::kInt32); }
  static DataType Int64() { return DataType(LType::kInt64); }
  static DataType Double() { return DataType(LType::kDouble); }
  static DataType Decimal(uint8_t scale) { return DataType(LType::kDecimal, scale); }
  static DataType Date() { return DataType(LType::kDate); }
  static DataType Varchar() { return DataType(LType::kVarchar); }

  TypeId physical() const {
    switch (kind) {
      case LType::kBool:
        return TypeId::kU8;
      case LType::kInt32:
      case LType::kDate:
        return TypeId::kI32;
      case LType::kInt64:
      case LType::kDecimal:
        return TypeId::kI64;
      case LType::kDouble:
        return TypeId::kF64;
      case LType::kVarchar:
        return TypeId::kStr;
    }
    return TypeId::kI64;
  }

  std::string ToString() const;

  friend bool operator==(const DataType& a, const DataType& b) {
    return a.kind == b.kind && a.scale == b.scale;
  }
};

// Index type of selection vectors (X100-style: positions into a vector).
using sel_t = uint32_t;

}  // namespace vwise

#endif  // VWISE_VECTOR_TYPES_H_
