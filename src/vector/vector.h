#ifndef VWISE_VECTOR_VECTOR_H_
#define VWISE_VECTOR_VECTOR_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/macros.h"
#include "vector/string_heap.h"
#include "vector/types.h"

namespace vwise {

// A fixed-capacity, typed array of values — the unit of data flow in the
// vectorized engine. A Vector owns (or shares) its value buffer; for string
// vectors it additionally keeps alive the heap (or storage pin) backing the
// string bytes.
//
// Vectors do not track their own length or selection: length and the
// optional selection vector live on the enclosing DataChunk, because all
// columns of a chunk are position-aligned (X100 semantics).
class Vector {
 public:
  Vector() = default;
  Vector(TypeId type, size_t capacity) { Init(type, capacity); }

  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;
  Vector(const Vector&) = default;  // shallow: shares the buffer
  Vector& operator=(const Vector&) = default;

  void Init(TypeId type, size_t capacity) {
    type_ = type;
    capacity_ = capacity;
    buffer_ = Buffer::Allocate(capacity * TypeWidth(type));
    keepalive_.reset();
    heaps_.clear();
  }

  TypeId type() const { return type_; }
  size_t capacity() const { return capacity_; }

  template <typename T>
  T* Data() {
    VWISE_DCHECK(buffer_ != nullptr);
    return buffer_->As<T>();
  }
  template <typename T>
  const T* Data() const {
    VWISE_DCHECK(buffer_ != nullptr);
    return buffer_->As<T>();
  }
  void* raw() { return buffer_ ? buffer_->data() : nullptr; }
  const void* raw() const { return buffer_ ? buffer_->data() : nullptr; }

  // Makes this vector an alias of `other` (zero-copy projection).
  void Reference(const Vector& other) {
    type_ = other.type_;
    capacity_ = other.capacity_;
    buffer_ = other.buffer_;
    keepalive_ = other.keepalive_;
    heaps_ = other.heaps_;
  }

  // Returns a lazily-created heap for computed string values; the heap is
  // kept alive as long as this vector (or anything referencing it) lives.
  //
  // The heap is cached across ClearHeapRefs() cycles: when no downstream
  // reference survives (use_count() == 1 — the chunk data contract makes
  // outputs valid only until the next Next()), the owned heap is Reset() and
  // reused, so steady-state string production allocates nothing. A consumer
  // still holding the previous chunk's heap forces one fresh allocation.
  StringHeap* GetStringHeap() {
    if (heaps_.empty()) {
      if (own_heap_ != nullptr && own_heap_.use_count() == 1) {
        own_heap_->Reset();
      } else {
        // vwise-hotpath: allow(alloc): first use, or the previous heap is
        // still referenced downstream; steady state reuses own_heap_
        own_heap_ = std::make_shared<StringHeap>();
      }
      // vwise-hotpath: allow(alloc): heaps_ capacity survives ClearHeapRefs
      // (clear() keeps it), so the steady-state push_back reuses it
      heaps_.push_back(own_heap_);
    }
    return heaps_.front().get();
  }

  // Attaches an arbitrary keepalive (e.g. a buffer-pool pin) backing the
  // values of this vector.
  void SetKeepalive(std::shared_ptr<const void> keepalive) {
    keepalive_ = std::move(keepalive);
  }
  bool has_keepalive() const { return keepalive_ != nullptr; }

  // Registers a heap whose bytes this vector's StringVals may point into.
  // A vector can reference several heaps (e.g. stable storage strings plus
  // delta-row strings in one scan chunk).
  void AddStringHeapRef(std::shared_ptr<StringHeap> heap) {
    for (const auto& h : heaps_) {
      if (h == heap) return;
    }
    // vwise-hotpath: allow(alloc): bounded by the number of heap sources per
    // chunk (typically <= 2); capacity survives ClearHeapRefs and is reused
    heaps_.push_back(std::move(heap));
  }
  // Carries every heap reference of `other` over to this vector.
  void AddHeapsFrom(const Vector& other) {
    for (const auto& h : other.heaps_) AddStringHeapRef(h);
  }
  // Drops heap references (chunk reuse between fills).
  void ClearHeapRefs() { heaps_.clear(); }
  // First registered heap (null if none) — kept for compaction helpers.
  std::shared_ptr<StringHeap> string_heap() const {
    return heaps_.empty() ? nullptr : heaps_.front();
  }
  const std::vector<std::shared_ptr<StringHeap>>& heaps() const { return heaps_; }

 private:
  TypeId type_ = TypeId::kI64;
  size_t capacity_ = 0;
  std::shared_ptr<Buffer> buffer_;
  std::shared_ptr<const void> keepalive_;
  std::vector<std::shared_ptr<StringHeap>> heaps_;
  // Cached owned heap, reused across ClearHeapRefs() cycles once downstream
  // references drain (see GetStringHeap).
  std::shared_ptr<StringHeap> own_heap_;
};

}  // namespace vwise

#endif  // VWISE_VECTOR_VECTOR_H_
