#ifndef VWISE_VECTOR_VECTOR_H_
#define VWISE_VECTOR_VECTOR_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/macros.h"
#include "vector/representation.h"
#include "vector/string_heap.h"
#include "vector/types.h"

namespace vwise {

// A fixed-capacity, typed array of values — the unit of data flow in the
// vectorized engine. A Vector owns (or shares) its value buffer; for string
// vectors it additionally keeps alive the heap (or storage pin) backing the
// string bytes.
//
// Vectors do not track their own length or selection: length and the
// optional selection vector live on the enclosing DataChunk, because all
// columns of a chunk are position-aligned (X100 semantics).
//
// A vector additionally carries a physical representation (VectorRepr).
// kFlat is the classic layout above. Under compressed execution the scan
// may instead publish kDict (per-row codes + shared dictionary) or kRle
// (run values + run starts) views; the flat buffer stays allocated but
// unfilled until Normalize(n) decodes into it on demand. Consumers either
// declare a capability for the representation (catalog caps column) or call
// Normalize() — reading Data<T>() of a non-flat vector is a bug, and the
// contract checker rejects it.
class Vector {
 public:
  Vector() = default;
  Vector(TypeId type, size_t capacity) { Init(type, capacity); }

  Vector(Vector&&) = default;
  Vector& operator=(Vector&&) = default;
  Vector(const Vector&) = default;  // shallow: shares the buffer
  Vector& operator=(const Vector&) = default;

  void Init(TypeId type, size_t capacity) {
    type_ = type;
    capacity_ = capacity;
    buffer_ = Buffer::Allocate(capacity * TypeWidth(type));
    keepalive_.reset();
    heaps_.clear();
    ResetEncoding();
  }

  TypeId type() const { return type_; }
  size_t capacity() const { return capacity_; }

  template <typename T>
  T* Data() {
    VWISE_DCHECK(buffer_ != nullptr);
    return buffer_->As<T>();
  }
  template <typename T>
  const T* Data() const {
    VWISE_DCHECK(buffer_ != nullptr);
    return buffer_->As<T>();
  }
  void* raw() { return buffer_ ? buffer_->data() : nullptr; }
  const void* raw() const { return buffer_ ? buffer_->data() : nullptr; }

  // Makes this vector an alias of `other` (zero-copy projection). Carries
  // the representation along: an alias of an encoded vector is encoded.
  void Reference(const Vector& other) {
    type_ = other.type_;
    capacity_ = other.capacity_;
    buffer_ = other.buffer_;
    keepalive_ = other.keepalive_;
    heaps_ = other.heaps_;
    repr_ = other.repr_;
    dict_codes_ = other.dict_codes_;
    dict_ = other.dict_;
    rle_values_ = other.rle_values_;
    rle_starts_ = other.rle_starts_;
    rle_runs_ = other.rle_runs_;
    enc_keepalive_ = other.enc_keepalive_;
  }

  // Returns a lazily-created heap for computed string values; the heap is
  // kept alive as long as this vector (or anything referencing it) lives.
  //
  // The heap is cached across ClearHeapRefs() cycles: when no downstream
  // reference survives (use_count() == 1 — the chunk data contract makes
  // outputs valid only until the next Next()), the owned heap is Reset() and
  // reused, so steady-state string production allocates nothing. A consumer
  // still holding the previous chunk's heap forces one fresh allocation.
  StringHeap* GetStringHeap() {
    if (heaps_.empty()) {
      if (own_heap_ != nullptr && own_heap_.use_count() == 1) {
        own_heap_->Reset();
      } else {
        // vwise-hotpath: allow(alloc): first use, or the previous heap is
        // still referenced downstream; steady state reuses own_heap_
        own_heap_ = std::make_shared<StringHeap>();
      }
      // vwise-hotpath: allow(alloc): heaps_ capacity survives ClearHeapRefs
      // (clear() keeps it), so the steady-state push_back reuses it
      heaps_.push_back(own_heap_);
    }
    return heaps_.front().get();
  }

  // Attaches an arbitrary keepalive (e.g. a buffer-pool pin) backing the
  // values of this vector.
  void SetKeepalive(std::shared_ptr<const void> keepalive) {
    keepalive_ = std::move(keepalive);
  }
  bool has_keepalive() const { return keepalive_ != nullptr; }

  // Registers a heap whose bytes this vector's StringVals may point into.
  // A vector can reference several heaps (e.g. stable storage strings plus
  // delta-row strings in one scan chunk).
  void AddStringHeapRef(std::shared_ptr<StringHeap> heap) {
    for (const auto& h : heaps_) {
      if (h == heap) return;
    }
    // vwise-hotpath: allow(alloc): bounded by the number of heap sources per
    // chunk (typically <= 2); capacity survives ClearHeapRefs and is reused
    heaps_.push_back(std::move(heap));
  }
  // Carries every heap reference of `other` over to this vector.
  void AddHeapsFrom(const Vector& other) {
    for (const auto& h : other.heaps_) AddStringHeapRef(h);
  }
  // Drops heap references (chunk reuse between fills).
  void ClearHeapRefs() { heaps_.clear(); }
  // First registered heap (null if none) — kept for compaction helpers.
  std::shared_ptr<StringHeap> string_heap() const {
    return heaps_.empty() ? nullptr : heaps_.front();
  }
  const std::vector<std::shared_ptr<StringHeap>>& heaps() const { return heaps_; }

  // --- Physical representation (compressed execution) ----------------------

  VectorRepr repr() const { return repr_; }
  bool IsEncoded() const { return repr_ != VectorRepr::kFlat; }

  // Publishes a PDICT view: `codes[i]` indexes `dict->values` for the rows
  // of the enclosing chunk. `keepalive` owns the code storage. Only valid on
  // kStr vectors.
  void SetDict(const uint32_t* codes, std::shared_ptr<const StringDict> dict,
               std::shared_ptr<const void> keepalive) {
    VWISE_DCHECK(type_ == TypeId::kStr);
    repr_ = VectorRepr::kDict;
    dict_codes_ = codes;
    dict_ = std::move(dict);
    enc_keepalive_ = std::move(keepalive);
    rle_values_ = nullptr;
    rle_starts_ = nullptr;
    rle_runs_ = 0;
  }

  // Publishes an RLE view: run r holds `values[r]` (physical type of this
  // vector) for chunk positions [starts[r], starts[r+1]); starts[0] == 0 and
  // starts[n_runs] covers the chunk count. `keepalive` owns both arrays.
  void SetRle(const void* values, const uint32_t* starts, uint32_t n_runs,
              std::shared_ptr<const void> keepalive) {
    VWISE_DCHECK(type_ != TypeId::kStr);
    repr_ = VectorRepr::kRle;
    rle_values_ = values;
    rle_starts_ = starts;
    rle_runs_ = n_runs;
    enc_keepalive_ = std::move(keepalive);
    dict_codes_ = nullptr;
    dict_.reset();
  }

  // Back to the flat representation without decoding (chunk reuse between
  // fills — the flat buffer is about to be overwritten anyway).
  void ResetEncoding() {
    repr_ = VectorRepr::kFlat;
    dict_codes_ = nullptr;
    dict_.reset();
    rle_values_ = nullptr;
    rle_starts_ = nullptr;
    rle_runs_ = 0;
    enc_keepalive_.reset();
  }

  const uint32_t* dict_codes() const { return dict_codes_; }
  const StringDict* dict() const { return dict_.get(); }
  // For consumers caching per-dictionary state (constant→code translations):
  // holding the shared_ptr pins the object so pointer identity stays sound —
  // a freed dictionary's address can otherwise be recycled by the next
  // stripe's (different) dictionary.
  const std::shared_ptr<const StringDict>& dict_ref() const { return dict_; }
  template <typename T>
  const T* rle_values() const {
    return static_cast<const T*>(rle_values_);
  }
  const uint32_t* rle_starts() const { return rle_starts_; }
  uint32_t rle_runs() const { return rle_runs_; }

  // Decode-on-demand boundary: materializes the first `n` rows into the flat
  // buffer and drops the encoded view. No-op on flat vectors. Aliases of
  // this vector keep their encoded view; since both views describe the same
  // logical content and the flat buffer is shared, a later Normalize() of an
  // alias rewrites identical values (idempotent).
  void Normalize(size_t n);

 private:
  TypeId type_ = TypeId::kI64;
  size_t capacity_ = 0;
  std::shared_ptr<Buffer> buffer_;
  std::shared_ptr<const void> keepalive_;
  std::vector<std::shared_ptr<StringHeap>> heaps_;
  // Cached owned heap, reused across ClearHeapRefs() cycles once downstream
  // references drain (see GetStringHeap).
  std::shared_ptr<StringHeap> own_heap_;

  // Encoded-view state (meaningful when repr_ != kFlat). The raw pointers
  // point into storage owned by dict_/enc_keepalive_, so aliasing vectors
  // stay valid past the producer's next fill.
  VectorRepr repr_ = VectorRepr::kFlat;
  const uint32_t* dict_codes_ = nullptr;
  std::shared_ptr<const StringDict> dict_;
  const void* rle_values_ = nullptr;
  const uint32_t* rle_starts_ = nullptr;
  uint32_t rle_runs_ = 0;
  std::shared_ptr<const void> enc_keepalive_;
};

}  // namespace vwise

#endif  // VWISE_VECTOR_VECTOR_H_
