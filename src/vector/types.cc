#include "vector/types.h"

namespace vwise {

const char* TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kU8:
      return "u8";
    case TypeId::kI32:
      return "i32";
    case TypeId::kI64:
      return "i64";
    case TypeId::kF64:
      return "f64";
    case TypeId::kStr:
      return "str";
  }
  return "?";
}

std::string DataType::ToString() const {
  switch (kind) {
    case LType::kBool:
      return "BOOL";
    case LType::kInt32:
      return "INT32";
    case LType::kInt64:
      return "INT64";
    case LType::kDouble:
      return "DOUBLE";
    case LType::kDecimal:
      return "DECIMAL(" + std::to_string(static_cast<int>(scale)) + ")";
    case LType::kDate:
      return "DATE";
    case LType::kVarchar:
      return "VARCHAR";
  }
  return "?";
}

}  // namespace vwise
