#ifndef VWISE_VECTOR_STRING_HEAP_H_
#define VWISE_VECTOR_STRING_HEAP_H_

#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/macros.h"
#include "vector/types.h"

namespace vwise {

// Arena for string bytes produced during execution (concatenation, substring,
// decompression of string columns, ...). Vectors holding StringVals into a
// heap keep a shared_ptr to it so the bytes outlive the producing operator.
//
// Hot-path contract: steady-state production reuses the buffers already
// owned by the heap — the producing operator calls Reset() once per vector
// (when it is the sole owner, see Vector::GetStringHeap) and Reserve()'s
// fast path is then pure pointer arithmetic. Allocation happens only during
// warm-up or when a chunk's string volume outgrows every previous chunk.
class StringHeap {
 public:
  static constexpr size_t kChunkSize = 64 * 1024;

  StringHeap() = default;
  StringHeap(const StringHeap&) = delete;
  StringHeap& operator=(const StringHeap&) = delete;

  // Copies `sv` into the arena and returns a StringVal pointing at the copy.
  StringVal Add(std::string_view sv) {
    char* dst = Reserve(sv.size());
    // Empty views may carry a null data() (e.g. zero-filled padding values
    // from outer joins); memcpy requires non-null sources even for n == 0.
    if (!sv.empty()) std::memcpy(dst, sv.data(), sv.size());
    return StringVal(dst, static_cast<uint32_t>(sv.size()));
  }

  // Reserves `n` writable bytes in the arena.
  char* Reserve(size_t n) {
    // chunks_.empty() guards the fresh arena: a first reservation of zero
    // bytes satisfies used_ + n <= cap_ (all zero) yet has no chunk to
    // point into.
    if (VWISE_UNLIKELY(chunks_.empty() || used_ + n > cap_)) {
      Grow(n);
    }
    char* p = chunks_.back()->As<char>() + used_;
    used_ += n;
    return p;
  }

  // Rewinds the arena so subsequent Add/Reserve calls reuse the owned
  // buffers instead of allocating. Invalidates every StringVal previously
  // handed out — callers must hold the heap uniquely (use_count() == 1; the
  // chunk data contract makes outputs valid only until the next Next()).
  //
  // A heap that has sprawled over several chunks is coalesced into a single
  // buffer sized for everything it held, so a workload whose per-vector
  // string volume has stabilized performs zero allocations from the second
  // vector on.
  void Reset() {
    if (chunks_.size() > 1) {
      size_t total = bytes_used();
      size_t size = total > kChunkSize ? total : kChunkSize;
      chunks_.clear();
      // vwise-hotpath: allow(alloc): coalescing runs only after the previous
      // vector overflowed into extra chunks; the single right-sized buffer
      // makes every later Reset allocation-free
      chunks_.push_back(Buffer::Allocate(size));
      cap_ = size;
    }
    used_ = 0;
  }

  // Total bytes handed out; used by execution statistics.
  size_t bytes_used() const {
    size_t total = used_;
    for (size_t i = 0; i + 1 < chunks_.size(); i++) total += chunks_[i]->capacity();
    return total;
  }

  // Buffers currently owned (tests: Reset must not shed capacity).
  size_t chunk_count() const { return chunks_.size(); }
  size_t capacity() const {
    size_t total = 0;
    for (const auto& c : chunks_) total += c->capacity();
    return total;
  }

 private:
  // Slow path of Reserve: opens a fresh chunk able to hold `n` bytes.
  void Grow(size_t n) {
    size_t size = n > kChunkSize ? n : kChunkSize;
    // vwise-hotpath: allow(alloc): warm-up growth; Reset() reuses the arena so
    // a stabilized workload never re-enters this path
    chunks_.push_back(Buffer::Allocate(size));
    cap_ = size;
    used_ = 0;
  }

  std::vector<std::shared_ptr<Buffer>> chunks_;
  size_t used_ = 0;
  size_t cap_ = 0;
};

}  // namespace vwise

#endif  // VWISE_VECTOR_STRING_HEAP_H_
