#ifndef VWISE_VECTOR_STRING_HEAP_H_
#define VWISE_VECTOR_STRING_HEAP_H_

#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "vector/types.h"

namespace vwise {

// Arena for string bytes produced during execution (concatenation, substring,
// decompression of string columns, ...). Vectors holding StringVals into a
// heap keep a shared_ptr to it so the bytes outlive the producing operator.
class StringHeap {
 public:
  static constexpr size_t kChunkSize = 64 * 1024;

  StringHeap() = default;
  StringHeap(const StringHeap&) = delete;
  StringHeap& operator=(const StringHeap&) = delete;

  // Copies `sv` into the arena and returns a StringVal pointing at the copy.
  StringVal Add(std::string_view sv) {
    char* dst = Reserve(sv.size());
    std::memcpy(dst, sv.data(), sv.size());
    return StringVal(dst, static_cast<uint32_t>(sv.size()));
  }

  // Reserves `n` writable bytes in the arena.
  char* Reserve(size_t n) {
    if (used_ + n > cap_) {
      size_t size = n > kChunkSize ? n : kChunkSize;
      chunks_.push_back(Buffer::Allocate(size));
      cap_ = size;
      used_ = 0;
    }
    char* p = chunks_.back()->As<char>() + used_;
    used_ += n;
    return p;
  }

  // Total bytes handed out; used by execution statistics.
  size_t bytes_used() const {
    size_t total = used_;
    for (size_t i = 0; i + 1 < chunks_.size(); i++) total += chunks_[i]->capacity();
    return total;
  }

 private:
  std::vector<std::shared_ptr<Buffer>> chunks_;
  size_t used_ = 0;
  size_t cap_ = 0;
};

}  // namespace vwise

#endif  // VWISE_VECTOR_STRING_HEAP_H_
