#include "rewriter/parallelize.h"

namespace vwise::rewriter {

Result<OperatorPtr> ParallelizeScanAgg(ParallelAggSpec spec,
                                       const Config& config) {
  int workers = config.num_threads > 0 ? config.num_threads : 1;
  auto shared = std::make_shared<ParallelAggSpec>(std::move(spec));
  Config cfg = config;

  if (workers == 1) {
    // No rewrite: plain serial pipeline plus the combining aggregate (kept
    // so serial and parallel plans compute identical shapes).
    auto scan = std::make_unique<ScanOperator>(shared->snapshot,
                                               shared->scan_cols, cfg);
    VWISE_ASSIGN_OR_RETURN(OperatorPtr partial,
                           shared->build_pipeline(std::move(scan)));
    return OperatorPtr(std::make_unique<HashAggOperator>(
        std::move(partial), shared->final_group_cols, shared->final_aggs, cfg));
  }

  size_t n_stripes = shared->snapshot.stable->stripe_count();
  auto factory = [shared, cfg, n_stripes](
                     int w, int n) -> Result<OperatorPtr> {
    ScanOperator::Options opts;
    opts.ranges = shared->ranges;
    opts.stripe_begin = n_stripes * w / n;
    opts.stripe_end = n_stripes * (w + 1) / n;
    auto scan = std::make_unique<ScanOperator>(shared->snapshot,
                                               shared->scan_cols, cfg, opts);
    return shared->build_pipeline(std::move(scan));
  };
  auto xchg = std::make_unique<XchgOperator>(factory, workers,
                                             shared->partial_types, cfg);
  return OperatorPtr(std::make_unique<HashAggOperator>(
      std::move(xchg), shared->final_group_cols, shared->final_aggs, cfg));
}

}  // namespace vwise::rewriter
