#include "rewriter/parallelize.h"

#include <utility>

#include "planner/plan_verifier.h"

namespace vwise::rewriter {

namespace {

// The serial (pre-rewrite) form: the caller's pipeline over one full scan,
// plus the combining aggregate (kept so serial and parallel plans compute
// identical shapes).
Result<OperatorPtr> BuildSerial(const std::shared_ptr<ParallelAggSpec>& shared,
                                const Config& cfg) {
  ScanOperator::Options opts;
  opts.ranges = shared->ranges;
  auto scan = std::make_unique<ScanOperator>(shared->snapshot,
                                             shared->scan_cols, cfg, opts);
  VWISE_ASSIGN_OR_RETURN(OperatorPtr partial,
                         shared->build_pipeline(std::move(scan)));
  return OperatorPtr(std::make_unique<HashAggOperator>(
      std::move(partial), shared->final_group_cols, shared->final_aggs, cfg));
}

Status WrapRuleError(const char* which, const Status& st) {
  std::string msg = "parallelize rewriter: the ";
  msg += which;
  msg += " plan fails static verification: ";
  msg += st.message();
  return Status::Internal(std::move(msg));
}

}  // namespace

Result<OperatorPtr> ParallelizeScanAgg(ParallelAggSpec spec,
                                       const Config& config) {
  int workers = config.num_threads > 0 ? config.num_threads : 1;
  auto shared = std::make_shared<ParallelAggSpec>(std::move(spec));
  Config cfg = config;

  if (workers == 1) {
    // No rewrite: plain serial pipeline.
    VWISE_ASSIGN_OR_RETURN(OperatorPtr serial, BuildSerial(shared, cfg));
    if (cfg.verify_plans) {
      Status st = PlanVerifier(cfg).Verify(*serial);
      if (!st.ok()) return WrapRuleError("serial", st);
    }
    return serial;
  }

  size_t n_stripes = shared->snapshot.stable->stripe_count();
  auto factory = [shared, cfg, n_stripes](
                     int w, int n) -> Result<OperatorPtr> {
    ScanOperator::Options opts;
    opts.ranges = shared->ranges;
    opts.stripe_begin = n_stripes * w / n;
    opts.stripe_end = n_stripes * (w + 1) / n;
    auto scan = std::make_unique<ScanOperator>(shared->snapshot,
                                               shared->scan_cols, cfg, opts);
    return shared->build_pipeline(std::move(scan));
  };
  auto xchg = std::make_unique<XchgOperator>(factory, workers,
                                             shared->partial_types, cfg);
  OperatorPtr parallel = std::make_unique<HashAggOperator>(
      std::move(xchg), shared->final_group_cols, shared->final_aggs, cfg);

  if (cfg.verify_plans) {
    // Rule postcondition: the rewrite must preserve the plan's verified
    // properties. Verify the serial ("before") form, the parallel ("after")
    // form — which descends into every worker fragment and cross-checks the
    // stripe partitioning for overlap/coverage — and require both to agree
    // on the output layout.
    PlanVerifier verifier(cfg);
    VWISE_ASSIGN_OR_RETURN(OperatorPtr serial, BuildSerial(shared, cfg));
    PlanProperties before;
    PlanProperties after;
    Status st = verifier.Verify(*serial, &before);
    if (!st.ok()) return WrapRuleError("serial (pre-rewrite)", st);
    st = verifier.Verify(*parallel, &after);
    if (!st.ok()) return WrapRuleError("parallel (post-rewrite)", st);
    if (before.types != after.types) {
      std::string msg =
          "parallelize rewriter: the rewrite changed the plan's output "
          "layout\nserial plan:\n";
      msg += ExplainPlan(*serial);
      msg += "parallel plan:\n";
      msg += ExplainPlan(*parallel);
      return Status::Internal(std::move(msg));
    }
  }
  return parallel;
}

}  // namespace vwise::rewriter
