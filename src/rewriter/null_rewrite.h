#ifndef VWISE_REWRITER_NULL_REWRITE_H_
#define VWISE_REWRITER_NULL_REWRITE_H_

#include <memory>

#include "expr/expression.h"

namespace vwise::rewriter {

// NULL decomposition rule (paper Sec. I-B): Vectorwise represents a NULLable
// column as two standard columns — the value column (holding a type-safe
// dummy in NULL slots) and a u8 indicator column (1 = NULL) stored together
// in PAX. The rewriter turns operations on NULLable inputs into equivalent
// operations on the two standard columns, so execution primitives stay
// NULL-oblivious (and branch-free).

struct NullableRef {
  size_t val_col;
  size_t ind_col;
  DataType type;
};

// "x CMP literal" under SQL semantics (NULL never qualifies):
//    ind == 0  AND  val CMP literal.
FilterPtr RewriteNullableCmp(CmpOp op, const NullableRef& x, ExprPtr literal);

// "x IS NULL" / "x IS NOT NULL".
FilterPtr RewriteIsNull(const NullableRef& x);
FilterPtr RewriteIsNotNull(const NullableRef& x);

// Arithmetic "a OP b" over nullables: the value column computes on the safe
// values unconditionally; the result's indicator is nonzero iff either input
// was NULL (indicator columns are summed, so any nonzero means NULL).
struct NullablePair {
  ExprPtr value;
  ExprPtr indicator;  // i64, 0 = not NULL
};
NullablePair RewriteNullableArith(ArithOp op, const NullableRef& a,
                                  const NullableRef& b);

// The ablation baseline (bench E9): a NULL-aware comparison that checks the
// indicator per value inside the selection loop — the branchy "make every
// operator NULL-aware" design the paper's rewrite avoids. i64 values only.
class NullAwareCmpFilter final : public Filter {
 public:
  NullAwareCmpFilter(CmpOp op, size_t val_col, size_t ind_col, int64_t literal)
      : op_(op), val_col_(val_col), ind_col_(ind_col), literal_(literal) {}

  Status Select(DataChunk& in, const sel_t* sel, size_t n, sel_t* out_sel,
                size_t* out_n) override;

  // Static-analysis surface (plan verifier).
  size_t val_col() const { return val_col_; }
  size_t ind_col() const { return ind_col_; }

 private:
  CmpOp op_;
  size_t val_col_;
  size_t ind_col_;
  int64_t literal_;
};

}  // namespace vwise::rewriter

#endif  // VWISE_REWRITER_NULL_REWRITE_H_
