#include "rewriter/null_rewrite.h"

#include <algorithm>

#include "common/config.h"
#include "planner/plan_verifier.h"

namespace vwise::rewriter {

namespace {
// u8 literal matching the indicator column's physical type.
ExprPtr BoolLit(int64_t v) {
  return std::make_unique<ConstExpr>(Value::Int(v), DataType::Bool());
}

// Rule postcondition (VWISE_VERIFY_PLANS): a rewritten filter that fails the
// static check is a rewriter bug, not bad user input — abort loudly. The
// negative tests exercise the Status-returning checkers directly instead.
void CheckRewrittenFilter(const Filter& f, const NullableRef& x) {
  if (!detail::EnvVerifyPlans()) return;
  const size_t width = std::max(x.val_col, x.ind_col) + 1;
  Status st = VerifyNullRewriteFilter(f, x.val_col, x.type.physical(),
                                      x.ind_col, width);
  VWISE_CHECK_MSG(st.ok(), st.ToString().c_str());
}
}  // namespace

FilterPtr RewriteNullableCmp(CmpOp op, const NullableRef& x, ExprPtr literal) {
  std::vector<FilterPtr> conj;
  conj.push_back(e::Eq(e::Col(x.ind_col, DataType::Bool()), BoolLit(0)));
  conj.push_back(e::Cmp(op, e::Col(x.val_col, x.type), std::move(literal)));
  FilterPtr f = e::And(std::move(conj));
  CheckRewrittenFilter(*f, x);
  return f;
}

FilterPtr RewriteIsNull(const NullableRef& x) {
  FilterPtr f = e::Ne(e::Col(x.ind_col, DataType::Bool()), BoolLit(0));
  CheckRewrittenFilter(*f, x);
  return f;
}

FilterPtr RewriteIsNotNull(const NullableRef& x) {
  FilterPtr f = e::Eq(e::Col(x.ind_col, DataType::Bool()), BoolLit(0));
  CheckRewrittenFilter(*f, x);
  return f;
}

NullablePair RewriteNullableArith(ArithOp op, const NullableRef& a,
                                  const NullableRef& b) {
  NullablePair out;
  out.value = std::make_unique<ArithExpr>(op, e::Col(a.val_col, a.type),
                                          e::Col(b.val_col, b.type));
  out.indicator =
      e::Add(e::Cast(e::Col(a.ind_col, DataType::Bool()), DataType::Int64()),
             e::Cast(e::Col(b.ind_col, DataType::Bool()), DataType::Int64()));
  if (detail::EnvVerifyPlans()) {
    const size_t width =
        std::max({a.val_col, a.ind_col, b.val_col, b.ind_col}) + 1;
    Status st = VerifyNullRewritePair(*out.value, *out.indicator, a.val_col,
                                      a.ind_col, b.val_col, b.ind_col,
                                      a.type.physical(), width);
    VWISE_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  return out;
}

Status NullAwareCmpFilter::Select(DataChunk& in, const sel_t* sel, size_t n,
                                  sel_t* out_sel, size_t* out_n) {
  const int64_t* val = in.column(val_col_).Data<int64_t>();
  const uint8_t* ind = in.column(ind_col_).Data<uint8_t>();
  size_t k = 0;
  for (size_t i = 0; i < n; i++) {
    sel_t p = sel ? sel[i] : static_cast<sel_t>(i);
    if (ind[p]) continue;  // the per-value NULL branch the rewrite removes
    bool hit = false;
    switch (op_) {
      case CmpOp::kEq:
        hit = val[p] == literal_;
        break;
      case CmpOp::kNe:
        hit = val[p] != literal_;
        break;
      case CmpOp::kLt:
        hit = val[p] < literal_;
        break;
      case CmpOp::kLe:
        hit = val[p] <= literal_;
        break;
      case CmpOp::kGt:
        hit = val[p] > literal_;
        break;
      case CmpOp::kGe:
        hit = val[p] >= literal_;
        break;
    }
    if (hit) out_sel[k++] = p;
  }
  *out_n = k;
  return Status::OK();
}

}  // namespace vwise::rewriter
