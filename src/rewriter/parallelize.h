#ifndef VWISE_REWRITER_PARALLELIZE_H_
#define VWISE_REWRITER_PARALLELIZE_H_

#include <functional>
#include <memory>
#include <vector>

#include "exec/hash_agg.h"
#include "exec/scan.h"
#include "exec/xchg.h"
#include "txn/transaction_manager.h"

namespace vwise::rewriter {

// Volcano-style parallelization rule (paper Sec. I-B): rewrites an
// aggregation over a scan pipeline into
//
//     FinalAgg( Xchg( PartialPipeline(partitioned scan) x N ) )
//
// The table's stripes are range-partitioned over `config.num_threads`
// workers; each worker runs the caller-supplied pipeline (selections,
// projections, a partial aggregate) over its partition, and the consumer
// combines partials with `final_group_cols`/`final_aggs` (avg must be
// decomposed into sum+count by the caller, as the real rewriter does).
struct ParallelAggSpec {
  TableSnapshot snapshot;
  std::vector<uint32_t> scan_cols;
  std::vector<ScanRange> ranges;
  // Builds one worker's pipeline on top of its partitioned scan; the result
  // must emit `partial_types` columns.
  std::function<Result<OperatorPtr>(OperatorPtr scan)> build_pipeline;
  std::vector<TypeId> partial_types;
  std::vector<size_t> final_group_cols;
  std::vector<AggSpec> final_aggs;
};

Result<OperatorPtr> ParallelizeScanAgg(ParallelAggSpec spec,
                                       const Config& config);

}  // namespace vwise::rewriter

#endif  // VWISE_REWRITER_PARALLELIZE_H_
