#ifndef VWISE_TPCH_QUERIES_H_
#define VWISE_TPCH_QUERIES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/operator.h"
#include "service/session.h"
#include "txn/transaction_manager.h"

namespace vwise::tpch {

// Builders for all 22 TPC-H queries as vectorized physical plans — the
// plans the Ingres cross compiler [7] would emit for the X100 engine.
// Parameters use the specification's validation values.
//
// `threads` > 1 parallelizes the supported queries (Q1, Q6) with the
// Volcano Xchg rewrite; other queries run serial regardless.

struct QueryInfo {
  std::vector<std::string> column_names;
  std::vector<DataType> column_types;
};

// Builds query `q` (1-22) against the latest snapshots of `mgr`'s TPC-H
// tables.
Result<OperatorPtr> BuildQuery(int q, TransactionManager* mgr,
                               const Config& config, QueryInfo* info = nullptr);

// Convenience: build + run to completion on the calling thread (fixtures
// that drive a TransactionManager without a Database / query service).
Result<QueryResult> RunQuery(int q, TransactionManager* mgr,
                             const Config& config);

// Session-API variants: the built plan is bound to `session` and executes
// through the admission-controlled query service. `config` picks the build
// knobs (threads, vector size) — pass the session's config unless a test
// overrides it. The profiled path rides on Config::profile as before, with
// the EXPLAIN ANALYZE text in QueryResult::profile / QueryHandle::profile().
Result<std::unique_ptr<PreparedQuery>> PrepareQuery(int q, Session* session,
                                                    TransactionManager* mgr,
                                                    const Config& config);
Result<QueryResult> RunQuery(int q, Session* session, TransactionManager* mgr,
                             const Config& config);

}  // namespace vwise::tpch

#endif  // VWISE_TPCH_QUERIES_H_
