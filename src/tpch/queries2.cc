#include "common/date.h"
#include "tpch/queries_internal.h"

namespace vwise::tpch::internal {

using namespace vwise::tpch::col;  // NOLINT: positional plan construction

namespace {

const DataType I64 = DataType::Int64();
const DataType F64 = DataType::Double();
const DataType VC = DataType::Varchar();
const DataType DT = DataType::Date();
const DataType D2 = DataType::Decimal(2);

void SetInfo(QueryInfo* info, std::vector<std::string> names) {
  if (info != nullptr) info->column_names = std::move(names);
}

int64_t Cents(double v) {
  return static_cast<int64_t>(v * 100 + (v >= 0 ? 0.5 : -0.5));
}

}  // namespace

// ---------------------------------------------------------------------------
// Q12 — shipping modes and order priority
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ12(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan("lineitem",
                                {l::kOrderkey, l::kShipmode, l::kShipdate,
                                 l::kCommitdate, l::kReceiptdate}));
  li.Select(e::And(
      Fs(e::In(li.Col(1), {Value::String("MAIL"), Value::String("SHIP")}),
         e::Lt(li.Col(3), li.Col(4)), e::Lt(li.Col(2), li.Col(3)),
         e::Ge(li.Col(4), e::DateLit("1994-01-01")),
         e::Lt(li.Col(4), e::DateLit("1995-01-01")))));
  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kOrderkey, o::kOrderpriority}));
  li.Join(std::move(o), JoinType::kInner, {0}, {0}, {1});  // + priority @5
  std::vector<Value> high = {Value::String("1-URGENT"), Value::String("2-HIGH")};
  li.Project(
      Es(li.Col(1),
         e::Case(e::In(li.Col(5), high), e::I64(1), e::I64(0)),
         e::Case(e::NotIn(li.Col(5), high), e::I64(1), e::I64(0))),
      {VC, I64, I64});
  li.Agg({0}, {AggSpec::Sum(1), AggSpec::Sum(2)}, {VC, I64, I64});
  li.Sort({{0, true}});
  SetInfo(info, {"l_shipmode", "high_line_count", "low_line_count"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q13 — customer distribution (left outer join)
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ13(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kOrderkey, o::kCustkey, o::kComment}));
  o.Select(e::NotLike(o.Col(2), "%special%requests%"));

  Qb c(mgr, cfg);
  VWISE_RETURN_IF_ERROR(c.Scan("customer", {c::kCustkey}));
  c.Join(std::move(o), JoinType::kLeftOuter, {0}, {1}, {0});
  // c: 0 ckey, 1 o_orderkey, 2 match flag (u8)
  c.Project(Es(c.Col(0), e::Cast(c.Col(2), I64)), {I64, I64});
  c.Agg({0}, {AggSpec::Sum(1)}, {I64, I64});   // (ckey, c_count)
  c.Agg({1}, {AggSpec::CountStar()}, {I64, I64});  // (c_count, custdist)
  c.Sort({{1, false}, {0, false}});
  SetInfo(info, {"c_count", "custdist"});
  return c.Build();
}

// ---------------------------------------------------------------------------
// Q14 — promotion effect
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ14(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan(
      "lineitem", {l::kPartkey, l::kExtendedprice, l::kDiscount, l::kShipdate},
      {ScanRange{l::kShipdate, date::Parse("1995-09-01"),
                 date::Parse("1995-09-30")}}));
  li.Select(e::And(Fs(e::Ge(li.Col(3), e::DateLit("1995-09-01")),
                      e::Lt(li.Col(3), e::DateLit("1995-10-01")))));
  Qb p(mgr, cfg);
  VWISE_RETURN_IF_ERROR(p.Scan("part", {p::kPartkey, p::kType}));
  li.Join(std::move(p), JoinType::kInner, {0}, {0}, {1});  // + p_type @4
  li.Project(Es(e::Case(e::Like(li.Col(4), "PROMO%"), Revenue(li, 1, 2), e::F64(0.0)),
                Revenue(li, 1, 2)),
             {F64, F64});
  li.Agg({}, {AggSpec::Sum(0), AggSpec::Sum(1)}, {F64, F64});
  li.Project(Es(e::Mul(e::F64(100.0), e::Div(li.Col(0), li.Col(1)))), {F64});
  SetInfo(info, {"promo_revenue"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q15 — top supplier (revenue view)
// ---------------------------------------------------------------------------
namespace {

Result<Qb> RevenueView(TransactionManager* mgr, const Config& cfg) {
  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan(
      "lineitem", {l::kSuppkey, l::kExtendedprice, l::kDiscount, l::kShipdate},
      {ScanRange{l::kShipdate, date::Parse("1996-01-01"),
                 date::Parse("1996-03-31")}}));
  li.Select(e::And(Fs(e::Ge(li.Col(3), e::DateLit("1996-01-01")),
                      e::Lt(li.Col(3), e::DateLit("1996-04-01")))));
  li.Project(Es(li.Col(0), Revenue(li, 1, 2)), {I64, F64});
  li.Agg({0}, {AggSpec::Sum(1)}, {I64, F64});  // (suppkey, total_revenue)
  return li;
}

}  // namespace

Result<OperatorPtr> BuildQ15(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  VWISE_ASSIGN_OR_RETURN(Qb rev, RevenueView(mgr, cfg));
  rev.Project(Es(rev.Col(0), rev.Col(1), e::I64(1)), {I64, F64, I64});

  VWISE_ASSIGN_OR_RETURN(Qb maxrev, RevenueView(mgr, cfg));
  maxrev.Agg({}, {AggSpec::Max(1)}, {F64});
  maxrev.Project(Es(e::I64(1), maxrev.Col(0)), {I64, F64});

  // total_revenue >= max(total_revenue) — identical deterministic sums, so
  // >= selects exactly the maxima.
  rev.Join(std::move(maxrev), JoinType::kInner, {2}, {0}, {1},
           e::Ge(e::Col(1, F64), e::Col(3, F64)));

  Qb s(mgr, cfg);
  VWISE_RETURN_IF_ERROR(
      s.Scan("supplier", {s::kSuppkey, s::kName, s::kAddress, s::kPhone}));
  s.Join(std::move(rev), JoinType::kInner, {0}, {0}, {1});  // + total @4
  s.Sort({{0, true}});
  SetInfo(info, {"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"});
  return s.Build();
}

// ---------------------------------------------------------------------------
// Q16 — parts/supplier relationship
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ16(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb p(mgr, cfg);
  VWISE_RETURN_IF_ERROR(p.Scan("part", {p::kPartkey, p::kBrand, p::kType, p::kSize}));
  p.Select(e::And(Fs(
      e::Ne(p.Col(1), e::Str("Brand#45")),
      e::NotLike(p.Col(2), "MEDIUM POLISHED%"),
      e::In(p.Col(3), {Value::Int(49), Value::Int(14), Value::Int(23),
                       Value::Int(45), Value::Int(19), Value::Int(3),
                       Value::Int(36), Value::Int(9)}))));

  Qb psq(mgr, cfg);
  VWISE_RETURN_IF_ERROR(psq.Scan("partsupp", {ps::kPartkey, ps::kSuppkey}));
  psq.Join(std::move(p), JoinType::kInner, {0}, {0}, {1, 2, 3});
  // psq: 0 pk, 1 sk, 2 brand, 3 type, 4 size

  Qb bad(mgr, cfg);
  VWISE_RETURN_IF_ERROR(bad.Scan("supplier", {s::kSuppkey, s::kComment}));
  bad.Select(e::Like(bad.Col(1), "%Customer%Complaints%"));
  psq.Join(std::move(bad), JoinType::kLeftAnti, {1}, {0});

  // COUNT(DISTINCT ps_suppkey): dedupe (brand,type,size,suppkey) then count.
  psq.Agg({2, 3, 4, 1}, {}, {VC, VC, I64, I64});
  psq.Agg({0, 1, 2}, {AggSpec::CountStar()}, {VC, VC, I64, I64});
  psq.Sort({{3, false}, {0, true}, {1, true}, {2, true}});
  SetInfo(info, {"p_brand", "p_type", "p_size", "supplier_cnt"});
  return psq.Build();
}

// ---------------------------------------------------------------------------
// Q17 — small-quantity-order revenue
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ17(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb avg_q(mgr, cfg);
  VWISE_RETURN_IF_ERROR(avg_q.Scan("lineitem", {l::kPartkey, l::kQuantity}));
  avg_q.Agg({0}, {AggSpec::Avg(1)}, {I64, F64});  // (pk, avg qty in cents)

  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(
      li.Scan("lineitem", {l::kPartkey, l::kQuantity, l::kExtendedprice}));
  Qb p(mgr, cfg);
  VWISE_RETURN_IF_ERROR(p.Scan("part", {p::kPartkey, p::kBrand, p::kContainer}));
  p.Select(e::And(Fs(e::Eq(p.Col(1), e::Str("Brand#23")),
                     e::Eq(p.Col(2), e::Str("MED BOX")))));
  li.Join(std::move(p), JoinType::kLeftSemi, {0}, {0});
  // l_quantity < 0.2 * avg(l_quantity); both sides in cents.
  li.Join(std::move(avg_q), JoinType::kInner, {0}, {0}, {1},
          e::Lt(e::ToF64(e::Col(1, I64)),
                e::Mul(e::F64(0.2), e::Col(3, F64))));
  li.Agg({}, {AggSpec::Sum(2)}, {D2});
  li.Project(Es(e::Div(li.F(0), e::F64(7.0))), {F64});
  SetInfo(info, {"avg_yearly"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q18 — large volume customers
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ18(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb big(mgr, cfg);
  VWISE_RETURN_IF_ERROR(big.Scan("lineitem", {l::kOrderkey, l::kQuantity}));
  big.Agg({0}, {AggSpec::Sum(1)}, {I64, D2});
  big.Select(e::Gt(big.Col(1), e::Dec(300, 2)));

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan(
      "orders", {o::kOrderkey, o::kCustkey, o::kOrderdate, o::kTotalprice}));
  o.Join(std::move(big), JoinType::kInner, {0}, {0}, {1});  // + sum_qty @4

  Qb c(mgr, cfg);
  VWISE_RETURN_IF_ERROR(c.Scan("customer", {c::kCustkey, c::kName}));
  o.Join(std::move(c), JoinType::kInner, {1}, {0}, {1});  // + c_name @5

  o.Project(Es(o.Col(5), o.Col(1), o.Col(0), o.Col(2), o.Col(3), o.F(4)),
            {VC, I64, I64, DT, D2, F64});
  o.Sort({{4, false}, {3, true}}, 100);
  SetInfo(info, {"c_name", "c_custkey", "o_orderkey", "o_orderdate",
                 "o_totalprice", "sum_qty"});
  return o.Build();
}

// ---------------------------------------------------------------------------
// Q19 — discounted revenue (disjunctive brand/container/quantity predicate)
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ19(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan("lineitem",
                                {l::kPartkey, l::kQuantity, l::kExtendedprice,
                                 l::kDiscount, l::kShipinstruct, l::kShipmode}));
  li.Select(e::And(
      Fs(e::In(li.Col(5), {Value::String("AIR"), Value::String("AIR REG")}),
         e::Eq(li.Col(4), e::Str("DELIVER IN PERSON")))));
  Qb p(mgr, cfg);
  VWISE_RETURN_IF_ERROR(p.Scan("part", {p::kPartkey, p::kBrand, p::kContainer,
                                        p::kSize}));
  li.Join(std::move(p), JoinType::kInner, {0}, {0}, {1, 2, 3});
  // li: ..., 6 brand, 7 container, 8 size
  auto branch = [&](const char* brand, std::vector<Value> containers,
                    double qlo, double qhi, int64_t smax) {
    return e::And(Fs(
        e::Eq(li.Col(6), e::Str(brand)), e::In(li.Col(7), std::move(containers)),
        e::Ge(li.Col(1), e::I64(Cents(qlo))), e::Le(li.Col(1), e::I64(Cents(qhi))),
        e::Ge(li.Col(8), e::I64(1)), e::Le(li.Col(8), e::I64(smax))));
  };
  li.Select(e::Or(Fs(
      branch("Brand#12",
             {Value::String("SM CASE"), Value::String("SM BOX"),
              Value::String("SM PACK"), Value::String("SM PKG")},
             1, 11, 5),
      branch("Brand#23",
             {Value::String("MED BAG"), Value::String("MED BOX"),
              Value::String("MED PKG"), Value::String("MED PACK")},
             10, 20, 10),
      branch("Brand#34",
             {Value::String("LG CASE"), Value::String("LG BOX"),
              Value::String("LG PACK"), Value::String("LG PKG")},
             20, 30, 15))));
  li.Project(Es(Revenue(li, 2, 3)), {F64});
  li.Agg({}, {AggSpec::Sum(0)}, {F64});
  SetInfo(info, {"revenue"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q20 — potential part promotion (forest%, CANADA)
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ20(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb forest(mgr, cfg);
  VWISE_RETURN_IF_ERROR(forest.Scan("part", {p::kPartkey, p::kName}));
  forest.Select(e::Like(forest.Col(1), "forest%"));

  Qb l94(mgr, cfg);
  VWISE_RETURN_IF_ERROR(l94.Scan(
      "lineitem", {l::kPartkey, l::kSuppkey, l::kQuantity, l::kShipdate},
      {ScanRange{l::kShipdate, date::Parse("1994-01-01"),
                 date::Parse("1994-12-31")}}));
  l94.Select(e::And(Fs(e::Ge(l94.Col(3), e::DateLit("1994-01-01")),
                       e::Lt(l94.Col(3), e::DateLit("1995-01-01")))));
  l94.Agg({0, 1}, {AggSpec::Sum(2)}, {I64, I64, D2});  // (pk, sk, qty cents)

  Qb psq(mgr, cfg);
  VWISE_RETURN_IF_ERROR(
      psq.Scan("partsupp", {ps::kPartkey, ps::kSuppkey, ps::kAvailqty}));
  psq.Join(std::move(forest), JoinType::kLeftSemi, {0}, {0});
  // availqty (units) > 0.5 * sum(qty) (cents / 100).
  psq.Join(std::move(l94), JoinType::kInner, {0, 1}, {0, 1}, {2},
           e::Gt(e::ToF64(e::Col(2, I64)),
                 e::Mul(e::F64(0.005), e::ToF64(e::Col(3, I64)))));
  psq.Agg({1}, {}, {I64});  // distinct suppkeys

  Qb s(mgr, cfg);
  VWISE_RETURN_IF_ERROR(
      s.Scan("supplier", {s::kSuppkey, s::kName, s::kAddress, s::kNationkey}));
  Qb nat(mgr, cfg);
  VWISE_RETURN_IF_ERROR(nat.Scan("nation", {n::kNationkey, n::kName}));
  nat.Select(e::Eq(nat.Col(1), e::Str("CANADA")));
  s.Join(std::move(nat), JoinType::kLeftSemi, {3}, {0});
  s.Join(std::move(psq), JoinType::kLeftSemi, {0}, {0});
  s.Project(Es(s.Col(1), s.Col(2)), {VC, VC});
  s.Sort({{0, true}});
  SetInfo(info, {"s_name", "s_address"});
  return s.Build();
}

// ---------------------------------------------------------------------------
// Q21 — suppliers who kept orders waiting (SAUDI ARABIA)
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ21(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb sa(mgr, cfg);
  VWISE_RETURN_IF_ERROR(sa.Scan("supplier", {s::kSuppkey, s::kName, s::kNationkey}));
  Qb nat(mgr, cfg);
  VWISE_RETURN_IF_ERROR(nat.Scan("nation", {n::kNationkey, n::kName}));
  nat.Select(e::Eq(nat.Col(1), e::Str("SAUDI ARABIA")));
  sa.Join(std::move(nat), JoinType::kLeftSemi, {2}, {0});

  Qb l1(mgr, cfg);
  VWISE_RETURN_IF_ERROR(l1.Scan(
      "lineitem", {l::kOrderkey, l::kSuppkey, l::kReceiptdate, l::kCommitdate}));
  l1.Select(e::Gt(l1.Col(2), l1.Col(3)));
  l1.Join(std::move(sa), JoinType::kInner, {1}, {0}, {1});  // + s_name @4

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kOrderkey, o::kOrderstatus}));
  o.Select(e::Eq(o.Col(1), e::Str("F")));
  l1.Join(std::move(o), JoinType::kLeftSemi, {0}, {0});

  // EXISTS another lineitem of the same order from a different supplier.
  Qb l2(mgr, cfg);
  VWISE_RETURN_IF_ERROR(l2.Scan("lineitem", {l::kOrderkey, l::kSuppkey}));
  l1.Join(std::move(l2), JoinType::kLeftSemi, {0}, {0}, {1},
          e::Ne(e::Col(1, I64), e::Col(5, I64)));

  // NOT EXISTS a *late* lineitem of the same order from a different supplier.
  Qb l3(mgr, cfg);
  VWISE_RETURN_IF_ERROR(l3.Scan(
      "lineitem", {l::kOrderkey, l::kSuppkey, l::kReceiptdate, l::kCommitdate}));
  l3.Select(e::Gt(l3.Col(2), l3.Col(3)));
  l1.Join(std::move(l3), JoinType::kLeftAnti, {0}, {0}, {1},
          e::Ne(e::Col(1, I64), e::Col(5, I64)));

  l1.Agg({4}, {AggSpec::CountStar()}, {VC, I64});
  l1.Sort({{1, false}, {0, true}}, 100);
  SetInfo(info, {"s_name", "numwait"});
  return l1.Build();
}

// ---------------------------------------------------------------------------
// Q22 — global sales opportunity
// ---------------------------------------------------------------------------
namespace {

Result<Qb> CodedCustomers(TransactionManager* mgr, const Config& cfg) {
  Qb c(mgr, cfg);
  VWISE_RETURN_IF_ERROR(c.Scan("customer", {c::kCustkey, c::kPhone, c::kAcctbal}));
  c.Project(Es(c.Col(0), e::Substr(c.Col(1), 1, 2), c.Col(2)), {I64, VC, D2});
  c.Select(e::In(c.Col(1),
                 {Value::String("13"), Value::String("31"), Value::String("23"),
                  Value::String("29"), Value::String("30"), Value::String("18"),
                  Value::String("17")}));
  return c;  // (custkey, cntrycode, acctbal)
}

}  // namespace

Result<OperatorPtr> BuildQ22(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  VWISE_ASSIGN_OR_RETURN(Qb avg, CodedCustomers(mgr, cfg));
  avg.Select(e::Gt(avg.Col(2), e::Dec(0.0, 2)));
  avg.Agg({}, {AggSpec::Avg(2)}, {F64});      // avg acctbal (cents)
  avg.Project(Es(e::I64(1), avg.Col(0)), {I64, F64});

  VWISE_ASSIGN_OR_RETURN(Qb c, CodedCustomers(mgr, cfg));
  c.Project(Es(c.Col(0), c.Col(1), c.Col(2), e::I64(1)), {I64, VC, D2, I64});
  c.Join(std::move(avg), JoinType::kInner, {3}, {0}, {1},
         e::Gt(e::ToF64(e::Col(2, I64)), e::Col(4, F64)));

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kCustkey}));
  c.Join(std::move(o), JoinType::kLeftAnti, {0}, {0});

  c.Agg({1}, {AggSpec::CountStar(), AggSpec::Sum(2)}, {VC, I64, D2});
  c.Sort({{0, true}});
  SetInfo(info, {"cntrycode", "numcust", "totacctbal"});
  return c.Build();
}

}  // namespace vwise::tpch::internal
