#include "tpch/queries.h"

#include "common/date.h"
#include "expr/primitive_profiler.h"
#include "planner/plan_verifier.h"
#include "tpch/queries_internal.h"

namespace vwise::tpch {

using namespace vwise::tpch::col;  // NOLINT: positional plan construction

namespace internal {

namespace {

const DataType I64 = DataType::Int64();
const DataType F64 = DataType::Double();
const DataType VC = DataType::Varchar();
const DataType DT = DataType::Date();
const DataType D2 = DataType::Decimal(2);

void SetInfo(QueryInfo* info, std::vector<std::string> names) {
  if (info != nullptr) info->column_names = std::move(names);
}

// Quantities/prices are scale-2 decimals: value v is stored as round(100*v).
int64_t Cents(double v) { return static_cast<int64_t>(v * 100 + (v >= 0 ? 0.5 : -0.5)); }

}  // namespace

Result<double> InferScaleFactor(TransactionManager* mgr) {
  VWISE_ASSIGN_OR_RETURN(TableSnapshot s, mgr->GetSnapshot("supplier"));
  return static_cast<double>(s.visible_rows()) / 10000.0;
}

// ---------------------------------------------------------------------------
// Q1 — pricing summary report
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ1(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  Qb q(mgr, cfg);
  int64_t cutoff = date::Parse("1998-09-02");  // 1998-12-01 - 90 days
  VWISE_RETURN_IF_ERROR(q.Scan(
      "lineitem",
      {l::kQuantity, l::kExtendedprice, l::kDiscount, l::kTax, l::kReturnflag,
       l::kLinestatus, l::kShipdate},
      {ScanRange{l::kShipdate, INT64_MIN, cutoff}}));
  // 0 qty, 1 ext, 2 disc, 3 tax, 4 rf, 5 ls, 6 shipdate
  q.Select(e::Le(q.Col(6), e::DateLit("1998-09-02")));
  q.Project(Es(q.Col(4), q.Col(5), q.F(0), q.F(1), Revenue(q, 1, 2),
               e::Mul(Revenue(q, 1, 2), e::Add(e::F64(1.0), q.F(3))), q.F(2)),
            {VC, VC, F64, F64, F64, F64, F64});
  // 0 rf, 1 ls, 2 qty, 3 price, 4 disc_price, 5 charge, 6 disc
  q.Agg({0, 1},
        {AggSpec::Sum(2), AggSpec::Sum(3), AggSpec::Sum(4), AggSpec::Sum(5),
         AggSpec::Avg(2), AggSpec::Avg(3), AggSpec::Avg(6), AggSpec::CountStar()},
        {VC, VC, F64, F64, F64, F64, F64, F64, F64, I64});
  q.Sort({{0, true}, {1, true}});
  SetInfo(info, {"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price",
                 "sum_disc_price", "sum_charge", "avg_qty", "avg_price",
                 "avg_disc", "count_order"});
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q2 — minimum cost supplier (EUROPE, size 15, %BRASS)
// ---------------------------------------------------------------------------
namespace {

// partsupp restricted to suppliers of a region, with optional supplier
// detail payload. Output: 0 ps_partkey, 1 ps_suppkey, 2 ps_supplycost
// [, 3 s_name, 4 s_address, 5 s_phone, 6 s_acctbal, 7 s_comment, 8 n_name].
Result<Qb> EuropePartsupp(TransactionManager* mgr, const Config& cfg,
                          bool with_detail) {
  Qb n(mgr, cfg);
  VWISE_RETURN_IF_ERROR(n.Scan("nation", {n::kNationkey, n::kName, n::kRegionkey}));
  Qb r(mgr, cfg);
  VWISE_RETURN_IF_ERROR(r.Scan("region", {r::kRegionkey, r::kName}));
  r.Select(e::Eq(r.Col(1), e::Str("EUROPE")));
  n.Join(std::move(r), JoinType::kLeftSemi, {2}, {0});

  Qb s(mgr, cfg);
  VWISE_RETURN_IF_ERROR(s.Scan("supplier",
                               {s::kSuppkey, s::kName, s::kAddress, s::kNationkey,
                                s::kPhone, s::kAcctbal, s::kComment}));
  s.Join(std::move(n), JoinType::kInner, {3}, {0}, {1});
  // s: 0 skey, 1 sname, 2 saddr, 3 snat, 4 sphone, 5 sacct, 6 scomment, 7 nname

  Qb ps(mgr, cfg);
  VWISE_RETURN_IF_ERROR(
      ps.Scan("partsupp", {ps::kPartkey, ps::kSuppkey, ps::kSupplycost}));
  if (with_detail) {
    ps.Join(std::move(s), JoinType::kInner, {1}, {0}, {1, 2, 4, 5, 6, 7});
  } else {
    ps.Join(std::move(s), JoinType::kLeftSemi, {1}, {0});
  }
  return ps;
}

}  // namespace

Result<OperatorPtr> BuildQ2(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  VWISE_ASSIGN_OR_RETURN(Qb main, EuropePartsupp(mgr, cfg, true));
  // main: 0 pk, 1 sk, 2 cost, 3 sname, 4 saddr, 5 sphone, 6 sacct,
  //       7 scomment, 8 nname
  Qb p(mgr, cfg);
  VWISE_RETURN_IF_ERROR(p.Scan("part", {p::kPartkey, p::kMfgr, p::kSize, p::kType}));
  p.Select(e::And(Fs(e::Eq(p.Col(2), e::I64(15)), e::Like(p.Col(3), "%BRASS"))));
  main.Join(std::move(p), JoinType::kInner, {0}, {0}, {1});  // + p_mfgr @9

  VWISE_ASSIGN_OR_RETURN(Qb for_min, EuropePartsupp(mgr, cfg, false));
  for_min.Agg({0}, {AggSpec::Min(2)}, {I64, D2});  // (pk, mincost)
  main.Join(std::move(for_min), JoinType::kInner, {0}, {0}, {1},
            e::Eq(e::Col(2, D2), e::Col(10, D2)));  // cost == min(cost) @10

  main.Project(Es(main.Col(6), main.Col(3), main.Col(8), main.Col(0),
                  main.Col(9), main.Col(4), main.Col(5), main.Col(7)),
               {D2, VC, VC, I64, VC, VC, VC, VC});
  main.Sort({{0, false}, {2, true}, {1, true}, {3, true}}, 100);
  SetInfo(info, {"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
                 "s_address", "s_phone", "s_comment"});
  return main.Build();
}

// ---------------------------------------------------------------------------
// Q3 — shipping priority
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ3(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  Qb c(mgr, cfg);
  VWISE_RETURN_IF_ERROR(c.Scan("customer", {c::kCustkey, c::kMktsegment}));
  c.Select(e::Eq(c.Col(1), e::Str("BUILDING")));

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan(
      "orders", {o::kOrderkey, o::kCustkey, o::kOrderdate, o::kShippriority}));
  o.Select(e::Lt(o.Col(2), e::DateLit("1995-03-15")));
  o.Join(std::move(c), JoinType::kLeftSemi, {1}, {0});

  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan(
      "lineitem", {l::kOrderkey, l::kExtendedprice, l::kDiscount, l::kShipdate},
      {ScanRange{l::kShipdate, date::Parse("1995-03-16"), INT64_MAX}}));
  li.Select(e::Gt(li.Col(3), e::DateLit("1995-03-15")));
  li.Join(std::move(o), JoinType::kInner, {0}, {0}, {2, 3});
  // 0 okey, 1 ext, 2 disc, 3 ship, 4 odate, 5 shippri
  li.Project(Es(li.Col(0), Revenue(li, 1, 2), li.Col(4), li.Col(5)),
             {I64, F64, DT, I64});
  li.Agg({0, 2, 3}, {AggSpec::Sum(1)}, {I64, DT, I64, F64});
  li.Sort({{3, false}, {1, true}}, 10);
  li.Project(Es(li.Col(0), li.Col(3), li.Col(1), li.Col(2)), {I64, F64, DT, I64});
  SetInfo(info, {"l_orderkey", "revenue", "o_orderdate", "o_shippriority"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q4 — order priority checking
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ4(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(
      li.Scan("lineitem", {l::kOrderkey, l::kCommitdate, l::kReceiptdate}));
  li.Select(e::Lt(li.Col(1), li.Col(2)));

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(
      o.Scan("orders", {o::kOrderkey, o::kOrderdate, o::kOrderpriority}));
  o.Select(e::And(Fs(e::Ge(o.Col(1), e::DateLit("1993-07-01")),
                     e::Lt(o.Col(1), e::DateLit("1993-10-01")))));
  o.Join(std::move(li), JoinType::kLeftSemi, {0}, {0});
  o.Agg({2}, {AggSpec::CountStar()}, {VC, I64});
  o.Sort({{0, true}});
  SetInfo(info, {"o_orderpriority", "order_count"});
  return o.Build();
}

// ---------------------------------------------------------------------------
// Q5 — local supplier volume (ASIA, 1994)
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ5(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  Qb r(mgr, cfg);
  VWISE_RETURN_IF_ERROR(r.Scan("region", {r::kRegionkey, r::kName}));
  r.Select(e::Eq(r.Col(1), e::Str("ASIA")));
  Qb n(mgr, cfg);
  VWISE_RETURN_IF_ERROR(n.Scan("nation", {n::kNationkey, n::kName, n::kRegionkey}));
  n.Join(std::move(r), JoinType::kLeftSemi, {2}, {0});  // (nkey, nname, rkey)

  Qb c(mgr, cfg);
  VWISE_RETURN_IF_ERROR(c.Scan("customer", {c::kCustkey, c::kNationkey}));
  c.Join(std::move(n), JoinType::kInner, {1}, {0}, {1});  // (ckey, cnat, nname)

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kOrderkey, o::kCustkey, o::kOrderdate}));
  o.Select(e::And(Fs(e::Ge(o.Col(2), e::DateLit("1994-01-01")),
                     e::Lt(o.Col(2), e::DateLit("1995-01-01")))));
  o.Join(std::move(c), JoinType::kInner, {1}, {0}, {1, 2});
  // o: 0 okey, 1 ockey, 2 odate, 3 cnat, 4 nname

  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan(
      "lineitem", {l::kOrderkey, l::kSuppkey, l::kExtendedprice, l::kDiscount}));
  li.Join(std::move(o), JoinType::kInner, {0}, {0}, {3, 4});
  // li: 0 okey, 1 skey, 2 ext, 3 disc, 4 cnat, 5 nname

  Qb s(mgr, cfg);
  VWISE_RETURN_IF_ERROR(s.Scan("supplier", {s::kSuppkey, s::kNationkey}));
  li.Join(std::move(s), JoinType::kInner, {1}, {0}, {1},
          e::Eq(e::Col(4, I64), e::Col(6, I64)));  // s_nationkey == c_nationkey
  li.Project(Es(li.Col(5), Revenue(li, 2, 3)), {VC, F64});
  li.Agg({0}, {AggSpec::Sum(1)}, {VC, F64});
  li.Sort({{1, false}});
  SetInfo(info, {"n_name", "revenue"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q6 — forecasting revenue change
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ6(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  Qb q(mgr, cfg);
  VWISE_RETURN_IF_ERROR(q.Scan(
      "lineitem", {l::kShipdate, l::kDiscount, l::kQuantity, l::kExtendedprice},
      {ScanRange{l::kShipdate, date::Parse("1994-01-01"),
                 date::Parse("1994-12-31")}}));
  q.Select(e::And(Fs(e::Ge(q.Col(0), e::DateLit("1994-01-01")),
                     e::Lt(q.Col(0), e::DateLit("1995-01-01")),
                     e::Ge(q.Col(1), e::I64(5)), e::Le(q.Col(1), e::I64(7)),
                     e::Lt(q.Col(2), e::I64(Cents(24))))));
  q.Project(Es(e::Mul(q.F(3), q.F(1))), {F64});
  q.Agg({}, {AggSpec::Sum(0)}, {F64});
  SetInfo(info, {"revenue"});
  return q.Build();
}

// ---------------------------------------------------------------------------
// Q7 — volume shipping (FRANCE <-> GERMANY)
// ---------------------------------------------------------------------------
namespace {

// (key, nation_name) for suppliers/customers of FRANCE or GERMANY.
Result<Qb> KeyedNation(TransactionManager* mgr, const Config& cfg,
                       const char* table, uint32_t key_col, uint32_t nat_col) {
  Qb n(mgr, cfg);
  VWISE_RETURN_IF_ERROR(n.Scan("nation", {n::kNationkey, n::kName}));
  n.Select(e::In(n.Col(1), {Value::String("FRANCE"), Value::String("GERMANY")}));
  Qb t(mgr, cfg);
  VWISE_RETURN_IF_ERROR(t.Scan(table, {key_col, nat_col}));
  t.Join(std::move(n), JoinType::kInner, {1}, {0}, {1});  // (key, nat, nname)
  return t;
}

}  // namespace

Result<OperatorPtr> BuildQ7(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  VWISE_ASSIGN_OR_RETURN(Qb supp,
                         KeyedNation(mgr, cfg, "supplier", s::kSuppkey, s::kNationkey));
  VWISE_ASSIGN_OR_RETURN(Qb cust,
                         KeyedNation(mgr, cfg, "customer", c::kCustkey, c::kNationkey));

  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan(
      "lineitem",
      {l::kOrderkey, l::kSuppkey, l::kExtendedprice, l::kDiscount, l::kShipdate},
      {ScanRange{l::kShipdate, date::Parse("1995-01-01"),
                 date::Parse("1996-12-31")}}));
  li.Select(e::And(Fs(e::Ge(li.Col(4), e::DateLit("1995-01-01")),
                      e::Le(li.Col(4), e::DateLit("1996-12-31")))));
  li.Join(std::move(supp), JoinType::kInner, {1}, {0}, {2});  // + supp_nation @5

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kOrderkey, o::kCustkey}));
  li.Join(std::move(o), JoinType::kInner, {0}, {0}, {1});  // + o_custkey @6

  li.Join(std::move(cust), JoinType::kInner, {6}, {0}, {2},
          e::Ne(e::Col(5, VC), e::Col(7, VC)));  // + cust_nation @7
  li.Project(Es(li.Col(5), li.Col(7), e::Year(li.Col(4)), Revenue(li, 2, 3)),
             {VC, VC, I64, F64});
  li.Agg({0, 1, 2}, {AggSpec::Sum(3)}, {VC, VC, I64, F64});
  li.Sort({{0, true}, {1, true}, {2, true}});
  SetInfo(info, {"supp_nation", "cust_nation", "l_year", "revenue"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q8 — national market share (BRAZIL in AMERICA)
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ8(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  Qb p(mgr, cfg);
  VWISE_RETURN_IF_ERROR(p.Scan("part", {p::kPartkey, p::kType}));
  p.Select(e::Eq(p.Col(1), e::Str("ECONOMY ANODIZED STEEL")));

  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan(
      "lineitem",
      {l::kOrderkey, l::kPartkey, l::kSuppkey, l::kExtendedprice, l::kDiscount}));
  li.Join(std::move(p), JoinType::kLeftSemi, {1}, {0});

  Qb sn(mgr, cfg);
  VWISE_RETURN_IF_ERROR(sn.Scan("supplier", {s::kSuppkey, s::kNationkey}));
  Qb nat(mgr, cfg);
  VWISE_RETURN_IF_ERROR(nat.Scan("nation", {n::kNationkey, n::kName}));
  sn.Join(std::move(nat), JoinType::kInner, {1}, {0}, {1});  // (skey, snat, nname)
  li.Join(std::move(sn), JoinType::kInner, {2}, {0}, {2});   // + supp_nation @5

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kOrderkey, o::kCustkey, o::kOrderdate}));
  o.Select(e::And(Fs(e::Ge(o.Col(2), e::DateLit("1995-01-01")),
                     e::Le(o.Col(2), e::DateLit("1996-12-31")))));
  li.Join(std::move(o), JoinType::kInner, {0}, {0}, {1, 2});  // + ockey @6, odate @7

  Qb r(mgr, cfg);
  VWISE_RETURN_IF_ERROR(r.Scan("region", {r::kRegionkey, r::kName}));
  r.Select(e::Eq(r.Col(1), e::Str("AMERICA")));
  Qb n2(mgr, cfg);
  VWISE_RETURN_IF_ERROR(n2.Scan("nation", {n::kNationkey, n::kName, n::kRegionkey}));
  n2.Join(std::move(r), JoinType::kLeftSemi, {2}, {0});
  Qb cust(mgr, cfg);
  VWISE_RETURN_IF_ERROR(cust.Scan("customer", {c::kCustkey, c::kNationkey}));
  cust.Join(std::move(n2), JoinType::kLeftSemi, {1}, {0});
  li.Join(std::move(cust), JoinType::kLeftSemi, {6}, {0});

  li.Project(Es(e::Year(li.Col(7)), Revenue(li, 3, 4),
                e::Case(e::Eq(e::Col(5, VC), e::Str("BRAZIL")), Revenue(li, 3, 4),
                        e::F64(0.0))),
             {I64, F64, F64});
  li.Agg({0}, {AggSpec::Sum(2), AggSpec::Sum(1)}, {I64, F64, F64});
  li.Project(Es(li.Col(0), e::Div(li.Col(1), li.Col(2))), {I64, F64});
  li.Sort({{0, true}});
  SetInfo(info, {"o_year", "mkt_share"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q9 — product type profit measure (%green%)
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ9(TransactionManager* mgr, const Config& cfg,
                            QueryInfo* info) {
  Qb p(mgr, cfg);
  VWISE_RETURN_IF_ERROR(p.Scan("part", {p::kPartkey, p::kName}));
  p.Select(e::Like(p.Col(1), "%green%"));

  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan("lineitem",
                                {l::kOrderkey, l::kPartkey, l::kSuppkey,
                                 l::kQuantity, l::kExtendedprice, l::kDiscount}));
  li.Join(std::move(p), JoinType::kLeftSemi, {1}, {0});

  Qb sn(mgr, cfg);
  VWISE_RETURN_IF_ERROR(sn.Scan("supplier", {s::kSuppkey, s::kNationkey}));
  Qb nat(mgr, cfg);
  VWISE_RETURN_IF_ERROR(nat.Scan("nation", {n::kNationkey, n::kName}));
  sn.Join(std::move(nat), JoinType::kInner, {1}, {0}, {1});
  li.Join(std::move(sn), JoinType::kInner, {2}, {0}, {2});  // + nname @6

  Qb psq(mgr, cfg);
  VWISE_RETURN_IF_ERROR(
      psq.Scan("partsupp", {ps::kPartkey, ps::kSuppkey, ps::kSupplycost}));
  li.Join(std::move(psq), JoinType::kInner, {1, 2}, {0, 1}, {2});  // + cost @7

  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kOrderkey, o::kOrderdate}));
  li.Join(std::move(o), JoinType::kInner, {0}, {0}, {1});  // + odate @8

  li.Project(Es(li.Col(6), e::Year(li.Col(8)),
                e::Sub(Revenue(li, 4, 5), e::Mul(li.F(7), li.F(3)))),
             {VC, I64, F64});
  li.Agg({0, 1}, {AggSpec::Sum(2)}, {VC, I64, F64});
  li.Sort({{0, true}, {1, false}});
  SetInfo(info, {"nation", "o_year", "sum_profit"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q10 — returned item reporting
// ---------------------------------------------------------------------------
Result<OperatorPtr> BuildQ10(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  Qb o(mgr, cfg);
  VWISE_RETURN_IF_ERROR(o.Scan("orders", {o::kOrderkey, o::kCustkey, o::kOrderdate}));
  o.Select(e::And(Fs(e::Ge(o.Col(2), e::DateLit("1993-10-01")),
                     e::Lt(o.Col(2), e::DateLit("1994-01-01")))));

  Qb li(mgr, cfg);
  VWISE_RETURN_IF_ERROR(li.Scan(
      "lineitem", {l::kOrderkey, l::kExtendedprice, l::kDiscount, l::kReturnflag}));
  li.Select(e::Eq(li.Col(3), e::Str("R")));
  li.Join(std::move(o), JoinType::kInner, {0}, {0}, {1});  // + ockey @4

  Qb cust(mgr, cfg);
  VWISE_RETURN_IF_ERROR(cust.Scan("customer",
                                  {c::kCustkey, c::kName, c::kAddress, c::kNationkey,
                                   c::kPhone, c::kAcctbal, c::kComment}));
  Qb nat(mgr, cfg);
  VWISE_RETURN_IF_ERROR(nat.Scan("nation", {n::kNationkey, n::kName}));
  cust.Join(std::move(nat), JoinType::kInner, {3}, {0}, {1});  // + nname @7
  li.Join(std::move(cust), JoinType::kInner, {4}, {0}, {0, 1, 2, 4, 5, 6, 7});
  // li: 0 okey, 1 ext, 2 disc, 3 rf, 4 ockey, 5 ckey, 6 cname, 7 caddr,
  //     8 cphone, 9 cacct, 10 ccomment, 11 nname
  li.Project(Es(li.Col(5), li.Col(6), Revenue(li, 1, 2), li.Col(9), li.Col(11),
                li.Col(7), li.Col(8), li.Col(10)),
             {I64, VC, F64, D2, VC, VC, VC, VC});
  li.Agg({0, 1, 3, 4, 5, 6, 7}, {AggSpec::Sum(2)},
         {I64, VC, D2, VC, VC, VC, VC, F64});
  li.Sort({{7, false}}, 20);
  li.Project(Es(li.Col(0), li.Col(1), li.Col(7), li.Col(2), li.Col(3),
                li.Col(4), li.Col(5), li.Col(6)),
             {I64, VC, F64, D2, VC, VC, VC, VC});
  SetInfo(info, {"c_custkey", "c_name", "revenue", "c_acctbal", "n_name",
                 "c_address", "c_phone", "c_comment"});
  return li.Build();
}

// ---------------------------------------------------------------------------
// Q11 — important stock identification (GERMANY)
// ---------------------------------------------------------------------------
namespace {

Result<Qb> GermanPartsuppValue(TransactionManager* mgr, const Config& cfg) {
  Qb nat(mgr, cfg);
  VWISE_RETURN_IF_ERROR(nat.Scan("nation", {n::kNationkey, n::kName}));
  nat.Select(e::Eq(nat.Col(1), e::Str("GERMANY")));
  Qb s(mgr, cfg);
  VWISE_RETURN_IF_ERROR(s.Scan("supplier", {s::kSuppkey, s::kNationkey}));
  s.Join(std::move(nat), JoinType::kLeftSemi, {1}, {0});
  Qb psq(mgr, cfg);
  VWISE_RETURN_IF_ERROR(psq.Scan(
      "partsupp", {ps::kPartkey, ps::kSuppkey, ps::kAvailqty, ps::kSupplycost}));
  psq.Join(std::move(s), JoinType::kLeftSemi, {1}, {0});
  psq.Project(Es(psq.Col(0), e::Mul(psq.F(3), psq.F(2))), {I64, F64});
  return psq;  // (partkey, cost*qty)
}

}  // namespace

Result<OperatorPtr> BuildQ11(TransactionManager* mgr, const Config& cfg,
                             QueryInfo* info) {
  VWISE_ASSIGN_OR_RETURN(double sf, InferScaleFactor(mgr));
  VWISE_ASSIGN_OR_RETURN(Qb parts, GermanPartsuppValue(mgr, cfg));
  parts.Agg({0}, {AggSpec::Sum(1)}, {I64, F64});  // (pk, value)
  parts.Project(Es(parts.Col(0), parts.Col(1), e::I64(1)), {I64, F64, I64});

  VWISE_ASSIGN_OR_RETURN(Qb total, GermanPartsuppValue(mgr, cfg));
  total.Agg({}, {AggSpec::Sum(1)}, {F64});
  total.Project(Es(e::I64(1), total.Col(0)), {I64, F64});  // (one, total)

  double frac = 0.0001 / sf;
  parts.Join(std::move(total), JoinType::kInner, {2}, {0}, {1},
             e::Gt(e::Col(1, F64), e::Mul(e::Col(3, F64), e::F64(frac))));
  parts.Project(Es(parts.Col(0), parts.Col(1)), {I64, F64});
  parts.Sort({{1, false}});
  SetInfo(info, {"ps_partkey", "value"});
  return parts.Build();
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

Result<OperatorPtr> BuildQuery(int q, TransactionManager* mgr,
                               const Config& config, QueryInfo* info) {
  using namespace internal;
  switch (q) {
    case 1:
      return BuildQ1(mgr, config, info);
    case 2:
      return BuildQ2(mgr, config, info);
    case 3:
      return BuildQ3(mgr, config, info);
    case 4:
      return BuildQ4(mgr, config, info);
    case 5:
      return BuildQ5(mgr, config, info);
    case 6:
      return BuildQ6(mgr, config, info);
    case 7:
      return BuildQ7(mgr, config, info);
    case 8:
      return BuildQ8(mgr, config, info);
    case 9:
      return BuildQ9(mgr, config, info);
    case 10:
      return BuildQ10(mgr, config, info);
    case 11:
      return BuildQ11(mgr, config, info);
    case 12:
      return BuildQ12(mgr, config, info);
    case 13:
      return BuildQ13(mgr, config, info);
    case 14:
      return BuildQ14(mgr, config, info);
    case 15:
      return BuildQ15(mgr, config, info);
    case 16:
      return BuildQ16(mgr, config, info);
    case 17:
      return BuildQ17(mgr, config, info);
    case 18:
      return BuildQ18(mgr, config, info);
    case 19:
      return BuildQ19(mgr, config, info);
    case 20:
      return BuildQ20(mgr, config, info);
    case 21:
      return BuildQ21(mgr, config, info);
    case 22:
      return BuildQ22(mgr, config, info);
    default:
      return Status::InvalidArgument("TPC-H query number must be 1..22");
  }
}

Result<QueryResult> RunQuery(int q, TransactionManager* mgr,
                             const Config& config) {
  QueryInfo info;
  VWISE_ASSIGN_OR_RETURN(OperatorPtr plan, BuildQuery(q, mgr, config, &info));
  if (!config.profile) {
    return CollectRows(plan.get(), config.vector_size, info.column_names);
  }
  // Mirrors the session RunPlan path: counters on for the pipeline, then
  // EXPLAIN ANALYZE plus this query's primitive-counter delta.
  PrimitiveProfiler::ScopedEnable enable(true);
  std::vector<PrimitiveCounters> before = PrimitiveProfiler::Snapshot();
  VWISE_ASSIGN_OR_RETURN(
      QueryResult result,
      CollectRows(plan.get(), config.vector_size, info.column_names));
  std::vector<PrimitiveCounters> after = PrimitiveProfiler::Snapshot();
  result.profile =
      ExplainAnalyzePlan(*plan) + RenderPrimitiveProfile(before, after);
  return result;
}

Result<std::unique_ptr<PreparedQuery>> PrepareQuery(int q, Session* session,
                                                    TransactionManager* mgr,
                                                    const Config& config) {
  QueryInfo info;
  VWISE_ASSIGN_OR_RETURN(OperatorPtr plan, BuildQuery(q, mgr, config, &info));
  return session->PrepareRoot(std::move(plan), info.column_names);
}

Result<QueryResult> RunQuery(int q, Session* session, TransactionManager* mgr,
                             const Config& config) {
  VWISE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedQuery> prepared,
                         PrepareQuery(q, session, mgr, config));
  return prepared->Run();
}

}  // namespace vwise::tpch
