#include "tpch/generator.h"

#include <algorithm>
#include <cstdio>

#include "catalog/schema.h"
#include "common/date.h"
#include "common/hash.h"
#include "common/rng.h"
#include "tpch/schema.h"

namespace vwise::tpch {

namespace {

// --- vocabulary -------------------------------------------------------------

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[25] = {
    {"ALGERIA", 0},    {"ARGENTINA", 1}, {"BRAZIL", 1},     {"CANADA", 1},
    {"EGYPT", 4},      {"ETHIOPIA", 0},  {"FRANCE", 3},     {"GERMANY", 3},
    {"INDIA", 2},      {"INDONESIA", 2}, {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},      {"JORDAN", 4},    {"KENYA", 0},      {"MOROCCO", 0},
    {"MOZAMBIQUE", 0}, {"PERU", 1},      {"CHINA", 2},      {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                            "MACHINERY"};
const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                              "4-NOT SPECIFIED", "5-LOW"};
const char* kShipmodes[7] = {"AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP",
                             "TRUCK"};
const char* kInstructs[4] = {"COLLECT COD", "DELIVER IN PERSON", "NONE",
                             "TAKE BACK RETURN"};
const char* kTypeSyl1[6] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                            "PROMO"};
const char* kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                            "BRUSHED"};
const char* kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyl1[5] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerSyl2[8] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                                 "CAN", "DRUM"};

const char* kColors[40] = {
    "almond",   "antique",  "aquamarine", "azure",    "beige",    "bisque",
    "black",    "blanched", "blue",       "blush",    "brown",    "burlywood",
    "burnished", "chartreuse", "chiffon", "chocolate", "coral",   "cornflower",
    "cream",    "cyan",     "dark",       "deep",     "dim",      "dodger",
    "drab",     "firebrick", "floral",    "forest",   "frosted",  "gainsboro",
    "ghost",    "goldenrod", "green",     "grey",     "honeydew", "hot",
    "indian",   "ivory",    "khaki",      "lace"};

const char* kWords[24] = {
    "carefully", "quickly",  "furiously", "slyly",    "blithely", "ideas",
    "packages",  "deposits", "accounts",  "theodolites", "pinto",  "beans",
    "foxes",     "instructions", "platelets", "requests", "excuses", "dolphins",
    "asymptotes", "courts",  "dependencies", "waters",  "sauternes", "warhorses"};

std::string Words(Rng* rng, int count) {
  std::string out;
  for (int i = 0; i < count; i++) {
    if (i > 0) out += ' ';
    out += kWords[rng->Uniform(0, 23)];
  }
  return out;
}

std::string Phone(Rng* rng, int64_t nation) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(10 + nation),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(1000, 9999)));
  return buf;
}

std::string KeyedName(const char* prefix, int64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  return buf;
}

// Spec formula: p_retailprice in cents.
int64_t RetailPriceCents(int64_t partkey) {
  return 90000 + (partkey / 10) % 20001 + 100 * (partkey % 1000);
}

uint64_t Seed(uint64_t table, uint64_t row) {
  return HashCombine(HashInt(table * 0x9e3779b9u + 17), HashInt(row));
}

Value VInt(int64_t v) { return Value::Int(v); }
Value VStr(std::string s) { return Value::String(std::move(s)); }

constexpr int64_t kCentsPerUnit = 100;

}  // namespace

Generator::Generator(double scale_factor) : sf_(scale_factor) {
  num_supplier_ = std::max<int64_t>(10, static_cast<int64_t>(10000 * sf_));
  num_part_ = std::max<int64_t>(200, static_cast<int64_t>(200000 * sf_));
  num_customer_ = std::max<int64_t>(150, static_cast<int64_t>(150000 * sf_));
  num_orders_ = num_customer_ * 10;
}

Status Generator::Region(const RowSink& sink) const {
  for (int64_t r = 0; r < 5; r++) {
    Rng rng(Seed(1, r));
    VWISE_RETURN_IF_ERROR(sink({VInt(r), VStr(kRegions[r]), VStr(Words(&rng, 4))}));
  }
  return Status::OK();
}

Status Generator::Nation(const RowSink& sink) const {
  for (int64_t n = 0; n < 25; n++) {
    Rng rng(Seed(2, n));
    VWISE_RETURN_IF_ERROR(sink({VInt(n), VStr(kNations[n].name),
                                VInt(kNations[n].region), VStr(Words(&rng, 4))}));
  }
  return Status::OK();
}

Status Generator::Supplier(const RowSink& sink) const {
  for (int64_t k = 1; k <= num_supplier_; k++) {
    Rng rng(Seed(3, k));
    int64_t nation = rng.Uniform(0, 24);
    std::string comment = Words(&rng, 5);
    // ~1 in 200 suppliers carries the Q16 complaint marker.
    if (rng.Uniform(0, 199) == 0) comment += " Customer Complaints";
    VWISE_RETURN_IF_ERROR(
        sink({VInt(k), VStr(KeyedName("Supplier", k)), VStr(Words(&rng, 2)),
              VInt(nation), VStr(Phone(&rng, nation)),
              VInt(rng.Uniform(-99999, 999999)),  // s_acctbal cents
              VStr(comment)}));
  }
  return Status::OK();
}

Status Generator::Part(const RowSink& sink) const {
  for (int64_t k = 1; k <= num_part_; k++) {
    Rng rng(Seed(4, k));
    // p_name: 5 distinct-ish color words.
    std::string name;
    for (int i = 0; i < 5; i++) {
      if (i > 0) name += ' ';
      name += kColors[rng.Uniform(0, 39)];
    }
    int m = static_cast<int>(rng.Uniform(1, 5));
    std::string mfgr = "Manufacturer#" + std::to_string(m);
    std::string brand =
        "Brand#" + std::to_string(m) + std::to_string(rng.Uniform(1, 5));
    std::string type = std::string(kTypeSyl1[rng.Uniform(0, 5)]) + " " +
                       kTypeSyl2[rng.Uniform(0, 4)] + " " +
                       kTypeSyl3[rng.Uniform(0, 4)];
    std::string container = std::string(kContainerSyl1[rng.Uniform(0, 4)]) +
                            " " + kContainerSyl2[rng.Uniform(0, 7)];
    VWISE_RETURN_IF_ERROR(sink({VInt(k), VStr(name), VStr(mfgr), VStr(brand),
                                VStr(type), VInt(rng.Uniform(1, 50)),
                                VStr(container), VInt(RetailPriceCents(k)),
                                VStr(Words(&rng, 3))}));
  }
  return Status::OK();
}

Status Generator::Partsupp(const RowSink& sink) const {
  for (int64_t p = 1; p <= num_part_; p++) {
    for (int i = 0; i < 4; i++) {
      Rng rng(Seed(5, p * 4 + i));
      // Spec supplier spreading: each part supplied by 4 suppliers.
      int64_t s = (p + i * (num_supplier_ / 4 + (p - 1) / num_supplier_)) %
                      num_supplier_ + 1;
      VWISE_RETURN_IF_ERROR(
          sink({VInt(p), VInt(s), VInt(rng.Uniform(1, 9999)),
                VInt(rng.Uniform(100, 100000)),  // ps_supplycost cents
                VStr(Words(&rng, 4))}));
    }
  }
  return Status::OK();
}

Status Generator::Customer(const RowSink& sink) const {
  for (int64_t k = 1; k <= num_customer_; k++) {
    Rng rng(Seed(6, k));
    int64_t nation = rng.Uniform(0, 24);
    VWISE_RETURN_IF_ERROR(
        sink({VInt(k), VStr(KeyedName("Customer", k)), VStr(Words(&rng, 2)),
              VInt(nation), VStr(Phone(&rng, nation)),
              VInt(rng.Uniform(-99999, 999999)),  // c_acctbal cents
              VStr(kSegments[rng.Uniform(0, 4)]), VStr(Words(&rng, 6))}));
  }
  return Status::OK();
}

void Generator::GenOrderRow(int64_t key_seq, uint64_t seed_salt,
                            std::vector<Value>* order,
                            std::vector<std::vector<Value>>* its_lines) const {
  Rng rng(Seed(7 + seed_salt, key_seq));
  int64_t orderkey = key_seq;
  // Only 2/3 of customers have orders (spec: custkey % 3 != 0).
  int64_t custkey = rng.Uniform(1, num_customer_);
  if (custkey % 3 == 0) custkey = custkey == num_customer_ ? 1 : custkey + 1;
  if (custkey % 3 == 0) custkey = custkey == num_customer_ ? 2 : custkey + 1;
  int32_t lo = date::Parse("1992-01-01");
  int32_t hi = date::Parse("1998-08-02");
  int32_t orderdate = static_cast<int32_t>(rng.Uniform(lo, hi));

  int n_lines = static_cast<int>(rng.Uniform(1, 7));
  int64_t totalprice = 0;
  int n_f = 0, n_o = 0;
  its_lines->clear();
  for (int ln = 1; ln <= n_lines; ln++) {
    int64_t partkey = rng.Uniform(1, num_part_);
    int supp_i = static_cast<int>(rng.Uniform(0, 3));
    int64_t suppkey =
        (partkey + supp_i * (num_supplier_ / 4 + (partkey - 1) / num_supplier_)) %
            num_supplier_ + 1;
    int64_t quantity = rng.Uniform(1, 50);
    int64_t extprice = quantity * RetailPriceCents(partkey);  // cents
    int64_t discount = rng.Uniform(0, 10);  // percent
    int64_t tax = rng.Uniform(0, 8);        // percent
    int32_t shipdate = orderdate + static_cast<int32_t>(rng.Uniform(1, 121));
    int32_t commitdate = orderdate + static_cast<int32_t>(rng.Uniform(30, 90));
    int32_t receiptdate = shipdate + static_cast<int32_t>(rng.Uniform(1, 30));
    int32_t cutoff = date::Parse("1995-06-17");
    std::string returnflag =
        receiptdate <= cutoff ? (rng.Uniform(0, 1) ? "R" : "A") : "N";
    std::string linestatus = shipdate > cutoff ? "O" : "F";
    if (linestatus == "F") {
      n_f++;
    } else {
      n_o++;
    }
    totalprice += extprice * (100 - discount) / 100 * (100 + tax) / 100;
    its_lines->push_back(
        {VInt(orderkey), VInt(partkey), VInt(suppkey), VInt(ln),
         VInt(quantity * kCentsPerUnit), VInt(extprice), VInt(discount),
         VInt(tax), VStr(returnflag), VStr(linestatus), VInt(shipdate),
         VInt(commitdate), VInt(receiptdate), VStr(kInstructs[rng.Uniform(0, 3)]),
         VStr(kShipmodes[rng.Uniform(0, 6)]), VStr(Words(&rng, 3))});
  }
  std::string status = n_o == 0 ? "F" : n_f == 0 ? "O" : "P";
  std::string comment = Words(&rng, 5);
  // ~1% of orders carry the Q13 "special ... requests" pattern.
  if (rng.Uniform(0, 99) == 0) comment += " special packages requests";
  *order = {VInt(orderkey),
            VInt(custkey),
            VStr(status),
            VInt(totalprice),
            VInt(orderdate),
            VStr(kPriorities[rng.Uniform(0, 4)]),
            VStr(KeyedName("Clerk", rng.Uniform(1, std::max<int64_t>(1, num_orders_ / 1000)))),
            VInt(0),
            VStr(comment)};
}

Status Generator::OrdersAndLineitem(const RowSink& orders,
                                    const RowSink& lines) const {
  std::vector<Value> order;
  std::vector<std::vector<Value>> its_lines;
  for (int64_t k = 1; k <= num_orders_; k++) {
    GenOrderRow(k, 0, &order, &its_lines);
    VWISE_RETURN_IF_ERROR(orders(order));
    for (const auto& line : its_lines) {
      VWISE_RETURN_IF_ERROR(lines(line));
    }
  }
  return Status::OK();
}

Status Generator::RefreshOrders(int round, int64_t count, const RowSink& orders,
                                const RowSink& lines) const {
  std::vector<Value> order;
  std::vector<std::vector<Value>> its_lines;
  int64_t base = num_orders_ + 1 + static_cast<int64_t>(round) * count;
  for (int64_t k = base; k < base + count; k++) {
    GenOrderRow(k, 1000, &order, &its_lines);
    VWISE_RETURN_IF_ERROR(orders(order));
    for (const auto& line : its_lines) {
      VWISE_RETURN_IF_ERROR(lines(line));
    }
  }
  return Status::OK();
}

Status Generator::LoadAll(TransactionManager* mgr) const {
  struct TableGen {
    TableSchema schema;
    std::function<Status(const RowSink&)> gen;
  };
  auto load = [&](const TableSchema& schema,
                  const std::function<Status(const RowSink&)>& gen) -> Status {
    if (!mgr->HasTable(schema.name())) {
      VWISE_RETURN_IF_ERROR(
          mgr->CreateTable(schema, ColumnGroups::Dsm(schema.num_columns())));
    }
    return mgr->BulkLoad(schema.name(), [&](TableWriter* w) {
      return gen([&](const std::vector<Value>& row) { return w->AppendRow(row); });
    });
  };
  VWISE_RETURN_IF_ERROR(load(RegionSchema(), [this](const RowSink& s) { return Region(s); }));
  VWISE_RETURN_IF_ERROR(load(NationSchema(), [this](const RowSink& s) { return Nation(s); }));
  VWISE_RETURN_IF_ERROR(load(SupplierSchema(), [this](const RowSink& s) { return Supplier(s); }));
  VWISE_RETURN_IF_ERROR(load(PartSchema(), [this](const RowSink& s) { return Part(s); }));
  VWISE_RETURN_IF_ERROR(load(PartsuppSchema(), [this](const RowSink& s) { return Partsupp(s); }));
  VWISE_RETURN_IF_ERROR(load(CustomerSchema(), [this](const RowSink& s) { return Customer(s); }));

  // Orders and lineitem stream together into two writers.
  if (!mgr->HasTable("orders")) {
    VWISE_RETURN_IF_ERROR(mgr->CreateTable(OrdersSchema(), ColumnGroups::Dsm(9)));
  }
  if (!mgr->HasTable("lineitem")) {
    VWISE_RETURN_IF_ERROR(mgr->CreateTable(LineitemSchema(), ColumnGroups::Dsm(16)));
  }
  // BulkLoad loads one table at a time; buffer lineitem rows per batch is
  // avoided by doing two generation passes (generation is cheap and
  // deterministic).
  VWISE_RETURN_IF_ERROR(mgr->BulkLoad("orders", [&](TableWriter* w) {
    return OrdersAndLineitem(
        [&](const std::vector<Value>& row) { return w->AppendRow(row); },
        [](const std::vector<Value>&) { return Status::OK(); });
  }));
  VWISE_RETURN_IF_ERROR(mgr->BulkLoad("lineitem", [&](TableWriter* w) {
    return OrdersAndLineitem(
        [](const std::vector<Value>&) { return Status::OK(); },
        [&](const std::vector<Value>& row) { return w->AppendRow(row); });
  }));
  return Status::OK();
}

}  // namespace vwise::tpch
