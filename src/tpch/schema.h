#ifndef VWISE_TPCH_SCHEMA_H_
#define VWISE_TPCH_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/schema.h"

namespace vwise::tpch {

// Column indices for plan construction. Order matches the schemas below.
namespace col {
namespace r {
enum { kRegionkey = 0, kName, kComment };
}
namespace n {
enum { kNationkey = 0, kName, kRegionkey, kComment };
}
namespace s {
enum { kSuppkey = 0, kName, kAddress, kNationkey, kPhone, kAcctbal, kComment };
}
namespace p {
enum { kPartkey = 0, kName, kMfgr, kBrand, kType, kSize, kContainer,
       kRetailprice, kComment };
}
namespace ps {
enum { kPartkey = 0, kSuppkey, kAvailqty, kSupplycost, kComment };
}
namespace c {
enum { kCustkey = 0, kName, kAddress, kNationkey, kPhone, kAcctbal,
       kMktsegment, kComment };
}
namespace o {
enum { kOrderkey = 0, kCustkey, kOrderstatus, kTotalprice, kOrderdate,
       kOrderpriority, kClerk, kShippriority, kComment };
}
namespace l {
enum { kOrderkey = 0, kPartkey, kSuppkey, kLinenumber, kQuantity,
       kExtendedprice, kDiscount, kTax, kReturnflag, kLinestatus, kShipdate,
       kCommitdate, kReceiptdate, kShipinstruct, kShipmode, kComment };
}
}  // namespace col

TableSchema RegionSchema();
TableSchema NationSchema();
TableSchema SupplierSchema();
TableSchema PartSchema();
TableSchema PartsuppSchema();
TableSchema CustomerSchema();
TableSchema OrdersSchema();
TableSchema LineitemSchema();

// All 8 schemas in load order.
std::vector<TableSchema> AllSchemas();

}  // namespace vwise::tpch

#endif  // VWISE_TPCH_SCHEMA_H_
