#include "tpch/schema.h"

namespace vwise::tpch {

namespace {
DataType Dec2() { return DataType::Decimal(2); }
}  // namespace

TableSchema RegionSchema() {
  return TableSchema("region", {{"r_regionkey", DataType::Int64()},
                                {"r_name", DataType::Varchar()},
                                {"r_comment", DataType::Varchar()}});
}

TableSchema NationSchema() {
  return TableSchema("nation", {{"n_nationkey", DataType::Int64()},
                                {"n_name", DataType::Varchar()},
                                {"n_regionkey", DataType::Int64()},
                                {"n_comment", DataType::Varchar()}});
}

TableSchema SupplierSchema() {
  return TableSchema("supplier", {{"s_suppkey", DataType::Int64()},
                                  {"s_name", DataType::Varchar()},
                                  {"s_address", DataType::Varchar()},
                                  {"s_nationkey", DataType::Int64()},
                                  {"s_phone", DataType::Varchar()},
                                  {"s_acctbal", Dec2()},
                                  {"s_comment", DataType::Varchar()}});
}

TableSchema PartSchema() {
  return TableSchema("part", {{"p_partkey", DataType::Int64()},
                              {"p_name", DataType::Varchar()},
                              {"p_mfgr", DataType::Varchar()},
                              {"p_brand", DataType::Varchar()},
                              {"p_type", DataType::Varchar()},
                              {"p_size", DataType::Int64()},
                              {"p_container", DataType::Varchar()},
                              {"p_retailprice", Dec2()},
                              {"p_comment", DataType::Varchar()}});
}

TableSchema PartsuppSchema() {
  return TableSchema("partsupp", {{"ps_partkey", DataType::Int64()},
                                  {"ps_suppkey", DataType::Int64()},
                                  {"ps_availqty", DataType::Int64()},
                                  {"ps_supplycost", Dec2()},
                                  {"ps_comment", DataType::Varchar()}});
}

TableSchema CustomerSchema() {
  return TableSchema("customer", {{"c_custkey", DataType::Int64()},
                                  {"c_name", DataType::Varchar()},
                                  {"c_address", DataType::Varchar()},
                                  {"c_nationkey", DataType::Int64()},
                                  {"c_phone", DataType::Varchar()},
                                  {"c_acctbal", Dec2()},
                                  {"c_mktsegment", DataType::Varchar()},
                                  {"c_comment", DataType::Varchar()}});
}

TableSchema OrdersSchema() {
  return TableSchema("orders", {{"o_orderkey", DataType::Int64()},
                                {"o_custkey", DataType::Int64()},
                                {"o_orderstatus", DataType::Varchar()},
                                {"o_totalprice", Dec2()},
                                {"o_orderdate", DataType::Date()},
                                {"o_orderpriority", DataType::Varchar()},
                                {"o_clerk", DataType::Varchar()},
                                {"o_shippriority", DataType::Int64()},
                                {"o_comment", DataType::Varchar()}});
}

TableSchema LineitemSchema() {
  return TableSchema("lineitem", {{"l_orderkey", DataType::Int64()},
                                  {"l_partkey", DataType::Int64()},
                                  {"l_suppkey", DataType::Int64()},
                                  {"l_linenumber", DataType::Int64()},
                                  {"l_quantity", Dec2()},
                                  {"l_extendedprice", Dec2()},
                                  {"l_discount", Dec2()},
                                  {"l_tax", Dec2()},
                                  {"l_returnflag", DataType::Varchar()},
                                  {"l_linestatus", DataType::Varchar()},
                                  {"l_shipdate", DataType::Date()},
                                  {"l_commitdate", DataType::Date()},
                                  {"l_receiptdate", DataType::Date()},
                                  {"l_shipinstruct", DataType::Varchar()},
                                  {"l_shipmode", DataType::Varchar()},
                                  {"l_comment", DataType::Varchar()}});
}

std::vector<TableSchema> AllSchemas() {
  return {RegionSchema(),   NationSchema(), SupplierSchema(),
          PartSchema(),     PartsuppSchema(), CustomerSchema(),
          OrdersSchema(),   LineitemSchema()};
}

}  // namespace vwise::tpch
