#ifndef VWISE_TPCH_QUERIES_INTERNAL_H_
#define VWISE_TPCH_QUERIES_INTERNAL_H_

#include "tpch/queries.h"
#include "tpch/query_builder.h"

namespace vwise::tpch::internal {

// One builder per query, split across two translation units.
#define VWISE_TPCH_DECLARE_Q(n) \
  Result<OperatorPtr> BuildQ##n(TransactionManager* mgr, const Config& cfg, \
                                QueryInfo* info);
VWISE_TPCH_DECLARE_Q(1)
VWISE_TPCH_DECLARE_Q(2)
VWISE_TPCH_DECLARE_Q(3)
VWISE_TPCH_DECLARE_Q(4)
VWISE_TPCH_DECLARE_Q(5)
VWISE_TPCH_DECLARE_Q(6)
VWISE_TPCH_DECLARE_Q(7)
VWISE_TPCH_DECLARE_Q(8)
VWISE_TPCH_DECLARE_Q(9)
VWISE_TPCH_DECLARE_Q(10)
VWISE_TPCH_DECLARE_Q(11)
VWISE_TPCH_DECLARE_Q(12)
VWISE_TPCH_DECLARE_Q(13)
VWISE_TPCH_DECLARE_Q(14)
VWISE_TPCH_DECLARE_Q(15)
VWISE_TPCH_DECLARE_Q(16)
VWISE_TPCH_DECLARE_Q(17)
VWISE_TPCH_DECLARE_Q(18)
VWISE_TPCH_DECLARE_Q(19)
VWISE_TPCH_DECLARE_Q(20)
VWISE_TPCH_DECLARE_Q(21)
VWISE_TPCH_DECLARE_Q(22)
#undef VWISE_TPCH_DECLARE_Q

// Scale factor inferred from the loaded supplier cardinality.
Result<double> InferScaleFactor(TransactionManager* mgr);

}  // namespace vwise::tpch::internal

#endif  // VWISE_TPCH_QUERIES_INTERNAL_H_
