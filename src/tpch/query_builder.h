#ifndef VWISE_TPCH_QUERY_BUILDER_H_
#define VWISE_TPCH_QUERY_BUILDER_H_

#include "planner/plan_builder.h"
#include "tpch/schema.h"

namespace vwise::tpch {

// TPC-H plans are written against the generic plan builder.
using Qb = ::vwise::PlanBuilder;
using ::vwise::Es;
using ::vwise::Fs;
using ::vwise::Revenue;

}  // namespace vwise::tpch

#endif  // VWISE_TPCH_QUERY_BUILDER_H_
