#ifndef VWISE_TPCH_GENERATOR_H_
#define VWISE_TPCH_GENERATOR_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "txn/transaction_manager.h"

namespace vwise::tpch {

// Deterministic dbgen-style data generator (substitute for the official
// TPC-H dbgen tool, see DESIGN.md). Cardinalities, value domains, key
// relationships and the distributions the 22 queries select on follow the
// specification shapes; text fields are simplified but preserve the
// substrings the queries match (PROMO%, %BRASS, forest%, Customer
// Complaints, special ... requests, ...).
//
// Every row is generated from an Rng seeded by (table, row), so any row can
// be regenerated independently and repeated runs are identical.
class Generator {
 public:
  using RowSink = std::function<Status(const std::vector<Value>&)>;

  explicit Generator(double scale_factor);

  double scale_factor() const { return sf_; }
  int64_t num_supplier() const { return num_supplier_; }
  int64_t num_part() const { return num_part_; }
  int64_t num_customer() const { return num_customer_; }
  int64_t num_orders() const { return num_orders_; }

  Status Region(const RowSink& sink) const;
  Status Nation(const RowSink& sink) const;
  Status Supplier(const RowSink& sink) const;
  Status Part(const RowSink& sink) const;
  Status Partsupp(const RowSink& sink) const;
  Status Customer(const RowSink& sink) const;
  // Orders and their lineitems are generated together (o_totalprice is the
  // sum over the order's lines).
  Status OrdersAndLineitem(const RowSink& orders, const RowSink& lines) const;

  // RF1: `count` brand-new orders (keys above the base population) for
  // refresh round `round`, with their lineitems.
  Status RefreshOrders(int round, int64_t count, const RowSink& orders,
                       const RowSink& lines) const;

  // Creates and bulk-loads all 8 tables into `mgr` (PAX group for the
  // NULLable-style pairs is not needed: TPC-H columns are NOT NULL).
  Status LoadAll(TransactionManager* mgr) const;

 private:
  void GenOrderRow(int64_t key_seq, uint64_t seed_salt,
                   std::vector<Value>* order,
                   std::vector<std::vector<Value>>* its_lines) const;

  double sf_;
  int64_t num_supplier_;
  int64_t num_part_;
  int64_t num_customer_;
  int64_t num_orders_;
};

}  // namespace vwise::tpch

#endif  // VWISE_TPCH_GENERATOR_H_
