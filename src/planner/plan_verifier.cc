#include "planner/plan_verifier.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "catalog/schema.h"
#include "exec/checked.h"
#include "exec/profile.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "exec/xchg.h"
#include "rewriter/null_rewrite.h"
#include "storage/table_file.h"

namespace vwise {

namespace {

std::string TypesToString(const std::vector<TypeId>& ts) {
  std::string s = "[";
  for (size_t i = 0; i < ts.size(); i++) {
    if (i > 0) s += ", ";
    s += TypeIdToString(ts[i]);
  }
  s += "]";
  return s;
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFnName(AggSpec::Fn fn) {
  switch (fn) {
    case AggSpec::Fn::kSum:
      return "sum";
    case AggSpec::Fn::kMin:
      return "min";
    case AggSpec::Fn::kMax:
      return "max";
    case AggSpec::Fn::kCount:
      return "count";
    case AggSpec::Fn::kCountStar:
      return "count*";
    case AggSpec::Fn::kAvg:
      return "avg";
  }
  return "?";
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeftSemi:
      return "semi";
    case JoinType::kLeftAnti:
      return "anti";
    case JoinType::kLeftOuter:
      return "outer";
  }
  return "?";
}

std::string ColName(size_t i) {
  std::string s = "col";
  s += std::to_string(i);
  return s;
}

Status ExprErr(const Expr& e, std::string msg) {
  std::string s = "plan verifier: ";
  s += msg;
  s += "\n  in expression: ";
  s += ExplainExpr(e);
  return Status::Internal(std::move(s));
}

Status FilterErr(const Filter& f, std::string msg) {
  std::string s = "plan verifier: ";
  s += msg;
  s += "\n  in filter: ";
  s += ExplainFilter(f);
  return Status::Internal(std::move(s));
}

Status NodeErr(const char* node, std::string msg) {
  std::string s = "plan verifier: [";
  s += node;
  s += "] ";
  s += msg;
  return Status::Internal(std::move(s));
}

bool IsIntFamily(TypeId t) {
  return t == TypeId::kU8 || t == TypeId::kI32 || t == TypeId::kI64;
}

void CollectScans(const Operator& op, std::vector<const ScanOperator*>* out);

// Collects every column index referenced under `e` / `f`.
void CollectExprCols(const Expr& e, std::vector<size_t>* out);

void CollectFilterCols(const Filter& f, std::vector<size_t>* out) {
  if (auto* c = dynamic_cast<const CmpFilter*>(&f)) {
    CollectExprCols(c->left(), out);
    CollectExprCols(c->right(), out);
  } else if (auto* a = dynamic_cast<const AndFilter*>(&f)) {
    for (const auto& ch : a->children()) CollectFilterCols(*ch, out);
  } else if (auto* o = dynamic_cast<const OrFilter*>(&f)) {
    for (const auto& ch : o->children()) CollectFilterCols(*ch, out);
  } else if (auto* n = dynamic_cast<const NotFilter*>(&f)) {
    CollectFilterCols(n->child(), out);
  } else if (auto* in = dynamic_cast<const InFilter*>(&f)) {
    CollectExprCols(in->input(), out);
  } else if (auto* lk = dynamic_cast<const LikeFilter*>(&f)) {
    CollectExprCols(lk->input(), out);
  } else if (auto* na = dynamic_cast<const rewriter::NullAwareCmpFilter*>(&f)) {
    out->push_back(na->val_col());
    out->push_back(na->ind_col());
  }
}

void CollectExprCols(const Expr& e, std::vector<size_t>* out) {
  if (auto* c = dynamic_cast<const ColRefExpr*>(&e)) {
    out->push_back(c->index());
  } else if (auto* a = dynamic_cast<const ArithExpr*>(&e)) {
    CollectExprCols(a->left(), out);
    CollectExprCols(a->right(), out);
  } else if (auto* cs = dynamic_cast<const CastExpr*>(&e)) {
    CollectExprCols(cs->input(), out);
  } else if (auto* y = dynamic_cast<const YearExpr*>(&e)) {
    CollectExprCols(y->input(), out);
  } else if (auto* s = dynamic_cast<const SubstrExpr*>(&e)) {
    CollectExprCols(s->input(), out);
  } else if (auto* ce = dynamic_cast<const CaseExpr*>(&e)) {
    CollectFilterCols(ce->cond(), out);
    CollectExprCols(ce->then_expr(), out);
    CollectExprCols(ce->else_expr(), out);
  }
}

// An indicator guard is the shape RewriteNullableCmp / RewriteIsNotNull
// emit: `indicator_col == literal` over a u8 column. Its presence in a
// conjunction makes sibling references to NULLable value columns sound (the
// guard removes NULL rows before they can qualify).
bool IsIndicatorGuard(const Filter& f) {
  auto* cmp = dynamic_cast<const CmpFilter*>(&f);
  if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
  auto* col = dynamic_cast<const ColRefExpr*>(&cmp->left());
  return col != nullptr && col->physical() == TypeId::kU8 &&
         cmp->right().IsConstant();
}

bool AnyNullable(const Expr& e, const std::vector<bool>& nullable) {
  std::vector<size_t> cols;
  CollectExprCols(e, &cols);
  for (size_t c : cols) {
    if (c < nullable.size() && nullable[c]) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pretty printers
// ---------------------------------------------------------------------------

std::string ExplainExpr(const Expr& e) {
  if (auto* c = dynamic_cast<const ColRefExpr*>(&e)) {
    std::string s = ColName(c->index());
    s += ":";
    s += TypeIdToString(c->physical());
    return s;
  }
  if (auto* k = dynamic_cast<const ConstExpr*>(&e)) {
    std::string s = k->value().ToString();
    s += ":";
    s += TypeIdToString(k->physical());
    return s;
  }
  if (auto* a = dynamic_cast<const ArithExpr*>(&e)) {
    std::string s = "(";
    s += ExplainExpr(a->left());
    s += " ";
    s += ArithOpName(a->op());
    s += " ";
    s += ExplainExpr(a->right());
    s += ")";
    return s;
  }
  if (auto* cs = dynamic_cast<const CastExpr*>(&e)) {
    std::string s = "cast<";
    s += TypeIdToString(e.physical());
    s += ">(";
    s += ExplainExpr(cs->input());
    s += ")";
    return s;
  }
  if (auto* y = dynamic_cast<const YearExpr*>(&e)) {
    std::string s = "year(";
    s += ExplainExpr(y->input());
    s += ")";
    return s;
  }
  if (auto* sb = dynamic_cast<const SubstrExpr*>(&e)) {
    std::string s = "substr(";
    s += ExplainExpr(sb->input());
    s += ")";
    return s;
  }
  if (auto* ce = dynamic_cast<const CaseExpr*>(&e)) {
    std::string s = "case(";
    s += ExplainFilter(ce->cond());
    s += ", ";
    s += ExplainExpr(ce->then_expr());
    s += ", ";
    s += ExplainExpr(ce->else_expr());
    s += ")";
    return s;
  }
  std::string s = "<expr:";
  s += TypeIdToString(e.physical());
  s += ">";
  return s;
}

std::string ExplainFilter(const Filter& f) {
  if (auto* c = dynamic_cast<const CmpFilter*>(&f)) {
    std::string s = "(";
    s += ExplainExpr(c->left());
    s += " ";
    s += CmpOpName(c->op());
    s += " ";
    s += ExplainExpr(c->right());
    s += ")";
    return s;
  }
  if (auto* a = dynamic_cast<const AndFilter*>(&f)) {
    std::string s = "(";
    for (size_t i = 0; i < a->children().size(); i++) {
      if (i > 0) s += " and ";
      s += ExplainFilter(*a->children()[i]);
    }
    s += ")";
    return s;
  }
  if (auto* o = dynamic_cast<const OrFilter*>(&f)) {
    std::string s = "(";
    for (size_t i = 0; i < o->children().size(); i++) {
      if (i > 0) s += " or ";
      s += ExplainFilter(*o->children()[i]);
    }
    s += ")";
    return s;
  }
  if (auto* n = dynamic_cast<const NotFilter*>(&f)) {
    std::string s = "not(";
    s += ExplainFilter(n->child());
    s += ")";
    return s;
  }
  if (auto* in = dynamic_cast<const InFilter*>(&f)) {
    std::string s = ExplainExpr(in->input());
    s += in->negate() ? " not in (" : " in (";
    for (size_t i = 0; i < in->values().size(); i++) {
      if (i > 0) s += ", ";
      s += in->values()[i].ToString();
    }
    s += ")";
    return s;
  }
  if (auto* lk = dynamic_cast<const LikeFilter*>(&f)) {
    std::string s = ExplainExpr(lk->input());
    s += lk->negate() ? " not like '" : " like '";
    s += lk->pattern();
    s += "'";
    return s;
  }
  if (auto* na = dynamic_cast<const rewriter::NullAwareCmpFilter*>(&f)) {
    std::string s = "nullaware(";
    s += ColName(na->val_col());
    s += ", ind=";
    s += ColName(na->ind_col());
    s += ")";
    return s;
  }
  return "<filter>";
}

namespace {

// Appends a pseudo-line (an Xchg fragment header) — never profiled.
void PseudoLine(std::string text, size_t depth,
                std::vector<PlanNodeProfile>* out) {
  PlanNodeProfile e;
  e.op = std::move(text);
  e.depth = depth;
  out->push_back(std::move(e));
}

// Pre-order walk producing one PlanNodeProfile per printed line. `prof` is
// the closest ProfiledOperator peeled off above `op` (its counters describe
// this node's output stream). Returns the index of the entry created for the
// unwrapped node, or SIZE_MAX when nothing was appended.
size_t WalkNode(const Operator& op, size_t depth, const ProfiledOperator* prof,
                std::vector<PlanNodeProfile>* out) {
  if (auto* ck = dynamic_cast<const CheckedOperator*>(&op)) {
    return WalkNode(ck->child(), depth, prof, out);  // transparent wrapper
  }
  if (auto* pf = dynamic_cast<const ProfiledOperator*>(&op)) {
    // Innermost wrapper wins (there is at most one per edge today).
    return WalkNode(pf->child(), depth, pf, out);
  }
  std::string line;
  std::string spill_note;  // EXPLAIN ANALYZE-only spill telemetry
  std::string repr_note;   // EXPLAIN ANALYZE-only representation telemetry
  const Operator* child0 = nullptr;
  const Operator* child1 = nullptr;
  if (auto* s = dynamic_cast<const ScanOperator*>(&op)) {
    line += "Scan ";
    line += s->snapshot().schema != nullptr ? s->snapshot().schema->name()
                                            : "<no schema>";
    line += " cols=[";
    for (size_t i = 0; i < s->columns().size(); i++) {
      if (i > 0) line += ", ";
      line += std::to_string(s->columns()[i]);
    }
    line += "]";
    if (s->options().stripe_end != SIZE_MAX) {
      line += " stripes=[";
      line += std::to_string(s->options().stripe_begin);
      line += ", ";
      line += std::to_string(s->options().stripe_end);
      line += ")";
    }
    const ScanOperator::ReprStats& rs = s->repr_stats();
    if (rs.dict_cols + rs.rle_cols + rs.flat_cols > 0) {
      repr_note = " repr=dict:" + std::to_string(rs.dict_cols) +
                  "/rle:" + std::to_string(rs.rle_cols) +
                  "/flat:" + std::to_string(rs.flat_cols);
    }
  } else if (auto* sel = dynamic_cast<const SelectOperator*>(&op)) {
    line += "Select ";
    line += ExplainFilter(sel->filter());
    child0 = &sel->child();
  } else if (auto* p = dynamic_cast<const ProjectOperator*>(&op)) {
    line += "Project [";
    for (size_t i = 0; i < p->exprs().size(); i++) {
      if (i > 0) line += ", ";
      line += ExplainExpr(*p->exprs()[i]);
    }
    line += "]";
    child0 = &p->child();
  } else if (auto* agg = dynamic_cast<const HashAggOperator*>(&op)) {
    line += "HashAgg groups=[";
    for (size_t i = 0; i < agg->group_cols().size(); i++) {
      if (i > 0) line += ", ";
      line += std::to_string(agg->group_cols()[i]);
    }
    line += "] aggs=[";
    for (size_t i = 0; i < agg->aggs().size(); i++) {
      if (i > 0) line += ", ";
      line += AggFnName(agg->aggs()[i].fn);
      if (agg->aggs()[i].fn != AggSpec::Fn::kCountStar) {
        line += "(";
        line += ColName(agg->aggs()[i].col);
        line += ")";
      }
    }
    line += "]";
    if (agg->spill_partitions() > 0) {
      spill_note = " spill_partitions=" + std::to_string(agg->spill_partitions());
      if (agg->spill_repartitions() > 0) {
        spill_note += " repartitions=" +
                      std::to_string(agg->spill_repartitions()) + " depth=" +
                      std::to_string(agg->spill_repartition_depth());
      }
    }
    child0 = &agg->child();
  } else if (auto* j = dynamic_cast<const HashJoinOperator*>(&op)) {
    line += "HashJoin ";
    line += JoinTypeName(j->spec().type);
    line += " probe[";
    for (size_t i = 0; i < j->spec().probe_keys.size(); i++) {
      if (i > 0) line += ", ";
      line += std::to_string(j->spec().probe_keys[i]);
    }
    line += "]=build[";
    for (size_t i = 0; i < j->spec().build_keys.size(); i++) {
      if (i > 0) line += ", ";
      line += std::to_string(j->spec().build_keys[i]);
    }
    line += "] payload=[";
    for (size_t i = 0; i < j->spec().build_payload.size(); i++) {
      if (i > 0) line += ", ";
      line += std::to_string(j->spec().build_payload[i]);
    }
    line += "]";
    if (j->spec().residual) {
      line += " residual=";
      line += ExplainFilter(*j->spec().residual);
    }
    if (j->spill_partitions() > 0) {
      spill_note = " spill_partitions=" + std::to_string(j->spill_partitions());
      if (j->spill_repartitions() > 0) {
        spill_note += " repartitions=" +
                      std::to_string(j->spill_repartitions()) + " depth=" +
                      std::to_string(j->spill_repartition_depth());
      }
    }
    child0 = &j->probe();
    child1 = &j->build();
  } else if (auto* so = dynamic_cast<const SortOperator*>(&op)) {
    line += "Sort keys=[";
    for (size_t i = 0; i < so->keys().size(); i++) {
      if (i > 0) line += ", ";
      line += ColName(so->keys()[i].col);
      line += so->keys()[i].ascending ? " asc" : " desc";
    }
    line += "]";
    if (so->limit() != SIZE_MAX) {
      line += " limit=";
      line += std::to_string(so->limit());
      line += " offset=";
      line += std::to_string(so->offset());
    }
    if (so->spill_runs() > 0) {
      spill_note = " spill_runs=" + std::to_string(so->spill_runs());
    }
    child0 = &so->child();
  } else if (auto* lim = dynamic_cast<const LimitOperator*>(&op)) {
    line += "Limit ";
    line += std::to_string(lim->limit());
    line += " offset=";
    line += std::to_string(lim->offset());
    child0 = &lim->child();
  } else {
    auto* x = dynamic_cast<const XchgOperator*>(&op);
    line += x != nullptr
                ? "Xchg workers=" + std::to_string(x->num_workers())
                : "<operator>";
    line += " -> ";
    line += TypesToString(op.OutputTypes());
    PlanNodeProfile e;
    e.op = std::move(line);
    e.depth = depth;
    if (prof != nullptr) {
      const OperatorStats& st = prof->stats();
      e.profiled = true;
      e.next_calls = st.next_calls;
      e.chunks_out = st.chunks_out;
      e.rows_out = st.rows_out;
      e.open_ms = static_cast<double>(st.open_ns) / 1e6;
      e.next_ms = static_cast<double>(st.next_ns) / 1e6;
    }
    out->push_back(std::move(e));
    size_t idx = out->size() - 1;
    if (x != nullptr) {
      // Show worker 0's fragment as the representative sub-plan. The factory
      // builds a fresh, never-opened instance, so its counters stay zero —
      // per-worker runtime lives in the Xchg line above it.
      auto frag = x->factory()(0, x->num_workers());
      if (frag.ok() && frag.value() != nullptr) {
        PseudoLine("fragment(0):", depth + 1, out);
        WalkNode(*frag.value(), depth + 2, nullptr, out);
      } else {
        PseudoLine("<fragment unavailable>", depth + 1, out);
      }
    }
    return idx;
  }
  line += " -> ";
  line += TypesToString(op.OutputTypes());
  PlanNodeProfile e;
  e.op = std::move(line);
  e.depth = depth;
  e.spill = std::move(spill_note);
  e.repr = std::move(repr_note);
  if (prof != nullptr) {
    const OperatorStats& st = prof->stats();
    e.profiled = true;
    e.next_calls = st.next_calls;
    e.chunks_out = st.chunks_out;
    e.rows_out = st.rows_out;
    e.open_ms = static_cast<double>(st.open_ns) / 1e6;
    e.next_ms = static_cast<double>(st.next_ns) / 1e6;
  }
  out->push_back(std::move(e));
  size_t idx = out->size() - 1;
  for (const Operator* c : {child0, child1}) {
    if (c == nullptr) continue;
    size_t ci = WalkNode(*c, depth + 1, nullptr, out);
    if (ci != SIZE_MAX && (*out)[ci].profiled) {
      (*out)[idx].rows_in += (*out)[ci].rows_out;
    }
  }
  return idx;
}

}  // namespace

std::vector<PlanNodeProfile> CollectPlanProfile(const Operator& root) {
  std::vector<PlanNodeProfile> nodes;
  WalkNode(root, 0, nullptr, &nodes);
  return nodes;
}

std::string ExplainPlan(const Operator& root) {
  std::string out;
  for (const PlanNodeProfile& n : CollectPlanProfile(root)) {
    out.append(n.depth * 2, ' ');
    out += n.op;
    out += "\n";
  }
  return out;
}

std::string ExplainAnalyzePlan(const Operator& root) {
  std::string out;
  for (const PlanNodeProfile& n : CollectPlanProfile(root)) {
    out.append(n.depth * 2, ' ');
    out += n.op;
    if (n.profiled) {
      char ann[160];
      std::snprintf(ann, sizeof(ann),
                    " [rows=%llu in=%llu chunks=%llu next_calls=%llu "
                    "open=%.3fms next=%.3fms]",
                    static_cast<unsigned long long>(n.rows_out),
                    static_cast<unsigned long long>(n.rows_in),
                    static_cast<unsigned long long>(n.chunks_out),
                    static_cast<unsigned long long>(n.next_calls), n.open_ms,
                    n.next_ms);
      out += ann;
    }
    out += n.spill;
    out += n.repr;
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Expression / filter inference
// ---------------------------------------------------------------------------

Result<TypeId> InferExprType(const Expr& e, const std::vector<TypeId>& input,
                             const std::vector<bool>* nullable) {
  if (auto* c = dynamic_cast<const ColRefExpr*>(&e)) {
    if (c->index() >= input.size()) {
      std::string msg = "column reference out of range: ";
      msg += ColName(c->index());
      msg += " over input layout ";
      msg += TypesToString(input);
      return ExprErr(e, std::move(msg));
    }
    if (input[c->index()] != c->physical()) {
      std::string msg = "column reference type mismatch: ";
      msg += ColName(c->index());
      msg += " is ";
      msg += TypeIdToString(input[c->index()]);
      msg += " in the input layout but the expression declares ";
      msg += TypeIdToString(c->physical());
      return ExprErr(e, std::move(msg));
    }
    if (nullable != nullptr && c->index() < nullable->size() &&
        (*nullable)[c->index()]) {
      std::string msg = "consumes NULLable column ";
      msg += ColName(c->index());
      msg += " directly; the rewriter must decompose it into (value, "
             "indicator) columns first (execution is NULL-oblivious)";
      return ExprErr(e, std::move(msg));
    }
    return c->physical();
  }
  if (auto* k = dynamic_cast<const ConstExpr*>(&e)) {
    const Value::Kind kind = k->value().kind();
    bool ok = false;
    switch (k->physical()) {
      case TypeId::kU8:
      case TypeId::kI32:
      case TypeId::kI64:
        ok = kind == Value::Kind::kInt;
        break;
      case TypeId::kF64:
        ok = kind == Value::Kind::kInt || kind == Value::Kind::kDouble;
        break;
      case TypeId::kStr:
        ok = kind == Value::Kind::kString;
        break;
    }
    if (!ok) {
      std::string msg = "literal value kind does not match declared type ";
      msg += TypeIdToString(k->physical());
      return ExprErr(e, std::move(msg));
    }
    return k->physical();
  }
  if (auto* a = dynamic_cast<const ArithExpr*>(&e)) {
    VWISE_ASSIGN_OR_RETURN(TypeId l, InferExprType(a->left(), input, nullable));
    VWISE_ASSIGN_OR_RETURN(TypeId r,
                           InferExprType(a->right(), input, nullable));
    if (l != r) {
      std::string msg = "arithmetic operands have different physical types (";
      msg += TypeIdToString(l);
      msg += " vs ";
      msg += TypeIdToString(r);
      msg += "); the plan builder must insert casts";
      return ExprErr(e, std::move(msg));
    }
    if (l != TypeId::kI64 && l != TypeId::kF64) {
      std::string msg = "arithmetic requires i64 or f64 operands, got ";
      msg += TypeIdToString(l);
      return ExprErr(e, std::move(msg));
    }
    if (e.physical() != l) {
      std::string msg = "arithmetic node declares ";
      msg += TypeIdToString(e.physical());
      msg += " but its operands compute ";
      msg += TypeIdToString(l);
      return ExprErr(e, std::move(msg));
    }
    return l;
  }
  if (auto* cs = dynamic_cast<const CastExpr*>(&e)) {
    VWISE_ASSIGN_OR_RETURN(TypeId from,
                           InferExprType(cs->input(), input, nullable));
    const TypeId to = e.physical();
    const bool ok =
        from == to || (from == TypeId::kI32 && to == TypeId::kI64) ||
        (from == TypeId::kI32 && to == TypeId::kF64) ||
        (from == TypeId::kI64 && to == TypeId::kF64) ||
        (from == TypeId::kU8 && to == TypeId::kI64);
    if (!ok) {
      std::string msg = "unsupported cast ";
      msg += TypeIdToString(from);
      msg += " -> ";
      msg += TypeIdToString(to);
      return ExprErr(e, std::move(msg));
    }
    return to;
  }
  if (auto* y = dynamic_cast<const YearExpr*>(&e)) {
    VWISE_ASSIGN_OR_RETURN(TypeId from,
                           InferExprType(y->input(), input, nullable));
    if (from != TypeId::kI32) {
      std::string msg = "year() requires an i32 date input, got ";
      msg += TypeIdToString(from);
      return ExprErr(e, std::move(msg));
    }
    if (e.physical() != TypeId::kI64) {
      return ExprErr(e, "year() must declare an i64 result");
    }
    return TypeId::kI64;
  }
  if (auto* sb = dynamic_cast<const SubstrExpr*>(&e)) {
    VWISE_ASSIGN_OR_RETURN(TypeId from,
                           InferExprType(sb->input(), input, nullable));
    if (from != TypeId::kStr || e.physical() != TypeId::kStr) {
      std::string msg = "substr() requires a str input and result, got ";
      msg += TypeIdToString(from);
      return ExprErr(e, std::move(msg));
    }
    return TypeId::kStr;
  }
  if (auto* ce = dynamic_cast<const CaseExpr*>(&e)) {
    VWISE_RETURN_IF_ERROR(VerifyFilterTree(ce->cond(), input, nullable));
    VWISE_ASSIGN_OR_RETURN(TypeId t,
                           InferExprType(ce->then_expr(), input, nullable));
    VWISE_ASSIGN_OR_RETURN(TypeId f,
                           InferExprType(ce->else_expr(), input, nullable));
    if (t != f || e.physical() != t) {
      std::string msg = "case branches must share the declared type (then=";
      msg += TypeIdToString(t);
      msg += ", else=";
      msg += TypeIdToString(f);
      msg += ", declared=";
      msg += TypeIdToString(e.physical());
      msg += ")";
      return ExprErr(e, std::move(msg));
    }
    return t;
  }
  // Unknown expression node: accept at its declared type.
  return e.physical();
}

Status VerifyFilterTree(const Filter& f, const std::vector<TypeId>& input,
                        const std::vector<bool>* nullable) {
  if (auto* c = dynamic_cast<const CmpFilter*>(&f)) {
    VWISE_ASSIGN_OR_RETURN(TypeId l, InferExprType(c->left(), input, nullable));
    VWISE_ASSIGN_OR_RETURN(TypeId r,
                           InferExprType(c->right(), input, nullable));
    if (l != r) {
      std::string msg = "comparison operands have different physical types (";
      msg += TypeIdToString(l);
      msg += " vs ";
      msg += TypeIdToString(r);
      msg += ")";
      return FilterErr(f, std::move(msg));
    }
    return Status::OK();
  }
  if (auto* a = dynamic_cast<const AndFilter*>(&f)) {
    // A conjunction containing an indicator guard (`ind == 0` over a u8
    // column — the shape RewriteNullableCmp emits) makes sibling access to
    // NULLable value columns sound: the guard removes NULL rows first.
    const std::vector<bool>* child_nullable = nullable;
    if (nullable != nullptr) {
      for (const auto& ch : a->children()) {
        if (IsIndicatorGuard(*ch)) {
          child_nullable = nullptr;
          break;
        }
      }
    }
    for (const auto& ch : a->children()) {
      VWISE_RETURN_IF_ERROR(VerifyFilterTree(*ch, input, child_nullable));
    }
    return Status::OK();
  }
  if (auto* o = dynamic_cast<const OrFilter*>(&f)) {
    for (const auto& ch : o->children()) {
      VWISE_RETURN_IF_ERROR(VerifyFilterTree(*ch, input, nullable));
    }
    return Status::OK();
  }
  if (auto* n = dynamic_cast<const NotFilter*>(&f)) {
    return VerifyFilterTree(n->child(), input, nullable);
  }
  if (auto* in = dynamic_cast<const InFilter*>(&f)) {
    VWISE_ASSIGN_OR_RETURN(TypeId t,
                           InferExprType(in->input(), input, nullable));
    if (t != TypeId::kStr && t != TypeId::kI32 && t != TypeId::kI64) {
      std::string msg = "IN is supported over str/i32/i64 inputs only, got ";
      msg += TypeIdToString(t);
      return FilterErr(f, std::move(msg));
    }
    for (const Value& v : in->values()) {
      const bool ok = t == TypeId::kStr ? v.kind() == Value::Kind::kString
                                        : v.kind() == Value::Kind::kInt;
      if (!ok) {
        std::string msg = "IN list value ";
        msg += v.ToString();
        msg += " does not match the input type ";
        msg += TypeIdToString(t);
        return FilterErr(f, std::move(msg));
      }
    }
    return Status::OK();
  }
  if (auto* lk = dynamic_cast<const LikeFilter*>(&f)) {
    VWISE_ASSIGN_OR_RETURN(TypeId t,
                           InferExprType(lk->input(), input, nullable));
    if (t != TypeId::kStr) {
      std::string msg = "LIKE requires a str input, got ";
      msg += TypeIdToString(t);
      return FilterErr(f, std::move(msg));
    }
    return Status::OK();
  }
  if (auto* na = dynamic_cast<const rewriter::NullAwareCmpFilter*>(&f)) {
    // The NULL-aware ablation baseline checks the indicator itself, so it is
    // exempt from the decomposition rule — but its columns must exist and
    // have the types its kernel hard-codes (i64 values, u8 indicator).
    if (na->val_col() >= input.size() || na->ind_col() >= input.size()) {
      return FilterErr(f, "null-aware filter references a column out of range");
    }
    if (input[na->val_col()] != TypeId::kI64) {
      return FilterErr(f, "null-aware filter requires an i64 value column");
    }
    if (input[na->ind_col()] != TypeId::kU8) {
      return FilterErr(f, "null-aware filter requires a u8 indicator column");
    }
    return Status::OK();
  }
  // Unknown filter type: accepted conservatively.
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Rewriter-rule postconditions
// ---------------------------------------------------------------------------

Status VerifyNullRewriteFilter(const Filter& rewritten, size_t val_col,
                               TypeId val_type, size_t ind_col, size_t width) {
  std::vector<size_t> cols;
  CollectFilterCols(rewritten, &cols);
  bool touches_ind = false;
  for (size_t c : cols) {
    if (c == ind_col) touches_ind = true;
    if (c != val_col && c != ind_col) {
      std::string msg = "NULL-decomposed filter references ";
      msg += ColName(c);
      msg += ", outside the (value=";
      msg += ColName(val_col);
      msg += ", indicator=";
      msg += ColName(ind_col);
      msg += ") pair";
      return FilterErr(rewritten, std::move(msg));
    }
  }
  if (!touches_ind) {
    std::string msg = "NULL-decomposed filter never consults the indicator "
                      "column ";
    msg += ColName(ind_col);
    msg += "; NULL rows (type-safe dummies in the value column) could qualify";
    return FilterErr(rewritten, std::move(msg));
  }
  // Type-check over the decomposed layout. Unrelated slots get a dummy type;
  // the reference check above guarantees they are never consulted.
  std::vector<TypeId> layout(width, TypeId::kI64);
  if (val_col >= width || ind_col >= width) {
    return FilterErr(rewritten, "decomposed column pair exceeds layout width");
  }
  layout[val_col] = val_type;
  layout[ind_col] = TypeId::kU8;
  return VerifyFilterTree(rewritten, layout, nullptr);
}

Status VerifyNullRewritePair(const Expr& value, const Expr& indicator,
                             size_t a_val, size_t a_ind, size_t b_val,
                             size_t b_ind, TypeId val_type, size_t width) {
  if (a_val >= width || a_ind >= width || b_val >= width || b_ind >= width) {
    return ExprErr(value, "decomposed column pair exceeds layout width");
  }
  std::vector<TypeId> layout(width, TypeId::kI64);
  layout[a_val] = val_type;
  layout[b_val] = val_type;
  layout[a_ind] = TypeId::kU8;
  layout[b_ind] = TypeId::kU8;

  std::vector<size_t> val_cols;
  CollectExprCols(value, &val_cols);
  const bool val_ok =
      std::find(val_cols.begin(), val_cols.end(), a_val) != val_cols.end() &&
      std::find(val_cols.begin(), val_cols.end(), b_val) != val_cols.end();
  if (!val_ok) {
    return ExprErr(value,
                   "decomposed value expression must reference both operand "
                   "value columns");
  }
  VWISE_ASSIGN_OR_RETURN(TypeId vt, InferExprType(value, layout, nullptr));
  if (vt != val_type) {
    std::string msg = "decomposed value expression computes ";
    msg += TypeIdToString(vt);
    msg += " but the operands are ";
    msg += TypeIdToString(val_type);
    return ExprErr(value, std::move(msg));
  }

  std::vector<size_t> ind_cols;
  CollectExprCols(indicator, &ind_cols);
  const bool ind_ok =
      std::find(ind_cols.begin(), ind_cols.end(), a_ind) != ind_cols.end() &&
      std::find(ind_cols.begin(), ind_cols.end(), b_ind) != ind_cols.end();
  if (!ind_ok) {
    return ExprErr(indicator,
                   "decomposed indicator expression must combine both operand "
                   "indicator columns (dropping one silently un-NULLs that "
                   "operand)");
  }
  VWISE_ASSIGN_OR_RETURN(TypeId it, InferExprType(indicator, layout, nullptr));
  if (it != TypeId::kI64) {
    std::string msg = "decomposed indicator expression must compute i64, got ";
    msg += TypeIdToString(it);
    return ExprErr(indicator, std::move(msg));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Representation propagation (compressed execution)
// ---------------------------------------------------------------------------

Status VerifyReprPropagation(const std::vector<TypeId>& types,
                             const std::vector<uint8_t>& reprs) {
  if (types.size() != reprs.size()) {
    std::string msg = "representation mask count ";
    msg += std::to_string(reprs.size());
    msg += " does not match column count ";
    msg += std::to_string(types.size());
    return NodeErr("repr", std::move(msg));
  }
  constexpr uint8_t kKnown = kReprFlat | kReprDict | kReprRle;
  for (size_t c = 0; c < types.size(); c++) {
    const uint8_t m = reprs[c];
    if ((m & ~kKnown) != 0) {
      std::string msg = ColName(c);
      msg += " carries unknown representation bits in mask ";
      msg += std::to_string(m);
      return NodeErr("repr", std::move(msg));
    }
    if ((m & kReprFlat) == 0) {
      std::string msg = ColName(c);
      msg += " mask ";
      msg += ReprMaskToString(m);
      msg += " excludes flat; Normalize() must always be a legal landing";
      return NodeErr("repr", std::move(msg));
    }
    if ((m & kReprDict) != 0 && types[c] != TypeId::kStr) {
      std::string msg = ColName(c);
      msg += ":";
      msg += TypeIdToString(types[c]);
      msg += " claims a dict representation (PDICT covers strings only)";
      return NodeErr("repr", std::move(msg));
    }
    if ((m & kReprRle) != 0 && types[c] == TypeId::kStr) {
      std::string msg = ColName(c);
      msg += ":str claims an RLE representation (string runs decode at the "
             "scan)";
      return NodeErr("repr", std::move(msg));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Plan verification
// ---------------------------------------------------------------------------

Status PlanVerifier::Verify(const Operator& root, PlanProperties* props) const {
  PlanProperties local;
  PlanProperties* out = props != nullptr ? props : &local;
  Status st = VerifyNode(root, out);
  if (st.ok()) return st;
  std::string msg{st.message()};
  msg += "\nin plan:\n";
  msg += ExplainPlan(root);
  return Status::Internal(std::move(msg));
}

Status PlanVerifier::VerifyScan(const ScanOperator& op,
                                PlanProperties* out) const {
  const TableSchema* schema = op.snapshot().schema;
  if (schema == nullptr) return NodeErr("scan", "snapshot carries no schema");
  out->types.clear();
  out->nullable.clear();
  for (uint32_t col : op.columns()) {
    if (col >= schema->num_columns()) {
      std::string msg = "references column ";
      msg += std::to_string(col);
      msg += " of table '";
      msg += schema->name();
      msg += "' which has only ";
      msg += std::to_string(schema->num_columns());
      msg += " columns";
      return NodeErr("scan", std::move(msg));
    }
    out->types.push_back(schema->column(col).type.physical());
    out->nullable.push_back(schema->column(col).nullable);
  }
  if (out->types != op.OutputTypes()) {
    std::string msg = "declared output types ";
    msg += TypesToString(op.OutputTypes());
    msg += " do not match the catalog schema of '";
    msg += schema->name();
    msg += "': ";
    msg += TypesToString(out->types);
    return NodeErr("scan", std::move(msg));
  }
  for (const ScanRange& r : op.options().ranges) {
    if (r.col >= schema->num_columns()) {
      std::string msg = "min-max range hint references column ";
      msg += std::to_string(r.col);
      msg += " beyond table '";
      msg += schema->name();
      msg += "'";
      return NodeErr("scan", std::move(msg));
    }
    if (r.lo > r.hi) {
      return NodeErr("scan", "min-max range hint has lo > hi");
    }
  }
  const auto& opts = op.options();
  if (opts.stripe_begin > opts.stripe_end) {
    return NodeErr("scan", "stripe partition has begin > end");
  }
  if (opts.stripe_end != SIZE_MAX && op.snapshot().stable != nullptr &&
      opts.stripe_end > op.snapshot().stable->stripe_count()) {
    std::string msg = "stripe partition end ";
    msg += std::to_string(opts.stripe_end);
    msg += " exceeds the table's ";
    msg += std::to_string(op.snapshot().stable->stripe_count());
    msg += " stripes";
    return NodeErr("scan", std::move(msg));
  }
  out->ordering.clear();
  out->partitions = 1;
  // Representation masks: which encodings this scan may hand through. The
  // scan adopts storage encodings only when the knob is on and the snapshot
  // carries no deltas (scan.cc mirrors this as encoded_ok_ — delta merging
  // writes through flat buffers); the per-column possibilities come from the
  // stored segment codecs across the scanned stripes.
  out->reprs.assign(out->types.size(), kReprFlat);
  const bool deltas_empty =
      op.snapshot().deltas == nullptr || op.snapshot().deltas->empty();
  if (config_.enable_encoded_exec && deltas_empty &&
      op.snapshot().stable != nullptr) {
    const TableFile& tf = *op.snapshot().stable;
    const size_t stripe_lo = opts.stripe_begin;
    const size_t stripe_hi = std::min(opts.stripe_end, tf.stripe_count());
    for (size_t i = 0; i < op.columns().size(); i++) {
      const uint32_t col = op.columns()[i];
      for (size_t s = stripe_lo; s < stripe_hi; s++) {
        if (col >= tf.stripe(s).segments.size()) continue;
        const Codec codec = tf.stripe(s).segments[col].codec;
        if (codec == Codec::kPdict && out->types[i] == TypeId::kStr) {
          out->reprs[i] |= kReprDict;
        } else if (codec == Codec::kRle && out->types[i] != TypeId::kStr) {
          out->reprs[i] |= kReprRle;
        }
      }
    }
  }
  return VerifyReprPropagation(out->types, out->reprs);
}

Status PlanVerifier::VerifyXchg(const XchgOperator& op,
                                PlanProperties* out) const {
  const int n = op.num_workers();
  if (n < 1) return NodeErr("xchg", "num_workers must be >= 1");
  const std::vector<TypeId>& declared = op.OutputTypes();

  // Stripe partitions per table file, for disjointness/coverage checking.
  struct TableStripes {
    size_t stripe_count = 0;
    std::vector<std::pair<size_t, size_t>> intervals;
  };
  std::map<const TableFile*, TableStripes> partitions;

  for (int w = 0; w < n; w++) {
    auto frag_or = op.factory()(w, n);
    if (!frag_or.ok()) {
      std::string msg = "fragment ";
      msg += std::to_string(w);
      msg += " failed to build: ";
      msg += frag_or.status().message();
      return NodeErr("xchg", std::move(msg));
    }
    OperatorPtr frag = std::move(frag_or).value();
    if (frag == nullptr) {
      std::string msg = "fragment ";
      msg += std::to_string(w);
      msg += " is null";
      return NodeErr("xchg", std::move(msg));
    }
    PlanProperties fp;
    Status st = VerifyNode(*frag, &fp);
    if (!st.ok()) {
      std::string msg{st.message()};
      msg += "\n  in xchg fragment ";
      msg += std::to_string(w);
      return Status::Internal(std::move(msg));
    }
    if (fp.types != declared) {
      std::string msg = "fragment ";
      msg += std::to_string(w);
      msg += " produces ";
      msg += TypesToString(fp.types);
      msg += " but the exchange declares ";
      msg += TypesToString(declared);
      msg += "\n  fragment plan:\n";
      msg += ExplainPlan(*frag);
      return NodeErr("xchg", std::move(msg));
    }
    if (w == 0) out->nullable = fp.nullable;

    std::vector<const ScanOperator*> scans;
    CollectScans(*frag, &scans);
    for (const ScanOperator* s : scans) {
      const auto& opts = s->options();
      if (opts.stripe_end == SIZE_MAX || s->snapshot().stable == nullptr) {
        continue;  // unpartitioned scan — nothing to cross-check
      }
      TableStripes& ts = partitions[s->snapshot().stable.get()];
      ts.stripe_count = s->snapshot().stable->stripe_count();
      ts.intervals.emplace_back(
          opts.stripe_begin, std::min(opts.stripe_end, ts.stripe_count));
    }
  }

  for (auto& [file, ts] : partitions) {
    (void)file;
    std::sort(ts.intervals.begin(), ts.intervals.end());
    size_t covered = 0;
    bool contiguous_from_zero = true;
    for (size_t i = 0; i < ts.intervals.size(); i++) {
      const auto& [b, e] = ts.intervals[i];
      if (i > 0 && b < ts.intervals[i - 1].second) {
        std::string msg = "parallel scan stripe partitions overlap: [";
        msg += std::to_string(ts.intervals[i - 1].first);
        msg += ", ";
        msg += std::to_string(ts.intervals[i - 1].second);
        msg += ") and [";
        msg += std::to_string(b);
        msg += ", ";
        msg += std::to_string(e);
        msg += ") — rows would be produced twice";
        return NodeErr("xchg", std::move(msg));
      }
      if (b != covered) contiguous_from_zero = false;
      covered = e;
    }
    // When every worker contributed exactly one partition of this table, the
    // union must cover all stripes — a gap silently drops rows.
    if (static_cast<int>(ts.intervals.size()) == n &&
        (!contiguous_from_zero || covered != ts.stripe_count)) {
      std::string msg =
          "parallel scan stripe partitions do not cover the table: union "
          "ends at ";
      msg += std::to_string(covered);
      msg += " of ";
      msg += std::to_string(ts.stripe_count);
      msg += " stripes";
      return NodeErr("xchg", std::move(msg));
    }
  }

  out->types = declared;
  out->ordering.clear();  // nondeterministic interleave of worker streams
  out->partitions = n;
  // Producers normalize before the cross-thread deep copy (the consumer
  // must not chase dict/RLE views into fragment-owned storage buffers).
  out->reprs.assign(out->types.size(), kReprFlat);
  return Status::OK();
}

Status PlanVerifier::VerifyNode(const Operator& op, PlanProperties* out) const {
  if (auto* ck = dynamic_cast<const CheckedOperator*>(&op)) {
    return VerifyNode(ck->child(), out);
  }
  if (auto* pf = dynamic_cast<const ProfiledOperator*>(&op)) {
    return VerifyNode(pf->child(), out);
  }
  if (auto* s = dynamic_cast<const ScanOperator*>(&op)) {
    return VerifyScan(*s, out);
  }
  if (auto* x = dynamic_cast<const XchgOperator*>(&op)) {
    return VerifyXchg(*x, out);
  }

  if (auto* sel = dynamic_cast<const SelectOperator*>(&op)) {
    VWISE_RETURN_IF_ERROR(VerifyNode(sel->child(), out));
    // Selection decides row membership: consuming a NULLable column here
    // without an indicator guard would let NULL rows qualify.
    VWISE_RETURN_IF_ERROR(
        VerifyFilterTree(sel->filter(), out->types, &out->nullable));
    // Types/nullability/ordering/partitions unchanged — and so are the
    // representation masks: encoded filter kernels keep the encoding
    // (selection only narrows), and a filter without one normalizes in
    // place, which shrinks what downstream may see but never widens it.
    return Status::OK();
  }

  if (auto* p = dynamic_cast<const ProjectOperator*>(&op)) {
    PlanProperties in;
    VWISE_RETURN_IF_ERROR(VerifyNode(p->child(), &in));
    const std::vector<TypeId>& declared = p->OutputTypes();
    if (declared.size() != p->exprs().size()) {
      return NodeErr("project", "declared type count != expression count");
    }
    out->types.clear();
    out->nullable.clear();
    for (size_t i = 0; i < p->exprs().size(); i++) {
      const Expr& ex = *p->exprs()[i];
      // Projections may compute on NULLable value columns unconditionally
      // (the decomposition carries the indicator alongside), so inference
      // runs without the nullable check; nullability propagates instead.
      VWISE_ASSIGN_OR_RETURN(TypeId t, InferExprType(ex, in.types, nullptr));
      if (t != declared[i]) {
        std::string msg = "expression ";
        msg += std::to_string(i);
        msg += " computes ";
        msg += TypeIdToString(t);
        msg += " but the projection declares ";
        msg += TypeIdToString(declared[i]);
        msg += "\n  expression: ";
        msg += ExplainExpr(ex);
        return NodeErr("project", std::move(msg));
      }
      out->types.push_back(t);
      out->nullable.push_back(AnyNullable(ex, in.nullable));
    }
    // Expression evaluation normalizes encoded inputs (ColRefExpr::Eval is
    // the decode-on-demand boundary), so projected columns are flat.
    out->reprs.assign(out->types.size(), kReprFlat);
    // Ordering survives only through pass-through columns (remapped).
    out->ordering.clear();
    for (const SortKey& k : in.ordering) {
      bool mapped = false;
      for (size_t i = 0; i < p->exprs().size() && !mapped; i++) {
        auto* cr = dynamic_cast<const ColRefExpr*>(p->exprs()[i].get());
        if (cr != nullptr && cr->index() == k.col) {
          out->ordering.push_back({i, k.ascending});
          mapped = true;
        }
      }
      if (!mapped) break;  // ordering is a prefix property
    }
    out->partitions = in.partitions;
    return Status::OK();
  }

  if (auto* agg = dynamic_cast<const HashAggOperator*>(&op)) {
    PlanProperties in;
    VWISE_RETURN_IF_ERROR(VerifyNode(agg->child(), &in));
    std::vector<TypeId> expected;
    for (size_t g : agg->group_cols()) {
      if (g >= in.types.size()) {
        std::string msg = "group column ";
        msg += ColName(g);
        msg += " out of range over input ";
        msg += TypesToString(in.types);
        return NodeErr("hash_agg", std::move(msg));
      }
      if (in.nullable[g]) {
        std::string msg = "groups by NULLable column ";
        msg += ColName(g);
        msg += " without NULL decomposition (dummy values would form groups)";
        return NodeErr("hash_agg", std::move(msg));
      }
      expected.push_back(in.types[g]);
    }
    for (const AggSpec& a : agg->aggs()) {
      if (a.fn == AggSpec::Fn::kCountStar) {
        expected.push_back(TypeId::kI64);
        continue;
      }
      if (a.col >= in.types.size()) {
        std::string msg = AggFnName(a.fn);
        msg += " input column ";
        msg += ColName(a.col);
        msg += " out of range over input ";
        msg += TypesToString(in.types);
        return NodeErr("hash_agg", std::move(msg));
      }
      if (in.nullable[a.col]) {
        std::string msg = AggFnName(a.fn);
        msg += " aggregates NULLable column ";
        msg += ColName(a.col);
        msg += " without NULL decomposition (dummy values would be counted)";
        return NodeErr("hash_agg", std::move(msg));
      }
      const TypeId t = in.types[a.col];
      switch (a.fn) {
        case AggSpec::Fn::kSum:
        case AggSpec::Fn::kAvg:
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax:
          if (t == TypeId::kStr) {
            std::string msg = AggFnName(a.fn);
            msg += " over string column ";
            msg += ColName(a.col);
            msg += " is not supported (the accumulator would reinterpret "
                   "string headers as integers)";
            return NodeErr("hash_agg", std::move(msg));
          }
          break;
        case AggSpec::Fn::kCount:
        case AggSpec::Fn::kCountStar:
          break;
      }
      switch (a.fn) {
        case AggSpec::Fn::kSum:
          expected.push_back(IsIntFamily(t) ? TypeId::kI64 : TypeId::kF64);
          break;
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax:
          expected.push_back(t == TypeId::kF64   ? TypeId::kF64
                             : t == TypeId::kI32 ? TypeId::kI32
                                                 : TypeId::kI64);
          break;
        case AggSpec::Fn::kCount:
        case AggSpec::Fn::kCountStar:
          expected.push_back(TypeId::kI64);
          break;
        case AggSpec::Fn::kAvg:
          expected.push_back(TypeId::kF64);
          break;
      }
    }
    if (expected != agg->OutputTypes()) {
      std::string msg = "declared output types ";
      msg += TypesToString(agg->OutputTypes());
      msg += " do not match the aggregate typing rules: ";
      msg += TypesToString(expected);
      return NodeErr("hash_agg", std::move(msg));
    }
    out->types = std::move(expected);
    out->nullable.assign(out->types.size(), false);
    out->ordering.clear();  // hash table iteration order
    out->partitions = 1;    // blocking operator re-serializes
    // Aggregation materializes fresh output vectors (inputs normalize at the
    // ProcessChunk boundary, modulo the RLE per-run fast path).
    out->reprs.assign(out->types.size(), kReprFlat);
    return Status::OK();
  }

  if (auto* j = dynamic_cast<const HashJoinOperator*>(&op)) {
    PlanProperties probe;
    PlanProperties build;
    VWISE_RETURN_IF_ERROR(VerifyNode(j->probe(), &probe));
    VWISE_RETURN_IF_ERROR(VerifyNode(j->build(), &build));
    const auto& spec = j->spec();
    if (spec.probe_keys.empty() ||
        spec.probe_keys.size() != spec.build_keys.size()) {
      return NodeErr("hash_join",
                     "probe/build key lists must be non-empty and equal-sized");
    }
    for (size_t i = 0; i < spec.probe_keys.size(); i++) {
      const size_t pk = spec.probe_keys[i];
      const size_t bk = spec.build_keys[i];
      if (pk >= probe.types.size() || bk >= build.types.size()) {
        return NodeErr("hash_join", "join key column out of range");
      }
      if (probe.types[pk] != build.types[bk]) {
        std::string msg = "key ";
        msg += std::to_string(i);
        msg += " has mismatched physical types: probe ";
        msg += ColName(pk);
        msg += ":";
        msg += TypeIdToString(probe.types[pk]);
        msg += " vs build ";
        msg += ColName(bk);
        msg += ":";
        msg += TypeIdToString(build.types[bk]);
        return NodeErr("hash_join", std::move(msg));
      }
      if (probe.nullable[pk] || build.nullable[bk]) {
        return NodeErr("hash_join",
                       "join key consumes a NULLable column without NULL "
                       "decomposition (dummy values would match)");
      }
    }
    for (size_t pay : spec.build_payload) {
      if (pay >= build.types.size()) {
        return NodeErr("hash_join", "build payload column out of range");
      }
    }
    const bool emits_payload =
        spec.type == JoinType::kInner || spec.type == JoinType::kLeftOuter;
    std::vector<TypeId> expected = probe.types;
    std::vector<bool> expected_null = probe.nullable;
    if (emits_payload) {
      for (size_t pay : spec.build_payload) {
        expected.push_back(build.types[pay]);
        // Outer-join payload is padded for unmatched probe rows: the dummy
        // values carry the u8 matched flag as their indicator, so the
        // columns are NULLable downstream.
        expected_null.push_back(spec.type == JoinType::kLeftOuter
                                    ? true
                                    : build.nullable[pay]);
      }
    }
    if (spec.type == JoinType::kLeftOuter) {
      expected.push_back(TypeId::kU8);
      expected_null.push_back(false);
    }
    if (expected != j->OutputTypes()) {
      std::string msg = "declared output types ";
      msg += TypesToString(j->OutputTypes());
      msg += " do not match the join layout rules: ";
      msg += TypesToString(expected);
      return NodeErr("hash_join", std::move(msg));
    }
    if (spec.residual != nullptr) {
      // The residual is evaluated against [probe columns..., payload...]
      // regardless of join type (kLeftOuter's flag is not visible to it).
      std::vector<TypeId> layout = probe.types;
      std::vector<bool> layout_null = probe.nullable;
      for (size_t pay : spec.build_payload) {
        layout.push_back(build.types[pay]);
        layout_null.push_back(build.nullable[pay]);
      }
      VWISE_RETURN_IF_ERROR(
          VerifyFilterTree(*spec.residual, layout, &layout_null));
    }
    out->types = std::move(expected);
    out->nullable = std::move(expected_null);
    out->ordering = probe.ordering;  // pairs are emitted in probe order
    out->partitions = probe.partitions;
    // Both sides normalize before build/probe positional copies.
    out->reprs.assign(out->types.size(), kReprFlat);
    return Status::OK();
  }

  if (auto* so = dynamic_cast<const SortOperator*>(&op)) {
    VWISE_RETURN_IF_ERROR(VerifyNode(so->child(), out));
    for (const SortKey& k : so->keys()) {
      if (k.col >= out->types.size()) {
        std::string msg = "sort key ";
        msg += ColName(k.col);
        msg += " out of range over input ";
        msg += TypesToString(out->types);
        return NodeErr("sort", std::move(msg));
      }
      if (out->nullable[k.col]) {
        std::string msg = "sort key on NULLable column ";
        msg += ColName(k.col);
        msg += " without NULL decomposition (dummy values would order "
               "arbitrarily)";
        return NodeErr("sort", std::move(msg));
      }
    }
    out->ordering = so->keys();
    out->partitions = 1;  // full materialization re-serializes
    // Sort normalizes every consumed chunk before row-wise materialization.
    out->reprs.assign(out->types.size(), kReprFlat);
    return Status::OK();
  }

  if (auto* lim = dynamic_cast<const LimitOperator*>(&op)) {
    return VerifyNode(lim->child(), out);  // pure pass-through
  }

  // Unknown operator: accept at declared types, reset properties.
  out->types = op.OutputTypes();
  out->nullable.assign(out->types.size(), false);
  out->ordering.clear();
  out->partitions = 1;
  out->reprs.assign(out->types.size(), kReprFlat);
  return Status::OK();
}

namespace {

void CollectScans(const Operator& op, std::vector<const ScanOperator*>* out) {
  if (auto* ck = dynamic_cast<const CheckedOperator*>(&op)) {
    CollectScans(ck->child(), out);
  } else if (auto* pf = dynamic_cast<const ProfiledOperator*>(&op)) {
    CollectScans(pf->child(), out);
  } else if (auto* s = dynamic_cast<const ScanOperator*>(&op)) {
    out->push_back(s);
  } else if (auto* sel = dynamic_cast<const SelectOperator*>(&op)) {
    CollectScans(sel->child(), out);
  } else if (auto* p = dynamic_cast<const ProjectOperator*>(&op)) {
    CollectScans(p->child(), out);
  } else if (auto* agg = dynamic_cast<const HashAggOperator*>(&op)) {
    CollectScans(agg->child(), out);
  } else if (auto* j = dynamic_cast<const HashJoinOperator*>(&op)) {
    CollectScans(j->probe(), out);
    CollectScans(j->build(), out);
  } else if (auto* so = dynamic_cast<const SortOperator*>(&op)) {
    CollectScans(so->child(), out);
  } else if (auto* lim = dynamic_cast<const LimitOperator*>(&op)) {
    CollectScans(lim->child(), out);
  }
  // XchgOperator fragments are verified by their own VerifyXchg pass.
}

}  // namespace

}  // namespace vwise
