#ifndef VWISE_PLANNER_PLAN_VERIFIER_H_
#define VWISE_PLANNER_PLAN_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "common/status.h"
#include "exec/operator.h"
#include "exec/sort.h"
#include "expr/expression.h"

namespace vwise {

// ---------------------------------------------------------------------------
// Static plan verification
// ---------------------------------------------------------------------------
//
// A static analysis pass over physical plan trees. It re-derives, bottom-up,
// what each operator must emit — expression result types inferred against
// the child layout, aggregate output types from the AggSpec rules, join
// layouts from the Spec — and checks the derivation against each operator's
// declared OutputTypes(). Alongside the types it propagates three plan
// properties:
//
//   * nullability — which columns are catalog-NULLable. Execution primitives
//     are NULL-oblivious (paper Sec. I-B): an expression or aggregate that
//     consumes a NULLable column directly, without the rewriter's
//     (value, indicator) decomposition, is a plan bug and is rejected.
//   * ordering — the sort-key prefix the stream is known to be ordered by
//     (established by Sort, preserved by Select/Limit, destroyed by
//     hash operators and by Xchg's nondeterministic merge).
//   * partitioning — how many interleaved producer streams feed the
//     operator (1 below an Xchg, num_workers above it until a blocking
//     operator re-serializes).
//   * representation — per column, the set of physical representations
//     (VectorRepr masks) chunks on this edge may carry under compressed
//     execution. Scans derive the set from the stored segment codecs;
//     Select and Limit pass encoded columns through; every other operator
//     normalizes at its input boundary, so its output resets to flat.
//
// The verifier sees through CheckedOperator/ProfiledOperator wrappers, and
// descends into
// XchgOperator fragments by instantiating them through the fragment factory
// (construction only — nothing is opened). Unknown operator types are
// accepted at their declared types with properties reset.

// Stream properties inferred for (the output of) a verified plan node.
struct PlanProperties {
  std::vector<TypeId> types;
  // Per column: does it come from a catalog-NULLable column (directly or
  // through a pass-through/join) without NULL decomposition applied?
  std::vector<bool> nullable;
  // The stream is ordered by this sort-key prefix (empty: no known order).
  std::vector<SortKey> ordering;
  // Number of interleaved producer partitions feeding downstream.
  int partitions = 1;
  // Per column: bitmask of representations (kReprFlat | kReprDict | kReprRle)
  // chunks on this edge may carry. Always includes kReprFlat; empty means
  // the node predates representation tracking (treated as all-flat).
  std::vector<uint8_t> reprs;
};

class PlanVerifier {
 public:
  explicit PlanVerifier(const Config& config) : config_(config) {}

  // Verifies the plan tree rooted at `root`. On success, fills *props (when
  // non-null) with the root's inferred stream properties. On failure the
  // Status message carries the offending node's diagnosis plus an
  // ExplainPlan dump of the whole tree.
  Status Verify(const Operator& root, PlanProperties* props = nullptr) const;

 private:
  Status VerifyNode(const Operator& op, PlanProperties* out) const;
  Status VerifyScan(const class ScanOperator& op, PlanProperties* out) const;
  Status VerifyXchg(const class XchgOperator& op, PlanProperties* out) const;

  Config config_;
};

// ---------------------------------------------------------------------------
// Expression / filter type inference (exposed for rewriter + tests)
// ---------------------------------------------------------------------------

// Bottom-up inference of `e`'s physical result type against an input layout.
// Checks every ColRef against `input` (and, when `nullable` is non-null,
// rejects direct consumption of NULLable columns), every internal node's
// operand-type constraints, and each node's declared type. Errors carry an
// ExplainExpr rendering.
Result<TypeId> InferExprType(const Expr& e, const std::vector<TypeId>& input,
                             const std::vector<bool>* nullable = nullptr);

// Same, for a filter tree (filters have no result type; the value is the
// check itself).
Status VerifyFilterTree(const Filter& f, const std::vector<TypeId>& input,
                        const std::vector<bool>* nullable = nullptr);

// Checks a column layout's representation masks (PlanProperties::reprs) for
// internal consistency: one mask per column, every mask includes kReprFlat
// (Normalize() is always a legal landing), kReprDict only on string columns
// (PDICT covers strings), kReprRle never on string columns (string runs
// decode at the scan). Used by the verifier after deriving scan masks and
// exposed for tests.
Status VerifyReprPropagation(const std::vector<TypeId>& types,
                             const std::vector<uint8_t>& reprs);

// ---------------------------------------------------------------------------
// Rewriter-rule postconditions
// ---------------------------------------------------------------------------

// Checks that a filter produced by the NULL-decomposition rewrite of
// "col CMP literal" is sound: it must type-check over a layout where
// `val_col` has type `val_type` and `ind_col` is the u8 indicator, and it
// must consult the indicator column (otherwise NULL rows could qualify —
// the "rule drops the indicator" mutation). `width` is the layout width.
Status VerifyNullRewriteFilter(const Filter& rewritten, size_t val_col,
                               TypeId val_type, size_t ind_col, size_t width);

// Checks a NULL-decomposed arithmetic pair: the value expression must
// type-check and reference both value columns; the indicator expression
// must be i64 and reference both indicator columns (dropping one would
// silently un-NULL that operand).
Status VerifyNullRewritePair(const Expr& value, const Expr& indicator,
                             size_t a_val, size_t a_ind, size_t b_val,
                             size_t b_ind, TypeId val_type, size_t width);

// ---------------------------------------------------------------------------
// Pretty printers (used in every verifier error message)
// ---------------------------------------------------------------------------

std::string ExplainPlan(const Operator& root);
std::string ExplainExpr(const Expr& e);
std::string ExplainFilter(const Filter& f);

// ---------------------------------------------------------------------------
// Plan profiles (EXPLAIN ANALYZE)
// ---------------------------------------------------------------------------

// One rendered plan line in top-down (pre-order) print order: either a real
// operator node or a pseudo-line (an Xchg "fragment(0):" header). When a
// ProfiledOperator wraps the node (Config::profile), `profiled` is set and
// the runtime counters are filled from its stats; otherwise they stay zero.
// ExplainPlan / ExplainAnalyzePlan are both rendered from this walk, so the
// two stay line-for-line aligned.
struct PlanNodeProfile {
  std::string op;   // rendered text, e.g. "Select l_quantity < 24 -> [...]"
  size_t depth = 0;  // indentation level (two spaces per level)
  bool profiled = false;
  uint64_t next_calls = 0;
  uint64_t chunks_out = 0;  // Next() calls that produced >= 1 active row
  uint64_t rows_out = 0;    // active rows handed to the parent
  uint64_t rows_in = 0;     // sum of profiled immediate children's rows_out
  double open_ms = 0.0;
  double next_ms = 0.0;
  // Spill telemetry ("spill_runs=3" / "spill_partitions=8"), filled for
  // pipeline breakers that degraded to disk. Rendered by ExplainAnalyzePlan
  // only — plain ExplainPlan stays byte-identical whether or not the plan
  // has run.
  std::string spill;
  // Compressed-execution telemetry (" repr=dict:N/rle:N/flat:N"), filled for
  // scans that have emitted chunks: how many column instances were published
  // per representation. Rendered by ExplainAnalyzePlan only.
  std::string repr;
};

// Walks the plan (seeing through Checked/Profiled wrappers, descending into
// Xchg's worker-0 fragment) and returns one entry per printed line.
std::vector<PlanNodeProfile> CollectPlanProfile(const Operator& root);

// ExplainPlan with per-operator runtime annotations appended to profiled
// lines: [rows=.. in=.. chunks=.. next_calls=.. open=..ms next=..ms].
std::string ExplainAnalyzePlan(const Operator& root);

}  // namespace vwise

#endif  // VWISE_PLANNER_PLAN_VERIFIER_H_
