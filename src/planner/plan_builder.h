#ifndef VWISE_PLANNER_PLAN_BUILDER_H_
#define VWISE_PLANNER_PLAN_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/checked.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "exec/sort.h"
#include "exec/xchg.h"
#include "expr/expression.h"
#include "txn/transaction_manager.h"

namespace vwise {

// Fluent physical-plan builder — the public face of the "planner": it plays
// the role of the Ingres-to-X100 cross compiler [7], producing X100-algebra
// operator trees. TPC-H queries and the examples are written against it.
class PlanBuilder {
 public:
  PlanBuilder(TransactionManager* mgr, const Config& config)
      : mgr_(mgr), config_(config) {}

  // -- sources ----------------------------------------------------------------

  Status Scan(const std::string& table, std::vector<uint32_t> cols,
              std::vector<ScanRange> ranges = {}) {
    VWISE_ASSIGN_OR_RETURN(TableSnapshot snap, mgr_->GetSnapshot(table));
    // Remember output DataTypes for Col() helpers.
    types_.clear();
    for (uint32_t c : cols) types_.push_back(snap.schema->column(c).type);
    ScanOperator::Options opts;
    opts.ranges = std::move(ranges);
    op_ = std::make_unique<ScanOperator>(snap, std::move(cols), config_, opts);
    return Status::OK();
  }

  // -- unary operators ---------------------------------------------------------

  PlanBuilder& Select(FilterPtr f) {
    op_ = std::make_unique<SelectOperator>(std::move(op_), std::move(f), config_);
    return *this;
  }

  // Projection; caller provides the logical type of each expression result.
  PlanBuilder& Project(std::vector<ExprPtr> exprs, std::vector<DataType> types) {
    op_ = std::make_unique<ProjectOperator>(std::move(op_), std::move(exprs), config_);
    types_ = std::move(types);
    return *this;
  }

  PlanBuilder& Agg(std::vector<size_t> group_cols, std::vector<AggSpec> aggs,
          std::vector<DataType> out_types) {
    op_ = std::make_unique<HashAggOperator>(std::move(op_), std::move(group_cols),
                                            std::move(aggs), config_);
    types_ = std::move(out_types);
    return *this;
  }

  PlanBuilder& Sort(std::vector<SortKey> keys, size_t limit = SIZE_MAX, size_t offset = 0) {
    op_ = std::make_unique<SortOperator>(std::move(op_), std::move(keys), config_,
                                         limit, offset);
    return *this;
  }

  // -- joins --------------------------------------------------------------------

  // this = probe side; `build` is consumed. Output: probe cols + payload
  // (+ match flag for left outer).
  PlanBuilder& Join(PlanBuilder&& build, JoinType type, std::vector<size_t> probe_keys,
           std::vector<size_t> build_keys, std::vector<size_t> payload = {},
           FilterPtr residual = nullptr) {
    HashJoinOperator::Spec spec;
    spec.type = type;
    spec.probe_keys = std::move(probe_keys);
    spec.build_keys = std::move(build_keys);
    spec.build_payload = std::move(payload);
    spec.residual = std::move(residual);
    std::vector<DataType> new_types = types_;
    if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
      for (size_t c : spec.build_payload) new_types.push_back(build.types_[c]);
      if (type == JoinType::kLeftOuter) new_types.push_back(DataType::Bool());
    }
    op_ = std::make_unique<HashJoinOperator>(std::move(op_), std::move(build.op_),
                                             std::move(spec), config_);
    types_ = std::move(new_types);
    return *this;
  }

  // -- expression helpers (positional, against this node's output) -------------

  ExprPtr Col(size_t i) const { return e::Col(i, types_[i]); }
  // DECIMAL/INT column cast to f64 (decimals divide by scale).
  ExprPtr F(size_t i) const { return e::ToF64(Col(i)); }

  const DataType& TypeOf(size_t i) const { return types_[i]; }
  const std::vector<DataType>& types() const { return types_; }
  const Config& config() const { return config_; }
  TransactionManager* mgr() { return mgr_; }

  // The per-operator wrapping happens inside each operator's constructor;
  // wrapping the finished plan here additionally validates the root's output
  // stream (the chunks CollectRows and the API layer consume).
  OperatorPtr Build() {
    return MaybeChecked(std::move(op_), config_, "plan.root");
  }

 private:
  TransactionManager* mgr_;
  Config config_;
  OperatorPtr op_;
  std::vector<DataType> types_;
};

// The standard TPC-H revenue term extendedprice * (1 - discount), as f64.
inline ExprPtr Revenue(const PlanBuilder& q, size_t price, size_t discount) {
  return e::Mul(q.F(price), e::Sub(e::F64(1.0), q.F(discount)));
}

template <typename... T>
std::vector<FilterPtr> Fs(T... parts) {
  std::vector<FilterPtr> v;
  (v.push_back(std::move(parts)), ...);
  return v;
}

template <typename... T>
std::vector<ExprPtr> Es(T... parts) {
  std::vector<ExprPtr> v;
  (v.push_back(std::move(parts)), ...);
  return v;
}

}  // namespace vwise

#endif  // VWISE_PLANNER_PLAN_BUILDER_H_
