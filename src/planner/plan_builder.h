#ifndef VWISE_PLANNER_PLAN_BUILDER_H_
#define VWISE_PLANNER_PLAN_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/profile.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "exec/sort.h"
#include "exec/xchg.h"
#include "expr/expression.h"
#include "planner/plan_verifier.h"
#include "txn/transaction_manager.h"

namespace vwise {

// Fluent physical-plan builder — the public face of the "planner": it plays
// the role of the Ingres-to-X100 cross compiler [7], producing X100-algebra
// operator trees. TPC-H queries and the examples are written against it.
//
// The fluent methods cannot return Status, so structural errors (operator
// before Scan, out-of-range column indices that the operator constructors
// would turn into out-of-bounds reads) are recorded and surfaced by Build(),
// which also runs the static plan verifier (plan_verifier.h) under
// Config::verify_plans and cross-checks the caller-declared logical types
// against the verified physical layout — the declared types drive Col()/F()
// expression construction, so a wrong declaration corrupts every expression
// built downstream of it.
class PlanBuilder {
 public:
  PlanBuilder(TransactionManager* mgr, const Config& config)
      : mgr_(mgr), config_(config) {}

  // -- sources ----------------------------------------------------------------

  Status Scan(const std::string& table, std::vector<uint32_t> cols,
              std::vector<ScanRange> ranges = {}) {
    VWISE_ASSIGN_OR_RETURN(TableSnapshot snap, mgr_->GetSnapshot(table));
    for (uint32_t c : cols) {
      if (c >= snap.schema->num_columns()) {
        std::string msg = "Scan: column index ";
        msg += std::to_string(c);
        msg += " out of range for table '";
        msg += table;
        msg += "'";
        return Status::InvalidArgument(std::move(msg));
      }
    }
    // Remember output DataTypes for Col() helpers.
    types_.clear();
    for (uint32_t c : cols) types_.push_back(snap.schema->column(c).type);
    ScanOperator::Options opts;
    opts.ranges = std::move(ranges);
    op_ = std::make_unique<ScanOperator>(snap, std::move(cols), config_, opts);
    return Status::OK();
  }

  // -- unary operators ---------------------------------------------------------

  PlanBuilder& Select(FilterPtr f) {
    if (!Ready("Select")) return *this;
    if (f == nullptr) return Fail("Select: null filter");
    op_ = std::make_unique<SelectOperator>(std::move(op_), std::move(f), config_);
    return *this;
  }

  // Projection; caller provides the logical type of each expression result
  // (checked against the expressions by Build()).
  PlanBuilder& Project(std::vector<ExprPtr> exprs, std::vector<DataType> types) {
    if (!Ready("Project")) return *this;
    if (exprs.size() != types.size()) {
      return Fail("Project: expression count != declared type count");
    }
    for (const ExprPtr& e : exprs) {
      if (e == nullptr) return Fail("Project: null expression");
    }
    op_ = std::make_unique<ProjectOperator>(std::move(op_), std::move(exprs), config_);
    types_ = std::move(types);
    return *this;
  }

  PlanBuilder& Agg(std::vector<size_t> group_cols, std::vector<AggSpec> aggs,
          std::vector<DataType> out_types) {
    if (!Ready("Agg")) return *this;
    // The HashAgg constructor derives its output types from the child layout;
    // out-of-range columns would be out-of-bounds reads, so reject them here.
    const size_t width = op_->OutputTypes().size();
    for (size_t g : group_cols) {
      if (g >= width) return Fail("Agg: group column out of range");
    }
    for (const AggSpec& a : aggs) {
      if (a.fn != AggSpec::Fn::kCountStar && a.col >= width) {
        return Fail("Agg: aggregate input column out of range");
      }
    }
    if (out_types.size() != group_cols.size() + aggs.size()) {
      return Fail("Agg: declared type count != group count + aggregate count");
    }
    op_ = std::make_unique<HashAggOperator>(std::move(op_), std::move(group_cols),
                                            std::move(aggs), config_);
    types_ = std::move(out_types);
    return *this;
  }

  PlanBuilder& Sort(std::vector<SortKey> keys, size_t limit = SIZE_MAX, size_t offset = 0) {
    if (!Ready("Sort")) return *this;
    for (const SortKey& k : keys) {
      if (k.col >= op_->OutputTypes().size()) {
        return Fail("Sort: key column out of range");
      }
    }
    op_ = std::make_unique<SortOperator>(std::move(op_), std::move(keys), config_,
                                         limit, offset);
    return *this;
  }

  PlanBuilder& Limit(size_t limit, size_t offset = 0) {
    if (!Ready("Limit")) return *this;
    op_ = std::make_unique<LimitOperator>(std::move(op_), config_, limit, offset);
    return *this;
  }

  // -- joins --------------------------------------------------------------------

  // this = probe side; `build` is consumed. Output: probe cols + payload
  // (+ match flag for left outer).
  PlanBuilder& Join(PlanBuilder&& build, JoinType type, std::vector<size_t> probe_keys,
           std::vector<size_t> build_keys, std::vector<size_t> payload = {},
           FilterPtr residual = nullptr) {
    if (!Ready("Join")) return *this;
    if (!build.status_.ok()) {
      status_ = build.status_;
      return *this;
    }
    if (build.op_ == nullptr) return Fail("Join: build side has no plan");
    // The HashJoin constructor reads both children's layouts for its output
    // types; bound-check every index before handing them over.
    const size_t probe_width = op_->OutputTypes().size();
    const size_t build_width = build.op_->OutputTypes().size();
    if (probe_keys.size() != build_keys.size() || probe_keys.empty()) {
      return Fail("Join: probe/build key lists must be non-empty and equal-sized");
    }
    for (size_t k : probe_keys) {
      if (k >= probe_width) return Fail("Join: probe key out of range");
    }
    for (size_t k : build_keys) {
      if (k >= build_width) return Fail("Join: build key out of range");
    }
    for (size_t c : payload) {
      if (c >= build_width) return Fail("Join: payload column out of range");
    }
    HashJoinOperator::Spec spec;
    spec.type = type;
    spec.probe_keys = std::move(probe_keys);
    spec.build_keys = std::move(build_keys);
    spec.build_payload = std::move(payload);
    spec.residual = std::move(residual);
    std::vector<DataType> new_types = types_;
    if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
      for (size_t c : spec.build_payload) new_types.push_back(build.types_[c]);
      if (type == JoinType::kLeftOuter) new_types.push_back(DataType::Bool());
    }
    op_ = std::make_unique<HashJoinOperator>(std::move(op_), std::move(build.op_),
                                             std::move(spec), config_);
    types_ = std::move(new_types);
    return *this;
  }

  // -- expression helpers (positional, against this node's output) -------------

  ExprPtr Col(size_t i) const { return e::Col(i, types_[i]); }
  // DECIMAL/INT column cast to f64 (decimals divide by scale).
  ExprPtr F(size_t i) const { return e::ToF64(Col(i)); }

  const DataType& TypeOf(size_t i) const { return types_[i]; }
  const std::vector<DataType>& types() const { return types_; }
  const Config& config() const { return config_; }
  TransactionManager* mgr() { return mgr_; }

  // Finishes the plan. Surfaces any error a fluent method recorded, then —
  // under Config::verify_plans — runs the static plan verifier over the tree
  // and checks the declared logical types against the verified layout. The
  // per-operator contract wrapping happens inside each operator's
  // constructor; wrapping the finished plan here additionally validates the
  // root's output stream (the chunks CollectRows and the API layer consume).
  Result<OperatorPtr> Build() {
    VWISE_RETURN_IF_ERROR(status_);
    if (op_ == nullptr) {
      return Status::InvalidArgument(
          "PlanBuilder::Build: empty plan (Scan failed or was never called)");
    }
    OperatorPtr root = InterposeChild(std::move(op_), config_, "plan.root");
    if (config_.verify_plans) {
      PlanVerifier verifier(config_);
      PlanProperties props;
      VWISE_RETURN_IF_ERROR(verifier.Verify(*root, &props));
      if (props.types.size() != types_.size()) {
        std::string msg = "plan verifier: builder declares ";
        msg += std::to_string(types_.size());
        msg += " output columns but the plan produces ";
        msg += std::to_string(props.types.size());
        msg += "\nin plan:\n";
        msg += ExplainPlan(*root);
        return Status::Internal(std::move(msg));
      }
      for (size_t i = 0; i < types_.size(); i++) {
        if (types_[i].physical() != props.types[i]) {
          std::string msg = "plan verifier: declared logical type of column ";
          msg += std::to_string(i);
          msg += " has physical ";
          msg += TypeIdToString(types_[i].physical());
          msg += " but the plan produces ";
          msg += TypeIdToString(props.types[i]);
          msg += "\nin plan:\n";
          msg += ExplainPlan(*root);
          return Status::Internal(std::move(msg));
        }
      }
    }
    return root;
  }

 private:
  bool Ready(const char* method) {
    if (!status_.ok()) return false;
    if (op_ == nullptr) {
      std::string msg = method;
      msg += ": no input plan (call Scan first)";
      Fail(std::move(msg));
      return false;
    }
    return true;
  }

  PlanBuilder& Fail(std::string msg) {
    if (status_.ok()) {
      std::string s = "PlanBuilder::";
      s += msg;
      status_ = Status::InvalidArgument(std::move(s));
    }
    return *this;
  }

  TransactionManager* mgr_;
  Config config_;
  OperatorPtr op_;
  std::vector<DataType> types_;
  Status status_;
};

// The standard TPC-H revenue term extendedprice * (1 - discount), as f64.
inline ExprPtr Revenue(const PlanBuilder& q, size_t price, size_t discount) {
  return e::Mul(q.F(price), e::Sub(e::F64(1.0), q.F(discount)));
}

template <typename... T>
std::vector<FilterPtr> Fs(T... parts) {
  std::vector<FilterPtr> v;
  (v.push_back(std::move(parts)), ...);
  return v;
}

template <typename... T>
std::vector<ExprPtr> Es(T... parts) {
  std::vector<ExprPtr> v;
  (v.push_back(std::move(parts)), ...);
  return v;
}

}  // namespace vwise

#endif  // VWISE_PLANNER_PLAN_BUILDER_H_
