#ifndef VWISE_SERVICE_SESSION_H_
#define VWISE_SERVICE_SESSION_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "planner/plan_builder.h"
#include "service/query_service.h"

namespace vwise {

class Database;

// Per-execution knobs, fixed at Execute() time.
struct QueryOptions {
  // Admission ordering: higher-priority queries are admitted first; equal
  // priorities admit FIFO.
  int priority = 0;
  // Wall-clock execution limit covering queue wait + run time; 0 = none. An
  // expired query fails with Status::DeadlineExceeded within one vector.
  std::chrono::nanoseconds timeout{0};
  // Overrides Config::query_memory_budget_bytes for this execution when set
  // (0 = unlimited).
  std::optional<size_t> memory_budget_bytes;
};

// A running (or finished) query execution. Obtained from
// PreparedQuery::Execute; joins the query service's runner result.
class QueryHandle {
 public:
  // Blocks until the query finishes; idempotent (the result is cached, later
  // calls return the same reference).
  const Result<QueryResult>& Wait();
  // Requests cooperative cancellation: a query still waiting for admission
  // finishes immediately, a running one unwinds within one vector boundary.
  // Wait() then returns Status::Cancelled (unless the query already won the
  // race by completing).
  void Cancel();
  bool done() const;
  // EXPLAIN ANALYZE text of the finished query (empty when the session's
  // Config::profile is off or the query failed). Blocks like Wait().
  const std::string& profile();
  // Time this query spent waiting for an admission slot. Settles with Wait().
  int64_t admission_wait_ns() const { return job_->admission_wait_ns(); }

 private:
  friend class PreparedQuery;
  QueryHandle(QueryService* service, std::shared_ptr<QueryService::Job> job)
      : service_(service), job_(std::move(job)) {}

  QueryService* service_;
  std::shared_ptr<QueryService::Job> job_;
  std::optional<Result<QueryResult>> cached_;
  std::string empty_profile_;
};

// A built, verified plan bound to its session, ready to execute through the
// admission-controlled service. Re-executable, but one execution at a time:
// the operator tree is stateful, so call Execute again only after the
// previous handle finished.
class PreparedQuery {
 public:
  std::unique_ptr<QueryHandle> Execute(const QueryOptions& options = {});

  // Convenience: Execute + Wait.
  Result<QueryResult> Run(const QueryOptions& options = {});

  const std::vector<std::string>& column_names() const { return names_; }

 private:
  friend class Session;
  PreparedQuery(QueryService* service, OperatorPtr root,
                std::vector<std::string> names, const Config& config)
      : service_(service),
        root_(std::move(root)),
        names_(std::move(names)),
        config_(config) {}

  QueryService* service_;
  OperatorPtr root_;
  std::vector<std::string> names_;
  Config config_;
};

// One client connection to a Database (Database::Connect). Sessions are
// cheap, independent, and individually single-threaded; concurrency comes
// from multiple sessions executing at once, arbitrated by the shared
// QueryService:
//
//   auto session = db->Connect();
//   PlanBuilder q = session->NewPlan();
//   ... build ...
//   auto prepared = session->Prepare(&q, {"col_a", "col_b"});
//   auto handle = (*prepared)->Execute();
//   auto result = handle->Wait();
class Session {
 public:
  // A plan builder against the database's latest committed snapshots.
  PlanBuilder NewPlan() { return PlanBuilder(tm_, config_); }

  // Builds + verifies the plan and binds it for execution.
  Result<std::unique_ptr<PreparedQuery>> Prepare(
      PlanBuilder* plan, std::vector<std::string> names = {});

  // Binds an already-built operator tree (embedders constructing physical
  // plans directly, e.g. the TPC-H driver). `root` must not be null.
  std::unique_ptr<PreparedQuery> PrepareRoot(OperatorPtr root,
                                             std::vector<std::string> names);

  // Convenience: Prepare + Execute + Wait.
  Result<QueryResult> Query(PlanBuilder* plan,
                            std::vector<std::string> names = {});

  const Config& config() const { return config_; }

 private:
  friend class Database;
  Session(TransactionManager* tm, QueryService* service, const Config& config)
      : tm_(tm), service_(service), config_(config) {}

  TransactionManager* tm_;
  QueryService* service_;
  Config config_;
};

}  // namespace vwise

#endif  // VWISE_SERVICE_SESSION_H_
