#ifndef VWISE_SERVICE_MEMORY_GOVERNOR_H_
#define VWISE_SERVICE_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace vwise {

// Process-wide memory governor (DESIGN.md §13): owns the global memory
// budget (Config::total_memory_budget_bytes, env VWISE_TOTAL_MEMORY_BUDGET)
// that every QueryContext::Reserve ledger draws from, and the admission gate
// the QueryService consults before running a query. Three cooperating
// degradation layers replace hard failure under memory pressure:
//
//   1. admission — TryAdmit() grants a query's declared budget only when it
//      fits in what is globally unreserved, and *holds* the declared bytes in
//      the ledger for the query's lifetime (released via ReleaseGrant when it
//      finishes); otherwise the query stays in the service queue and is
//      retried with jittered backoff. Holding the grant makes admission a
//      guarantee, not a bet: an admitted query can never lose its memory to a
//      later admission, so its reservations (bounded by the declared budget)
//      cannot fail against the global ledger mid-run;
//   2. pressure — while any query waits for admission, UnderPressure() turns
//      true and running pipeline breakers (which poll it alongside
//      ctx()->Check()) proactively spill and shrink their reservations so
//      the waiters can be admitted;
//   3. shedding — only when a waiter's deadline or retry budget is exhausted
//      does the service fail it, recording the shed here.
//
// Thread safety: the reservation ledger and pressure signal are lock-free
// atomics — TryReserve/ReleaseGlobal sit on the (cold half of the) operator
// Reserve path and must not take locks. The stats block is guarded by mu_;
// it is touched only at admission/requeue/shed/spill frequency, never per
// vector. Lock ordering: mu_ is a leaf — no other lock is ever acquired
// while holding it (see DESIGN.md §13).
class MemoryGovernor {
 public:
  // Running totals surfaced through QueryService::Stats. All counters are
  // monotone non-decreasing over the governor's lifetime.
  struct Stats {
    uint64_t granted = 0;          // admissions granted
    uint64_t queued = 0;           // admission attempts that had to requeue
    uint64_t shed = 0;             // queries failed after retries/deadline
    uint64_t pressure_spills = 0;  // breaker spills triggered by pressure
  };

  // Admission verdict for one TryAdmit call.
  enum class Admission {
    kGranted,     // run now; the grant was counted
    kQueued,      // does not fit right now; requeue with backoff
    kImpossible,  // declared budget exceeds the total: waiting cannot help
  };

  // total_bytes == 0 means unlimited: every admission is granted and the
  // global ledger never rejects (per-query budgets still apply).
  explicit MemoryGovernor(size_t total_bytes) : total_(total_bytes) {}
  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  size_t total_bytes() const { return total_; }
  size_t reserved_bytes() const {
    int64_t r = reserved_.load(std::memory_order_relaxed);
    return r > 0 ? static_cast<size_t>(r) : 0;
  }
  // Globally unreserved bytes; SIZE_MAX when unlimited.
  size_t available_bytes() const {
    if (total_ == 0) return SIZE_MAX;
    size_t r = reserved_bytes();
    return r >= total_ ? 0 : total_ - r;
  }

  // --- admission (QueryService, under its own mu_) ---------------------------
  // May a query declaring `declared_bytes` start now? kGranted reserves the
  // declared bytes in the ledger up front — the caller owns the grant and
  // must pair it with ReleaseGrant(declared_bytes) when the query finishes.
  // Because the sum of outstanding grants never exceeds the total, a granted
  // query's own reservations (capped by its per-query budget == the grant)
  // can never fail globally mid-run. Queries declaring 0 (no per-query
  // budget) take no grant and draw the ledger directly through
  // QueryContext::Reserve; those direct draws are what pressure-spills
  // shrink to unblock the queue. Failpoint site: "governor.admit".
  Result<Admission> TryAdmit(size_t declared_bytes);

  // Returns an admission grant to the ledger. Pass the same declared_bytes
  // the kGranted TryAdmit was called with (no-op for declared 0).
  void ReleaseGrant(size_t declared_bytes) { ReleaseGlobal(declared_bytes); }

  // Records that an unadmitted query went back to the queue; sets the
  // pressure signal via the waiter count the service maintains with
  // BeginMemoryWait/EndMemoryWait. Failpoint site: "governor.requeue".
  Status NoteRequeue();
  void NoteShed();
  void NotePressureSpill();

  // The service brackets every memory-waiting job with these; breakers poll
  // UnderPressure() (one relaxed load) once per input chunk.
  void BeginMemoryWait() { waiters_.fetch_add(1, std::memory_order_relaxed); }
  void EndMemoryWait() { waiters_.fetch_sub(1, std::memory_order_relaxed); }
  bool UnderPressure() const {
    return waiters_.load(std::memory_order_relaxed) > 0;
  }

  // --- global ledger (QueryContext::Reserve/Release, any thread) -------------
  // Lock-free; false = would overshoot the total (and nothing was reserved).
  // The caller (QueryContext) formats the attributed error.
  bool TryReserve(size_t bytes) {
    if (total_ == 0) return true;
    int64_t delta = static_cast<int64_t>(bytes);
    int64_t now = reserved_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (now > static_cast<int64_t>(total_)) {
      reserved_.fetch_sub(delta, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  void ReleaseGlobal(size_t bytes) {
    if (total_ == 0) return;
    reserved_.fetch_sub(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
  }

  Stats stats() const VWISE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

 private:
  const size_t total_;
  std::atomic<int64_t> reserved_{0};
  std::atomic<int> waiters_{0};

  mutable Mutex mu_;
  Stats stats_ VWISE_GUARDED_BY(mu_);
};

}  // namespace vwise

#endif  // VWISE_SERVICE_MEMORY_GOVERNOR_H_
