#include "service/query_service.h"

#include <algorithm>
#include <chrono>

namespace vwise {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<QueryResult> QueryService::Job::Take() {
  MutexLock lock(&mu_);
  while (!done_) cv_.Wait(&mu_);
  Result<QueryResult> result = std::move(*result_);
  result_.reset();
  return result;
}

bool QueryService::Job::done() const {
  MutexLock lock(&mu_);
  return done_;
}

int64_t QueryService::Job::admission_wait_ns() const {
  MutexLock lock(&mu_);
  return admit_ns_ == 0 ? 0 : admit_ns_ - submit_ns_;
}

void QueryService::Job::Finish(Result<QueryResult> result) {
  MutexLock lock(&mu_);
  result_ = std::move(result);
  done_ = true;
  cv_.SignalAll();
}

QueryService::QueryService(const Config& config) : pool_(config.pool_threads) {
  int n = std::max(1, config.max_concurrent_queries);
  runners_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

QueryService::~QueryService() {
  std::deque<std::shared_ptr<Job>> orphaned;
  {
    MutexLock lock(&mu_);
    stop_ = true;
    orphaned.swap(queue_);
    // Running queries unwind cooperatively; their runners then observe
    // stop_ and exit.
    for (Job* job : running_) job->ctx_.Cancel();
  }
  cv_.SignalAll();
  for (auto& job : orphaned) {
    job->ctx_.Cancel();
    job->Finish(Status::Cancelled("query service shutting down"));
  }
  for (auto& t : runners_) t.join();
}

std::shared_ptr<QueryService::Job> QueryService::Submit(
    Job::RunFn run, int priority,
    const std::function<void(QueryContext*)>& configure) {
  auto job = std::make_shared<Job>();
  job->run_ = std::move(run);
  job->priority_ = priority;
  job->submit_ns_ = NowNs();
  if (configure) configure(&job->ctx_);
  {
    MutexLock lock(&mu_);
    if (stop_) {
      job->Finish(Status::Cancelled("query service shutting down"));
      return job;
    }
    job->seq_ = next_seq_++;
    queue_.push_back(job);
    stats_.submitted++;
  }
  cv_.Signal();
  return job;
}

void QueryService::Cancel(const std::shared_ptr<Job>& job) {
  job->ctx_.Cancel();
  bool dequeued = false;
  {
    MutexLock lock(&mu_);
    auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end()) {
      queue_.erase(it);
      stats_.cancelled_in_queue++;
      dequeued = true;
    }
  }
  // A dequeued job never reaches a runner, so finish it here; a running one
  // unwinds through its context polls and its runner finishes it.
  if (dequeued) job->Finish(Status::Cancelled("query cancelled"));
}

std::shared_ptr<QueryService::Job> QueryService::PopBestLocked() {
  auto best = queue_.begin();
  for (auto it = std::next(best); it != queue_.end(); ++it) {
    if ((*it)->priority_ > (*best)->priority_ ||
        ((*it)->priority_ == (*best)->priority_ &&
         (*it)->seq_ < (*best)->seq_)) {
      best = it;
    }
  }
  std::shared_ptr<Job> job = std::move(*best);
  queue_.erase(best);
  return job;
}

void QueryService::RunnerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ with nothing left to admit
      job = PopBestLocked();
      running_.push_back(job.get());
    }
    {
      MutexLock lock(&job->mu_);
      job->admit_ns_ = NowNs();
    }
    // A job cancelled (or expired) while waiting fails without running.
    Status pre = job->ctx_.Check();
    Result<QueryResult> result =
        pre.ok() ? job->run_(&job->ctx_) : Result<QueryResult>(pre);
    {
      MutexLock lock(&mu_);
      running_.erase(std::find(running_.begin(), running_.end(), job.get()));
      stats_.completed++;
    }
    job->Finish(std::move(result));
  }
}

QueryService::Stats QueryService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace vwise
