#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace vwise {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Load-shedding status (the governor's last resort): tells the client *why*
// and *when to come back*, plus the global state needed for capacity triage.
Status ShedStatus(uint64_t query_id, size_t declared, int attempts,
                  int64_t retry_after_ns, const MemoryGovernor& governor) {
  std::string msg = "query ";
  msg += std::to_string(query_id);
  msg += " shed by memory admission";
  if (declared > governor.total_bytes()) {
    msg += ": declared budget ";
    msg += std::to_string(declared);
    msg += " bytes exceeds the global memory budget ";
    msg += std::to_string(governor.total_bytes());
    msg += "; lower the declared budget";
    return Status::ResourceExhausted(msg);
  }
  msg += " after ";
  msg += std::to_string(attempts);
  msg += " attempts: declared ";
  msg += std::to_string(declared);
  msg += " bytes, ";
  msg += std::to_string(governor.available_bytes());
  msg += " available of ";
  msg += std::to_string(governor.total_bytes());
  msg += " globally; retry after ";
  msg += std::to_string(retry_after_ns / 1000000);
  msg += "ms";
  return Status::ResourceExhausted(msg);
}

}  // namespace

Result<QueryResult> QueryService::Job::Take() {
  MutexLock lock(&mu_);
  while (!done_) cv_.Wait(&mu_);
  Result<QueryResult> result = std::move(*result_);
  result_.reset();
  return result;
}

bool QueryService::Job::done() const {
  MutexLock lock(&mu_);
  return done_;
}

int64_t QueryService::Job::admission_wait_ns() const {
  MutexLock lock(&mu_);
  return admit_ns_ == 0 ? 0 : admit_ns_ - submit_ns_;
}

void QueryService::Job::Finish(Result<QueryResult> result) {
  MutexLock lock(&mu_);
  result_ = std::move(result);
  done_ = true;
  cv_.SignalAll();
}

QueryService::QueryService(const Config& config)
    : pool_(config.pool_threads),
      governor_(config.total_memory_budget_bytes),
      admission_retry_limit_(std::max(1, config.admission_retry_limit)),
      backoff_base_us_(std::max<uint64_t>(1, config.admission_backoff_base_us)),
      backoff_max_us_(
          std::max(config.admission_backoff_base_us,
                   config.admission_backoff_max_us)) {
  int n = std::max(1, config.max_concurrent_queries);
  runners_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

QueryService::~QueryService() {
  std::deque<std::shared_ptr<Job>> orphaned;
  {
    MutexLock lock(&mu_);
    stop_ = true;
    orphaned.swap(queue_);
    for (auto& job : orphaned) EndMemoryWaitLocked(job.get());
    // Running queries unwind cooperatively; their runners then observe
    // stop_ and exit.
    for (Job* job : running_) job->ctx_.Cancel();
  }
  cv_.SignalAll();
  for (auto& job : orphaned) {
    job->ctx_.Cancel();
    job->Finish(Status::Cancelled("query service shutting down"));
  }
  for (auto& t : runners_) t.join();
}

std::shared_ptr<QueryService::Job> QueryService::Submit(
    Job::RunFn run, int priority,
    const std::function<void(QueryContext*)>& configure) {
  auto job = std::make_shared<Job>();
  job->run_ = std::move(run);
  job->priority_ = priority;
  job->submit_ns_ = NowNs();
  if (configure) configure(&job->ctx_);
  {
    MutexLock lock(&mu_);
    if (stop_) {
      job->Finish(Status::Cancelled("query service shutting down"));
      return job;
    }
    job->seq_ = next_seq_++;
    // The seq doubles as the query id in budget-error attribution, and the
    // governor binding routes the query's reservations through the global
    // ledger. Written before the job is visible to any runner (this mu_).
    job->ctx_.set_query_id(job->seq_);
    job->ctx_.BindGovernor(&governor_);
    queue_.push_back(job);
    stats_.submitted++;
  }
  cv_.Signal();
  return job;
}

void QueryService::Cancel(const std::shared_ptr<Job>& job) {
  job->ctx_.Cancel();
  bool dequeued = false;
  {
    MutexLock lock(&mu_);
    auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end()) {
      EndMemoryWaitLocked(job.get());
      queue_.erase(it);
      stats_.cancelled_in_queue++;
      dequeued = true;
    }
  }
  // A dequeued job never reaches a runner, so finish it here; a running one
  // unwinds through its context polls and its runner finishes it.
  if (dequeued) job->Finish(Status::Cancelled("query cancelled"));
}

void QueryService::EndMemoryWaitLocked(Job* job) {
  if (job->memory_waiting_) {
    job->memory_waiting_ = false;
    governor_.EndMemoryWait();
  }
}

int64_t QueryService::BackoffNs(int attempt, uint64_t seq) const {
  uint64_t us = backoff_base_us_;
  for (int i = 1; i < attempt && us < backoff_max_us_; i++) us *= 2;
  if (us > backoff_max_us_) us = backoff_max_us_;
  // Deterministic jitter (splitmix-style hash of seq/attempt) decorrelates
  // waiters so they don't reattempt admission in lockstep.
  uint64_t h = seq * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(attempt);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  uint64_t jitter_us = h % (us / 2 + 1);
  return static_cast<int64_t>((us + jitter_us) * 1000);
}

std::shared_ptr<QueryService::Job> QueryService::NextRunnableLocked(
    int64_t now, int64_t* wake_ns, std::vector<ShedJob>* shed) {
  *wake_ns = 0;
  auto note_wake = [wake_ns](int64_t at) {
    if (*wake_ns == 0 || at < *wake_ns) *wake_ns = at;
  };
  for (;;) {
    // Best-priority-then-FIFO among jobs whose backoff gate has passed.
    // Jobs this scan rejects get a future gate, so the loop converges.
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->next_attempt_ns_ > now) {
        note_wake((*it)->next_attempt_ns_);
        continue;
      }
      if (best == queue_.end() || (*it)->priority_ > (*best)->priority_ ||
          ((*it)->priority_ == (*best)->priority_ &&
           (*it)->seq_ < (*best)->seq_)) {
        best = it;
      }
    }
    if (best == queue_.end()) return nullptr;
    std::shared_ptr<Job> job = *best;

    // Cancelled or deadline-expired while waiting: fail without running.
    Status pre = job->ctx_.Check();
    if (!pre.ok()) {
      bool was_memory_wait = job->memory_waiting_;
      EndMemoryWaitLocked(job.get());
      queue_.erase(best);
      if (pre.code() == StatusCode::kCancelled) {
        stats_.cancelled_in_queue++;
      } else if (was_memory_wait) {
        // The deadline ran out while the query waited for memory: that is a
        // shed (overload outcome), not a client timeout mid-run.
        governor_.NoteShed();
        pre = ShedStatus(job->seq_, job->ctx_.memory_budget(),
                         job->admission_attempts_,
                         BackoffNs(job->admission_attempts_ + 1, job->seq_),
                         governor_);
      }
      shed->push_back({std::move(job), std::move(pre)});
      continue;
    }

    size_t declared = job->ctx_.memory_budget();
    Result<MemoryGovernor::Admission> adm = governor_.TryAdmit(declared);
    if (!adm.ok()) {
      // Injected admission fault (failpoint "governor.admit"): shed.
      EndMemoryWaitLocked(job.get());
      queue_.erase(best);
      governor_.NoteShed();
      shed->push_back({std::move(job), adm.status()});
      continue;
    }
    switch (*adm) {
      case MemoryGovernor::Admission::kGranted:
        // The grant holds `declared` in the global ledger until the run
        // finishes (released in RunnerLoop); the context's own reservations
        // are covered by it, so they check only the per-query budget.
        job->granted_bytes_ = declared;
        job->ctx_.set_admission_granted(declared > 0);
        EndMemoryWaitLocked(job.get());
        queue_.erase(best);
        return job;
      case MemoryGovernor::Admission::kImpossible: {
        // No amount of waiting or peer spilling can fit this declaration.
        EndMemoryWaitLocked(job.get());
        queue_.erase(best);
        governor_.NoteShed();
        Status st = ShedStatus(job->seq_, declared, 0, 0, governor_);
        shed->push_back({std::move(job), std::move(st)});
        continue;
      }
      case MemoryGovernor::Admission::kQueued: {
        job->admission_attempts_++;
        int64_t backoff = BackoffNs(job->admission_attempts_, job->seq_);
        if (job->admission_attempts_ > admission_retry_limit_) {
          // Retry budget exhausted: load-shed as the last resort.
          EndMemoryWaitLocked(job.get());
          queue_.erase(best);
          governor_.NoteShed();
          Status st = ShedStatus(job->seq_, declared,
                                 job->admission_attempts_ - 1, backoff,
                                 governor_);
          shed->push_back({std::move(job), std::move(st)});
          continue;
        }
        Status requeue = governor_.NoteRequeue();
        if (!requeue.ok()) {
          // Injected requeue fault (failpoint "governor.requeue"): shed.
          EndMemoryWaitLocked(job.get());
          queue_.erase(best);
          governor_.NoteShed();
          shed->push_back({std::move(job), std::move(requeue)});
          continue;
        }
        if (!job->memory_waiting_) {
          job->memory_waiting_ = true;
          governor_.BeginMemoryWait();
        }
        int64_t gate = now + backoff;
        // Deadline-aware: never sleep past the queued query's deadline —
        // the next scan at that instant sheds it promptly.
        if (job->ctx_.has_deadline() && job->ctx_.deadline_ns() < gate) {
          gate = job->ctx_.deadline_ns();
          if (gate <= now) gate = now + 1;
        }
        job->next_attempt_ns_ = gate;
        note_wake(gate);
        continue;  // consider the next-best waiter
      }
    }
  }
}

void QueryService::RunnerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    std::vector<ShedJob> shed;
    {
      MutexLock lock(&mu_);
      for (;;) {
        if (stop_) return;  // the dtor orphans the queue itself
        int64_t now = NowNs();
        int64_t wake_ns = 0;
        job = NextRunnableLocked(now, &wake_ns, &shed);
        if (job != nullptr || !shed.empty()) break;
        if (wake_ns == 0) {
          cv_.Wait(&mu_);
        } else {
          // Everything queued is in admission backoff: sleep until the
          // earliest retry gate or a completion/submit/cancel signal.
          int64_t wait = wake_ns - NowNs();
          if (wait < 1000000) wait = 1000000;  // 1ms floor vs. busy-spin
          cv_.WaitFor(&mu_, std::chrono::nanoseconds(wait));
        }
      }
      if (job != nullptr) running_.push_back(job.get());
    }
    // Finish shed jobs outside mu_ (Finish takes the job's own mutex).
    for (ShedJob& s : shed) s.job->Finish(std::move(s.status));
    if (job == nullptr) continue;
    {
      MutexLock lock(&job->mu_);
      job->admit_ns_ = NowNs();
    }
    // A job cancelled (or expired) between admission and here fails without
    // running.
    Status pre = job->ctx_.Check();
    Result<QueryResult> result =
        pre.ok() ? job->run_(&job->ctx_) : Result<QueryResult>(pre);
    // Return the admission grant before waking waiters so the very next
    // admission scan sees the freed bytes.
    if (job->granted_bytes_ > 0) {
      governor_.ReleaseGrant(job->granted_bytes_);
    }
    {
      MutexLock lock(&mu_);
      running_.erase(std::find(running_.begin(), running_.end(), job.get()));
      stats_.completed++;
      // The finished query released its reservations: clear every waiter's
      // backoff gate so the freed memory is reconsidered immediately rather
      // than after the remaining backoff.
      for (auto& waiter : queue_) waiter->next_attempt_ns_ = 0;
    }
    cv_.SignalAll();
    job->Finish(std::move(result));
  }
}

QueryService::Stats QueryService::stats() const {
  Stats s;
  {
    MutexLock lock(&mu_);
    s = stats_;
  }
  MemoryGovernor::Stats g = governor_.stats();
  s.granted = g.granted;
  s.queued = g.queued;
  s.shed = g.shed;
  s.pressure_spills = g.pressure_spills;
  return s;
}

}  // namespace vwise
