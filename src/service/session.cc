#include "service/session.h"

#include "expr/primitive_profiler.h"
#include "planner/plan_verifier.h"

namespace vwise {

namespace {

// Copies the context's budget/spill telemetry into the finished result.
void FillBudgetStats(QueryContext* ctx, QueryResult* result) {
  result->peak_reserved_bytes = ctx->peak_reserved_bytes();
  result->spill_bytes_written =
      ctx->spill_counters().bytes_written.load(std::memory_order_relaxed);
  result->spill_bytes_read =
      ctx->spill_counters().bytes_read.load(std::memory_order_relaxed);
}

// The one place a query's operator tree actually runs (on a service runner
// thread, under the job's context). Owns the profiled-run choreography that
// used to live in Database::Run: enable the per-primitive counters for the
// duration of the pipeline, then render EXPLAIN ANALYZE plus the primitive
// counter delta.
Result<QueryResult> RunPlan(Operator* root, QueryContext* ctx,
                            const Config& config,
                            const std::vector<std::string>& names) {
  if (!config.profile) {
    VWISE_ASSIGN_OR_RETURN(QueryResult result,
                           CollectRows(root, ctx, config.vector_size, names));
    FillBudgetStats(ctx, &result);
    return result;
  }
  PrimitiveProfiler::ScopedEnable enable(true);
  std::vector<PrimitiveCounters> before = PrimitiveProfiler::Snapshot();
  VWISE_ASSIGN_OR_RETURN(QueryResult result,
                         CollectRows(root, ctx, config.vector_size, names));
  std::vector<PrimitiveCounters> after = PrimitiveProfiler::Snapshot();
  FillBudgetStats(ctx, &result);
  std::string spill_line;
  if (result.spill_bytes_written > 0 || result.spill_bytes_read > 0) {
    spill_line = "spill: bytes_written=" +
                 std::to_string(result.spill_bytes_written) + " bytes_read=" +
                 std::to_string(result.spill_bytes_read) + "\n";
  }
  result.profile = ExplainAnalyzePlan(*root) + spill_line +
                   RenderPrimitiveProfile(before, after);
  return result;
}

}  // namespace

const Result<QueryResult>& QueryHandle::Wait() {
  if (!cached_.has_value()) cached_ = job_->Take();
  return *cached_;
}

void QueryHandle::Cancel() { service_->Cancel(job_); }

bool QueryHandle::done() const { return job_->done(); }

const std::string& QueryHandle::profile() {
  const Result<QueryResult>& result = Wait();
  return result.ok() ? result->profile : empty_profile_;
}

std::unique_ptr<QueryHandle> PreparedQuery::Execute(
    const QueryOptions& options) {
  size_t budget = options.memory_budget_bytes.has_value()
                      ? *options.memory_budget_bytes
                      : config_.query_memory_budget_bytes;
  auto job = service_->Submit(
      [this](QueryContext* ctx) {
        return RunPlan(root_.get(), ctx, config_, names_);
      },
      options.priority,
      [&options, budget, this](QueryContext* ctx) {
        ctx->set_memory_budget(budget);
        ctx->set_spill_dir(config_.spill_dir);
        if (options.timeout.count() > 0) {
          ctx->set_deadline(std::chrono::steady_clock::now() + options.timeout);
        }
      });
  return std::unique_ptr<QueryHandle>(new QueryHandle(service_, std::move(job)));
}

Result<QueryResult> PreparedQuery::Run(const QueryOptions& options) {
  return Execute(options)->Wait();
}

Result<std::unique_ptr<PreparedQuery>> Session::Prepare(
    PlanBuilder* plan, std::vector<std::string> names) {
  VWISE_ASSIGN_OR_RETURN(OperatorPtr root, plan->Build());
  if (root == nullptr) return Status::InvalidArgument("empty plan");
  return PrepareRoot(std::move(root), std::move(names));
}

std::unique_ptr<PreparedQuery> Session::PrepareRoot(
    OperatorPtr root, std::vector<std::string> names) {
  return std::unique_ptr<PreparedQuery>(
      new PreparedQuery(service_, std::move(root), std::move(names), config_));
}

Result<QueryResult> Session::Query(PlanBuilder* plan,
                                   std::vector<std::string> names) {
  VWISE_ASSIGN_OR_RETURN(std::unique_ptr<PreparedQuery> prepared,
                         Prepare(plan, std::move(names)));
  return prepared->Run();
}

}  // namespace vwise
