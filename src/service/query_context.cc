#include "service/query_context.h"

#include <string>

namespace vwise {

namespace {

// Out-of-line so Reserve's success path stays allocation-free: the message
// is built only when the budget check has already failed.
std::string BudgetError(const char* what, size_t bytes, int64_t reserved,
                        int64_t budget) {
  std::string msg = "query memory budget exceeded: ";
  msg += what;
  msg += " needs ";
  msg += std::to_string(bytes);
  msg += " more bytes, ";
  msg += std::to_string(reserved);
  msg += " of ";
  msg += std::to_string(budget);
  msg += " already reserved";
  return msg;
}

}  // namespace

QueryContext* QueryContext::Background() {
  // Never destroyed: operators bound to it may outlive any static-teardown
  // ordering (worker-pool threads drain during process exit).
  static QueryContext* background = new QueryContext();
  return background;
}

Status QueryContext::Reserve(size_t bytes, const char* what) {
  int64_t delta = static_cast<int64_t>(bytes);
  int64_t now =
      reserved_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (budget_bytes_ != 0 && now > budget_bytes_) {
    reserved_.fetch_sub(delta, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        BudgetError(what, bytes, now - delta, budget_bytes_));
  }
  return Status::OK();
}

}  // namespace vwise
