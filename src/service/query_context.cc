#include "service/query_context.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>

namespace vwise {

namespace {

// Out-of-line so Reserve's success path stays allocation-free: the messages
// are built only when a budget check has already failed. Both carry the
// query id and requested vs. reserved vs. available bytes so a
// multi-session OOM can be attributed without guesswork.
std::string BudgetError(uint64_t query_id, const char* what, size_t bytes,
                        int64_t reserved, int64_t budget,
                        const MemoryGovernor* governor) {
  std::string msg = "query ";
  msg += std::to_string(query_id);
  msg += ": memory budget exceeded: ";
  msg += what;
  msg += " requested ";
  msg += std::to_string(bytes);
  msg += " more bytes, ";
  msg += std::to_string(reserved);
  msg += " of ";
  msg += std::to_string(budget);
  msg += " already reserved";
  if (governor != nullptr && governor->total_bytes() != 0) {
    msg += ", ";
    msg += std::to_string(governor->available_bytes());
    msg += " available globally of ";
    msg += std::to_string(governor->total_bytes());
  }
  return msg;
}

std::string GlobalBudgetError(uint64_t query_id, const char* what,
                              size_t bytes, int64_t reserved,
                              int64_t budget,
                              const MemoryGovernor* governor) {
  std::string msg = "query ";
  msg += std::to_string(query_id);
  msg += ": global memory budget exceeded: ";
  msg += what;
  msg += " requested ";
  msg += std::to_string(bytes);
  msg += " more bytes, query has ";
  msg += std::to_string(reserved);
  msg += " reserved";
  if (budget != 0) {
    msg += " of ";
    msg += std::to_string(budget);
  }
  msg += ", ";
  msg += std::to_string(governor->available_bytes());
  msg += " available globally of ";
  msg += std::to_string(governor->total_bytes());
  return msg;
}

}  // namespace

QueryContext* QueryContext::Background() {
  // Never destroyed: operators bound to it may outlive any static-teardown
  // ordering (worker-pool threads drain during process exit).
  static QueryContext* background = new QueryContext();
  return background;
}

Status QueryContext::Reserve(size_t bytes, const char* what) {
  int64_t delta = static_cast<int64_t>(bytes);
  int64_t now =
      reserved_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (budget_bytes_ != 0 && now > budget_bytes_) {
    reserved_.fetch_sub(delta, std::memory_order_relaxed);
    return Status::ResourceExhausted(BudgetError(
        query_id_, what, bytes, now - delta, budget_bytes_, governor_));
  }
  // An admission grant already holds this query's declared budget in the
  // global ledger; the per-query check above (budget == grant) is then the
  // whole story. Only ungranted contexts draw the ledger per reservation.
  if (governor_ != nullptr && !admission_granted_ &&
      !governor_->TryReserve(bytes)) {
    // Global exhaustion looks exactly like per-query exhaustion to the
    // breakers (kResourceExhausted), so their spill-and-retry path composes:
    // a breaker that spills under global pressure shrinks both ledgers.
    reserved_.fetch_sub(delta, std::memory_order_relaxed);
    return Status::ResourceExhausted(GlobalBudgetError(
        query_id_, what, bytes, now - delta, budget_bytes_, governor_));
  }
  int64_t peak = peak_reserved_.load(std::memory_order_relaxed);
  while (now > peak && !peak_reserved_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Result<std::string> QueryContext::NewSpillPath(const char* tag) {
  namespace fs = std::filesystem;
  MutexLock lock(&spill_mu_);
  if (spill_dir_.empty()) {
    fs::path base;
    if (!spill_base_.empty()) {
      base = spill_base_;
    } else if (const char* env = std::getenv("VWISE_SPILL_DIR");
               env != nullptr && env[0] != '\0') {
      base = env;
    } else {
      std::error_code ec;
      base = fs::temp_directory_path(ec);
      if (ec) base = ".";
      base /= "vwise-spill";
    }
    // q<pid>-<address> is unique per live context: two queries in one process
    // have distinct contexts, two processes have distinct pids, and a crashed
    // process's leftovers are swept by SweepSpillDir at the next Open.
    fs::path dir = base / ("q" + std::to_string(::getpid()) + "-" +
                           std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IOError("cannot create spill directory " + dir.string() +
                             ": " + ec.message());
    }
    spill_dir_ = dir.string();
  }
  std::string path = spill_dir_ + "/" + tag + "-" +
                     std::to_string(spill_seq_++) + ".spill";
  spill_counters_.files_created.fetch_add(1, std::memory_order_relaxed);
  return path;
}

void QueryContext::CleanupSpillDir() {
  std::string dir;
  {
    MutexLock lock(&spill_mu_);
    dir.swap(spill_dir_);
  }
  if (dir.empty()) return;
  // Best effort: a failure here leaks temp files, never query correctness;
  // the next Database::Open sweeps stragglers.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace vwise
