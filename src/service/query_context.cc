#include "service/query_context.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>

namespace vwise {

namespace {

// Out-of-line so Reserve's success path stays allocation-free: the message
// is built only when the budget check has already failed.
std::string BudgetError(const char* what, size_t bytes, int64_t reserved,
                        int64_t budget) {
  std::string msg = "query memory budget exceeded: ";
  msg += what;
  msg += " needs ";
  msg += std::to_string(bytes);
  msg += " more bytes, ";
  msg += std::to_string(reserved);
  msg += " of ";
  msg += std::to_string(budget);
  msg += " already reserved";
  return msg;
}

}  // namespace

QueryContext* QueryContext::Background() {
  // Never destroyed: operators bound to it may outlive any static-teardown
  // ordering (worker-pool threads drain during process exit).
  static QueryContext* background = new QueryContext();
  return background;
}

Status QueryContext::Reserve(size_t bytes, const char* what) {
  int64_t delta = static_cast<int64_t>(bytes);
  int64_t now =
      reserved_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (budget_bytes_ != 0 && now > budget_bytes_) {
    reserved_.fetch_sub(delta, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        BudgetError(what, bytes, now - delta, budget_bytes_));
  }
  int64_t peak = peak_reserved_.load(std::memory_order_relaxed);
  while (now > peak && !peak_reserved_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Result<std::string> QueryContext::NewSpillPath(const char* tag) {
  namespace fs = std::filesystem;
  MutexLock lock(&spill_mu_);
  if (spill_dir_.empty()) {
    fs::path base;
    if (!spill_base_.empty()) {
      base = spill_base_;
    } else if (const char* env = std::getenv("VWISE_SPILL_DIR");
               env != nullptr && env[0] != '\0') {
      base = env;
    } else {
      std::error_code ec;
      base = fs::temp_directory_path(ec);
      if (ec) base = ".";
      base /= "vwise-spill";
    }
    // q<pid>-<address> is unique per live context: two queries in one process
    // have distinct contexts, two processes have distinct pids, and a crashed
    // process's leftovers are swept by SweepSpillDir at the next Open.
    fs::path dir = base / ("q" + std::to_string(::getpid()) + "-" +
                           std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IOError("cannot create spill directory " + dir.string() +
                             ": " + ec.message());
    }
    spill_dir_ = dir.string();
  }
  std::string path = spill_dir_ + "/" + tag + "-" +
                     std::to_string(spill_seq_++) + ".spill";
  spill_counters_.files_created.fetch_add(1, std::memory_order_relaxed);
  return path;
}

void QueryContext::CleanupSpillDir() {
  std::string dir;
  {
    MutexLock lock(&spill_mu_);
    dir.swap(spill_dir_);
  }
  if (dir.empty()) return;
  // Best effort: a failure here leaks temp files, never query correctness;
  // the next Database::Open sweeps stragglers.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace vwise
