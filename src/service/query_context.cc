#include "service/query_context.h"

#include <string>

namespace vwise {

QueryContext* QueryContext::Background() {
  // Never destroyed: operators bound to it may outlive any static-teardown
  // ordering (worker-pool threads drain during process exit).
  static QueryContext* background = new QueryContext();
  return background;
}

Status QueryContext::Reserve(size_t bytes, const char* what) {
  int64_t delta = static_cast<int64_t>(bytes);
  int64_t now =
      reserved_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (budget_bytes_ != 0 && now > budget_bytes_) {
    reserved_.fetch_sub(delta, std::memory_order_relaxed);
    std::string msg = "query memory budget exceeded: ";
    msg += what;
    msg += " needs ";
    msg += std::to_string(bytes);
    msg += " more bytes, ";
    msg += std::to_string(now - delta);
    msg += " of ";
    msg += std::to_string(budget_bytes_);
    msg += " already reserved";
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::OK();
}

}  // namespace vwise
