#ifndef VWISE_SERVICE_QUERY_CONTEXT_H_
#define VWISE_SERVICE_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "service/memory_governor.h"
#include "vector/vector_scratch.h"

namespace vwise {

// Per-query execution context, threaded through every Operator via
// Operator::Open(ctx) and shared by all of a query's Xchg fragments. Carries
// the three cross-cutting execution concerns of the query service:
//
//   * cooperative cancellation — Cancel() (from QueryHandle::Cancel or the
//     service shutting down) flips an atomic flag that operators poll once
//     per vector, so a running query unwinds with Status::Cancelled within
//     one vector boundary;
//   * a deadline — when set, the same per-vector poll turns into
//     Status::DeadlineExceeded once the clock passes it;
//   * a memory budget — pipeline breakers (hash join build, aggregation
//     groups, sort buffers) reserve their buffered bytes against it and fail
//     with Status::ResourceExhausted instead of silently oversubscribing a
//     machine shared by many concurrent queries.
//
// Thread safety: Cancel/Check/Reserve/Release may be called from any thread
// (fragments run on shared worker-pool threads). set_deadline and
// set_memory_budget are configuration and must happen before Open().
class QueryContext {
 public:
  // Spill I/O accounting for the query: bytes moved through SpillWriter /
  // SpillReader and temp files created, surfaced via QueryResult and the
  // out-of-core bench. Atomics: breakers of one query may run on different
  // threads (Xchg fragments).
  struct SpillCounters {
    std::atomic<uint64_t> bytes_written{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> files_created{0};
  };

  QueryContext() = default;
  ~QueryContext() { CleanupSpillDir(); }
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  // The process background context: never cancelled, no deadline, unlimited
  // budget. Operator::Open(nullptr) binds it, so plans run outside the query
  // service (unit tests, embedded callers) behave exactly as before.
  static QueryContext* Background();

  // --- cancellation / deadline ----------------------------------------------
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       deadline.time_since_epoch())
                       .count();
  }
  bool has_deadline() const { return deadline_ns_ != 0; }
  // steady_clock ns since epoch; 0 = none. The admission loop caps a queued
  // query's retry backoff at its deadline so expiry sheds it promptly.
  int64_t deadline_ns() const { return deadline_ns_; }

  // The per-vector poll: OK while the query may keep running, otherwise
  // Status::Cancelled or Status::DeadlineExceeded. Cheap when no deadline is
  // set (one relaxed atomic load).
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    if (deadline_ns_ != 0 && NowNs() >= deadline_ns_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  // --- memory budget --------------------------------------------------------
  // 0 = unlimited (the default; embedded callers keep today's behavior).
  void set_memory_budget(size_t bytes) {
    budget_bytes_ = static_cast<int64_t>(bytes);
  }
  size_t memory_budget() const { return static_cast<size_t>(budget_bytes_); }
  size_t reserved_bytes() const {
    return static_cast<size_t>(reserved_.load(std::memory_order_relaxed));
  }
  // High-water mark of reserved_bytes() over the query's lifetime — what the
  // query would need to run fully in memory. Tests and the out-of-core bench
  // size spill budgets from it.
  size_t peak_reserved_bytes() const {
    return static_cast<size_t>(peak_reserved_.load(std::memory_order_relaxed));
  }

  // Reserves `bytes` more against the per-query budget and, when a governor
  // is bound, the process-wide budget; ResourceExhausted (and no
  // reservation anywhere) when either would overshoot. `what` names the
  // reserving operator; the message carries the query id plus
  // requested/reserved/global-available bytes for multi-session triage.
  Status Reserve(size_t bytes, const char* what);
  void Release(size_t bytes) {
    reserved_.fetch_sub(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
    if (governor_ != nullptr && !admission_granted_) {
      governor_->ReleaseGlobal(bytes);
    }
  }

  // --- memory governor ------------------------------------------------------
  // Binds the process-wide governor (configuration: the service sets it in
  // Submit, before the job is visible to any runner). Reservations above then
  // draw from the global budget, and MemoryPressure() reflects queued demand.
  void BindGovernor(MemoryGovernor* governor) { governor_ = governor; }
  MemoryGovernor* governor() const { return governor_; }
  // Marks that admission already holds this query's declared budget in the
  // global ledger (QueryService sets it between TryAdmit == kGranted and the
  // run). Reservations then check only the per-query budget — which equals
  // the held grant — instead of double-charging the ledger.
  void set_admission_granted(bool granted) { admission_granted_ = granted; }
  bool admission_granted() const { return admission_granted_; }
  void set_query_id(uint64_t id) { query_id_ = id; }
  uint64_t query_id() const { return query_id_; }

  // The cooperative pressure signal: true while some submitted query cannot
  // be admitted for lack of global memory. Pipeline breakers poll this
  // alongside Check() (one relaxed load) and proactively spill + shrink
  // their reservations so the waiters can start.
  bool MemoryPressure() const {
    return governor_ != nullptr && governor_->UnderPressure();
  }
  // Records a pressure-triggered spill in the governor stats; called by the
  // breaker that spilled (cold path).
  void NotePressureSpill() {
    if (governor_ != nullptr) governor_->NotePressureSpill();
  }

  // --- scratch memory -------------------------------------------------------
  // The query's scratch arena: operators lease their per-vector working
  // arrays here in OpenImpl (ScratchHandle members) so steady-state Next()
  // performs no allocations, and re-execution of a prepared query reuses the
  // same buffers. Thread-safe (fragments open on pool threads).
  VectorScratch* scratch() { return &scratch_; }

  // --- spilling -------------------------------------------------------------
  // Base directory for this query's spill files; configuration, set before
  // Open() (PreparedQuery::Execute points it at the database's swept spill
  // base). Empty = fall back to "<system tmp>/vwise-spill".
  void set_spill_dir(std::string base) { spill_base_ = std::move(base); }
  const std::string& spill_dir_base() const { return spill_base_; }

  // Returns a unique path for a new spill file, creating the per-query
  // directory on first use. `tag` names the operator for debuggability
  // ("sort_run", "join_build", ...). Thread-safe.
  Result<std::string> NewSpillPath(const char* tag) VWISE_EXCLUDES(spill_mu_);

  // Removes the per-query spill directory and everything in it. Runs in the
  // destructor; idempotent. Safe to call while no spill readers/writers are
  // open (operators close theirs in Close()).
  void CleanupSpillDir() VWISE_EXCLUDES(spill_mu_);

  SpillCounters& spill_counters() { return spill_counters_; }

 private:
  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  int64_t deadline_ns_ = 0;  // steady_clock ns since epoch; 0 = none
  int64_t budget_bytes_ = 0;  // 0 = unlimited
  // Configuration, written before Open() (see BindGovernor): the global
  // ledger Reserve draws through, and this query's id for error attribution.
  MemoryGovernor* governor_ = nullptr;
  bool admission_granted_ = false;  // configuration, written before Open()
  uint64_t query_id_ = 0;
  std::atomic<int64_t> reserved_{0};
  std::atomic<int64_t> peak_reserved_{0};
  VectorScratch scratch_;

  std::string spill_base_;  // configuration, written before Open()
  Mutex spill_mu_;
  std::string spill_dir_ VWISE_GUARDED_BY(spill_mu_);  // "" until first spill
  uint64_t spill_seq_ VWISE_GUARDED_BY(spill_mu_) = 0;
  // vwise-lint: allow(unguarded-member): SpillCounters fields are atomics
  SpillCounters spill_counters_;
};

// One operator's growing share of the query budget. Bound in OpenImpl (when
// ctx() is known), grown as input is buffered, released in Close — the
// destructor backstops operators torn down without a Close.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  ~MemoryReservation() { ReleaseAll(); }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  void Bind(QueryContext* ctx, const char* what) {
    ReleaseAll();
    ctx_ = ctx;
    what_ = what;
  }
  Status Grow(size_t bytes) {
    if (ctx_ == nullptr || bytes == 0) return Status::OK();
    VWISE_RETURN_IF_ERROR(ctx_->Reserve(bytes, what_));
    bytes_ += bytes;
    return Status::OK();
  }
  void ReleaseAll() {
    if (ctx_ != nullptr && bytes_ > 0) ctx_->Release(bytes_);
    bytes_ = 0;
  }
  // Gives back part of the reservation — a spilling breaker releases the
  // bytes of a partition it just flushed, and the aggregation trims its
  // worst-case pre-reserve down to what the chunk actually created.
  void Shrink(size_t bytes) {
    if (bytes > bytes_) bytes = bytes_;
    if (ctx_ != nullptr && bytes > 0) ctx_->Release(bytes);
    bytes_ -= bytes;
  }
  size_t bytes() const { return bytes_; }

 private:
  QueryContext* ctx_ = nullptr;
  const char* what_ = "";
  size_t bytes_ = 0;
};

}  // namespace vwise

#endif  // VWISE_SERVICE_QUERY_CONTEXT_H_
