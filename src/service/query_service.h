#ifndef VWISE_SERVICE_QUERY_SERVICE_H_
#define VWISE_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/thread_annotations.h"
#include "exec/operator.h"
#include "service/memory_governor.h"
#include "service/query_context.h"
#include "service/worker_pool.h"

namespace vwise {

// The per-Database concurrent query service behind the Session/QueryHandle
// API (service/session.h). Two resources, both bounded:
//
//   * admission slots — Config::max_concurrent_queries dedicated runner
//     threads consume a priority + FIFO wait queue of submitted queries, so
//     at most that many queries execute at once and the rest wait (their
//     admission wait is measured and reported);
//   * the shared worker pool — Config::pool_threads threads that execute
//     Xchg plan fragments for every admitted query (Config::worker_pool
//     points here so operators find it).
//
// Liveness: runner threads drive query roots and drain exchange queues but
// never execute pool tasks, and pool tasks block only on exchange queues
// that a runner is draining — so admitted queries always make progress no
// matter how oversubscribed the pool is.
//
// Cancellation: each job owns the QueryContext its operators poll.
// Cancelling a waiting job removes it from the queue and finishes it
// immediately; cancelling a running one unwinds cooperatively within one
// vector boundary.
class QueryService {
 public:
  // Shared state of one submitted query, co-owned by the service (while
  // queued/running) and the caller's QueryHandle. All members other than the
  // context are managed by the service.
  class Job {
   public:
    using RunFn = std::function<Result<QueryResult>(QueryContext*)>;

    QueryContext* context() { return &ctx_; }

    // Blocks until the query finishes, then moves the result out. Called
    // once, by QueryHandle::Wait (which caches it).
    Result<QueryResult> Take() VWISE_EXCLUDES(mu_);

    bool done() const VWISE_EXCLUDES(mu_);
    // Queue time (admit - submit), for the concurrency bench and tests.
    // Meaningful once the job has been admitted or finished.
    int64_t admission_wait_ns() const VWISE_EXCLUDES(mu_);

   private:
    friend class QueryService;

    QueryContext ctx_;
    // run_/priority_/seq_/submit_ns_ are written before the job is published
    // into the service queue (seq_ under the service's mu_) and never again;
    // the queue mutex orders those writes before any runner's reads.
    RunFn run_;
    int priority_ = 0;
    uint64_t seq_ = 0;  // FIFO order within a priority class; the query id
    int64_t submit_ns_ = 0;
    // Admission bookkeeping, read and written only under the service's mu_
    // (per-instance mutexes cannot be expressed to the static analysis).
    int admission_attempts_ = 0;   // TryAdmit rejections so far
    int64_t next_attempt_ns_ = 0;  // backoff gate; 0 = eligible now
    bool memory_waiting_ = false;  // counted in the governor's waiter set
    size_t granted_bytes_ = 0;     // admission grant held in the global ledger

    mutable Mutex mu_;
    CondVar cv_;
    int64_t admit_ns_ VWISE_GUARDED_BY(mu_) = 0;
    bool done_ VWISE_GUARDED_BY(mu_) = false;
    std::optional<Result<QueryResult>> result_ VWISE_GUARDED_BY(mu_);

    void Finish(Result<QueryResult> result) VWISE_EXCLUDES(mu_);
  };

  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t cancelled_in_queue = 0;
    // Governor view (memory admission; see service/memory_governor.h). All
    // monotone non-decreasing.
    uint64_t granted = 0;          // memory admissions granted
    uint64_t queued = 0;           // admission attempts that had to requeue
    uint64_t shed = 0;             // queries failed as overload last resort
    uint64_t pressure_spills = 0;  // breaker spills triggered by pressure
  };

  explicit QueryService(const Config& config);
  // Cancels queued and running queries, then joins the runners. Callers that
  // still hold QueryHandles observe Status::Cancelled.
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Enqueues `run`; a runner thread invokes it when a slot frees up (higher
  // `priority` first, FIFO within a priority). `configure` (may be null)
  // runs against the job's context before it becomes visible to any runner —
  // the only race-free point to set a deadline or memory budget.
  std::shared_ptr<Job> Submit(
      Job::RunFn run, int priority,
      const std::function<void(QueryContext*)>& configure = nullptr)
      VWISE_EXCLUDES(mu_);

  // Cancels the job's context and, if it is still waiting for admission,
  // finishes it with Status::Cancelled right away (a busy service must not
  // delay cancellation of queries it has not even started).
  void Cancel(const std::shared_ptr<Job>& job) VWISE_EXCLUDES(mu_);

  WorkerPool* pool() { return &pool_; }
  int max_concurrent() const { return static_cast<int>(runners_.size()); }
  // Service counters merged with the governor's admission stats.
  Stats stats() const VWISE_EXCLUDES(mu_);
  MemoryGovernor* governor() { return &governor_; }

 private:
  // A job the admission scan decided to fail, finished outside mu_ (Finish
  // takes the job's own mutex; mu_ must stay a leaf above it).
  struct ShedJob {
    std::shared_ptr<Job> job;
    Status status;
  };

  void RunnerLoop() VWISE_EXCLUDES(mu_);
  // The admission scan: returns the best-priority job the governor admits
  // right now, or nullptr. Jobs whose backoff gate is in the future are
  // skipped (*wake_ns = earliest gate); jobs that are cancelled, expired,
  // inadmissible forever, or out of retries are moved to *shed. Rejected
  // jobs get their backoff armed and the governor's waiter count bumped.
  std::shared_ptr<Job> NextRunnableLocked(int64_t now, int64_t* wake_ns,
                                          std::vector<ShedJob>* shed)
      VWISE_REQUIRES(mu_);
  // Drops the job's membership in the governor waiter set, if any.
  void EndMemoryWaitLocked(Job* job) VWISE_REQUIRES(mu_);
  // Jittered exponential backoff for the attempt-th admission retry, ns.
  int64_t BackoffNs(int attempt, uint64_t seq) const;

  WorkerPool pool_;
  MemoryGovernor governor_;
  const int admission_retry_limit_;
  const uint64_t backoff_base_us_;
  const uint64_t backoff_max_us_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::shared_ptr<Job>> queue_ VWISE_GUARDED_BY(mu_);
  // For shutdown cancellation.
  std::vector<Job*> running_ VWISE_GUARDED_BY(mu_);
  bool stop_ VWISE_GUARDED_BY(mu_) = false;
  uint64_t next_seq_ VWISE_GUARDED_BY(mu_) = 0;
  Stats stats_ VWISE_GUARDED_BY(mu_);
  std::vector<std::thread> runners_;  // created in the ctor, joined in dtor
};

}  // namespace vwise

#endif  // VWISE_SERVICE_QUERY_SERVICE_H_
