#include "service/worker_pool.h"

#include <algorithm>

namespace vwise {

namespace {

int ResolveThreads(int threads) {
  if (threads > 0) return threads;
  unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 2u, 16u));
}

}  // namespace

WorkerPool::WorkerPool(int threads) {
  int n = ResolveThreads(threads);
  deques_.resize(static_cast<size_t>(n));
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    threads_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.SignalAll();
  for (auto& t : threads_) t.join();
}

void WorkerPool::Submit(const void* tag, Task fn) {
  {
    MutexLock lock(&mu_);
    // Round-robin across deques; workers rebalance by stealing.
    size_t d = next_deque_.fetch_add(1, std::memory_order_relaxed) %
               deques_.size();
    deques_[d].push_back(Item{tag, std::move(fn)});
    stats_.submitted++;
  }
  cv_.Signal();
}

bool WorkerPool::AnyQueued() const {
  for (const auto& d : deques_) {
    if (!d.empty()) return true;
  }
  return false;
}

bool WorkerPool::PopOrSteal(size_t self, Item* out) {
  // Own deque first, newest task (LIFO).
  if (!deques_[self].empty()) {
    *out = std::move(deques_[self].back());
    deques_[self].pop_back();
    return true;
  }
  // Steal the oldest task of the next non-empty victim (FIFO).
  for (size_t i = 1; i < deques_.size(); i++) {
    size_t victim = (self + i) % deques_.size();
    if (!deques_[victim].empty()) {
      *out = std::move(deques_[victim].front());
      deques_[victim].pop_front();
      stats_.stolen++;
      return true;
    }
  }
  return false;
}

void WorkerPool::WorkerLoop(size_t self) {
  for (;;) {
    Item item;
    {
      MutexLock lock(&mu_);
      while (!stop_ && !AnyQueued()) cv_.Wait(&mu_);
      if (!PopOrSteal(self, &item)) {
        // stop_ with every deque empty: shutdown complete for this worker.
        return;
      }
      stats_.executed++;
    }
    item.fn();
  }
}

bool WorkerPool::TryRunTagged(const void* tag) {
  Item item;
  {
    MutexLock lock(&mu_);
    bool found = false;
    for (auto& d : deques_) {
      for (auto it = d.begin(); it != d.end(); ++it) {
        if (it->tag == tag) {
          item = std::move(*it);
          d.erase(it);
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) return false;
    stats_.executed++;
  }
  item.fn();
  return true;
}

WorkerPool::Stats WorkerPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

WorkerPool* WorkerPool::Global() {
  // Intentionally leaked: pool threads must not be torn down by static
  // destruction order while late-exiting code still holds the pointer.
  static WorkerPool* global = new WorkerPool(0);
  return global;
}

}  // namespace vwise
