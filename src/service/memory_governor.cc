#include "service/memory_governor.h"

#include "common/failpoint.h"

namespace vwise {

Result<MemoryGovernor::Admission> MemoryGovernor::TryAdmit(
    size_t declared_bytes) {
  VWISE_FAILPOINT("governor.admit");
  if (total_ == 0) {
    MutexLock lock(&mu_);
    stats_.granted++;
    return Admission::kGranted;
  }
  if (declared_bytes > total_) return Admission::kImpossible;
  if (declared_bytes == 0) {
    // No declared budget: nothing to hold, admit while any headroom remains.
    // The query's reservations draw the ledger directly as they happen — a
    // pressure-spill elsewhere frees bytes such a query can use immediately.
    if (available_bytes() == 0) return Admission::kQueued;
  } else if (!TryReserve(declared_bytes)) {
    // The declared budget is held for the query's whole run (ReleaseGrant
    // pairs with this): admitting on momentary low usage would let peers
    // ramp up later and fail this query's reservations mid-flight.
    return Admission::kQueued;
  }
  MutexLock lock(&mu_);
  stats_.granted++;
  return Admission::kGranted;
}

Status MemoryGovernor::NoteRequeue() {
  VWISE_FAILPOINT("governor.requeue");
  MutexLock lock(&mu_);
  stats_.queued++;
  return Status::OK();
}

void MemoryGovernor::NoteShed() {
  MutexLock lock(&mu_);
  stats_.shed++;
}

void MemoryGovernor::NotePressureSpill() {
  MutexLock lock(&mu_);
  stats_.pressure_spills++;
}

}  // namespace vwise
