#ifndef VWISE_SERVICE_WORKER_POOL_H_
#define VWISE_SERVICE_WORKER_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace vwise {

// The process-wide shared worker pool that executes plan-fragment tasks.
// XchgOperator submits one task per fragment instead of spawning threads, so
// N concurrent parallel queries share Config::pool_threads workers rather
// than oversubscribing the machine with N * num_threads fresh threads.
//
// Structure: one deque per worker. A worker pops its own deque from the back
// (LIFO — freshly pushed fragments are cache-warm) and steals from the front
// of a victim's deque (FIFO — the oldest, largest-remaining work). Tasks are
// coarse (a whole plan fragment, typically milliseconds of work), so a
// single pool mutex guards all deques: contention at this granularity is
// negligible and the locking stays obviously TSan-clean.
//
// Tasks carry an opaque owner tag. TryRunTagged(tag) lets an owner help-run
// its own not-yet-started tasks inline — XchgOperator::Close() uses it to
// drain cancelled fragments without waiting for a busy pool to schedule
// them. Helping is deliberately restricted to the caller's own tag: running
// an arbitrary query's fragment inline could block the helper on that
// query's full exchange queue, which deadlocks when two consumers help each
// other's producers.
class WorkerPool {
 public:
  using Task = std::function<void()>;

  struct Stats {
    uint64_t submitted = 0;
    uint64_t executed = 0;
    uint64_t stolen = 0;  // executed tasks taken from another worker's deque
  };

  // threads <= 0 resolves to the hardware default (see Config::pool_threads).
  explicit WorkerPool(int threads);
  // Drains: queued tasks still run (they observe their owners' cancellation
  // tokens), then workers exit and join.
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues `fn` under `tag` (the owning operator/query, for TryRunTagged).
  void Submit(const void* tag, Task fn) VWISE_EXCLUDES(mu_);

  // Runs one queued task with matching tag on the calling thread. Returns
  // false when none is queued (matching tasks may still be running).
  bool TryRunTagged(const void* tag) VWISE_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(threads_.size()); }
  Stats stats() const VWISE_EXCLUDES(mu_);

  // The process-wide fallback pool (plans executed without a Database /
  // QueryService, e.g. unit tests driving operators directly). Created on
  // first use with the hardware-default thread count and never destroyed.
  static WorkerPool* Global();

 private:
  struct Item {
    const void* tag;
    Task fn;
  };

  void WorkerLoop(size_t self) VWISE_EXCLUDES(mu_);
  bool PopOrSteal(size_t self, Item* out) VWISE_REQUIRES(mu_);
  bool AnyQueued() const VWISE_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::vector<std::deque<Item>> deques_ VWISE_GUARDED_BY(mu_);
  bool stop_ VWISE_GUARDED_BY(mu_) = false;
  Stats stats_ VWISE_GUARDED_BY(mu_);
  std::atomic<uint64_t> next_deque_{0};
  std::vector<std::thread> threads_;  // created in the ctor, joined in dtor
};

}  // namespace vwise

#endif  // VWISE_SERVICE_WORKER_POOL_H_
