#ifndef VWISE_API_DATABASE_H_
#define VWISE_API_DATABASE_H_

#include <memory>
#include <string>

#include "planner/plan_builder.h"
#include "scan/scan_scheduler.h"
#include "txn/transaction_manager.h"

namespace vwise {

// The top-level embedded-database facade: one directory on disk, ACID
// positional updates via PDTs + WAL, vectorized analytical queries via the
// plan builder.
//
//   auto db = Database::Open("/tmp/mydb", Config()).value();
//   db->CreateTable(schema);
//   db->BulkLoad("t", ...);
//   PlanBuilder q = db->NewPlan();
//   q.Scan("t", {0, 1});
//   q.Select(e::Gt(q.Col(1), e::I64(10)));
//   auto result = db->Run(&q);
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                const Config& config);
  ~Database();

  // --- DDL / load -----------------------------------------------------------
  Status CreateTable(const TableSchema& schema);
  Status CreateTable(const TableSchema& schema, const ColumnGroups& groups);
  Status BulkLoad(const std::string& table,
                  const std::function<Status(TableWriter*)>& fill);

  // --- transactions ----------------------------------------------------------
  std::unique_ptr<Transaction> Begin() { return tm_->Begin(); }
  Status Commit(Transaction* txn) { return tm_->Commit(txn); }
  void Abort(Transaction* txn) { tm_->Abort(txn); }
  Status Checkpoint() { return tm_->Checkpoint(); }

  // --- queries ---------------------------------------------------------------
  PlanBuilder NewPlan() { return PlanBuilder(tm_.get(), config_); }
  Result<QueryResult> Run(PlanBuilder* plan,
                          std::vector<std::string> column_names = {});

  // --- plumbing ---------------------------------------------------------------
  TransactionManager* txn_manager() { return tm_.get(); }
  BufferManager* buffers() { return buffers_.get(); }
  IoDevice* device() { return device_.get(); }
  ScanScheduler* scan_scheduler() { return scheduler_.get(); }
  const Config& config() const { return config_; }

 private:
  Database() = default;

  Config config_;
  std::unique_ptr<IoDevice> device_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<ScanScheduler> scheduler_;
  std::unique_ptr<TransactionManager> tm_;
};

}  // namespace vwise

#endif  // VWISE_API_DATABASE_H_
