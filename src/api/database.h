#ifndef VWISE_API_DATABASE_H_
#define VWISE_API_DATABASE_H_

#include <memory>
#include <string>

#include "planner/plan_builder.h"
#include "scan/scan_scheduler.h"
#include "service/session.h"
#include "txn/transaction_manager.h"

namespace vwise {

// The top-level embedded-database facade: one directory on disk, ACID
// positional updates via PDTs + WAL, vectorized analytical queries through
// per-connection Sessions arbitrated by a shared query service (admission
// control + worker pool, service/query_service.h).
//
//   auto db = Database::Open("/tmp/mydb", Config()).value();
//   db->CreateTable(schema);
//   db->BulkLoad("t", ...);
//   auto session = db->Connect();
//   PlanBuilder q = session->NewPlan();
//   q.Scan("t", {0, 1});
//   q.Select(e::Gt(q.Col(1), e::I64(10)));
//   auto result = session->Query(&q);
//
// Database::Run(&q) remains as a single-shot convenience over a throwaway
// session.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                const Config& config);
  ~Database();

  // --- DDL / load -----------------------------------------------------------
  Status CreateTable(const TableSchema& schema);
  Status CreateTable(const TableSchema& schema, const ColumnGroups& groups);
  Status BulkLoad(const std::string& table,
                  const std::function<Status(TableWriter*)>& fill);

  // --- transactions ----------------------------------------------------------
  std::unique_ptr<Transaction> Begin() { return tm_->Begin(); }
  Status Commit(Transaction* txn) { return tm_->Commit(txn); }
  void Abort(Transaction* txn) { tm_->Abort(txn); }
  Status Checkpoint() { return tm_->Checkpoint(); }

  // --- queries ---------------------------------------------------------------
  // A new client connection. Sessions are independent and cheap; each is
  // single-threaded, and concurrent sessions share the admission-controlled
  // query service.
  std::unique_ptr<Session> Connect();
  PlanBuilder NewPlan() { return PlanBuilder(tm_.get(), config_); }
  // Single-shot convenience over a throwaway session.
  Result<QueryResult> Run(PlanBuilder* plan,
                          std::vector<std::string> column_names = {});

  QueryService* query_service() { return service_.get(); }
  const Config& config() const { return config_; }

  // --- internal plumbing ------------------------------------------------------
  // Engine internals, exposed for tests, benchmarks, and tooling only (white-
  // box fixtures loading tables through the TransactionManager, scan-policy
  // benches poking the scheduler). Application code talks to Sessions.
  struct InternalHandles {
    TransactionManager* tm;
    BufferManager* buffers;
    IoDevice* device;
    ScanScheduler* scheduler;
  };
  InternalHandles Internals() {
    return InternalHandles{tm_.get(), buffers_.get(), device_.get(),
                           scheduler_.get()};
  }

 private:
  Database() = default;

  Config config_;
  std::unique_ptr<IoDevice> device_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<ScanScheduler> scheduler_;
  std::unique_ptr<TransactionManager> tm_;
  // Declared last: destroyed first, so in-flight queries (which reference the
  // managers above) are cancelled and joined before anything else goes away.
  std::unique_ptr<QueryService> service_;
};

}  // namespace vwise

#endif  // VWISE_API_DATABASE_H_
