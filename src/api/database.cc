#include "api/database.h"

#include "expr/primitive_profiler.h"
#include "planner/plan_verifier.h"

namespace vwise {

Database::~Database() = default;

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 const Config& config) {
  auto db = std::unique_ptr<Database>(new Database());
  db->config_ = config;
  db->device_ = std::make_unique<IoDevice>(config);
  db->buffers_ = std::make_unique<BufferManager>(config.buffer_pool_bytes);
  db->scheduler_ = std::make_unique<ScanScheduler>(ScanPolicy::kCooperative,
                                                   db->buffers_.get());
  VWISE_ASSIGN_OR_RETURN(
      db->tm_, TransactionManager::Open(dir, config, db->device_.get(),
                                        db->buffers_.get()));
  return db;
}

Status Database::CreateTable(const TableSchema& schema) {
  return tm_->CreateTable(schema, ColumnGroups::Dsm(schema.num_columns()));
}

Status Database::CreateTable(const TableSchema& schema,
                             const ColumnGroups& groups) {
  return tm_->CreateTable(schema, groups);
}

Status Database::BulkLoad(const std::string& table,
                          const std::function<Status(TableWriter*)>& fill) {
  return tm_->BulkLoad(table, fill);
}

Result<QueryResult> Database::Run(PlanBuilder* plan,
                                  std::vector<std::string> column_names) {
  VWISE_ASSIGN_OR_RETURN(OperatorPtr root, plan->Build());
  if (root == nullptr) return Status::InvalidArgument("empty plan");
  if (!config_.profile) {
    return CollectRows(root.get(), config_.vector_size,
                       std::move(column_names));
  }
  // Profiled run: enable the per-primitive counters for the duration of the
  // pipeline, then render EXPLAIN ANALYZE (per-operator wrapper stats) plus
  // the primitive counter delta of this query.
  PrimitiveProfiler::ScopedEnable enable(true);
  std::vector<PrimitiveCounters> before = PrimitiveProfiler::Snapshot();
  VWISE_ASSIGN_OR_RETURN(
      QueryResult result,
      CollectRows(root.get(), config_.vector_size, std::move(column_names)));
  std::vector<PrimitiveCounters> after = PrimitiveProfiler::Snapshot();
  result.profile =
      ExplainAnalyzePlan(*root) + RenderPrimitiveProfile(before, after);
  return result;
}

}  // namespace vwise
