#include "api/database.h"

#include <cstdlib>

#include "service/query_service.h"
#include "storage/spill_file.h"

namespace vwise {

Database::~Database() = default;

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 const Config& config) {
  auto db = std::unique_ptr<Database>(new Database());
  db->config_ = config;
  // Resolve the spill base for every query of this database: explicit config,
  // then $VWISE_SPILL_DIR, then a directory next to the data. Whatever it
  // resolves to is swept now — per-query subdirectories that survived a crash
  // are dead scratch (the queries that wrote them are gone).
  if (db->config_.spill_dir.empty()) {
    const char* env = std::getenv("VWISE_SPILL_DIR");
    db->config_.spill_dir = (env != nullptr && env[0] != '\0')
                                ? std::string(env)
                                : dir + "/spill";
  }
  SweepSpillDir(db->config_.spill_dir);
  db->device_ = std::make_unique<IoDevice>(config);
  db->buffers_ = std::make_unique<BufferManager>(config.buffer_pool_bytes);
  db->scheduler_ = std::make_unique<ScanScheduler>(ScanPolicy::kCooperative,
                                                   db->buffers_.get());
  VWISE_ASSIGN_OR_RETURN(
      db->tm_, TransactionManager::Open(dir, config, db->device_.get(),
                                        db->buffers_.get()));
  db->service_ = std::make_unique<QueryService>(config);
  // Plans built from this database submit their Xchg fragments to the
  // service's shared pool.
  db->config_.worker_pool = db->service_->pool();
  return db;
}

std::unique_ptr<Session> Database::Connect() {
  return std::unique_ptr<Session>(
      new Session(tm_.get(), service_.get(), config_));
}

Status Database::CreateTable(const TableSchema& schema) {
  return tm_->CreateTable(schema, ColumnGroups::Dsm(schema.num_columns()));
}

Status Database::CreateTable(const TableSchema& schema,
                             const ColumnGroups& groups) {
  return tm_->CreateTable(schema, groups);
}

Status Database::BulkLoad(const std::string& table,
                          const std::function<Status(TableWriter*)>& fill) {
  return tm_->BulkLoad(table, fill);
}

Result<QueryResult> Database::Run(PlanBuilder* plan,
                                  std::vector<std::string> column_names) {
  return Connect()->Query(plan, std::move(column_names));
}

}  // namespace vwise
