#include "txn/wal.h"

#include <sys/stat.h>

#include "common/crc32.h"
#include "common/macros.h"
#include "common/serialize.h"

namespace vwise {

namespace {

constexpr uint32_t kRecordMagic = 0x57414c52;  // "WALR"

void PutOp(std::vector<uint8_t>* out, const PdtLogOp& op) {
  uint8_t flags = (op.is_append ? 1 : 0) | (op.has_sid ? 2 : 0);
  ser::Put<uint8_t>(out, static_cast<uint8_t>(op.kind));
  ser::Put<uint8_t>(out, flags);
  ser::Put<uint64_t>(out, op.rid);
  ser::Put<uint64_t>(out, op.sid);
  ser::Put<uint32_t>(out, op.col);
  ser::PutValue(out, op.value);
  ser::Put<uint32_t>(out, static_cast<uint32_t>(op.row.size()));
  for (const Value& v : op.row) ser::PutValue(out, v);
}

Status GetOp(ser::Reader* r, PdtLogOp* op) {
  uint8_t kind = 0, flags = 0;
  VWISE_RETURN_IF_ERROR(r->Get(&kind));
  if (kind > 2) return Status::Corruption("bad op kind");
  op->kind = static_cast<PdtOpKind>(kind);
  VWISE_RETURN_IF_ERROR(r->Get(&flags));
  op->is_append = (flags & 1) != 0;
  op->has_sid = (flags & 2) != 0;
  VWISE_RETURN_IF_ERROR(r->Get(&op->rid));
  VWISE_RETURN_IF_ERROR(r->Get(&op->sid));
  VWISE_RETURN_IF_ERROR(r->Get(&op->col));
  VWISE_RETURN_IF_ERROR(r->GetValue(&op->value));
  uint32_t n;
  VWISE_RETURN_IF_ERROR(r->Get(&n));
  op->row.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    VWISE_RETURN_IF_ERROR(r->GetValue(&op->row[i]));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       IoDevice* device, bool sync_on_commit) {
  VWISE_ASSIGN_OR_RETURN(auto file, IoFile::OpenAppend(path, device, "wal"));
  return std::unique_ptr<Wal>(new Wal(std::move(file), sync_on_commit));
}

Status Wal::AppendCommit(const WalCommit& commit) {
  std::vector<uint8_t> payload;
  ser::Put<uint64_t>(&payload, commit.epoch);
  ser::Put<uint64_t>(&payload, commit.txn_id);
  ser::Put<uint32_t>(&payload, static_cast<uint32_t>(commit.ops.size()));
  for (const auto& [table, ops] : commit.ops) {
    ser::PutString(&payload, table);
    ser::Put<uint32_t>(&payload, static_cast<uint32_t>(ops.size()));
    for (const auto& op : ops) PutOp(&payload, op);
  }
  std::vector<uint8_t> record;
  ser::Put<uint32_t>(&record, kRecordMagic);
  ser::Put<uint32_t>(&record, static_cast<uint32_t>(payload.size()));
  ser::Put<uint32_t>(&record, Crc32(payload.data(), payload.size()));
  ser::PutBytes(&record, payload.data(), payload.size());
  uint64_t pre_size = file_->size();
  Status s = file_->Append(record.data(), record.size());
  if (s.ok() && sync_) s = file_->Sync();
  if (!s.ok()) {
    // The failed record must not survive, for two reasons. A torn write
    // leaves a partial record past the logical end; a later successful
    // append of a *shorter* record would leave the remnant's tail as mid-log
    // garbage, turning a recoverable torn tail into apparent interior
    // corruption. Worse, a *complete* record whose sync failed would be
    // replayed on reopen even though this process reported the commit failed
    // and built every later commit on a state without it. Trim back to the
    // pre-append size — best-effort: if the trim fails too, recovery still
    // handles a torn tail, and a caller seeing the error should treat the
    // log as doubtful and reopen.
    (void)file_->Truncate(pre_size);
    return s;
  }
  return Status::OK();
}

Status Wal::Reset() {
  VWISE_RETURN_IF_ERROR(file_->Truncate(0));
  return file_->Sync();
}

Result<std::vector<WalCommit>> Wal::ReadAll(const std::string& path,
                                            IoDevice* device) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return std::vector<WalCommit>{};  // no log, nothing to replay
  }
  VWISE_ASSIGN_OR_RETURN(auto file, IoFile::OpenRead(path, device, "wal"));
  std::vector<uint8_t> bytes(file->size());
  if (!bytes.empty()) {
    VWISE_RETURN_IF_ERROR(file->Read(0, bytes.size(), bytes.data()));
  }
  std::vector<WalCommit> commits;
  size_t pos = 0;
  while (pos + 12 <= bytes.size()) {
    uint32_t magic, len, crc;
    std::memcpy(&magic, bytes.data() + pos, 4);
    std::memcpy(&len, bytes.data() + pos + 4, 4);
    std::memcpy(&crc, bytes.data() + pos + 8, 4);
    if (magic != kRecordMagic) {
      return Status::Corruption("WAL record magic mismatch at offset " +
                                std::to_string(pos));
    }
    if (pos + 12 + len > bytes.size()) break;  // torn tail write: stop here
    const uint8_t* payload = bytes.data() + pos + 12;
    if (Crc32(payload, len) != crc) {
      // A record that ends exactly at EOF is the torn-tail signature (the
      // header made it out, part of the payload did not): recover the valid
      // prefix. A bad record with intact bytes *after* it cannot be a torn
      // write — that is interior damage, and dropping the commits behind it
      // would silently lose acknowledged transactions.
      if (pos + 12 + len == bytes.size()) break;
      return Status::Corruption(
          "WAL record checksum mismatch at offset " + std::to_string(pos) +
          " with " + std::to_string(bytes.size() - (pos + 12 + len)) +
          " bytes following (interior corruption)");
    }
    ser::Reader r(payload, len);
    WalCommit commit;
    VWISE_RETURN_IF_ERROR(r.Get(&commit.epoch));
    VWISE_RETURN_IF_ERROR(r.Get(&commit.txn_id));
    uint32_t n_tables;
    VWISE_RETURN_IF_ERROR(r.Get(&n_tables));
    for (uint32_t t = 0; t < n_tables; t++) {
      std::string table;
      VWISE_RETURN_IF_ERROR(r.GetString(&table));
      uint32_t n_ops;
      VWISE_RETURN_IF_ERROR(r.Get(&n_ops));
      auto& ops = commit.ops[table];
      ops.resize(n_ops);
      for (uint32_t i = 0; i < n_ops; i++) {
        VWISE_RETURN_IF_ERROR(GetOp(&r, &ops[i]));
      }
    }
    commits.push_back(std::move(commit));
    pos += 12 + len;
  }
  return commits;
}

}  // namespace vwise
