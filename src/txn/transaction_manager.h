#ifndef VWISE_TXN_TRANSACTION_MANAGER_H_
#define VWISE_TXN_TRANSACTION_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

#include "catalog/schema.h"
#include "common/config.h"
#include "common/result.h"
#include "pdt/pdt.h"
#include "storage/buffer_manager.h"
#include "storage/table_file.h"
#include "txn/wal.h"

namespace vwise {

// A consistent view of one table: the immutable stable image plus the PDT
// deltas visible to the reader. `deltas` may be null (no deltas).
struct TableSnapshot {
  const TableSchema* schema = nullptr;
  std::shared_ptr<TableFile> stable;
  std::shared_ptr<const Pdt> deltas;
  uint64_t version = 0;

  uint64_t visible_rows() const {
    uint64_t n = stable->row_count();
    if (deltas) n = static_cast<uint64_t>(static_cast<int64_t>(n) + deltas->net_displacement());
    return n;
  }
};

class TransactionManager;

// An interactive transaction: positional updates against a snapshot, with
// read-your-writes views, validated optimistically at commit (paper Sec.
// I-B: "optimistic PDT-based concurrency control").
class Transaction {
 public:
  uint64_t id() const { return id_; }

  Status Insert(const std::string& table, uint64_t rid, std::vector<Value> row);
  // Insert at the end of the visible table.
  Status Append(const std::string& table, std::vector<Value> row);
  Status Delete(const std::string& table, uint64_t rid);
  Status Modify(const std::string& table, uint64_t rid, uint32_t col, Value v);

  // Snapshot including this transaction's own uncommitted writes.
  Result<TableSnapshot> GetView(const std::string& table);

 private:
  friend class TransactionManager;

  struct PerTable {
    uint64_t snapshot_version = 0;
    std::shared_ptr<TableFile> stable;
    std::shared_ptr<const Pdt> snapshot_pdt;  // may be null
    std::shared_ptr<Pdt> view;                // snapshot clone + own ops
    std::vector<PdtLogOp> ops;
    std::vector<uint64_t> touched_sids;  // stable rows deleted/modified
    bool touched_delta = false;          // modified rows born in deltas
    uint64_t visible_rows = 0;
  };

  explicit Transaction(TransactionManager* mgr, uint64_t id)
      : mgr_(mgr), id_(id) {}

  Result<PerTable*> Touch(const std::string& table);

  TransactionManager* mgr_;
  uint64_t id_;
  bool finished_ = false;
  std::map<std::string, PerTable> tables_;
};

// Owns the catalog, table versions, committed PDTs, the WAL and commit
// validation. One instance per database directory.
class TransactionManager {
 public:
  // Opens (or initializes) the database in `dir`, replaying the WAL.
  static Result<std::unique_ptr<TransactionManager>> Open(
      const std::string& dir, const Config& config, IoDevice* device,
      BufferManager* buffers);

  ~TransactionManager();

  // Creates an empty table (durably recorded in the catalog).
  Status CreateTable(const TableSchema& schema, const ColumnGroups& groups)
      VWISE_EXCLUDES(mu_);

  // Bulk-loads the initial version of `table` by streaming rows into the
  // provided writer callback. Only valid while the table is empty.
  Status BulkLoad(const std::string& table,
                  const std::function<Status(TableWriter*)>& fill)
      VWISE_EXCLUDES(mu_);

  bool HasTable(const std::string& name) const VWISE_EXCLUDES(mu_);
  const TableSchema* GetSchema(const std::string& name) const
      VWISE_EXCLUDES(mu_);
  std::vector<std::string> TableNames() const VWISE_EXCLUDES(mu_);

  // Latest committed snapshot (auto-commit reads).
  Result<TableSnapshot> GetSnapshot(const std::string& table) const
      VWISE_EXCLUDES(mu_);

  std::unique_ptr<Transaction> Begin() VWISE_EXCLUDES(mu_);
  // Validates and applies the transaction. On kTransactionConflict the
  // transaction is rolled back and may be retried by the caller.
  Status Commit(Transaction* txn) VWISE_EXCLUDES(mu_);
  void Abort(Transaction* txn) VWISE_EXCLUDES(mu_);

  // Merges every table's committed deltas into new version files, then
  // truncates the WAL.
  //
  // Crash-safe publication protocol (every step is a failpoint site):
  //   1. ckpt.table    write each merged version to `<table>.v<N+1>.tmp`,
  //                    synced (TableWriter::Finish)
  //   2. ckpt.rename   atomically rename temps into place, fsync the dir
  //   3. ckpt.publish  bump the WAL epoch and save the catalog (itself
  //                    tmp+rename) — the single atomic commit point
  //   4.               swap in new files, drop merged PDTs, unlink old
  //                    versions
  //   5. ckpt.reset    truncate the WAL; ckpt.done
  // A crash before 3 recovers from the old catalog + full WAL replay (new
  // files are swept as stale on reopen); a crash after 3 recovers from the
  // new catalog, skipping the WAL's old-epoch records, whose deltas the new
  // files already contain.
  Status Checkpoint() VWISE_EXCLUDES(mu_);

  const Config& config() const { return config_; }
  IoDevice* device() { return device_; }
  BufferManager* buffers() { return buffers_; }

  // Counters for benches/tests. Locked: concurrent sessions commit while
  // benches read these (the unlocked originals were a data race the
  // thread-safety annotation sweep flushed out).
  uint64_t commits() const VWISE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return n_commits_;
  }
  uint64_t aborts() const VWISE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return n_aborts_;
  }

 private:
  friend class Transaction;

  struct CommitEntry {
    uint64_t version;
    std::vector<uint64_t> touched_sids;  // sorted
    bool touched_delta;
  };

  struct TableState {
    TableSchema schema;
    ColumnGroups groups;
    uint64_t file_version = 0;  // version number in the file name
    std::shared_ptr<TableFile> stable;
    std::shared_ptr<const Pdt> committed;  // may be null (empty)
    uint64_t commit_version = 0;
    std::vector<CommitEntry> commit_log;  // since last checkpoint
  };

  TransactionManager(std::string dir, const Config& config, IoDevice* device,
                     BufferManager* buffers)
      : dir_(std::move(dir)), config_(config), device_(device),
        buffers_(buffers) {}

  std::string TableFilePath(const std::string& name, uint64_t version) const;
  std::string CatalogPath() const;
  std::string WalPath() const;

  Status SaveCatalogLocked() VWISE_REQUIRES(mu_);
  Status LoadCatalogLocked() VWISE_REQUIRES(mu_);
  Status RecoverLocked() VWISE_REQUIRES(mu_);
  Status OpenTableFileLocked(TableState* st) VWISE_REQUIRES(mu_);
  // Streams the merge of stable + committed deltas into a new version file
  // at `path` (synced on Finish); publication is the caller's job.
  Status WriteMergedTableLocked(TableState* st, const std::string& path)
      VWISE_REQUIRES(mu_);
  // Removes *.tmp litter and version files the catalog doesn't reference —
  // what a crash mid-checkpoint/bulk-load leaves behind.
  Status CleanStaleFilesLocked() VWISE_REQUIRES(mu_);

  std::string dir_;
  Config config_;
  IoDevice* device_;
  BufferManager* buffers_;

  mutable Mutex mu_;
  std::unique_ptr<Wal> wal_ VWISE_GUARDED_BY(mu_);
  std::map<std::string, TableState> tables_ VWISE_GUARDED_BY(mu_);
  // Checkpoint epoch, persisted in the catalog and stamped into every WAL
  // record; recovery skips records older than the catalog's epoch.
  uint64_t wal_epoch_ VWISE_GUARDED_BY(mu_) = 0;
  uint64_t next_txn_id_ VWISE_GUARDED_BY(mu_) = 1;
  uint64_t next_commit_version_ VWISE_GUARDED_BY(mu_) = 1;
  uint64_t n_commits_ VWISE_GUARDED_BY(mu_) = 0;
  uint64_t n_aborts_ VWISE_GUARDED_BY(mu_) = 0;
};

}  // namespace vwise

#endif  // VWISE_TXN_TRANSACTION_MANAGER_H_
