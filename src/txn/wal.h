#ifndef VWISE_TXN_WAL_H_
#define VWISE_TXN_WAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "pdt/pdt.h"
#include "storage/io_file.h"

namespace vwise {

// Write-ahead log of committed PDT deltas (paper Sec. I-B: "a Write Ahead
// Log that logs PDTs as they are committed"). Each record is
// length-prefixed and CRC-protected; recovery replays the longest valid
// prefix, so torn tail writes are tolerated, while interior corruption —
// a damaged record with intact records after it — is reported as
// Corruption rather than silently dropping committed transactions.
//
// Every record carries the *checkpoint epoch* current at commit time. The
// catalog stores the epoch too; a checkpoint publishes the new catalog
// (epoch+1) before resetting the log, so a crash between the two leaves
// old-epoch records in the WAL that recovery must skip (their deltas are
// already merged into the published table files). See
// TransactionManager::Checkpoint for the full ordering argument.
struct WalCommit {
  uint64_t txn_id = 0;
  uint64_t epoch = 0;
  // Per-table operation lists, in application order.
  std::map<std::string, std::vector<PdtLogOp>> ops;
};

class Wal {
 public:
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           IoDevice* device,
                                           bool sync_on_commit);

  Status AppendCommit(const WalCommit& commit);
  // Empties the log (after a checkpoint made all deltas durable in table
  // files).
  Status Reset();

  uint64_t size_bytes() const { return file_->size(); }

  // Reads every valid commit record from `path`; stops cleanly at a torn or
  // missing tail, returns Corruption only for interior damage.
  static Result<std::vector<WalCommit>> ReadAll(const std::string& path,
                                                IoDevice* device);

 private:
  Wal(std::unique_ptr<IoFile> file, bool sync) : file_(std::move(file)), sync_(sync) {}

  std::unique_ptr<IoFile> file_;
  bool sync_;
};

}  // namespace vwise

#endif  // VWISE_TXN_WAL_H_
