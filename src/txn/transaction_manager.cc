#include "txn/transaction_manager.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/serialize.h"

namespace vwise {

namespace {

constexpr uint32_t kCatalogMagic = 0x56574354;  // "VWCT"

// Converts one value of a decoded column to a boundary Value.
Value ColumnValue(const DecodedColumn& col, size_t i) {
  switch (col.type) {
    case TypeId::kU8:
      return Value::Int(col.Data<uint8_t>()[i]);
    case TypeId::kI32:
      return Value::Int(col.Data<int32_t>()[i]);
    case TypeId::kI64:
      return Value::Int(col.Data<int64_t>()[i]);
    case TypeId::kF64:
      return Value::Double(col.Data<double>()[i]);
    case TypeId::kStr:
      return Value::String(col.Data<StringVal>()[i].ToString());
  }
  return Value::Null();
}

bool SortedIntersects(const std::vector<uint64_t>& a,
                      const std::vector<uint64_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      i++;
    } else if (a[i] > b[j]) {
      j++;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------------

Result<Transaction::PerTable*> Transaction::Touch(const std::string& table) {
  VWISE_CHECK_MSG(!finished_, "transaction already finished");
  auto it = tables_.find(table);
  if (it != tables_.end()) return &it->second;
  VWISE_ASSIGN_OR_RETURN(TableSnapshot snap, mgr_->GetSnapshot(table));
  PerTable pt;
  pt.snapshot_version = snap.version;
  pt.stable = snap.stable;
  pt.snapshot_pdt = snap.deltas;
  pt.view = snap.deltas ? std::shared_ptr<Pdt>(snap.deltas->Clone())
                        : std::make_shared<Pdt>();
  pt.visible_rows = snap.visible_rows();
  return &tables_.emplace(table, std::move(pt)).first->second;
}

Status Transaction::Insert(const std::string& table, uint64_t rid,
                           std::vector<Value> row) {
  VWISE_ASSIGN_OR_RETURN(PerTable * pt, Touch(table));
  if (rid > pt->visible_rows) {
    return Status::InvalidArgument("insert position beyond table end");
  }
  PdtLogOp op;
  op.kind = PdtOpKind::kIns;
  op.rid = rid;
  op.is_append = rid == pt->visible_rows;
  op.row = row;
  VWISE_RETURN_IF_ERROR(pt->view->Insert(rid, std::move(row)));
  pt->ops.push_back(std::move(op));
  pt->visible_rows++;
  return Status::OK();
}

Status Transaction::Append(const std::string& table, std::vector<Value> row) {
  VWISE_ASSIGN_OR_RETURN(PerTable * pt, Touch(table));
  return Insert(table, pt->visible_rows, std::move(row));
}

Status Transaction::Delete(const std::string& table, uint64_t rid) {
  VWISE_ASSIGN_OR_RETURN(PerTable * pt, Touch(table));
  if (rid >= pt->visible_rows) {
    return Status::InvalidArgument("delete position beyond table end");
  }
  ResolvedRow resolved;
  VWISE_RETURN_IF_ERROR(pt->view->Delete(rid, &resolved));
  PdtLogOp op;
  op.kind = PdtOpKind::kDel;
  op.rid = rid;
  if (resolved.is_delta) {
    pt->touched_delta = true;
  } else {
    op.has_sid = true;
    op.sid = resolved.sid;
    pt->touched_sids.push_back(resolved.sid);
  }
  pt->ops.push_back(std::move(op));
  pt->visible_rows--;
  return Status::OK();
}

Status Transaction::Modify(const std::string& table, uint64_t rid,
                           uint32_t col, Value v) {
  VWISE_ASSIGN_OR_RETURN(PerTable * pt, Touch(table));
  if (rid >= pt->visible_rows) {
    return Status::InvalidArgument("modify position beyond table end");
  }
  ResolvedRow resolved;
  VWISE_RETURN_IF_ERROR(pt->view->Modify(rid, col, v, &resolved));
  PdtLogOp op;
  op.kind = PdtOpKind::kMod;
  op.rid = rid;
  op.col = col;
  op.value = std::move(v);
  if (resolved.is_delta) {
    pt->touched_delta = true;
  } else {
    op.has_sid = true;
    op.sid = resolved.sid;
    pt->touched_sids.push_back(resolved.sid);
  }
  pt->ops.push_back(std::move(op));
  return Status::OK();
}

Result<TableSnapshot> Transaction::GetView(const std::string& table) {
  VWISE_ASSIGN_OR_RETURN(PerTable * pt, Touch(table));
  TableSnapshot snap;
  snap.schema = mgr_->GetSchema(table);
  snap.stable = pt->stable;
  snap.deltas = pt->view;
  snap.version = pt->snapshot_version;
  return snap;
}

// ---------------------------------------------------------------------------
// TransactionManager: open / catalog
// ---------------------------------------------------------------------------

TransactionManager::~TransactionManager() = default;

std::string TransactionManager::TableFilePath(const std::string& name,
                                              uint64_t version) const {
  return dir_ + "/" + name + ".v" + std::to_string(version);
}
std::string TransactionManager::CatalogPath() const { return dir_ + "/CATALOG"; }
std::string TransactionManager::WalPath() const { return dir_ + "/wal.log"; }

Result<std::unique_ptr<TransactionManager>> TransactionManager::Open(
    const std::string& dir, const Config& config, IoDevice* device,
    BufferManager* buffers) {
  failpoint::ArmFromEnv();
  if (!config.failpoints.empty()) {
    VWISE_RETURN_IF_ERROR(failpoint::Arm(config.failpoints));
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
  }
  auto mgr = std::unique_ptr<TransactionManager>(
      new TransactionManager(dir, config, device, buffers));
  {
    MutexLock lock(&mgr->mu_);
    VWISE_RETURN_IF_ERROR(mgr->LoadCatalogLocked());
    VWISE_RETURN_IF_ERROR(mgr->CleanStaleFilesLocked());
    for (auto& [name, st] : mgr->tables_) {
      (void)name;
      VWISE_RETURN_IF_ERROR(mgr->OpenTableFileLocked(&st));
    }
    VWISE_RETURN_IF_ERROR(mgr->RecoverLocked());
    VWISE_ASSIGN_OR_RETURN(mgr->wal_, Wal::Open(mgr->WalPath(), device,
                                                config.wal_sync_on_commit));
  }
  return mgr;
}

Status TransactionManager::OpenTableFileLocked(TableState* st) {
  VWISE_ASSIGN_OR_RETURN(
      auto tf, TableFile::Open(TableFilePath(st->schema.name(), st->file_version),
                               st->schema, device_, buffers_));
  st->stable = std::shared_ptr<TableFile>(std::move(tf));
  return Status::OK();
}

Status TransactionManager::SaveCatalogLocked() {
  std::vector<uint8_t> buf;
  ser::Put<uint32_t>(&buf, kCatalogMagic);
  ser::Put<uint64_t>(&buf, wal_epoch_);
  ser::Put<uint32_t>(&buf, static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, st] : tables_) {
    ser::PutString(&buf, name);
    ser::Put<uint32_t>(&buf, static_cast<uint32_t>(st.schema.num_columns()));
    for (const auto& col : st.schema.columns()) {
      ser::PutString(&buf, col.name);
      ser::Put<uint8_t>(&buf, static_cast<uint8_t>(col.type.kind));
      ser::Put<uint8_t>(&buf, col.type.scale);
      ser::Put<uint8_t>(&buf, col.nullable ? 1 : 0);
    }
    ser::Put<uint32_t>(&buf, static_cast<uint32_t>(st.groups.groups.size()));
    for (const auto& g : st.groups.groups) {
      ser::Put<uint32_t>(&buf, static_cast<uint32_t>(g.size()));
      for (uint32_t c : g) ser::Put<uint32_t>(&buf, c);
    }
    ser::Put<uint64_t>(&buf, st.file_version);
  }
  std::string tmp = CatalogPath() + ".tmp";
  {
    VWISE_ASSIGN_OR_RETURN(auto file, IoFile::Create(tmp, device_, "catalog"));
    VWISE_RETURN_IF_ERROR(file->Append(buf.data(), buf.size()));
    VWISE_RETURN_IF_ERROR(file->Sync());
  }
  if (::rename(tmp.c_str(), CatalogPath().c_str()) != 0) {
    return Status::IOError("rename catalog: " + std::string(std::strerror(errno)));
  }
  return SyncDir(dir_);
}

Status TransactionManager::LoadCatalogLocked() {
  struct stat st;
  if (::stat(CatalogPath().c_str(), &st) != 0) return Status::OK();  // fresh db
  VWISE_ASSIGN_OR_RETURN(auto file,
                         IoFile::OpenRead(CatalogPath(), device_, "catalog"));
  std::vector<uint8_t> buf(file->size());
  VWISE_RETURN_IF_ERROR(file->Read(0, buf.size(), buf.data()));
  ser::Reader r(buf.data(), buf.size());
  uint32_t magic, n_tables;
  VWISE_RETURN_IF_ERROR(r.Get(&magic));
  if (magic != kCatalogMagic) return Status::Corruption("bad catalog magic");
  VWISE_RETURN_IF_ERROR(r.Get(&wal_epoch_));
  VWISE_RETURN_IF_ERROR(r.Get(&n_tables));
  for (uint32_t t = 0; t < n_tables; t++) {
    std::string name;
    VWISE_RETURN_IF_ERROR(r.GetString(&name));
    uint32_t n_cols;
    VWISE_RETURN_IF_ERROR(r.Get(&n_cols));
    std::vector<ColumnDef> cols;
    for (uint32_t c = 0; c < n_cols; c++) {
      std::string cname;
      uint8_t kind, scale, nullable;
      VWISE_RETURN_IF_ERROR(r.GetString(&cname));
      VWISE_RETURN_IF_ERROR(r.Get(&kind));
      VWISE_RETURN_IF_ERROR(r.Get(&scale));
      VWISE_RETURN_IF_ERROR(r.Get(&nullable));
      cols.emplace_back(cname, DataType(static_cast<LType>(kind), scale),
                        nullable != 0);
    }
    TableState ts;
    ts.schema = TableSchema(name, std::move(cols));
    uint32_t n_groups;
    VWISE_RETURN_IF_ERROR(r.Get(&n_groups));
    ts.groups.groups.resize(n_groups);
    for (uint32_t g = 0; g < n_groups; g++) {
      uint32_t sz;
      VWISE_RETURN_IF_ERROR(r.Get(&sz));
      ts.groups.groups[g].resize(sz);
      for (uint32_t i = 0; i < sz; i++) {
        VWISE_RETURN_IF_ERROR(r.Get(&ts.groups.groups[g][i]));
      }
    }
    VWISE_RETURN_IF_ERROR(r.Get(&ts.file_version));
    tables_.emplace(name, std::move(ts));
  }
  return Status::OK();
}

Status TransactionManager::RecoverLocked() {
  VWISE_ASSIGN_OR_RETURN(auto commits, Wal::ReadAll(WalPath(), device_));
  uint64_t max_txn_id = 0;
  for (const WalCommit& commit : commits) {
    max_txn_id = std::max(max_txn_id, commit.txn_id);
    // Records older than the catalog's epoch were merged into the published
    // table files by a checkpoint that crashed before resetting the log;
    // replaying them would apply those deltas twice.
    if (commit.epoch < wal_epoch_) continue;
    for (const auto& [table, ops] : commit.ops) {
      auto it = tables_.find(table);
      if (it == tables_.end()) {
        return Status::Corruption("WAL references unknown table " + table);
      }
      TableState& st = it->second;
      auto pdt = st.committed ? st.committed->Clone() : std::make_unique<Pdt>();
      for (const PdtLogOp& op : ops) {
        VWISE_RETURN_IF_ERROR(pdt->Apply(op));
      }
      st.committed = std::shared_ptr<const Pdt>(std::move(pdt));
      st.commit_version = ++next_commit_version_;
    }
  }
  next_txn_id_ = max_txn_id + 1;
  return Status::OK();
}

Status TransactionManager::CleanStaleFilesLocked() {
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return Status::IOError("opendir " + dir_ + ": " + std::strerror(errno));
  }
  std::vector<std::string> doomed;
  while (struct dirent* e = ::readdir(d)) {
    std::string fname = e->d_name;
    if (fname == "." || fname == "..") continue;
    if (fname.size() > 4 && fname.compare(fname.size() - 4, 4, ".tmp") == 0) {
      doomed.push_back(fname);  // unfinished catalog/checkpoint/load temp
      continue;
    }
    size_t dot = fname.rfind(".v");
    if (dot == std::string::npos || dot == 0) continue;
    std::string version_str = fname.substr(dot + 2);
    if (version_str.empty() ||
        version_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    uint64_t version = std::stoull(version_str);
    auto it = tables_.find(fname.substr(0, dot));
    // A version file the catalog doesn't reference is a checkpoint or bulk
    // load that crashed before (new version) or after (old version)
    // publishing the catalog.
    if (it == tables_.end() || version != it->second.file_version) {
      doomed.push_back(fname);
    }
  }
  ::closedir(d);
  for (const std::string& fname : doomed) {
    ::unlink((dir_ + "/" + fname).c_str());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DDL / load
// ---------------------------------------------------------------------------

Status TransactionManager::CreateTable(const TableSchema& schema,
                                       const ColumnGroups& groups) {
  MutexLock lock(&mu_);
  if (tables_.count(schema.name()) > 0) {
    return Status::AlreadyExists("table " + schema.name());
  }
  TableState st;
  st.schema = schema;
  st.groups = groups;
  st.file_version = 0;
  // Write an empty initial version under a temp name, then rename: a version
  // file under its final name is always complete.
  std::string path = TableFilePath(schema.name(), 0);
  std::string tmp = path + ".tmp";
  {
    TableWriter writer(schema, groups, config_, tmp, device_);
    Status s = writer.Finish();
    if (!s.ok()) {
      ::unlink(tmp.c_str());
      return s;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::IOError("rename " + tmp + ": " +
                               std::string(std::strerror(errno)));
    ::unlink(tmp.c_str());
    return s;
  }
  VWISE_RETURN_IF_ERROR(SyncDir(dir_));
  VWISE_RETURN_IF_ERROR(OpenTableFileLocked(&st));
  tables_.emplace(schema.name(), std::move(st));
  Status s = SaveCatalogLocked();
  if (!s.ok()) {
    // Roll back: the table never existed. The file is swept on reopen too.
    tables_.erase(schema.name());
    ::unlink(path.c_str());
  }
  return s;
}

Status TransactionManager::BulkLoad(
    const std::string& table, const std::function<Status(TableWriter*)>& fill) {
  MutexLock lock(&mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  TableState& st = it->second;
  if (st.stable->row_count() > 0 || (st.committed && !st.committed->empty())) {
    return Status::InvalidArgument("bulk load requires an empty table");
  }
  uint64_t old_version = st.file_version;
  uint64_t new_version = old_version + 1;
  std::string path = TableFilePath(table, new_version);
  std::string tmp = path + ".tmp";
  {
    TableWriter writer(st.schema, st.groups, config_, tmp, device_);
    Status s = fill(&writer);
    if (s.ok()) s = writer.Finish();
    if (!s.ok()) {
      ::unlink(tmp.c_str());
      return s;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::IOError("rename " + tmp + ": " +
                               std::string(std::strerror(errno)));
    ::unlink(tmp.c_str());
    return s;
  }
  VWISE_RETURN_IF_ERROR(SyncDir(dir_));
  // Publish through the catalog before touching the old version: a crash on
  // either side of the catalog rename leaves a catalog whose referenced file
  // exists (the other version is swept on reopen).
  st.file_version = new_version;
  Status s = SaveCatalogLocked();
  if (!s.ok()) {
    st.file_version = old_version;
    ::unlink(path.c_str());
    return s;
  }
  VWISE_RETURN_IF_ERROR(OpenTableFileLocked(&st));
  ::unlink(TableFilePath(table, old_version).c_str());
  return Status::OK();
}

bool TransactionManager::HasTable(const std::string& name) const {
  MutexLock lock(&mu_);
  return tables_.count(name) > 0;
}

const TableSchema* TransactionManager::GetSchema(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second.schema;
}

std::vector<std::string> TransactionManager::TableNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  for (const auto& [name, st] : tables_) {
    (void)st;
    names.push_back(name);
  }
  return names;
}

Result<TableSnapshot> TransactionManager::GetSnapshot(
    const std::string& table) const {
  MutexLock lock(&mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  const TableState& st = it->second;
  TableSnapshot snap;
  snap.schema = &st.schema;
  snap.stable = st.stable;
  snap.deltas = st.committed;
  snap.version = st.commit_version;
  return snap;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

std::unique_ptr<Transaction> TransactionManager::Begin() {
  MutexLock lock(&mu_);
  return std::unique_ptr<Transaction>(new Transaction(this, next_txn_id_++));
}

void TransactionManager::Abort(Transaction* txn) {
  txn->finished_ = true;
  MutexLock lock(&mu_);
  n_aborts_++;
}

Status TransactionManager::Commit(Transaction* txn) {
  VWISE_CHECK_MSG(!txn->finished_, "transaction already finished");
  txn->finished_ = true;
  MutexLock lock(&mu_);

  // Read-only transactions commit trivially.
  bool has_writes = false;
  for (auto& [name, pt] : txn->tables_) {
    (void)name;
    if (!pt.ops.empty()) has_writes = true;
    std::sort(pt.touched_sids.begin(), pt.touched_sids.end());
  }
  if (!has_writes) {
    n_commits_++;
    return Status::OK();
  }

  // --- Validate: first-committer-wins on overlapping stable rows. ---------
  for (auto& [name, pt] : txn->tables_) {
    if (pt.ops.empty()) continue;
    TableState& st = tables_.at(name);
    for (const CommitEntry& entry : st.commit_log) {
      if (entry.version <= pt.snapshot_version) continue;
      if (entry.touched_delta && pt.touched_delta) {
        n_aborts_++;
        return Status::TransactionConflict(
            "concurrent transactions touched delta rows of " + name);
      }
      if (SortedIntersects(entry.touched_sids, pt.touched_sids)) {
        n_aborts_++;
        return Status::TransactionConflict(
            "concurrent update of the same rows in " + name);
      }
    }
  }

  // --- Re-anchor and apply. -------------------------------------------------
  std::map<std::string, std::shared_ptr<const Pdt>> new_pdts;
  WalCommit wc;
  wc.txn_id = txn->id_;
  wc.epoch = wal_epoch_;
  for (auto& [name, pt] : txn->tables_) {
    if (pt.ops.empty()) continue;
    TableState& st = tables_.at(name);
    auto pdt = st.committed ? st.committed->Clone() : std::make_unique<Pdt>();
    uint64_t visible =
        static_cast<uint64_t>(static_cast<int64_t>(st.stable->row_count()) +
                              pdt->net_displacement());
    bool rebased = st.commit_version != pt.snapshot_version;
    std::vector<PdtLogOp>& final_ops = wc.ops[name];
    final_ops.reserve(pt.ops.size());
    for (const PdtLogOp& op : pt.ops) {
      PdtLogOp f = op;
      if (rebased) {
        if (f.has_sid) {
          // Exact: recompute the stable row's current position.
          f.rid = pdt->RidOfStableRow(f.sid);
        } else if (f.kind == PdtOpKind::kIns && f.is_append) {
          f.rid = visible;
        } else {
          // Positional heuristic for delta-row targets under concurrency;
          // validation already guaranteed row-level disjointness.
          if (f.rid > visible) f.rid = visible;
        }
      }
      VWISE_RETURN_IF_ERROR(pdt->Apply(f));
      if (f.kind == PdtOpKind::kIns) visible++;
      if (f.kind == PdtOpKind::kDel) visible--;
      final_ops.push_back(std::move(f));
    }
    new_pdts[name] = std::shared_ptr<const Pdt>(std::move(pdt));
  }

  // --- WAL first, then publish. ----------------------------------------------
  VWISE_RETURN_IF_ERROR(wal_->AppendCommit(wc));
  // Crash window: the commit is durable but not yet visible in memory.
  // Recovery must resurrect it from the WAL record alone.
  VWISE_FAILPOINT("commit.publish");
  uint64_t version = ++next_commit_version_;
  for (auto& [name, pt] : txn->tables_) {
    if (pt.ops.empty()) continue;
    TableState& st = tables_.at(name);
    st.committed = new_pdts[name];
    st.commit_version = version;
    st.commit_log.push_back(
        CommitEntry{version, std::move(pt.touched_sids), pt.touched_delta});
  }
  n_commits_++;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

Status TransactionManager::WriteMergedTableLocked(TableState* st,
                                                  const std::string& path) {
  TableWriter writer(st->schema, st->groups, config_, path, device_);

  // Stream the merge of stable + deltas into the new version, decoding the
  // stable image stripe by stripe.
  size_t n_cols = st->schema.num_columns();
  std::vector<DecodedColumn> cols(n_cols);
  size_t cur_stripe = SIZE_MAX;
  auto load_stripe_for = [&](uint64_t sid, size_t* local) -> Status {
    size_t stripe = 0;
    while (stripe + 1 < st->stable->stripe_count() &&
           st->stable->stripe_first_row(stripe + 1) <= sid) {
      stripe++;
    }
    if (stripe != cur_stripe) {
      for (size_t c = 0; c < n_cols; c++) {
        VWISE_RETURN_IF_ERROR(st->stable->ReadStripeColumn(
            stripe, static_cast<uint32_t>(c), &cols[c]));
      }
      cur_stripe = stripe;
    }
    *local = static_cast<size_t>(sid - st->stable->stripe_first_row(stripe));
    return Status::OK();
  };
  auto stable_row = [&](uint64_t sid, std::vector<Value>* row) -> Status {
    size_t local = 0;
    VWISE_RETURN_IF_ERROR(load_stripe_for(sid, &local));
    row->clear();
    for (size_t c = 0; c < n_cols; c++) row->push_back(ColumnValue(cols[c], local));
    return Status::OK();
  };

  Pdt::MergeScanner scanner(*st->committed, st->stable->row_count());
  Pdt::MergeEvent ev;
  std::vector<Value> row;
  while (scanner.Next(&ev, 4096)) {
    switch (ev.kind) {
      case Pdt::MergeEvent::kStableRun:
        for (uint64_t i = 0; i < ev.count; i++) {
          VWISE_RETURN_IF_ERROR(stable_row(ev.sid + i, &row));
          VWISE_RETURN_IF_ERROR(writer.AppendRow(row));
        }
        break;
      case Pdt::MergeEvent::kModifiedRow: {
        VWISE_RETURN_IF_ERROR(stable_row(ev.sid, &row));
        for (const auto& [col, v] : ev.rec->mods) row[col] = v;
        VWISE_RETURN_IF_ERROR(writer.AppendRow(row));
        break;
      }
      case Pdt::MergeEvent::kDeletedRow:
        break;
      case Pdt::MergeEvent::kInsertedRow:
        VWISE_RETURN_IF_ERROR(writer.AppendRow(ev.rec->row));
        break;
    }
  }
  return writer.Finish();
}

Status TransactionManager::Checkpoint() {
  MutexLock lock(&mu_);
  VWISE_FAILPOINT("ckpt.begin");

  struct Pending {
    std::string name;
    TableState* st;
    uint64_t old_version;
    uint64_t new_version;
  };
  std::vector<Pending> pending;
  for (auto& [name, st] : tables_) {
    if (st.committed && !st.committed->empty()) {
      pending.push_back(Pending{name, &st, st.file_version,
                                st.file_version + 1});
    }
  }

  // Undo for the phases before the catalog publish: nothing published yet,
  // so rollback is just deleting whatever new-version files exist (whether
  // still temps or already renamed). A *crash* skips this — reopen sweeps
  // the same files as stale.
  std::vector<bool> renamed(pending.size(), false);
  size_t written = 0;
  auto unlink_new = [&]() {
    for (size_t i = 0; i < written; i++) {
      std::string path = TableFilePath(pending[i].name, pending[i].new_version);
      ::unlink(renamed[i] ? path.c_str() : (path + ".tmp").c_str());
    }
  };

  // Phase 1: merge each table's deltas into `<name>.v<N+1>.tmp`, synced.
  for (Pending& p : pending) {
    Status s;
    if (failpoint::Armed()) s = failpoint::Check("ckpt.table");
    std::string tmp = TableFilePath(p.name, p.new_version) + ".tmp";
    if (s.ok()) {
      written++;  // the writer may leave a partial temp behind on error
      s = WriteMergedTableLocked(p.st, tmp);
    }
    if (!s.ok()) {
      unlink_new();
      return s;
    }
  }

  // Phase 2: rename temps into place and make the renames durable.
  for (size_t i = 0; i < pending.size(); i++) {
    Status s;
    if (failpoint::Armed()) s = failpoint::Check("ckpt.rename");
    std::string path = TableFilePath(pending[i].name, pending[i].new_version);
    std::string tmp = path + ".tmp";
    if (s.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
      s = Status::IOError("rename " + tmp + ": " +
                          std::string(std::strerror(errno)));
    }
    if (!s.ok()) {
      unlink_new();
      return s;
    }
    renamed[i] = true;
  }
  if (!pending.empty()) {
    Status s = SyncDir(dir_);
    if (!s.ok()) {
      unlink_new();
      return s;
    }
  }

  // Phase 3: the commit point. Bumping the epoch and saving the catalog
  // (itself tmp+rename) atomically switches recovery from "old files + full
  // WAL replay" to "new files + skip old-epoch records".
  {
    Status s;
    if (failpoint::Armed()) s = failpoint::Check("ckpt.publish");
    if (s.ok()) {
      for (Pending& p : pending) p.st->file_version = p.new_version;
      wal_epoch_++;
      s = SaveCatalogLocked();
      if (!s.ok()) {
        wal_epoch_--;
        for (Pending& p : pending) p.st->file_version = p.old_version;
      }
    }
    if (!s.ok()) {
      unlink_new();
      return s;
    }
  }

  // Phase 4: swap the new versions in and drop what they absorbed. An open
  // failure here leaves the old in-memory file + retained PDTs, which view
  // to the same contents the new file holds — still consistent.
  for (Pending& p : pending) {
    VWISE_RETURN_IF_ERROR(OpenTableFileLocked(p.st));
    p.st->committed = nullptr;
    ::unlink(TableFilePath(p.name, p.old_version).c_str());
  }
  for (auto& [name, st] : tables_) {
    (void)name;
    st.commit_log.clear();
  }

  // Phase 5: the WAL's records are all pre-publish now; empty it. A failure
  // or crash here only costs recovery the work of skipping them.
  VWISE_FAILPOINT("ckpt.reset");
  VWISE_RETURN_IF_ERROR(wal_->Reset());
  VWISE_FAILPOINT("ckpt.done");
  return Status::OK();
}

}  // namespace vwise
