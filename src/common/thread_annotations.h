#ifndef VWISE_COMMON_THREAD_ANNOTATIONS_H_
#define VWISE_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang Thread Safety Analysis for every locked subsystem.
//
// The macros below expand to Clang's thread-safety attributes when the
// compiler supports them and to nothing elsewhere (gcc, msvc), so the
// annotated tree builds everywhere while `clang -Wthread-safety
// -Wthread-safety-beta` (CMake option VWISE_THREAD_SAFETY, a required CI
// job) proves at compile time that:
//
//   * every member annotated VWISE_GUARDED_BY(mu_) is only touched with
//     mu_ held;
//   * every function annotated VWISE_REQUIRES(mu_) is only called with
//     mu_ held (the DoThingLocked() convention becomes checked, not named);
//   * every function annotated VWISE_EXCLUDES(mu_) is never called with
//     mu_ held (self-deadlock on a non-recursive mutex becomes a compile
//     error).
//
// The analysis only understands capabilities it can see, so raw std::mutex /
// std::lock_guard / std::unique_lock are forbidden outside this header
// (enforced by vwise_lint's raw-mutex pass): locked code uses the annotated
// Mutex / MutexLock / CondVar wrappers below.
//
// Conventions (DESIGN.md §8):
//   * condition waits are explicit `while (!cond) cv_.Wait(&mu_);` loops —
//     the analysis cannot see through a predicate lambda, and the loop form
//     keeps every guarded read inside the annotated critical section;
//   * VWISE_NO_THREAD_SAFETY_ANALYSIS is a last resort for code whose
//     locking is deliberately irregular; each use carries a rationale
//     comment and none exist in the tree today.

#if defined(__clang__)
#define VWISE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define VWISE_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// A type that acts as a lock (our Mutex below).
#define VWISE_CAPABILITY(x) VWISE_THREAD_ANNOTATION_(capability(x))
// An RAII type that acquires a capability in its constructor and releases it
// in its destructor (our MutexLock below).
#define VWISE_SCOPED_CAPABILITY VWISE_THREAD_ANNOTATION_(scoped_lockable)

// Data members: may only be read or written while holding `x`.
#define VWISE_GUARDED_BY(x) VWISE_THREAD_ANNOTATION_(guarded_by(x))
// Pointer members: the pointed-to data (not the pointer) is guarded by `x`.
#define VWISE_PT_GUARDED_BY(x) VWISE_THREAD_ANNOTATION_(pt_guarded_by(x))

// Functions: caller must hold the capability (the *Locked() helpers).
#define VWISE_REQUIRES(...) \
  VWISE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
// Functions: caller must NOT hold the capability (public entry points of a
// locked class — calling them re-entrantly would self-deadlock).
#define VWISE_EXCLUDES(...) VWISE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Functions that acquire/release the capability themselves (Mutex::Lock /
// Mutex::Unlock and the MutexLock constructor/destructor).
#define VWISE_ACQUIRE(...) \
  VWISE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define VWISE_RELEASE(...) \
  VWISE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define VWISE_TRY_ACQUIRE(...) \
  VWISE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Runtime assertion that the capability is held (debug hooks).
#define VWISE_ASSERT_CAPABILITY(x) \
  VWISE_THREAD_ANNOTATION_(assert_capability(x))
// Accessor returning a reference to a capability (Mutex exposure helpers).
#define VWISE_RETURN_CAPABILITY(x) VWISE_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use must carry
// a comment explaining why the locking is irregular; prefer restructuring.
#define VWISE_NO_THREAD_SAFETY_ANALYSIS \
  VWISE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace vwise {

// Annotated wrapper over std::mutex — the only mutex type used outside this
// header. Identical cost: the wrapper is two inline calls.
class VWISE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VWISE_ACQUIRE() { mu_.lock(); }
  void Unlock() VWISE_RELEASE() { mu_.unlock(); }
  bool TryLock() VWISE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock over Mutex — replaces std::lock_guard / std::unique_lock.
// Scoped: the analysis knows the capability is held from construction to the
// end of the enclosing block.
class VWISE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) VWISE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() VWISE_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable bound to the annotated Mutex. Wait() REQUIRES the mutex:
// from the analysis' point of view the capability is held across the wait
// (the internal unlock/relock is invisible, exactly like absl::CondVar), so
// `while (!cond) cv_.Wait(&mu_);` type-checks with `cond` reading guarded
// members.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) VWISE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the wrapper's Unlock (or ~MutexLock)
    // stays the one true unlocker.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Returns false on timeout (the predicate loop re-checks either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, const std::chrono::duration<Rep, Period>& dur)
      VWISE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    bool ok = cv_.wait_for(lock, dur) == std::cv_status::no_timeout;
    lock.release();
    return ok;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vwise

#endif  // VWISE_COMMON_THREAD_ANNOTATIONS_H_
