#ifndef VWISE_COMMON_BITUTIL_H_
#define VWISE_COMMON_BITUTIL_H_

#include <cstddef>
#include <cstdint>

namespace vwise::bit {

inline constexpr uint64_t RoundUp(uint64_t value, uint64_t factor) {
  return (value + factor - 1) / factor * factor;
}

inline constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) {
  return (a + b - 1) / b;
}

// Number of bits needed to represent `v` (0 -> 0 bits).
inline int BitWidth(uint64_t v) {
  return v == 0 ? 0 : 64 - __builtin_clzll(v);
}

inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

inline uint64_t NextPowerOfTwo(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << BitWidth(v - 1);
}

// Packs `n` values of `width` bits each (width in [0,64]) from `in` into
// `out`. `out` must have space for CeilDiv(n*width, 8) bytes, rounded up to
// 8-byte words. Values must fit in `width` bits.
void PackBits(const uint64_t* in, size_t n, int width, uint8_t* out);

// Reverse of PackBits.
void UnpackBits(const uint8_t* in, size_t n, int width, uint64_t* out);

// Byte size of a packed run of `n` values at `width` bits, word-aligned.
inline size_t PackedSize(size_t n, int width) {
  return RoundUp(CeilDiv(static_cast<uint64_t>(n) * width, 8), 8);
}

// ZigZag encoding maps signed deltas to unsigned so small magnitudes pack
// into few bits regardless of sign.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace vwise::bit

#endif  // VWISE_COMMON_BITUTIL_H_
