#ifndef VWISE_COMMON_RNG_H_
#define VWISE_COMMON_RNG_H_

#include <cstdint>

namespace vwise {

// SplitMix64: tiny, fast, deterministic PRNG. Used by the TPC-H generator
// (seeded per table/column/row for reproducibility) and by property tests.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t state_;
};

}  // namespace vwise

#endif  // VWISE_COMMON_RNG_H_
