#include "common/status.h"

namespace vwise {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTransactionConflict:
      return "TransactionConflict";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code());
  s += ": ";
  s += message();
  return s;
}

}  // namespace vwise
