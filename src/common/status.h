#ifndef VWISE_COMMON_STATUS_H_
#define VWISE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace vwise {

// Error category carried by Status. vwise does not use C++ exceptions; all
// fallible operations return Status (or Result<T>, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kTransactionConflict = 8,
  kResourceExhausted = 9,
  kCancelled = 10,
  kDeadlineExceeded = 11,
};

// Returns a human-readable name for `code`, e.g. "Corruption".
const char* StatusCodeToString(StatusCode code);

// A cheap, copyable success-or-error value. OK status carries no allocation.
//
// [[nodiscard]]: a discarded Status is a swallowed error (on the durability
// path, silent data loss), so every function returning one must have its
// result checked, propagated (VWISE_RETURN_IF_ERROR), or explicitly waived
// with `(void)` plus a rationale. The attribute makes the compiler enforce
// what tools/vwise_lint.py's textual pass can only approximate — including
// through templates, lambdas, and overloads.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TransactionConflict(std::string msg) {
    return Status(StatusCode::kTransactionConflict, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsConflict() const {
    return code() == StatusCode::kTransactionConflict;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

}  // namespace vwise

#endif  // VWISE_COMMON_STATUS_H_
