#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace vwise {

Json Json::Bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Int(int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::Double(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.kind_ = Kind::kStr;
  j.str_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::Set(const std::string& key, Json value) {
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Json& Json::Append(Json value) {
  items_.push_back(std::move(value));
  return *this;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void Newline(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::Render(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      *out += buf;
      return;
    }
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        *out += "null";  // JSON has no NaN/Inf
        return;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      *out += buf;
      return;
    }
    case Kind::kStr:
      out->push_back('"');
      *out += JsonEscape(str_);
      out->push_back('"');
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); i++) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        items_[i].Render(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); i++) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        out->push_back('"');
        *out += JsonEscape(members_[i].first);
        *out += indent > 0 ? "\": " : "\":";
        members_[i].second.Render(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::ToString(int indent) const {
  std::string out;
  Render(&out, indent, 0);
  return out;
}

}  // namespace vwise
