#ifndef VWISE_COMMON_DATE_H_
#define VWISE_COMMON_DATE_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace vwise::date {

// Civil-date <-> day-number conversions (proleptic Gregorian, days since
// 1970-01-01). Algorithms from Howard Hinnant's date library notes.

// Days since epoch for y-m-d.
inline int32_t FromYMD(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<int>(doe) - 719468;
}

struct YMD {
  int year;
  int month;
  int day;
};

inline YMD ToYMD(int32_t days) {
  int32_t z = days + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                        // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                             // [1, 12]
  return YMD{y + (m <= 2), static_cast<int>(m), static_cast<int>(d)};
}

// Parses "YYYY-MM-DD"; no validation beyond shape (internal use with
// literals and generated data).
inline int32_t Parse(const char* s) {
  int y = (s[0] - '0') * 1000 + (s[1] - '0') * 100 + (s[2] - '0') * 10 + (s[3] - '0');
  int m = (s[5] - '0') * 10 + (s[6] - '0');
  int d = (s[8] - '0') * 10 + (s[9] - '0');
  return FromYMD(y, m, d);
}

inline int ExtractYear(int32_t days) { return ToYMD(days).year; }
inline int ExtractMonth(int32_t days) { return ToYMD(days).month; }

// "YYYY-MM-DD".
inline std::string ToString(int32_t days) {
  YMD ymd = ToYMD(days);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ymd.year, ymd.month, ymd.day);
  return std::string(buf);
}

// date + n months (clamping the day), for TPC-H interval arithmetic.
inline int32_t AddMonths(int32_t days, int months) {
  YMD ymd = ToYMD(days);
  int m0 = ymd.year * 12 + (ymd.month - 1) + months;
  int y = m0 / 12;
  int m = m0 % 12 + 1;
  static const int kDim[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  int dim = kDim[m - 1];
  if (m == 2 && ((y % 4 == 0 && y % 100 != 0) || y % 400 == 0)) dim = 29;
  int d = ymd.day < dim ? ymd.day : dim;
  return FromYMD(y, m, d);
}

inline int32_t AddYears(int32_t days, int years) { return AddMonths(days, years * 12); }

}  // namespace vwise::date

#endif  // VWISE_COMMON_DATE_H_
