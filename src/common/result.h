#ifndef VWISE_COMMON_RESULT_H_
#define VWISE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace vwise {

// A value of type T or an error Status. Mirrors absl::StatusOr / arrow::Result.
// [[nodiscard]] for the same reason as Status: discarding one swallows the
// error (and throws away the value the callee computed).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from value and from Status keeps call sites terse:
  //   Result<int> F() { if (bad) return Status::IOError("..."); return 42; }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    VWISE_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    VWISE_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    VWISE_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    VWISE_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace vwise

#endif  // VWISE_COMMON_RESULT_H_
