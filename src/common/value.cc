#include "common/value.h"

#include <cstdio>
#include <cstring>

namespace vwise {

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", d_);
      return buf;
    }
    case Kind::kString:
      return s_;
  }
  return "?";
}

namespace {

int KindRank(Value::Kind k) { return static_cast<int>(k); }

// Sign-adjusted bit pattern: orders all doubles (incl. -0.0, NaN) totally,
// consistent with numeric order where one exists.
uint64_t DoubleOrderKey(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return (bits & (uint64_t{1} << 63)) != 0 ? ~bits
                                           : bits | (uint64_t{1} << 63);
}

}  // namespace

int Compare(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) {
    return KindRank(a.kind()) < KindRank(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case Value::Kind::kNull:
      return 0;
    case Value::Kind::kInt:
      return a.AsInt() < b.AsInt() ? -1 : a.AsInt() > b.AsInt() ? 1 : 0;
    case Value::Kind::kDouble: {
      const uint64_t x = DoubleOrderKey(a.AsDouble());
      const uint64_t y = DoubleOrderKey(b.AsDouble());
      return x < y ? -1 : x > y ? 1 : 0;
    }
    case Value::Kind::kString:
      return a.AsString().compare(b.AsString());
  }
  return 0;
}

}  // namespace vwise
