#include "common/value.h"

#include <cstdio>

namespace vwise {

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt:
      return std::to_string(i_);
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", d_);
      return buf;
    }
    case Kind::kString:
      return s_;
  }
  return "?";
}

}  // namespace vwise
