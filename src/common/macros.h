#ifndef VWISE_COMMON_MACROS_H_
#define VWISE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Branch-prediction hints for hot loops.
#define VWISE_LIKELY(x) __builtin_expect(!!(x), 1)
#define VWISE_UNLIKELY(x) __builtin_expect(!!(x), 0)

// Marks a function as part of the per-vector hot path. Two effects:
//   * the compiler places it in the .text.hot section and optimizes it more
//     aggressively (__attribute__((hot)));
//   * tools/vwise_hotpath.py treats it as an analysis root: the function and
//     its entire static call closure must stay free of heap allocation, lock
//     acquisition, I/O, and success-path Status formatting (DESIGN.md §9).
// Primitive kernels and Operator::Next are roots implicitly; use this for
// additional helpers that must hold the same contract.
#define VWISE_HOT __attribute__((hot))

// Always-on invariant check. Used for cheap checks guarding memory safety;
// failures indicate a bug in vwise itself, never bad user input (user input
// errors are reported through Status).
#define VWISE_CHECK(cond)                                                     \
  do {                                                                        \
    if (VWISE_UNLIKELY(!(cond))) {                                            \
      ::std::fprintf(stderr, "vwise: CHECK failed at %s:%d: %s\n", __FILE__,  \
                     __LINE__, #cond);                                        \
      ::std::abort();                                                         \
    }                                                                         \
  } while (0)

#define VWISE_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (VWISE_UNLIKELY(!(cond))) {                                            \
      ::std::fprintf(stderr, "vwise: CHECK failed at %s:%d: %s (%s)\n",       \
                     __FILE__, __LINE__, #cond, msg);                         \
      ::std::abort();                                                         \
    }                                                                         \
  } while (0)

// Debug-only check, compiled out in NDEBUG builds; used on per-value hot
// paths where an always-on check would be measurable.
#ifdef NDEBUG
#define VWISE_DCHECK(cond) ((void)0)
#else
#define VWISE_DCHECK(cond) VWISE_CHECK(cond)
#endif

// Propagate a non-OK Status from an expression returning Status.
#define VWISE_RETURN_IF_ERROR(expr)                    \
  do {                                                 \
    ::vwise::Status _st = (expr);                      \
    if (VWISE_UNLIKELY(!_st.ok())) return _st;         \
  } while (0)

// Assign the value of a Result<T> expression to `lhs`, or propagate its
// error. `lhs` may include a declaration, e.g.
//   VWISE_ASSIGN_OR_RETURN(auto block, ReadBlock(id));
#define VWISE_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                \
  if (VWISE_UNLIKELY(!var.ok())) return var.status(); \
  lhs = std::move(var).value();

#define VWISE_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define VWISE_ASSIGN_OR_RETURN_NAME(a, b) VWISE_ASSIGN_OR_RETURN_CONCAT(a, b)
#define VWISE_ASSIGN_OR_RETURN(lhs, expr) \
  VWISE_ASSIGN_OR_RETURN_IMPL(            \
      VWISE_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

#endif  // VWISE_COMMON_MACROS_H_
