#include "common/bitutil.h"

#include <cstring>

#include "common/macros.h"

namespace vwise::bit {

void PackBits(const uint64_t* in, size_t n, int width, uint8_t* out) {
  VWISE_CHECK(width >= 0 && width <= 64);
  if (width == 0) return;
  std::memset(out, 0, PackedSize(n, width));
  size_t bitpos = 0;
  for (size_t i = 0; i < n; i++) {
    uint64_t v = in[i];
    VWISE_DCHECK(width == 64 || (v >> width) == 0);
    size_t word = bitpos >> 6;
    int offset = static_cast<int>(bitpos & 63);
    // memcpy word accesses: `out` is a byte buffer with no alignment
    // guarantee (codec frames place packed runs at arbitrary offsets).
    uint64_t w;
    std::memcpy(&w, out + word * 8, 8);
    w |= v << offset;
    std::memcpy(out + word * 8, &w, 8);
    if (offset + width > 64) {
      std::memcpy(&w, out + (word + 1) * 8, 8);
      w |= v >> (64 - offset);
      std::memcpy(out + (word + 1) * 8, &w, 8);
    }
    bitpos += width;
  }
}

void UnpackBits(const uint8_t* in, size_t n, int width, uint64_t* out) {
  VWISE_CHECK(width >= 0 && width <= 64);
  if (width == 0) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  const uint64_t mask = width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  size_t bitpos = 0;
  for (size_t i = 0; i < n; i++) {
    size_t word = bitpos >> 6;
    int offset = static_cast<int>(bitpos & 63);
    // Unaligned word loads keep this branch-light; the buffer is always
    // word-padded by PackedSize.
    uint64_t lo;
    std::memcpy(&lo, in + word * 8, 8);
    uint64_t v = lo >> offset;
    if (offset + width > 64) {
      uint64_t hi;
      std::memcpy(&hi, in + (word + 1) * 8, 8);
      v |= hi << (64 - offset);
    }
    out[i] = v & mask;
    bitpos += width;
  }
}

}  // namespace vwise::bit
