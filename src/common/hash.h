#ifndef VWISE_COMMON_HASH_H_
#define VWISE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace vwise {

// 64-bit finalizer from MurmurHash3; good avalanche for integer keys.
inline uint64_t HashInt(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  // boost::hash_combine recipe widened to 64 bits.
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

// FNV-1a over bytes; fine for short analytic strings (flags, names).
inline uint64_t HashBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; i++) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace vwise

#endif  // VWISE_COMMON_HASH_H_
