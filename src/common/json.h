#ifndef VWISE_COMMON_JSON_H_
#define VWISE_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vwise {

// Minimal JSON document builder/serializer for the machine-readable benchmark
// reports (BENCH_*.json). Write-oriented: the benches build a tree and call
// ToString(); there is deliberately no parser (tools/check_bench_json.py
// validates the emitted files with a real one). Object keys keep insertion
// order so reports diff cleanly across runs.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kStr, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Int(int64_t v);
  static Json Double(double v);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }

  // Object access. Set replaces an existing key in place (order preserved).
  Json& Set(const std::string& key, Json value);
  // Returns the value for `key`, or nullptr (object-kind only).
  const Json* Find(const std::string& key) const;

  // Array access.
  Json& Append(Json value);
  size_t size() const { return items_.size(); }
  const Json& at(size_t i) const { return items_[i]; }

  // Serialization. indent > 0 pretty-prints with that many spaces per level;
  // indent == 0 emits a compact single line. Non-finite doubles serialize as
  // null (JSON has no NaN/Inf).
  std::string ToString(int indent = 2) const;

 private:
  void Render(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                                // array
  std::vector<std::pair<std::string, Json>> members_;      // object
};

// Escapes `s` for inclusion in a JSON string literal (without quotes).
std::string JsonEscape(const std::string& s);

}  // namespace vwise

#endif  // VWISE_COMMON_JSON_H_
