#ifndef VWISE_COMMON_SERIALIZE_H_
#define VWISE_COMMON_SERIALIZE_H_

#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace vwise::ser {

// Little helpers for the small binary formats vwise persists (WAL records,
// catalog, manifests). All little-endian, host-order (single-node system).

inline void PutBytes(std::vector<uint8_t>* out, const void* p, size_t n) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + n);
}

template <typename T>
void Put(std::vector<uint8_t>* out, T v) {
  PutBytes(out, &v, sizeof(T));
}

inline void PutString(std::vector<uint8_t>* out, const std::string& s) {
  Put<uint32_t>(out, static_cast<uint32_t>(s.size()));
  PutBytes(out, s.data(), s.size());
}

inline void PutValue(std::vector<uint8_t>* out, const Value& v) {
  Put<uint8_t>(out, static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kInt:
      Put<int64_t>(out, v.AsInt());
      break;
    case Value::Kind::kDouble:
      Put<double>(out, v.AsDouble());
      break;
    case Value::Kind::kString:
      PutString(out, v.AsString());
      break;
  }
}

class Reader {
 public:
  Reader(const uint8_t* p, size_t n) : p_(p), end_(p + n) {}

  template <typename T>
  Status Get(T* out) {
    if (p_ + sizeof(T) > end_) return Status::Corruption("record truncated");
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint32_t n;
    VWISE_RETURN_IF_ERROR(Get(&n));
    if (p_ + n > end_) return Status::Corruption("string truncated");
    out->assign(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return Status::OK();
  }

  Status GetValue(Value* out) {
    uint8_t kind;
    VWISE_RETURN_IF_ERROR(Get(&kind));
    switch (static_cast<Value::Kind>(kind)) {
      case Value::Kind::kNull:
        *out = Value::Null();
        return Status::OK();
      case Value::Kind::kInt: {
        int64_t v;
        VWISE_RETURN_IF_ERROR(Get(&v));
        *out = Value::Int(v);
        return Status::OK();
      }
      case Value::Kind::kDouble: {
        double v;
        VWISE_RETURN_IF_ERROR(Get(&v));
        *out = Value::Double(v);
        return Status::OK();
      }
      case Value::Kind::kString: {
        std::string s;
        VWISE_RETURN_IF_ERROR(GetString(&s));
        *out = Value::String(std::move(s));
        return Status::OK();
      }
    }
    return Status::Corruption("bad value kind");
  }

  bool AtEnd() const { return p_ == end_; }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

}  // namespace vwise::ser

#endif  // VWISE_COMMON_SERIALIZE_H_
