#ifndef VWISE_COMMON_CONFIG_H_
#define VWISE_COMMON_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace vwise {

namespace detail {
// Default for Config::check_contracts: the VWISE_CHECK_CONTRACTS environment
// variable lets a test runner (ctest sets it for every test) turn contract
// checking on for all Configs constructed in the process, without each test
// opting in.
inline bool EnvCheckContracts() {
  static const bool enabled = [] {
    const char* v = std::getenv("VWISE_CHECK_CONTRACTS");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

// Default for Config::verify_plans, same contract as EnvCheckContracts:
// ctest sets VWISE_VERIFY_PLANS for every test so all plans built in the
// process pass through the static plan verifier.
inline bool EnvVerifyPlans() {
  static const bool enabled = [] {
    const char* v = std::getenv("VWISE_VERIFY_PLANS");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

// Default for Config::profile, same contract: VWISE_PROFILE turns on the
// per-operator profiling wrapper and the per-primitive cycle counters for
// every Config constructed in the process.
inline bool EnvProfile() {
  static const bool enabled = [] {
    const char* v = std::getenv("VWISE_PROFILE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

// Default for Config::enable_encoded_exec. Unlike the debug knobs above this
// one defaults ON; VWISE_ENCODED_EXEC=0 forces the pre-PR-9 eager-decode
// behavior (the differential oracle runs every plan both ways).
inline bool EnvEncodedExec() {
  static const bool enabled = [] {
    const char* v = std::getenv("VWISE_ENCODED_EXEC");
    if (v == nullptr || v[0] == '\0') return true;
    return v[0] != '0';
  }();
  return enabled;
}

// Default for Config::total_memory_budget_bytes: VWISE_TOTAL_MEMORY_BUDGET
// sizes the process-wide governor budget every query's reservations draw
// from. Accepts plain bytes or a k/m/g suffix ("256m"). Empty/0 = unlimited
// (the governor admits everything, preserving pre-governor behavior).
inline size_t EnvTotalMemoryBudget() {
  static const size_t bytes = [] {
    const char* v = std::getenv("VWISE_TOTAL_MEMORY_BUDGET");
    if (v == nullptr || v[0] == '\0') return size_t{0};
    char* end = nullptr;
    unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v) return size_t{0};
    switch (*end) {
      case 'k': case 'K': n <<= 10; break;
      case 'm': case 'M': n <<= 20; break;
      case 'g': case 'G': n <<= 30; break;
      default: break;
    }
    return static_cast<size_t>(n);
  }();
  return bytes;
}
}  // namespace detail

class WorkerPool;  // service/worker_pool.h

// Engine-wide tuning knobs. A Config is plumbed from the Database facade down
// to storage and execution; benches override individual fields to run the
// paper's ablations (vector size, buffer pool size, scan policy, ...).
struct Config {
  // --- Execution -----------------------------------------------------------
  // Values per vector. 1 degenerates to tuple-at-a-time; very large values
  // approximate full materialization (the MonetDB regime). Paper default ~1K.
  size_t vector_size = 1024;
  // Worker threads for Xchg-parallelized plans (1 = no parallelism). This is
  // per-plan fan-out (how many fragments the rewriter creates), not thread
  // count: fragments run on the shared worker pool below.
  int num_threads = 1;
  // Bound on chunks buffered per Xchg queue.
  size_t xchg_queue_capacity = 8;
  // Threads in the process-wide shared worker pool that runs plan fragments
  // (see service/worker_pool.h). 0 = hardware default. Read once when the
  // Database (or the global fallback pool) is created.
  int pool_threads = 0;
  // The pool Xchg fragments are submitted to. Database::Open points this at
  // its service's pool; nullptr (embedded/unit-test use) falls back to
  // WorkerPool::Global().
  WorkerPool* worker_pool = nullptr;
  // Queries admitted to run concurrently per Database; queries beyond this
  // wait in the admission queue (see service/query_service.h).
  int max_concurrent_queries = 4;
  // Per-query budget for the memory the pipeline breakers materialize (hash
  // join build side, aggregation groups, sort runs, exchange queues).
  // Exceeding it makes the breakers spill to disk (see enable_spill); only
  // when spilling is disabled or cannot make progress does the query fail
  // with Status::ResourceExhausted rather than OOMing the process.
  // 0 = unlimited.
  size_t query_memory_budget_bytes = 0;
  // Process-wide memory budget owned by the MemoryGovernor
  // (service/memory_governor.h): the single pool every query's Reserve ledger
  // draws from. Admission gates each query's declared budget against it;
  // queries that do not fit queue (with backoff) instead of failing, and
  // running breakers see a pressure signal asking them to spill proactively.
  // 0 = unlimited (admission always grants, reservations are unbounded
  // globally — per-query budgets still apply).
  size_t total_memory_budget_bytes = detail::EnvTotalMemoryBudget();
  // Admission retry budget: a query that cannot be admitted is re-queued with
  // jittered exponential backoff at most this many times before the service
  // sheds it (ResourceExhausted with a retry-after hint). Deadlines shed
  // sooner.
  int admission_retry_limit = 64;
  // Base/backoff cap for admission retries, microseconds. The n-th retry
  // waits ~base * 2^n (jittered, capped) before the runner reconsiders the
  // query, giving running queries time to finish or pressure-spill.
  uint64_t admission_backoff_base_us = 200;
  uint64_t admission_backoff_max_us = 50000;
  // Pressure-spill floor: a breaker polled under governor pressure spills
  // proactively only once it holds at least this many reserved bytes, so
  // tiny operators don't thrash the spill path to free negligible memory.
  size_t pressure_spill_min_bytes = 256 << 10;
  // Graceful degradation under the memory budget: when a Reserve would
  // overshoot, hash join and hash aggregation switch to radix-partitioned
  // spilling and sort becomes an external sort (runs + k-way merge) instead
  // of failing the query. Off = the pre-spill behavior (hard
  // ResourceExhausted), which the budget-exhaustion tests rely on.
  bool enable_spill = true;
  // Radix partitions (fan-out) for spilled hash join/aggregation. Rounded to
  // a power of two in [2, 256]; each spilled partition must individually fit
  // in the budget when it is reloaded.
  size_t spill_partitions = 8;
  // Recursive repartitioning bound: a spilled partition that alone exceeds
  // the budget when reloaded is re-partitioned on a fresh radix level (the
  // next hash byte) up to this many levels deep before the query fails.
  // Each level consumes 8 independent hash bits, so values beyond 6 add no
  // discrimination power.
  size_t spill_max_repartition_depth = 4;
  // Base directory for spill temp files. Resolution order: this field, then
  // $VWISE_SPILL_DIR, then "<db dir>/spill" for queries running through a
  // Database (stale per-query dirs in it are swept at Open — crash
  // recovery), then the system temp dir for embedded contexts. Each query
  // gets its own subdirectory, removed when the query's context is
  // destroyed.
  std::string spill_dir;
  // Interpose a CheckedOperator between every parent/child operator pair,
  // validating the X100 chunk invariants (see vector/chunk.h) after every
  // Next(). Debug tooling: on in all tests, off in benchmarks.
  bool check_contracts = detail::EnvCheckContracts();
  // Run the static plan verifier (src/planner/plan_verifier.h) over every
  // plan produced by PlanBuilder::Build() and by the rewriter rules:
  // bottom-up expression type inference against declared operator output
  // types, plus plan-property (nullability/ordering/partitioning) checks.
  // Debug tooling: on in all tests, off in benchmarks.
  bool verify_plans = detail::EnvVerifyPlans();
  // Interpose a ProfiledOperator between every parent/child operator pair
  // (wall time, Next() calls, rows/vectors produced per operator) and record
  // per-primitive call/tuple/cycle counters in the expression dispatch path.
  // Results surface through QueryResult::profile (EXPLAIN ANALYZE text) and
  // planner::CollectPlanProfile. Off by default: profiled plans produce
  // bit-identical results, but the wrappers cost a timer call per Next().
  bool profile = detail::EnvProfile();

  // --- Storage --------------------------------------------------------------
  // Rows per storage stripe (the cooperative-scan "chunk" granularity).
  size_t stripe_rows = 16384;
  // Buffer-pool capacity in bytes.
  size_t buffer_pool_bytes = 256ull << 20;
  // Enable per-column-chunk automatic compression (PFOR family).
  bool enable_compression = true;
  // Use min-max sparse indexes to skip stripes during scans.
  bool enable_minmax_skipping = true;
  // Compressed execution (DESIGN.md §12): the scan adopts PDICT/RLE segments
  // in their storage encoding and publishes encoded vectors; primitives with
  // a matching capability (catalog caps column) run directly on codes/runs,
  // everything else decodes on demand at the Normalize() boundary. Only
  // applies to stripes without pending deltas; VWISE_ENCODED_EXEC=0 turns it
  // off process-wide.
  bool enable_encoded_exec = detail::EnvEncodedExec();

  // --- Simulated I/O device -------------------------------------------------
  // When >0, block reads sleep to model a device with this bandwidth, making
  // bandwidth-sharing effects (Cooperative Scans) observable even when the
  // OS page cache is warm. 0 disables the simulation.
  uint64_t sim_io_bandwidth_bytes_per_sec = 0;
  // Fixed per-request latency of the simulated device, microseconds.
  uint64_t sim_io_seek_us = 0;

  // --- Transactions ---------------------------------------------------------
  // fsync the WAL on commit (off by default: benches measure engine cost, not
  // device sync latency; crash tests enable it).
  bool wal_sync_on_commit = false;
  // Consolidate committed PDT layers once this many stack on a table.
  size_t pdt_consolidate_threshold = 8;

  // --- Fault injection ------------------------------------------------------
  // Failpoint spec armed when the database opens (see common/failpoint.h for
  // the grammar, e.g. "wal.append=torn:17;table.read=err:EIO,nth:3"). Arming
  // is process-wide and additive; the VWISE_FAILPOINTS environment variable
  // is also honored (parsed once per process). Empty = nothing armed; with
  // no failpoints armed the entire injection cost is one relaxed atomic load
  // per I/O operation.
  std::string failpoints;
};

}  // namespace vwise

#endif  // VWISE_COMMON_CONFIG_H_
