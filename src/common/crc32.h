#ifndef VWISE_COMMON_CRC32_H_
#define VWISE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace vwise {

// CRC-32 (ISO-HDLC polynomial, same as zlib). Used to detect torn or
// corrupted WAL records and storage footers.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace vwise

#endif  // VWISE_COMMON_CRC32_H_
