#ifndef VWISE_COMMON_FAILPOINT_H_
#define VWISE_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace vwise {

// Thrown by a failpoint armed in `crash` mode. The torture harness catches
// it at the workload boundary and abandons the Database object without
// running destructors — the process-crash simulation the recovery tests are
// built on. Nothing inside src/ ever catches it: a crash site is a point of
// no return for the storage state, exactly like SIGKILL.
class SimulatedCrash {
 public:
  explicit SimulatedCrash(std::string site) : site_(std::move(site)) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

// Deterministic fault injection for the storage/txn/service stack.
//
// A *failpoint* is a named evaluation site (e.g. "wal.append",
// "table.read", "ckpt.publish") compiled into the I/O and
// commit/checkpoint paths. Disarmed — the only state production code ever
// sees — a site costs one relaxed atomic load. Armed, the site consults the
// registry and acts out the configured failure.
//
// Spec grammar (VWISE_FAILPOINTS / Config::failpoints / Arm()):
//
//   spec  := arm (';' arm)*
//   arm   := site '=' mode (',' opt)*
//   mode  := 'err' [':' code]        fail with a Status (default EIO)
//          | 'torn' ':' bytes       write only `bytes`, then fail (torn write)
//          | 'short' ':' bytes      cap each syscall transfer (no error; the
//                                   partial-transfer loops must finish the op)
//          | 'crash'                throw SimulatedCrash (process death)
//          | 'corrupt' [':' offset]  flip one bit of the read buffer
//          | 'delay' ':' micros     sleep (reorder/timing windows)
//   code  := 'EIO' | 'CORRUPTION' | 'INTERNAL' | 'RESOURCE_EXHAUSTED'
//   opt   := 'nth' ':' k            first fire at the k-th evaluation (1-based)
//          | 'count' ':' n          fire at most n times, then lie dormant
//
// Examples:
//   wal.append=torn:17                      tear the 1st WAL append after 17B
//   table.read=err:EIO,nth:3                3rd table-file read returns EIO
//   ckpt.publish=crash                      die between rename and catalog
//   bufmgr.load=err:EIO,count:1             exactly one chunk load fails
namespace failpoint {

namespace detail {
// Number of armed failpoints in the process. The inline fast path reads it
// relaxed: arming happens-before the test's next operation through the test
// harness's own synchronization, never through this counter.
extern std::atomic<int> g_armed;
}  // namespace detail

// True if any failpoint is armed. This is the entire disarmed-path cost.
inline bool Armed() {
  return VWISE_UNLIKELY(detail::g_armed.load(std::memory_order_relaxed) > 0);
}

// What an armed site should do. Default-constructed = proceed normally.
struct Action {
  Status status;                      // non-OK: fail the operation with this
  uint64_t torn_bytes = 0;            // valid when `torn`
  bool torn = false;                  // transfer torn_bytes, then fail
  uint64_t short_bytes = 0;           // >0: cap each syscall transfer
  bool corrupt = false;               // flip a bit of the read buffer
  uint64_t corrupt_at = UINT64_MAX;   // byte to flip (clamped; max = middle)
};

// Arms every failpoint in `spec` (replacing same-named ones and resetting
// their hit counters). Empty spec is a no-op. Parse errors return
// InvalidArgument and arm nothing.
Status Arm(const std::string& spec);

// Parses VWISE_FAILPOINTS once per process (first call wins); later calls
// are no-ops. Bad env specs abort: a torture run with a misspelled spec
// silently testing nothing is worse than no run.
void ArmFromEnv();

void Disarm(const std::string& site);
void DisarmAll();

// Evaluations of `site` so far (armed sites only; 0 if never armed).
uint64_t Hits(const std::string& site);
std::vector<std::string> ArmedSites();

// Full evaluation of `site`. Call only behind Armed(). Counts the hit,
// applies nth/count, sleeps for `delay`, throws SimulatedCrash for `crash`,
// and returns the Action the I/O site must act out.
Action Evaluate(const std::string& site);

// Status-only evaluation for non-I/O sites (commit/checkpoint sequencing):
// `err` returns the status, `crash` throws, `delay` sleeps; transfer-shaping
// modes (torn/short/corrupt) are meaningless here and report InvalidArgument
// so a misarmed spec fails loudly instead of silently not injecting.
Status Check(const std::string& site);

}  // namespace failpoint

// Sequencing failpoint for Status-returning functions. Zero-cost unless a
// failpoint is armed in the process.
#define VWISE_FAILPOINT(site)                                  \
  do {                                                         \
    if (::vwise::failpoint::Armed()) {                         \
      VWISE_RETURN_IF_ERROR(::vwise::failpoint::Check(site));  \
    }                                                          \
  } while (0)

}  // namespace vwise

#endif  // VWISE_COMMON_FAILPOINT_H_
