#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/thread_annotations.h"

namespace vwise {
namespace failpoint {

namespace detail {
std::atomic<int> g_armed{0};
}  // namespace detail

namespace {

enum class Mode { kErr, kTorn, kShort, kCrash, kCorrupt, kDelay };

struct Point {
  Mode mode = Mode::kErr;
  StatusCode code = StatusCode::kIOError;
  uint64_t arg = 0;        // torn/short: bytes; delay: micros; corrupt: offset
  bool has_arg = false;
  uint64_t nth = 1;        // first evaluation that fires (1-based)
  uint64_t count = UINT64_MAX;  // evaluations that fire before going dormant
  uint64_t hits = 0;
  uint64_t fired = 0;
};

struct Registry {
  Mutex mu;
  std::map<std::string, Point> points VWISE_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

Status MakeStatus(StatusCode code, const std::string& site) {
  std::string msg = "injected failure at failpoint " + site;
  switch (code) {
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    default:
      return Status::IOError(std::move(msg));
  }
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

// Parses one `site=mode[:arg][,opt...]` clause into (site, point).
Status ParseArm(const std::string& clause, std::string* site, Point* point) {
  size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("failpoint clause '" + clause +
                                   "' is not site=mode[...]");
  }
  *site = clause.substr(0, eq);
  std::string rest = clause.substr(eq + 1);

  // Split on ',' — first token is the mode, the rest are options.
  std::vector<std::string> tokens;
  size_t pos = 0;
  while (pos <= rest.size()) {
    size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    tokens.push_back(rest.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (tokens.empty() || tokens[0].empty()) {
    return Status::InvalidArgument("failpoint '" + *site + "' has no mode");
  }

  auto split_colon = [](const std::string& tok, std::string* key,
                        std::string* val) {
    size_t colon = tok.find(':');
    *key = tok.substr(0, colon == std::string::npos ? tok.size() : colon);
    *val = colon == std::string::npos ? "" : tok.substr(colon + 1);
  };

  std::string mode, arg;
  split_colon(tokens[0], &mode, &arg);
  if (mode == "err") {
    point->mode = Mode::kErr;
    if (arg.empty() || arg == "EIO") {
      point->code = StatusCode::kIOError;
    } else if (arg == "CORRUPTION") {
      point->code = StatusCode::kCorruption;
    } else if (arg == "INTERNAL") {
      point->code = StatusCode::kInternal;
    } else if (arg == "RESOURCE_EXHAUSTED") {
      point->code = StatusCode::kResourceExhausted;
    } else {
      return Status::InvalidArgument("failpoint '" + *site +
                                     "': unknown error code '" + arg + "'");
    }
  } else if (mode == "torn" || mode == "short" || mode == "delay") {
    point->mode = mode == "torn" ? Mode::kTorn
                 : mode == "short" ? Mode::kShort
                                   : Mode::kDelay;
    if (!ParseU64(arg, &point->arg)) {
      return Status::InvalidArgument("failpoint '" + *site + "': mode '" +
                                     mode + "' needs a numeric argument");
    }
    point->has_arg = true;
    if (point->mode == Mode::kShort && point->arg == 0) {
      return Status::InvalidArgument("failpoint '" + *site +
                                     "': short:0 would never make progress");
    }
  } else if (mode == "crash") {
    point->mode = Mode::kCrash;
  } else if (mode == "corrupt") {
    point->mode = Mode::kCorrupt;
    if (!arg.empty()) {
      if (!ParseU64(arg, &point->arg)) {
        return Status::InvalidArgument("failpoint '" + *site +
                                       "': bad corrupt offset '" + arg + "'");
      }
      point->has_arg = true;
    }
  } else {
    return Status::InvalidArgument("failpoint '" + *site +
                                   "': unknown mode '" + mode + "'");
  }

  for (size_t i = 1; i < tokens.size(); i++) {
    std::string key, val;
    split_colon(tokens[i], &key, &val);
    uint64_t v = 0;
    if (!ParseU64(val, &v)) {
      return Status::InvalidArgument("failpoint '" + *site + "': option '" +
                                     tokens[i] + "' needs a numeric value");
    }
    if (key == "nth") {
      if (v == 0) {
        return Status::InvalidArgument("failpoint '" + *site +
                                       "': nth is 1-based");
      }
      point->nth = v;
    } else if (key == "count") {
      point->count = v;
    } else {
      return Status::InvalidArgument("failpoint '" + *site +
                                     "': unknown option '" + key + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Status Arm(const std::string& spec) {
  if (spec.empty()) return Status::OK();
  // Parse everything first so a bad spec arms nothing.
  std::vector<std::pair<std::string, Point>> parsed;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    std::string clause = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (clause.empty()) continue;
    std::string site;
    Point point;
    VWISE_RETURN_IF_ERROR(ParseArm(clause, &site, &point));
    parsed.emplace_back(std::move(site), point);
  }
  Registry& r = registry();
  MutexLock lock(&r.mu);
  for (auto& [site, point] : parsed) {
    auto [it, inserted] = r.points.insert_or_assign(site, point);
    (void)it;
    if (inserted) detail::g_armed.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void ArmFromEnv() {
  static const bool once = [] {
    const char* spec = std::getenv("VWISE_FAILPOINTS");
    if (spec != nullptr && spec[0] != '\0') {
      Status s = Arm(spec);
      if (!s.ok()) {
        std::fprintf(stderr, "vwise: bad VWISE_FAILPOINTS: %s\n",
                     s.ToString().c_str());
        std::abort();
      }
    }
    return true;
  }();
  (void)once;
}

void Disarm(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(&r.mu);
  if (r.points.erase(site) > 0) {
    detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& r = registry();
  MutexLock lock(&r.mu);
  detail::g_armed.fetch_sub(static_cast<int>(r.points.size()),
                            std::memory_order_relaxed);
  r.points.clear();
}

uint64_t Hits(const std::string& site) {
  Registry& r = registry();
  MutexLock lock(&r.mu);
  auto it = r.points.find(site);
  return it == r.points.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedSites() {
  Registry& r = registry();
  MutexLock lock(&r.mu);
  std::vector<std::string> sites;
  for (const auto& [site, point] : r.points) {
    (void)point;
    sites.push_back(site);
  }
  return sites;
}

Action Evaluate(const std::string& site) {
  Point snapshot;
  bool fire = false;
  {
    Registry& r = registry();
    MutexLock lock(&r.mu);
    auto it = r.points.find(site);
    if (it == r.points.end()) return Action();
    Point& p = it->second;
    p.hits++;
    fire = p.hits >= p.nth && p.fired < p.count;
    if (fire) p.fired++;
    snapshot = p;
  }
  if (!fire) return Action();

  Action act;
  switch (snapshot.mode) {
    case Mode::kErr:
      act.status = MakeStatus(snapshot.code, site);
      break;
    case Mode::kTorn:
      act.torn = true;
      act.torn_bytes = snapshot.arg;
      act.status = MakeStatus(StatusCode::kIOError, site + " (torn write)");
      break;
    case Mode::kShort:
      act.short_bytes = snapshot.arg;
      break;
    case Mode::kCrash:
      throw SimulatedCrash(site);
    case Mode::kCorrupt:
      act.corrupt = true;
      if (snapshot.has_arg) act.corrupt_at = snapshot.arg;
      break;
    case Mode::kDelay:
      std::this_thread::sleep_for(std::chrono::microseconds(snapshot.arg));
      break;
  }
  return act;
}

Status Check(const std::string& site) {
  Action act = Evaluate(site);
  if (act.torn || act.short_bytes > 0 || act.corrupt) {
    return Status::InvalidArgument(
        "failpoint " + site +
        " armed with a transfer-shaping mode (torn/short/corrupt) at a "
        "sequencing-only site");
  }
  return act.status;
}

}  // namespace failpoint
}  // namespace vwise
