#ifndef VWISE_COMMON_BUFFER_H_
#define VWISE_COMMON_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace vwise {

// A cache-line-aligned, fixed-capacity byte buffer. Vectors, storage blocks
// and hash-table payloads all live in Buffers; alignment keeps vectorized
// kernels free of unaligned-access penalties.
class Buffer {
 public:
  static constexpr size_t kAlignment = 64;

  // Allocates an uninitialized buffer of `capacity` bytes (zero allowed).
  static std::shared_ptr<Buffer> Allocate(size_t capacity);
  // Allocates and zero-fills.
  static std::shared_ptr<Buffer> AllocateZeroed(size_t capacity);

  ~Buffer();

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t capacity() const { return capacity_; }

  template <typename T>
  T* As() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* As() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  Buffer(uint8_t* data, size_t capacity) : data_(data), capacity_(capacity) {}

  uint8_t* data_;
  size_t capacity_;
};

}  // namespace vwise

#endif  // VWISE_COMMON_BUFFER_H_
