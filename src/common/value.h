#ifndef VWISE_COMMON_VALUE_H_
#define VWISE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/macros.h"
#include "vector/types.h"

namespace vwise {

// Boundary value type used at the API surface (query results, test oracles,
// literal constants). Never used on the hot execution path.
class Value {
 public:
  enum class Kind : uint8_t { kNull, kInt, kDouble, kString };

  Value() : kind_(Kind::kNull) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value r;
    r.kind_ = Kind::kInt;
    r.i_ = v;
    return r;
  }
  static Value Double(double v) {
    Value r;
    r.kind_ = Kind::kDouble;
    r.d_ = v;
    return r;
  }
  static Value String(std::string v) {
    Value r;
    r.kind_ = Kind::kString;
    r.s_ = std::move(v);
    return r;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  int64_t AsInt() const {
    VWISE_CHECK(kind_ == Kind::kInt);
    return i_;
  }
  double AsDouble() const {
    VWISE_CHECK(kind_ == Kind::kDouble || kind_ == Kind::kInt);
    return kind_ == Kind::kDouble ? d_ : static_cast<double>(i_);
  }
  const std::string& AsString() const {
    VWISE_CHECK(kind_ == Kind::kString);
    return s_;
  }

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case Kind::kNull:
        return true;
      case Kind::kInt:
        return a.i_ == b.i_;
      case Kind::kDouble:
        return a.d_ == b.d_;
      case Kind::kString:
        return a.s_ == b.s_;
    }
    return false;
  }

 private:
  Kind kind_;
  int64_t i_ = 0;
  double d_ = 0;
  std::string s_;
};

// Total order over values: kind rank first (null < int < double < string),
// then the value itself; doubles tie-break on the sign-adjusted bit pattern
// so -0.0 and NaN order deterministically. Used by the baseline engines and
// the differential oracle for canonical row ordering — never on the hot
// execution path.
int Compare(const Value& a, const Value& b);

}  // namespace vwise

#endif  // VWISE_COMMON_VALUE_H_
