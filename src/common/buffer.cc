#include "common/buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>

#include "common/macros.h"

namespace vwise {

std::shared_ptr<Buffer> Buffer::Allocate(size_t capacity) {
  // Round up so aligned_alloc's size requirement (multiple of alignment)
  // is always met, and so zero-capacity buffers still get a valid pointer.
  size_t alloc_size = ((capacity + kAlignment - 1) / kAlignment) * kAlignment;
  if (alloc_size == 0) alloc_size = kAlignment;
  void* p = std::aligned_alloc(kAlignment, alloc_size);
  VWISE_CHECK_MSG(p != nullptr, "out of memory");
  return std::shared_ptr<Buffer>(
      new Buffer(static_cast<uint8_t*>(p), capacity));
}

std::shared_ptr<Buffer> Buffer::AllocateZeroed(size_t capacity) {
  auto buf = Allocate(capacity);
  std::memset(buf->data(), 0, capacity);
  return buf;
}

Buffer::~Buffer() { std::free(data_); }

}  // namespace vwise
