#include "pdt/pdt.h"

#include <algorithm>

#include "common/macros.h"

namespace vwise {

// ---------------------------------------------------------------------------
// Fenwick tree over per-leaf displacement sums
// ---------------------------------------------------------------------------

void Pdt::RebuildFenwick() {
  size_t n = leaves_.size();
  fenwick_.assign(n + 1, 0);
  for (size_t i = 0; i < n; i++) {
    size_t j = i + 1;
    fenwick_[j] += leaves_[i].disp;
    size_t parent = j + (j & (~j + 1));
    if (parent <= n) fenwick_[parent] += fenwick_[j];
  }
}

int64_t Pdt::FenwickPrefix(size_t leaf_count) const {
  int64_t sum = 0;
  for (size_t i = leaf_count; i > 0; i -= i & (~i + 1)) sum += fenwick_[i];
  return sum;
}

void Pdt::FenwickAdd(size_t leaf, int64_t delta) {
  for (size_t i = leaf + 1; i < fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

// ---------------------------------------------------------------------------
// Record location primitives
// ---------------------------------------------------------------------------

const PdtRecord* Pdt::RecordAt(const Location& loc) const {
  if (loc.leaf >= leaves_.size()) return nullptr;
  const Leaf& leaf = leaves_[loc.leaf];
  if (loc.idx >= leaf.records.size()) {
    // Normalized end-of-leaf: the record is the head of the next leaf.
    if (loc.leaf + 1 >= leaves_.size()) return nullptr;
    return &leaves_[loc.leaf + 1].records[0];
  }
  return &leaf.records[loc.idx];
}

bool Pdt::NextRecord(Location* loc) const {
  const PdtRecord* rec = RecordAt(*loc);
  if (rec == nullptr) return false;
  loc->disp += rec->displacement();
  // Normalize first if idx points past this leaf.
  if (loc->idx >= leaves_[loc->leaf].records.size()) {
    loc->leaf++;
    loc->idx = 0;
  }
  loc->idx++;
  if (loc->idx >= leaves_[loc->leaf].records.size() &&
      loc->leaf + 1 < leaves_.size()) {
    loc->leaf++;
    loc->idx = 0;
  }
  return true;
}

Pdt::Location Pdt::FindByRid(uint64_t rid, Bound bound) const {
  if (leaves_.empty()) return Location{0, 0, 0};
  auto pred = [&](int64_t r) {
    return bound == Bound::kLower ? r >= static_cast<int64_t>(rid)
                                  : r > static_cast<int64_t>(rid);
  };
  // Binary search for the first leaf whose head record satisfies pred.
  size_t lo = 0, hi = leaves_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    int64_t r0 = static_cast<int64_t>(leaves_[mid].records[0].sid) +
                 FenwickPrefix(mid);
    if (pred(r0)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // Records satisfying pred start inside leaf lo-1 (after its head) or at
  // the head of leaf lo.
  size_t scan_leaf = lo == 0 ? 0 : lo - 1;
  Location loc{scan_leaf, 0, FenwickPrefix(scan_leaf)};
  const Leaf& leaf = leaves_[scan_leaf];
  for (size_t i = 0; i < leaf.records.size(); i++) {
    int64_t r = static_cast<int64_t>(leaf.records[i].sid) + loc.disp;
    if (pred(r)) {
      loc.idx = i;
      return loc;
    }
    loc.disp += leaf.records[i].displacement();
  }
  // Everything in scan_leaf precedes: answer is the head of leaf `lo` (or
  // the end).
  if (lo >= leaves_.size()) {
    return Location{leaves_.size(), 0, loc.disp};
  }
  return Location{lo, 0, loc.disp};
}

// ---------------------------------------------------------------------------
// Structural mutation
// ---------------------------------------------------------------------------

void Pdt::InsertRecordAt(const Location& loc, PdtRecord rec) {
  int d = rec.displacement();
  if (leaves_.empty()) {
    leaves_.emplace_back();
    leaves_[0].records.push_back(std::move(rec));
    leaves_[0].disp = d;
    record_count_ = 1;
    total_disp_ = d;
    RebuildFenwick();
    return;
  }
  size_t l = loc.leaf;
  size_t idx = loc.idx;
  if (l >= leaves_.size()) {  // end: append to the last leaf
    l = leaves_.size() - 1;
    idx = leaves_[l].records.size();
  } else if (idx >= leaves_[l].records.size() && l + 1 < leaves_.size()) {
    // Normalized end-of-leaf boundary: appending to leaf l is equivalent.
    idx = leaves_[l].records.size();
  }
  Leaf& leaf = leaves_[l];
  leaf.records.insert(leaf.records.begin() + idx, std::move(rec));
  leaf.disp += d;
  record_count_++;
  total_disp_ += d;
  if (leaf.records.size() > kLeafCap) {
    // Split in half; Fenwick indices shift, so rebuild.
    Leaf right;
    size_t half = leaf.records.size() / 2;
    right.records.assign(std::make_move_iterator(leaf.records.begin() + half),
                         std::make_move_iterator(leaf.records.end()));
    leaf.records.resize(half);
    leaf.disp = 0;
    for (const auto& r : leaf.records) leaf.disp += r.displacement();
    right.disp = 0;
    for (const auto& r : right.records) right.disp += r.displacement();
    leaves_.insert(leaves_.begin() + l + 1, std::move(right));
    RebuildFenwick();
  } else {
    FenwickAdd(l, d);
  }
}

void Pdt::RemoveRecordAt(const Location& loc) {
  size_t l = loc.leaf;
  size_t idx = loc.idx;
  VWISE_CHECK(l < leaves_.size());
  if (idx >= leaves_[l].records.size()) {
    VWISE_CHECK(l + 1 < leaves_.size());
    l++;
    idx = 0;
  }
  Leaf& leaf = leaves_[l];
  int d = leaf.records[idx].displacement();
  leaf.records.erase(leaf.records.begin() + idx);
  leaf.disp -= d;
  record_count_--;
  total_disp_ -= d;
  if (leaf.records.empty()) {
    leaves_.erase(leaves_.begin() + l);
    RebuildFenwick();
  } else {
    FenwickAdd(l, -d);
  }
}

void Pdt::UpdateDisp(size_t leaf, int64_t delta) {
  leaves_[leaf].disp += delta;
  total_disp_ += delta;
  FenwickAdd(leaf, delta);
}

// ---------------------------------------------------------------------------
// Public operations (RID space)
// ---------------------------------------------------------------------------

Status Pdt::Insert(uint64_t rid, std::vector<Value> row,
                   ResolvedRow* resolved) {
  Location loc = FindByRid(rid, Bound::kLower);
  PdtRecord rec;
  rec.kind = PdtOpKind::kIns;
  rec.sid = rid - loc.disp;
  rec.row = std::move(row);
  InsertRecordAt(loc, std::move(rec));
  if (resolved != nullptr) *resolved = ResolvedRow{true, 0};
  return Status::OK();
}

Status Pdt::Delete(uint64_t rid, ResolvedRow* resolved) {
  Location cur = FindByRid(rid, Bound::kLower);
  while (true) {
    const PdtRecord* rec = RecordAt(cur);
    if (rec == nullptr ||
        static_cast<int64_t>(rec->sid) + cur.disp != static_cast<int64_t>(rid)) {
      break;
    }
    if (rec->kind == PdtOpKind::kIns) {
      // Deleting a row this PDT inserted: drop the insert record.
      if (resolved != nullptr) *resolved = ResolvedRow{true, 0};
      RemoveRecordAt(cur);
      return Status::OK();
    }
    if (rec->kind == PdtOpKind::kMod) {
      // The modified stable row is the visible target: MOD becomes DEL.
      uint64_t sid = rec->sid;
      size_t l = cur.leaf;
      size_t idx = cur.idx;
      if (idx >= leaves_[l].records.size()) {
        l++;
        idx = 0;
      }
      PdtRecord& mut = leaves_[l].records[idx];
      mut.kind = PdtOpKind::kDel;
      mut.mods.clear();
      UpdateDisp(l, -1);
      if (resolved != nullptr) *resolved = ResolvedRow{false, sid};
      return Status::OK();
    }
    // kDel: that stable row is already invisible; keep scanning.
    if (!NextRecord(&cur)) break;
  }
  // Target is an untouched stable row.
  PdtRecord rec;
  rec.kind = PdtOpKind::kDel;
  rec.sid = rid - cur.disp;
  uint64_t sid = rec.sid;
  InsertRecordAt(cur, std::move(rec));
  if (resolved != nullptr) *resolved = ResolvedRow{false, sid};
  return Status::OK();
}

Status Pdt::Modify(uint64_t rid, uint32_t col, Value value,
                   ResolvedRow* resolved) {
  Location cur = FindByRid(rid, Bound::kLower);
  while (true) {
    const PdtRecord* rec = RecordAt(cur);
    if (rec == nullptr ||
        static_cast<int64_t>(rec->sid) + cur.disp != static_cast<int64_t>(rid)) {
      break;
    }
    size_t l = cur.leaf;
    size_t idx = cur.idx;
    if (idx >= leaves_[l].records.size()) {
      l++;
      idx = 0;
    }
    if (rec->kind == PdtOpKind::kIns) {
      PdtRecord& mut = leaves_[l].records[idx];
      if (col >= mut.row.size()) {
        return Status::InvalidArgument("modify column out of range");
      }
      mut.row[col] = std::move(value);
      if (resolved != nullptr) *resolved = ResolvedRow{true, 0};
      return Status::OK();
    }
    if (rec->kind == PdtOpKind::kMod) {
      PdtRecord& mut = leaves_[l].records[idx];
      mut.mods[col] = std::move(value);
      if (resolved != nullptr) *resolved = ResolvedRow{false, mut.sid};
      return Status::OK();
    }
    if (!NextRecord(&cur)) break;
  }
  PdtRecord rec;
  rec.kind = PdtOpKind::kMod;
  rec.sid = rid - cur.disp;
  rec.mods[col] = std::move(value);
  uint64_t sid = rec.sid;
  InsertRecordAt(cur, std::move(rec));
  if (resolved != nullptr) *resolved = ResolvedRow{false, sid};
  return Status::OK();
}

Status Pdt::Apply(const PdtLogOp& op, ResolvedRow* resolved) {
  switch (op.kind) {
    case PdtOpKind::kIns:
      return Insert(op.rid, op.row, resolved);
    case PdtOpKind::kDel:
      return Delete(op.rid, resolved);
    case PdtOpKind::kMod:
      return Modify(op.rid, op.col, op.value, resolved);
  }
  return Status::InvalidArgument("unknown PDT op");
}

ResolvedRow Pdt::Resolve(uint64_t rid) const {
  Location cur = FindByRid(rid, Bound::kLower);
  while (true) {
    const PdtRecord* rec = RecordAt(cur);
    if (rec == nullptr ||
        static_cast<int64_t>(rec->sid) + cur.disp != static_cast<int64_t>(rid)) {
      break;
    }
    if (rec->kind == PdtOpKind::kIns) return ResolvedRow{true, 0};
    if (rec->kind == PdtOpKind::kMod) return ResolvedRow{false, rec->sid};
    if (!NextRecord(&cur)) break;
  }
  return ResolvedRow{false, rid - cur.disp};
}

int64_t Pdt::DisplacementThrough(uint64_t rid) const {
  return FindByRid(rid, Bound::kUpper).disp;
}

uint64_t Pdt::RidOfStableRow(uint64_t sid) const {
  if (leaves_.empty()) return sid;
  // Records are sid-ordered; sum displacement of every record with
  // record.sid <= sid (inserts before the row, deletes of earlier rows).
  size_t lo = 0, hi = leaves_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (leaves_[mid].records[0].sid > sid) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // All leaves before `lo` start at sid' <= sid; records with sid' > sid can
  // only begin inside leaf lo-1.
  if (lo == 0) return sid;
  size_t scan_leaf = lo - 1;
  int64_t disp = FenwickPrefix(scan_leaf);
  for (const PdtRecord& rec : leaves_[scan_leaf].records) {
    if (rec.sid > sid) break;
    disp += rec.displacement();
  }
  return sid + static_cast<uint64_t>(disp);
}

std::unique_ptr<Pdt> Pdt::Clone() const {
  auto copy = std::make_unique<Pdt>();
  copy->leaves_.reserve(leaves_.size());
  for (const auto& leaf : leaves_) {
    Leaf l;
    l.records = leaf.records;
    l.disp = leaf.disp;
    copy->leaves_.push_back(std::move(l));
  }
  copy->fenwick_ = fenwick_;
  copy->record_count_ = record_count_;
  copy->total_disp_ = total_disp_;
  return copy;
}

size_t Pdt::ApproxBytes() const {
  return record_count_ * (sizeof(PdtRecord) + 48) +
         leaves_.size() * sizeof(Leaf) + fenwick_.size() * 8;
}

// ---------------------------------------------------------------------------
// MergeScanner
// ---------------------------------------------------------------------------

Pdt::MergeScanner::MergeScanner(const Pdt& pdt, uint64_t stable_rows,
                                uint64_t start_sid, uint64_t end_sid,
                                bool include_end_inserts)
    : pdt_(pdt),
      stable_rows_(std::min(stable_rows, end_sid)),
      end_sid_(end_sid),
      include_end_inserts_(include_end_inserts),
      next_sid_(start_sid) {
  // Position at the first record anchored at sid >= start_sid.
  while (leaf_ < pdt_.leaves_.size()) {
    const auto& records = pdt_.leaves_[leaf_].records;
    if (!records.empty() && records.back().sid >= start_sid) {
      while (idx_ < records.size() && records[idx_].sid < start_sid) idx_++;
      break;
    }
    leaf_++;
  }
}

bool Pdt::MergeScanner::Next(MergeEvent* ev, uint64_t max_run) {
  // Skip exhausted leaves.
  while (leaf_ < pdt_.leaves_.size() &&
         idx_ >= pdt_.leaves_[leaf_].records.size()) {
    leaf_++;
    idx_ = 0;
  }
  const PdtRecord* rec = leaf_ < pdt_.leaves_.size()
                             ? &pdt_.leaves_[leaf_].records[idx_]
                             : nullptr;
  if (rec != nullptr) {
    // Range end: records anchored past end_sid belong to later partitions,
    // as do inserts anchored exactly at end_sid unless we own the tail.
    bool past_end =
        rec->sid > end_sid_ ||
        (rec->sid == end_sid_ && !(include_end_inserts_ && rec->kind == PdtOpKind::kIns));
    if (past_end) rec = nullptr;
  }
  if (rec != nullptr && rec->sid <= next_sid_) {
    VWISE_DCHECK(rec->sid == next_sid_);
    idx_++;
    switch (rec->kind) {
      case PdtOpKind::kIns:
        ev->kind = MergeEvent::kInsertedRow;
        ev->sid = next_sid_;
        ev->rec = rec;
        return true;
      case PdtOpKind::kDel:
        ev->kind = MergeEvent::kDeletedRow;
        ev->sid = next_sid_;
        ev->rec = rec;
        next_sid_++;
        return true;
      case PdtOpKind::kMod:
        ev->kind = MergeEvent::kModifiedRow;
        ev->sid = next_sid_;
        ev->rec = rec;
        next_sid_++;
        return true;
    }
  }
  // No delta at next_sid_: emit a clean stable run up to the next delta.
  uint64_t run_end = rec != nullptr ? std::min<uint64_t>(rec->sid, stable_rows_)
                                    : stable_rows_;
  if (next_sid_ >= run_end) return false;  // merge complete
  uint64_t run = std::min(run_end - next_sid_, max_run);
  ev->kind = MergeEvent::kStableRun;
  ev->sid = next_sid_;
  ev->count = run;
  ev->rec = nullptr;
  next_sid_ += run;
  return true;
}

}  // namespace vwise
