#ifndef VWISE_PDT_PDT_H_
#define VWISE_PDT_PDT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace vwise {

// A Positional Delta Tree (Héman et al., SIGMOD 2010; paper Sec. I-B):
// differential updates against an immutable, positionally-addressed table
// image. Deltas are annotated by *position*, not key, so scans merge them in
// without reading key columns.
//
// Spaces:
//  * SID — position in the stable input image (the table version on disk,
//    or the output of a lower PDT layer).
//  * RID — position in this PDT's visible output.
//
// All mutating operations take RIDs (positions in the *current* visible
// image); the structure resolves them to SID-anchored delta records.
//
// Internally: records ordered by (sid, application order) in leaf blocks,
// with a Fenwick tree over per-leaf displacement sums so RID <-> record
// location queries are O(log n + leaf).

// The kind of one delta record.
enum class PdtOpKind : uint8_t { kIns = 0, kDel = 1, kMod = 2 };

struct PdtRecord {
  PdtOpKind kind;
  uint64_t sid;                     // anchor position in the input image
  std::vector<Value> row;           // kIns: full row values
  std::map<uint32_t, Value> mods;   // kMod: column -> new value

  int displacement() const {
    return kind == PdtOpKind::kIns ? 1 : kind == PdtOpKind::kDel ? -1 : 0;
  }
};

// One operation as issued by a transaction, in visible-row (RID) space.
// Serialized to the WAL; replayed for commit application and recovery.
// The resolution metadata lets a commit re-anchor the operation exactly when
// concurrent (non-conflicting) transactions committed in between:
//  * kDel/kMod carry the stable row (table-image SID) they touched, so the
//    replay recomputes the row's current position;
//  * kIns records whether it appended at the table end (the dominant insert
//    pattern, e.g. TPC-H RF1), replayed as an append.
struct PdtLogOp {
  PdtOpKind kind;
  uint64_t rid = 0;
  uint32_t col = 0;           // kMod
  Value value;                // kMod
  std::vector<Value> row;     // kIns
  bool is_append = false;     // kIns: rid was the visible row count
  bool has_sid = false;       // kDel/kMod: touched a stable row
  uint64_t sid = 0;           // table-image position of that row
};

// What a mutating operation touched: either a stable input row (sid valid)
// or a delta row created by this same PDT (is_delta). Used for optimistic
// conflict validation.
struct ResolvedRow {
  bool is_delta = false;
  uint64_t sid = 0;
};

class Pdt {
 public:
  Pdt() = default;
  Pdt(const Pdt&) = delete;
  Pdt& operator=(const Pdt&) = delete;

  std::unique_ptr<Pdt> Clone() const;

  uint64_t record_count() const { return record_count_; }
  // Output rows minus input rows (inserts minus deletes).
  int64_t net_displacement() const { return total_disp_; }
  bool empty() const { return record_count_ == 0; }
  // Approximate heap footprint (bench E8 reports it).
  size_t ApproxBytes() const;

  // Inserts `row` so it becomes visible at position `rid` (0 <= rid <=
  // current visible count; caller validates the upper bound).
  Status Insert(uint64_t rid, std::vector<Value> row,
                ResolvedRow* resolved = nullptr);
  // Deletes the visible row at `rid`.
  Status Delete(uint64_t rid, ResolvedRow* resolved = nullptr);
  // Sets column `col` of the visible row at `rid`.
  Status Modify(uint64_t rid, uint32_t col, Value value,
                ResolvedRow* resolved = nullptr);
  // Applies a logged operation (commit replay, WAL recovery).
  Status Apply(const PdtLogOp& op, ResolvedRow* resolved = nullptr);

  // Resolves the visible row at `rid` without mutating.
  ResolvedRow Resolve(uint64_t rid) const;

  // Net displacement contributed by records whose application position is
  // <= rid; used to rebase a concurrent transaction's positions across this
  // delta (optimistic concurrency, paper Sec. I-B).
  int64_t DisplacementThrough(uint64_t rid) const;

  // Visible position (RID) of stable input row `sid`. Undefined if that row
  // is deleted by this PDT (callers guarantee it is not: conflict validation
  // rejects concurrent deletes of the same stable row).
  uint64_t RidOfStableRow(uint64_t sid) const;

  // --- merge-scan ----------------------------------------------------------

  // Events yielded in visible-row order; the vectorized scan consumes them
  // to merge deltas into the stable stream.
  struct MergeEvent {
    enum Kind {
      kStableRun,   // `count` untouched stable rows starting at `sid`
      kModifiedRow, // stable row `sid` with `rec->mods` applied
      kDeletedRow,  // stable row `sid` skipped
      kInsertedRow, // `rec->row` emitted (not from the stable image)
    };
    Kind kind;
    uint64_t sid = 0;
    uint64_t count = 0;
    const PdtRecord* rec = nullptr;
  };

  class MergeScanner {
   public:
    // Scans the merge of `stable_rows` input rows with `pdt`'s deltas. The
    // PDT must not be mutated during the scan.
    MergeScanner(const Pdt& pdt, uint64_t stable_rows)
        : MergeScanner(pdt, stable_rows, 0, stable_rows, true) {}

    // Range variant for partitioned scans: covers stable rows
    // [start_sid, end_sid) and the deltas anchored there. Inserts anchored
    // exactly at end_sid belong to the *next* partition unless
    // `include_end_inserts` (set on the final partition, where trailing
    // appends anchor at end_sid == stable_rows).
    MergeScanner(const Pdt& pdt, uint64_t stable_rows, uint64_t start_sid,
                 uint64_t end_sid, bool include_end_inserts);

    // Next event; stable runs are capped at `max_run`. Returns false at end.
    bool Next(MergeEvent* ev, uint64_t max_run);

   private:
    const Pdt& pdt_;
    uint64_t stable_rows_;
    uint64_t end_sid_;
    bool include_end_inserts_;
    uint64_t next_sid_ = 0;
    size_t leaf_ = 0;
    size_t idx_ = 0;
  };

 private:
  friend class MergeScanner;

  static constexpr size_t kLeafCap = 128;

  struct Leaf {
    std::vector<PdtRecord> records;
    int64_t disp = 0;  // sum of displacements in this leaf
  };

  struct Location {
    size_t leaf;
    size_t idx;       // may equal leaf size (== begin of next leaf)
    int64_t disp;     // displacement of all records strictly before
  };

  // First record whose application position r = sid + disp(before) is
  // >= rid (kLower) or > rid (kUpper).
  enum class Bound { kLower, kUpper };
  Location FindByRid(uint64_t rid, Bound bound) const;

  // Advances loc to the next record (possibly crossing leaves) accounting
  // displacement. Returns false at end.
  bool NextRecord(Location* loc) const;
  const PdtRecord* RecordAt(const Location& loc) const;

  void InsertRecordAt(const Location& loc, PdtRecord rec);
  void RemoveRecordAt(const Location& loc);
  // Record's displacement changed by `delta` (MOD -> DEL conversion).
  void UpdateDisp(size_t leaf, int64_t delta);

  void RebuildFenwick();
  int64_t FenwickPrefix(size_t leaf_count) const;  // sum of first N leaves
  void FenwickAdd(size_t leaf, int64_t delta);

  std::vector<Leaf> leaves_;
  std::vector<int64_t> fenwick_;
  uint64_t record_count_ = 0;
  int64_t total_disp_ = 0;
};

}  // namespace vwise

#endif  // VWISE_PDT_PDT_H_
