#ifndef VWISE_EXEC_OPERATOR_H_
#define VWISE_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "common/status.h"
#include "vector/chunk.h"

namespace vwise {

class QueryContext;  // service/query_context.h

// A physical vectorized operator (X100 execution model). Pull-based:
// Next() fills the caller's chunk; an empty chunk (ActiveCount() == 0)
// signals end of stream.
//
// Data contract: the vectors written by Next() remain valid only until the
// next call to Next() (or Close()) on the same operator — they may alias
// storage buffers or the operator's scratch. Operators that buffer input
// across calls (join build, aggregation, sort, exchange) must deep-copy,
// including string bytes.
//
// Every pipeline runs under a QueryContext (cancellation token, deadline,
// memory budget — see service/query_context.h), bound by the non-virtual
// Open(ctx) before the subclass hook OpenImpl() runs. Operators poll
// ctx()->Check() once per vector in the long-running paths (scans, exchange
// producers/consumer, the CollectRows drive loop), so a cancel or deadline
// unwinds the whole tree, including fragments on shared pool threads, within
// one vector boundary.
class Operator {
 public:
  virtual ~Operator() = default;

  // Physical column types this operator emits.
  virtual const std::vector<TypeId>& OutputTypes() const = 0;

  // Recursively prepares the pipeline under `ctx`; must be called once
  // before Next(), and `ctx` must outlive the pipeline. nullptr binds the
  // process background context (never cancelled, unlimited budget), which
  // keeps embedded callers and unit tests on today's behavior.
  Status Open(QueryContext* ctx);
  Status Open() { return Open(nullptr); }

  virtual Status Next(DataChunk* out) = 0;
  virtual void Close() = 0;

 protected:
  // The bound per-query context; non-null after Open(). Subclasses open
  // their children with child->Open(ctx()).
  QueryContext* ctx() const { return ctx_; }

  // Subclass hook, runs with ctx() already bound.
  virtual Status OpenImpl() = 0;

 private:
  QueryContext* ctx_ = nullptr;
};

using OperatorPtr = std::unique_ptr<Operator>;

// Deep copy `src`'s active rows densely into `dst` (which must have been
// Init'ed with matching types and capacity >= src.ActiveCount()). String
// bytes are copied into dst's own heaps so dst owns everything it points to.
void DeepCopyChunk(const DataChunk& src, DataChunk* dst);

// Approximate owned-copy footprint of the active rows of `chunk`
// (fixed-width payload plus actual string bytes). The buffering operators
// (join build, sort, exchange) reserve this against the query's memory
// budget as they consume input.
size_t EstimateChunkBytes(const DataChunk& chunk);

// Materialized query output (API boundary / tests).
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<DataType> column_types;
  std::vector<std::vector<Value>> rows;
  // EXPLAIN ANALYZE text (per-operator runtime annotations plus the
  // per-primitive counter section). Filled by Database::Run when
  // Config::profile is set; empty otherwise.
  std::string profile;
  // Memory-budget telemetry of the execution (filled by the query service's
  // RunPlan; zero for embedded CollectRows callers). peak_reserved_bytes is
  // the high-water mark of budget reservations; the spill counters are
  // nonzero iff any pipeline breaker degraded to disk.
  size_t peak_reserved_bytes = 0;
  uint64_t spill_bytes_written = 0;
  uint64_t spill_bytes_read = 0;

  std::string ToString(size_t max_rows = 25) const;
};

// Runs a pipeline to completion under `ctx`, materializing every row. The
// drive loop polls ctx->Check() per chunk, so emit phases of pipeline
// breakers (sort/agg output) also honor cancellation and deadlines.
Result<QueryResult> CollectRows(Operator* root, QueryContext* ctx,
                                size_t vector_size,
                                std::vector<std::string> names = {},
                                std::vector<DataType> types = {});
// Background-context convenience (embedded callers, tests).
Result<QueryResult> CollectRows(Operator* root, size_t vector_size,
                                std::vector<std::string> names = {},
                                std::vector<DataType> types = {});

}  // namespace vwise

#endif  // VWISE_EXEC_OPERATOR_H_
