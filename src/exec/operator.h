#ifndef VWISE_EXEC_OPERATOR_H_
#define VWISE_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "common/status.h"
#include "vector/chunk.h"

namespace vwise {

// A physical vectorized operator (X100 execution model). Pull-based:
// Next() fills the caller's chunk; an empty chunk (ActiveCount() == 0)
// signals end of stream.
//
// Data contract: the vectors written by Next() remain valid only until the
// next call to Next() (or Close()) on the same operator — they may alias
// storage buffers or the operator's scratch. Operators that buffer input
// across calls (join build, aggregation, sort, exchange) must deep-copy,
// including string bytes.
class Operator {
 public:
  virtual ~Operator() = default;

  // Physical column types this operator emits.
  virtual const std::vector<TypeId>& OutputTypes() const = 0;

  // Recursively prepares the pipeline. Must be called once before Next().
  virtual Status Open() = 0;
  virtual Status Next(DataChunk* out) = 0;
  virtual void Close() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

// Shared per-query execution settings.
struct ExecContext {
  Config config;
};

// Deep copy `src`'s active rows densely into `dst` (which must have been
// Init'ed with matching types and capacity >= src.ActiveCount()). String
// bytes are copied into dst's own heaps so dst owns everything it points to.
void DeepCopyChunk(const DataChunk& src, DataChunk* dst);

// Materialized query output (API boundary / tests).
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<DataType> column_types;
  std::vector<std::vector<Value>> rows;
  // EXPLAIN ANALYZE text (per-operator runtime annotations plus the
  // per-primitive counter section). Filled by Database::Run when
  // Config::profile is set; empty otherwise.
  std::string profile;

  std::string ToString(size_t max_rows = 25) const;
};

// Runs a pipeline to completion, materializing every row.
Result<QueryResult> CollectRows(Operator* root, size_t vector_size,
                                std::vector<std::string> names = {},
                                std::vector<DataType> types = {});

}  // namespace vwise

#endif  // VWISE_EXEC_OPERATOR_H_
