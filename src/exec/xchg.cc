#include "exec/xchg.h"

#include "exec/profile.h"
#include "service/query_context.h"
#include "service/worker_pool.h"

namespace vwise {

XchgOperator::XchgOperator(FragmentFactory factory, int num_workers,
                           std::vector<TypeId> types, const Config& config)
    : factory_(std::move(factory)),
      num_workers_(num_workers),
      types_(std::move(types)),
      config_(config) {}

XchgOperator::~XchgOperator() { Close(); }

Status XchgOperator::OpenImpl() {
  pool_ = config_.worker_pool != nullptr ? config_.worker_pool
                                         : WorkerPool::Global();
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = false;
    first_error_ = Status::OK();
    producers_running_ = num_workers_;
  }
  // One pool task per fragment, tagged with this operator so Close() can
  // help-run not-yet-scheduled fragments inline.
  for (int w = 0; w < num_workers_; w++) {
    pool_->Submit(this, [this, w] { ProducerLoop(w); });
  }
  return Status::OK();
}

void XchgOperator::PushChunk(DataChunk chunk) {
  size_t bytes = EstimateChunkBytes(chunk);
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] {
    return queue_.size() < config_.xchg_queue_capacity || cancelled_;
  });
  if (cancelled_) return;
  Status reserve = ctx()->Reserve(bytes, "exchange queue");
  if (!reserve.ok()) {
    // Budget overshoot fails the query: record it and cancel the siblings.
    if (first_error_.ok()) first_error_ = reserve;
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
    return;
  }
  queue_.push_back(QueuedChunk{std::move(chunk), bytes});
  not_empty_.notify_one();
}

void XchgOperator::ProducerLoop(int worker) {
  auto finish = [this](const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && first_error_.ok()) first_error_ = status;
    producers_running_--;
    not_empty_.notify_all();
    if (producers_running_ == 0) producers_done_.notify_all();
  };

  // Cancelled before the pool scheduled us (or Close() is help-running the
  // task to drain it): just retire.
  if (cancelled_.load(std::memory_order_relaxed)) {
    finish(Status::OK());
    return;
  }
  auto fragment = factory_(worker, num_workers_);
  if (!fragment.ok()) {
    finish(fragment.status());
    return;
  }
  OperatorPtr op = InterposeChild(std::move(*fragment), config_, "xchg.fragment");
  // The fragment runs under the consumer's QueryContext, so cancellation,
  // deadlines, and the memory budget propagate onto pool threads.
  Status status = op->Open(ctx());
  if (status.ok()) {
    DataChunk chunk;
    chunk.Init(op->OutputTypes(), config_.vector_size);
    while (!cancelled_.load(std::memory_order_relaxed)) {
      status = ctx()->Check();
      if (!status.ok()) break;
      chunk.Reset();
      status = op->Next(&chunk);
      if (!status.ok() || chunk.ActiveCount() == 0) break;
      // Deep copy: the producer's chunk aliases fragment-internal buffers
      // that are invalid once the fragment advances or closes.
      DataChunk owned;
      owned.Init(op->OutputTypes(), chunk.ActiveCount());
      DeepCopyChunk(chunk, &owned);
      PushChunk(std::move(owned));
    }
    op->Close();
  }
  finish(status);
}

Status XchgOperator::Next(DataChunk* out) {
  VWISE_RETURN_IF_ERROR(ctx()->Check());
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] {
    return !queue_.empty() || producers_running_ == 0 || cancelled_;
  });
  if (!queue_.empty()) {
    QueuedChunk qc = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    lock.unlock();
    ctx()->Release(qc.bytes);
    // Move the producer's columns into the caller's chunk by reference.
    size_t n = qc.chunk.ActiveCount();
    for (size_t c = 0; c < qc.chunk.num_columns(); c++) {
      out->column(c).Reference(qc.chunk.column(c));
    }
    out->SetCount(n);
    return Status::OK();
  }
  // All producers done (or the operator was cancelled under us); report the
  // first producer error, still under mu_.
  VWISE_RETURN_IF_ERROR(first_error_);
  out->SetCount(0);
  return Status::OK();
}

void XchgOperator::Close() {
  // Safe to call twice and concurrently with in-flight producers: shared
  // state is only touched under mu_. Cancellation drains in three steps:
  // wake everything, help-run this operator's own not-yet-scheduled
  // fragments inline (they observe cancelled_ and retire immediately — this
  // is what makes Close() deadlock-free even with a saturated pool and a
  // full 1-slot queue), then wait for running fragments to retire (they
  // observe cancelled_ within one vector).
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ == nullptr) return;  // never opened
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }
  while (pool_->TryRunTagged(this)) {
  }
  std::unique_lock<std::mutex> lock(mu_);
  producers_done_.wait(lock, [this] { return producers_running_ == 0; });
  for (QueuedChunk& qc : queue_) ctx()->Release(qc.bytes);
  queue_.clear();
}

}  // namespace vwise
