#include "exec/xchg.h"

namespace vwise {

XchgOperator::XchgOperator(FragmentFactory factory, int num_workers,
                           std::vector<TypeId> types, const Config& config)
    : factory_(std::move(factory)),
      num_workers_(num_workers),
      types_(std::move(types)),
      config_(config) {}

XchgOperator::~XchgOperator() { Close(); }

Status XchgOperator::Open() {
  cancelled_ = false;
  first_error_ = Status::OK();
  producers_running_ = num_workers_;
  for (int w = 0; w < num_workers_; w++) {
    threads_.emplace_back([this, w] { ProducerLoop(w); });
  }
  return Status::OK();
}

void XchgOperator::PushChunk(DataChunk chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] {
    return queue_.size() < config_.xchg_queue_capacity || cancelled_;
  });
  if (cancelled_) return;
  queue_.push_back(std::move(chunk));
  not_empty_.notify_one();
}

void XchgOperator::ProducerLoop(int worker) {
  auto finish = [this](const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && first_error_.ok()) first_error_ = status;
    producers_running_--;
    not_empty_.notify_all();
  };

  auto fragment = factory_(worker, num_workers_);
  if (!fragment.ok()) {
    finish(fragment.status());
    return;
  }
  OperatorPtr op = std::move(*fragment);
  Status status = op->Open();
  if (status.ok()) {
    DataChunk chunk;
    chunk.Init(op->OutputTypes(), config_.vector_size);
    while (!cancelled_) {
      chunk.Reset();
      status = op->Next(&chunk);
      if (!status.ok() || chunk.ActiveCount() == 0) break;
      // Deep copy: the producer's chunk aliases fragment-internal buffers
      // that are invalid once the fragment advances or closes.
      DataChunk owned;
      owned.Init(op->OutputTypes(), chunk.ActiveCount());
      DeepCopyChunk(chunk, &owned);
      PushChunk(std::move(owned));
    }
    op->Close();
  }
  finish(status);
}

Status XchgOperator::Next(DataChunk* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] {
    return !queue_.empty() || producers_running_ == 0;
  });
  if (!queue_.empty()) {
    DataChunk chunk = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    lock.unlock();
    // Move the producer's columns into the caller's chunk by reference.
    size_t n = chunk.ActiveCount();
    for (size_t c = 0; c < chunk.num_columns(); c++) {
      out->column(c).Reference(chunk.column(c));
    }
    out->SetCount(n);
    return Status::OK();
  }
  // All producers done.
  VWISE_RETURN_IF_ERROR(first_error_);
  out->SetCount(0);
  return Status::OK();
}

void XchgOperator::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  queue_.clear();
}

}  // namespace vwise
