#include "exec/xchg.h"

#include "exec/profile.h"

namespace vwise {

XchgOperator::XchgOperator(FragmentFactory factory, int num_workers,
                           std::vector<TypeId> types, const Config& config)
    : factory_(std::move(factory)),
      num_workers_(num_workers),
      types_(std::move(types)),
      config_(config) {}

XchgOperator::~XchgOperator() { Close(); }

Status XchgOperator::Open() {
  // mu_ guards every piece of shared producer/consumer state
  // (first_error_, producers_running_, queue_); cancelled_ is additionally
  // atomic because producer loops poll it outside the lock.
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = false;
  first_error_ = Status::OK();
  producers_running_ = num_workers_;
  for (int w = 0; w < num_workers_; w++) {
    threads_.emplace_back([this, w] { ProducerLoop(w); });
  }
  return Status::OK();
}

void XchgOperator::PushChunk(DataChunk chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] {
    return queue_.size() < config_.xchg_queue_capacity || cancelled_;
  });
  if (cancelled_) return;
  queue_.push_back(std::move(chunk));
  not_empty_.notify_one();
}

void XchgOperator::ProducerLoop(int worker) {
  auto finish = [this](const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && first_error_.ok()) first_error_ = status;
    producers_running_--;
    not_empty_.notify_all();
  };

  auto fragment = factory_(worker, num_workers_);
  if (!fragment.ok()) {
    finish(fragment.status());
    return;
  }
  OperatorPtr op = InterposeChild(std::move(*fragment), config_, "xchg.fragment");
  Status status = op->Open();
  if (status.ok()) {
    DataChunk chunk;
    chunk.Init(op->OutputTypes(), config_.vector_size);
    while (!cancelled_.load(std::memory_order_relaxed)) {
      chunk.Reset();
      status = op->Next(&chunk);
      if (!status.ok() || chunk.ActiveCount() == 0) break;
      // Deep copy: the producer's chunk aliases fragment-internal buffers
      // that are invalid once the fragment advances or closes.
      DataChunk owned;
      owned.Init(op->OutputTypes(), chunk.ActiveCount());
      DeepCopyChunk(chunk, &owned);
      PushChunk(std::move(owned));
    }
    op->Close();
  }
  finish(status);
}

Status XchgOperator::Next(DataChunk* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] {
    return !queue_.empty() || producers_running_ == 0 || cancelled_;
  });
  if (!queue_.empty()) {
    DataChunk chunk = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    lock.unlock();
    // Move the producer's columns into the caller's chunk by reference.
    size_t n = chunk.ActiveCount();
    for (size_t c = 0; c < chunk.num_columns(); c++) {
      out->column(c).Reference(chunk.column(c));
    }
    out->SetCount(n);
    return Status::OK();
  }
  // All producers done (or the operator was cancelled under us); report the
  // first producer error, still under mu_.
  VWISE_RETURN_IF_ERROR(first_error_);
  out->SetCount(0);
  return Status::OK();
}

void XchgOperator::Close() {
  // Safe to call twice and concurrently with an in-flight Next(): shared
  // state is only touched under mu_, and the join set is claimed atomically
  // so a second Close() (e.g. the destructor after an explicit Close) finds
  // nothing left to do.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    to_join.swap(threads_);
    not_full_.notify_all();
    not_empty_.notify_all();
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  queue_.clear();
}

}  // namespace vwise
