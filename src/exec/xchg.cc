#include "exec/xchg.h"

#include "exec/profile.h"
#include "service/query_context.h"
#include "service/worker_pool.h"

namespace vwise {

XchgOperator::XchgOperator(FragmentFactory factory, int num_workers,
                           std::vector<TypeId> types, const Config& config)
    : factory_(std::move(factory)),
      num_workers_(num_workers),
      types_(std::move(types)),
      config_(config) {}

XchgOperator::~XchgOperator() { Close(); }

Status XchgOperator::OpenImpl() {
  WorkerPool* pool = config_.worker_pool != nullptr ? config_.worker_pool
                                                    : WorkerPool::Global();
  {
    MutexLock lock(&mu_);
    pool_ = pool;  // published under mu_: Close() reads it under the lock
    cancelled_ = false;
    first_error_ = Status::OK();
    producers_running_ = num_workers_;
  }
  // One pool task per fragment, tagged with this operator so Close() can
  // help-run not-yet-scheduled fragments inline.
  for (int w = 0; w < num_workers_; w++) {
    pool->Submit(this, [this, w] { ProducerLoop(w); });
  }
  return Status::OK();
}

void XchgOperator::PushChunk(DataChunk chunk) {
  size_t bytes = EstimateChunkBytes(chunk);
  MutexLock lock(&mu_);
  while (queue_.size() >= config_.xchg_queue_capacity && !cancelled_) {
    not_full_.Wait(&mu_);
  }
  if (cancelled_) return;
  Status reserve = ctx()->Reserve(bytes, "exchange queue");
  if (!reserve.ok()) {
    // Budget overshoot fails the query: record it and cancel the siblings.
    if (first_error_.ok()) first_error_ = reserve;
    cancelled_ = true;
    not_full_.SignalAll();
    not_empty_.SignalAll();
    return;
  }
  queue_.push_back(QueuedChunk{std::move(chunk), bytes});
  not_empty_.Signal();
}

void XchgOperator::ProducerLoop(int worker) {
  auto finish = [this](const Status& status) VWISE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (!status.ok() && first_error_.ok()) first_error_ = status;
    producers_running_--;
    not_empty_.SignalAll();
    if (producers_running_ == 0) producers_done_.SignalAll();
  };

  // Cancelled before the pool scheduled us (or Close() is help-running the
  // task to drain it): just retire.
  if (cancelled_.load(std::memory_order_relaxed)) {
    finish(Status::OK());
    return;
  }
  auto fragment = factory_(worker, num_workers_);
  if (!fragment.ok()) {
    finish(fragment.status());
    return;
  }
  OperatorPtr op = InterposeChild(std::move(*fragment), config_, "xchg.fragment");
  // The fragment runs under the consumer's QueryContext, so cancellation,
  // deadlines, and the memory budget propagate onto pool threads.
  Status status = op->Open(ctx());
  if (status.ok()) {
    DataChunk chunk;
    chunk.Init(op->OutputTypes(), config_.vector_size);
    while (!cancelled_.load(std::memory_order_relaxed)) {
      status = ctx()->Check();
      if (!status.ok()) break;
      chunk.Reset();
      status = op->Next(&chunk);
      if (!status.ok() || chunk.ActiveCount() == 0) break;
      // Decode before crossing the thread boundary: the consumer must not
      // chase dict/RLE views into fragment-owned storage buffers.
      chunk.NormalizeColumns();
      // Deep copy: the producer's chunk aliases fragment-internal buffers
      // that are invalid once the fragment advances or closes.
      DataChunk owned;
      owned.Init(op->OutputTypes(), chunk.ActiveCount());
      DeepCopyChunk(chunk, &owned);
      PushChunk(std::move(owned));
    }
    op->Close();
  }
  finish(status);
}

Status XchgOperator::Next(DataChunk* out) {
  VWISE_RETURN_IF_ERROR(ctx()->Check());
  QueuedChunk qc;
  {
    // vwise-hotpath: allow(lock): the exchange operator IS the pipeline's
    // synchronization point — one acquisition per chunk, never per tuple
    MutexLock lock(&mu_);
    while (queue_.empty() && producers_running_ > 0 && !cancelled_) {
      // vwise-hotpath: allow(lock): consumer blocks until a producer fills
      // the queue; by design, not a hot-loop stall
      not_empty_.Wait(&mu_);
    }
    if (queue_.empty()) {
      // All producers done (or the operator was cancelled under us); report
      // the first producer error, still under mu_.
      VWISE_RETURN_IF_ERROR(first_error_);
      out->SetCount(0);
      return Status::OK();
    }
    qc = std::move(queue_.front());
    queue_.pop_front();
    // vwise-hotpath: allow(lock): wakes one blocked producer; per chunk
    not_full_.Signal();
  }
  // Budget release and the column handoff run outside the lock: neither
  // touches shared state, and a stalled consumer must not serialize the
  // producers behind it.
  ctx()->Release(qc.bytes);
  // Move the producer's columns into the caller's chunk by reference.
  size_t n = qc.chunk.ActiveCount();
  for (size_t c = 0; c < qc.chunk.num_columns(); c++) {
    out->column(c).Reference(qc.chunk.column(c));
  }
  out->SetCount(n);
  return Status::OK();
}

void XchgOperator::Close() {
  // Safe to call twice and concurrently with in-flight producers: shared
  // state is only touched under mu_. Cancellation drains in three steps:
  // wake everything, help-run this operator's own not-yet-scheduled
  // fragments inline (they observe cancelled_ and retire immediately — this
  // is what makes Close() deadlock-free even with a saturated pool and a
  // full 1-slot queue), then wait for running fragments to retire (they
  // observe cancelled_ within one vector).
  WorkerPool* pool;
  {
    MutexLock lock(&mu_);
    if (pool_ == nullptr) return;  // never opened
    pool = pool_;
    cancelled_ = true;
    not_full_.SignalAll();
    not_empty_.SignalAll();
  }
  // Help-run outside mu_: the drained fragments call back into finish(),
  // which takes mu_ — holding it here would self-deadlock.
  while (pool->TryRunTagged(this)) {
  }
  MutexLock lock(&mu_);
  while (producers_running_ > 0) producers_done_.Wait(&mu_);
  for (QueuedChunk& qc : queue_) ctx()->Release(qc.bytes);
  queue_.clear();
}

}  // namespace vwise
