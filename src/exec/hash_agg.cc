#include "exec/hash_agg.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>
#include <system_error>

#include "common/bitutil.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "exec/profile.h"
#include "storage/spill_file.h"

namespace vwise {

namespace {

constexpr uint32_t kEmptySlot = 0xffffffffu;

uint64_t HashAt(const Vector& vec, sel_t pos) {
  switch (vec.type()) {
    case TypeId::kU8:
      return HashInt(vec.Data<uint8_t>()[pos]);
    case TypeId::kI32:
      return HashInt(static_cast<uint64_t>(vec.Data<int32_t>()[pos]));
    case TypeId::kI64:
      return HashInt(static_cast<uint64_t>(vec.Data<int64_t>()[pos]));
    case TypeId::kF64:
      return HashInt(static_cast<uint64_t>(vec.Data<double>()[pos]));
    case TypeId::kStr: {
      const StringVal& s = vec.Data<StringVal>()[pos];
      return HashBytes(s.ptr, s.len);
    }
  }
  return 0;
}

bool KeyEquals(const Vector& vec, sel_t pos, const ColumnStore& store,
               size_t group) {
  switch (vec.type()) {
    case TypeId::kU8:
      return vec.Data<uint8_t>()[pos] == store.Get<uint8_t>(group);
    case TypeId::kI32:
      return vec.Data<int32_t>()[pos] == store.Get<int32_t>(group);
    case TypeId::kI64:
      return vec.Data<int64_t>()[pos] == store.Get<int64_t>(group);
    case TypeId::kF64:
      return vec.Data<double>()[pos] == store.Get<double>(group);
    case TypeId::kStr:
      return vec.Data<StringVal>()[pos] == store.Strs()[group];
  }
  return false;
}

// Numeric value of column `vec` at `pos` widened to double / int64.
double F64At(const Vector& vec, sel_t pos) {
  switch (vec.type()) {
    case TypeId::kU8:
      return vec.Data<uint8_t>()[pos];
    case TypeId::kI32:
      return vec.Data<int32_t>()[pos];
    case TypeId::kI64:
      return static_cast<double>(vec.Data<int64_t>()[pos]);
    case TypeId::kF64:
      return vec.Data<double>()[pos];
    case TypeId::kStr:
      break;
  }
  return 0;
}

int64_t I64At(const Vector& vec, sel_t pos) {
  switch (vec.type()) {
    case TypeId::kU8:
      return vec.Data<uint8_t>()[pos];
    case TypeId::kI32:
      return vec.Data<int32_t>()[pos];
    case TypeId::kI64:
      return vec.Data<int64_t>()[pos];
    case TypeId::kF64:
      return static_cast<int64_t>(vec.Data<double>()[pos]);
    case TypeId::kStr:
      break;
  }
  return 0;
}

bool IntFamily(TypeId t) {
  return t == TypeId::kU8 || t == TypeId::kI32 || t == TypeId::kI64;
}

// Run-value readers over an RLE vector (compressed execution): the global-
// aggregate fast path folds value x run_length per run instead of touching
// every tuple.
int64_t RleRunI64(const Vector& v, uint32_t r) {
  switch (v.type()) {
    case TypeId::kU8:
      return v.rle_values<uint8_t>()[r];
    case TypeId::kI32:
      return v.rle_values<int32_t>()[r];
    case TypeId::kI64:
      return v.rle_values<int64_t>()[r];
    case TypeId::kF64:
      return static_cast<int64_t>(v.rle_values<double>()[r]);
    case TypeId::kStr:
      break;
  }
  return 0;
}

double RleRunF64(const Vector& v, uint32_t r) {
  switch (v.type()) {
    case TypeId::kU8:
      return v.rle_values<uint8_t>()[r];
    case TypeId::kI32:
      return v.rle_values<int32_t>()[r];
    case TypeId::kI64:
      return static_cast<double>(v.rle_values<int64_t>()[r]);
    case TypeId::kF64:
      return v.rle_values<double>()[r];
    case TypeId::kStr:
      break;
  }
  return 0;
}

}  // namespace

HashAggOperator::HashAggOperator(OperatorPtr child,
                                 std::vector<size_t> group_cols,
                                 std::vector<AggSpec> aggs,
                                 const Config& config)
    : child_(InterposeChild(std::move(child), config, "hash_agg.child")),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      config_(config) {
  const auto& in_types = child_->OutputTypes();
  for (size_t c : group_cols_) out_types_.push_back(in_types[c]);
  for (const AggSpec& a : aggs_) {
    switch (a.fn) {
      case AggSpec::Fn::kSum:
        out_types_.push_back(IntFamily(in_types[a.col]) ? TypeId::kI64
                                                        : TypeId::kF64);
        break;
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax:
        out_types_.push_back(in_types[a.col] == TypeId::kF64 ? TypeId::kF64
                             : in_types[a.col] == TypeId::kI32 ? TypeId::kI32
                                                               : TypeId::kI64);
        break;
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kCountStar:
        out_types_.push_back(TypeId::kI64);
        break;
      case AggSpec::Fn::kAvg:
        out_types_.push_back(TypeId::kF64);
        break;
    }
  }
}

HashAggOperator::~HashAggOperator() { DropPartitions(); }

Status HashAggOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(child_->Open(ctx()));
  const auto& in_types = child_->OutputTypes();
  key_stores_.clear();
  for (size_t c : group_cols_) key_stores_.emplace_back(in_types[c]);
  // Budget accounting: estimated footprint of one group row — owned key
  // copies plus per-aggregate state (i64/f64/count lanes) plus the stored
  // hash and its open-addressing slot.
  mem_.Bind(ctx(), "hash aggregation");
  reserved_groups_ = 0;
  per_group_bytes_ = 16;  // group_hashes_ entry + table slot
  for (size_t c : group_cols_) {
    per_group_bytes_ +=
        in_types[c] == TypeId::kStr ? 32 : TypeWidth(in_types[c]);
  }
  per_group_bytes_ += aggs_.size() * 24;
  states_.assign(aggs_.size(), AggState{});
  for (size_t i = 0; i < aggs_.size(); i++) {
    states_[i].in_type =
        aggs_[i].fn == AggSpec::Fn::kCountStar ? TypeId::kI64 : in_types[aggs_[i].col];
  }
  // Reset the group count and hashes from a previous execution of a prepared
  // plan BEFORE rebuilding the slot table: ResizeTable re-inserts the first
  // n_groups_ entries of group_hashes_, so stale values would repopulate the
  // fresh table with dangling group indices (and loop forever once the stale
  // count exceeds the bucket count).
  n_groups_ = 0;
  group_hashes_.clear();
  ResizeTable(1024);
  consumed_ = false;
  emit_cursor_ = 0;
  spilled_ = false;
  DropPartitions();
  spill_partitions_stat_ = 0;
  spill_repartitions_stat_ = 0;
  spill_depth_stat_ = 0;
  hash_scratch_ = ctx()->scratch()->AcquireArray<uint64_t>(config_.vector_size);
  group_idx_ = ctx()->scratch()->AcquireArray<uint32_t>(config_.vector_size);
  emit_idx_ = ctx()->scratch()->AcquireArray<uint32_t>(config_.vector_size);
  return Status::OK();
}

void HashAggOperator::ResizeTable(size_t buckets) {
  slots_.assign(buckets, kEmptySlot);
  slot_mask_ = buckets - 1;
  for (uint32_t g = 0; g < n_groups_; g++) {
    uint64_t s = group_hashes_[g] & slot_mask_;
    while (slots_[s] != kEmptySlot) s = (s + 1) & slot_mask_;
    slots_[s] = g;
  }
}

uint32_t HashAggOperator::FindOrCreateGroup(const DataChunk& chunk, sel_t pos,
                                            uint64_t hash,
                                            const size_t* key_cols) {
  uint64_t s = hash & slot_mask_;
  while (true) {
    uint32_t g = slots_[s];
    if (g == kEmptySlot) break;
    if (group_hashes_[g] == hash) {
      bool equal = true;
      for (size_t k = 0; k < group_cols_.size(); k++) {
        if (!KeyEquals(chunk.column(key_cols[k]), pos, key_stores_[k], g)) {
          equal = false;
          break;
        }
      }
      if (equal) return g;
    }
    s = (s + 1) & slot_mask_;
  }
  // New group.
  uint32_t g = static_cast<uint32_t>(n_groups_++);
  slots_[s] = g;
  // vwise-hotpath: allow(alloc): group-state growth happens once per new
  // group (warm-up); a stabilized group set never re-enters this tail
  group_hashes_.push_back(hash);
  for (size_t k = 0; k < group_cols_.size(); k++) {
    // vwise-hotpath: allow(cold-call): per-new-group key copy, warm-up only
    key_stores_[k].AppendOne(chunk.column(key_cols[k]), pos);
  }
  for (size_t i = 0; i < aggs_.size(); i++) {
    AggState& st = states_[i];
    switch (aggs_[i].fn) {
      case AggSpec::Fn::kSum:
        if (IntFamily(st.in_type)) {
          // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
          st.i64.push_back(0);
        } else {
          // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
          st.f64.push_back(0);
        }
        break;
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax:
        if (st.in_type == TypeId::kF64) {
          // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
          st.f64.push_back(0);
        } else {
          // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
          st.i64.push_back(0);
        }
        // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
        st.count.push_back(0);  // first-touch marker
        break;
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kCountStar:
        // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
        st.i64.push_back(0);
        break;
      case AggSpec::Fn::kAvg:
        // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
        st.f64.push_back(0);
        // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
        st.count.push_back(0);
        break;
    }
  }
  if (n_groups_ * 10 > slots_.size() * 7) {
    // vwise-hotpath: allow(cold-call): table doubling, amortized O(1)
    ResizeTable(slots_.size() * 2);
  }
  return g;
}

// VWISE_HOT: the per-chunk aggregation core — hashed, resolved and updated
// without leaving the arena-leased scratch (group creation is the annotated
// warm-up tail in FindOrCreateGroup).
VWISE_HOT Status HashAggOperator::ProcessChunk(DataChunk& chunk) {
  size_t n = chunk.ActiveCount();
  const sel_t* sel = chunk.sel();
  // Compressed execution: group keys are hashed and compared value-at-a-time
  // below, so they always decode; aggregate inputs decode only when the
  // per-run RLE fast path (global aggregate, no selection) does not apply.
  for (size_t k = 0; k < group_cols_.size(); k++) {
    Vector& key = chunk.column(group_cols_[k]);
    if (key.IsEncoded()) {
      // vwise-hotpath: allow(cold-call): per-chunk decode boundary
      key.Normalize(chunk.count());
    }
  }
  for (size_t a = 0; a < aggs_.size(); a++) {
    const AggSpec& spec = aggs_[a];
    if (spec.fn == AggSpec::Fn::kCount || spec.fn == AggSpec::Fn::kCountStar) {
      continue;  // counting never reads the input values
    }
    Vector& agg_in = chunk.column(spec.col);
    bool rle_fast = group_cols_.empty() && sel == nullptr &&
                    agg_in.repr() == VectorRepr::kRle;
    if (agg_in.IsEncoded() && !rle_fast) {
      // vwise-hotpath: allow(cold-call): per-chunk decode boundary
      agg_in.Normalize(chunk.count());
    }
  }
  uint64_t* hashes = hash_scratch_.data<uint64_t>();
  uint32_t* groups = group_idx_.data<uint32_t>();
  // 1. Hash the group keys, a column at a time.
  std::fill(hashes, hashes + n, 0);
  for (size_t k = 0; k < group_cols_.size(); k++) {
    const Vector& key = chunk.column(group_cols_[k]);
    for (size_t i = 0; i < n; i++) {
      sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
      hashes[i] = HashCombine(hashes[i], HashAt(key, pos));
    }
  }
  // 2. Resolve group indices.
  for (size_t i = 0; i < n; i++) {
    sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
    groups[i] = FindOrCreateGroup(chunk, pos, hashes[i], group_cols_.data());
  }
  // 3. Per-aggregate update loops.
  for (size_t a = 0; a < aggs_.size(); a++) {
    AggState& st = states_[a];
    const AggSpec& spec = aggs_[a];
    switch (spec.fn) {
      case AggSpec::Fn::kSum: {
        const Vector& in = chunk.column(spec.col);
        if (in.repr() == VectorRepr::kRle) {
          // Per-run fold: every row is in the single global group (the
          // normalize pass above leaves RLE in place only then).
          uint32_t g = groups[0];
          const uint32_t* starts = in.rle_starts();
          uint32_t m = in.rle_runs();
          if (IntFamily(st.in_type)) {
            for (uint32_t r = 0; r < m; r++) {
              st.i64[g] += RleRunI64(in, r) *
                           static_cast<int64_t>(starts[r + 1] - starts[r]);
            }
          } else {
            for (uint32_t r = 0; r < m; r++) {
              st.f64[g] += RleRunF64(in, r) * (starts[r + 1] - starts[r]);
            }
          }
          break;
        }
        if (IntFamily(st.in_type)) {
          for (size_t i = 0; i < n; i++) {
            sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
            st.i64[groups[i]] += I64At(in, pos);
          }
        } else {
          for (size_t i = 0; i < n; i++) {
            sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
            st.f64[groups[i]] += F64At(in, pos);
          }
        }
        break;
      }
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax: {
        const Vector& in = chunk.column(spec.col);
        bool is_min = spec.fn == AggSpec::Fn::kMin;
        if (in.repr() == VectorRepr::kRle) {
          uint32_t g = groups[0];
          uint32_t m = in.rle_runs();
          for (uint32_t r = 0; r < m; r++) {
            if (st.in_type == TypeId::kF64) {
              double v = RleRunF64(in, r);
              if (!st.count[g] || (is_min ? v < st.f64[g] : v > st.f64[g])) {
                st.f64[g] = v;
              }
            } else {
              int64_t v = RleRunI64(in, r);
              if (!st.count[g] || (is_min ? v < st.i64[g] : v > st.i64[g])) {
                st.i64[g] = v;
              }
            }
            st.count[g] = 1;
          }
          break;
        }
        for (size_t i = 0; i < n; i++) {
          sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
          uint32_t g = groups[i];
          if (st.in_type == TypeId::kF64) {
            double v = F64At(in, pos);
            if (!st.count[g] || (is_min ? v < st.f64[g] : v > st.f64[g])) {
              st.f64[g] = v;
            }
          } else {
            int64_t v = I64At(in, pos);
            if (!st.count[g] || (is_min ? v < st.i64[g] : v > st.i64[g])) {
              st.i64[g] = v;
            }
          }
          st.count[g] = 1;
        }
        break;
      }
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kCountStar:
        for (size_t i = 0; i < n; i++) st.i64[groups[i]]++;
        break;
      case AggSpec::Fn::kAvg: {
        const Vector& in = chunk.column(spec.col);
        if (in.repr() == VectorRepr::kRle) {
          uint32_t g = groups[0];
          const uint32_t* starts = in.rle_starts();
          uint32_t m = in.rle_runs();
          for (uint32_t r = 0; r < m; r++) {
            st.f64[g] += RleRunF64(in, r) * (starts[r + 1] - starts[r]);
          }
          st.count[g] += n;
          break;
        }
        for (size_t i = 0; i < n; i++) {
          sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
          uint32_t g = groups[i];
          st.f64[g] += F64At(in, pos);
          st.count[g]++;
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status HashAggOperator::ConsumeInput() {
  DataChunk chunk;
  chunk.Init(child_->OutputTypes(), config_.vector_size);
  std::vector<sel_t> orig_sel;  // snapshot of active positions when slicing
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    chunk.Reset();
    VWISE_RETURN_IF_ERROR(child_->Next(&chunk));
    size_t n = chunk.ActiveCount();
    if (n == 0) break;
    // Budget-accounting fix: reserve a worst-case bound (every incoming row
    // a fresh group) BEFORE ProcessChunk inserts anything, then trim the
    // reservation to the groups actually created. The old reserve-after-
    // insert let a single chunk of fresh groups overshoot the budget — and
    // the spill trigger below must fire before allocation to help at all.
    size_t done = 0;
    bool sliced = false;
    while (done < n) {
      size_t slice = n - done;
      while (true) {
        Status grown = mem_.Grow(slice * per_group_bytes_);
        if (grown.ok()) break;
        if (grown.code() != StatusCode::kResourceExhausted ||
            !config_.enable_spill) {
          return grown;
        }
        if (n_groups_ > 0) {
          // Flush the table to the radix partitions and retry with the
          // budget freed up.
          VWISE_RETURN_IF_ERROR(SpillGroups());
          continue;
        }
        if (slice > 1) {
          // Empty table and still over budget: the worst-case bound for the
          // whole slice is what does not fit — narrow the slice instead of
          // failing (the real group count is usually far below worst case).
          slice = (slice + 1) / 2;
          continue;
        }
        return grown;  // budget cannot hold even one group
      }
      if (slice < n) {
        // Narrow the chunk to the active-position window [done, done+slice).
        if (!sliced) {
          orig_sel.resize(n);
          if (chunk.has_selection()) {
            std::memcpy(orig_sel.data(), chunk.sel(), n * sizeof(sel_t));
          } else {
            for (size_t i = 0; i < n; i++) orig_sel[i] = static_cast<sel_t>(i);
          }
          sliced = true;
        }
        std::memcpy(chunk.MutableSel(), orig_sel.data() + done,
                    slice * sizeof(sel_t));
        chunk.SetSelection(slice);
      }
      size_t before = n_groups_;
      VWISE_RETURN_IF_ERROR(ProcessChunk(chunk));
      mem_.Shrink((slice - (n_groups_ - before)) * per_group_bytes_);
      reserved_groups_ = n_groups_;
      done += slice;
    }
    // Governor pressure signal (polled alongside ctx()->Check() above):
    // queries are waiting for global memory, so proactively flush the group
    // table and shrink this reservation instead of holding it.
    if (config_.enable_spill && n_groups_ > 0 &&
        mem_.bytes() >= config_.pressure_spill_min_bytes &&
        ctx()->MemoryPressure()) {
      VWISE_RETURN_IF_ERROR(SpillGroups());
      ctx()->NotePressureSpill();
      continue;
    }
    // Coexistence cap: flush the table once it holds more than half the
    // budget so a downstream breaker (e.g. a Sort consuming our output)
    // is not starved of reservation headroom — and vice versa, our own
    // partition reloads still fit next to a capped downstream buffer.
    if (config_.enable_spill && ctx()->memory_budget() > 0 && n_groups_ > 0 &&
        mem_.bytes() > ctx()->memory_budget() / 2) {
      VWISE_RETURN_IF_ERROR(SpillGroups());
    }
  }
  child_->Close();
  if (spilled_) {
    // Flush the tail so every group lives in exactly one partition, then
    // close the writers; emission reloads partitions one at a time.
    VWISE_RETURN_IF_ERROR(SpillGroups());
    writers_.clear();
    pending_.clear();
    for (const std::string& path : partition_paths_) {
      pending_.push_back({path, 0});
    }
    partition_paths_.clear();
    return Status::OK();
  }
  // An ungrouped aggregate always emits one row, even on empty input.
  if (group_cols_.empty() && n_groups_ == 0) {
    DataChunk empty;
    empty.Init(child_->OutputTypes(), 1);
    // Materialize the single global group with zero-initialized states by
    // touching the table with a synthetic hash (no key columns to compare).
    group_hashes_.push_back(0);
    slots_[0] = 0;
    n_groups_ = 1;
    for (size_t i = 0; i < aggs_.size(); i++) {
      AggState& st = states_[i];
      switch (aggs_[i].fn) {
        case AggSpec::Fn::kSum:
          if (IntFamily(st.in_type)) {
            st.i64.push_back(0);
          } else {
            st.f64.push_back(0);
          }
          break;
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax:
          if (st.in_type == TypeId::kF64) {
            st.f64.push_back(0);
          } else {
            st.i64.push_back(0);
          }
          st.count.push_back(0);
          break;
        case AggSpec::Fn::kCount:
        case AggSpec::Fn::kCountStar:
          st.i64.push_back(0);
          break;
        case AggSpec::Fn::kAvg:
          st.f64.push_back(0);
          st.count.push_back(0);
          break;
      }
    }
  }
  return Status::OK();
}

void HashAggOperator::BuildStateSchema() {
  const auto& in_types = child_->OutputTypes();
  state_types_.clear();
  lanes_.clear();
  identity_cols_.clear();
  for (size_t k = 0; k < group_cols_.size(); k++) {
    state_types_.push_back(in_types[group_cols_[k]]);
    identity_cols_.push_back(k);
  }
  for (size_t a = 0; a < aggs_.size(); a++) {
    const AggState& st = states_[a];
    bool is_i64 = false;
    bool has_count = false;
    switch (aggs_[a].fn) {
      case AggSpec::Fn::kSum:
        is_i64 = IntFamily(st.in_type);
        break;
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax:
        is_i64 = st.in_type != TypeId::kF64;
        has_count = true;
        break;
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kCountStar:
        is_i64 = true;
        break;
      case AggSpec::Fn::kAvg:
        is_i64 = false;
        has_count = true;
        break;
    }
    StateLane lane{state_types_.size(), SIZE_MAX, is_i64};
    state_types_.push_back(is_i64 ? TypeId::kI64 : TypeId::kF64);
    if (has_count) {
      lane.count_col = state_types_.size();
      state_types_.push_back(TypeId::kI64);
    }
    lanes_.push_back(lane);
  }
}

void HashAggOperator::ClearTable() {
  n_groups_ = 0;
  group_hashes_.clear();
  const auto& in_types = child_->OutputTypes();
  key_stores_.clear();
  for (size_t c : group_cols_) key_stores_.emplace_back(in_types[c]);
  for (AggState& st : states_) {
    st.i64.clear();
    st.f64.clear();
    st.count.clear();
  }
  ResizeTable(1024);
  mem_.Shrink(reserved_groups_ * per_group_bytes_);
  reserved_groups_ = 0;
}

Status HashAggOperator::SpillGroups() {
  if (n_groups_ == 0) return Status::OK();
  if (writers_.empty()) {
    spilled_ = true;
    n_partitions_ = SpillPartitionCount(config_.spill_partitions);
    spill_partitions_stat_ = n_partitions_;
    BuildStateSchema();
    for (size_t p = 0; p < n_partitions_; p++) {
      std::string path;
      VWISE_ASSIGN_OR_RETURN(path, ctx()->NewSpillPath("agg_part"));
      partition_paths_.push_back(path);
      std::unique_ptr<SpillWriter> writer;
      VWISE_ASSIGN_OR_RETURN(writer,
                             SpillWriter::Create(path, state_types_,
                                                 &ctx()->spill_counters()));
      writers_.push_back(std::move(writer));
    }
  }
  // Partition on HIGH hash bits: the group table (and a downstream reload's
  // table) masks the low bits, so low-bit partitioning would put every group
  // of a partition in the same few buckets.
  std::vector<std::vector<uint32_t>> buckets(n_partitions_);
  for (uint32_t g = 0; g < n_groups_; g++) {
    buckets[(group_hashes_[g] >> 56) & (n_partitions_ - 1)].push_back(g);
  }
  DataChunk scratch;
  scratch.Init(state_types_, config_.vector_size);
  for (size_t p = 0; p < n_partitions_; p++) {
    const std::vector<uint32_t>& ids = buckets[p];
    for (size_t i = 0; i < ids.size(); i += scratch.capacity()) {
      VWISE_RETURN_IF_ERROR(ctx()->Check());
      size_t batch = std::min(scratch.capacity(), ids.size() - i);
      scratch.Reset();
      for (size_t k = 0; k < group_cols_.size(); k++) {
        key_stores_[k].Gather(ids.data() + i, batch, &scratch.column(k));
      }
      for (size_t a = 0; a < aggs_.size(); a++) {
        const AggState& st = states_[a];
        const StateLane& lane = lanes_[a];
        Vector& value = scratch.column(lane.value_col);
        for (size_t j = 0; j < batch; j++) {
          uint32_t g = ids[i + j];
          if (lane.is_i64) {
            value.Data<int64_t>()[j] = st.i64[g];
          } else {
            value.Data<double>()[j] = st.f64[g];
          }
          if (lane.count_col != SIZE_MAX) {
            scratch.column(lane.count_col).Data<int64_t>()[j] = st.count[g];
          }
        }
      }
      scratch.SetCount(batch);
      VWISE_RETURN_IF_ERROR(writers_[p]->Append(scratch));
    }
  }
  ClearTable();
  return Status::OK();
}

Status HashAggOperator::ProcessStateChunk(const DataChunk& chunk) {
  size_t n = chunk.count();  // state chunks are dense
  uint64_t* hashes = hash_scratch_.data<uint64_t>();
  uint32_t* groups = group_idx_.data<uint32_t>();
  std::fill(hashes, hashes + n, 0);
  for (size_t k = 0; k < group_cols_.size(); k++) {
    const Vector& key = chunk.column(k);
    for (size_t i = 0; i < n; i++) {
      hashes[i] = HashCombine(hashes[i], HashAt(key, static_cast<sel_t>(i)));
    }
  }
  for (size_t i = 0; i < n; i++) {
    groups[i] = FindOrCreateGroup(chunk, static_cast<sel_t>(i), hashes[i],
                                  identity_cols_.data());
  }
  // Merge the partial states: sums/counts add, min/max compare (their count
  // lane is the first-touch marker), avg adds both lanes.
  for (size_t a = 0; a < aggs_.size(); a++) {
    AggState& st = states_[a];
    const StateLane& lane = lanes_[a];
    const Vector& value = chunk.column(lane.value_col);
    switch (aggs_[a].fn) {
      case AggSpec::Fn::kSum:
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kCountStar:
        for (size_t i = 0; i < n; i++) {
          if (lane.is_i64) {
            st.i64[groups[i]] += value.Data<int64_t>()[i];
          } else {
            st.f64[groups[i]] += value.Data<double>()[i];
          }
        }
        break;
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax: {
        const Vector& cnt = chunk.column(lane.count_col);
        bool is_min = aggs_[a].fn == AggSpec::Fn::kMin;
        for (size_t i = 0; i < n; i++) {
          if (cnt.Data<int64_t>()[i] == 0) continue;  // no-data partial
          uint32_t g = groups[i];
          if (lane.is_i64) {
            int64_t v = value.Data<int64_t>()[i];
            if (!st.count[g] || (is_min ? v < st.i64[g] : v > st.i64[g])) {
              st.i64[g] = v;
            }
          } else {
            double v = value.Data<double>()[i];
            if (!st.count[g] || (is_min ? v < st.f64[g] : v > st.f64[g])) {
              st.f64[g] = v;
            }
          }
          st.count[g] = 1;
        }
        break;
      }
      case AggSpec::Fn::kAvg: {
        const Vector& cnt = chunk.column(lane.count_col);
        for (size_t i = 0; i < n; i++) {
          uint32_t g = groups[i];
          st.f64[g] += value.Data<double>()[i];
          st.count[g] += cnt.Data<int64_t>()[i];
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status HashAggOperator::LoadPartition(const std::string& path) {
  ClearTable();
  std::unique_ptr<SpillReader> reader;
  VWISE_ASSIGN_OR_RETURN(reader,
                         SpillReader::Open(path, state_types_,
                                           &ctx()->spill_counters()));
  DataChunk chunk;
  chunk.Init(state_types_, config_.vector_size);
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    bool more = false;
    VWISE_ASSIGN_OR_RETURN(more, reader->Next(&chunk));
    if (!more) break;
    size_t n = chunk.count();
    // Same reserve-before-insert protocol as the consume path.
    // ResourceExhausted here means one partition's groups alone exceed the
    // budget; the caller re-partitions it onto a fresh radix level (bounded
    // by Config::spill_max_repartition_depth) instead of failing the query.
    VWISE_RETURN_IF_ERROR(mem_.Grow(n * per_group_bytes_));
    size_t before = n_groups_;
    VWISE_RETURN_IF_ERROR(ProcessStateChunk(chunk));
    mem_.Shrink((n - (n_groups_ - before)) * per_group_bytes_);
    reserved_groups_ = n_groups_;
  }
  return Status::OK();
}

size_t HashAggOperator::RepartitionFanout(uint64_t part_bytes) const {
  // Aim each child at a fraction of the budget: serialized state rows
  // understate resident group bytes (per_group_bytes_ covers table slots and
  // hash entries too).
  size_t budget = ctx()->memory_budget();
  uint64_t target = budget > 0 ? static_cast<uint64_t>(budget) / 4
                               : (32ull << 20);
  if (target == 0) target = 1;
  uint64_t need = part_bytes / target + 2;
  size_t fanout =
      SpillPartitionCount(static_cast<size_t>(need > 256 ? 256 : need));
  // Capped at the configured partition count: each child holds an open
  // writer with its own buffers, so one level never fans wider than the
  // initial flush; depth supplies the remaining capacity (fanout^depth).
  size_t cap = SpillPartitionCount(config_.spill_partitions);
  return fanout > cap ? cap : fanout;
}

Status HashAggOperator::RepartitionPartition(const PendingPartition& part) {
  VWISE_FAILPOINT("spill.repartition");
  // Drop the partially merged groups the failed load left behind.
  ClearTable();
  size_t level = part.level + 1;
  // A fresh radix byte per level: level L routes on group-hash bits
  // [56 - 8L, 64 - 8L), so children split what their parent could not.
  // Identical-key groups can never be split (they were already merged into
  // one state row per flush anyway); the depth bound fails such floods
  // cleanly.
  size_t shift = 56 - 8 * (level <= 7 ? level : 7);
  std::error_code ec;
  uint64_t part_bytes = std::filesystem::file_size(part.path, ec);
  if (ec) part_bytes = 0;
  size_t fanout = RepartitionFanout(part_bytes);
  spill_repartitions_stat_++;
  if (level > spill_depth_stat_) spill_depth_stat_ = level;
  spill_partitions_stat_ += fanout;

  std::vector<PendingPartition> children(fanout);
  std::vector<std::unique_ptr<SpillWriter>> cw(fanout);
  for (size_t f = 0; f < fanout; f++) {
    children[f].level = level;
    VWISE_ASSIGN_OR_RETURN(children[f].path,
                           ctx()->NewSpillPath("agg_part_r"));
    VWISE_ASSIGN_OR_RETURN(cw[f],
                           SpillWriter::Create(children[f].path, state_types_,
                                               &ctx()->spill_counters()));
  }
  // Stream the parent's state rows to the children, routing on the same
  // group-key hash the table and the level-0 flush used. State chunks are
  // dense; keys sit at columns [0, n_keys).
  std::unique_ptr<SpillReader> reader;
  VWISE_ASSIGN_OR_RETURN(reader,
                         SpillReader::Open(part.path, state_types_,
                                           &ctx()->spill_counters()));
  DataChunk chunk;
  chunk.Init(state_types_, config_.vector_size);
  std::vector<std::vector<sel_t>> buckets(fanout);
  uint64_t* hashes = hash_scratch_.data<uint64_t>();
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    bool more = false;
    VWISE_ASSIGN_OR_RETURN(more, reader->Next(&chunk));
    if (!more) break;
    size_t n = chunk.count();
    std::fill(hashes, hashes + n, 0);
    for (size_t k = 0; k < group_cols_.size(); k++) {
      const Vector& key = chunk.column(k);
      for (size_t i = 0; i < n; i++) {
        hashes[i] = HashCombine(hashes[i], HashAt(key, static_cast<sel_t>(i)));
      }
    }
    for (auto& rows : buckets) rows.clear();
    for (size_t i = 0; i < n; i++) {
      buckets[(hashes[i] >> shift) & (fanout - 1)].push_back(
          static_cast<sel_t>(i));
    }
    for (size_t f = 0; f < fanout; f++) {
      VWISE_RETURN_IF_ERROR(
          cw[f]->AppendRows(chunk, buckets[f].data(), buckets[f].size()));
    }
  }
  reader.reset();
  cw.clear();  // close the children before the parent is unlinked
  std::filesystem::remove(part.path, ec);
  // Depth-first: merging (or further splitting) the fresh children first
  // bounds live spill disk to one lineage per level.
  pending_.insert(pending_.begin(), children.begin(), children.end());
  return Status::OK();
}

void HashAggOperator::DropPartitions() {
  writers_.clear();
  for (const std::string& path : partition_paths_) {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // best effort; ctx dir is the backstop
  }
  partition_paths_.clear();
  for (const PendingPartition& part : pending_) {
    std::error_code ec;
    std::filesystem::remove(part.path, ec);
  }
  pending_.clear();
  n_partitions_ = 0;
}

Status HashAggOperator::Next(DataChunk* out) {
  if (!consumed_) {
    // vwise-hotpath: allow(cold-call): consumes the whole input once per
    // query; the per-chunk work inside is ProcessChunk, a root of its own
    VWISE_RETURN_IF_ERROR(ConsumeInput());
    consumed_ = true;
    emit_cursor_ = 0;
  }
  if (spilled_) {
    // Partition-at-a-time emission: when the resident table is drained,
    // reload and merge the next pending partition (skipping empty ones). A
    // partition whose groups alone overflow the budget is split onto the
    // next radix level and its children retried, up to the depth bound.
    while (emit_cursor_ >= n_groups_) {
      if (pending_.empty()) {
        out->SetCount(0);
        return Status::OK();
      }
      PendingPartition part = std::move(pending_.front());
      pending_.pop_front();
      // vwise-hotpath: allow(cold-call): partition reload runs only after
      // the aggregation degraded to disk under a memory budget
      Status load = LoadPartition(part.path);
      if (!load.ok()) {
        if (load.code() != StatusCode::kResourceExhausted ||
            part.level >= config_.spill_max_repartition_depth) {
          return load;
        }
        // vwise-hotpath: allow(cold-call): budget-driven degradation path
        VWISE_RETURN_IF_ERROR(RepartitionPartition(part));
        continue;
      }
      std::error_code ec;
      std::filesystem::remove(part.path, ec);  // merged; file no longer needed
      emit_cursor_ = 0;
    }
  }
  size_t batch = std::min(out->capacity(), n_groups_ - emit_cursor_);
  // The emit gather runs through the arena-leased index array, so cap the
  // batch at its size (out may be larger than one vector).
  batch = std::min(batch, config_.vector_size);
  if (batch == 0) {
    out->SetCount(0);
    return Status::OK();
  }
  uint32_t* idx = emit_idx_.data<uint32_t>();
  for (size_t i = 0; i < batch; i++) idx[i] = static_cast<uint32_t>(emit_cursor_ + i);
  for (size_t k = 0; k < group_cols_.size(); k++) {
    key_stores_[k].Gather(idx, batch, &out->column(k));
  }
  for (size_t a = 0; a < aggs_.size(); a++) {
    Vector& dst = out->column(group_cols_.size() + a);
    const AggState& st = states_[a];
    for (size_t i = 0; i < batch; i++) {
      size_t g = emit_cursor_ + i;
      switch (aggs_[a].fn) {
        case AggSpec::Fn::kSum:
          if (IntFamily(st.in_type)) {
            dst.Data<int64_t>()[i] = st.i64[g];
          } else {
            dst.Data<double>()[i] = st.f64[g];
          }
          break;
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax:
          if (st.in_type == TypeId::kF64) {
            dst.Data<double>()[i] = st.f64[g];
          } else if (dst.type() == TypeId::kI32) {
            dst.Data<int32_t>()[i] = static_cast<int32_t>(st.i64[g]);
          } else {
            dst.Data<int64_t>()[i] = st.i64[g];
          }
          break;
        case AggSpec::Fn::kCount:
        case AggSpec::Fn::kCountStar:
          dst.Data<int64_t>()[i] = st.i64[g];
          break;
        case AggSpec::Fn::kAvg:
          dst.Data<double>()[i] =
              st.count[g] == 0 ? 0.0 : st.f64[g] / static_cast<double>(st.count[g]);
          break;
      }
    }
  }
  out->SetCount(batch);
  emit_cursor_ += batch;
  return Status::OK();
}

void HashAggOperator::Close() {
  // The child is normally closed at the end of ConsumeInput; close it again
  // here (idempotent) so an error/cancel unwind that skipped the consume
  // still reaches Xchg fragments running below on pool threads.
  child_->Close();
  key_stores_.clear();
  states_.clear();
  slots_.clear();
  DropPartitions();
  spilled_ = false;
  hash_scratch_.Release();
  group_idx_.Release();
  emit_idx_.Release();
  mem_.ReleaseAll();
  reserved_groups_ = 0;
}

}  // namespace vwise
