#include "exec/hash_agg.h"

#include <algorithm>
#include <limits>

#include "common/bitutil.h"
#include "common/hash.h"
#include "exec/profile.h"

namespace vwise {

namespace {

constexpr uint32_t kEmptySlot = 0xffffffffu;

uint64_t HashAt(const Vector& vec, sel_t pos) {
  switch (vec.type()) {
    case TypeId::kU8:
      return HashInt(vec.Data<uint8_t>()[pos]);
    case TypeId::kI32:
      return HashInt(static_cast<uint64_t>(vec.Data<int32_t>()[pos]));
    case TypeId::kI64:
      return HashInt(static_cast<uint64_t>(vec.Data<int64_t>()[pos]));
    case TypeId::kF64:
      return HashInt(static_cast<uint64_t>(vec.Data<double>()[pos]));
    case TypeId::kStr: {
      const StringVal& s = vec.Data<StringVal>()[pos];
      return HashBytes(s.ptr, s.len);
    }
  }
  return 0;
}

bool KeyEquals(const Vector& vec, sel_t pos, const ColumnStore& store,
               size_t group) {
  switch (vec.type()) {
    case TypeId::kU8:
      return vec.Data<uint8_t>()[pos] == store.Get<uint8_t>(group);
    case TypeId::kI32:
      return vec.Data<int32_t>()[pos] == store.Get<int32_t>(group);
    case TypeId::kI64:
      return vec.Data<int64_t>()[pos] == store.Get<int64_t>(group);
    case TypeId::kF64:
      return vec.Data<double>()[pos] == store.Get<double>(group);
    case TypeId::kStr:
      return vec.Data<StringVal>()[pos] == store.Strs()[group];
  }
  return false;
}

// Numeric value of column `vec` at `pos` widened to double / int64.
double F64At(const Vector& vec, sel_t pos) {
  switch (vec.type()) {
    case TypeId::kU8:
      return vec.Data<uint8_t>()[pos];
    case TypeId::kI32:
      return vec.Data<int32_t>()[pos];
    case TypeId::kI64:
      return static_cast<double>(vec.Data<int64_t>()[pos]);
    case TypeId::kF64:
      return vec.Data<double>()[pos];
    case TypeId::kStr:
      break;
  }
  return 0;
}

int64_t I64At(const Vector& vec, sel_t pos) {
  switch (vec.type()) {
    case TypeId::kU8:
      return vec.Data<uint8_t>()[pos];
    case TypeId::kI32:
      return vec.Data<int32_t>()[pos];
    case TypeId::kI64:
      return vec.Data<int64_t>()[pos];
    case TypeId::kF64:
      return static_cast<int64_t>(vec.Data<double>()[pos]);
    case TypeId::kStr:
      break;
  }
  return 0;
}

bool IntFamily(TypeId t) {
  return t == TypeId::kU8 || t == TypeId::kI32 || t == TypeId::kI64;
}

}  // namespace

HashAggOperator::HashAggOperator(OperatorPtr child,
                                 std::vector<size_t> group_cols,
                                 std::vector<AggSpec> aggs,
                                 const Config& config)
    : child_(InterposeChild(std::move(child), config, "hash_agg.child")),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      config_(config) {
  const auto& in_types = child_->OutputTypes();
  for (size_t c : group_cols_) out_types_.push_back(in_types[c]);
  for (const AggSpec& a : aggs_) {
    switch (a.fn) {
      case AggSpec::Fn::kSum:
        out_types_.push_back(IntFamily(in_types[a.col]) ? TypeId::kI64
                                                        : TypeId::kF64);
        break;
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax:
        out_types_.push_back(in_types[a.col] == TypeId::kF64 ? TypeId::kF64
                             : in_types[a.col] == TypeId::kI32 ? TypeId::kI32
                                                               : TypeId::kI64);
        break;
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kCountStar:
        out_types_.push_back(TypeId::kI64);
        break;
      case AggSpec::Fn::kAvg:
        out_types_.push_back(TypeId::kF64);
        break;
    }
  }
}

Status HashAggOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(child_->Open(ctx()));
  const auto& in_types = child_->OutputTypes();
  key_stores_.clear();
  for (size_t c : group_cols_) key_stores_.emplace_back(in_types[c]);
  // Budget accounting: estimated footprint of one group row — owned key
  // copies plus per-aggregate state (i64/f64/count lanes) plus the stored
  // hash and its open-addressing slot.
  mem_.Bind(ctx(), "hash aggregation");
  reserved_groups_ = 0;
  per_group_bytes_ = 16;  // group_hashes_ entry + table slot
  for (size_t c : group_cols_) {
    per_group_bytes_ +=
        in_types[c] == TypeId::kStr ? 32 : TypeWidth(in_types[c]);
  }
  per_group_bytes_ += aggs_.size() * 24;
  states_.assign(aggs_.size(), AggState{});
  for (size_t i = 0; i < aggs_.size(); i++) {
    states_[i].in_type =
        aggs_[i].fn == AggSpec::Fn::kCountStar ? TypeId::kI64 : in_types[aggs_[i].col];
  }
  ResizeTable(1024);
  n_groups_ = 0;
  group_hashes_.clear();
  consumed_ = false;
  emit_cursor_ = 0;
  hash_scratch_ = ctx()->scratch()->AcquireArray<uint64_t>(config_.vector_size);
  group_idx_ = ctx()->scratch()->AcquireArray<uint32_t>(config_.vector_size);
  emit_idx_ = ctx()->scratch()->AcquireArray<uint32_t>(config_.vector_size);
  return Status::OK();
}

void HashAggOperator::ResizeTable(size_t buckets) {
  slots_.assign(buckets, kEmptySlot);
  slot_mask_ = buckets - 1;
  for (uint32_t g = 0; g < n_groups_; g++) {
    uint64_t s = group_hashes_[g] & slot_mask_;
    while (slots_[s] != kEmptySlot) s = (s + 1) & slot_mask_;
    slots_[s] = g;
  }
}

uint32_t HashAggOperator::FindOrCreateGroup(const DataChunk& chunk, sel_t pos,
                                            uint64_t hash) {
  uint64_t s = hash & slot_mask_;
  while (true) {
    uint32_t g = slots_[s];
    if (g == kEmptySlot) break;
    if (group_hashes_[g] == hash) {
      bool equal = true;
      for (size_t k = 0; k < group_cols_.size(); k++) {
        if (!KeyEquals(chunk.column(group_cols_[k]), pos, key_stores_[k], g)) {
          equal = false;
          break;
        }
      }
      if (equal) return g;
    }
    s = (s + 1) & slot_mask_;
  }
  // New group.
  uint32_t g = static_cast<uint32_t>(n_groups_++);
  slots_[s] = g;
  // vwise-hotpath: allow(alloc): group-state growth happens once per new
  // group (warm-up); a stabilized group set never re-enters this tail
  group_hashes_.push_back(hash);
  for (size_t k = 0; k < group_cols_.size(); k++) {
    // vwise-hotpath: allow(cold-call): per-new-group key copy, warm-up only
    key_stores_[k].AppendOne(chunk.column(group_cols_[k]), pos);
  }
  for (size_t i = 0; i < aggs_.size(); i++) {
    AggState& st = states_[i];
    switch (aggs_[i].fn) {
      case AggSpec::Fn::kSum:
        if (IntFamily(st.in_type)) {
          // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
          st.i64.push_back(0);
        } else {
          // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
          st.f64.push_back(0);
        }
        break;
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax:
        if (st.in_type == TypeId::kF64) {
          // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
          st.f64.push_back(0);
        } else {
          // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
          st.i64.push_back(0);
        }
        // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
        st.count.push_back(0);  // first-touch marker
        break;
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kCountStar:
        // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
        st.i64.push_back(0);
        break;
      case AggSpec::Fn::kAvg:
        // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
        st.f64.push_back(0);
        // vwise-hotpath: allow(alloc): per-new-group state, warm-up only
        st.count.push_back(0);
        break;
    }
  }
  if (n_groups_ * 10 > slots_.size() * 7) {
    // vwise-hotpath: allow(cold-call): table doubling, amortized O(1)
    ResizeTable(slots_.size() * 2);
  }
  return g;
}

// VWISE_HOT: the per-chunk aggregation core — hashed, resolved and updated
// without leaving the arena-leased scratch (group creation is the annotated
// warm-up tail in FindOrCreateGroup).
VWISE_HOT Status HashAggOperator::ProcessChunk(const DataChunk& chunk) {
  size_t n = chunk.ActiveCount();
  const sel_t* sel = chunk.sel();
  uint64_t* hashes = hash_scratch_.data<uint64_t>();
  uint32_t* groups = group_idx_.data<uint32_t>();
  // 1. Hash the group keys, a column at a time.
  std::fill(hashes, hashes + n, 0);
  for (size_t k = 0; k < group_cols_.size(); k++) {
    const Vector& key = chunk.column(group_cols_[k]);
    for (size_t i = 0; i < n; i++) {
      sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
      hashes[i] = HashCombine(hashes[i], HashAt(key, pos));
    }
  }
  // 2. Resolve group indices.
  for (size_t i = 0; i < n; i++) {
    sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
    groups[i] = FindOrCreateGroup(chunk, pos, hashes[i]);
  }
  // 3. Per-aggregate update loops.
  for (size_t a = 0; a < aggs_.size(); a++) {
    AggState& st = states_[a];
    const AggSpec& spec = aggs_[a];
    switch (spec.fn) {
      case AggSpec::Fn::kSum:
        if (IntFamily(st.in_type)) {
          const Vector& in = chunk.column(spec.col);
          for (size_t i = 0; i < n; i++) {
            sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
            st.i64[groups[i]] += I64At(in, pos);
          }
        } else {
          const Vector& in = chunk.column(spec.col);
          for (size_t i = 0; i < n; i++) {
            sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
            st.f64[groups[i]] += F64At(in, pos);
          }
        }
        break;
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax: {
        const Vector& in = chunk.column(spec.col);
        bool is_min = spec.fn == AggSpec::Fn::kMin;
        for (size_t i = 0; i < n; i++) {
          sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
          uint32_t g = groups[i];
          if (st.in_type == TypeId::kF64) {
            double v = F64At(in, pos);
            if (!st.count[g] || (is_min ? v < st.f64[g] : v > st.f64[g])) {
              st.f64[g] = v;
            }
          } else {
            int64_t v = I64At(in, pos);
            if (!st.count[g] || (is_min ? v < st.i64[g] : v > st.i64[g])) {
              st.i64[g] = v;
            }
          }
          st.count[g] = 1;
        }
        break;
      }
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kCountStar:
        for (size_t i = 0; i < n; i++) st.i64[groups[i]]++;
        break;
      case AggSpec::Fn::kAvg: {
        const Vector& in = chunk.column(spec.col);
        for (size_t i = 0; i < n; i++) {
          sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
          uint32_t g = groups[i];
          st.f64[g] += F64At(in, pos);
          st.count[g]++;
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status HashAggOperator::ConsumeInput() {
  DataChunk chunk;
  chunk.Init(child_->OutputTypes(), config_.vector_size);
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    chunk.Reset();
    VWISE_RETURN_IF_ERROR(child_->Next(&chunk));
    if (chunk.ActiveCount() == 0) break;
    VWISE_RETURN_IF_ERROR(ProcessChunk(chunk));
    if (n_groups_ > reserved_groups_) {
      VWISE_RETURN_IF_ERROR(
          mem_.Grow((n_groups_ - reserved_groups_) * per_group_bytes_));
      reserved_groups_ = n_groups_;
    }
  }
  child_->Close();
  // An ungrouped aggregate always emits one row, even on empty input.
  if (group_cols_.empty() && n_groups_ == 0) {
    DataChunk empty;
    empty.Init(child_->OutputTypes(), 1);
    // Materialize the single global group with zero-initialized states by
    // touching the table with a synthetic hash (no key columns to compare).
    group_hashes_.push_back(0);
    slots_[0] = 0;
    n_groups_ = 1;
    for (size_t i = 0; i < aggs_.size(); i++) {
      AggState& st = states_[i];
      switch (aggs_[i].fn) {
        case AggSpec::Fn::kSum:
          if (IntFamily(st.in_type)) {
            st.i64.push_back(0);
          } else {
            st.f64.push_back(0);
          }
          break;
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax:
          if (st.in_type == TypeId::kF64) {
            st.f64.push_back(0);
          } else {
            st.i64.push_back(0);
          }
          st.count.push_back(0);
          break;
        case AggSpec::Fn::kCount:
        case AggSpec::Fn::kCountStar:
          st.i64.push_back(0);
          break;
        case AggSpec::Fn::kAvg:
          st.f64.push_back(0);
          st.count.push_back(0);
          break;
      }
    }
  }
  return Status::OK();
}

Status HashAggOperator::Next(DataChunk* out) {
  if (!consumed_) {
    // vwise-hotpath: allow(cold-call): consumes the whole input once per
    // query; the per-chunk work inside is ProcessChunk, a root of its own
    VWISE_RETURN_IF_ERROR(ConsumeInput());
    consumed_ = true;
    emit_cursor_ = 0;
  }
  size_t batch = std::min(out->capacity(), n_groups_ - emit_cursor_);
  // The emit gather runs through the arena-leased index array, so cap the
  // batch at its size (out may be larger than one vector).
  batch = std::min(batch, config_.vector_size);
  if (batch == 0) {
    out->SetCount(0);
    return Status::OK();
  }
  uint32_t* idx = emit_idx_.data<uint32_t>();
  for (size_t i = 0; i < batch; i++) idx[i] = static_cast<uint32_t>(emit_cursor_ + i);
  for (size_t k = 0; k < group_cols_.size(); k++) {
    key_stores_[k].Gather(idx, batch, &out->column(k));
  }
  for (size_t a = 0; a < aggs_.size(); a++) {
    Vector& dst = out->column(group_cols_.size() + a);
    const AggState& st = states_[a];
    for (size_t i = 0; i < batch; i++) {
      size_t g = emit_cursor_ + i;
      switch (aggs_[a].fn) {
        case AggSpec::Fn::kSum:
          if (IntFamily(st.in_type)) {
            dst.Data<int64_t>()[i] = st.i64[g];
          } else {
            dst.Data<double>()[i] = st.f64[g];
          }
          break;
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax:
          if (st.in_type == TypeId::kF64) {
            dst.Data<double>()[i] = st.f64[g];
          } else if (dst.type() == TypeId::kI32) {
            dst.Data<int32_t>()[i] = static_cast<int32_t>(st.i64[g]);
          } else {
            dst.Data<int64_t>()[i] = st.i64[g];
          }
          break;
        case AggSpec::Fn::kCount:
        case AggSpec::Fn::kCountStar:
          dst.Data<int64_t>()[i] = st.i64[g];
          break;
        case AggSpec::Fn::kAvg:
          dst.Data<double>()[i] =
              st.count[g] == 0 ? 0.0 : st.f64[g] / static_cast<double>(st.count[g]);
          break;
      }
    }
  }
  out->SetCount(batch);
  emit_cursor_ += batch;
  return Status::OK();
}

void HashAggOperator::Close() {
  // The child is normally closed at the end of ConsumeInput; close it again
  // here (idempotent) so an error/cancel unwind that skipped the consume
  // still reaches Xchg fragments running below on pool threads.
  child_->Close();
  key_stores_.clear();
  states_.clear();
  slots_.clear();
  hash_scratch_.Release();
  group_idx_.Release();
  emit_idx_.Release();
  mem_.ReleaseAll();
  reserved_groups_ = 0;
}

}  // namespace vwise
