#ifndef VWISE_EXEC_PROJECT_H_
#define VWISE_EXEC_PROJECT_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "expr/expression.h"

namespace vwise {

// Computes one output column per expression, at the active positions of the
// input chunk; the selection vector is propagated, not compacted. Plain
// column references pass through zero-copy.
class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                  const Config& config);

  const std::vector<TypeId>& OutputTypes() const override { return out_types_; }
  Status Next(DataChunk* out) override;
  void Close() override { child_->Close(); }

  // Static-analysis surface (plan verifier).
  const Operator& child() const { return *child_; }
  const std::vector<ExprPtr>& exprs() const { return exprs_; }

 private:
  Status OpenImpl() override;
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Config config_;
  std::vector<TypeId> out_types_;
  DataChunk input_;
};

}  // namespace vwise

#endif  // VWISE_EXEC_PROJECT_H_
