#include "exec/hash_join.h"

#include <cstring>

#include "common/bitutil.h"
#include "common/hash.h"
#include "exec/profile.h"
#include "expr/primitives.h"

namespace vwise {

namespace {

constexpr uint32_t kNoRow = 0xffffffffu;  // unmatched-probe sentinel

uint64_t HashVectorValue(const Vector& vec, sel_t pos) {
  switch (vec.type()) {
    case TypeId::kU8:
      return HashInt(vec.Data<uint8_t>()[pos]);
    case TypeId::kI32:
      return HashInt(static_cast<uint64_t>(vec.Data<int32_t>()[pos]));
    case TypeId::kI64:
      return HashInt(static_cast<uint64_t>(vec.Data<int64_t>()[pos]));
    case TypeId::kF64:
      return HashInt(static_cast<uint64_t>(vec.Data<double>()[pos]));
    case TypeId::kStr: {
      const StringVal& s = vec.Data<StringVal>()[pos];
      return HashBytes(s.ptr, s.len);
    }
  }
  return 0;
}

uint64_t HashStoreValue(const ColumnStore& col, size_t row) {
  switch (col.type()) {
    case TypeId::kU8:
      return HashInt(col.Get<uint8_t>(row));
    case TypeId::kI32:
      return HashInt(static_cast<uint64_t>(col.Get<int32_t>(row)));
    case TypeId::kI64:
      return HashInt(static_cast<uint64_t>(col.Get<int64_t>(row)));
    case TypeId::kF64:
      return HashInt(static_cast<uint64_t>(col.Get<double>(row)));
    case TypeId::kStr: {
      const StringVal& s = col.Strs()[row];
      return HashBytes(s.ptr, s.len);
    }
  }
  return 0;
}

bool ValueEquals(const Vector& vec, sel_t pos, const ColumnStore& col,
                 size_t row) {
  switch (vec.type()) {
    case TypeId::kU8:
      return vec.Data<uint8_t>()[pos] == col.Get<uint8_t>(row);
    case TypeId::kI32:
      return vec.Data<int32_t>()[pos] == col.Get<int32_t>(row);
    case TypeId::kI64:
      return vec.Data<int64_t>()[pos] == col.Get<int64_t>(row);
    case TypeId::kF64:
      return vec.Data<double>()[pos] == col.Get<double>(row);
    case TypeId::kStr:
      return vec.Data<StringVal>()[pos] == col.Strs()[row];
  }
  return false;
}

// Gathers probe-side column values at pair positions into `out`.
void GatherProbe(const Vector& src, const sel_t* positions, size_t n,
                 Vector* out) {
  switch (src.type()) {
    case TypeId::kU8:
      prim::Gather<uint8_t>(src.Data<uint8_t>(), positions, n,
                            out->Data<uint8_t>());
      break;
    case TypeId::kI32:
      prim::Gather<int32_t>(src.Data<int32_t>(), positions, n,
                            out->Data<int32_t>());
      break;
    case TypeId::kI64:
      prim::Gather<int64_t>(src.Data<int64_t>(), positions, n,
                            out->Data<int64_t>());
      break;
    case TypeId::kF64:
      prim::Gather<double>(src.Data<double>(), positions, n,
                           out->Data<double>());
      break;
    case TypeId::kStr:
      prim::Gather<StringVal>(src.Data<StringVal>(), positions, n,
                              out->Data<StringVal>());
      out->AddHeapsFrom(src);
      break;
  }
}

void ZeroFill(Vector* out, size_t i) {
  switch (out->type()) {
    case TypeId::kU8:
      out->Data<uint8_t>()[i] = 0;
      break;
    case TypeId::kI32:
      out->Data<int32_t>()[i] = 0;
      break;
    case TypeId::kI64:
      out->Data<int64_t>()[i] = 0;
      break;
    case TypeId::kF64:
      out->Data<double>()[i] = 0;
      break;
    case TypeId::kStr:
      out->Data<StringVal>()[i] = StringVal();
      break;
  }
}

}  // namespace

HashJoinOperator::HashJoinOperator(OperatorPtr probe, OperatorPtr build,
                                   Spec spec, const Config& config)
    : probe_(InterposeChild(std::move(probe), config, "hash_join.probe")),
      build_(InterposeChild(std::move(build), config, "hash_join.build")),
      spec_(std::move(spec)),
      config_(config) {
  out_types_ = probe_->OutputTypes();
  if (spec_.type == JoinType::kInner || spec_.type == JoinType::kLeftOuter) {
    for (size_t c : spec_.build_payload) {
      out_types_.push_back(build_->OutputTypes()[c]);
    }
    if (spec_.type == JoinType::kLeftOuter) out_types_.push_back(TypeId::kU8);
  }
}

HashJoinOperator::~HashJoinOperator() = default;

Status HashJoinOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(probe_->Open(ctx()));
  VWISE_RETURN_IF_ERROR(build_->Open(ctx()));
  mem_.Bind(ctx(), "hash join build side");
  for (size_t c : spec_.build_keys) {
    build_key_cols_.emplace_back(build_->OutputTypes()[c]);
  }
  for (size_t c : spec_.build_payload) {
    build_payload_cols_.emplace_back(build_->OutputTypes()[c]);
  }
  VWISE_RETURN_IF_ERROR(ConsumeBuildSide());
  input_.Init(probe_->OutputTypes(), config_.vector_size);
  input_exhausted_ = false;
  pair_cursor_ = 0;
  pairs_.clear();
  probe_pos_ = ctx()->scratch()->AcquireArray<sel_t>(config_.vector_size);
  build_row_idx_ =
      ctx()->scratch()->AcquireArray<uint32_t>(config_.vector_size);
  residual_sel_ = ctx()->scratch()->AcquireArray<sel_t>(config_.vector_size);
  if (spec_.residual) {
    VWISE_RETURN_IF_ERROR(spec_.residual->Prepare(config_.vector_size));
    // The residual sees [probe columns..., build payload...].
    std::vector<TypeId> types = probe_->OutputTypes();
    for (size_t c : spec_.build_payload) types.push_back(build_->OutputTypes()[c]);
    residual_scratch_.Init(types, config_.vector_size);
  }
  return Status::OK();
}

Status HashJoinOperator::ConsumeBuildSide() {
  DataChunk chunk;
  chunk.Init(build_->OutputTypes(), config_.vector_size);
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    chunk.Reset();
    VWISE_RETURN_IF_ERROR(build_->Next(&chunk));
    size_t n = chunk.ActiveCount();
    if (n == 0) break;
    VWISE_RETURN_IF_ERROR(mem_.Grow(EstimateChunkBytes(chunk)));
    const sel_t* sel = chunk.sel();
    for (size_t k = 0; k < spec_.build_keys.size(); k++) {
      build_key_cols_[k].AppendFrom(chunk.column(spec_.build_keys[k]), sel, n);
    }
    for (size_t k = 0; k < spec_.build_payload.size(); k++) {
      build_payload_cols_[k].AppendFrom(chunk.column(spec_.build_payload[k]), sel, n);
    }
    build_rows_ += n;
  }
  build_->Close();
  // Chained hash table over the stored rows.
  size_t buckets = bit::NextPowerOfTwo(build_rows_ * 2 + 1);
  VWISE_RETURN_IF_ERROR(
      mem_.Grow(buckets * sizeof(uint32_t) + build_rows_ * sizeof(uint32_t)));
  bucket_heads_.assign(buckets, kNoRow);
  bucket_mask_ = buckets - 1;
  chain_next_.assign(build_rows_, kNoRow);
  for (size_t row = 0; row < build_rows_; row++) {
    uint64_t h = HashBuildRow(row) & bucket_mask_;
    chain_next_[row] = bucket_heads_[h];
    bucket_heads_[h] = static_cast<uint32_t>(row);
  }
  return Status::OK();
}

uint64_t HashJoinOperator::HashBuildRow(size_t row) const {
  uint64_t h = 0;
  for (const ColumnStore& col : build_key_cols_) {
    h = HashCombine(h, HashStoreValue(col, row));
  }
  return h;
}

uint64_t HashJoinOperator::HashProbeRow(const DataChunk& chunk,
                                        sel_t pos) const {
  uint64_t h = 0;
  for (size_t k = 0; k < spec_.probe_keys.size(); k++) {
    h = HashCombine(h, HashVectorValue(chunk.column(spec_.probe_keys[k]), pos));
  }
  return h;
}

bool HashJoinOperator::KeysEqual(const DataChunk& chunk, sel_t pos,
                                 size_t build_row) const {
  for (size_t k = 0; k < spec_.probe_keys.size(); k++) {
    if (!ValueEquals(chunk.column(spec_.probe_keys[k]), pos,
                     build_key_cols_[k], build_row)) {
      return false;
    }
  }
  return true;
}

Status HashJoinOperator::ProcessProbeChunk() {
  pairs_.clear();
  pair_cursor_ = 0;
  size_t n = input_.ActiveCount();
  const sel_t* sel = input_.sel();
  // vwise-hotpath: allow(alloc): capacity stabilizes at one vector after the
  // first full chunk; assign then only zero-fills
  probe_match_.assign(input_.count(), 0);

  // 1. Candidate pairs by hash + key equality. candidates_ keeps its
  // capacity across chunks, so growth stops once the noisiest chunk has
  // been seen.
  candidates_.clear();
  for (size_t i = 0; i < n; i++) {
    sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
    if (build_rows_ > 0) {
      uint64_t h = HashProbeRow(input_, pos) & bucket_mask_;
      for (uint32_t row = bucket_heads_[h]; row != kNoRow; row = chain_next_[row]) {
        // vwise-hotpath: allow(alloc): amortized growth, capacity persists
        // across probe chunks
        if (KeysEqual(input_, pos, row)) candidates_.push_back(Pair{pos, row});
      }
    }
  }

  // 2. Residual predicate over the combined pair rows, in vector batches.
  if (spec_.residual && !candidates_.empty()) {
    size_t n_probe_cols = input_.num_columns();
    sel_t* probe_pos = probe_pos_.data<sel_t>();
    uint32_t* build_rows = build_row_idx_.data<uint32_t>();
    sel_t* out_sel = residual_sel_.data<sel_t>();
    for (size_t base = 0; base < candidates_.size(); base += config_.vector_size) {
      size_t batch = std::min(config_.vector_size, candidates_.size() - base);
      for (size_t i = 0; i < batch; i++) {
        probe_pos[i] = candidates_[base + i].probe_pos;
        build_rows[i] = candidates_[base + i].build_row;
      }
      residual_scratch_.Reset();
      for (size_t c = 0; c < n_probe_cols; c++) {
        GatherProbe(input_.column(c), probe_pos, batch,
                    &residual_scratch_.column(c));
      }
      for (size_t k = 0; k < build_payload_cols_.size(); k++) {
        build_payload_cols_[k].Gather(build_rows, batch,
                                      &residual_scratch_.column(n_probe_cols + k));
      }
      residual_scratch_.SetCount(batch);
      size_t kept = 0;
      // vwise-hotpath: allow(virtual-in-loop): loop is over candidate
      // batches of vector_size — one Select dispatch per batch
      VWISE_RETURN_IF_ERROR(spec_.residual->Select(residual_scratch_, nullptr,
                                                   batch, out_sel, &kept));
      for (size_t i = 0; i < kept; i++) {
        // vwise-hotpath: allow(alloc): amortized growth, capacity persists
        pairs_.push_back(candidates_[base + out_sel[i]]);
      }
    }
  } else {
    std::swap(pairs_, candidates_);
  }

  for (const Pair& p : pairs_) probe_match_[p.probe_pos] = 1;

  // Semi/anti joins consume only the match flags; leaving the pairs around
  // would make the emit loop treat them as inner-join output.
  if (spec_.type == JoinType::kLeftSemi || spec_.type == JoinType::kLeftAnti) {
    pairs_.clear();
    pair_cursor_ = 0;
  }

  // 3. Left outer: append unmatched probe rows as sentinel pairs, keeping
  // the overall probe order stable enough for tests.
  if (spec_.type == JoinType::kLeftOuter) {
    for (size_t i = 0; i < n; i++) {
      sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
      // vwise-hotpath: allow(alloc): amortized growth, capacity persists
      if (!probe_match_[pos]) pairs_.push_back(Pair{pos, kNoRow});
    }
  }
  return Status::OK();
}

void HashJoinOperator::EmitPairs(DataChunk* out) {
  size_t batch = std::min(out->capacity(), pairs_.size() - pair_cursor_);
  // The gather runs through the arena-leased index arrays, so cap the batch
  // at one vector (out may be larger).
  batch = std::min(batch, config_.vector_size);
  sel_t* probe_pos = probe_pos_.data<sel_t>();
  uint32_t* build_rows = build_row_idx_.data<uint32_t>();
  for (size_t i = 0; i < batch; i++) {
    probe_pos[i] = pairs_[pair_cursor_ + i].probe_pos;
    build_rows[i] = pairs_[pair_cursor_ + i].build_row;
  }
  pair_cursor_ += batch;
  size_t n_probe_cols = input_.num_columns();
  for (size_t c = 0; c < n_probe_cols; c++) {
    GatherProbe(input_.column(c), probe_pos, batch, &out->column(c));
  }
  // Payload: sentinel rows (unmatched outer) get zero/empty values.
  bool has_sentinel = false;
  for (size_t i = 0; i < batch; i++) has_sentinel |= (build_rows[i] == kNoRow);
  for (size_t k = 0; k < build_payload_cols_.size(); k++) {
    Vector& dst = out->column(n_probe_cols + k);
    if (!has_sentinel) {
      build_payload_cols_[k].Gather(build_rows, batch, &dst);
    } else {
      const ColumnStore& store = build_payload_cols_[k];
      for (size_t i = 0; i < batch; i++) {
        if (build_rows[i] == kNoRow) {
          ZeroFill(&dst, i);
          continue;
        }
        size_t row = build_rows[i];
        switch (dst.type()) {
          case TypeId::kU8:
            dst.Data<uint8_t>()[i] = store.Get<uint8_t>(row);
            break;
          case TypeId::kI32:
            dst.Data<int32_t>()[i] = store.Get<int32_t>(row);
            break;
          case TypeId::kI64:
            dst.Data<int64_t>()[i] = store.Get<int64_t>(row);
            break;
          case TypeId::kF64:
            dst.Data<double>()[i] = store.Get<double>(row);
            break;
          case TypeId::kStr:
            dst.Data<StringVal>()[i] = store.Strs()[row];
            break;
        }
      }
      if (store.heap()) dst.AddStringHeapRef(store.heap());
    }
  }
  if (spec_.type == JoinType::kLeftOuter) {
    uint8_t* flag = out->column(out_types_.size() - 1).Data<uint8_t>();
    for (size_t i = 0; i < batch; i++) flag[i] = build_rows[i] != kNoRow;
  }
  out->SetCount(batch);
}

Status HashJoinOperator::EmitSemiAnti(DataChunk* out) {
  size_t n = input_.ActiveCount();
  const sel_t* sel = input_.sel();
  bool want_match = spec_.type == JoinType::kLeftSemi;
  for (size_t c = 0; c < input_.num_columns(); c++) {
    out->column(c).Reference(input_.column(c));
  }
  out->SetCount(input_.count());
  sel_t* out_sel = out->MutableSel();
  size_t k = 0;
  for (size_t i = 0; i < n; i++) {
    sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
    if (static_cast<bool>(probe_match_[pos]) == want_match) out_sel[k++] = pos;
  }
  out->SetSelection(k);
  return Status::OK();
}

Status HashJoinOperator::Next(DataChunk* out) {
  while (true) {
    if (pair_cursor_ < pairs_.size()) {
      EmitPairs(out);
      return Status::OK();
    }
    if (input_exhausted_) {
      out->SetCount(0);
      return Status::OK();
    }
    input_.Reset();
    VWISE_RETURN_IF_ERROR(probe_->Next(&input_));
    if (input_.ActiveCount() == 0) {
      input_exhausted_ = true;
      continue;
    }
    VWISE_RETURN_IF_ERROR(ProcessProbeChunk());
    if (spec_.type == JoinType::kLeftSemi || spec_.type == JoinType::kLeftAnti) {
      VWISE_RETURN_IF_ERROR(EmitSemiAnti(out));
      if (out->ActiveCount() == 0) continue;  // nothing qualified: next chunk
      return Status::OK();
    }
  }
}

void HashJoinOperator::Close() {
  probe_->Close();
  // Normally closed at the end of ConsumeBuildSide; close again (idempotent)
  // so an error/cancel unwind still reaches fragments below.
  build_->Close();
  build_key_cols_.clear();
  build_payload_cols_.clear();
  bucket_heads_.clear();
  chain_next_.clear();
  probe_pos_.Release();
  build_row_idx_.Release();
  residual_sel_.Release();
  mem_.ReleaseAll();
}

}  // namespace vwise
