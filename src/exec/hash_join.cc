#include "exec/hash_join.h"

#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/bitutil.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "exec/profile.h"
#include "expr/primitives.h"
#include "storage/spill_file.h"

namespace vwise {

namespace {

constexpr uint32_t kNoRow = 0xffffffffu;  // unmatched-probe sentinel

uint64_t HashVectorValue(const Vector& vec, sel_t pos) {
  switch (vec.type()) {
    case TypeId::kU8:
      return HashInt(vec.Data<uint8_t>()[pos]);
    case TypeId::kI32:
      return HashInt(static_cast<uint64_t>(vec.Data<int32_t>()[pos]));
    case TypeId::kI64:
      return HashInt(static_cast<uint64_t>(vec.Data<int64_t>()[pos]));
    case TypeId::kF64:
      return HashInt(static_cast<uint64_t>(vec.Data<double>()[pos]));
    case TypeId::kStr: {
      const StringVal& s = vec.Data<StringVal>()[pos];
      return HashBytes(s.ptr, s.len);
    }
  }
  return 0;
}

uint64_t HashStoreValue(const ColumnStore& col, size_t row) {
  switch (col.type()) {
    case TypeId::kU8:
      return HashInt(col.Get<uint8_t>(row));
    case TypeId::kI32:
      return HashInt(static_cast<uint64_t>(col.Get<int32_t>(row)));
    case TypeId::kI64:
      return HashInt(static_cast<uint64_t>(col.Get<int64_t>(row)));
    case TypeId::kF64:
      return HashInt(static_cast<uint64_t>(col.Get<double>(row)));
    case TypeId::kStr: {
      const StringVal& s = col.Strs()[row];
      return HashBytes(s.ptr, s.len);
    }
  }
  return 0;
}

bool ValueEquals(const Vector& vec, sel_t pos, const ColumnStore& col,
                 size_t row) {
  switch (vec.type()) {
    case TypeId::kU8:
      return vec.Data<uint8_t>()[pos] == col.Get<uint8_t>(row);
    case TypeId::kI32:
      return vec.Data<int32_t>()[pos] == col.Get<int32_t>(row);
    case TypeId::kI64:
      return vec.Data<int64_t>()[pos] == col.Get<int64_t>(row);
    case TypeId::kF64:
      return vec.Data<double>()[pos] == col.Get<double>(row);
    case TypeId::kStr:
      return vec.Data<StringVal>()[pos] == col.Strs()[row];
  }
  return false;
}

// Gathers probe-side column values at pair positions into `out`.
void GatherProbe(const Vector& src, const sel_t* positions, size_t n,
                 Vector* out) {
  switch (src.type()) {
    case TypeId::kU8:
      prim::Gather<uint8_t>(src.Data<uint8_t>(), positions, n,
                            out->Data<uint8_t>());
      break;
    case TypeId::kI32:
      prim::Gather<int32_t>(src.Data<int32_t>(), positions, n,
                            out->Data<int32_t>());
      break;
    case TypeId::kI64:
      prim::Gather<int64_t>(src.Data<int64_t>(), positions, n,
                            out->Data<int64_t>());
      break;
    case TypeId::kF64:
      prim::Gather<double>(src.Data<double>(), positions, n,
                           out->Data<double>());
      break;
    case TypeId::kStr:
      prim::Gather<StringVal>(src.Data<StringVal>(), positions, n,
                              out->Data<StringVal>());
      out->AddHeapsFrom(src);
      break;
  }
}

void ZeroFill(Vector* out, size_t i) {
  switch (out->type()) {
    case TypeId::kU8:
      out->Data<uint8_t>()[i] = 0;
      break;
    case TypeId::kI32:
      out->Data<int32_t>()[i] = 0;
      break;
    case TypeId::kI64:
      out->Data<int64_t>()[i] = 0;
      break;
    case TypeId::kF64:
      out->Data<double>()[i] = 0;
      break;
    case TypeId::kStr:
      out->Data<StringVal>()[i] = StringVal();
      break;
  }
}

// Hash of the listed key columns at one chunk position — the shared key
// hash for table lookup and radix partitioning (both sides must agree).
uint64_t HashChunkKeys(const DataChunk& chunk, sel_t pos,
                       const std::vector<size_t>& keys) {
  uint64_t h = 0;
  for (size_t c : keys) {
    h = HashCombine(h, HashVectorValue(chunk.column(c), pos));
  }
  return h;
}

}  // namespace

HashJoinOperator::HashJoinOperator(OperatorPtr probe, OperatorPtr build,
                                   Spec spec, const Config& config)
    : probe_(InterposeChild(std::move(probe), config, "hash_join.probe")),
      build_(InterposeChild(std::move(build), config, "hash_join.build")),
      spec_(std::move(spec)),
      config_(config) {
  out_types_ = probe_->OutputTypes();
  if (spec_.type == JoinType::kInner || spec_.type == JoinType::kLeftOuter) {
    for (size_t c : spec_.build_payload) {
      out_types_.push_back(build_->OutputTypes()[c]);
    }
    if (spec_.type == JoinType::kLeftOuter) out_types_.push_back(TypeId::kU8);
  }
}

HashJoinOperator::~HashJoinOperator() { DropSpillFiles(); }

Status HashJoinOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(probe_->Open(ctx()));
  VWISE_RETURN_IF_ERROR(build_->Open(ctx()));
  mem_.Bind(ctx(), "hash join build side");
  // Reset pipeline-breaker state from a previous execution of a prepared
  // plan: build_rows_ in particular survives Close(), and a stale count
  // would make BuildTable() index past the freshly rebuilt stores.
  build_key_cols_.clear();
  build_payload_cols_.clear();
  build_rows_ = 0;
  build_bytes_ = 0;
  bucket_heads_.clear();
  chain_next_.clear();
  spilled_ = false;
  probe_partitioned_ = false;
  spill_partitions_stat_ = 0;
  spill_repartitions_stat_ = 0;
  spill_depth_stat_ = 0;
  DropSpillFiles();
  for (size_t c : spec_.build_keys) {
    build_key_cols_.emplace_back(build_->OutputTypes()[c]);
  }
  for (size_t c : spec_.build_payload) {
    build_payload_cols_.emplace_back(build_->OutputTypes()[c]);
  }
  VWISE_RETURN_IF_ERROR(ConsumeBuildSide());
  input_.Init(probe_->OutputTypes(), config_.vector_size);
  input_exhausted_ = false;
  pair_cursor_ = 0;
  pairs_.clear();
  probe_pos_ = ctx()->scratch()->AcquireArray<sel_t>(config_.vector_size);
  build_row_idx_ =
      ctx()->scratch()->AcquireArray<uint32_t>(config_.vector_size);
  residual_sel_ = ctx()->scratch()->AcquireArray<sel_t>(config_.vector_size);
  if (spec_.residual) {
    VWISE_RETURN_IF_ERROR(spec_.residual->Prepare(config_.vector_size));
    // The residual sees [probe columns..., build payload...].
    std::vector<TypeId> types = probe_->OutputTypes();
    for (size_t c : spec_.build_payload) types.push_back(build_->OutputTypes()[c]);
    residual_scratch_.Init(types, config_.vector_size);
  }
  return Status::OK();
}

Status HashJoinOperator::ConsumeBuildSide() {
  DataChunk chunk;
  chunk.Init(build_->OutputTypes(), config_.vector_size);
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    chunk.Reset();
    VWISE_RETURN_IF_ERROR(build_->Next(&chunk));
    size_t n = chunk.ActiveCount();
    if (n == 0) break;
    // Key hashing, the column-store copies, and the spill writers all read
    // values positionally; decode any encoded columns first.
    chunk.NormalizeColumns();
    if (spilled_) {
      // Already degraded: route the chunk straight to the partition files.
      VWISE_RETURN_IF_ERROR(PartitionBuildChunk(chunk));
      continue;
    }
    size_t grow = EstimateChunkBytes(chunk);
    Status reserve = mem_.Grow(grow);
    if (!reserve.ok()) {
      if (reserve.code() != StatusCode::kResourceExhausted ||
          !config_.enable_spill) {
        return reserve;
      }
      // Budget hit: flush the buffered rows to radix partitions (returns
      // their reservation) and stream the rest of the build side to disk.
      VWISE_RETURN_IF_ERROR(SpillBuildRows());
      VWISE_RETURN_IF_ERROR(PartitionBuildChunk(chunk));
      continue;
    }
    build_bytes_ += grow;
    const sel_t* sel = chunk.sel();
    for (size_t k = 0; k < spec_.build_keys.size(); k++) {
      build_key_cols_[k].AppendFrom(chunk.column(spec_.build_keys[k]), sel, n);
    }
    for (size_t k = 0; k < spec_.build_payload.size(); k++) {
      build_payload_cols_[k].AppendFrom(chunk.column(spec_.build_payload[k]), sel, n);
    }
    build_rows_ += n;
    // Governor pressure signal (polled alongside ctx()->Check() above):
    // queries are waiting for global memory, so proactively flush the
    // buffered rows and shrink this reservation instead of holding it until
    // the budget forces the issue.
    if (config_.enable_spill && mem_.bytes() >= config_.pressure_spill_min_bytes &&
        ctx()->MemoryPressure()) {
      VWISE_RETURN_IF_ERROR(SpillBuildRows());
      ctx()->NotePressureSpill();
      continue;
    }
    // Coexistence cap: cap the in-memory build side at half the budget so
    // other pipeline breakers in the same query (aggregations, sorts) keep
    // enough headroom for their own buffers and partition reloads.
    if (config_.enable_spill && ctx()->memory_budget() > 0 &&
        mem_.bytes() > ctx()->memory_budget() / 2) {
      VWISE_RETURN_IF_ERROR(SpillBuildRows());
    }
  }
  build_->Close();
  if (spilled_) {
    // Close the partition files; tables are built per partition at probe
    // time (LoadBuildPartition).
    build_writers_.clear();
    return Status::OK();
  }
  return BuildTable();
}

Status HashJoinOperator::BuildTable() {
  // Chained hash table over the stored rows.
  size_t buckets = bit::NextPowerOfTwo(build_rows_ * 2 + 1);
  size_t table_bytes = buckets * sizeof(uint32_t) + build_rows_ * sizeof(uint32_t);
  VWISE_RETURN_IF_ERROR(mem_.Grow(table_bytes));
  build_bytes_ += table_bytes;
  bucket_heads_.assign(buckets, kNoRow);
  bucket_mask_ = buckets - 1;
  chain_next_.assign(build_rows_, kNoRow);
  for (size_t row = 0; row < build_rows_; row++) {
    uint64_t h = HashBuildRow(row) & bucket_mask_;
    chain_next_[row] = bucket_heads_[h];
    bucket_heads_[h] = static_cast<uint32_t>(row);
  }
  return Status::OK();
}

Status HashJoinOperator::SpillBuildRows() {
  if (build_writers_.empty()) {
    spilled_ = true;
    n_partitions_ = SpillPartitionCount(config_.spill_partitions);
    spill_partitions_stat_ = n_partitions_;
    // Spill rows keep only the columns the join retains: keys then payload.
    spill_types_.clear();
    for (size_t c : spec_.build_keys) {
      spill_types_.push_back(build_->OutputTypes()[c]);
    }
    for (size_t c : spec_.build_payload) {
      spill_types_.push_back(build_->OutputTypes()[c]);
    }
    for (size_t p = 0; p < n_partitions_; p++) {
      std::string path;
      VWISE_ASSIGN_OR_RETURN(path, ctx()->NewSpillPath("join_build"));
      build_paths_.push_back(path);
      std::unique_ptr<SpillWriter> writer;
      VWISE_ASSIGN_OR_RETURN(writer,
                             SpillWriter::Create(path, spill_types_,
                                                 &ctx()->spill_counters()));
      build_writers_.push_back(std::move(writer));
    }
    build_view_.Init(spill_types_, 1);
    part_rows_.assign(n_partitions_, {});
  }
  // Partition on HIGH hash bits; the per-partition table masks the low bits,
  // so low-bit partitioning would collapse each partition into few buckets.
  for (auto& rows : part_rows_) rows.clear();
  for (uint32_t row = 0; row < build_rows_; row++) {
    part_rows_[(HashBuildRow(row) >> 56) & (n_partitions_ - 1)].push_back(row);
  }
  DataChunk scratch;
  scratch.Init(spill_types_, config_.vector_size);
  size_t n_keys = spec_.build_keys.size();
  for (size_t p = 0; p < n_partitions_; p++) {
    const std::vector<sel_t>& ids = part_rows_[p];
    for (size_t i = 0; i < ids.size(); i += scratch.capacity()) {
      VWISE_RETURN_IF_ERROR(ctx()->Check());
      size_t batch = std::min(scratch.capacity(), ids.size() - i);
      scratch.Reset();
      for (size_t k = 0; k < n_keys; k++) {
        build_key_cols_[k].Gather(ids.data() + i, batch, &scratch.column(k));
      }
      for (size_t k = 0; k < build_payload_cols_.size(); k++) {
        build_payload_cols_[k].Gather(ids.data() + i, batch,
                                      &scratch.column(n_keys + k));
      }
      scratch.SetCount(batch);
      VWISE_RETURN_IF_ERROR(build_writers_[p]->Append(scratch));
    }
  }
  // Rebuild empty stores and give back the reservation the rows held.
  build_key_cols_.clear();
  build_payload_cols_.clear();
  for (size_t c : spec_.build_keys) {
    build_key_cols_.emplace_back(build_->OutputTypes()[c]);
  }
  for (size_t c : spec_.build_payload) {
    build_payload_cols_.emplace_back(build_->OutputTypes()[c]);
  }
  build_rows_ = 0;
  mem_.Shrink(build_bytes_);
  build_bytes_ = 0;
  return Status::OK();
}

Status HashJoinOperator::PartitionBuildChunk(const DataChunk& chunk) {
  size_t n = chunk.ActiveCount();
  const sel_t* sel = chunk.sel();
  for (auto& rows : part_rows_) rows.clear();
  for (size_t i = 0; i < n; i++) {
    sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
    uint64_t h = HashChunkKeys(chunk, pos, spec_.build_keys);
    part_rows_[(h >> 56) & (n_partitions_ - 1)].push_back(pos);
  }
  // View the chunk through the spill schema (keys then payload) so the
  // writers see matching column lists; Reference shares the buffers.
  size_t n_keys = spec_.build_keys.size();
  for (size_t k = 0; k < n_keys; k++) {
    build_view_.column(k).Reference(chunk.column(spec_.build_keys[k]));
  }
  for (size_t k = 0; k < spec_.build_payload.size(); k++) {
    build_view_.column(n_keys + k).Reference(
        chunk.column(spec_.build_payload[k]));
  }
  for (size_t p = 0; p < n_partitions_; p++) {
    VWISE_RETURN_IF_ERROR(build_writers_[p]->AppendRows(
        build_view_, part_rows_[p].data(), part_rows_[p].size()));
  }
  return Status::OK();
}

Status HashJoinOperator::PartitionProbeSide() {
  for (size_t p = 0; p < n_partitions_; p++) {
    std::string path;
    VWISE_ASSIGN_OR_RETURN(path, ctx()->NewSpillPath("join_probe"));
    probe_paths_.push_back(path);
    std::unique_ptr<SpillWriter> writer;
    VWISE_ASSIGN_OR_RETURN(writer,
                           SpillWriter::Create(path, probe_->OutputTypes(),
                                               &ctx()->spill_counters()));
    probe_writers_.push_back(std::move(writer));
  }
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    input_.Reset();
    VWISE_RETURN_IF_ERROR(probe_->Next(&input_));
    size_t n = input_.ActiveCount();
    if (n == 0) break;
    input_.NormalizeColumns();
    const sel_t* sel = input_.sel();
    for (auto& rows : part_rows_) rows.clear();
    for (size_t i = 0; i < n; i++) {
      sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
      uint64_t h = HashProbeRow(input_, pos);
      part_rows_[(h >> 56) & (n_partitions_ - 1)].push_back(pos);
    }
    for (size_t p = 0; p < n_partitions_; p++) {
      VWISE_RETURN_IF_ERROR(probe_writers_[p]->AppendRows(
          input_, part_rows_[p].data(), part_rows_[p].size()));
    }
  }
  probe_->Close();
  probe_writers_.clear();  // close the files; readers reopen them
  return Status::OK();
}

void HashJoinOperator::ReleaseBuildSide() {
  // Swap out the resident partition's rows + table and their reservation.
  mem_.Shrink(build_bytes_);
  build_bytes_ = 0;
  build_key_cols_.clear();
  build_payload_cols_.clear();
  for (size_t c : spec_.build_keys) {
    build_key_cols_.emplace_back(build_->OutputTypes()[c]);
  }
  for (size_t c : spec_.build_payload) {
    build_payload_cols_.emplace_back(build_->OutputTypes()[c]);
  }
  build_rows_ = 0;
  bucket_heads_.clear();
  chain_next_.clear();
}

Status HashJoinOperator::LoadBuildPartition(const std::string& path) {
  ReleaseBuildSide();
  std::unique_ptr<SpillReader> reader;
  VWISE_ASSIGN_OR_RETURN(reader,
                         SpillReader::Open(path, spill_types_,
                                           &ctx()->spill_counters()));
  DataChunk chunk;
  chunk.Init(spill_types_, config_.vector_size);
  size_t n_keys = spec_.build_keys.size();
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    bool more = false;
    VWISE_ASSIGN_OR_RETURN(more, reader->Next(&chunk));
    if (!more) break;
    size_t n = chunk.count();  // spill chunks are dense
    // ResourceExhausted here means this partition alone exceeds the budget;
    // the caller re-partitions it onto a fresh radix level (bounded by
    // Config::spill_max_repartition_depth) instead of failing the query.
    size_t grow = EstimateChunkBytes(chunk);
    VWISE_RETURN_IF_ERROR(mem_.Grow(grow));
    build_bytes_ += grow;
    for (size_t k = 0; k < n_keys; k++) {
      build_key_cols_[k].AppendFrom(chunk.column(k), nullptr, n);
    }
    for (size_t k = 0; k < build_payload_cols_.size(); k++) {
      build_payload_cols_[k].AppendFrom(chunk.column(n_keys + k), nullptr, n);
    }
    build_rows_ += n;
  }
  return BuildTable();
}

size_t HashJoinOperator::RepartitionFanout(uint64_t part_bytes) const {
  // Aim each child at a fraction of the budget: serialized spill bytes
  // understate resident bytes (string headers, table overhead), and the
  // reload must coexist with the probe stream. Per-level fanout is capped at
  // the configured partition count — every child holds an open writer pair
  // with its own buffers, so one level never fans wider than the initial
  // flush did; depth supplies the remaining capacity (fanout^depth).
  size_t budget = ctx()->memory_budget();
  uint64_t target = budget > 0 ? static_cast<uint64_t>(budget) / 4
                               : (32ull << 20);
  if (target == 0) target = 1;
  uint64_t need = part_bytes / target + 2;
  size_t fanout =
      SpillPartitionCount(static_cast<size_t>(need > 256 ? 256 : need));
  size_t cap = SpillPartitionCount(config_.spill_partitions);
  return fanout > cap ? cap : fanout;
}

Status HashJoinOperator::RepartitionPartition(const SpillPartition& part) {
  VWISE_FAILPOINT("spill.repartition");
  // Drop whatever the failed load left resident before touching disk.
  ReleaseBuildSide();
  size_t level = part.level + 1;
  // A fresh radix byte per level: level L routes on hash bits
  // [56 - 8L, 64 - 8L). Level 0 used the top byte, so children split what
  // their parent could not. Depth is bounded by spill_max_repartition_depth
  // (and usefully by the 8 hash bytes); duplicate-key floods that no byte
  // can split exhaust the bound and fail cleanly.
  size_t shift = 56 - 8 * (level <= 7 ? level : 7);
  std::error_code ec;
  uint64_t build_bytes = std::filesystem::file_size(part.build_path, ec);
  if (ec) build_bytes = 0;
  size_t fanout = RepartitionFanout(build_bytes);
  spill_repartitions_stat_++;
  if (level > spill_depth_stat_) spill_depth_stat_ = level;
  spill_partitions_stat_ += fanout;

  std::vector<SpillPartition> children(fanout);
  std::vector<std::unique_ptr<SpillWriter>> bw(fanout);
  std::vector<std::unique_ptr<SpillWriter>> pw(fanout);
  for (size_t f = 0; f < fanout; f++) {
    children[f].level = level;
    VWISE_ASSIGN_OR_RETURN(children[f].build_path,
                           ctx()->NewSpillPath("join_build_r"));
    VWISE_ASSIGN_OR_RETURN(bw[f],
                           SpillWriter::Create(children[f].build_path,
                                               spill_types_,
                                               &ctx()->spill_counters()));
    VWISE_ASSIGN_OR_RETURN(children[f].probe_path,
                           ctx()->NewSpillPath("join_probe_r"));
    VWISE_ASSIGN_OR_RETURN(pw[f],
                           SpillWriter::Create(children[f].probe_path,
                                               probe_->OutputTypes(),
                                               &ctx()->spill_counters()));
  }

  // Stream the parent build file into the children. Spill chunks are dense;
  // keys sit at columns [0, n_keys) of the spill schema.
  std::vector<size_t> spill_keys(spec_.build_keys.size());
  for (size_t k = 0; k < spill_keys.size(); k++) spill_keys[k] = k;
  part_rows_.assign(fanout, {});
  {
    std::unique_ptr<SpillReader> reader;
    VWISE_ASSIGN_OR_RETURN(reader,
                           SpillReader::Open(part.build_path, spill_types_,
                                             &ctx()->spill_counters()));
    DataChunk chunk;
    chunk.Init(spill_types_, config_.vector_size);
    while (true) {
      VWISE_RETURN_IF_ERROR(ctx()->Check());
      bool more = false;
      VWISE_ASSIGN_OR_RETURN(more, reader->Next(&chunk));
      if (!more) break;
      size_t n = chunk.count();
      for (auto& rows : part_rows_) rows.clear();
      for (size_t i = 0; i < n; i++) {
        uint64_t h = HashChunkKeys(chunk, static_cast<sel_t>(i), spill_keys);
        part_rows_[(h >> shift) & (fanout - 1)].push_back(
            static_cast<sel_t>(i));
      }
      for (size_t f = 0; f < fanout; f++) {
        VWISE_RETURN_IF_ERROR(
            bw[f]->AppendRows(chunk, part_rows_[f].data(),
                              part_rows_[f].size()));
      }
    }
  }
  // And the parent probe file, routed by the same hash bits of the same key
  // hash — matching rows land in matching children.
  {
    std::unique_ptr<SpillReader> reader;
    VWISE_ASSIGN_OR_RETURN(reader,
                           SpillReader::Open(part.probe_path,
                                             probe_->OutputTypes(),
                                             &ctx()->spill_counters()));
    DataChunk chunk;
    chunk.Init(probe_->OutputTypes(), config_.vector_size);
    while (true) {
      VWISE_RETURN_IF_ERROR(ctx()->Check());
      bool more = false;
      VWISE_ASSIGN_OR_RETURN(more, reader->Next(&chunk));
      if (!more) break;
      size_t n = chunk.count();
      for (auto& rows : part_rows_) rows.clear();
      for (size_t i = 0; i < n; i++) {
        uint64_t h = HashProbeRow(chunk, static_cast<sel_t>(i));
        part_rows_[(h >> shift) & (fanout - 1)].push_back(
            static_cast<sel_t>(i));
      }
      for (size_t f = 0; f < fanout; f++) {
        VWISE_RETURN_IF_ERROR(
            pw[f]->AppendRows(chunk, part_rows_[f].data(),
                              part_rows_[f].size()));
      }
    }
  }
  bw.clear();  // close the children before the parents are unlinked
  pw.clear();
  std::filesystem::remove(part.build_path, ec);
  std::filesystem::remove(part.probe_path, ec);
  // Depth-first: joining (or further splitting) the fresh children before
  // their siblings bounds live spill disk to one lineage per level.
  pending_.insert(pending_.begin(), children.begin(), children.end());
  return Status::OK();
}

Status HashJoinOperator::FetchProbeChunk() {
  if (!spilled_) return probe_->Next(&input_);
  if (!probe_partitioned_) {
    VWISE_RETURN_IF_ERROR(PartitionProbeSide());
    probe_partitioned_ = true;
    for (size_t p = 0; p < n_partitions_; p++) {
      pending_.push_back({build_paths_[p], probe_paths_[p], 0});
    }
    build_paths_.clear();
    probe_paths_.clear();
  }
  while (true) {
    if (probe_reader_) {
      bool more = false;
      VWISE_ASSIGN_OR_RETURN(more, probe_reader_->Next(&input_));
      if (more) return Status::OK();
      probe_reader_.reset();       // pair fully joined
      RemovePartitionFiles(&cur_);
    }
    if (pending_.empty()) return Status::OK();  // input_ empty
    cur_ = pending_.front();
    pending_.pop_front();
    // Peek the probe partition first: if it is empty there is nothing to
    // join (or, for outer joins, to pad), so skip loading its build rows.
    std::unique_ptr<SpillReader> reader;
    VWISE_ASSIGN_OR_RETURN(reader,
                           SpillReader::Open(cur_.probe_path,
                                             probe_->OutputTypes(),
                                             &ctx()->spill_counters()));
    bool more = false;
    VWISE_ASSIGN_OR_RETURN(more, reader->Next(&input_));
    if (!more) {
      RemovePartitionFiles(&cur_);
      continue;
    }
    Status load = LoadBuildPartition(cur_.build_path);
    if (!load.ok()) {
      if (load.code() != StatusCode::kResourceExhausted ||
          cur_.level >= config_.spill_max_repartition_depth) {
        return load;
      }
      // This partition alone exceeds the budget: split it onto the next
      // radix level and retry with its children. The peeked probe chunk is
      // re-read from the file by the repartition pass.
      reader.reset();
      VWISE_RETURN_IF_ERROR(RepartitionPartition(cur_));
      cur_ = SpillPartition();
      continue;
    }
    probe_reader_ = std::move(reader);
    return Status::OK();
  }
}

void HashJoinOperator::RemovePartitionFiles(SpillPartition* part) {
  std::error_code ec;
  if (!part->build_path.empty()) {
    std::filesystem::remove(part->build_path, ec);  // best effort
  }
  if (!part->probe_path.empty()) {
    std::filesystem::remove(part->probe_path, ec);
  }
  *part = SpillPartition();
}

void HashJoinOperator::DropSpillFiles() {
  build_writers_.clear();
  probe_writers_.clear();
  probe_reader_.reset();
  for (const std::string& path : build_paths_) {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // best effort; ctx dir is the backstop
  }
  for (const std::string& path : probe_paths_) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  build_paths_.clear();
  probe_paths_.clear();
  for (SpillPartition& part : pending_) RemovePartitionFiles(&part);
  pending_.clear();
  RemovePartitionFiles(&cur_);
  part_rows_.clear();
  n_partitions_ = 0;
}

uint64_t HashJoinOperator::HashBuildRow(size_t row) const {
  uint64_t h = 0;
  for (const ColumnStore& col : build_key_cols_) {
    h = HashCombine(h, HashStoreValue(col, row));
  }
  return h;
}

uint64_t HashJoinOperator::HashProbeRow(const DataChunk& chunk,
                                        sel_t pos) const {
  uint64_t h = 0;
  for (size_t k = 0; k < spec_.probe_keys.size(); k++) {
    h = HashCombine(h, HashVectorValue(chunk.column(spec_.probe_keys[k]), pos));
  }
  return h;
}

bool HashJoinOperator::KeysEqual(const DataChunk& chunk, sel_t pos,
                                 size_t build_row) const {
  for (size_t k = 0; k < spec_.probe_keys.size(); k++) {
    if (!ValueEquals(chunk.column(spec_.probe_keys[k]), pos,
                     build_key_cols_[k], build_row)) {
      return false;
    }
  }
  return true;
}

Status HashJoinOperator::ProcessProbeChunk() {
  pairs_.clear();
  pair_cursor_ = 0;
  size_t n = input_.ActiveCount();
  const sel_t* sel = input_.sel();
  // vwise-hotpath: allow(alloc): capacity stabilizes at one vector after the
  // first full chunk; assign then only zero-fills
  probe_match_.assign(input_.count(), 0);

  // 1. Candidate pairs by hash + key equality. candidates_ keeps its
  // capacity across chunks, so growth stops once the noisiest chunk has
  // been seen.
  candidates_.clear();
  for (size_t i = 0; i < n; i++) {
    sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
    if (build_rows_ > 0) {
      uint64_t h = HashProbeRow(input_, pos) & bucket_mask_;
      for (uint32_t row = bucket_heads_[h]; row != kNoRow; row = chain_next_[row]) {
        // vwise-hotpath: allow(alloc): amortized growth, capacity persists
        // across probe chunks
        if (KeysEqual(input_, pos, row)) candidates_.push_back(Pair{pos, row});
      }
    }
  }

  // 2. Residual predicate over the combined pair rows, in vector batches.
  if (spec_.residual && !candidates_.empty()) {
    size_t n_probe_cols = input_.num_columns();
    sel_t* probe_pos = probe_pos_.data<sel_t>();
    uint32_t* build_rows = build_row_idx_.data<uint32_t>();
    sel_t* out_sel = residual_sel_.data<sel_t>();
    for (size_t base = 0; base < candidates_.size(); base += config_.vector_size) {
      size_t batch = std::min(config_.vector_size, candidates_.size() - base);
      for (size_t i = 0; i < batch; i++) {
        probe_pos[i] = candidates_[base + i].probe_pos;
        build_rows[i] = candidates_[base + i].build_row;
      }
      residual_scratch_.Reset();
      for (size_t c = 0; c < n_probe_cols; c++) {
        GatherProbe(input_.column(c), probe_pos, batch,
                    &residual_scratch_.column(c));
      }
      for (size_t k = 0; k < build_payload_cols_.size(); k++) {
        build_payload_cols_[k].Gather(build_rows, batch,
                                      &residual_scratch_.column(n_probe_cols + k));
      }
      residual_scratch_.SetCount(batch);
      size_t kept = 0;
      // vwise-hotpath: allow(virtual-in-loop): loop is over candidate
      // batches of vector_size — one Select dispatch per batch
      VWISE_RETURN_IF_ERROR(spec_.residual->Select(residual_scratch_, nullptr,
                                                   batch, out_sel, &kept));
      for (size_t i = 0; i < kept; i++) {
        // vwise-hotpath: allow(alloc): amortized growth, capacity persists
        pairs_.push_back(candidates_[base + out_sel[i]]);
      }
    }
  } else {
    std::swap(pairs_, candidates_);
  }

  for (const Pair& p : pairs_) probe_match_[p.probe_pos] = 1;

  // Semi/anti joins consume only the match flags; leaving the pairs around
  // would make the emit loop treat them as inner-join output.
  if (spec_.type == JoinType::kLeftSemi || spec_.type == JoinType::kLeftAnti) {
    pairs_.clear();
    pair_cursor_ = 0;
  }

  // 3. Left outer: append unmatched probe rows as sentinel pairs, keeping
  // the overall probe order stable enough for tests.
  if (spec_.type == JoinType::kLeftOuter) {
    for (size_t i = 0; i < n; i++) {
      sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
      // vwise-hotpath: allow(alloc): amortized growth, capacity persists
      if (!probe_match_[pos]) pairs_.push_back(Pair{pos, kNoRow});
    }
  }
  return Status::OK();
}

void HashJoinOperator::EmitPairs(DataChunk* out) {
  size_t batch = std::min(out->capacity(), pairs_.size() - pair_cursor_);
  // The gather runs through the arena-leased index arrays, so cap the batch
  // at one vector (out may be larger).
  batch = std::min(batch, config_.vector_size);
  sel_t* probe_pos = probe_pos_.data<sel_t>();
  uint32_t* build_rows = build_row_idx_.data<uint32_t>();
  for (size_t i = 0; i < batch; i++) {
    probe_pos[i] = pairs_[pair_cursor_ + i].probe_pos;
    build_rows[i] = pairs_[pair_cursor_ + i].build_row;
  }
  pair_cursor_ += batch;
  size_t n_probe_cols = input_.num_columns();
  for (size_t c = 0; c < n_probe_cols; c++) {
    GatherProbe(input_.column(c), probe_pos, batch, &out->column(c));
  }
  // Payload: sentinel rows (unmatched outer) get zero/empty values.
  bool has_sentinel = false;
  for (size_t i = 0; i < batch; i++) has_sentinel |= (build_rows[i] == kNoRow);
  for (size_t k = 0; k < build_payload_cols_.size(); k++) {
    Vector& dst = out->column(n_probe_cols + k);
    if (!has_sentinel) {
      build_payload_cols_[k].Gather(build_rows, batch, &dst);
    } else {
      const ColumnStore& store = build_payload_cols_[k];
      for (size_t i = 0; i < batch; i++) {
        if (build_rows[i] == kNoRow) {
          ZeroFill(&dst, i);
          continue;
        }
        size_t row = build_rows[i];
        switch (dst.type()) {
          case TypeId::kU8:
            dst.Data<uint8_t>()[i] = store.Get<uint8_t>(row);
            break;
          case TypeId::kI32:
            dst.Data<int32_t>()[i] = store.Get<int32_t>(row);
            break;
          case TypeId::kI64:
            dst.Data<int64_t>()[i] = store.Get<int64_t>(row);
            break;
          case TypeId::kF64:
            dst.Data<double>()[i] = store.Get<double>(row);
            break;
          case TypeId::kStr:
            dst.Data<StringVal>()[i] = store.Strs()[row];
            break;
        }
      }
      if (store.heap()) dst.AddStringHeapRef(store.heap());
    }
  }
  if (spec_.type == JoinType::kLeftOuter) {
    uint8_t* flag = out->column(out_types_.size() - 1).Data<uint8_t>();
    for (size_t i = 0; i < batch; i++) flag[i] = build_rows[i] != kNoRow;
  }
  out->SetCount(batch);
}

Status HashJoinOperator::EmitSemiAnti(DataChunk* out) {
  size_t n = input_.ActiveCount();
  const sel_t* sel = input_.sel();
  bool want_match = spec_.type == JoinType::kLeftSemi;
  for (size_t c = 0; c < input_.num_columns(); c++) {
    out->column(c).Reference(input_.column(c));
  }
  out->SetCount(input_.count());
  sel_t* out_sel = out->MutableSel();
  size_t k = 0;
  for (size_t i = 0; i < n; i++) {
    sel_t pos = sel ? sel[i] : static_cast<sel_t>(i);
    if (static_cast<bool>(probe_match_[pos]) == want_match) out_sel[k++] = pos;
  }
  out->SetSelection(k);
  return Status::OK();
}

Status HashJoinOperator::Next(DataChunk* out) {
  while (true) {
    if (pair_cursor_ < pairs_.size()) {
      EmitPairs(out);
      return Status::OK();
    }
    if (input_exhausted_) {
      out->SetCount(0);
      return Status::OK();
    }
    input_.Reset();
    // vwise-hotpath: allow(cold-call): delegates to probe_->Next() in the
    // common case; the spill branch runs only after a budget-forced flush
    VWISE_RETURN_IF_ERROR(FetchProbeChunk());
    if (input_.ActiveCount() == 0) {
      input_exhausted_ = true;
      continue;
    }
    // Probe hashing, residual gathers, and pair emission read the probe
    // columns positionally; decode any encoded columns first.
    input_.NormalizeColumns();
    VWISE_RETURN_IF_ERROR(ProcessProbeChunk());
    if (spec_.type == JoinType::kLeftSemi || spec_.type == JoinType::kLeftAnti) {
      VWISE_RETURN_IF_ERROR(EmitSemiAnti(out));
      if (out->ActiveCount() == 0) continue;  // nothing qualified: next chunk
      return Status::OK();
    }
  }
}

void HashJoinOperator::Close() {
  probe_->Close();
  // Normally closed at the end of ConsumeBuildSide; close again (idempotent)
  // so an error/cancel unwind still reaches fragments below.
  build_->Close();
  build_key_cols_.clear();
  build_payload_cols_.clear();
  bucket_heads_.clear();
  chain_next_.clear();
  DropSpillFiles();
  spilled_ = false;
  probe_partitioned_ = false;
  build_bytes_ = 0;
  probe_pos_.Release();
  build_row_idx_.Release();
  residual_sel_.Release();
  mem_.ReleaseAll();
}

}  // namespace vwise
