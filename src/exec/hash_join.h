#ifndef VWISE_EXEC_HASH_JOIN_H_
#define VWISE_EXEC_HASH_JOIN_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "exec/column_store.h"
#include "exec/operator.h"
#include "expr/expression.h"
#include "service/query_context.h"

namespace vwise {

class SpillWriter;  // storage/spill_file.h
class SpillReader;

enum class JoinType : uint8_t {
  kInner = 0,
  kLeftSemi = 1,   // emit probe rows with >= 1 match
  kLeftAnti = 2,   // emit probe rows with no match
  kLeftOuter = 3,  // inner matches plus unmatched probe rows
};

// Vectorized hash join. The build child is consumed fully at Open() into an
// owned columnar build side with a chained hash table; probing computes
// hashes a vector at a time, gathers candidate (probe, build) pairs, applies
// the optional residual predicate, and emits gathered output chunks.
//
// Output layout: all probe columns, then `build_payload` columns; kLeftOuter
// additionally appends a u8 "matched" flag column (1 for joined rows, 0 for
// padded unmatched probe rows whose payload is zero/empty). The residual
// filter is evaluated against that combined layout.
//
// When the build side overruns the query's memory budget (and
// Config::enable_spill is on), the operator degrades to a Grace hash join:
// buffered and remaining build rows are radix-partitioned to disk by the
// high bits of the key hash, the probe side is partitioned the same way,
// and partitions are then joined one at a time (load build partition, build
// its table, stream its probe file). Equal keys hash identically, so every
// probe row still sees all of its potential matches — inner/semi/anti/outer
// semantics are unchanged. Output order becomes partition-major, but within
// a partition probe order is preserved.
class HashJoinOperator final : public Operator {
 public:
  struct Spec {
    JoinType type = JoinType::kInner;
    std::vector<size_t> probe_keys;
    std::vector<size_t> build_keys;
    std::vector<size_t> build_payload;
    FilterPtr residual;
  };

  HashJoinOperator(OperatorPtr probe, OperatorPtr build, Spec spec,
                   const Config& config);
  ~HashJoinOperator() override;

  const std::vector<TypeId>& OutputTypes() const override { return out_types_; }
  Status Next(DataChunk* out) override;
  void Close() override;

  size_t build_rows() const { return build_rows_; }

  // Static-analysis surface (plan verifier).
  const Operator& probe() const { return *probe_; }
  const Operator& build() const { return *build_; }
  const Spec& spec() const { return spec_; }
  // Spill telemetry (EXPLAIN ANALYZE): radix partitions written, if any.
  // Survives Close() — the profile is rendered after the tree is closed —
  // and resets on the next Open.
  size_t spill_partitions() const { return spill_partitions_stat_; }
  // Recursive-repartition telemetry: how many oversized partitions were
  // split onto a fresh radix level, and the deepest level reached (0 = the
  // initial flush sufficed). Survive Close() like spill_partitions().
  size_t spill_repartitions() const { return spill_repartitions_stat_; }
  size_t spill_repartition_depth() const { return spill_depth_stat_; }

 private:
  Status OpenImpl() override;
  Status ConsumeBuildSide();
  Status BuildTable();  // chained hash table over the stored build rows
  Status ProcessProbeChunk();  // fills pairs_ / probe_match_ for input_
  void EmitPairs(DataChunk* out);
  Status EmitSemiAnti(DataChunk* out);

  // One spilled (build, probe) partition pair awaiting its join pass.
  // Level 0 pairs come from the initial flush; deeper levels are created by
  // recursive repartitioning when a pair's build side alone exceeds the
  // budget — each level consumes a fresh byte of the same key hash.
  struct SpillPartition {
    std::string build_path;
    std::string probe_path;
    size_t level = 0;
  };

  // Spill path (Grace hash join). SpillBuildRows flushes the buffered build
  // rows to the radix partition writers (creating them on first use) and
  // returns their reservation; PartitionBuildChunk routes a streamed build
  // chunk straight to the writers; PartitionProbeSide drains the probe child
  // into per-partition probe files; LoadBuildPartition reloads one build
  // partition and rebuilds its table; RepartitionPartition splits an
  // oversized pair onto the next radix level; FetchProbeChunk fills input_
  // from the probe child (in-memory) or the current pair's probe file.
  Status SpillBuildRows();
  Status PartitionBuildChunk(const DataChunk& chunk);
  Status PartitionProbeSide();
  Status LoadBuildPartition(const std::string& path);
  Status RepartitionPartition(const SpillPartition& part);
  size_t RepartitionFanout(uint64_t part_bytes) const;
  Status FetchProbeChunk();
  // Resets the resident build rows/table and returns their reservation.
  void ReleaseBuildSide();
  void RemovePartitionFiles(SpillPartition* part);
  void DropSpillFiles();

  uint64_t HashBuildRow(size_t row) const;
  uint64_t HashProbeRow(const DataChunk& chunk, sel_t pos) const;
  bool KeysEqual(const DataChunk& chunk, sel_t pos, size_t build_row) const;

  OperatorPtr probe_;
  OperatorPtr build_;
  Spec spec_;
  Config config_;
  std::vector<TypeId> out_types_;

  // Build side.
  std::vector<ColumnStore> build_key_cols_;
  std::vector<ColumnStore> build_payload_cols_;
  std::vector<uint32_t> bucket_heads_;
  std::vector<uint32_t> chain_next_;
  size_t build_rows_ = 0;
  uint64_t bucket_mask_ = 0;

  // Probe state.
  DataChunk input_;
  bool input_exhausted_ = false;
  struct Pair {
    sel_t probe_pos;
    uint32_t build_row;
  };
  std::vector<Pair> pairs_;        // surviving pairs for current input chunk
  std::vector<Pair> candidates_;   // pre-residual pairs (capacity persists)
  size_t pair_cursor_ = 0;
  std::vector<uint8_t> probe_match_;  // per probe position: any match
  DataChunk residual_scratch_;
  // Emit/residual gather arrays, leased from the query's VectorScratch arena
  // in OpenImpl — the per-chunk emit and residual loops allocate nothing.
  ScratchHandle probe_pos_;      // sel_t[vector_size]
  ScratchHandle build_row_idx_;  // uint32_t[vector_size]
  ScratchHandle residual_sel_;   // sel_t[vector_size]

  // Per-query memory budget accounting for the owned build side + table.
  // build_bytes_ tracks the reservation held for the currently resident
  // build rows + table so a spill flush / partition swap can return it.
  MemoryReservation mem_;
  size_t build_bytes_ = 0;

  // Radix-spill state; empty unless the budget forced a flush. Spill rows
  // carry [build keys..., build payload...]; probe partitions carry full
  // probe rows.
  bool spilled_ = false;
  bool probe_partitioned_ = false;
  size_t n_partitions_ = 0;
  std::vector<TypeId> spill_types_;
  std::vector<std::string> build_paths_;
  std::vector<std::string> probe_paths_;
  std::vector<std::unique_ptr<SpillWriter>> build_writers_;
  std::vector<std::unique_ptr<SpillWriter>> probe_writers_;
  std::deque<SpillPartition> pending_;  // pairs not yet joined
  SpillPartition cur_;                  // pair probe_reader_ is draining
  std::unique_ptr<SpillReader> probe_reader_;  // current partition's probe
  DataChunk build_view_;  // spill-schema view over a streamed build chunk
  std::vector<std::vector<sel_t>> part_rows_;  // per-chunk radix buckets
  size_t spill_partitions_stat_ = 0;  // telemetry; outlives Close()
  size_t spill_repartitions_stat_ = 0;
  size_t spill_depth_stat_ = 0;
};

}  // namespace vwise

#endif  // VWISE_EXEC_HASH_JOIN_H_
