#ifndef VWISE_EXEC_HASH_JOIN_H_
#define VWISE_EXEC_HASH_JOIN_H_

#include <memory>
#include <vector>

#include "exec/column_store.h"
#include "exec/operator.h"
#include "expr/expression.h"
#include "service/query_context.h"

namespace vwise {

enum class JoinType : uint8_t {
  kInner = 0,
  kLeftSemi = 1,   // emit probe rows with >= 1 match
  kLeftAnti = 2,   // emit probe rows with no match
  kLeftOuter = 3,  // inner matches plus unmatched probe rows
};

// Vectorized hash join. The build child is consumed fully at Open() into an
// owned columnar build side with a chained hash table; probing computes
// hashes a vector at a time, gathers candidate (probe, build) pairs, applies
// the optional residual predicate, and emits gathered output chunks.
//
// Output layout: all probe columns, then `build_payload` columns; kLeftOuter
// additionally appends a u8 "matched" flag column (1 for joined rows, 0 for
// padded unmatched probe rows whose payload is zero/empty). The residual
// filter is evaluated against that combined layout.
class HashJoinOperator final : public Operator {
 public:
  struct Spec {
    JoinType type = JoinType::kInner;
    std::vector<size_t> probe_keys;
    std::vector<size_t> build_keys;
    std::vector<size_t> build_payload;
    FilterPtr residual;
  };

  HashJoinOperator(OperatorPtr probe, OperatorPtr build, Spec spec,
                   const Config& config);
  ~HashJoinOperator() override;

  const std::vector<TypeId>& OutputTypes() const override { return out_types_; }
  Status Next(DataChunk* out) override;
  void Close() override;

  size_t build_rows() const { return build_rows_; }

  // Static-analysis surface (plan verifier).
  const Operator& probe() const { return *probe_; }
  const Operator& build() const { return *build_; }
  const Spec& spec() const { return spec_; }

 private:
  Status OpenImpl() override;
  Status ConsumeBuildSide();
  Status ProcessProbeChunk();  // fills pairs_ / probe_match_ for input_
  void EmitPairs(DataChunk* out);
  Status EmitSemiAnti(DataChunk* out);

  uint64_t HashBuildRow(size_t row) const;
  uint64_t HashProbeRow(const DataChunk& chunk, sel_t pos) const;
  bool KeysEqual(const DataChunk& chunk, sel_t pos, size_t build_row) const;

  OperatorPtr probe_;
  OperatorPtr build_;
  Spec spec_;
  Config config_;
  std::vector<TypeId> out_types_;

  // Build side.
  std::vector<ColumnStore> build_key_cols_;
  std::vector<ColumnStore> build_payload_cols_;
  std::vector<uint32_t> bucket_heads_;
  std::vector<uint32_t> chain_next_;
  size_t build_rows_ = 0;
  uint64_t bucket_mask_ = 0;

  // Probe state.
  DataChunk input_;
  bool input_exhausted_ = false;
  struct Pair {
    sel_t probe_pos;
    uint32_t build_row;
  };
  std::vector<Pair> pairs_;        // surviving pairs for current input chunk
  std::vector<Pair> candidates_;   // pre-residual pairs (capacity persists)
  size_t pair_cursor_ = 0;
  std::vector<uint8_t> probe_match_;  // per probe position: any match
  DataChunk residual_scratch_;
  // Emit/residual gather arrays, leased from the query's VectorScratch arena
  // in OpenImpl — the per-chunk emit and residual loops allocate nothing.
  ScratchHandle probe_pos_;      // sel_t[vector_size]
  ScratchHandle build_row_idx_;  // uint32_t[vector_size]
  ScratchHandle residual_sel_;   // sel_t[vector_size]

  // Per-query memory budget accounting for the owned build side + table.
  MemoryReservation mem_;
};

}  // namespace vwise

#endif  // VWISE_EXEC_HASH_JOIN_H_
