#ifndef VWISE_EXEC_CHECKED_H_
#define VWISE_EXEC_CHECKED_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace vwise {

// Validates the X100 chunk invariants documented on DataChunk
// (vector/chunk.h). Violations are reported as Status::Internal with enough
// context to locate the offending operator — a contract violation is always
// a bug in vwise, never bad user input, but tests want to observe it as a
// catchable error rather than a process abort.
class ChunkValidator {
 public:
  // Full post-Next() validation of `chunk` against the producing operator's
  // declared output types:
  //   * count <= capacity
  //   * selection strictly increasing, every entry < count, sel_count <= count
  //   * one column per declared output type, each with the declared TypeId
  //     and capacity covering `count`
  //   * string columns keep their bytes alive: any active non-empty
  //     StringVal requires a registered StringHeap ref (or keepalive pin),
  //     and a non-null pointer
  static Status Validate(const DataChunk& chunk,
                         const std::vector<TypeId>& expected_types,
                         const std::string& context);

  // Pre-Next() validation: callers must Reset() a chunk before each refill
  // (no stale cardinality, selection, or heap keepalives).
  static Status ValidateReset(const DataChunk& chunk,
                              const std::string& context);
};

// Transparent wrapper that runs ChunkValidator around a child operator's
// Next(). When Config::check_contracts is set, every operator constructor
// that owns a child wraps it (see MaybeChecked below), so the checker
// interposes between every parent/child pair of the plan without the plan
// builder or tests having to know about it.
class CheckedOperator final : public Operator {
 public:
  CheckedOperator(OperatorPtr child, std::string label);

  const std::vector<TypeId>& OutputTypes() const override {
    return child_->OutputTypes();
  }
  Status Next(DataChunk* out) override;
  void Close() override;

  // Static-analysis surface: the plan verifier sees through the wrapper.
  const Operator& child() const { return *child_; }
  const std::string& label() const { return label_; }

 private:
  Status OpenImpl() override;
  OperatorPtr child_;
  std::string label_;
  bool open_ = false;
};

// Wraps `op` in a CheckedOperator when `config.check_contracts` is set;
// otherwise returns it unchanged. `label` names the consumer side for error
// messages ("select.child", "xchg.fragment", ...). Null-safe: a null `op`
// passes through (operator constructors run before validity checks).
OperatorPtr MaybeChecked(OperatorPtr op, const Config& config,
                         const char* label);

}  // namespace vwise

#endif  // VWISE_EXEC_CHECKED_H_
