#ifndef VWISE_EXEC_PROFILE_H_
#define VWISE_EXEC_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "exec/operator.h"

namespace vwise {

// Per-operator runtime counters accumulated by ProfiledOperator. Times are
// wall-clock nanoseconds (steady_clock); Open/Next/Close are measured
// separately so a pipeline-breaker's build cost (Open) is attributable apart
// from its streaming cost (Next).
struct OperatorStats {
  uint64_t open_ns = 0;
  uint64_t next_ns = 0;
  uint64_t close_ns = 0;
  uint64_t next_calls = 0;
  uint64_t chunks_out = 0;  // Next() calls that produced >= 1 active row
  uint64_t rows_out = 0;    // active rows across all Next() calls
};

// Transparent wrapper that times a child operator's Open/Next/Close and
// counts the chunks and rows it produces. Mirrors CheckedOperator: when
// Config::profile is set, every operator constructor that owns a child wraps
// it (see InterposeChild below), so the profiler interposes between every
// parent/child pair without the plan builder or tests knowing about it.
// Plan analysis (verifier, EXPLAIN) sees through the wrapper via child().
class ProfiledOperator final : public Operator {
 public:
  ProfiledOperator(OperatorPtr child, std::string label);

  const std::vector<TypeId>& OutputTypes() const override {
    return child_->OutputTypes();
  }
  Status Next(DataChunk* out) override;
  void Close() override;

  const Operator& child() const { return *child_; }
  const std::string& label() const { return label_; }
  const OperatorStats& stats() const { return stats_; }

 private:
  Status OpenImpl() override;
  OperatorPtr child_;
  std::string label_;
  OperatorStats stats_;
};

// Wraps `op` in a ProfiledOperator when `config.profile` is set; otherwise
// returns it unchanged. Null-safe like MaybeChecked.
OperatorPtr MaybeProfiled(OperatorPtr op, const Config& config,
                          const char* label);

// The interposition helper every child-owning operator constructor routes its
// children through (enforced by tools/vwise_lint.py). Applies both optional
// wrappers: profiling innermost so its Next() time covers only the child, and
// contract checking outermost so the checker also validates what profiled
// plans hand upward.
OperatorPtr InterposeChild(OperatorPtr op, const Config& config,
                           const char* label);

}  // namespace vwise

#endif  // VWISE_EXEC_PROFILE_H_
