#include "exec/checked.h"

#include <sstream>

namespace vwise {

namespace {

Status Violation(const std::string& context, const std::string& what) {
  return Status::Internal("chunk contract violation [" + context + "]: " +
                          what);
}

}  // namespace

// vwise-hotpath: allow(alloc): violation messages are formatted only after a
// contract check has failed — the query is already being torn down, and the
// success path touches nothing but the chunk metadata
Status ChunkValidator::Validate(const DataChunk& chunk,
                                const std::vector<TypeId>& expected_types,
                                const std::string& context) {
  if (chunk.count() > chunk.capacity()) {
    std::ostringstream os;
    os << "count " << chunk.count() << " exceeds capacity " << chunk.capacity();
    return Violation(context, os.str());
  }

  if (chunk.has_selection()) {
    if (chunk.sel_count() > chunk.count()) {
      std::ostringstream os;
      os << "sel_count " << chunk.sel_count() << " exceeds count "
         << chunk.count();
      return Violation(context, os.str());
    }
    const sel_t* sel = chunk.sel();
    for (size_t i = 0; i < chunk.sel_count(); i++) {
      if (sel[i] >= chunk.count()) {
        std::ostringstream os;
        os << "sel[" << i << "] = " << sel[i] << " out of range (count "
           << chunk.count() << ")";
        return Violation(context, os.str());
      }
      if (i > 0 && sel[i] <= sel[i - 1]) {
        std::ostringstream os;
        os << "selection not strictly increasing at " << i << ": sel[" << i - 1
           << "] = " << sel[i - 1] << ", sel[" << i << "] = " << sel[i];
        return Violation(context, os.str());
      }
    }
  }

  // An end-of-stream chunk (ActiveCount() == 0) carries no data to type-check.
  if (chunk.ActiveCount() == 0) return Status::OK();

  if (chunk.num_columns() != expected_types.size()) {
    std::ostringstream os;
    os << "operator declares " << expected_types.size()
       << " output columns, chunk has " << chunk.num_columns();
    return Violation(context, os.str());
  }
  for (size_t c = 0; c < chunk.num_columns(); c++) {
    const Vector& col = chunk.column(c);
    if (col.type() != expected_types[c]) {
      std::ostringstream os;
      os << "column " << c << " has type " << TypeIdToString(col.type())
         << ", operator declares " << TypeIdToString(expected_types[c]);
      return Violation(context, os.str());
    }
    if (col.capacity() < chunk.count()) {
      std::ostringstream os;
      os << "column " << c << " capacity " << col.capacity()
         << " smaller than chunk count " << chunk.count();
      return Violation(context, os.str());
    }
    if (col.repr() == VectorRepr::kDict) {
      // Encoded contract: a dict vector is string-typed, carries its
      // dictionary, and every active code indexes into it.
      if (col.type() != TypeId::kStr) {
        std::ostringstream os;
        os << "column " << c << " is dict-encoded but has type "
           << TypeIdToString(col.type()) << " (PDICT covers strings only)";
        return Violation(context, os.str());
      }
      const StringDict* d = col.dict();
      const uint32_t* codes = col.dict_codes();
      if (d == nullptr || codes == nullptr) {
        std::ostringstream os;
        os << "dict column " << c << " lacks "
           << (d == nullptr ? "a dictionary" : "a code array");
        return Violation(context, os.str());
      }
      const sel_t* sel = chunk.sel();
      size_t n = chunk.ActiveCount();
      for (size_t i = 0; i < n; i++) {
        uint32_t code = codes[sel ? sel[i] : i];
        if (code >= d->size) {
          std::ostringstream os;
          os << "dict column " << c << " row " << i << " holds code " << code
             << ", dictionary has " << d->size << " entries";
          return Violation(context, os.str());
        }
      }
      continue;  // the flat value array is not live while encoded
    }
    if (col.repr() == VectorRepr::kRle) {
      // Encoded contract: chunk-local runs — n_runs+1 ascending offsets
      // opening at 0 and closing at the chunk count.
      if (col.type() == TypeId::kStr) {
        std::ostringstream os;
        os << "column " << c << " is RLE-encoded but string-typed (string "
           << "runs must decode at the scan)";
        return Violation(context, os.str());
      }
      const uint32_t* starts = col.rle_starts();
      uint32_t m = col.rle_runs();
      if (starts == nullptr || m == 0) {
        std::ostringstream os;
        os << "rle column " << c << " lacks runs";
        return Violation(context, os.str());
      }
      if (starts[0] != 0 || starts[m] != chunk.count()) {
        std::ostringstream os;
        os << "rle column " << c << " runs cover [" << starts[0] << ", "
           << starts[m] << "), chunk holds [0, " << chunk.count() << ")";
        return Violation(context, os.str());
      }
      for (uint32_t r = 0; r < m; r++) {
        if (starts[r + 1] <= starts[r]) {
          std::ostringstream os;
          os << "rle column " << c << " run " << r << " is empty or "
             << "non-ascending (start " << starts[r] << ", next "
             << starts[r + 1] << ")";
          return Violation(context, os.str());
        }
      }
      continue;  // the flat value array is not live while encoded
    }
    if (col.type() == TypeId::kStr) {
      const StringVal* vals = col.Data<StringVal>();
      const sel_t* sel = chunk.sel();
      size_t n = chunk.ActiveCount();
      bool any_bytes = false;
      for (size_t i = 0; i < n; i++) {
        const StringVal& v = vals[sel ? sel[i] : i];
        if (v.len > 0) {
          any_bytes = true;
          if (v.ptr == nullptr) {
            std::ostringstream os;
            os << "column " << c << " row " << i << " holds a StringVal of "
               << "length " << v.len << " with a null pointer";
            return Violation(context, os.str());
          }
        }
      }
      if (any_bytes && col.heaps().empty() && !col.has_keepalive()) {
        std::ostringstream os;
        os << "string column " << c << " carries bytes but registers no "
           << "StringHeap ref or keepalive (dangling once the producer "
           << "advances)";
        return Violation(context, os.str());
      }
    }
  }
  return Status::OK();
}

// vwise-hotpath: allow(alloc): same as Validate — formatting on failure only
Status ChunkValidator::ValidateReset(const DataChunk& chunk,
                                     const std::string& context) {
  if (chunk.count() != 0 || chunk.has_selection()) {
    std::ostringstream os;
    os << "chunk passed to Next() without Reset(): count " << chunk.count()
       << ", has_selection " << chunk.has_selection();
    return Violation(context, os.str());
  }
  for (size_t c = 0; c < chunk.num_columns(); c++) {
    if (!chunk.column(c).heaps().empty()) {
      std::ostringstream os;
      os << "chunk passed to Next() with stale heap refs on column " << c
         << " (Reset() clears keepalives between refills)";
      return Violation(context, os.str());
    }
    if (chunk.column(c).IsEncoded()) {
      std::ostringstream os;
      os << "chunk passed to Next() with column " << c << " still "
         << VectorReprToString(chunk.column(c).repr())
         << "-encoded (Reset() restores the flat representation)";
      return Violation(context, os.str());
    }
  }
  return Status::OK();
}

CheckedOperator::CheckedOperator(OperatorPtr child, std::string label)
    : child_(std::move(child)), label_(std::move(label)) {}

Status CheckedOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(child_->Open(ctx()));
  open_ = true;
  return Status::OK();
}

Status CheckedOperator::Next(DataChunk* out) {
  if (!open_) {
    return Status::Internal("operator contract violation [" + label_ +
                            "]: Next() before Open()");
  }
  VWISE_RETURN_IF_ERROR(ChunkValidator::ValidateReset(*out, label_));
  VWISE_RETURN_IF_ERROR(child_->Next(out));
  return ChunkValidator::Validate(*out, child_->OutputTypes(), label_);
}

void CheckedOperator::Close() {
  // Close() must be idempotent for every operator; delegate unconditionally
  // so double-Close bugs in children surface under the checker too.
  open_ = false;
  child_->Close();
}

OperatorPtr MaybeChecked(OperatorPtr op, const Config& config,
                         const char* label) {
  if (!config.check_contracts || op == nullptr) return op;
  return std::make_unique<CheckedOperator>(std::move(op), label);
}

}  // namespace vwise
