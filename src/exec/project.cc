#include "exec/project.h"

#include <cstring>

#include "exec/profile.h"

namespace vwise {

ProjectOperator::ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                                 const Config& config)
    : child_(InterposeChild(std::move(child), config, "project.child")),
      exprs_(std::move(exprs)),
      config_(config) {
  for (const auto& e : exprs_) out_types_.push_back(e->physical());
}

Status ProjectOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(child_->Open(ctx()));
  for (auto& e : exprs_) {
    VWISE_RETURN_IF_ERROR(e->Prepare(config_.vector_size));
  }
  input_.Init(child_->OutputTypes(), config_.vector_size);
  return Status::OK();
}

Status ProjectOperator::Next(DataChunk* out) {
  input_.Reset();
  VWISE_RETURN_IF_ERROR(child_->Next(&input_));
  size_t n = input_.ActiveCount();
  if (n == 0) {
    out->SetCount(0);
    return Status::OK();
  }
  for (size_t i = 0; i < exprs_.size(); i++) {
    Vector* result = nullptr;
    // vwise-hotpath: allow(virtual-in-loop): the loop is over output
    // columns, not tuples — one Eval dispatch evaluates a full vector
    VWISE_RETURN_IF_ERROR(exprs_[i]->Eval(input_, input_.sel(), n, &result));
    out->column(i).Reference(*result);
  }
  out->SetCount(input_.count());
  if (input_.has_selection()) {
    std::memcpy(out->MutableSel(), input_.sel(), n * sizeof(sel_t));
    out->SetSelection(n);
  }
  return Status::OK();
}

}  // namespace vwise
