#ifndef VWISE_EXEC_COLUMN_STORE_H_
#define VWISE_EXEC_COLUMN_STORE_H_

#include <cstring>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "vector/chunk.h"

namespace vwise {

// Append-only, owned columnar storage used by buffering operators (join
// build sides, aggregation keys, sort runs). String bytes are copied into an
// owned heap, so stored rows outlive the producing chunks.
class ColumnStore {
 public:
  explicit ColumnStore(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const {
    return type_ == TypeId::kStr ? strs_.size() : fixed_.size() / TypeWidth(type_);
  }

  // Appends the active rows of `vec` (positions sel[0..n) or [0..n)).
  void AppendFrom(const Vector& vec, const sel_t* sel, size_t n) {
    if (type_ == TypeId::kStr) {
      const StringVal* s = vec.Data<StringVal>();
      StringHeap* heap = Heap();
      for (size_t i = 0; i < n; i++) {
        strs_.push_back(heap->Add(s[sel ? sel[i] : i].view()));
      }
      return;
    }
    size_t w = TypeWidth(type_);
    const uint8_t* src = static_cast<const uint8_t*>(vec.raw());
    size_t old = fixed_.size();
    fixed_.resize(old + n * w);
    uint8_t* dst = fixed_.data() + old;
    for (size_t i = 0; i < n; i++) {
      std::memcpy(dst + i * w, src + (sel ? sel[i] : i) * w, w);
    }
  }

  // Appends one value from `vec` at position `pos`.
  void AppendOne(const Vector& vec, sel_t pos) {
    sel_t sel[1] = {pos};
    AppendFrom(vec, sel, 1);
  }

  template <typename T>
  const T* Data() const {
    return reinterpret_cast<const T*>(fixed_.data());
  }
  const StringVal* Strs() const { return strs_.data(); }

  template <typename T>
  T Get(size_t i) const {
    return Data<T>()[i];
  }

  // Gathers rows `idx[0..n)` into `out` (capacity >= n), attaching the owned
  // heap for strings.
  void Gather(const uint32_t* idx, size_t n, Vector* out) const {
    switch (type_) {
      case TypeId::kU8: {
        uint8_t* d = out->Data<uint8_t>();
        for (size_t i = 0; i < n; i++) d[i] = Data<uint8_t>()[idx[i]];
        break;
      }
      case TypeId::kI32: {
        int32_t* d = out->Data<int32_t>();
        for (size_t i = 0; i < n; i++) d[i] = Data<int32_t>()[idx[i]];
        break;
      }
      case TypeId::kI64: {
        int64_t* d = out->Data<int64_t>();
        for (size_t i = 0; i < n; i++) d[i] = Data<int64_t>()[idx[i]];
        break;
      }
      case TypeId::kF64: {
        double* d = out->Data<double>();
        for (size_t i = 0; i < n; i++) d[i] = Data<double>()[idx[i]];
        break;
      }
      case TypeId::kStr: {
        StringVal* d = out->Data<StringVal>();
        for (size_t i = 0; i < n; i++) d[i] = strs_[idx[i]];
        if (heap_) out->AddStringHeapRef(heap_);
        break;
      }
    }
  }

  const std::shared_ptr<StringHeap>& heap() const { return heap_; }

 private:
  StringHeap* Heap() {
    if (!heap_) heap_ = std::make_shared<StringHeap>();
    return heap_.get();
  }

  TypeId type_;
  std::vector<uint8_t> fixed_;
  std::vector<StringVal> strs_;
  std::shared_ptr<StringHeap> heap_;
};

}  // namespace vwise

#endif  // VWISE_EXEC_COLUMN_STORE_H_
