#include "exec/profile.h"

#include <chrono>

#include "exec/checked.h"

namespace vwise {

namespace {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ProfiledOperator::ProfiledOperator(OperatorPtr child, std::string label)
    : child_(std::move(child)), label_(std::move(label)) {}

Status ProfiledOperator::OpenImpl() {
  uint64_t t0 = NowNs();
  Status s = child_->Open(ctx());
  stats_.open_ns += NowNs() - t0;
  return s;
}

Status ProfiledOperator::Next(DataChunk* out) {
  uint64_t t0 = NowNs();
  Status s = child_->Next(out);
  stats_.next_ns += NowNs() - t0;
  stats_.next_calls++;
  if (s.ok()) {
    size_t rows = out->ActiveCount();
    if (rows > 0) {
      stats_.chunks_out++;
      stats_.rows_out += rows;
    }
  }
  return s;
}

void ProfiledOperator::Close() {
  // Delegate unconditionally: Close() is idempotent for every operator, and
  // the wrapper must not change that contract.
  uint64_t t0 = NowNs();
  child_->Close();
  stats_.close_ns += NowNs() - t0;
}

OperatorPtr MaybeProfiled(OperatorPtr op, const Config& config,
                          const char* label) {
  if (!config.profile || op == nullptr) return op;
  return std::make_unique<ProfiledOperator>(std::move(op), label);
}

OperatorPtr InterposeChild(OperatorPtr op, const Config& config,
                           const char* label) {
  // Profiler innermost (its Next() time covers only the child), checker
  // outermost (it validates what profiled plans hand upward too).
  return MaybeChecked(MaybeProfiled(std::move(op), config, label), config,
                      label);
}

}  // namespace vwise
