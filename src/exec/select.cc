#include "exec/select.h"

#include "exec/profile.h"

namespace vwise {

SelectOperator::SelectOperator(OperatorPtr child, FilterPtr filter,
                               const Config& config)
    : child_(InterposeChild(std::move(child), config, "select.child")),
      filter_(std::move(filter)),
      config_(config) {}

Status SelectOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(child_->Open(ctx()));
  VWISE_RETURN_IF_ERROR(filter_->Prepare(config_.vector_size));
  input_.Init(child_->OutputTypes(), config_.vector_size);
  return Status::OK();
}

Status SelectOperator::Next(DataChunk* out) {
  while (true) {
    input_.Reset();
    VWISE_RETURN_IF_ERROR(child_->Next(&input_));
    size_t n = input_.ActiveCount();
    if (n == 0) {
      out->SetCount(0);
      return Status::OK();
    }
    // Run the filter first, then reference the child's columns: a filter
    // without an encoded kernel normalizes its input column in place, and
    // referencing afterwards hands the (possibly decoded) final form
    // downstream instead of a stale encoded view that would decode twice.
    size_t k = 0;
    VWISE_RETURN_IF_ERROR(
        filter_->Select(input_, input_.sel(), n, out->MutableSel(), &k));
    if (k == 0) continue;  // fully filtered chunk: pull the next one
    for (size_t c = 0; c < input_.num_columns(); c++) {
      out->column(c).Reference(input_.column(c));
    }
    out->SetCount(input_.count());
    out->SetSelection(k);
    return Status::OK();
  }
}

}  // namespace vwise
