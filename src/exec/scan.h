#ifndef VWISE_EXEC_SCAN_H_
#define VWISE_EXEC_SCAN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "scan/scan_scheduler.h"
#include "txn/transaction_manager.h"

namespace vwise {

// Hint that column `col` is filtered to [lo, hi]; stripes whose min-max
// range misses it are skipped (X100 MinMax indexes). Only applied when the
// snapshot carries no deltas — a stripe skipped for its stable content
// could still anchor inserted rows.
struct ScanRange {
  uint32_t col;
  int64_t lo;
  int64_t hi;
};

// Vectorized table scan: decodes column stripes (through the buffer manager
// and, optionally, a cooperative-scan scheduler) and merges in PDT deltas by
// position. Emits dense chunks; a chunk never spans stripes.
class ScanOperator final : public Operator {
 public:
  struct Options {
    std::vector<ScanRange> ranges;
    ScanScheduler* scheduler = nullptr;  // nullptr: sequential stripe order
    // Partition for parallel scans: stripes [stripe_begin, stripe_end).
    size_t stripe_begin = 0;
    size_t stripe_end = SIZE_MAX;
  };

  // Scans `columns` (table column indices) of `snap`.
  ScanOperator(TableSnapshot snap, std::vector<uint32_t> columns,
               const Config& config, Options opts);
  ScanOperator(TableSnapshot snap, std::vector<uint32_t> columns,
               const Config& config);
  ~ScanOperator() override;

  const std::vector<TypeId>& OutputTypes() const override { return out_types_; }
  Status Next(DataChunk* out) override;
  void Close() override;

  // Stripes actually decoded (tests: min-max skipping, coop scans).
  size_t stripes_read() const { return stripes_read_; }

  // Columns published per representation across all emitted chunks
  // (compressed-execution observability; EXPLAIN ANALYZE renders these as
  // `repr=dict:N/rle:N/flat:N`).
  struct ReprStats {
    uint64_t dict_cols = 0;
    uint64_t rle_cols = 0;
    uint64_t flat_cols = 0;
  };
  const ReprStats& repr_stats() const { return repr_stats_; }

  // Static-analysis surface (plan verifier).
  const TableSnapshot& snapshot() const { return snap_; }
  const std::vector<uint32_t>& columns() const { return columns_; }
  const Options& options() const { return opts_; }

 private:
  // Chunk-local RLE view published into an output vector: rebased run starts
  // plus a reference pinning the stripe's run values. Handed to
  // Vector::SetRle as the keepalive, so a consumer that Reference()s the
  // chunk keeps the view alive past the next Next(); the scan then
  // allocates a fresh view instead of overwriting the referenced one.
  struct RleView {
    std::shared_ptr<std::vector<uint8_t>> values;
    std::vector<uint32_t> starts;
  };

  Status OpenImpl() override;
  Status AdvanceStripe(bool* done);
  bool StripeQualifies(size_t stripe) const;
  void PublishRleRange(const DecodedColumn& col, size_t begin, size_t n,
                       std::shared_ptr<RleView>* scratch, Vector* out_vec);

  TableSnapshot snap_;
  std::vector<uint32_t> columns_;
  Config config_;
  Options opts_;
  std::vector<TypeId> out_types_;

  // Scan state.
  std::vector<size_t> pending_;  // stripes not yet scanned (sequential mode)
  size_t pending_pos_ = 0;
  std::unique_ptr<ScanScheduler::Handle> sched_handle_;
  bool tail_done_ = false;       // trailing inserts handled (or not owned)
  bool virtual_tail_pending_ = false;

  std::vector<DecodedColumn> decoded_;
  std::unique_ptr<Pdt::MergeScanner> merge_;
  uint64_t stripe_first_row_ = 0;
  bool in_stripe_ = false;
  bool stripe_has_columns_ = false;  // false in the virtual tail pass
  const Pdt* pdt_ = nullptr;  // snapshot deltas or the shared empty PDT
  std::shared_ptr<StringHeap> insert_heap_;  // bytes of delta-row strings
  size_t stripes_read_ = 0;
  // Compressed execution: true when this scan may adopt PDICT/RLE segments
  // without decoding — the knob is on and the snapshot carries no deltas
  // (delta merging writes through flat buffers).
  bool encoded_ok_ = false;
  std::vector<std::shared_ptr<RleView>> rle_views_;  // per column scratch
  ReprStats repr_stats_;
};

}  // namespace vwise

#endif  // VWISE_EXEC_SCAN_H_
