#ifndef VWISE_EXEC_SELECT_H_
#define VWISE_EXEC_SELECT_H_

#include <memory>

#include "exec/operator.h"
#include "expr/expression.h"

namespace vwise {

// Filters the child stream by narrowing the selection vector — no data is
// copied or moved (X100 selection-vector semantics). Columns pass through by
// reference.
class SelectOperator final : public Operator {
 public:
  SelectOperator(OperatorPtr child, FilterPtr filter, const Config& config);

  const std::vector<TypeId>& OutputTypes() const override {
    return child_->OutputTypes();
  }
  Status Next(DataChunk* out) override;
  void Close() override { child_->Close(); }

  // Static-analysis surface (plan verifier).
  const Operator& child() const { return *child_; }
  const Filter& filter() const { return *filter_; }

 private:
  Status OpenImpl() override;
  OperatorPtr child_;
  FilterPtr filter_;
  Config config_;
  DataChunk input_;
};

}  // namespace vwise

#endif  // VWISE_EXEC_SELECT_H_
