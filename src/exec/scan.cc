#include "exec/scan.h"

#include <algorithm>
#include <cstring>

#include "service/query_context.h"

namespace vwise {

namespace {

const Pdt& EmptyPdt() {
  static const Pdt* empty = new Pdt();
  return *empty;
}

// Writes a boundary Value into position `pos` of `vec`; string bytes go to
// `heap` (the scan's delta-row heap, already attached to the vector).
void StoreValue(Vector* vec, size_t pos, const Value& v, StringHeap* heap) {
  switch (vec->type()) {
    case TypeId::kU8:
      vec->Data<uint8_t>()[pos] = static_cast<uint8_t>(v.AsInt());
      break;
    case TypeId::kI32:
      vec->Data<int32_t>()[pos] = static_cast<int32_t>(v.AsInt());
      break;
    case TypeId::kI64:
      vec->Data<int64_t>()[pos] = v.AsInt();
      break;
    case TypeId::kF64:
      vec->Data<double>()[pos] = v.AsDouble();
      break;
    case TypeId::kStr:
      vec->Data<StringVal>()[pos] = heap->Add(v.AsString());
      break;
  }
}

// Copies `count` values starting at decoded position `src_off` into `vec`
// at `dst_off`.
void CopyRun(const DecodedColumn& col, size_t src_off, Vector* vec,
             size_t dst_off, size_t count) {
  size_t w = TypeWidth(col.type);
  std::memcpy(static_cast<uint8_t*>(vec->raw()) + dst_off * w,
              col.values->data() + src_off * w, count * w);
}

}  // namespace

ScanOperator::ScanOperator(TableSnapshot snap, std::vector<uint32_t> columns,
                           const Config& config, Options opts)
    : snap_(std::move(snap)),
      columns_(std::move(columns)),
      config_(config),
      opts_(std::move(opts)) {
  for (uint32_t c : columns_) {
    out_types_.push_back(snap_.schema->column(c).type.physical());
  }
  pdt_ = snap_.deltas ? snap_.deltas.get() : &EmptyPdt();
}

ScanOperator::ScanOperator(TableSnapshot snap, std::vector<uint32_t> columns,
                           const Config& config)
    : ScanOperator(std::move(snap), std::move(columns), config, Options()) {}

ScanOperator::~ScanOperator() = default;

bool ScanOperator::StripeQualifies(size_t stripe) const {
  // Min-max skipping is only sound when the stripe carries no deltas; we
  // keep it simple (and safe) by requiring an empty PDT.
  if (!config_.enable_minmax_skipping || !pdt_->empty()) return true;
  for (const ScanRange& r : opts_.ranges) {
    if (!snap_.stable->StripeOverlapsRange(stripe, r.col, r.lo, r.hi)) {
      return false;
    }
  }
  return true;
}

Status ScanOperator::OpenImpl() {
  size_t n_stripes = snap_.stable->stripe_count();
  size_t begin = std::min(opts_.stripe_begin, n_stripes);
  size_t end = std::min(opts_.stripe_end, n_stripes);
  pending_.clear();
  for (size_t s = begin; s < end; s++) {
    if (StripeQualifies(s)) pending_.push_back(s);
  }
  pending_pos_ = 0;
  if (opts_.scheduler != nullptr) {
    sched_handle_ = opts_.scheduler->Register(snap_.stable.get(), pending_);
  }
  // This scan owns the trailing inserts iff its range covers the table end.
  virtual_tail_pending_ = end == n_stripes;
  tail_done_ = false;
  in_stripe_ = false;
  stripes_read_ = 0;
  decoded_.resize(columns_.size());
  insert_heap_ = std::make_shared<StringHeap>();
  // Encoded adoption is only sound when every emitted row comes verbatim
  // from a stable stripe: delta merging (updates/inserts) writes through the
  // flat buffers, so any pending deltas force the eager-decode path.
  encoded_ok_ = config_.enable_encoded_exec && pdt_->empty();
  rle_views_.assign(columns_.size(), nullptr);
  repr_stats_ = ReprStats();
  return Status::OK();
}

Status ScanOperator::AdvanceStripe(bool* done) {
  size_t stripe = SIZE_MAX;
  if (sched_handle_ != nullptr) {
    auto next = opts_.scheduler->Next(sched_handle_.get());
    if (next.has_value()) stripe = *next;
  } else if (pending_pos_ < pending_.size()) {
    stripe = pending_[pending_pos_++];
  }
  if (stripe == SIZE_MAX) {
    // No stripes left: possibly one last merge pass over the trailing
    // inserts anchored at the table end (always the case for empty tables,
    // also when the last stripe was skipped or handled without tail rights).
    if (virtual_tail_pending_ && !tail_done_) {
      tail_done_ = true;
      uint64_t n = snap_.stable->row_count();
      merge_ = std::make_unique<Pdt::MergeScanner>(*pdt_, n, n, n, true);
      stripe_first_row_ = n;
      in_stripe_ = true;
      stripe_has_columns_ = false;
      *done = false;
      return Status::OK();
    }
    *done = true;
    return Status::OK();
  }
  for (size_t i = 0; i < columns_.size(); i++) {
    VWISE_RETURN_IF_ERROR(snap_.stable->ReadStripeColumn(
        stripe, columns_[i], &decoded_[i], encoded_ok_));
  }
  stripes_read_++;
  uint64_t first = snap_.stable->stripe_first_row(stripe);
  uint64_t rows = snap_.stable->stripe(stripe).rows;
  bool is_last = first + rows == snap_.stable->row_count();
  bool include_end = is_last && virtual_tail_pending_ && !tail_done_;
  if (include_end) tail_done_ = true;
  merge_ = std::make_unique<Pdt::MergeScanner>(
      *pdt_, snap_.stable->row_count(), first, first + rows, include_end);
  stripe_first_row_ = first;
  in_stripe_ = true;
  stripe_has_columns_ = true;
  *done = false;
  return Status::OK();
}

Status ScanOperator::Next(DataChunk* out) {
  // The per-vector cancellation/deadline poll for every leaf pipeline: each
  // Next() emits at most one vector, so a cancel unwinds the plan within one
  // vector boundary.
  VWISE_RETURN_IF_ERROR(ctx()->Check());
  // Rewind the delta-string arena for this chunk when no consumer still
  // references the previous chunk's bytes (the chunk data contract: vectors
  // are valid only until the next Next()). A scan over a delta-heavy table
  // then reuses one buffer instead of growing without bound.
  if (insert_heap_.use_count() == 1) insert_heap_->Reset();
  size_t cap = out->capacity();
  size_t filled = 0;
  // Stripe-local offset of the chunk's first stable row; anchors the
  // encoded (codes/runs) views published after the merge loop. With
  // encoded_ok_ the PDT is empty, so a chunk is one contiguous stable range.
  size_t chunk_begin = SIZE_MAX;
  while (true) {
    if (!in_stripe_) {
      if (filled > 0) break;  // never mix stripes in one chunk
      bool done = false;
      // vwise-hotpath: allow(cold-call): stripe boundary — decode I/O and
      // merge-scanner setup run once per stripe, not per vector
      VWISE_RETURN_IF_ERROR(AdvanceStripe(&done));
      if (done) break;
    }
    // Attach the heaps backing any strings this chunk may reference.
    for (size_t i = 0; i < columns_.size(); i++) {
      if (out_types_[i] != TypeId::kStr) continue;
      if (stripe_has_columns_ && decoded_[i].heap) {
        out->column(i).AddStringHeapRef(decoded_[i].heap);
      }
      out->column(i).AddStringHeapRef(insert_heap_);
    }
    Pdt::MergeEvent ev;
    while (filled < cap && merge_->Next(&ev, cap - filled)) {
      switch (ev.kind) {
        case Pdt::MergeEvent::kStableRun: {
          size_t local = static_cast<size_t>(ev.sid - stripe_first_row_);
          if (chunk_begin == SIZE_MAX) chunk_begin = local;
          for (size_t i = 0; i < columns_.size(); i++) {
            // Encoded columns are published as views after the merge loop
            // instead of being copied per row.
            if (decoded_[i].repr == VectorRepr::kFlat) {
              CopyRun(decoded_[i], local, &out->column(i), filled, ev.count);
            }
          }
          filled += ev.count;
          break;
        }
        case Pdt::MergeEvent::kModifiedRow: {
          size_t local = static_cast<size_t>(ev.sid - stripe_first_row_);
          for (size_t i = 0; i < columns_.size(); i++) {
            CopyRun(decoded_[i], local, &out->column(i), filled, 1);
            auto it = ev.rec->mods.find(columns_[i]);
            if (it != ev.rec->mods.end()) {
              StoreValue(&out->column(i), filled, it->second, insert_heap_.get());
            }
          }
          filled++;
          break;
        }
        case Pdt::MergeEvent::kDeletedRow:
          break;
        case Pdt::MergeEvent::kInsertedRow: {
          for (size_t i = 0; i < columns_.size(); i++) {
            StoreValue(&out->column(i), filled, ev.rec->row[columns_[i]],
                       insert_heap_.get());
          }
          filled++;
          break;
        }
      }
    }
    if (filled >= cap) break;
    in_stripe_ = false;  // merge exhausted for this stripe
  }
  if (filled > 0) {
    for (size_t i = 0; i < columns_.size(); i++) {
      const DecodedColumn& col = decoded_[i];
      if (!stripe_has_columns_ || col.repr == VectorRepr::kFlat) {
        repr_stats_.flat_cols++;
        continue;
      }
      VWISE_DCHECK(chunk_begin != SIZE_MAX);
      VWISE_DCHECK(chunk_begin + filled <= col.count);
      if (col.repr == VectorRepr::kDict) {
        out->column(i).SetDict(col.dict_codes->As<uint32_t>() + chunk_begin,
                               col.dict, col.dict_codes);
        repr_stats_.dict_cols++;
      } else {
        PublishRleRange(col, chunk_begin, filled, &rle_views_[i],
                        &out->column(i));
        repr_stats_.rle_cols++;
      }
    }
  }
  out->SetCount(filled);
  return Status::OK();
}

// Slices the stripe's runs down to the chunk range [begin, begin + n) and
// publishes them on `out_vec`, rebased so starts[0] == 0 and
// starts[n_runs] == n (the chunk-local run contract, vector.h).
void ScanOperator::PublishRleRange(const DecodedColumn& col, size_t begin,
                                   size_t n, std::shared_ptr<RleView>* scratch,
                                   Vector* out_vec) {
  const std::vector<uint32_t>& starts = *col.rle_starts;
  // First and last run overlapping the range: the largest r with
  // starts[r] <= row (starts is ascending, starts.front() == 0).
  size_t r0 = static_cast<size_t>(std::upper_bound(starts.begin(), starts.end(),
                                                   static_cast<uint32_t>(begin)) -
                                  starts.begin()) -
              1;
  size_t r1 = static_cast<size_t>(
                  std::upper_bound(starts.begin(), starts.end(),
                                   static_cast<uint32_t>(begin + n - 1)) -
                  starts.begin()) -
              1;
  size_t m = r1 - r0 + 1;
  if (*scratch == nullptr || scratch->use_count() > 1) {
    // vwise-hotpath: allow(alloc): first chunk, or a consumer still
    // references the previous chunk's view — steady state reuses the scratch
    *scratch = std::make_shared<RleView>();
  }
  RleView& view = **scratch;
  view.values = col.rle_values;
  // vwise-hotpath: allow(alloc): capacity persists across chunks, bounded by
  // runs per vector
  view.starts.resize(m + 1);
  view.starts[0] = 0;
  for (size_t k = 1; k < m; k++) {
    view.starts[k] = starts[r0 + k] - static_cast<uint32_t>(begin);
  }
  view.starts[m] = static_cast<uint32_t>(n);
  out_vec->SetRle(col.rle_values->data() + r0 * TypeWidth(col.type),
                  view.starts.data(), static_cast<uint32_t>(m), *scratch);
}

void ScanOperator::Close() {
  if (sched_handle_ != nullptr && opts_.scheduler != nullptr) {
    opts_.scheduler->Finish(sched_handle_.get());
    sched_handle_.reset();
  }
  merge_.reset();
  decoded_.clear();
  rle_views_.clear();
}

}  // namespace vwise
