#include "exec/operator.h"

#include <sstream>

#include "common/macros.h"

namespace vwise {

void DeepCopyChunk(const DataChunk& src, DataChunk* dst) {
  size_t n = src.ActiveCount();
  VWISE_CHECK(dst->num_columns() == src.num_columns());
  VWISE_CHECK(dst->capacity() >= n);
  const sel_t* sel = src.sel();
  for (size_t c = 0; c < src.num_columns(); c++) {
    const Vector& in = src.column(c);
    Vector& out = dst->column(c);
    switch (in.type()) {
      case TypeId::kU8: {
        const uint8_t* s = in.Data<uint8_t>();
        uint8_t* d = out.Data<uint8_t>();
        for (size_t i = 0; i < n; i++) d[i] = s[sel ? sel[i] : i];
        break;
      }
      case TypeId::kI32: {
        const int32_t* s = in.Data<int32_t>();
        int32_t* d = out.Data<int32_t>();
        for (size_t i = 0; i < n; i++) d[i] = s[sel ? sel[i] : i];
        break;
      }
      case TypeId::kI64: {
        const int64_t* s = in.Data<int64_t>();
        int64_t* d = out.Data<int64_t>();
        for (size_t i = 0; i < n; i++) d[i] = s[sel ? sel[i] : i];
        break;
      }
      case TypeId::kF64: {
        const double* s = in.Data<double>();
        double* d = out.Data<double>();
        for (size_t i = 0; i < n; i++) d[i] = s[sel ? sel[i] : i];
        break;
      }
      case TypeId::kStr: {
        const StringVal* s = in.Data<StringVal>();
        StringVal* d = out.Data<StringVal>();
        StringHeap* heap = out.GetStringHeap();
        for (size_t i = 0; i < n; i++) d[i] = heap->Add(s[sel ? sel[i] : i].view());
        break;
      }
    }
  }
  dst->SetCount(n);
  dst->ClearSelection();
}

Result<QueryResult> CollectRows(Operator* root, size_t vector_size,
                                std::vector<std::string> names,
                                std::vector<DataType> types) {
  QueryResult result;
  result.column_names = std::move(names);
  result.column_types = std::move(types);
  VWISE_RETURN_IF_ERROR(root->Open());
  DataChunk chunk;
  chunk.Init(root->OutputTypes(), vector_size);
  while (true) {
    chunk.Reset();
    VWISE_RETURN_IF_ERROR(root->Next(&chunk));
    size_t n = chunk.ActiveCount();
    if (n == 0) break;
    for (size_t i = 0; i < n; i++) {
      std::vector<Value> row;
      row.reserve(chunk.num_columns());
      for (size_t c = 0; c < chunk.num_columns(); c++) {
        const DataType* t =
            c < result.column_types.size() ? &result.column_types[c] : nullptr;
        row.push_back(chunk.GetValue(c, i, t));
      }
      result.rows.push_back(std::move(row));
    }
  }
  root->Close();
  return result;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < column_names.size(); c++) {
    if (c > 0) os << " | ";
    os << column_names[c];
  }
  if (!column_names.empty()) os << "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      os << "... (" << rows.size() << " rows total)\n";
      break;
    }
    for (size_t c = 0; c < row.size(); c++) {
      if (c > 0) os << " | ";
      os << row[c].ToString();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace vwise
