#include "exec/operator.h"

#include <sstream>

#include "common/macros.h"
#include "service/query_context.h"

namespace vwise {

Status Operator::Open(QueryContext* ctx) {
  ctx_ = ctx != nullptr ? ctx : QueryContext::Background();
  return OpenImpl();
}

void DeepCopyChunk(const DataChunk& src, DataChunk* dst) {
  size_t n = src.ActiveCount();
  VWISE_CHECK(dst->num_columns() == src.num_columns());
  VWISE_CHECK(dst->capacity() >= n);
  const sel_t* sel = src.sel();
  for (size_t c = 0; c < src.num_columns(); c++) {
    const Vector& in = src.column(c);
    // Callers normalize before copying: the value arrays below are live only
    // for flat vectors.
    VWISE_DCHECK(!in.IsEncoded());
    Vector& out = dst->column(c);
    switch (in.type()) {
      case TypeId::kU8: {
        const uint8_t* s = in.Data<uint8_t>();
        uint8_t* d = out.Data<uint8_t>();
        for (size_t i = 0; i < n; i++) d[i] = s[sel ? sel[i] : i];
        break;
      }
      case TypeId::kI32: {
        const int32_t* s = in.Data<int32_t>();
        int32_t* d = out.Data<int32_t>();
        for (size_t i = 0; i < n; i++) d[i] = s[sel ? sel[i] : i];
        break;
      }
      case TypeId::kI64: {
        const int64_t* s = in.Data<int64_t>();
        int64_t* d = out.Data<int64_t>();
        for (size_t i = 0; i < n; i++) d[i] = s[sel ? sel[i] : i];
        break;
      }
      case TypeId::kF64: {
        const double* s = in.Data<double>();
        double* d = out.Data<double>();
        for (size_t i = 0; i < n; i++) d[i] = s[sel ? sel[i] : i];
        break;
      }
      case TypeId::kStr: {
        const StringVal* s = in.Data<StringVal>();
        StringVal* d = out.Data<StringVal>();
        StringHeap* heap = out.GetStringHeap();
        for (size_t i = 0; i < n; i++) d[i] = heap->Add(s[sel ? sel[i] : i].view());
        break;
      }
    }
  }
  dst->SetCount(n);
  dst->ClearSelection();
}

size_t EstimateChunkBytes(const DataChunk& chunk) {
  size_t n = chunk.ActiveCount();
  const sel_t* sel = chunk.sel();
  size_t bytes = 0;
  for (size_t c = 0; c < chunk.num_columns(); c++) {
    const Vector& col = chunk.column(c);
    if (col.type() == TypeId::kStr) {
      bytes += n * sizeof(StringVal);
      if (col.repr() == VectorRepr::kDict) {
        // Estimate the decoded footprint through the dictionary — whoever
        // buffers this chunk normalizes it first, and the flat value array
        // is not live while the vector is encoded.
        const uint32_t* codes = col.dict_codes();
        const StringDict* d = col.dict();
        for (size_t i = 0; i < n; i++) {
          bytes += d->values[codes[sel ? sel[i] : i]].view().size();
        }
      } else {
        const StringVal* s = col.Data<StringVal>();
        for (size_t i = 0; i < n; i++) {
          bytes += s[sel ? sel[i] : i].view().size();
        }
      }
    } else {
      // RLE numeric columns estimate at their decoded width.
      bytes += n * TypeWidth(col.type());
    }
  }
  return bytes;
}

Result<QueryResult> CollectRows(Operator* root, QueryContext* ctx,
                                size_t vector_size,
                                std::vector<std::string> names,
                                std::vector<DataType> types) {
  if (ctx == nullptr) ctx = QueryContext::Background();
  QueryResult result;
  result.column_names = std::move(names);
  result.column_types = std::move(types);
  // The tree is closed on EVERY exit, including cancellation, deadline
  // expiry, and Open/Next errors: Xchg fragments on shared pool threads keep
  // referencing `ctx` until Close() joins them, so skipping the unwind would
  // let a fragment outlive the query that owns the context. Close() is
  // idempotent for every operator (see CheckedOperator::Close), so closing a
  // partially-opened tree is safe.
  Status status = root->Open(ctx);
  if (!status.ok()) {
    root->Close();
    return status;
  }
  DataChunk chunk;
  chunk.Init(root->OutputTypes(), vector_size);
  while (true) {
    status = ctx->Check();
    if (!status.ok()) break;
    chunk.Reset();
    status = root->Next(&chunk);
    if (!status.ok()) break;
    size_t n = chunk.ActiveCount();
    if (n == 0) break;
    for (size_t i = 0; i < n; i++) {
      std::vector<Value> row;
      row.reserve(chunk.num_columns());
      for (size_t c = 0; c < chunk.num_columns(); c++) {
        const DataType* t =
            c < result.column_types.size() ? &result.column_types[c] : nullptr;
        row.push_back(chunk.GetValue(c, i, t));
      }
      result.rows.push_back(std::move(row));
    }
  }
  root->Close();
  if (!status.ok()) return status;
  return result;
}

Result<QueryResult> CollectRows(Operator* root, size_t vector_size,
                                std::vector<std::string> names,
                                std::vector<DataType> types) {
  return CollectRows(root, nullptr, vector_size, std::move(names),
                     std::move(types));
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < column_names.size(); c++) {
    if (c > 0) os << " | ";
    os << column_names[c];
  }
  if (!column_names.empty()) os << "\n";
  size_t shown = 0;
  for (const auto& row : rows) {
    if (shown++ >= max_rows) {
      os << "... (" << rows.size() << " rows total)\n";
      break;
    }
    for (size_t c = 0; c < row.size(); c++) {
      if (c > 0) os << " | ";
      os << row[c].ToString();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace vwise
