#ifndef VWISE_EXEC_XCHG_H_
#define VWISE_EXEC_XCHG_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "exec/operator.h"

namespace vwise {

// Volcano-style exchange operator — the unit the rewriter's parallelization
// rule injects (paper Sec. I-B: "a Volcano-style query parallellizer").
// Each worker fragment (typically a partitioned scan + pipeline) is submitted
// as one task to the shared worker pool (Config::worker_pool, falling back to
// WorkerPool::Global()); fragments push deep-copied chunks into a bounded
// queue that the consumer drains. The operator tree above the Xchg stays
// serial.
//
// Liveness: pool tasks block only in PushChunk on a full queue, and every
// queue is drained by a non-pool thread (the client or a QueryService
// runner), so fragments never deadlock the pool. Close() cancels, wakes the
// queue, and help-runs this operator's own not-yet-scheduled fragments
// inline (WorkerPool::TryRunTagged), so Close() cannot deadlock even when
// the pool is saturated or the queue is full — the cancellation regression
// test runs it with a 1-slot queue.
class XchgOperator final : public Operator {
 public:
  // Builds worker `w`'s fragment (0 <= w < num_workers).
  using FragmentFactory =
      std::function<Result<OperatorPtr>(int worker, int num_workers)>;

  XchgOperator(FragmentFactory factory, int num_workers,
               std::vector<TypeId> types, const Config& config);
  ~XchgOperator() override;

  const std::vector<TypeId>& OutputTypes() const override { return types_; }
  Status Next(DataChunk* out) override VWISE_EXCLUDES(mu_);
  void Close() override VWISE_EXCLUDES(mu_);

  // Static-analysis surface (plan verifier): the verifier instantiates
  // fragments through the factory (construction only, no Open) to check
  // them against the declared types.
  const FragmentFactory& factory() const { return factory_; }
  int num_workers() const { return num_workers_; }

 private:
  Status OpenImpl() override VWISE_EXCLUDES(mu_);
  void ProducerLoop(int worker) VWISE_EXCLUDES(mu_);
  void PushChunk(DataChunk chunk) VWISE_EXCLUDES(mu_);

  FragmentFactory factory_;
  int num_workers_;
  std::vector<TypeId> types_;
  Config config_;

  // mu_ guards every piece of shared producer/consumer state
  // (first_error_, producers_running_, queue_, pool_); cancelled_ is
  // additionally atomic because producer loops poll it outside the lock.
  Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  CondVar producers_done_;
  struct QueuedChunk {
    DataChunk chunk;
    size_t bytes = 0;  // reserved against the query budget while queued
  };
  std::deque<QueuedChunk> queue_ VWISE_GUARDED_BY(mu_);
  int producers_running_ VWISE_GUARDED_BY(mu_) = 0;
  std::atomic<bool> cancelled_{false};
  Status first_error_ VWISE_GUARDED_BY(mu_);
  // Bound at Open; needed by Close to help-run. nullptr = never opened.
  WorkerPool* pool_ VWISE_GUARDED_BY(mu_) = nullptr;
};

}  // namespace vwise

#endif  // VWISE_EXEC_XCHG_H_
