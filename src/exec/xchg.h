#ifndef VWISE_EXEC_XCHG_H_
#define VWISE_EXEC_XCHG_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/operator.h"

namespace vwise {

// Volcano-style exchange operator — the unit the rewriter's parallelization
// rule injects (paper Sec. I-B: "a Volcano-style query parallellizer").
// Each worker thread runs its own plan fragment (typically a partitioned
// scan + pipeline) and pushes deep-copied chunks into a bounded queue that
// the consumer drains; the operator tree above the Xchg stays serial.
class XchgOperator final : public Operator {
 public:
  // Builds worker `w`'s fragment (0 <= w < num_workers).
  using FragmentFactory =
      std::function<Result<OperatorPtr>(int worker, int num_workers)>;

  XchgOperator(FragmentFactory factory, int num_workers,
               std::vector<TypeId> types, const Config& config);
  ~XchgOperator() override;

  const std::vector<TypeId>& OutputTypes() const override { return types_; }
  Status Open() override;
  Status Next(DataChunk* out) override;
  void Close() override;

  // Static-analysis surface (plan verifier): the verifier instantiates
  // fragments through the factory (construction only, no Open) to check
  // them against the declared types.
  const FragmentFactory& factory() const { return factory_; }
  int num_workers() const { return num_workers_; }

 private:
  void ProducerLoop(int worker);
  void PushChunk(DataChunk chunk);

  FragmentFactory factory_;
  int num_workers_;
  std::vector<TypeId> types_;
  Config config_;

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<DataChunk> queue_;
  int producers_running_ = 0;
  std::atomic<bool> cancelled_{false};
  Status first_error_;
  std::vector<std::thread> threads_;
};

}  // namespace vwise

#endif  // VWISE_EXEC_XCHG_H_
