#ifndef VWISE_EXEC_SORT_H_
#define VWISE_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "exec/profile.h"
#include "exec/column_store.h"
#include "exec/operator.h"
#include "service/query_context.h"

namespace vwise {

struct SortKey {
  size_t col;
  bool ascending = true;
};

// ORDER BY [LIMIT/OFFSET]: materializes the child, sorts an index array with
// a multi-key comparator, and emits gathered chunks. With a limit, only the
// top offset+limit rows are ordered (partial sort — the TopN of X100 plans).
//
// When the materialization overruns the query's memory budget (and
// Config::enable_spill is on), the operator degrades to an external sort:
// the rows buffered so far are sorted and written to a spill run (pruned to
// the top offset+limit when a limit is set — rows past a run's own top-K can
// never reach the global top-K), the buffer is released, and consumption
// continues. Emission then k-way-merges the runs. The comparator is a total
// order (input-position tie-break), so external and in-memory executions
// produce bit-identical output.
class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKey> keys,
               const Config& config, size_t limit = SIZE_MAX,
               size_t offset = 0);
  ~SortOperator() override;

  const std::vector<TypeId>& OutputTypes() const override {
    return child_->OutputTypes();
  }
  Status Next(DataChunk* out) override;
  void Close() override;

  // Static-analysis surface (plan verifier).
  const Operator& child() const { return *child_; }
  const std::vector<SortKey>& keys() const { return keys_; }
  size_t limit() const { return limit_; }
  size_t offset() const { return offset_; }
  // Spill telemetry (EXPLAIN ANALYZE): runs written during the consume
  // phase. Survives Close() — the profile is rendered after the tree is
  // closed — and resets on the next Open.
  size_t spill_runs() const { return spill_runs_stat_; }

 private:
  struct SortRun;  // merge-side state of one spilled run (sort.cc)

  Status OpenImpl() override;
  Status ConsumeAndSort();
  bool RowLess(uint32_t a, uint32_t b) const;
  // Sorts and writes the buffered rows as one spill run, then resets the
  // buffer and gives its reservation back.
  Status SpillRun();
  // Opens every run for reading and primes the merge cursors.
  Status OpenMerge();
  Status MergeNext(DataChunk* out);
  // keys_-compare of run a's current row vs run b's (no tie-break; the
  // caller's lowest-run-index-wins scan supplies it).
  int CompareRunRows(const SortRun& a, const SortRun& b) const;
  // Moves `run` past its current row, refilling its chunk from disk.
  Status AdvanceRun(SortRun* run);
  void DropRuns();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  Config config_;
  size_t limit_;
  size_t offset_;

  std::vector<ColumnStore> data_;
  std::vector<uint32_t> order_;
  size_t cursor_ = 0;
  bool sorted_ = false;

  // External-sort state; empty when the input fit in budget.
  std::vector<std::string> run_paths_;
  std::vector<std::unique_ptr<SortRun>> runs_;
  size_t buffered_bytes_ = 0;   // reservation attributable to data_/order_
  size_t merge_skipped_ = 0;    // rows dropped toward offset_
  size_t merge_emitted_ = 0;    // rows emitted toward limit_
  size_t spill_runs_stat_ = 0;  // telemetry; outlives Close()

  // Per-query memory budget accounting for the materialized input + index.
  MemoryReservation mem_;
};

// LIMIT/OFFSET without ordering.
class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr child, const Config& config, size_t limit,
                size_t offset = 0)
      : child_(InterposeChild(std::move(child), config, "limit.child")),
        limit_(limit),
        offset_(offset) {}

  const std::vector<TypeId>& OutputTypes() const override {
    return child_->OutputTypes();
  }
  Status Next(DataChunk* out) override;
  void Close() override { child_->Close(); }

  // Static-analysis surface (plan verifier).
  const Operator& child() const { return *child_; }
  size_t limit() const { return limit_; }
  size_t offset() const { return offset_; }

 private:
  Status OpenImpl() override {
    seen_ = 0;
    emitted_ = 0;
    return child_->Open(ctx());
  }
  OperatorPtr child_;
  size_t limit_;
  size_t offset_;
  size_t seen_ = 0;
  size_t emitted_ = 0;
};

}  // namespace vwise

#endif  // VWISE_EXEC_SORT_H_
