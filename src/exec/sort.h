#ifndef VWISE_EXEC_SORT_H_
#define VWISE_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "exec/profile.h"
#include "exec/column_store.h"
#include "exec/operator.h"
#include "service/query_context.h"

namespace vwise {

struct SortKey {
  size_t col;
  bool ascending = true;
};

// ORDER BY [LIMIT/OFFSET]: materializes the child, sorts an index array with
// a multi-key comparator, and emits gathered chunks. With a limit, only the
// top offset+limit rows are ordered (partial sort — the TopN of X100 plans).
class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKey> keys,
               const Config& config, size_t limit = SIZE_MAX,
               size_t offset = 0);

  const std::vector<TypeId>& OutputTypes() const override {
    return child_->OutputTypes();
  }
  Status Next(DataChunk* out) override;
  void Close() override;

  // Static-analysis surface (plan verifier).
  const Operator& child() const { return *child_; }
  const std::vector<SortKey>& keys() const { return keys_; }
  size_t limit() const { return limit_; }
  size_t offset() const { return offset_; }

 private:
  Status OpenImpl() override;
  Status ConsumeAndSort();
  bool RowLess(uint32_t a, uint32_t b) const;

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  Config config_;
  size_t limit_;
  size_t offset_;

  std::vector<ColumnStore> data_;
  std::vector<uint32_t> order_;
  size_t cursor_ = 0;
  bool sorted_ = false;

  // Per-query memory budget accounting for the materialized input + index.
  MemoryReservation mem_;
};

// LIMIT/OFFSET without ordering.
class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr child, const Config& config, size_t limit,
                size_t offset = 0)
      : child_(InterposeChild(std::move(child), config, "limit.child")),
        limit_(limit),
        offset_(offset) {}

  const std::vector<TypeId>& OutputTypes() const override {
    return child_->OutputTypes();
  }
  Status Next(DataChunk* out) override;
  void Close() override { child_->Close(); }

  // Static-analysis surface (plan verifier).
  const Operator& child() const { return *child_; }
  size_t limit() const { return limit_; }
  size_t offset() const { return offset_; }

 private:
  Status OpenImpl() override {
    seen_ = 0;
    emitted_ = 0;
    return child_->Open(ctx());
  }
  OperatorPtr child_;
  size_t limit_;
  size_t offset_;
  size_t seen_ = 0;
  size_t emitted_ = 0;
};

}  // namespace vwise

#endif  // VWISE_EXEC_SORT_H_
