#include "exec/sort.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "exec/profile.h"

namespace vwise {

SortOperator::SortOperator(OperatorPtr child, std::vector<SortKey> keys,
                           const Config& config, size_t limit, size_t offset)
    : child_(InterposeChild(std::move(child), config, "sort.child")),
      keys_(std::move(keys)),
      config_(config),
      limit_(limit),
      offset_(offset) {}

Status SortOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(child_->Open(ctx()));
  mem_.Bind(ctx(), "sort materialization");
  data_.clear();
  for (TypeId t : child_->OutputTypes()) data_.emplace_back(t);
  order_.clear();
  cursor_ = 0;
  sorted_ = false;
  return Status::OK();
}

bool SortOperator::RowLess(uint32_t a, uint32_t b) const {
  for (const SortKey& key : keys_) {
    const ColumnStore& col = data_[key.col];
    int cmp = 0;
    switch (col.type()) {
      case TypeId::kU8: {
        auto va = col.Get<uint8_t>(a), vb = col.Get<uint8_t>(b);
        cmp = va < vb ? -1 : va > vb ? 1 : 0;
        break;
      }
      case TypeId::kI32: {
        auto va = col.Get<int32_t>(a), vb = col.Get<int32_t>(b);
        cmp = va < vb ? -1 : va > vb ? 1 : 0;
        break;
      }
      case TypeId::kI64: {
        auto va = col.Get<int64_t>(a), vb = col.Get<int64_t>(b);
        cmp = va < vb ? -1 : va > vb ? 1 : 0;
        break;
      }
      case TypeId::kF64: {
        auto va = col.Get<double>(a), vb = col.Get<double>(b);
        cmp = va < vb ? -1 : va > vb ? 1 : 0;
        break;
      }
      case TypeId::kStr: {
        const StringVal& va = col.Strs()[a];
        const StringVal& vb = col.Strs()[b];
        cmp = va < vb ? -1 : vb < va ? 1 : 0;
        break;
      }
    }
    if (cmp != 0) return key.ascending ? cmp < 0 : cmp > 0;
  }
  return a < b;  // stable tie-break on input order
}

Status SortOperator::ConsumeAndSort() {
  DataChunk chunk;
  chunk.Init(child_->OutputTypes(), config_.vector_size);
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    chunk.Reset();
    VWISE_RETURN_IF_ERROR(child_->Next(&chunk));
    size_t n = chunk.ActiveCount();
    if (n == 0) break;
    VWISE_RETURN_IF_ERROR(mem_.Grow(EstimateChunkBytes(chunk)));
    const sel_t* sel = chunk.sel();
    for (size_t c = 0; c < chunk.num_columns(); c++) {
      data_[c].AppendFrom(chunk.column(c), sel, n);
    }
  }
  child_->Close();
  size_t rows = data_.empty() ? 0 : data_[0].size();
  VWISE_RETURN_IF_ERROR(mem_.Grow(rows * sizeof(uint32_t)));
  order_.resize(rows);
  std::iota(order_.begin(), order_.end(), 0);
  auto less = [this](uint32_t a, uint32_t b) { return RowLess(a, b); };
  size_t want = limit_ == SIZE_MAX ? rows
                                   : std::min(rows, offset_ + limit_);
  if (want < rows) {
    std::partial_sort(order_.begin(), order_.begin() + want, order_.end(), less);
    order_.resize(want);
  } else {
    std::sort(order_.begin(), order_.end(), less);
  }
  cursor_ = std::min(offset_, order_.size());
  sorted_ = true;
  return Status::OK();
}

Status SortOperator::Next(DataChunk* out) {
  // vwise-hotpath: allow(cold-call): materialize-and-sort runs once per
  // query before the first emitted vector
  if (!sorted_) VWISE_RETURN_IF_ERROR(ConsumeAndSort());
  size_t end = order_.size();
  if (limit_ != SIZE_MAX) end = std::min(end, offset_ + limit_);
  size_t batch = cursor_ < end ? std::min(out->capacity(), end - cursor_) : 0;
  if (batch == 0) {
    out->SetCount(0);
    return Status::OK();
  }
  for (size_t c = 0; c < data_.size(); c++) {
    data_[c].Gather(order_.data() + cursor_, batch, &out->column(c));
  }
  out->SetCount(batch);
  cursor_ += batch;
  return Status::OK();
}

void SortOperator::Close() {
  // Normally closed at the end of ConsumeAndSort; close again (idempotent)
  // so an error/cancel unwind still reaches fragments below.
  child_->Close();
  data_.clear();
  order_.clear();
  mem_.ReleaseAll();
}

Status LimitOperator::Next(DataChunk* out) {
  while (emitted_ < limit_) {
    out->Reset();
    VWISE_RETURN_IF_ERROR(child_->Next(out));
    size_t n = out->ActiveCount();
    if (n == 0) return Status::OK();
    // Skip offset rows, cap at the limit.
    size_t skip = seen_ < offset_ ? std::min(offset_ - seen_, n) : 0;
    seen_ += n;
    size_t take = std::min(n - skip, limit_ - emitted_);
    if (take == 0) continue;
    if (out->has_selection()) {
      // Shift the selection window.
      sel_t* sel = out->MutableSel();
      if (skip > 0) std::memmove(sel, sel + skip, take * sizeof(sel_t));
      out->SetSelection(take);
    } else if (skip > 0) {
      sel_t* sel = out->MutableSel();
      for (size_t i = 0; i < take; i++) sel[i] = static_cast<sel_t>(skip + i);
      out->SetSelection(take);
    } else {
      // Dense prefix: simply shrink the count.
      out->SetCount(take);
    }
    emitted_ += take;
    return Status::OK();
  }
  out->SetCount(0);
  return Status::OK();
}

}  // namespace vwise
