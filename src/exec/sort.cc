#include "exec/sort.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <system_error>

#include "exec/profile.h"
#include "storage/spill_file.h"

namespace vwise {

namespace {

// Saturating offset+limit: the raw sum wraps size_t for a large non-SIZE_MAX
// limit with a nonzero offset, collapsing the emit window and silently
// dropping rows.
size_t SatAdd(size_t a, size_t b) {
  size_t sum = a + b;
  return sum < a ? SIZE_MAX : sum;
}

}  // namespace

// One spilled run during the merge phase: its reader, the block currently in
// memory, and the cursor into it.
struct SortOperator::SortRun {
  std::unique_ptr<SpillReader> reader;
  DataChunk chunk;
  size_t pos = 0;
  bool done = false;
};

SortOperator::SortOperator(OperatorPtr child, std::vector<SortKey> keys,
                           const Config& config, size_t limit, size_t offset)
    : child_(InterposeChild(std::move(child), config, "sort.child")),
      keys_(std::move(keys)),
      config_(config),
      limit_(limit),
      offset_(offset) {}

SortOperator::~SortOperator() { DropRuns(); }

Status SortOperator::OpenImpl() {
  VWISE_RETURN_IF_ERROR(child_->Open(ctx()));
  mem_.Bind(ctx(), "sort materialization");
  data_.clear();
  for (TypeId t : child_->OutputTypes()) data_.emplace_back(t);
  order_.clear();
  cursor_ = 0;
  sorted_ = false;
  DropRuns();
  merge_skipped_ = 0;
  merge_emitted_ = 0;
  spill_runs_stat_ = 0;
  return Status::OK();
}

bool SortOperator::RowLess(uint32_t a, uint32_t b) const {
  for (const SortKey& key : keys_) {
    const ColumnStore& col = data_[key.col];
    int cmp = 0;
    switch (col.type()) {
      case TypeId::kU8: {
        auto va = col.Get<uint8_t>(a), vb = col.Get<uint8_t>(b);
        cmp = va < vb ? -1 : va > vb ? 1 : 0;
        break;
      }
      case TypeId::kI32: {
        auto va = col.Get<int32_t>(a), vb = col.Get<int32_t>(b);
        cmp = va < vb ? -1 : va > vb ? 1 : 0;
        break;
      }
      case TypeId::kI64: {
        auto va = col.Get<int64_t>(a), vb = col.Get<int64_t>(b);
        cmp = va < vb ? -1 : va > vb ? 1 : 0;
        break;
      }
      case TypeId::kF64: {
        auto va = col.Get<double>(a), vb = col.Get<double>(b);
        cmp = va < vb ? -1 : va > vb ? 1 : 0;
        break;
      }
      case TypeId::kStr: {
        const StringVal& va = col.Strs()[a];
        const StringVal& vb = col.Strs()[b];
        cmp = va < vb ? -1 : vb < va ? 1 : 0;
        break;
      }
    }
    if (cmp != 0) return key.ascending ? cmp < 0 : cmp > 0;
  }
  return a < b;  // stable tie-break on input order
}

Status SortOperator::ConsumeAndSort() {
  DataChunk chunk;
  chunk.Init(child_->OutputTypes(), config_.vector_size);
  while (true) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    chunk.Reset();
    VWISE_RETURN_IF_ERROR(child_->Next(&chunk));
    size_t n = chunk.ActiveCount();
    if (n == 0) break;
    // The row comparator and the column-store copies below read values
    // positionally; decode any encoded columns first.
    chunk.NormalizeColumns();
    // The chunk's share of the budget covers both the copied rows and their
    // slots in the sort index.
    size_t grow = EstimateChunkBytes(chunk) + n * sizeof(uint32_t);
    Status grown = mem_.Grow(grow);
    if (!grown.ok()) {
      if (grown.code() != StatusCode::kResourceExhausted ||
          !config_.enable_spill) {
        return grown;
      }
      // Budget full: turn the buffered rows into a spill run, then retry.
      // A second failure means even one chunk exceeds the budget — spilling
      // cannot make progress, so surface the original error.
      VWISE_RETURN_IF_ERROR(SpillRun());
      VWISE_RETURN_IF_ERROR(mem_.Grow(grow));
    }
    buffered_bytes_ += grow;
    const sel_t* sel = chunk.sel();
    for (size_t c = 0; c < chunk.num_columns(); c++) {
      data_[c].AppendFrom(chunk.column(c), sel, n);
    }
    // Global memory pressure: queued queries are waiting on the governor's
    // ledger. Flush the buffered rows early (once they are worth a run) so
    // the reservation shrinks and waiters can admit.
    if (config_.enable_spill &&
        buffered_bytes_ >= config_.pressure_spill_min_bytes &&
        ctx()->MemoryPressure()) {
      VWISE_RETURN_IF_ERROR(SpillRun());
      ctx()->NotePressureSpill();
      continue;
    }
    // Coexistence cap: with several pipeline breakers sharing one budget, a
    // breaker that grows until its own Grow fails saturates the budget and
    // starves the upstream breaker's partition reloads (which cannot wait
    // for this operator to flush). Cap the standing buffer at half the
    // budget so stacked breakers always leave headroom for each other.
    if (config_.enable_spill && ctx()->memory_budget() > 0 &&
        mem_.bytes() > ctx()->memory_budget() / 2) {
      VWISE_RETURN_IF_ERROR(SpillRun());
    }
  }
  child_->Close();
  if (!run_paths_.empty()) {
    VWISE_RETURN_IF_ERROR(SpillRun());  // flush the in-memory tail
    VWISE_RETURN_IF_ERROR(OpenMerge());
    sorted_ = true;
    return Status::OK();
  }
  size_t rows = data_.empty() ? 0 : data_[0].size();
  order_.resize(rows);
  std::iota(order_.begin(), order_.end(), 0);
  auto less = [this](uint32_t a, uint32_t b) { return RowLess(a, b); };
  size_t want = std::min(rows, SatAdd(offset_, limit_));
  if (want < rows) {
    std::partial_sort(order_.begin(), order_.begin() + want, order_.end(), less);
    order_.resize(want);
  } else {
    std::sort(order_.begin(), order_.end(), less);
  }
  cursor_ = std::min(offset_, order_.size());
  sorted_ = true;
  return Status::OK();
}

Status SortOperator::SpillRun() {
  size_t rows = data_.empty() ? 0 : data_[0].size();
  if (rows == 0) return Status::OK();
  order_.resize(rows);
  std::iota(order_.begin(), order_.end(), 0);
  auto less = [this](uint32_t a, uint32_t b) { return RowLess(a, b); };
  // A run only needs its own top offset+limit rows: anything deeper can
  // never reach the global top-K the merge emits.
  size_t want = std::min(rows, SatAdd(offset_, limit_));
  if (want < rows) {
    std::partial_sort(order_.begin(), order_.begin() + want, order_.end(), less);
    order_.resize(want);
  } else {
    std::sort(order_.begin(), order_.end(), less);
  }
  std::string path;
  VWISE_ASSIGN_OR_RETURN(path, ctx()->NewSpillPath("sort_run"));
  // Registered before writing so Close removes even a half-written file.
  run_paths_.push_back(path);
  spill_runs_stat_ = run_paths_.size();
  std::unique_ptr<SpillWriter> writer;
  VWISE_ASSIGN_OR_RETURN(writer,
                         SpillWriter::Create(path, child_->OutputTypes(),
                                             &ctx()->spill_counters()));
  DataChunk scratch;
  scratch.Init(child_->OutputTypes(), config_.vector_size);
  for (size_t i = 0; i < order_.size(); i += scratch.capacity()) {
    VWISE_RETURN_IF_ERROR(ctx()->Check());
    size_t batch = std::min(scratch.capacity(), order_.size() - i);
    scratch.Reset();
    for (size_t c = 0; c < data_.size(); c++) {
      data_[c].Gather(order_.data() + i, batch, &scratch.column(c));
    }
    scratch.SetCount(batch);
    VWISE_RETURN_IF_ERROR(writer->Append(scratch));
  }
  data_.clear();
  for (TypeId t : child_->OutputTypes()) data_.emplace_back(t);
  order_.clear();
  mem_.Shrink(buffered_bytes_);
  buffered_bytes_ = 0;
  return Status::OK();
}

Status SortOperator::OpenMerge() {
  // The merge working set is one resident block per run; reserve it so a
  // budget too small to even merge fails loudly instead of oversubscribing.
  size_t row_fixed = 0;
  for (TypeId t : child_->OutputTypes()) row_fixed += TypeWidth(t);
  VWISE_RETURN_IF_ERROR(
      mem_.Grow(run_paths_.size() * config_.vector_size * row_fixed));
  for (const std::string& path : run_paths_) {
    auto run = std::make_unique<SortRun>();
    run->chunk.Init(child_->OutputTypes(), config_.vector_size);
    VWISE_ASSIGN_OR_RETURN(run->reader,
                           SpillReader::Open(path, child_->OutputTypes(),
                                             &ctx()->spill_counters()));
    bool more = false;
    VWISE_ASSIGN_OR_RETURN(more, run->reader->Next(&run->chunk));
    run->done = !more;
    runs_.push_back(std::move(run));
  }
  merge_skipped_ = 0;
  merge_emitted_ = 0;
  return Status::OK();
}

int SortOperator::CompareRunRows(const SortRun& a, const SortRun& b) const {
  for (const SortKey& key : keys_) {
    const Vector& va = a.chunk.column(key.col);
    const Vector& vb = b.chunk.column(key.col);
    int cmp = 0;
    switch (va.type()) {
      case TypeId::kU8: {
        auto x = va.Data<uint8_t>()[a.pos], y = vb.Data<uint8_t>()[b.pos];
        cmp = x < y ? -1 : x > y ? 1 : 0;
        break;
      }
      case TypeId::kI32: {
        auto x = va.Data<int32_t>()[a.pos], y = vb.Data<int32_t>()[b.pos];
        cmp = x < y ? -1 : x > y ? 1 : 0;
        break;
      }
      case TypeId::kI64: {
        auto x = va.Data<int64_t>()[a.pos], y = vb.Data<int64_t>()[b.pos];
        cmp = x < y ? -1 : x > y ? 1 : 0;
        break;
      }
      case TypeId::kF64: {
        auto x = va.Data<double>()[a.pos], y = vb.Data<double>()[b.pos];
        cmp = x < y ? -1 : x > y ? 1 : 0;
        break;
      }
      case TypeId::kStr: {
        const StringVal& x = va.Data<StringVal>()[a.pos];
        const StringVal& y = vb.Data<StringVal>()[b.pos];
        cmp = x < y ? -1 : y < x ? 1 : 0;
        break;
      }
    }
    if (cmp != 0) return key.ascending ? cmp : -cmp;
  }
  return 0;
}

Status SortOperator::AdvanceRun(SortRun* run) {
  run->pos++;
  if (run->pos < run->chunk.count()) return Status::OK();
  run->pos = 0;
  bool more = false;
  VWISE_ASSIGN_OR_RETURN(more, run->reader->Next(&run->chunk));
  if (!more) run->done = true;
  return Status::OK();
}

Status SortOperator::MergeNext(DataChunk* out) {
  VWISE_RETURN_IF_ERROR(ctx()->Check());
  size_t cap = out->capacity();
  size_t n = 0;
  while (n < cap) {
    if (limit_ != SIZE_MAX && merge_emitted_ >= limit_) break;
    // Lowest-index run wins ties: runs are written in input order and each
    // run is internally input-order-stable, so this reproduces the total
    // order of the in-memory comparator (keys, then input position).
    SortRun* best = nullptr;
    for (const auto& run : runs_) {
      if (run->done) continue;
      if (best == nullptr || CompareRunRows(*run, *best) < 0) best = run.get();
    }
    if (best == nullptr) break;
    if (merge_skipped_ < offset_) {
      merge_skipped_++;
      VWISE_RETURN_IF_ERROR(AdvanceRun(best));
      continue;
    }
    for (size_t c = 0; c < out->num_columns(); c++) {
      const Vector& src = best->chunk.column(c);
      Vector& dst = out->column(c);
      switch (src.type()) {
        case TypeId::kU8:
          dst.Data<uint8_t>()[n] = src.Data<uint8_t>()[best->pos];
          break;
        case TypeId::kI32:
          dst.Data<int32_t>()[n] = src.Data<int32_t>()[best->pos];
          break;
        case TypeId::kI64:
          dst.Data<int64_t>()[n] = src.Data<int64_t>()[best->pos];
          break;
        case TypeId::kF64:
          dst.Data<double>()[n] = src.Data<double>()[best->pos];
          break;
        case TypeId::kStr: {
          // Deep copy: the source block is replaced mid-fill when a run's
          // chunk drains, so emitted strings must own their bytes.
          const StringVal& sv = src.Data<StringVal>()[best->pos];
          dst.Data<StringVal>()[n] = dst.GetStringHeap()->Add(sv.view());
          break;
        }
      }
    }
    n++;
    merge_emitted_++;
    VWISE_RETURN_IF_ERROR(AdvanceRun(best));
  }
  out->SetCount(n);
  return Status::OK();
}

Status SortOperator::Next(DataChunk* out) {
  // vwise-hotpath: allow(cold-call): materialize-and-sort runs once per
  // query before the first emitted vector
  if (!sorted_) VWISE_RETURN_IF_ERROR(ConsumeAndSort());
  if (!runs_.empty()) {
    // vwise-hotpath: allow(cold-call): external-merge emission runs only
    // after the sort degraded to disk under a memory budget
    return MergeNext(out);
  }
  size_t end = std::min(order_.size(), SatAdd(offset_, limit_));
  size_t batch = cursor_ < end ? std::min(out->capacity(), end - cursor_) : 0;
  if (batch == 0) {
    out->SetCount(0);
    return Status::OK();
  }
  for (size_t c = 0; c < data_.size(); c++) {
    data_[c].Gather(order_.data() + cursor_, batch, &out->column(c));
  }
  out->SetCount(batch);
  cursor_ += batch;
  return Status::OK();
}

void SortOperator::DropRuns() {
  runs_.clear();
  for (const std::string& path : run_paths_) {
    std::error_code ec;
    std::filesystem::remove(path, ec);  // best effort; ctx dir is the backstop
  }
  run_paths_.clear();
  buffered_bytes_ = 0;
}

void SortOperator::Close() {
  // Normally closed at the end of ConsumeAndSort; close again (idempotent)
  // so an error/cancel unwind still reaches fragments below.
  child_->Close();
  data_.clear();
  order_.clear();
  DropRuns();
  mem_.ReleaseAll();
}

Status LimitOperator::Next(DataChunk* out) {
  while (emitted_ < limit_) {
    out->Reset();
    VWISE_RETURN_IF_ERROR(child_->Next(out));
    size_t n = out->ActiveCount();
    if (n == 0) return Status::OK();
    // Skip offset rows, cap at the limit.
    size_t skip = seen_ < offset_ ? std::min(offset_ - seen_, n) : 0;
    seen_ += n;
    size_t take = std::min(n - skip, limit_ - emitted_);
    if (take == 0) continue;
    if (out->has_selection()) {
      // Shift the selection window.
      sel_t* sel = out->MutableSel();
      if (skip > 0) std::memmove(sel, sel + skip, take * sizeof(sel_t));
      out->SetSelection(take);
    } else if (skip > 0) {
      sel_t* sel = out->MutableSel();
      for (size_t i = 0; i < take; i++) sel[i] = static_cast<sel_t>(skip + i);
      out->SetSelection(take);
    } else {
      // Dense prefix: simply shrink the count. An RLE view's runs must close
      // exactly at the chunk count, so a truncated chunk decodes its kept
      // prefix first (dict views are per-row and survive the shrink).
      if (take < n) {
        for (size_t c = 0; c < out->num_columns(); c++) {
          Vector& col = out->column(c);
          if (col.repr() == VectorRepr::kRle) {
            // vwise-hotpath: allow(cold-call): runs at most once per query —
            // the chunk that crosses the limit boundary
            col.Normalize(take);
          }
        }
      }
      out->SetCount(take);
    }
    emitted_ += take;
    return Status::OK();
  }
  out->SetCount(0);
  return Status::OK();
}

}  // namespace vwise
