#ifndef VWISE_EXEC_HASH_AGG_H_
#define VWISE_EXEC_HASH_AGG_H_

#include <memory>
#include <vector>

#include "exec/column_store.h"
#include "exec/operator.h"
#include "service/query_context.h"

namespace vwise {

// One aggregate function over an input column.
struct AggSpec {
  enum class Fn : uint8_t { kSum, kMin, kMax, kCount, kCountStar, kAvg };
  Fn fn;
  size_t col = 0;  // ignored for kCountStar

  static AggSpec Sum(size_t col) { return {Fn::kSum, col}; }
  static AggSpec Min(size_t col) { return {Fn::kMin, col}; }
  static AggSpec Max(size_t col) { return {Fn::kMax, col}; }
  static AggSpec Count(size_t col) { return {Fn::kCount, col}; }
  static AggSpec CountStar() { return {Fn::kCountStar, 0}; }
  static AggSpec Avg(size_t col) { return {Fn::kAvg, col}; }
};

// Vectorized hash aggregation (grouped or, with no group columns, a single
// global group). Hashes are computed a vector at a time; group resolution
// fills a per-chunk group-index array that the per-aggregate update loops
// then consume — no per-row function dispatch.
//
// Output: group columns, then one column per aggregate (sum keeps the input
// physical type for i64, widens to f64 otherwise; count is i64; avg is f64;
// min/max keep the input type).
class HashAggOperator final : public Operator {
 public:
  HashAggOperator(OperatorPtr child, std::vector<size_t> group_cols,
                  std::vector<AggSpec> aggs, const Config& config);

  const std::vector<TypeId>& OutputTypes() const override { return out_types_; }
  Status Next(DataChunk* out) override;
  void Close() override;

  size_t num_groups() const { return n_groups_; }

  // Static-analysis surface (plan verifier).
  const Operator& child() const { return *child_; }
  const std::vector<size_t>& group_cols() const { return group_cols_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

 private:
  Status OpenImpl() override;
  Status ConsumeInput();
  Status ProcessChunk(const DataChunk& chunk);
  void ResizeTable(size_t buckets);
  uint32_t FindOrCreateGroup(const DataChunk& chunk, sel_t pos, uint64_t hash);

  OperatorPtr child_;
  std::vector<size_t> group_cols_;
  std::vector<AggSpec> aggs_;
  Config config_;
  std::vector<TypeId> out_types_;

  // Group keys (owned copies) + open-addressing table of group indices.
  std::vector<ColumnStore> key_stores_;
  std::vector<uint64_t> group_hashes_;
  std::vector<uint32_t> slots_;
  uint64_t slot_mask_ = 0;
  size_t n_groups_ = 0;

  // Aggregate states, one entry per group.
  struct AggState {
    TypeId in_type;      // physical type of the input column
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<int64_t> count;  // avg / first-touch tracking for min/max
  };
  std::vector<AggState> states_;

  // Scratch, leased from the query's VectorScratch arena in OpenImpl and
  // held for the operator's lifetime — Next()/ProcessChunk touch no
  // allocator.
  ScratchHandle hash_scratch_;  // uint64_t[vector_size]
  ScratchHandle group_idx_;     // uint32_t[vector_size]
  ScratchHandle emit_idx_;      // uint32_t[vector_size], emit-phase gather
  bool consumed_ = false;
  size_t emit_cursor_ = 0;

  // Per-query memory budget accounting: grown by the estimated per-group
  // footprint as groups are created, released in Close().
  MemoryReservation mem_;
  size_t per_group_bytes_ = 0;
  size_t reserved_groups_ = 0;
};

}  // namespace vwise

#endif  // VWISE_EXEC_HASH_AGG_H_
