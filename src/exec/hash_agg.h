#ifndef VWISE_EXEC_HASH_AGG_H_
#define VWISE_EXEC_HASH_AGG_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "exec/column_store.h"
#include "exec/operator.h"
#include "service/query_context.h"

namespace vwise {

class SpillWriter;  // storage/spill_file.h

// One aggregate function over an input column.
struct AggSpec {
  enum class Fn : uint8_t { kSum, kMin, kMax, kCount, kCountStar, kAvg };
  Fn fn;
  size_t col = 0;  // ignored for kCountStar

  static AggSpec Sum(size_t col) { return {Fn::kSum, col}; }
  static AggSpec Min(size_t col) { return {Fn::kMin, col}; }
  static AggSpec Max(size_t col) { return {Fn::kMax, col}; }
  static AggSpec Count(size_t col) { return {Fn::kCount, col}; }
  static AggSpec CountStar() { return {Fn::kCountStar, 0}; }
  static AggSpec Avg(size_t col) { return {Fn::kAvg, col}; }
};

// Vectorized hash aggregation (grouped or, with no group columns, a single
// global group). Hashes are computed a vector at a time; group resolution
// fills a per-chunk group-index array that the per-aggregate update loops
// then consume — no per-row function dispatch.
//
// Output: group columns, then one column per aggregate (sum keeps the input
// physical type for i64, widens to f64 otherwise; count is i64; avg is f64;
// min/max keep the input type).
//
// When the group table overruns the query's memory budget (and
// Config::enable_spill is on), the operator degrades to radix-partitioned
// spilling: the table is flushed to disk as mergeable "state rows" (keys +
// per-aggregate state lanes), partitioned by the high bits of the group
// hash, and cleared; at emit time the partitions are reloaded one at a time
// and merge-aggregated, so every partition needs only its own share of the
// budget. Spilling changes the group output order (partition-major instead
// of first-appearance) but not the set of rows.
class HashAggOperator final : public Operator {
 public:
  HashAggOperator(OperatorPtr child, std::vector<size_t> group_cols,
                  std::vector<AggSpec> aggs, const Config& config);
  ~HashAggOperator() override;

  const std::vector<TypeId>& OutputTypes() const override { return out_types_; }
  Status Next(DataChunk* out) override;
  void Close() override;

  size_t num_groups() const { return n_groups_; }

  // Static-analysis surface (plan verifier).
  const Operator& child() const { return *child_; }
  const std::vector<size_t>& group_cols() const { return group_cols_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }
  // Spill telemetry (EXPLAIN ANALYZE): radix partitions written, if any.
  // Survives Close() — the profile is rendered after the tree is closed —
  // and resets on the next Open.
  size_t spill_partitions() const { return spill_partitions_stat_; }
  // Recursive-repartition telemetry: oversized partitions split onto a
  // fresh radix level, and the deepest level reached (0 = initial flush
  // sufficed). Survive Close() like spill_partitions().
  size_t spill_repartitions() const { return spill_repartitions_stat_; }
  size_t spill_repartition_depth() const { return spill_depth_stat_; }

 private:
  Status OpenImpl() override;
  Status ConsumeInput();
  // Mutable chunk: encoded group-key columns are normalized in place, and
  // encoded aggregate inputs either take the per-run RLE fast path (global
  // aggregates) or normalize on demand.
  Status ProcessChunk(DataChunk& chunk);
  void ResizeTable(size_t buckets);
  uint32_t FindOrCreateGroup(const DataChunk& chunk, sel_t pos, uint64_t hash,
                             const size_t* key_cols);
  // Lays out the spill "state row" schema: key columns first, then one value
  // lane per aggregate (i64 or f64) plus a count lane for min/max/avg.
  void BuildStateSchema();
  // One spilled partition of state rows awaiting its merge pass. Level 0
  // partitions come from the consume-phase flushes; deeper levels are
  // created by recursive repartitioning when one partition's groups alone
  // exceed the budget — each level routes on a fresh byte of the group hash.
  struct PendingPartition {
    std::string path;
    size_t level = 0;
  };

  // Flushes the whole group table to the partition writers (creating them on
  // first use) and clears it, giving its reservation back.
  Status SpillGroups();
  // Re-aggregates one spilled partition into the (empty) in-memory table.
  Status LoadPartition(const std::string& path);
  // Splits an oversized partition onto the next radix level.
  Status RepartitionPartition(const PendingPartition& part);
  size_t RepartitionFanout(uint64_t part_bytes) const;
  // Merge-aggregates a chunk of state rows (the spill-side ProcessChunk).
  Status ProcessStateChunk(const DataChunk& chunk);
  // Resets the group table and returns its budget reservation.
  void ClearTable();
  void DropPartitions();

  OperatorPtr child_;
  std::vector<size_t> group_cols_;
  std::vector<AggSpec> aggs_;
  Config config_;
  std::vector<TypeId> out_types_;

  // Group keys (owned copies) + open-addressing table of group indices.
  std::vector<ColumnStore> key_stores_;
  std::vector<uint64_t> group_hashes_;
  std::vector<uint32_t> slots_;
  uint64_t slot_mask_ = 0;
  size_t n_groups_ = 0;

  // Aggregate states, one entry per group.
  struct AggState {
    TypeId in_type;      // physical type of the input column
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<int64_t> count;  // avg / first-touch tracking for min/max
  };
  std::vector<AggState> states_;

  // Scratch, leased from the query's VectorScratch arena in OpenImpl and
  // held for the operator's lifetime — Next()/ProcessChunk touch no
  // allocator.
  ScratchHandle hash_scratch_;  // uint64_t[vector_size]
  ScratchHandle group_idx_;     // uint32_t[vector_size]
  ScratchHandle emit_idx_;      // uint32_t[vector_size], emit-phase gather
  bool consumed_ = false;
  size_t emit_cursor_ = 0;

  // Per-query memory budget accounting: a worst-case bound (every row of the
  // incoming slice a fresh group) is reserved BEFORE insertion and trimmed to
  // the groups actually created afterwards, released in Close().
  MemoryReservation mem_;
  size_t per_group_bytes_ = 0;
  size_t reserved_groups_ = 0;

  // Radix-spill state; empty unless the budget forced a flush.
  struct StateLane {
    size_t value_col;  // state-row column of the value lane
    size_t count_col;  // count lane (min/max/avg), SIZE_MAX otherwise
    bool is_i64;       // physical type of the value lane
  };
  bool spilled_ = false;
  size_t n_partitions_ = 0;
  std::vector<TypeId> state_types_;
  std::vector<StateLane> lanes_;
  std::vector<size_t> identity_cols_;  // 0..n_keys-1: key cols of a state row
  std::vector<std::string> partition_paths_;
  std::vector<std::unique_ptr<SpillWriter>> writers_;
  std::deque<PendingPartition> pending_;  // emit phase: partitions to merge
  size_t spill_partitions_stat_ = 0;  // telemetry; outlives Close()
  size_t spill_repartitions_stat_ = 0;
  size_t spill_depth_stat_ = 0;
};

}  // namespace vwise

#endif  // VWISE_EXEC_HASH_AGG_H_
