#include "scan/scan_scheduler.h"

#include <algorithm>

namespace vwise {

std::unique_ptr<ScanScheduler::Handle> ScanScheduler::Register(
    const TableFile* file, std::vector<size_t> stripes) {
  auto handle = std::make_unique<Handle>();
  handle->file = file;
  handle->remaining = std::move(stripes);
  MutexLock lock(&mu_);
  active_.push_back(handle.get());
  return handle;
}

void ScanScheduler::Finish(Handle* handle) {
  MutexLock lock(&mu_);
  active_.erase(std::remove(active_.begin(), active_.end(), handle),
                active_.end());
}

bool ScanScheduler::StripeResident(const TableFile* file,
                                   size_t stripe) const {
  // A stripe is "resident" if every group blob of it is cached; scans of a
  // subset of groups still benefit, so checking group 0 is a practical
  // approximation (DSM scans key their I/O per column anyway).
  for (uint32_t g = 0; g < file->groups().groups.size(); g++) {
    if (buffers_->Cached(file->file_id(), file->GroupBlobOffset(stripe, g))) {
      return true;
    }
  }
  return false;
}

size_t ScanScheduler::SharedDemand(const Handle* self, const TableFile* file,
                                   size_t stripe) const {
  size_t demand = 0;
  for (const Handle* h : active_) {
    if (h == self || h->file != file) continue;
    if (std::find(h->remaining.begin(), h->remaining.end(), stripe) !=
        h->remaining.end()) {
      demand++;
    }
  }
  return demand;
}

std::optional<size_t> ScanScheduler::Next(Handle* handle) {
  MutexLock lock(&mu_);
  if (handle->remaining.empty()) return std::nullopt;

  size_t chosen_idx = 0;
  if (policy_ == ScanPolicy::kLru) {
    // File order; `remaining` is kept sorted by construction.
    chosen_idx = 0;
  } else {
    // Relevance: resident stripes first (any transfer already paid for);
    // otherwise the stripe most scans are waiting for, so the one load
    // serves all of them.
    int best_score = -1;
    for (size_t i = 0; i < handle->remaining.size(); i++) {
      size_t stripe = handle->remaining[i];
      bool resident = StripeResident(handle->file, stripe);
      size_t demand = SharedDemand(handle, handle->file, stripe);
      int score = (resident ? 1000000 : 0) + static_cast<int>(demand);
      if (score > best_score) {
        best_score = score;
        chosen_idx = i;
        if (resident && demand + 1 >= active_.size()) break;  // can't do better
      }
    }
  }
  size_t stripe = handle->remaining[chosen_idx];
  handle->remaining.erase(handle->remaining.begin() + chosen_idx);
  return stripe;
}

}  // namespace vwise
