#ifndef VWISE_SCAN_SCAN_SCHEDULER_H_
#define VWISE_SCAN_SCAN_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/buffer_manager.h"
#include "storage/table_file.h"

namespace vwise {

// Decides the order in which concurrent scans consume table stripes — the
// Cooperative Scans "Active Buffer Manager" of paper [4]. Scans that do not
// care about row order register their remaining stripe set and repeatedly
// ask which stripe to process next:
//
//  * kLru        — classic behavior: every scan reads its stripes in file
//                  order, relying on LRU buffering (the baseline in [4]).
//  * kCooperative— relevance-based: prefer stripes already resident in the
//                  buffer pool; when loading is unavoidable, load the stripe
//                  wanted by the most concurrent scans, so one transfer
//                  serves many readers.
enum class ScanPolicy { kLru, kCooperative };

class ScanScheduler {
 public:
  ScanScheduler(ScanPolicy policy, BufferManager* buffers)
      : policy_(policy), buffers_(buffers) {}

  // Opaque per-scan registration. A Handle's fields are written before the
  // handle is published into active_ (under mu_) and mutated only by
  // Next()/Finish() with mu_ held — the scheduler lock is the capability
  // that guards every registered handle.
  class Handle {
   private:
    friend class ScanScheduler;
    const TableFile* file = nullptr;
    std::vector<size_t> remaining;   // stripes not yet delivered
    size_t cursor = 0;               // kLru: next index in `remaining`
  };

  // Registers a scan over `stripes` of `file`. `group` is the column group
  // whose blob residency is checked (scans key their I/O on it).
  std::unique_ptr<Handle> Register(const TableFile* file,
                                   std::vector<size_t> stripes)
      VWISE_EXCLUDES(mu_);

  // Picks the stripe this scan should process next (and removes it from the
  // scan's remaining set). nullopt when the scan is done.
  std::optional<size_t> Next(Handle* handle) VWISE_EXCLUDES(mu_);

  void Finish(Handle* handle) VWISE_EXCLUDES(mu_);

 private:
  // Both helpers walk active_ (and peek into the buffer manager, which takes
  // its own lock — ordering is always scheduler -> buffer manager, never the
  // reverse, so the hierarchy is acyclic).
  bool StripeResident(const TableFile* file, size_t stripe) const
      VWISE_REQUIRES(mu_);
  // Number of *other* active scans of `file` still needing `stripe`.
  size_t SharedDemand(const Handle* self, const TableFile* file,
                      size_t stripe) const VWISE_REQUIRES(mu_);

  ScanPolicy policy_;
  BufferManager* buffers_;
  mutable Mutex mu_;
  std::vector<Handle*> active_ VWISE_GUARDED_BY(mu_);
};

}  // namespace vwise

#endif  // VWISE_SCAN_SCAN_SCHEDULER_H_
