#ifndef VWISE_SCAN_SCAN_SCHEDULER_H_
#define VWISE_SCAN_SCAN_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/table_file.h"

namespace vwise {

// Decides the order in which concurrent scans consume table stripes — the
// Cooperative Scans "Active Buffer Manager" of paper [4]. Scans that do not
// care about row order register their remaining stripe set and repeatedly
// ask which stripe to process next:
//
//  * kLru        — classic behavior: every scan reads its stripes in file
//                  order, relying on LRU buffering (the baseline in [4]).
//  * kCooperative— relevance-based: prefer stripes already resident in the
//                  buffer pool; when loading is unavoidable, load the stripe
//                  wanted by the most concurrent scans, so one transfer
//                  serves many readers.
enum class ScanPolicy { kLru, kCooperative };

class ScanScheduler {
 public:
  ScanScheduler(ScanPolicy policy, BufferManager* buffers)
      : policy_(policy), buffers_(buffers) {}

  // Opaque per-scan registration.
  class Handle {
   private:
    friend class ScanScheduler;
    const TableFile* file = nullptr;
    std::vector<size_t> remaining;   // stripes not yet delivered
    size_t cursor = 0;               // kLru: next index in `remaining`
  };

  // Registers a scan over `stripes` of `file`. `group` is the column group
  // whose blob residency is checked (scans key their I/O on it).
  std::unique_ptr<Handle> Register(const TableFile* file,
                                   std::vector<size_t> stripes);

  // Picks the stripe this scan should process next (and removes it from the
  // scan's remaining set). nullopt when the scan is done.
  std::optional<size_t> Next(Handle* handle);

  void Finish(Handle* handle);

 private:
  bool StripeResident(const TableFile* file, size_t stripe) const;
  // Number of *other* active scans of `file` still needing `stripe`.
  size_t SharedDemand(const Handle* self, const TableFile* file,
                      size_t stripe) const;

  ScanPolicy policy_;
  BufferManager* buffers_;
  mutable std::mutex mu_;
  std::vector<Handle*> active_;
};

}  // namespace vwise

#endif  // VWISE_SCAN_SCAN_SCHEDULER_H_
