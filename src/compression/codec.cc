#include "compression/codec.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string_view>
#include <unordered_map>

#include "common/bitutil.h"
#include "common/macros.h"

namespace vwise::compression {

namespace {

// --- blob read/write helpers ------------------------------------------------

void PutBytes(std::vector<uint8_t>* blob, const void* p, size_t n) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  blob->insert(blob->end(), b, b + n);
}

template <typename T>
void Put(std::vector<uint8_t>* blob, T v) {
  PutBytes(blob, &v, sizeof(T));
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}
  explicit Reader(const std::vector<uint8_t>& blob)
      : Reader(blob.data(), blob.size()) {}

  template <typename T>
  Status Get(T* out) {
    if (p_ + sizeof(T) > end_) return Status::Corruption("segment truncated");
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
    return Status::OK();
  }
  Status GetBytes(void* out, size_t n) {
    if (n == 0) return Status::OK();
    if (p_ + n > end_) return Status::Corruption("segment truncated");
    std::memcpy(out, p_, n);
    p_ += n;
    return Status::OK();
  }
  Status Skip(size_t n) {
    if (p_ + n > end_) return Status::Corruption("segment truncated");
    p_ += n;
    return Status::OK();
  }
  const uint8_t* cursor() const { return p_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

// --- generic integer widening ------------------------------------------------

size_t FixedWidth(TypeId t) { return TypeWidth(t); }

// Loads value i of a fixed-width column as uint64 bits (sign-extended for
// signed ints so frame-of-reference arithmetic behaves).
uint64_t LoadInt(TypeId t, const void* values, size_t i) {
  switch (t) {
    case TypeId::kU8:
      return static_cast<const uint8_t*>(values)[i];
    case TypeId::kI32:
      return static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<const int32_t*>(values)[i]));
    case TypeId::kI64:
      return static_cast<uint64_t>(static_cast<const int64_t*>(values)[i]);
    case TypeId::kF64: {
      uint64_t bits;
      std::memcpy(&bits, static_cast<const double*>(values) + i, 8);
      return bits;
    }
    case TypeId::kStr:
      break;
  }
  VWISE_CHECK_MSG(false, "LoadInt on string");
  return 0;
}

void StoreInt(TypeId t, void* out, size_t i, uint64_t v) {
  switch (t) {
    case TypeId::kU8:
      static_cast<uint8_t*>(out)[i] = static_cast<uint8_t>(v);
      return;
    case TypeId::kI32:
      static_cast<int32_t*>(out)[i] = static_cast<int32_t>(v);
      return;
    case TypeId::kI64:
      static_cast<int64_t*>(out)[i] = static_cast<int64_t>(v);
      return;
    case TypeId::kF64:
      std::memcpy(static_cast<double*>(out) + i, &v, 8);
      return;
    case TypeId::kStr:
      break;
  }
  VWISE_CHECK_MSG(false, "StoreInt on string");
}

bool IsIntType(TypeId t) { return t == TypeId::kU8 || t == TypeId::kI32 || t == TypeId::kI64; }

// --- PFOR core ----------------------------------------------------------------
// Encodes a u64 array (already offset/delta-transformed, non-negative) by
// choosing the bit width minimizing packed size + exception size.

struct PforPlan {
  int width = 0;
  uint32_t n_exceptions = 0;
};

PforPlan PlanPfor(const uint64_t* vals, size_t n) {
  // Count values per bit width.
  size_t width_hist[65] = {0};
  for (size_t i = 0; i < n; i++) width_hist[bit::BitWidth(vals[i])]++;
  // For each width w, everything wider is an exception (4-byte position +
  // 8-byte value).
  PforPlan best;
  size_t best_cost = std::numeric_limits<size_t>::max();
  size_t wider = n;
  for (int w = 0; w <= 64; w++) {
    wider -= width_hist[w];
    size_t cost = bit::PackedSize(n, w) + wider * 12;
    if (cost < best_cost) {
      best_cost = cost;
      best.width = w;
      best.n_exceptions = static_cast<uint32_t>(wider);
    }
  }
  return best;
}

void EncodePforCore(const uint64_t* vals, size_t n, std::vector<uint8_t>* blob) {
  PforPlan plan = PlanPfor(vals, n);
  uint64_t mask = plan.width == 64 ? ~uint64_t{0}
                                   : ((uint64_t{1} << plan.width) - 1);
  std::vector<uint64_t> slots(n);
  std::vector<uint32_t> exc_pos;
  std::vector<uint64_t> exc_val;
  exc_pos.reserve(plan.n_exceptions);
  exc_val.reserve(plan.n_exceptions);
  for (size_t i = 0; i < n; i++) {
    if (bit::BitWidth(vals[i]) > plan.width) {
      exc_pos.push_back(static_cast<uint32_t>(i));
      exc_val.push_back(vals[i]);
      slots[i] = vals[i] & mask;  // patched on decode
    } else {
      slots[i] = vals[i];
    }
  }
  Put<uint8_t>(blob, static_cast<uint8_t>(plan.width));
  Put<uint32_t>(blob, static_cast<uint32_t>(exc_pos.size()));
  size_t packed = bit::PackedSize(n, plan.width);
  size_t off = blob->size();
  blob->resize(off + packed);
  if (plan.width > 0) bit::PackBits(slots.data(), n, plan.width, blob->data() + off);
  PutBytes(blob, exc_pos.data(), exc_pos.size() * sizeof(uint32_t));
  PutBytes(blob, exc_val.data(), exc_val.size() * sizeof(uint64_t));
}

Status DecodePforCore(Reader* r, size_t n, uint64_t* out) {
  uint8_t width;
  uint32_t n_exc;
  VWISE_RETURN_IF_ERROR(r->Get(&width));
  VWISE_RETURN_IF_ERROR(r->Get(&n_exc));
  if (width > 64) return Status::Corruption("bad PFOR width");
  size_t packed = bit::PackedSize(n, width);
  if (r->remaining() < packed) return Status::Corruption("PFOR packed data truncated");
  bit::UnpackBits(r->cursor(), n, width, out);
  VWISE_RETURN_IF_ERROR(r->Skip(packed));
  std::vector<uint32_t> exc_pos(n_exc);
  std::vector<uint64_t> exc_val(n_exc);
  VWISE_RETURN_IF_ERROR(r->GetBytes(exc_pos.data(), n_exc * sizeof(uint32_t)));
  VWISE_RETURN_IF_ERROR(r->GetBytes(exc_val.data(), n_exc * sizeof(uint64_t)));
  for (uint32_t i = 0; i < n_exc; i++) {
    if (exc_pos[i] >= n) return Status::Corruption("bad PFOR exception position");
    out[exc_pos[i]] = exc_val[i];
  }
  return Status::OK();
}

// --- scheme encoders ------------------------------------------------------------

Result<CompressedSegment> EncodePlain(TypeId type, const void* values, size_t n) {
  CompressedSegment seg;
  seg.codec = Codec::kPlain;
  seg.type = type;
  seg.count = static_cast<uint32_t>(n);
  if (type == TypeId::kStr) {
    const StringVal* sv = static_cast<const StringVal*>(values);
    Put<uint32_t>(&seg.data, 0);  // placeholder for byte count
    uint64_t total = 0;
    for (size_t i = 0; i < n; i++) {
      Put<uint32_t>(&seg.data, sv[i].len);
      total += sv[i].len;
    }
    VWISE_CHECK_MSG(total <= std::numeric_limits<uint32_t>::max(),
                    "string segment too large");
    uint32_t total32 = static_cast<uint32_t>(total);
    std::memcpy(seg.data.data(), &total32, 4);
    for (size_t i = 0; i < n; i++) PutBytes(&seg.data, sv[i].ptr, sv[i].len);
  } else {
    PutBytes(&seg.data, values, n * FixedWidth(type));
  }
  return seg;
}

Result<CompressedSegment> EncodePfor(TypeId type, const void* values, size_t n,
                                     bool delta) {
  if (!IsIntType(type)) {
    return Status::InvalidArgument("PFOR requires an integer type");
  }
  CompressedSegment seg;
  seg.codec = delta ? Codec::kPforDelta : Codec::kPfor;
  seg.type = type;
  seg.count = static_cast<uint32_t>(n);
  if (n == 0) return seg;

  std::vector<uint64_t> work(n);
  if (delta) {
    // First value verbatim in the header; zigzag deltas for the rest.
    uint64_t first = LoadInt(type, values, 0);
    Put<uint64_t>(&seg.data, first);
    int64_t prev = static_cast<int64_t>(first);
    for (size_t i = 1; i < n; i++) {
      int64_t cur = static_cast<int64_t>(LoadInt(type, values, i));
      work[i - 1] = bit::ZigZagEncode(cur - prev);
      prev = cur;
    }
    work.resize(n - 1);
    if (!work.empty()) EncodePforCore(work.data(), work.size(), &seg.data);
  } else {
    // Frame of reference = min value.
    int64_t base = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i < n; i++) {
      base = std::min(base, static_cast<int64_t>(LoadInt(type, values, i)));
    }
    Put<int64_t>(&seg.data, base);
    for (size_t i = 0; i < n; i++) {
      work[i] = static_cast<uint64_t>(
          static_cast<int64_t>(LoadInt(type, values, i)) - base);
    }
    EncodePforCore(work.data(), n, &seg.data);
  }
  return seg;
}

Result<CompressedSegment> EncodeRle(TypeId type, const void* values, size_t n) {
  if (type == TypeId::kStr) {
    return Status::InvalidArgument("RLE not supported for strings");
  }
  CompressedSegment seg;
  seg.codec = Codec::kRle;
  seg.type = type;
  seg.count = static_cast<uint32_t>(n);
  uint32_t n_runs = 0;
  Put<uint32_t>(&seg.data, 0);  // placeholder
  size_t i = 0;
  while (i < n) {
    uint64_t v = LoadInt(type, values, i);
    size_t j = i + 1;
    while (j < n && LoadInt(type, values, j) == v) j++;
    Put<uint64_t>(&seg.data, v);
    Put<uint32_t>(&seg.data, static_cast<uint32_t>(j - i));
    n_runs++;
    i = j;
  }
  std::memcpy(seg.data.data(), &n_runs, 4);
  return seg;
}

Result<CompressedSegment> EncodePdict(TypeId type, const void* values, size_t n) {
  if (type != TypeId::kStr) {
    return Status::InvalidArgument("PDICT requires strings");
  }
  const StringVal* sv = static_cast<const StringVal*>(values);
  std::unordered_map<std::string_view, uint32_t> dict;
  std::vector<std::string_view> order;
  std::vector<uint64_t> codes(n);
  for (size_t i = 0; i < n; i++) {
    auto [it, inserted] = dict.emplace(sv[i].view(), static_cast<uint32_t>(order.size()));
    if (inserted) order.push_back(sv[i].view());
    codes[i] = it->second;
  }
  CompressedSegment seg;
  seg.codec = Codec::kPdict;
  seg.type = type;
  seg.count = static_cast<uint32_t>(n);
  Put<uint32_t>(&seg.data, static_cast<uint32_t>(order.size()));
  uint32_t off = 0;
  for (const auto& s : order) {
    Put<uint32_t>(&seg.data, off);
    off += static_cast<uint32_t>(s.size());
  }
  Put<uint32_t>(&seg.data, off);  // final offset = total bytes
  for (const auto& s : order) PutBytes(&seg.data, s.data(), s.size());
  EncodePforCore(codes.data(), n, &seg.data);
  return seg;
}

// --- scheme decoders ------------------------------------------------------------

Status DecodePlain(TypeId type, uint32_t count, Reader& r, void* out,
                   StringHeap* heap) {
  size_t n = count;
  if (type == TypeId::kStr) {
    if (heap == nullptr) return Status::InvalidArgument("string decode needs a heap");
    uint32_t total = 0;
    VWISE_RETURN_IF_ERROR(r.Get(&total));
    std::vector<uint32_t> lens(n);
    VWISE_RETURN_IF_ERROR(r.GetBytes(lens.data(), n * 4));
    char* bytes = heap->Reserve(total);
    VWISE_RETURN_IF_ERROR(r.GetBytes(bytes, total));
    StringVal* o = static_cast<StringVal*>(out);
    uint32_t off = 0;
    for (size_t i = 0; i < n; i++) {
      if (off + lens[i] > total) return Status::Corruption("string lengths overflow");
      o[i] = StringVal(bytes + off, lens[i]);
      off += lens[i];
    }
    return Status::OK();
  }
  return r.GetBytes(out, n * FixedWidth(type));
}

Status DecodePfor(Codec codec, TypeId type, uint32_t count, Reader& r,
                  void* out) {
  size_t n = count;
  if (n == 0) return Status::OK();
  std::vector<uint64_t> work(n);
  if (codec == Codec::kPforDelta) {
    uint64_t first;
    VWISE_RETURN_IF_ERROR(r.Get(&first));
    if (n > 1) {
      VWISE_RETURN_IF_ERROR(DecodePforCore(&r, n - 1, work.data()));
    }
    int64_t cur = static_cast<int64_t>(first);
    StoreInt(type, out, 0, static_cast<uint64_t>(cur));
    for (size_t i = 1; i < n; i++) {
      cur += bit::ZigZagDecode(work[i - 1]);
      StoreInt(type, out, i, static_cast<uint64_t>(cur));
    }
  } else {
    int64_t base = 0;
    VWISE_RETURN_IF_ERROR(r.Get(&base));
    VWISE_RETURN_IF_ERROR(DecodePforCore(&r, n, work.data()));
    for (size_t i = 0; i < n; i++) {
      StoreInt(type, out, i,
               static_cast<uint64_t>(base + static_cast<int64_t>(work[i])));
    }
  }
  return Status::OK();
}

Status DecodeRle(TypeId type, uint32_t count, Reader& r, void* out) {
  uint32_t n_runs;
  VWISE_RETURN_IF_ERROR(r.Get(&n_runs));
  size_t i = 0;
  for (uint32_t run = 0; run < n_runs; run++) {
    uint64_t v;
    uint32_t len;
    VWISE_RETURN_IF_ERROR(r.Get(&v));
    VWISE_RETURN_IF_ERROR(r.Get(&len));
    if (i + len > count) return Status::Corruption("RLE overflow");
    for (uint32_t k = 0; k < len; k++) StoreInt(type, out, i++, v);
  }
  if (i != count) return Status::Corruption("RLE underflow");
  return Status::OK();
}

Status DecodePdict(uint32_t count, Reader& r, void* out, StringHeap* heap) {
  if (heap == nullptr) return Status::InvalidArgument("string decode needs a heap");
  uint32_t dict_n;
  VWISE_RETURN_IF_ERROR(r.Get(&dict_n));
  std::vector<uint32_t> offsets(dict_n + 1);
  VWISE_RETURN_IF_ERROR(r.GetBytes(offsets.data(), (dict_n + 1) * 4));
  uint32_t total = offsets[dict_n];
  char* bytes = heap->Reserve(total);
  VWISE_RETURN_IF_ERROR(r.GetBytes(bytes, total));
  std::vector<uint64_t> codes(count);
  VWISE_RETURN_IF_ERROR(DecodePforCore(&r, count, codes.data()));
  StringVal* o = static_cast<StringVal*>(out);
  for (size_t i = 0; i < count; i++) {
    uint64_t c = codes[i];
    if (c >= dict_n) return Status::Corruption("PDICT code out of range");
    o[i] = StringVal(bytes + offsets[c], offsets[c + 1] - offsets[c]);
  }
  return Status::OK();
}

// Codec dispatch over raw values — internal only; the public surface takes
// Vectors so every call site shares one typed entry point.
Result<CompressedSegment> EncodeValues(Codec codec, TypeId type,
                                       const void* values, size_t n) {
  switch (codec) {
    case Codec::kPlain:
      return EncodePlain(type, values, n);
    case Codec::kPfor:
      return EncodePfor(type, values, n, /*delta=*/false);
    case Codec::kPforDelta:
      return EncodePfor(type, values, n, /*delta=*/true);
    case Codec::kRle:
      return EncodeRle(type, values, n);
    case Codec::kPdict:
      return EncodePdict(type, values, n);
  }
  return Status::InvalidArgument("unknown codec");
}

}  // namespace

Result<CompressedSegment> Encode(Codec codec, const Vector& values, size_t n) {
  VWISE_CHECK_MSG(!values.IsEncoded(), "Encode requires a flat vector");
  VWISE_CHECK(n <= values.capacity());
  return EncodeValues(codec, values.type(), values.raw(), n);
}

Result<CompressedSegment> EncodeBest(const Vector& values, size_t n) {
  VWISE_CHECK_MSG(!values.IsEncoded(), "EncodeBest requires a flat vector");
  VWISE_CHECK(n <= values.capacity());
  TypeId type = values.type();
  const void* raw = values.raw();
  VWISE_ASSIGN_OR_RETURN(CompressedSegment result,
                         EncodeValues(Codec::kPlain, type, raw, n));
  // Each candidate below is type-gated, so an error is an internal encoder
  // failure: propagate it instead of silently shipping the plain fallback.
  auto consider = [&](Codec c) -> Status {
    VWISE_ASSIGN_OR_RETURN(CompressedSegment seg, EncodeValues(c, type, raw, n));
    if (seg.data.size() < result.data.size()) result = std::move(seg);
    return Status::OK();
  };
  if (IsIntType(type)) {
    VWISE_RETURN_IF_ERROR(consider(Codec::kPfor));
    VWISE_RETURN_IF_ERROR(consider(Codec::kPforDelta));
    VWISE_RETURN_IF_ERROR(consider(Codec::kRle));
  } else if (type == TypeId::kF64) {
    VWISE_RETURN_IF_ERROR(consider(Codec::kRle));
  } else if (type == TypeId::kStr) {
    VWISE_RETURN_IF_ERROR(consider(Codec::kPdict));
  }
  return result;
}

Status DecodeInto(const CompressedSegment& seg, Vector* out) {
  if (out->type() != seg.type) {
    return Status::InvalidArgument("DecodeInto type mismatch");
  }
  VWISE_CHECK(out->capacity() >= seg.count);
  out->ResetEncoding();
  out->ClearHeapRefs();  // reuse the owned heap when nothing references it
  StringHeap* heap =
      seg.type == TypeId::kStr ? out->GetStringHeap() : nullptr;
  return DecodeRaw(seg.codec, seg.type, seg.count, seg.data.data(),
                   seg.data.size(), out->raw(), heap);
}

Status DecodeRaw(Codec codec, TypeId type, uint32_t count, const uint8_t* data,
                 size_t size, void* out, StringHeap* heap) {
  Reader r(data, size);
  switch (codec) {
    case Codec::kPlain:
      return DecodePlain(type, count, r, out, heap);
    case Codec::kPfor:
    case Codec::kPforDelta:
      return DecodePfor(codec, type, count, r, out);
    case Codec::kRle:
      return DecodeRle(type, count, r, out);
    case Codec::kPdict:
      return DecodePdict(count, r, out, heap);
  }
  return Status::Corruption("unknown codec");
}

Status DecodeDictRaw(TypeId type, uint32_t count, const uint8_t* data,
                     size_t size, uint32_t* codes,
                     std::vector<StringVal>* dict_vals, StringHeap* heap) {
  if (type != TypeId::kStr) {
    return Status::InvalidArgument("PDICT adoption requires strings");
  }
  if (heap == nullptr) {
    return Status::InvalidArgument("string decode needs a heap");
  }
  Reader r(data, size);
  uint32_t dict_n;
  VWISE_RETURN_IF_ERROR(r.Get(&dict_n));
  std::vector<uint32_t> offsets(static_cast<size_t>(dict_n) + 1);
  VWISE_RETURN_IF_ERROR(
      r.GetBytes(offsets.data(), (static_cast<size_t>(dict_n) + 1) * 4));
  uint32_t total = offsets[dict_n];
  char* bytes = heap->Reserve(total);
  VWISE_RETURN_IF_ERROR(r.GetBytes(bytes, total));
  dict_vals->clear();
  dict_vals->reserve(dict_n);
  for (uint32_t i = 0; i < dict_n; i++) {
    if (offsets[i] > offsets[i + 1] || offsets[i + 1] > total) {
      return Status::Corruption("PDICT offsets not ascending");
    }
    dict_vals->emplace_back(bytes + offsets[i], offsets[i + 1] - offsets[i]);
  }
  std::vector<uint64_t> work(count);
  VWISE_RETURN_IF_ERROR(DecodePforCore(&r, count, work.data()));
  for (uint32_t i = 0; i < count; i++) {
    if (work[i] >= dict_n) return Status::Corruption("PDICT code out of range");
    codes[i] = static_cast<uint32_t>(work[i]);
  }
  return Status::OK();
}

Status DecodeRleRuns(TypeId type, uint32_t count, const uint8_t* data,
                     size_t size, std::vector<uint8_t>* run_values,
                     std::vector<uint32_t>* run_starts) {
  if (type == TypeId::kStr) {
    return Status::InvalidArgument("RLE adoption requires a fixed-width type");
  }
  Reader r(data, size);
  uint32_t n_runs;
  VWISE_RETURN_IF_ERROR(r.Get(&n_runs));
  size_t w = FixedWidth(type);
  run_values->clear();
  run_values->resize(static_cast<size_t>(n_runs) * w);
  run_starts->clear();
  run_starts->reserve(static_cast<size_t>(n_runs) + 1);
  uint32_t row = 0;
  for (uint32_t run = 0; run < n_runs; run++) {
    uint64_t v;
    uint32_t len;
    VWISE_RETURN_IF_ERROR(r.Get(&v));
    VWISE_RETURN_IF_ERROR(r.Get(&len));
    if (len == 0) return Status::Corruption("empty RLE run");
    if (len > count - row) return Status::Corruption("RLE overflow");
    StoreInt(type, run_values->data(), run, v);
    run_starts->push_back(row);
    row += len;
  }
  if (row != count) return Status::Corruption("RLE underflow");
  run_starts->push_back(row);
  return Status::OK();
}

}  // namespace vwise::compression

namespace vwise {

const char* CodecToString(Codec c) {
  switch (c) {
    case Codec::kPlain:
      return "PLAIN";
    case Codec::kPfor:
      return "PFOR";
    case Codec::kPforDelta:
      return "PFOR-DELTA";
    case Codec::kRle:
      return "RLE";
    case Codec::kPdict:
      return "PDICT";
  }
  return "?";
}

}  // namespace vwise
