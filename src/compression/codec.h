#ifndef VWISE_COMPRESSION_CODEC_H_
#define VWISE_COMPRESSION_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "vector/string_heap.h"
#include "vector/types.h"

namespace vwise {

// Compression schemes from "Super-Scalar RAM-CPU Cache Compression"
// (Zukowski et al., ICDE 2006), the storage substrate of Vectorwise:
//
//  * kPfor       — Patched Frame-of-Reference: values minus a frame base,
//                  bit-packed at a width chosen to minimize total size;
//                  values that do not fit are stored as patch "exceptions".
//  * kPforDelta  — PFOR over zigzag-encoded deltas; wins on sorted or
//                  clustered columns (dates, foreign keys).
//  * kRle        — run-length encoding for low-cardinality runs.
//  * kPdict      — dictionary encoding for strings, codes bit-packed.
//  * kPlain      — verbatim fallback.
enum class Codec : uint8_t {
  kPlain = 0,
  kPfor = 1,
  kPforDelta = 2,
  kRle = 3,
  kPdict = 4,
};

const char* CodecToString(Codec c);

// One compressed column chunk. `data` is a self-describing blob in the
// codec's format; `count` values of physical type `type` decode from it.
struct CompressedSegment {
  Codec codec = Codec::kPlain;
  TypeId type = TypeId::kI64;
  uint32_t count = 0;
  std::vector<uint8_t> data;

  size_t byte_size() const { return data.size() + 16; }
};

namespace compression {

// Encodes with a specific codec. Returns InvalidArgument if the codec does
// not apply to the type (e.g. PFOR on strings). `values` points at `n`
// contiguous values of `type` (StringVal for kStr).
Result<CompressedSegment> Encode(Codec codec, TypeId type, const void* values,
                                 size_t n);

// Tries every applicable codec and returns the smallest encoding.
CompressedSegment EncodeBest(TypeId type, const void* values, size_t n);

// Decodes all values into `out` (capacity >= count values). String bytes are
// copied into `heap`, which must outlive the decoded StringVals.
Status Decode(const CompressedSegment& seg, void* out, StringHeap* heap);

// Same, decoding straight from a storage blob without copying it into a
// CompressedSegment first (used by the table reader on pinned buffers).
Status DecodeRaw(Codec codec, TypeId type, uint32_t count, const uint8_t* data,
                 size_t size, void* out, StringHeap* heap);

}  // namespace compression

}  // namespace vwise

#endif  // VWISE_COMPRESSION_CODEC_H_
