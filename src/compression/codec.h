#ifndef VWISE_COMPRESSION_CODEC_H_
#define VWISE_COMPRESSION_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "vector/string_heap.h"
#include "vector/types.h"
#include "vector/vector.h"

namespace vwise {

// Compression schemes from "Super-Scalar RAM-CPU Cache Compression"
// (Zukowski et al., ICDE 2006), the storage substrate of Vectorwise:
//
//  * kPfor       — Patched Frame-of-Reference: values minus a frame base,
//                  bit-packed at a width chosen to minimize total size;
//                  values that do not fit are stored as patch "exceptions".
//  * kPforDelta  — PFOR over zigzag-encoded deltas; wins on sorted or
//                  clustered columns (dates, foreign keys).
//  * kRle        — run-length encoding for low-cardinality runs.
//  * kPdict      — dictionary encoding for strings, codes bit-packed.
//  * kPlain      — verbatim fallback.
enum class Codec : uint8_t {
  kPlain = 0,
  kPfor = 1,
  kPforDelta = 2,
  kRle = 3,
  kPdict = 4,
};

const char* CodecToString(Codec c);

// One compressed column chunk. `data` is a self-describing blob in the
// codec's format; `count` values of physical type `type` decode from it.
struct CompressedSegment {
  Codec codec = Codec::kPlain;
  TypeId type = TypeId::kI64;
  uint32_t count = 0;
  std::vector<uint8_t> data;

  // Per-segment footprint of the serialized table-file footer record
  // (storage/table_file.cc, TableWriter::Finish): offset_in_blob u32 +
  // size u32 + codec u8 + count u32 + has_minmax u8 + min i64 + max i64.
  // compression_test keeps this in sync with the writer.
  static constexpr size_t kFooterRecordBytes =
      sizeof(uint32_t) + sizeof(uint32_t) + sizeof(uint8_t) +
      sizeof(uint32_t) + sizeof(uint8_t) + sizeof(int64_t) + sizeof(int64_t);

  // Total stored footprint: blob bytes plus the footer record describing
  // them. Derived from the actual serialization, not a guessed constant, so
  // bench/report compression ratios count real bytes.
  size_t byte_size() const { return data.size() + kFooterRecordBytes; }
};

namespace compression {

// Encodes the first `n` values of a flat Vector with a specific codec.
// Returns InvalidArgument if the codec does not apply to the vector's type
// (e.g. PFOR on strings).
Result<CompressedSegment> Encode(Codec codec, const Vector& values, size_t n);

// Tries every applicable codec and returns the smallest encoding; an error
// if even the plain fallback cannot represent the input (rather than
// silently shipping a kPlain segment that failed to encode).
Result<CompressedSegment> EncodeBest(const Vector& values, size_t n);

// Decodes a whole segment into a flat Vector (capacity >= seg.count). String
// bytes land in the vector's own heap, registered as a heap ref.
Status DecodeInto(const CompressedSegment& seg, Vector* out);

// Decodes straight from a storage blob without copying it into a
// CompressedSegment first (used by the table reader on pinned buffers).
// String bytes are copied into `heap`, which must outlive the StringVals.
Status DecodeRaw(Codec codec, TypeId type, uint32_t count, const uint8_t* data,
                 size_t size, void* out, StringHeap* heap);

// Compressed-execution adoption (DESIGN.md §12): surface the encoded form
// without materializing per-row values.
//
// PDICT: per-row codes into `dict_vals` (the distinct strings, bytes in
// `heap`). `codes` must hold `count` entries.
Status DecodeDictRaw(TypeId type, uint32_t count, const uint8_t* data,
                     size_t size, uint32_t* codes,
                     std::vector<StringVal>* dict_vals, StringHeap* heap);

// RLE: run values (contiguous, `TypeWidth(type)` bytes each) plus run start
// offsets; run r covers rows [starts[r], starts[r+1]), starts->back() ==
// count.
Status DecodeRleRuns(TypeId type, uint32_t count, const uint8_t* data,
                     size_t size, std::vector<uint8_t>* run_values,
                     std::vector<uint32_t>* run_starts);

}  // namespace compression

}  // namespace vwise

#endif  // VWISE_COMPRESSION_CODEC_H_
