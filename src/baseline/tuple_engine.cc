#include "baseline/tuple_engine.h"

namespace vwise::baseline {

namespace rex {

namespace {

class ColE final : public RExpr {
 public:
  explicit ColE(size_t i) : i_(i) {}
  Value Eval(const Row& row) const override { return row[i_]; }

 private:
  size_t i_;
};

class ConstE final : public RExpr {
 public:
  explicit ConstE(Value v) : v_(std::move(v)) {}
  Value Eval(const Row&) const override { return v_; }

 private:
  Value v_;
};

enum class Op { kAdd, kSub, kMul, kDiv, kEq, kLe, kLt, kGe, kAnd };

class BinE final : public RExpr {
 public:
  BinE(Op op, RExprPtr l, RExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Value Eval(const Row& row) const override {
    Value a = l_->Eval(row);
    Value b = r_->Eval(row);
    switch (op_) {
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv: {
        // Numeric tower: stay integral when both sides are Int.
        if (a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt) {
          int64_t x = a.AsInt(), y = b.AsInt();
          switch (op_) {
            case Op::kAdd:
              return Value::Int(x + y);
            case Op::kSub:
              return Value::Int(x - y);
            case Op::kMul:
              return Value::Int(x * y);
            default:
              return Value::Int(y == 0 ? 0 : x / y);
          }
        }
        double x = a.AsDouble(), y = b.AsDouble();
        switch (op_) {
          case Op::kAdd:
            return Value::Double(x + y);
          case Op::kSub:
            return Value::Double(x - y);
          case Op::kMul:
            return Value::Double(x * y);
          default:
            return Value::Double(x / y);
        }
      }
      case Op::kEq:
        if (a.kind() == Value::Kind::kString || b.kind() == Value::Kind::kString) {
          return Value::Int(a.AsString() == b.AsString());
        }
        return Value::Int(a.AsDouble() == b.AsDouble());
      case Op::kLe:
        return Value::Int(a.AsDouble() <= b.AsDouble());
      case Op::kLt:
        return Value::Int(a.AsDouble() < b.AsDouble());
      case Op::kGe:
        return Value::Int(a.AsDouble() >= b.AsDouble());
      case Op::kAnd:
        return Value::Int(a.AsInt() != 0 && b.AsInt() != 0);
    }
    return Value::Null();
  }

 private:
  Op op_;
  RExprPtr l_, r_;
};

class CentsE final : public RExpr {
 public:
  explicit CentsE(RExprPtr x) : x_(std::move(x)) {}
  Value Eval(const Row& row) const override {
    return Value::Double(x_->Eval(row).AsInt() / 100.0);
  }

 private:
  RExprPtr x_;
};

}  // namespace

RExprPtr Col(size_t i) { return std::make_unique<ColE>(i); }
RExprPtr Const(Value v) { return std::make_unique<ConstE>(std::move(v)); }
RExprPtr Add(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kAdd, std::move(l), std::move(r));
}
RExprPtr Sub(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kSub, std::move(l), std::move(r));
}
RExprPtr Mul(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kMul, std::move(l), std::move(r));
}
RExprPtr Div(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kDiv, std::move(l), std::move(r));
}
RExprPtr Eq(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kEq, std::move(l), std::move(r));
}
RExprPtr Le(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kLe, std::move(l), std::move(r));
}
RExprPtr Lt(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kLt, std::move(l), std::move(r));
}
RExprPtr Ge(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kGe, std::move(l), std::move(r));
}
RExprPtr And(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kAnd, std::move(l), std::move(r));
}
RExprPtr CentsToDouble(RExprPtr x) { return std::make_unique<CentsE>(std::move(x)); }

}  // namespace rex

void TupleAgg::Open() {
  child_->Open();
  groups_.clear();
  consumed_ = false;
  Row row;
  while (child_->Next(&row)) {
    std::vector<std::string> key;
    Row key_row;
    for (size_t c : group_cols_) {
      key.push_back(row[c].ToString());
      key_row.push_back(row[c]);
    }
    auto [it, inserted] = groups_.try_emplace(std::move(key));
    if (inserted) {
      it->second.first = std::move(key_row);
      it->second.second.sums.assign(aggs_.size(), 0);
      it->second.second.counts.assign(aggs_.size(), 0);
    }
    State& st = it->second.second;
    for (size_t a = 0; a < aggs_.size(); a++) {
      if (aggs_[a].fn != Fn::kCount) st.sums[a] += row[aggs_[a].col].AsDouble();
      st.counts[a]++;
    }
  }
  if (group_cols_.empty() && groups_.empty()) {
    auto& slot = groups_[{}];
    slot.second.sums.assign(aggs_.size(), 0);
    slot.second.counts.assign(aggs_.size(), 0);
  }
  emit_ = groups_.begin();
  consumed_ = true;
}

bool TupleAgg::Next(Row* row) {
  if (!consumed_ || emit_ == groups_.end()) return false;
  row->clear();
  for (const Value& v : emit_->second.first) row->push_back(v);
  const State& st = emit_->second.second;
  for (size_t a = 0; a < aggs_.size(); a++) {
    switch (aggs_[a].fn) {
      case Fn::kSum:
        row->push_back(Value::Double(st.sums[a]));
        break;
      case Fn::kCount:
        row->push_back(Value::Int(st.counts[a]));
        break;
      case Fn::kAvg:
        row->push_back(Value::Double(
            st.counts[a] == 0 ? 0.0 : st.sums[a] / static_cast<double>(st.counts[a])));
        break;
    }
  }
  ++emit_;
  return true;
}

std::vector<Row> TupleCollect(TupleOperator* root) {
  std::vector<Row> out;
  root->Open();
  Row row;
  while (root->Next(&row)) out.push_back(row);
  return out;
}

}  // namespace vwise::baseline
