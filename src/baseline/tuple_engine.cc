#include "baseline/tuple_engine.h"

#include <algorithm>
#include <string>

namespace vwise::baseline {

namespace rex {

namespace {

class ColE final : public RExpr {
 public:
  explicit ColE(size_t i) : i_(i) {}
  Value Eval(const Row& row) const override { return row[i_]; }

 private:
  size_t i_;
};

class ConstE final : public RExpr {
 public:
  explicit ConstE(Value v) : v_(std::move(v)) {}
  Value Eval(const Row&) const override { return v_; }

 private:
  Value v_;
};

enum class Op { kAdd, kSub, kMul, kDiv, kEq, kNe, kLe, kLt, kGe, kGt, kAnd, kOr };

// Three-way compare used by every comparison op: exact for Int x Int and
// String x String (no double round-trip, so i64 comparisons agree bit-for-bit
// with the vectorized kernels), numeric tower otherwise.
int Cmp3(const Value& a, const Value& b) {
  if (a.kind() == Value::Kind::kString || b.kind() == Value::Kind::kString) {
    return a.AsString().compare(b.AsString());
  }
  if (a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt) {
    int64_t x = a.AsInt(), y = b.AsInt();
    return x < y ? -1 : x > y ? 1 : 0;
  }
  double x = a.AsDouble(), y = b.AsDouble();
  return x < y ? -1 : x > y ? 1 : 0;
}

class BinE final : public RExpr {
 public:
  BinE(Op op, RExprPtr l, RExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Value Eval(const Row& row) const override {
    Value a = l_->Eval(row);
    Value b = r_->Eval(row);
    switch (op_) {
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv: {
        // Numeric tower: stay integral when both sides are Int.
        if (a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt) {
          int64_t x = a.AsInt(), y = b.AsInt();
          switch (op_) {
            case Op::kAdd:
              return Value::Int(x + y);
            case Op::kSub:
              return Value::Int(x - y);
            case Op::kMul:
              return Value::Int(x * y);
            default:
              return Value::Int(y == 0 ? 0 : x / y);
          }
        }
        double x = a.AsDouble(), y = b.AsDouble();
        switch (op_) {
          case Op::kAdd:
            return Value::Double(x + y);
          case Op::kSub:
            return Value::Double(x - y);
          case Op::kMul:
            return Value::Double(x * y);
          default:
            return Value::Double(x / y);
        }
      }
      case Op::kEq:
        return Value::Int(Cmp3(a, b) == 0);
      case Op::kNe:
        return Value::Int(Cmp3(a, b) != 0);
      case Op::kLe:
        return Value::Int(Cmp3(a, b) <= 0);
      case Op::kLt:
        return Value::Int(Cmp3(a, b) < 0);
      case Op::kGe:
        return Value::Int(Cmp3(a, b) >= 0);
      case Op::kGt:
        return Value::Int(Cmp3(a, b) > 0);
      case Op::kAnd:
        return Value::Int(a.AsInt() != 0 && b.AsInt() != 0);
      case Op::kOr:
        return Value::Int(a.AsInt() != 0 || b.AsInt() != 0);
    }
    return Value::Null();
  }

 private:
  Op op_;
  RExprPtr l_, r_;
};

class NotE final : public RExpr {
 public:
  explicit NotE(RExprPtr x) : x_(std::move(x)) {}
  Value Eval(const Row& row) const override {
    return Value::Int(x_->Eval(row).AsInt() == 0);
  }

 private:
  RExprPtr x_;
};

class CentsE final : public RExpr {
 public:
  explicit CentsE(RExprPtr x) : x_(std::move(x)) {}
  Value Eval(const Row& row) const override {
    return Value::Double(x_->Eval(row).AsInt() / 100.0);
  }

 private:
  RExprPtr x_;
};

}  // namespace

RExprPtr Col(size_t i) { return std::make_unique<ColE>(i); }
RExprPtr Const(Value v) { return std::make_unique<ConstE>(std::move(v)); }
RExprPtr Add(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kAdd, std::move(l), std::move(r));
}
RExprPtr Sub(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kSub, std::move(l), std::move(r));
}
RExprPtr Mul(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kMul, std::move(l), std::move(r));
}
RExprPtr Div(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kDiv, std::move(l), std::move(r));
}
RExprPtr Eq(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kEq, std::move(l), std::move(r));
}
RExprPtr Ne(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kNe, std::move(l), std::move(r));
}
RExprPtr Le(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kLe, std::move(l), std::move(r));
}
RExprPtr Lt(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kLt, std::move(l), std::move(r));
}
RExprPtr Ge(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kGe, std::move(l), std::move(r));
}
RExprPtr Gt(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kGt, std::move(l), std::move(r));
}
RExprPtr And(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kAnd, std::move(l), std::move(r));
}
RExprPtr Or(RExprPtr l, RExprPtr r) {
  return std::make_unique<BinE>(Op::kOr, std::move(l), std::move(r));
}
RExprPtr Not(RExprPtr x) { return std::make_unique<NotE>(std::move(x)); }
RExprPtr CentsToDouble(RExprPtr x) { return std::make_unique<CentsE>(std::move(x)); }

}  // namespace rex

void TupleAgg::Open() {
  child_->Open();
  groups_.clear();
  consumed_ = false;
  Row row;
  while (child_->Next(&row)) {
    std::vector<std::string> key;
    Row key_row;
    for (size_t c : group_cols_) {
      key.push_back(row[c].ToString());
      key_row.push_back(row[c]);
    }
    auto [it, inserted] = groups_.try_emplace(std::move(key));
    if (inserted) {
      it->second.first = std::move(key_row);
      it->second.second.sums.assign(aggs_.size(), 0);
      it->second.second.isums.assign(aggs_.size(), 0);
      it->second.second.counts.assign(aggs_.size(), 0);
      it->second.second.extremes.assign(aggs_.size(), Value::Null());
    }
    State& st = it->second.second;
    for (size_t a = 0; a < aggs_.size(); a++) {
      switch (aggs_[a].fn) {
        case Fn::kSum:
        case Fn::kAvg:
          st.sums[a] += row[aggs_[a].col].AsDouble();
          break;
        case Fn::kSumI64:
          st.isums[a] += row[aggs_[a].col].AsInt();
          break;
        case Fn::kMin:
        case Fn::kMax: {
          const Value& v = row[aggs_[a].col];
          if (st.counts[a] == 0) {
            st.extremes[a] = v;
          } else {
            const int c = Compare(v, st.extremes[a]);
            if (aggs_[a].fn == Fn::kMin ? c < 0 : c > 0) st.extremes[a] = v;
          }
          break;
        }
        case Fn::kCount:
        case Fn::kCountStar:
          break;
      }
      st.counts[a]++;
    }
  }
  if (group_cols_.empty() && groups_.empty()) {
    auto& slot = groups_[{}];
    slot.second.sums.assign(aggs_.size(), 0);
    slot.second.isums.assign(aggs_.size(), 0);
    slot.second.counts.assign(aggs_.size(), 0);
    slot.second.extremes.assign(aggs_.size(), Value::Null());
  }
  emit_ = groups_.begin();
  consumed_ = true;
}

bool TupleAgg::Next(Row* row) {
  if (!consumed_ || emit_ == groups_.end()) return false;
  row->clear();
  for (const Value& v : emit_->second.first) row->push_back(v);
  const State& st = emit_->second.second;
  for (size_t a = 0; a < aggs_.size(); a++) {
    switch (aggs_[a].fn) {
      case Fn::kSum:
        row->push_back(Value::Double(st.sums[a]));
        break;
      case Fn::kSumI64:
        row->push_back(Value::Int(st.isums[a]));
        break;
      case Fn::kCount:
      case Fn::kCountStar:
        row->push_back(Value::Int(st.counts[a]));
        break;
      case Fn::kAvg:
        row->push_back(Value::Double(
            st.counts[a] == 0 ? 0.0 : st.sums[a] / static_cast<double>(st.counts[a])));
        break;
      case Fn::kMin:
      case Fn::kMax:
        // Empty global group mirrors the vectorized engine's zero row.
        row->push_back(st.counts[a] == 0 ? Value::Int(0) : st.extremes[a]);
        break;
    }
  }
  ++emit_;
  return true;
}

void TupleSort::Open() {
  rows_.clear();
  pos_ = 0;
  child_->Open();
  Row row;
  while (child_->Next(&row)) rows_.push_back(row);
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const Key& k : keys_) {
                       const int c = Compare(a[k.col], b[k.col]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  if (offset_ < rows_.size()) {
    rows_.erase(rows_.begin(),
                rows_.begin() + static_cast<ptrdiff_t>(offset_));
  } else {
    rows_.clear();
  }
  if (limit_ != SIZE_MAX && rows_.size() > limit_) rows_.resize(limit_);
}

bool TupleSort::Next(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

std::string TupleHashJoin::KeyOf(const Row& row,
                                 const std::vector<size_t>& cols) const {
  std::string key;
  for (size_t c : cols) {
    key += row[c].ToString();
    key += '\x1f';  // unit separator: keeps multi-part keys unambiguous
  }
  return key;
}

void TupleHashJoin::Open() {
  table_.clear();
  matches_ = nullptr;
  match_pos_ = 0;
  build_->Open();
  Row row;
  while (build_->Next(&row)) {
    table_[KeyOf(row, build_keys_)].push_back(row);
  }
  probe_->Open();
}

bool TupleHashJoin::Next(Row* row) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      const Row& build_row = (*matches_)[match_pos_++];
      *row = probe_row_;
      for (size_t c : build_payload_) row->push_back(build_row[c]);
      return true;
    }
    matches_ = nullptr;
    if (!probe_->Next(&probe_row_)) return false;
    auto it = table_.find(KeyOf(probe_row_, probe_keys_));
    const bool has_match = it != table_.end() && !it->second.empty();
    switch (type_) {
      case Type::kInner:
        if (has_match) {
          matches_ = &it->second;
          match_pos_ = 0;
        }
        break;
      case Type::kLeftSemi:
        if (has_match) {
          *row = probe_row_;
          return true;
        }
        break;
      case Type::kLeftAnti:
        if (!has_match) {
          *row = probe_row_;
          return true;
        }
        break;
    }
  }
}

std::vector<Row> TupleCollect(TupleOperator* root) {
  std::vector<Row> out;
  root->Open();
  Row row;
  while (root->Next(&row)) out.push_back(row);
  return out;
}

}  // namespace vwise::baseline
