#ifndef VWISE_BASELINE_TUPLE_ENGINE_H_
#define VWISE_BASELINE_TUPLE_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace vwise::baseline {

// A deliberately classic tuple-at-a-time Volcano engine — the "pipelined
// query engines" of the paper's >10x claim (Sec. I-A). One virtual Next()
// call per tuple, one virtual Eval() per expression node per tuple, values
// boxed as Value. This is an independent implementation used both as the
// performance baseline (bench E3) and as a second opinion in tests.

using Row = std::vector<Value>;

// --- row expressions ---------------------------------------------------------

class RExpr {
 public:
  virtual ~RExpr() = default;
  virtual Value Eval(const Row& row) const = 0;
};
using RExprPtr = std::unique_ptr<RExpr>;

namespace rex {
RExprPtr Col(size_t i);
RExprPtr Const(Value v);
// Arithmetic on Int/Double values (Int op Double promotes to Double).
RExprPtr Add(RExprPtr l, RExprPtr r);
RExprPtr Sub(RExprPtr l, RExprPtr r);
RExprPtr Mul(RExprPtr l, RExprPtr r);
RExprPtr Div(RExprPtr l, RExprPtr r);
// Comparisons evaluate to Int 0/1. Int x Int compares exactly (no double
// round-trip); String x String compares lexicographically.
RExprPtr Eq(RExprPtr l, RExprPtr r);
RExprPtr Ne(RExprPtr l, RExprPtr r);
RExprPtr Le(RExprPtr l, RExprPtr r);
RExprPtr Lt(RExprPtr l, RExprPtr r);
RExprPtr Ge(RExprPtr l, RExprPtr r);
RExprPtr Gt(RExprPtr l, RExprPtr r);
RExprPtr And(RExprPtr l, RExprPtr r);
RExprPtr Or(RExprPtr l, RExprPtr r);
RExprPtr Not(RExprPtr x);
// Scaled-decimal (cents) column to double units.
RExprPtr CentsToDouble(RExprPtr x);
}  // namespace rex

// --- operators ----------------------------------------------------------------

class TupleOperator {
 public:
  virtual ~TupleOperator() = default;
  virtual void Open() = 0;
  // One tuple per call; false at end of stream.
  virtual bool Next(Row* row) = 0;
};
using TupleOperatorPtr = std::unique_ptr<TupleOperator>;

// Scans a pre-materialized table (rows owned by the caller).
class TupleScan final : public TupleOperator {
 public:
  explicit TupleScan(const std::vector<Row>* rows) : rows_(rows) {}
  void Open() override { pos_ = 0; }
  bool Next(Row* row) override {
    if (pos_ >= rows_->size()) return false;
    *row = (*rows_)[pos_++];
    return true;
  }

 private:
  const std::vector<Row>* rows_;
  size_t pos_ = 0;
};

class TupleSelect final : public TupleOperator {
 public:
  TupleSelect(TupleOperatorPtr child, RExprPtr pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}
  void Open() override { child_->Open(); }
  bool Next(Row* row) override {
    while (child_->Next(row)) {
      if (pred_->Eval(*row).AsInt() != 0) return true;
    }
    return false;
  }

 private:
  TupleOperatorPtr child_;
  RExprPtr pred_;
};

class TupleProject final : public TupleOperator {
 public:
  TupleProject(TupleOperatorPtr child, std::vector<RExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}
  void Open() override { child_->Open(); }
  bool Next(Row* row) override {
    Row in;
    if (!child_->Next(&in)) return false;
    row->clear();
    for (const auto& e : exprs_) row->push_back(e->Eval(in));
    return true;
  }

 private:
  TupleOperatorPtr child_;
  std::vector<RExprPtr> exprs_;
};

// Hash aggregation with boxed keys.
//
// kSum/kCount/kAvg accumulate in double, the classic boxed-baseline
// behavior benched by E3. kSumI64 accumulates exactly in int64 and
// kMin/kMax keep the boxed input value — the forms the differential oracle
// uses where bit-identical agreement with the vectorized engine is required.
class TupleAgg final : public TupleOperator {
 public:
  enum class Fn { kSum, kCount, kAvg, kSumI64, kMin, kMax, kCountStar };
  struct Spec {
    Fn fn;
    size_t col;
  };
  TupleAgg(TupleOperatorPtr child, std::vector<size_t> group_cols,
           std::vector<Spec> aggs)
      : child_(std::move(child)), group_cols_(std::move(group_cols)),
        aggs_(std::move(aggs)) {}
  void Open() override;
  bool Next(Row* row) override;

 private:
  struct State {
    std::vector<double> sums;
    std::vector<int64_t> isums;
    std::vector<int64_t> counts;
    std::vector<Value> extremes;
  };
  TupleOperatorPtr child_;
  std::vector<size_t> group_cols_;
  std::vector<Spec> aggs_;
  std::map<std::vector<std::string>, std::pair<Row, State>> groups_;
  std::map<std::vector<std::string>, std::pair<Row, State>>::iterator emit_;
  bool consumed_ = false;
};

// Full materializing sort (ORDER BY [LIMIT/OFFSET]) over boxed rows; keys
// compare with the Value total order (common/value.h).
class TupleSort final : public TupleOperator {
 public:
  struct Key {
    size_t col;
    bool ascending = true;
  };
  TupleSort(TupleOperatorPtr child, std::vector<Key> keys,
            size_t limit = SIZE_MAX, size_t offset = 0)
      : child_(std::move(child)), keys_(std::move(keys)), limit_(limit),
        offset_(offset) {}
  void Open() override;
  bool Next(Row* row) override;

 private:
  TupleOperatorPtr child_;
  std::vector<Key> keys_;
  size_t limit_;
  size_t offset_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// Classic tuple-at-a-time hash join; build side fully consumed at Open().
// Output: probe row + payload columns (inner), probe row only (semi/anti) —
// mirroring the vectorized HashJoinOperator's layout.
class TupleHashJoin final : public TupleOperator {
 public:
  enum class Type { kInner, kLeftSemi, kLeftAnti };
  TupleHashJoin(TupleOperatorPtr probe, TupleOperatorPtr build, Type type,
                std::vector<size_t> probe_keys, std::vector<size_t> build_keys,
                std::vector<size_t> build_payload)
      : probe_(std::move(probe)), build_(std::move(build)), type_(type),
        probe_keys_(std::move(probe_keys)),
        build_keys_(std::move(build_keys)),
        build_payload_(std::move(build_payload)) {}
  void Open() override;
  bool Next(Row* row) override;

 private:
  std::string KeyOf(const Row& row, const std::vector<size_t>& cols) const;

  TupleOperatorPtr probe_;
  TupleOperatorPtr build_;
  Type type_;
  std::vector<size_t> probe_keys_;
  std::vector<size_t> build_keys_;
  std::vector<size_t> build_payload_;

  std::map<std::string, std::vector<Row>> table_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

// Runs a pipeline to completion.
std::vector<Row> TupleCollect(TupleOperator* root);

}  // namespace vwise::baseline

#endif  // VWISE_BASELINE_TUPLE_ENGINE_H_
