#ifndef VWISE_BASELINE_TUPLE_ENGINE_H_
#define VWISE_BASELINE_TUPLE_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace vwise::baseline {

// A deliberately classic tuple-at-a-time Volcano engine — the "pipelined
// query engines" of the paper's >10x claim (Sec. I-A). One virtual Next()
// call per tuple, one virtual Eval() per expression node per tuple, values
// boxed as Value. This is an independent implementation used both as the
// performance baseline (bench E3) and as a second opinion in tests.

using Row = std::vector<Value>;

// --- row expressions ---------------------------------------------------------

class RExpr {
 public:
  virtual ~RExpr() = default;
  virtual Value Eval(const Row& row) const = 0;
};
using RExprPtr = std::unique_ptr<RExpr>;

namespace rex {
RExprPtr Col(size_t i);
RExprPtr Const(Value v);
// Arithmetic on Int/Double values (Int op Double promotes to Double).
RExprPtr Add(RExprPtr l, RExprPtr r);
RExprPtr Sub(RExprPtr l, RExprPtr r);
RExprPtr Mul(RExprPtr l, RExprPtr r);
RExprPtr Div(RExprPtr l, RExprPtr r);
// Comparisons evaluate to Int 0/1.
RExprPtr Eq(RExprPtr l, RExprPtr r);
RExprPtr Le(RExprPtr l, RExprPtr r);
RExprPtr Lt(RExprPtr l, RExprPtr r);
RExprPtr Ge(RExprPtr l, RExprPtr r);
RExprPtr And(RExprPtr l, RExprPtr r);
// Scaled-decimal (cents) column to double units.
RExprPtr CentsToDouble(RExprPtr x);
}  // namespace rex

// --- operators ----------------------------------------------------------------

class TupleOperator {
 public:
  virtual ~TupleOperator() = default;
  virtual void Open() = 0;
  // One tuple per call; false at end of stream.
  virtual bool Next(Row* row) = 0;
};
using TupleOperatorPtr = std::unique_ptr<TupleOperator>;

// Scans a pre-materialized table (rows owned by the caller).
class TupleScan final : public TupleOperator {
 public:
  explicit TupleScan(const std::vector<Row>* rows) : rows_(rows) {}
  void Open() override { pos_ = 0; }
  bool Next(Row* row) override {
    if (pos_ >= rows_->size()) return false;
    *row = (*rows_)[pos_++];
    return true;
  }

 private:
  const std::vector<Row>* rows_;
  size_t pos_ = 0;
};

class TupleSelect final : public TupleOperator {
 public:
  TupleSelect(TupleOperatorPtr child, RExprPtr pred)
      : child_(std::move(child)), pred_(std::move(pred)) {}
  void Open() override { child_->Open(); }
  bool Next(Row* row) override {
    while (child_->Next(row)) {
      if (pred_->Eval(*row).AsInt() != 0) return true;
    }
    return false;
  }

 private:
  TupleOperatorPtr child_;
  RExprPtr pred_;
};

class TupleProject final : public TupleOperator {
 public:
  TupleProject(TupleOperatorPtr child, std::vector<RExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}
  void Open() override { child_->Open(); }
  bool Next(Row* row) override {
    Row in;
    if (!child_->Next(&in)) return false;
    row->clear();
    for (const auto& e : exprs_) row->push_back(e->Eval(in));
    return true;
  }

 private:
  TupleOperatorPtr child_;
  std::vector<RExprPtr> exprs_;
};

// Hash aggregation with boxed keys.
class TupleAgg final : public TupleOperator {
 public:
  enum class Fn { kSum, kCount, kAvg };
  struct Spec {
    Fn fn;
    size_t col;
  };
  TupleAgg(TupleOperatorPtr child, std::vector<size_t> group_cols,
           std::vector<Spec> aggs)
      : child_(std::move(child)), group_cols_(std::move(group_cols)),
        aggs_(std::move(aggs)) {}
  void Open() override;
  bool Next(Row* row) override;

 private:
  struct State {
    std::vector<double> sums;
    std::vector<int64_t> counts;
  };
  TupleOperatorPtr child_;
  std::vector<size_t> group_cols_;
  std::vector<Spec> aggs_;
  std::map<std::vector<std::string>, std::pair<Row, State>> groups_;
  std::map<std::vector<std::string>, std::pair<Row, State>>::iterator emit_;
  bool consumed_ = false;
};

// Runs a pipeline to completion.
std::vector<Row> TupleCollect(TupleOperator* root);

}  // namespace vwise::baseline

#endif  // VWISE_BASELINE_TUPLE_ENGINE_H_
