#include "baseline/column_engine.h"

namespace vwise::baseline {

std::vector<uint32_t> ColumnEngine::SelectRange(const std::vector<int64_t>& col,
                                                int64_t lo, int64_t hi) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < col.size(); i++) {
    if (col[i] >= lo && col[i] <= hi) out.push_back(i);
  }
  Charge(out);
  return out;
}

std::vector<uint32_t> ColumnEngine::SelectRange(const std::vector<int64_t>& col,
                                                const std::vector<uint32_t>& cand,
                                                int64_t lo, int64_t hi) {
  std::vector<uint32_t> out;
  for (uint32_t i : cand) {
    if (col[i] >= lo && col[i] <= hi) out.push_back(i);
  }
  Charge(out);
  return out;
}

std::vector<int64_t> ColumnEngine::Gather(const std::vector<int64_t>& col,
                                          const std::vector<uint32_t>& idx) {
  std::vector<int64_t> out(idx.size());
  for (size_t i = 0; i < idx.size(); i++) out[i] = col[idx[i]];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::GatherF(const std::vector<double>& col,
                                          const std::vector<uint32_t>& idx) {
  std::vector<double> out(idx.size());
  for (size_t i = 0; i < idx.size(); i++) out[i] = col[idx[i]];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::CentsToDouble(const std::vector<int64_t>& col) {
  std::vector<double> out(col.size());
  for (size_t i = 0; i < col.size(); i++) out[i] = col[i] / 100.0;
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::Mul(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); i++) out[i] = a[i] * b[i];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::Add(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); i++) out[i] = a[i] + b[i];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::RSub(double scalar, const std::vector<double>& a) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); i++) out[i] = scalar - a[i];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::RAdd(double scalar, const std::vector<double>& a) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); i++) out[i] = scalar + a[i];
  Charge(out);
  return out;
}

double ColumnEngine::Sum(const std::vector<double>& a) {
  double s = 0;
  for (double v : a) s += v;
  return s;
}

std::vector<double> ColumnEngine::SumGrouped(const std::vector<double>& a,
                                             const std::vector<uint32_t>& groups,
                                             size_t n_groups) {
  std::vector<double> out(n_groups, 0.0);
  for (size_t i = 0; i < a.size(); i++) out[groups[i]] += a[i];
  Charge(out);
  return out;
}

}  // namespace vwise::baseline
