#include "baseline/column_engine.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace vwise::baseline {

std::vector<uint32_t> ColumnEngine::SelectRange(const std::vector<int64_t>& col,
                                                int64_t lo, int64_t hi) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < col.size(); i++) {
    if (col[i] >= lo && col[i] <= hi) out.push_back(i);
  }
  Charge(out);
  return out;
}

std::vector<uint32_t> ColumnEngine::SelectRange(const std::vector<int64_t>& col,
                                                const std::vector<uint32_t>& cand,
                                                int64_t lo, int64_t hi) {
  std::vector<uint32_t> out;
  for (uint32_t i : cand) {
    if (col[i] >= lo && col[i] <= hi) out.push_back(i);
  }
  Charge(out);
  return out;
}

std::vector<int64_t> ColumnEngine::Gather(const std::vector<int64_t>& col,
                                          const std::vector<uint32_t>& idx) {
  std::vector<int64_t> out(idx.size());
  for (size_t i = 0; i < idx.size(); i++) out[i] = col[idx[i]];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::GatherF(const std::vector<double>& col,
                                          const std::vector<uint32_t>& idx) {
  std::vector<double> out(idx.size());
  for (size_t i = 0; i < idx.size(); i++) out[i] = col[idx[i]];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::CentsToDouble(const std::vector<int64_t>& col) {
  std::vector<double> out(col.size());
  for (size_t i = 0; i < col.size(); i++) out[i] = col[i] / 100.0;
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::Mul(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); i++) out[i] = a[i] * b[i];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::Add(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); i++) out[i] = a[i] + b[i];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::RSub(double scalar, const std::vector<double>& a) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); i++) out[i] = scalar - a[i];
  Charge(out);
  return out;
}

std::vector<double> ColumnEngine::RAdd(double scalar, const std::vector<double>& a) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); i++) out[i] = scalar + a[i];
  Charge(out);
  return out;
}

double ColumnEngine::Sum(const std::vector<double>& a) {
  double s = 0;
  for (double v : a) s += v;
  return s;
}

std::vector<double> ColumnEngine::SumGrouped(const std::vector<double>& a,
                                             const std::vector<uint32_t>& groups,
                                             size_t n_groups) {
  std::vector<double> out(n_groups, 0.0);
  for (size_t i = 0; i < a.size(); i++) out[groups[i]] += a[i];
  Charge(out);
  return out;
}

// --- boxed materializing surface ---------------------------------------------

namespace {

bool CmpHolds(MatCmp op, int c) {
  switch (op) {
    case MatCmp::kEq:
      return c == 0;
    case MatCmp::kNe:
      return c != 0;
    case MatCmp::kLt:
      return c < 0;
    case MatCmp::kLe:
      return c <= 0;
    case MatCmp::kGt:
      return c > 0;
    case MatCmp::kGe:
      return c >= 0;
  }
  return false;
}

Value ArithOne(MatArith op, const Value& a, const Value& b) {
  if (a.kind() == Value::Kind::kInt && b.kind() == Value::Kind::kInt) {
    int64_t x = a.AsInt(), y = b.AsInt();
    switch (op) {
      case MatArith::kAdd:
        return Value::Int(x + y);
      case MatArith::kSub:
        return Value::Int(x - y);
      case MatArith::kMul:
        return Value::Int(x * y);
      case MatArith::kDiv:
        return Value::Int(y == 0 ? 0 : x / y);
    }
  }
  double x = a.AsDouble(), y = b.AsDouble();
  switch (op) {
    case MatArith::kAdd:
      return Value::Double(x + y);
    case MatArith::kSub:
      return Value::Double(x - y);
    case MatArith::kMul:
      return Value::Double(x * y);
    case MatArith::kDiv:
      return Value::Double(x / y);
  }
  return Value::Null();
}

// Concatenated textual key with an unambiguous separator.
std::string KeyAt(const std::vector<const MatColumn*>& cols, size_t row) {
  std::string key;
  for (const MatColumn* c : cols) {
    key += (*c)[row].ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

std::vector<uint32_t> ColumnEngine::SelectCmpConst(const MatColumn& col,
                                                   MatCmp op, const Value& v) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < col.size(); i++) {
    if (CmpHolds(op, Compare(col[i], v))) out.push_back(i);
  }
  Charge(out);
  return out;
}

std::vector<uint32_t> ColumnEngine::SelectCmpCol(const MatColumn& a,
                                                 const MatColumn& b,
                                                 MatCmp op) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < a.size(); i++) {
    if (CmpHolds(op, Compare(a[i], b[i]))) out.push_back(i);
  }
  Charge(out);
  return out;
}

std::vector<uint32_t> ColumnEngine::IntersectSorted(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      i++;
    } else if (b[j] < a[i]) {
      j++;
    } else {
      out.push_back(a[i]);
      i++;
      j++;
    }
  }
  Charge(out);
  return out;
}

std::vector<uint32_t> ColumnEngine::UnionSorted(const std::vector<uint32_t>& a,
                                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      out.push_back(a[i++]);
    } else if (i >= a.size() || b[j] < a[i]) {
      out.push_back(b[j++]);
    } else {
      out.push_back(a[i]);
      i++;
      j++;
    }
  }
  Charge(out);
  return out;
}

std::vector<uint32_t> ColumnEngine::ComplementSorted(
    const std::vector<uint32_t>& sel, uint32_t n) {
  std::vector<uint32_t> out;
  size_t j = 0;
  for (uint32_t i = 0; i < n; i++) {
    if (j < sel.size() && sel[j] == i) {
      j++;
    } else {
      out.push_back(i);
    }
  }
  Charge(out);
  return out;
}

MatColumn ColumnEngine::GatherV(const MatColumn& col,
                                const std::vector<uint32_t>& idx) {
  MatColumn out;
  out.reserve(idx.size());
  for (uint32_t i : idx) out.push_back(col[i]);
  Charge(out);
  return out;
}

MatColumn ColumnEngine::MapArith(MatArith op, const MatColumn& a,
                                 const MatColumn& b) {
  MatColumn out;
  out.reserve(a.size());
  for (size_t i = 0; i < a.size(); i++) out.push_back(ArithOne(op, a[i], b[i]));
  Charge(out);
  return out;
}

MatColumn ColumnEngine::MapArithConst(MatArith op, const MatColumn& a,
                                      const Value& v) {
  MatColumn out;
  out.reserve(a.size());
  for (const Value& x : a) out.push_back(ArithOne(op, x, v));
  Charge(out);
  return out;
}

std::vector<uint32_t> ColumnEngine::GroupIds(
    const std::vector<const MatColumn*>& keys, size_t* n_groups,
    std::vector<uint32_t>* rep_rows) {
  const size_t rows = keys.empty() ? 0 : keys[0]->size();
  std::vector<uint32_t> ids(rows);
  std::map<std::string, uint32_t> seen;
  rep_rows->clear();
  for (size_t i = 0; i < rows; i++) {
    auto [it, inserted] =
        seen.try_emplace(KeyAt(keys, i), static_cast<uint32_t>(seen.size()));
    if (inserted) rep_rows->push_back(static_cast<uint32_t>(i));
    ids[i] = it->second;
  }
  *n_groups = seen.size();
  Charge(ids);
  return ids;
}

MatColumn ColumnEngine::AggGrouped(MatAgg fn, const MatColumn& col,
                                   const std::vector<uint32_t>& groups,
                                   size_t n_groups) {
  std::vector<int64_t> isums(n_groups, 0);
  std::vector<double> sums(n_groups, 0.0);
  std::vector<int64_t> counts(n_groups, 0);
  MatColumn extremes(n_groups, Value::Null());
  for (size_t i = 0; i < col.size(); i++) {
    const uint32_t g = groups[i];
    switch (fn) {
      case MatAgg::kSumI64:
        isums[g] += col[i].AsInt();
        break;
      case MatAgg::kSum:
      case MatAgg::kAvg:
        sums[g] += col[i].AsDouble();
        break;
      case MatAgg::kMin:
      case MatAgg::kMax:
        if (counts[g] == 0) {
          extremes[g] = col[i];
        } else {
          const int c = Compare(col[i], extremes[g]);
          if (fn == MatAgg::kMin ? c < 0 : c > 0) extremes[g] = col[i];
        }
        break;
      case MatAgg::kCount:
        break;
    }
    counts[g]++;
  }
  MatColumn out;
  out.reserve(n_groups);
  for (size_t g = 0; g < n_groups; g++) {
    switch (fn) {
      case MatAgg::kSumI64:
        out.push_back(Value::Int(isums[g]));
        break;
      case MatAgg::kSum:
        out.push_back(Value::Double(sums[g]));
        break;
      case MatAgg::kAvg:
        out.push_back(Value::Double(
            counts[g] == 0 ? 0.0
                           : sums[g] / static_cast<double>(counts[g])));
        break;
      case MatAgg::kMin:
      case MatAgg::kMax:
        out.push_back(counts[g] == 0 ? Value::Int(0) : extremes[g]);
        break;
      case MatAgg::kCount:
        out.push_back(Value::Int(counts[g]));
        break;
    }
  }
  Charge(out);
  return out;
}

MatColumn ColumnEngine::AggGroupedCount(const std::vector<uint32_t>& groups,
                                        size_t n_groups) {
  std::vector<int64_t> counts(n_groups, 0);
  for (uint32_t g : groups) counts[g]++;
  MatColumn out;
  out.reserve(n_groups);
  for (int64_t c : counts) out.push_back(Value::Int(c));
  Charge(out);
  return out;
}

void ColumnEngine::HashJoinPairs(
    const std::vector<const MatColumn*>& probe_keys,
    const std::vector<const MatColumn*>& build_keys,
    std::vector<uint32_t>* probe_idx, std::vector<uint32_t>* build_idx) {
  probe_idx->clear();
  build_idx->clear();
  const size_t build_rows = build_keys.empty() ? 0 : build_keys[0]->size();
  std::map<std::string, std::vector<uint32_t>> table;
  for (size_t i = 0; i < build_rows; i++) {
    table[KeyAt(build_keys, i)].push_back(static_cast<uint32_t>(i));
  }
  const size_t probe_rows = probe_keys.empty() ? 0 : probe_keys[0]->size();
  for (size_t i = 0; i < probe_rows; i++) {
    auto it = table.find(KeyAt(probe_keys, i));
    if (it == table.end()) continue;
    for (uint32_t b : it->second) {
      probe_idx->push_back(static_cast<uint32_t>(i));
      build_idx->push_back(b);
    }
  }
  Charge(*probe_idx);
  Charge(*build_idx);
}

std::vector<uint32_t> ColumnEngine::SemiJoinSel(
    const std::vector<const MatColumn*>& probe_keys,
    const std::vector<const MatColumn*>& build_keys, bool anti) {
  const size_t build_rows = build_keys.empty() ? 0 : build_keys[0]->size();
  std::set<std::string> table;
  for (size_t i = 0; i < build_rows; i++) table.insert(KeyAt(build_keys, i));
  std::vector<uint32_t> out;
  const size_t probe_rows = probe_keys.empty() ? 0 : probe_keys[0]->size();
  for (size_t i = 0; i < probe_rows; i++) {
    const bool hit = table.count(KeyAt(probe_keys, i)) > 0;
    if (hit != anti) out.push_back(static_cast<uint32_t>(i));
  }
  Charge(out);
  return out;
}

std::vector<uint32_t> ColumnEngine::SortPositions(
    const std::vector<const MatColumn*>& keys,
    const std::vector<bool>& ascending) {
  const size_t rows = keys.empty() ? 0 : keys[0]->size();
  std::vector<uint32_t> order(rows);
  for (size_t i = 0; i < rows; i++) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys.size(); k++) {
      const int c = Compare((*keys[k])[a], (*keys[k])[b]);
      if (c != 0) return ascending[k] ? c < 0 : c > 0;
    }
    return false;
  });
  Charge(order);
  return order;
}

}  // namespace vwise::baseline
