#ifndef VWISE_BASELINE_COLUMN_ENGINE_H_
#define VWISE_BASELINE_COLUMN_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/value.h"

namespace vwise::baseline {

// Boxed-value column for the materializing surface below. Mirrors CmpOp /
// ArithOp / AggSpec::Fn without pulling the expression and operator headers
// into the baseline (the engines must stay independent implementations).
using MatColumn = std::vector<Value>;
enum class MatCmp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class MatArith { kAdd, kSub, kMul, kDiv };
enum class MatAgg { kSum, kSumI64, kMin, kMax, kCount, kAvg };

// A MonetDB-style column-at-a-time engine: every operator materializes its
// full result before the next one runs (the "full materialization" the
// paper's Sec. I-A contrasts against). A byte counter tracks intermediate
// materialization volume — the resource the vectorized model avoids
// spending.
class ColumnEngine {
 public:
  ColumnEngine() = default;

  uint64_t bytes_materialized() const { return bytes_; }
  void ResetStats() { bytes_ = 0; }

  // Selection: positions where lo <= col[i] <= hi.
  std::vector<uint32_t> SelectRange(const std::vector<int64_t>& col, int64_t lo,
                                    int64_t hi);
  // Refine an existing candidate list.
  std::vector<uint32_t> SelectRange(const std::vector<int64_t>& col,
                                    const std::vector<uint32_t>& cand,
                                    int64_t lo, int64_t hi);

  // Positional gather (the materialization join of column stores).
  std::vector<int64_t> Gather(const std::vector<int64_t>& col,
                              const std::vector<uint32_t>& idx);
  std::vector<double> GatherF(const std::vector<double>& col,
                              const std::vector<uint32_t>& idx);

  // Full-column maps.
  std::vector<double> CentsToDouble(const std::vector<int64_t>& col);
  std::vector<double> Mul(const std::vector<double>& a,
                          const std::vector<double>& b);
  std::vector<double> Add(const std::vector<double>& a,
                          const std::vector<double>& b);
  std::vector<double> RSub(double scalar, const std::vector<double>& a);
  std::vector<double> RAdd(double scalar, const std::vector<double>& a);

  double Sum(const std::vector<double>& a);
  // Grouped sum: group ids in [0, n_groups).
  std::vector<double> SumGrouped(const std::vector<double>& a,
                                 const std::vector<uint32_t>& groups,
                                 size_t n_groups);

  // --- boxed materializing surface (differential oracle) --------------------
  //
  // Column-at-a-time over boxed Values: each call materializes its complete
  // result before returning (charged to bytes_, like the typed primitives
  // above). The differential oracle composes full query plans out of these.

  // Positions i where `col[i] OP v` / `a[i] OP b[i]` (total Value order).
  std::vector<uint32_t> SelectCmpConst(const MatColumn& col, MatCmp op,
                                       const Value& v);
  std::vector<uint32_t> SelectCmpCol(const MatColumn& a, const MatColumn& b,
                                     MatCmp op);
  // Boolean combinators over ascending position lists.
  std::vector<uint32_t> IntersectSorted(const std::vector<uint32_t>& a,
                                        const std::vector<uint32_t>& b);
  std::vector<uint32_t> UnionSorted(const std::vector<uint32_t>& a,
                                    const std::vector<uint32_t>& b);
  // Complement of `sel` within [0, n).
  std::vector<uint32_t> ComplementSorted(const std::vector<uint32_t>& sel,
                                         uint32_t n);

  MatColumn GatherV(const MatColumn& col, const std::vector<uint32_t>& idx);

  // Arithmetic maps with the engine-wide numeric tower: Int x Int stays
  // exact int64 (Int / 0 yields 0), anything else computes in double.
  MatColumn MapArith(MatArith op, const MatColumn& a, const MatColumn& b);
  MatColumn MapArithConst(MatArith op, const MatColumn& a, const Value& v);

  // Group resolution over equal-length key columns: per-row group ids in
  // first-occurrence order; *rep_rows gets one representative row index per
  // group (the first row of the group).
  std::vector<uint32_t> GroupIds(const std::vector<const MatColumn*>& keys,
                                 size_t* n_groups,
                                 std::vector<uint32_t>* rep_rows);
  // One output slot per group. kSumI64 accumulates exact int64; kSum/kAvg
  // accumulate double in row order; kMin/kMax keep the boxed extreme.
  // Groups with no rows yield the zero row (Int 0 / Double 0) — mirroring
  // the vectorized engine's empty global aggregate.
  MatColumn AggGrouped(MatAgg fn, const MatColumn& col,
                       const std::vector<uint32_t>& groups, size_t n_groups);
  MatColumn AggGroupedCount(const std::vector<uint32_t>& groups,
                            size_t n_groups);

  // Hash join over equal-length key-column lists: inner emits matching
  // (probe, build) row pairs in probe-major build-order; semi/anti emit
  // qualifying probe positions.
  void HashJoinPairs(const std::vector<const MatColumn*>& probe_keys,
                     const std::vector<const MatColumn*>& build_keys,
                     std::vector<uint32_t>* probe_idx,
                     std::vector<uint32_t>* build_idx);
  std::vector<uint32_t> SemiJoinSel(
      const std::vector<const MatColumn*>& probe_keys,
      const std::vector<const MatColumn*>& build_keys, bool anti);

  // Row permutation realizing ORDER BY over `keys` (stable; Value total
  // order), to be applied with GatherV.
  std::vector<uint32_t> SortPositions(
      const std::vector<const MatColumn*>& keys,
      const std::vector<bool>& ascending);

 private:
  template <typename T>
  void Charge(const std::vector<T>& v) {
    bytes_ += v.size() * sizeof(T);
  }

  uint64_t bytes_ = 0;
};

}  // namespace vwise::baseline

#endif  // VWISE_BASELINE_COLUMN_ENGINE_H_
