#ifndef VWISE_BASELINE_COLUMN_ENGINE_H_
#define VWISE_BASELINE_COLUMN_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vwise::baseline {

// A MonetDB-style column-at-a-time engine: every operator materializes its
// full result before the next one runs (the "full materialization" the
// paper's Sec. I-A contrasts against). A byte counter tracks intermediate
// materialization volume — the resource the vectorized model avoids
// spending.
class ColumnEngine {
 public:
  ColumnEngine() = default;

  uint64_t bytes_materialized() const { return bytes_; }
  void ResetStats() { bytes_ = 0; }

  // Selection: positions where lo <= col[i] <= hi.
  std::vector<uint32_t> SelectRange(const std::vector<int64_t>& col, int64_t lo,
                                    int64_t hi);
  // Refine an existing candidate list.
  std::vector<uint32_t> SelectRange(const std::vector<int64_t>& col,
                                    const std::vector<uint32_t>& cand,
                                    int64_t lo, int64_t hi);

  // Positional gather (the materialization join of column stores).
  std::vector<int64_t> Gather(const std::vector<int64_t>& col,
                              const std::vector<uint32_t>& idx);
  std::vector<double> GatherF(const std::vector<double>& col,
                              const std::vector<uint32_t>& idx);

  // Full-column maps.
  std::vector<double> CentsToDouble(const std::vector<int64_t>& col);
  std::vector<double> Mul(const std::vector<double>& a,
                          const std::vector<double>& b);
  std::vector<double> Add(const std::vector<double>& a,
                          const std::vector<double>& b);
  std::vector<double> RSub(double scalar, const std::vector<double>& a);
  std::vector<double> RAdd(double scalar, const std::vector<double>& a);

  double Sum(const std::vector<double>& a);
  // Grouped sum: group ids in [0, n_groups).
  std::vector<double> SumGrouped(const std::vector<double>& a,
                                 const std::vector<uint32_t>& groups,
                                 size_t n_groups);

 private:
  template <typename T>
  void Charge(const std::vector<T>& v) {
    bytes_ += v.size() * sizeof(T);
  }

  uint64_t bytes_ = 0;
};

}  // namespace vwise::baseline

#endif  // VWISE_BASELINE_COLUMN_ENGINE_H_
