#ifndef VWISE_STORAGE_SPILL_FILE_H_
#define VWISE_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "service/query_context.h"
#include "storage/io_file.h"
#include "vector/chunk.h"
#include "vector/types.h"

namespace vwise {

// Chunk-at-a-time temp-file format for the spilling pipeline breakers
// (external sort runs, radix partitions of hash join / aggregation inputs).
//
// Layout:
//
//   file   := file_header block*
//   file_header := magic:u32 ncols:u32 type_id:u8 * ncols
//   block  := magic:u32 rows:u32 payload_bytes:u64 payload crc:u32
//
// The payload serializes each column in declaration order: fixed-width
// columns as `rows * width` dense bytes, string columns as `rows` u32
// lengths followed by the concatenated string bytes (StringVal pointers are
// process-local and never hit disk). The CRC covers the payload, so a torn
// or bit-flipped block surfaces as Status::Corruption on read instead of
// silently wrong query results.
//
// Spill files are query-private scratch: byte order is native, there is no
// sync-for-durability (a crash discards the query anyway), and the whole
// per-query directory is removed when the QueryContext dies — or, after a
// crash, by SweepSpillDir at the next Database::Open.
//
// All I/O goes through IoFile with scope "spill", so the spill.create /
// spill.open / spill.append / spill.read failpoint sites can inject
// err/torn/short/corrupt/crash faults (common/failpoint.h).

// Writes one spill file. Not thread-safe; each partition/run has its own
// writer.
class SpillWriter {
 public:
  // `counters` (may be null) receives bytes-written accounting; pass
  // &ctx->spill_counters() so EXPLAIN ANALYZE sees the traffic.
  static Result<std::unique_ptr<SpillWriter>> Create(
      const std::string& path, const std::vector<TypeId>& types,
      QueryContext::SpillCounters* counters);

  // Appends the chunk's active rows (honors the selection vector) as one
  // block. No-op for an empty chunk.
  Status Append(const DataChunk& chunk);

  // Appends the `n` physical positions listed in `rows` — the radix
  // partitioner hands each partition its slice of the input chunk.
  Status AppendRows(const DataChunk& chunk, const sel_t* rows, size_t n);

  uint64_t rows_written() const { return rows_written_; }
  uint64_t bytes_written() const { return file_->size(); }
  const std::string& path() const { return file_->path(); }

 private:
  SpillWriter(std::unique_ptr<IoFile> file, std::vector<TypeId> types,
              QueryContext::SpillCounters* counters)
      : file_(std::move(file)), types_(std::move(types)), counters_(counters) {}

  std::unique_ptr<IoFile> file_;
  std::vector<TypeId> types_;
  QueryContext::SpillCounters* counters_;
  std::vector<uint8_t> buf_;  // block assembly buffer, reused across appends
  uint64_t rows_written_ = 0;
};

// Reads a spill file back block by block. Not thread-safe.
class SpillReader {
 public:
  // Validates the file header against `types` (Corruption on mismatch).
  static Result<std::unique_ptr<SpillReader>> Open(
      const std::string& path, const std::vector<TypeId>& types,
      QueryContext::SpillCounters* counters);

  // Fills `out` (Init'ed with the writer's types and capacity >= the
  // writer's chunk capacity) with the next block. Returns false at EOF.
  Result<bool> Next(DataChunk* out);

  // Rows decoded so far — the recursive-repartition tests assert a
  // re-partitioned level actually re-read its parent's rows.
  uint64_t rows_read() const { return rows_read_; }

 private:
  SpillReader(std::unique_ptr<IoFile> file, std::vector<TypeId> types,
              uint64_t offset, QueryContext::SpillCounters* counters)
      : file_(std::move(file)),
        types_(std::move(types)),
        offset_(offset),
        counters_(counters) {}

  std::unique_ptr<IoFile> file_;
  std::vector<TypeId> types_;
  uint64_t offset_;  // next unread byte
  QueryContext::SpillCounters* counters_;
  std::vector<uint8_t> buf_;  // payload buffer, reused across blocks
  uint64_t rows_read_ = 0;
};

// Clamps Config::spill_partitions to the power of two in [2, 256] the radix
// partitioners actually use (partition = high hash bits & (count - 1)).
size_t SpillPartitionCount(size_t requested);

// Removes every per-query spill subdirectory under `base` — crash recovery
// for spill scratch. Called by Database::Open before any query runs; a live
// query of another process sharing `base` would lose its temp files, which
// is why the default base is per-database ("<db dir>/spill"). Best effort:
// returns the number of entries removed, never fails.
size_t SweepSpillDir(const std::string& base);

}  // namespace vwise

#endif  // VWISE_STORAGE_SPILL_FILE_H_
