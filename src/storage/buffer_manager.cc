#include "storage/buffer_manager.h"

#include <chrono>
#include <thread>

#include "common/crc32.h"
#include "common/failpoint.h"

namespace vwise {

namespace {
constexpr int kMaxReadAttempts = 3;
constexpr uint64_t kRetryBackoffUs = 100;
}  // namespace

Result<std::shared_ptr<Buffer>> BufferManager::Fetch(
    IoFile* file, uint64_t offset, uint64_t size,
    const uint32_t* expected_crc) {
  Key key{file->id(), offset};
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      stats_.hits++;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.buffer;
    }
    stats_.misses++;
  }
  if (failpoint::Armed()) {
    VWISE_RETURN_IF_ERROR(failpoint::Check("bufmgr.load"));
  }
  // Read outside the lock so a slow (simulated) device doesn't serialize
  // cache hits. A racing fetch of the same blob may duplicate the read;
  // the second insert wins harmlessly.
  //
  // Transient faults — an EIO that clears, a bit flip the next read doesn't
  // repeat — are retried with a short backoff. A persistent fault surfaces
  // to the caller as the query's error; nothing corrupt ever enters the
  // cache.
  auto buffer = Buffer::Allocate(size);
  Status read_status;
  for (int attempt = 1; attempt <= kMaxReadAttempts; attempt++) {
    if (attempt > 1) {
      {
        MutexLock lock(&mu_);
        stats_.read_retries++;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(kRetryBackoffUs * (attempt - 1)));
    }
    read_status = file->Read(offset, size, buffer->data());
    if (!read_status.ok()) continue;
    if (expected_crc != nullptr &&
        Crc32(buffer->data(), size) != *expected_crc) {
      read_status = Status::Corruption(
          "chunk checksum mismatch reading " + file->path() + " at offset " +
          std::to_string(offset));
      continue;
    }
    break;
  }
  VWISE_RETURN_IF_ERROR(read_status);
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      lru_.push_front(key);
      entries_[key] = Entry{buffer, lru_.begin()};
      bytes_cached_ += size;
      EvictLocked();
    }
  }
  return buffer;
}

bool BufferManager::Cached(uint64_t file_id, uint64_t offset) const {
  MutexLock lock(&mu_);
  return entries_.count(Key{file_id, offset}) > 0;
}

void BufferManager::EvictLocked() {
  while (bytes_cached_ > capacity_bytes_ && !lru_.empty()) {
    // Find the least-recently-used unpinned entry.
    bool evicted = false;
    for (auto it = std::prev(lru_.end());; --it) {
      auto eit = entries_.find(*it);
      VWISE_CHECK(eit != entries_.end());
      if (eit->second.buffer.use_count() == 1) {  // only the cache holds it
        bytes_cached_ -= eit->second.buffer->capacity();
        stats_.evictions++;
        entries_.erase(eit);
        lru_.erase(it);
        evicted = true;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (!evicted) break;  // everything pinned: tolerate temporary overflow
  }
}

void BufferManager::EvictAll() {
  MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto eit = entries_.find(*it);
    if (eit->second.buffer.use_count() > 1) {
      ++it;
      continue;
    }
    bytes_cached_ -= eit->second.buffer->capacity();
    entries_.erase(eit);
    it = lru_.erase(it);
  }
}

}  // namespace vwise
