#ifndef VWISE_STORAGE_BUFFER_MANAGER_H_
#define VWISE_STORAGE_BUFFER_MANAGER_H_

#include <list>
#include <memory>
#include <unordered_map>

#include "common/buffer.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/io_file.h"

namespace vwise {

// Caches storage blobs (one blob = one column-group x stripe, the I/O unit)
// in a fixed byte budget with LRU replacement. Pins are shared_ptr<Buffer>:
// an entry whose pin count is >1 is never evicted. The cooperative-scan
// scheduler asks Cached() to prefer stripes already resident.
class BufferManager {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t read_retries = 0;  // miss-path reads retried after an error
  };

  explicit BufferManager(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  // Returns the blob at (file, offset, size), reading it if absent.
  //
  // When `expected_crc` is non-null, a freshly read blob is verified against
  // it before entering the cache; a mismatch is retried (a re-read can heal a
  // transient flip) and reported as Corruption if it persists. Verification
  // happens on the miss path only — cache hits hand back already-verified
  // bytes — so the steady-state scan cost is unchanged. Transient read
  // errors on the miss path are retried a bounded number of times with
  // backoff before the error is surfaced to the query.
  //
  // Failpoint: "bufmgr.load" is evaluated once per miss, *outside* the retry
  // loop, so `bufmgr.load=err:EIO,count:1` fails exactly one chunk load no
  // matter how forgiving the retry policy is.
  Result<std::shared_ptr<Buffer>> Fetch(IoFile* file, uint64_t offset,
                                        uint64_t size,
                                        const uint32_t* expected_crc = nullptr)
      VWISE_EXCLUDES(mu_);

  // True if the blob is resident (used by scan scheduling policies).
  bool Cached(uint64_t file_id, uint64_t offset) const VWISE_EXCLUDES(mu_);

  Stats stats() const VWISE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  size_t bytes_cached() const VWISE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return bytes_cached_;
  }
  void ResetStats() VWISE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = Stats();
  }

  // Drops every unpinned entry (tests, table drops).
  void EvictAll() VWISE_EXCLUDES(mu_);

 private:
  struct Key {
    uint64_t file_id;
    uint64_t offset;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && offset == o.offset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.file_id * 0x9e3779b97f4a7c15ULL ^ k.offset);
    }
  };
  struct Entry {
    std::shared_ptr<Buffer> buffer;
    std::list<Key>::iterator lru_it;
  };

  // Evicts unpinned LRU entries until under budget.
  void EvictLocked() VWISE_REQUIRES(mu_);

  size_t capacity_bytes_;
  mutable Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_ VWISE_GUARDED_BY(mu_);
  std::list<Key> lru_ VWISE_GUARDED_BY(mu_);  // front = most recent
  size_t bytes_cached_ VWISE_GUARDED_BY(mu_) = 0;
  Stats stats_ VWISE_GUARDED_BY(mu_);
};

}  // namespace vwise

#endif  // VWISE_STORAGE_BUFFER_MANAGER_H_
