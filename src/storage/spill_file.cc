#include "storage/spill_file.h"

#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/crc32.h"
#include "common/macros.h"
#include "vector/string_heap.h"
#include "vector/vector.h"

namespace vwise {

namespace {

constexpr uint32_t kFileMagic = 0x4650'5356;   // "VSPF"
constexpr uint32_t kBlockMagic = 0x4C50'5356;  // "VSPL"
// A block holds at most one chunk's rows; anything beyond a generous bound
// on `vector_size * widest row` is a corrupt length field, not real data.
constexpr uint64_t kMaxBlockPayload = 1ull << 30;

void PutU32(std::vector<uint8_t>* buf, uint32_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  buf->insert(buf->end(), p, p + sizeof(v));
}

void PutU64(std::vector<uint8_t>* buf, uint64_t v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  buf->insert(buf->end(), p, p + sizeof(v));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Result<std::unique_ptr<SpillWriter>> SpillWriter::Create(
    const std::string& path, const std::vector<TypeId>& types,
    QueryContext::SpillCounters* counters) {
  std::unique_ptr<IoFile> file;
  VWISE_ASSIGN_OR_RETURN(file, IoFile::Create(path, nullptr, "spill"));
  std::vector<uint8_t> header;
  PutU32(&header, kFileMagic);
  PutU32(&header, static_cast<uint32_t>(types.size()));
  for (TypeId t : types) header.push_back(static_cast<uint8_t>(t));
  VWISE_RETURN_IF_ERROR(file->Append(header.data(), header.size()));
  if (counters != nullptr) {
    counters->bytes_written.fetch_add(header.size(),
                                      std::memory_order_relaxed);
  }
  return std::unique_ptr<SpillWriter>(
      new SpillWriter(std::move(file), types, counters));
}

Status SpillWriter::Append(const DataChunk& chunk) {
  if (chunk.has_selection()) {
    return AppendRows(chunk, chunk.sel(), chunk.sel_count());
  }
  return AppendRows(chunk, nullptr, chunk.count());
}

Status SpillWriter::AppendRows(const DataChunk& chunk, const sel_t* rows,
                               size_t n) {
  if (n == 0) return Status::OK();
  VWISE_DCHECK(chunk.num_columns() == types_.size());
  buf_.clear();
  // Block header; payload_bytes backpatched once the payload is assembled.
  PutU32(&buf_, kBlockMagic);
  PutU32(&buf_, static_cast<uint32_t>(n));
  PutU64(&buf_, 0);
  const size_t payload_start = buf_.size();
  for (size_t c = 0; c < types_.size(); c++) {
    const Vector& col = chunk.column(c);
    if (types_[c] == TypeId::kStr) {
      const StringVal* vals = col.Data<StringVal>();
      for (size_t i = 0; i < n; i++) {
        PutU32(&buf_, vals[rows != nullptr ? rows[i] : i].len);
      }
      for (size_t i = 0; i < n; i++) {
        const StringVal& sv = vals[rows != nullptr ? rows[i] : i];
        const uint8_t* p = reinterpret_cast<const uint8_t*>(sv.ptr);
        buf_.insert(buf_.end(), p, p + sv.len);
      }
    } else {
      const size_t width = TypeWidth(types_[c]);
      const uint8_t* data = reinterpret_cast<const uint8_t*>(col.raw());
      if (rows == nullptr) {
        buf_.insert(buf_.end(), data, data + n * width);
      } else {
        for (size_t i = 0; i < n; i++) {
          buf_.insert(buf_.end(), data + rows[i] * width,
                      data + rows[i] * width + width);
        }
      }
    }
  }
  const uint64_t payload_bytes = buf_.size() - payload_start;
  std::memcpy(buf_.data() + payload_start - sizeof(uint64_t), &payload_bytes,
              sizeof(payload_bytes));
  PutU32(&buf_, Crc32(buf_.data() + payload_start, payload_bytes));
  VWISE_RETURN_IF_ERROR(file_->Append(buf_.data(), buf_.size()));
  rows_written_ += n;
  if (counters_ != nullptr) {
    counters_->bytes_written.fetch_add(buf_.size(), std::memory_order_relaxed);
  }
  return Status::OK();
}

Result<std::unique_ptr<SpillReader>> SpillReader::Open(
    const std::string& path, const std::vector<TypeId>& types,
    QueryContext::SpillCounters* counters) {
  std::unique_ptr<IoFile> file;
  VWISE_ASSIGN_OR_RETURN(file, IoFile::OpenRead(path, nullptr, "spill"));
  const uint64_t header_size = 8 + types.size();
  if (file->size() < header_size) {
    return Status::Corruption("spill file " + path + " truncated header");
  }
  std::vector<uint8_t> header(header_size);
  VWISE_RETURN_IF_ERROR(file->Read(0, header_size, header.data()));
  if (GetU32(header.data()) != kFileMagic ||
      GetU32(header.data() + 4) != types.size()) {
    return Status::Corruption("spill file " + path + " bad header");
  }
  for (size_t c = 0; c < types.size(); c++) {
    if (header[8 + c] != static_cast<uint8_t>(types[c])) {
      return Status::Corruption("spill file " + path + " schema mismatch");
    }
  }
  if (counters != nullptr) {
    counters->bytes_read.fetch_add(header_size, std::memory_order_relaxed);
  }
  return std::unique_ptr<SpillReader>(
      new SpillReader(std::move(file), types, header_size, counters));
}

Result<bool> SpillReader::Next(DataChunk* out) {
  out->Reset();
  if (offset_ >= file_->size()) return false;
  uint8_t header[16];
  if (file_->size() - offset_ < sizeof(header)) {
    return Status::Corruption("spill file " + file_->path() +
                              " truncated block header");
  }
  VWISE_RETURN_IF_ERROR(file_->Read(offset_, sizeof(header), header));
  const uint32_t rows = GetU32(header + 4);
  const uint64_t payload_bytes = GetU64(header + 8);
  if (GetU32(header) != kBlockMagic || payload_bytes > kMaxBlockPayload ||
      rows > out->capacity() ||
      file_->size() - offset_ < sizeof(header) + payload_bytes + 4) {
    return Status::Corruption("spill file " + file_->path() +
                              " bad block at offset " +
                              std::to_string(offset_));
  }
  buf_.resize(payload_bytes + 4);
  VWISE_RETURN_IF_ERROR(
      file_->Read(offset_ + sizeof(header), payload_bytes + 4, buf_.data()));
  if (Crc32(buf_.data(), payload_bytes) != GetU32(buf_.data() + payload_bytes)) {
    return Status::Corruption("spill file " + file_->path() +
                              " CRC mismatch at offset " +
                              std::to_string(offset_));
  }
  const uint8_t* p = buf_.data();
  const uint8_t* end = buf_.data() + payload_bytes;
  for (size_t c = 0; c < types_.size(); c++) {
    Vector& col = out->column(c);
    if (types_[c] == TypeId::kStr) {
      if (static_cast<uint64_t>(end - p) < rows * sizeof(uint32_t)) {
        return Status::Corruption("spill block payload underrun");
      }
      const uint8_t* lens = p;
      p += rows * sizeof(uint32_t);
      uint64_t total = 0;
      for (uint32_t i = 0; i < rows; i++) total += GetU32(lens + i * 4);
      if (static_cast<uint64_t>(end - p) < total) {
        return Status::Corruption("spill block payload underrun");
      }
      StringHeap* heap = col.GetStringHeap();
      char* dst = heap->Reserve(total);
      std::memcpy(dst, p, total);
      p += total;
      StringVal* vals = col.Data<StringVal>();
      uint64_t off = 0;
      for (uint32_t i = 0; i < rows; i++) {
        const uint32_t len = GetU32(lens + i * 4);
        vals[i] = StringVal(dst + off, len);
        off += len;
      }
    } else {
      const size_t width = TypeWidth(types_[c]);
      if (static_cast<uint64_t>(end - p) < rows * width) {
        return Status::Corruption("spill block payload underrun");
      }
      std::memcpy(col.raw(), p, rows * width);
      p += rows * width;
    }
  }
  if (p != end) {
    return Status::Corruption("spill block payload overrun");
  }
  offset_ += sizeof(header) + payload_bytes + 4;
  out->SetCount(rows);
  rows_read_ += rows;
  if (counters_ != nullptr) {
    counters_->bytes_read.fetch_add(sizeof(header) + payload_bytes + 4,
                                    std::memory_order_relaxed);
  }
  return true;
}

size_t SpillPartitionCount(size_t requested) {
  size_t p = 2;
  while (p < requested && p < 256) p <<= 1;
  return p;
}

size_t SweepSpillDir(const std::string& base) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(base, ec);
  if (ec) return 0;  // base does not exist yet — nothing to sweep
  size_t removed = 0;
  for (const auto& entry : it) {
    std::error_code rm_ec;
    fs::remove_all(entry.path(), rm_ec);
    if (!rm_ec) removed++;
  }
  return removed;
}

}  // namespace vwise
