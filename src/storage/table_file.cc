#include "storage/table_file.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/macros.h"

namespace vwise {

namespace {

constexpr uint32_t kMagic = 0x56575442;  // "VWTB"
// v2: per-group blob CRC32s in the footer, verified on buffer-manager miss.
constexpr uint32_t kFormatVersion = 2;

void PutBytes(std::vector<uint8_t>* out, const void* p, size_t n) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + n);
}
template <typename T>
void Put(std::vector<uint8_t>* out, T v) {
  PutBytes(out, &v, sizeof(T));
}

class FooterReader {
 public:
  FooterReader(const uint8_t* p, size_t n) : p_(p), end_(p + n) {}
  template <typename T>
  Status Get(T* out) {
    if (p_ + sizeof(T) > end_) return Status::Corruption("footer truncated");
    std::memcpy(out, p_, sizeof(T));
    p_ += sizeof(T);
    return Status::OK();
  }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

bool IntFamily(TypeId t) { return t == TypeId::kI32 || t == TypeId::kI64; }

}  // namespace

// ---------------------------------------------------------------------------
// TableWriter
// ---------------------------------------------------------------------------

TableWriter::TableWriter(const TableSchema& schema, const ColumnGroups& groups,
                         const Config& config, std::string path,
                         IoDevice* device)
    : schema_(schema),
      groups_(groups),
      config_(config),
      path_(std::move(path)),
      device_(device),
      stage_(schema.num_columns()) {}

TableWriter::~TableWriter() = default;

Status TableWriter::EnsureOpen() {
  if (file_ != nullptr) return Status::OK();
  VWISE_ASSIGN_OR_RETURN(file_, IoFile::Create(path_, device_, "table"));
  uint32_t header[2] = {kMagic, kFormatVersion};
  return file_->Append(header, sizeof(header));
}

Status TableWriter::Append(const DataChunk& chunk) {
  VWISE_CHECK_MSG(!chunk.has_selection(), "TableWriter needs dense chunks");
  for (size_t c = 0; c < chunk.num_columns(); c++) {
    VWISE_CHECK_MSG(!chunk.column(c).IsEncoded(),
                    "TableWriter needs flat chunks: NormalizeColumns first");
  }
  if (chunk.num_columns() != schema_.num_columns()) {
    return Status::InvalidArgument("chunk arity mismatch");
  }
  VWISE_RETURN_IF_ERROR(EnsureOpen());
  for (size_t row = 0; row < chunk.count(); row++) {
    for (size_t c = 0; c < schema_.num_columns(); c++) {
      const Vector& v = chunk.column(c);
      TypeId t = v.type();
      if (t == TypeId::kStr) {
        stage_[c].strings.push_back(v.Data<StringVal>()[row].ToString());
      } else {
        size_t w = TypeWidth(t);
        const uint8_t* src = static_cast<const uint8_t*>(v.raw()) + row * w;
        stage_[c].fixed.insert(stage_[c].fixed.end(), src, src + w);
      }
    }
    stage_rows_++;
    if (stage_rows_ == config_.stripe_rows) {
      VWISE_RETURN_IF_ERROR(FlushStripe());
    }
  }
  return Status::OK();
}

Status TableWriter::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  VWISE_RETURN_IF_ERROR(EnsureOpen());
  for (size_t c = 0; c < row.size(); c++) {
    TypeId t = schema_.column(c).type.physical();
    switch (t) {
      case TypeId::kU8: {
        uint8_t v = static_cast<uint8_t>(row[c].AsInt());
        stage_[c].fixed.push_back(v);
        break;
      }
      case TypeId::kI32: {
        int32_t v = static_cast<int32_t>(row[c].AsInt());
        PutBytes(&stage_[c].fixed, &v, 4);
        break;
      }
      case TypeId::kI64: {
        int64_t v = row[c].AsInt();
        PutBytes(&stage_[c].fixed, &v, 8);
        break;
      }
      case TypeId::kF64: {
        double v = row[c].AsDouble();
        PutBytes(&stage_[c].fixed, &v, 8);
        break;
      }
      case TypeId::kStr:
        stage_[c].strings.push_back(row[c].AsString());
        break;
    }
  }
  stage_rows_++;
  if (stage_rows_ == config_.stripe_rows) return FlushStripe();
  return Status::OK();
}

Status TableWriter::FlushStripe() {
  if (stage_rows_ == 0) return Status::OK();
  StripeInfo stripe;
  stripe.rows = static_cast<uint32_t>(stage_rows_);
  stripe.segments.resize(schema_.num_columns());

  // Encode every column first (so group blobs can be laid out), then write
  // one blob per group.
  std::vector<CompressedSegment> segs(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); c++) {
    TypeId t = schema_.column(c).type.physical();
    // The encoder surface is Vector-typed: wrap the staged bytes in a
    // stripe-sized vector. Strings reference the staged std::strings, which
    // stay alive for the synchronous encode below.
    Vector values(t, stage_rows_);
    if (t == TypeId::kStr) {
      StringVal* sv = values.Data<StringVal>();
      for (size_t i = 0; i < stage_rows_; i++) {
        sv[i] = StringVal(stage_[c].strings[i]);
      }
    } else {
      std::memcpy(values.raw(), stage_[c].fixed.data(),
                  stage_rows_ * TypeWidth(t));
    }
    if (config_.enable_compression) {
      VWISE_ASSIGN_OR_RETURN(segs[c],
                             compression::EncodeBest(values, stage_rows_));
    } else {
      VWISE_ASSIGN_OR_RETURN(
          segs[c], compression::Encode(Codec::kPlain, values, stage_rows_));
    }
    SegmentInfo& info = stripe.segments[c];
    info.codec = segs[c].codec;
    info.count = segs[c].count;
    info.size = static_cast<uint32_t>(segs[c].data.size());
    if (IntFamily(t) && stage_rows_ > 0) {
      info.has_minmax = true;
      if (t == TypeId::kI32) {
        const int32_t* d = reinterpret_cast<const int32_t*>(stage_[c].fixed.data());
        auto [mn, mx] = std::minmax_element(d, d + stage_rows_);
        info.min = *mn;
        info.max = *mx;
      } else {
        const int64_t* d = reinterpret_cast<const int64_t*>(stage_[c].fixed.data());
        auto [mn, mx] = std::minmax_element(d, d + stage_rows_);
        info.min = *mn;
        info.max = *mx;
      }
    }
  }

  stripe.group_offset.resize(groups_.groups.size());
  stripe.group_size.resize(groups_.groups.size());
  stripe.group_crc.resize(groups_.groups.size());
  for (size_t g = 0; g < groups_.groups.size(); g++) {
    std::vector<uint8_t> blob;
    for (uint32_t c : groups_.groups[g]) {
      stripe.segments[c].offset_in_blob = static_cast<uint32_t>(blob.size());
      PutBytes(&blob, segs[c].data.data(), segs[c].data.size());
    }
    uint64_t offset = 0;
    VWISE_RETURN_IF_ERROR(file_->Append(blob.data(), blob.size(), &offset));
    stripe.group_offset[g] = offset;
    stripe.group_size[g] = blob.size();
    stripe.group_crc[g] = Crc32(blob.data(), blob.size());
  }

  stripes_.push_back(std::move(stripe));
  rows_written_ += stage_rows_;
  stage_rows_ = 0;
  for (auto& s : stage_) {
    s.fixed.clear();
    s.strings.clear();
  }
  return Status::OK();
}

Status TableWriter::Finish() {
  VWISE_CHECK_MSG(!finished_, "Finish called twice");
  VWISE_RETURN_IF_ERROR(EnsureOpen());
  VWISE_RETURN_IF_ERROR(FlushStripe());
  finished_ = true;

  std::vector<uint8_t> footer;
  Put<uint64_t>(&footer, rows_written_);
  Put<uint32_t>(&footer, static_cast<uint32_t>(config_.stripe_rows));
  Put<uint32_t>(&footer, static_cast<uint32_t>(schema_.num_columns()));
  for (const auto& col : schema_.columns()) {
    Put<uint8_t>(&footer, static_cast<uint8_t>(col.type.kind));
    Put<uint8_t>(&footer, col.type.scale);
    Put<uint8_t>(&footer, col.nullable ? 1 : 0);
  }
  Put<uint32_t>(&footer, static_cast<uint32_t>(groups_.groups.size()));
  for (const auto& g : groups_.groups) {
    Put<uint32_t>(&footer, static_cast<uint32_t>(g.size()));
    for (uint32_t c : g) Put<uint32_t>(&footer, c);
  }
  Put<uint32_t>(&footer, static_cast<uint32_t>(stripes_.size()));
  for (const auto& s : stripes_) {
    Put<uint32_t>(&footer, s.rows);
    for (size_t g = 0; g < groups_.groups.size(); g++) {
      Put<uint64_t>(&footer, s.group_offset[g]);
      Put<uint64_t>(&footer, s.group_size[g]);
      Put<uint32_t>(&footer, s.group_crc[g]);
    }
    for (const auto& seg : s.segments) {
      Put<uint32_t>(&footer, seg.offset_in_blob);
      Put<uint32_t>(&footer, seg.size);
      Put<uint8_t>(&footer, static_cast<uint8_t>(seg.codec));
      Put<uint32_t>(&footer, seg.count);
      Put<uint8_t>(&footer, seg.has_minmax ? 1 : 0);
      Put<int64_t>(&footer, seg.min);
      Put<int64_t>(&footer, seg.max);
    }
  }

  uint64_t footer_size = footer.size();
  uint32_t crc = Crc32(footer.data(), footer.size());
  VWISE_RETURN_IF_ERROR(file_->Append(footer.data(), footer.size()));
  VWISE_RETURN_IF_ERROR(file_->Append(&footer_size, 8));
  VWISE_RETURN_IF_ERROR(file_->Append(&crc, 4));
  uint32_t magic = kMagic;
  VWISE_RETURN_IF_ERROR(file_->Append(&magic, 4));
  VWISE_RETURN_IF_ERROR(file_->Sync());
  file_.reset();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TableFile
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TableFile>> TableFile::Open(const std::string& path,
                                                   const TableSchema& schema,
                                                   IoDevice* device,
                                                   BufferManager* buffers) {
  VWISE_ASSIGN_OR_RETURN(auto file, IoFile::OpenRead(path, device, "table"));
  if (file->size() < 24) return Status::Corruption("table file too small");

  uint32_t header[2];
  VWISE_RETURN_IF_ERROR(file->Read(0, sizeof(header), header));
  if (header[0] != kMagic) return Status::Corruption("bad table header magic");
  if (header[1] != kFormatVersion) {
    return Status::Corruption("unsupported table format version " +
                              std::to_string(header[1]));
  }

  uint8_t tail[16];
  VWISE_RETURN_IF_ERROR(file->Read(file->size() - 16, 16, tail));
  uint64_t footer_size;
  uint32_t crc, magic;
  std::memcpy(&footer_size, tail, 8);
  std::memcpy(&crc, tail + 8, 4);
  std::memcpy(&magic, tail + 12, 4);
  if (magic != kMagic) return Status::Corruption("bad table magic");
  if (footer_size + 24 > file->size()) {
    return Status::Corruption("bad footer size");
  }
  std::vector<uint8_t> footer(footer_size);
  VWISE_RETURN_IF_ERROR(
      file->Read(file->size() - 16 - footer_size, footer_size, footer.data()));
  if (Crc32(footer.data(), footer.size()) != crc) {
    return Status::Corruption("footer checksum mismatch");
  }

  auto tf = std::unique_ptr<TableFile>(new TableFile());
  tf->schema_ = schema;
  tf->file_ = std::move(file);
  tf->buffers_ = buffers;

  FooterReader r(footer.data(), footer.size());
  VWISE_RETURN_IF_ERROR(r.Get(&tf->row_count_));
  uint32_t stripe_rows, n_cols;
  VWISE_RETURN_IF_ERROR(r.Get(&stripe_rows));
  VWISE_RETURN_IF_ERROR(r.Get(&n_cols));
  if (n_cols != schema.num_columns()) {
    return Status::Corruption("schema/file column count mismatch");
  }
  for (uint32_t c = 0; c < n_cols; c++) {
    uint8_t kind, scale, nullable;
    VWISE_RETURN_IF_ERROR(r.Get(&kind));
    VWISE_RETURN_IF_ERROR(r.Get(&scale));
    VWISE_RETURN_IF_ERROR(r.Get(&nullable));
    if (kind != static_cast<uint8_t>(schema.column(c).type.kind)) {
      return Status::Corruption("schema/file type mismatch for column " +
                                schema.column(c).name);
    }
  }
  uint32_t n_groups;
  VWISE_RETURN_IF_ERROR(r.Get(&n_groups));
  tf->groups_.groups.resize(n_groups);
  for (uint32_t g = 0; g < n_groups; g++) {
    uint32_t sz;
    VWISE_RETURN_IF_ERROR(r.Get(&sz));
    tf->groups_.groups[g].resize(sz);
    for (uint32_t i = 0; i < sz; i++) {
      VWISE_RETURN_IF_ERROR(r.Get(&tf->groups_.groups[g][i]));
    }
  }
  tf->col_to_group_.resize(n_cols);
  for (uint32_t g = 0; g < n_groups; g++) {
    for (uint32_t c : tf->groups_.groups[g]) {
      if (c >= n_cols) return Status::Corruption("bad group column index");
      tf->col_to_group_[c] = g;
    }
  }
  uint32_t n_stripes;
  VWISE_RETURN_IF_ERROR(r.Get(&n_stripes));
  tf->stripes_.resize(n_stripes);
  tf->stripe_start_.resize(n_stripes);
  uint64_t row_acc = 0;
  for (uint32_t s = 0; s < n_stripes; s++) {
    StripeInfo& stripe = tf->stripes_[s];
    VWISE_RETURN_IF_ERROR(r.Get(&stripe.rows));
    tf->stripe_start_[s] = row_acc;
    row_acc += stripe.rows;
    stripe.group_offset.resize(n_groups);
    stripe.group_size.resize(n_groups);
    stripe.group_crc.resize(n_groups);
    for (uint32_t g = 0; g < n_groups; g++) {
      VWISE_RETURN_IF_ERROR(r.Get(&stripe.group_offset[g]));
      VWISE_RETURN_IF_ERROR(r.Get(&stripe.group_size[g]));
      VWISE_RETURN_IF_ERROR(r.Get(&stripe.group_crc[g]));
    }
    stripe.segments.resize(n_cols);
    for (uint32_t c = 0; c < n_cols; c++) {
      SegmentInfo& seg = stripe.segments[c];
      uint8_t codec, has_minmax;
      VWISE_RETURN_IF_ERROR(r.Get(&seg.offset_in_blob));
      VWISE_RETURN_IF_ERROR(r.Get(&seg.size));
      VWISE_RETURN_IF_ERROR(r.Get(&codec));
      VWISE_RETURN_IF_ERROR(r.Get(&seg.count));
      VWISE_RETURN_IF_ERROR(r.Get(&has_minmax));
      VWISE_RETURN_IF_ERROR(r.Get(&seg.min));
      VWISE_RETURN_IF_ERROR(r.Get(&seg.max));
      seg.codec = static_cast<Codec>(codec);
      seg.has_minmax = has_minmax != 0;
    }
  }
  if (row_acc != tf->row_count_) {
    return Status::Corruption("stripe row counts disagree with total");
  }
  return tf;
}

Status TableFile::ReadStripeColumn(size_t stripe, uint32_t col,
                                   DecodedColumn* out, bool allow_encoded) {
  if (stripe >= stripes_.size() || col >= schema_.num_columns()) {
    return Status::InvalidArgument("stripe/column out of range");
  }
  const StripeInfo& si = stripes_[stripe];
  const SegmentInfo& seg = si.segments[col];
  uint32_t g = col_to_group_[col];
  VWISE_ASSIGN_OR_RETURN(
      auto blob, buffers_->Fetch(file_.get(), si.group_offset[g],
                                 si.group_size[g], &si.group_crc[g]));
  if (seg.offset_in_blob + static_cast<uint64_t>(seg.size) > blob->capacity()) {
    return Status::Corruption("segment exceeds blob");
  }
  TypeId t = schema_.column(col).type.physical();
  out->type = t;
  out->count = seg.count;
  out->values.reset();
  out->heap.reset();
  out->repr = VectorRepr::kFlat;
  out->dict_codes.reset();
  out->dict.reset();
  out->rle_values.reset();
  out->rle_starts.reset();
  const uint8_t* data = blob->data() + seg.offset_in_blob;

  if (allow_encoded && seg.codec == Codec::kPdict) {
    out->repr = VectorRepr::kDict;
    out->dict_codes = Buffer::Allocate(static_cast<size_t>(seg.count) * 4);
    out->heap = std::make_shared<StringHeap>();
    auto dict_vals = std::make_shared<std::vector<StringVal>>();
    VWISE_RETURN_IF_ERROR(compression::DecodeDictRaw(
        t, seg.count, data, seg.size, out->dict_codes->As<uint32_t>(),
        dict_vals.get(), out->heap.get()));
    auto dict = std::make_shared<StringDict>();
    dict->values = dict_vals->data();
    dict->size = static_cast<uint32_t>(dict_vals->size());
    dict->heap = out->heap;
    dict->keepalive = dict_vals;
    out->dict = dict;
    return Status::OK();
  }
  if (allow_encoded && seg.codec == Codec::kRle) {
    out->repr = VectorRepr::kRle;
    out->rle_values = std::make_shared<std::vector<uint8_t>>();
    out->rle_starts = std::make_shared<std::vector<uint32_t>>();
    return compression::DecodeRleRuns(t, seg.count, data, seg.size,
                                      out->rle_values.get(),
                                      out->rle_starts.get());
  }

  out->values = Buffer::Allocate(static_cast<size_t>(seg.count) * TypeWidth(t));
  out->heap = t == TypeId::kStr ? std::make_shared<StringHeap>() : nullptr;
  return compression::DecodeRaw(seg.codec, t, seg.count, data, seg.size,
                                out->values->data(), out->heap.get());
}

bool TableFile::StripeOverlapsRange(size_t stripe, uint32_t col, int64_t lo,
                                    int64_t hi) const {
  const SegmentInfo& seg = stripes_[stripe].segments[col];
  if (!seg.has_minmax) return true;
  return seg.max >= lo && seg.min <= hi;
}

}  // namespace vwise
