#ifndef VWISE_STORAGE_TABLE_FILE_H_
#define VWISE_STORAGE_TABLE_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/config.h"
#include "common/result.h"
#include "compression/codec.h"
#include "storage/buffer_manager.h"
#include "storage/io_file.h"
#include "vector/chunk.h"

namespace vwise {

// On-disk layout of one immutable table version:
//
//   [magic][blob blob blob ...][footer][footer_size u64][footer crc u32][magic]
//
// Rows are split into fixed-size *stripes*; within a stripe each column
// group (PAX/DSM assignment, see ColumnGroups) is one contiguous *blob* —
// the I/O and buffer-management unit, and the "chunk" of Cooperative Scans.
// Inside a blob, each column is one compressed segment (PFOR family). The
// footer carries per-segment codecs/offsets and per-column min-max values
// used for stripe skipping.

// Location + decode info of one column's segment within its group blob.
struct SegmentInfo {
  uint32_t offset_in_blob = 0;
  uint32_t size = 0;
  Codec codec = Codec::kPlain;
  uint32_t count = 0;
  bool has_minmax = false;
  int64_t min = 0;
  int64_t max = 0;
};

struct StripeInfo {
  uint32_t rows = 0;
  std::vector<uint64_t> group_offset;  // per group: blob offset in file
  std::vector<uint64_t> group_size;    // per group: blob size
  std::vector<uint32_t> group_crc;     // per group: CRC32 of the blob bytes
  std::vector<SegmentInfo> segments;   // per column
};

// Writes a table version file stripe by stripe. Append() takes dense chunks
// (no selection); Finish() flushes the tail stripe and the footer.
class TableWriter {
 public:
  TableWriter(const TableSchema& schema, const ColumnGroups& groups,
              const Config& config, std::string path, IoDevice* device);
  ~TableWriter();

  Status Append(const DataChunk& chunk);
  // Appends a single row given boundary values (test/API convenience).
  Status AppendRow(const std::vector<Value>& row);
  Status Finish();

  uint64_t rows_written() const { return rows_written_; }

 private:
  Status FlushStripe();
  Status EnsureOpen();

  TableSchema schema_;
  ColumnGroups groups_;
  Config config_;
  std::string path_;
  IoDevice* device_;
  std::unique_ptr<IoFile> file_;

  // Staging for the current stripe.
  struct ColStage {
    std::vector<uint8_t> fixed;        // raw bytes for fixed-width types
    std::vector<std::string> strings;  // owned string values
  };
  std::vector<ColStage> stage_;
  size_t stage_rows_ = 0;
  uint64_t rows_written_ = 0;
  std::vector<StripeInfo> stripes_;
  bool finished_ = false;
};

// A decoded column of one stripe: `count` values plus the heap owning any
// string bytes. Under compressed execution (ReadStripeColumn with
// allow_encoded) the column may instead stay in its storage encoding:
// `repr` then says which of the encoded members carry the data, `values`
// remains unallocated, and the scan publishes chunk-local views straight
// into the executor (DESIGN.md §12).
struct DecodedColumn {
  TypeId type = TypeId::kI64;
  size_t count = 0;
  std::shared_ptr<Buffer> values;
  std::shared_ptr<StringHeap> heap;

  VectorRepr repr = VectorRepr::kFlat;
  // kDict: per-row codes plus the shared dictionary (values in dict->heap).
  std::shared_ptr<Buffer> dict_codes;  // uint32_t per row
  std::shared_ptr<const StringDict> dict;
  // kRle: run values (TypeWidth(type) bytes each) and run start offsets
  // (n_runs + 1 entries, last == count), both shared with chunk views.
  std::shared_ptr<std::vector<uint8_t>> rle_values;
  std::shared_ptr<std::vector<uint32_t>> rle_starts;

  template <typename T>
  const T* Data() const {
    return values->As<T>();
  }
};

// Read-side view of one table version file.
class TableFile {
 public:
  static Result<std::unique_ptr<TableFile>> Open(const std::string& path,
                                                 const TableSchema& schema,
                                                 IoDevice* device,
                                                 BufferManager* buffers);

  uint64_t row_count() const { return row_count_; }
  size_t stripe_count() const { return stripes_.size(); }
  const StripeInfo& stripe(size_t i) const { return stripes_[i]; }
  const ColumnGroups& groups() const { return groups_; }
  const TableSchema& schema() const { return schema_; }
  uint64_t file_id() const { return file_->id(); }
  // First row id of stripe `i` in the stable table image.
  uint64_t stripe_first_row(size_t i) const { return stripe_start_[i]; }

  // Blob identity of (stripe, group) for buffer-residency queries.
  uint64_t GroupBlobOffset(size_t stripe, uint32_t group) const {
    return stripes_[stripe].group_offset[group];
  }

  // Decodes column `col` of stripe `stripe` (fetching its group blob through
  // the buffer manager). With `allow_encoded`, PDICT and RLE segments are
  // adopted in their storage encoding (codes/runs only — no per-row value
  // materialization) instead of being decoded flat; other codecs still
  // decode eagerly.
  Status ReadStripeColumn(size_t stripe, uint32_t col, DecodedColumn* out,
                          bool allow_encoded = false);

  // True if the stripe might contain values of `col` within [lo, hi]
  // (integer-family columns only; returns true when unknown).
  bool StripeOverlapsRange(size_t stripe, uint32_t col, int64_t lo,
                           int64_t hi) const;

 private:
  TableFile() = default;

  TableSchema schema_;
  ColumnGroups groups_;
  std::vector<uint32_t> col_to_group_;
  std::unique_ptr<IoFile> file_;
  BufferManager* buffers_ = nullptr;
  uint64_t row_count_ = 0;
  std::vector<StripeInfo> stripes_;
  std::vector<uint64_t> stripe_start_;
};

}  // namespace vwise

#endif  // VWISE_STORAGE_TABLE_FILE_H_
