#ifndef VWISE_STORAGE_IO_FILE_H_
#define VWISE_STORAGE_IO_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/config.h"
#include "common/failpoint.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace vwise {

// Counters for the I/O layer; read by benches (E7 reports logical I/O volume,
// which is hardware-independent) and by cooperative-scan tests.
struct IoStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> bytes_written{0};

  void Reset() {
    reads = 0;
    bytes_read = 0;
    writes = 0;
    bytes_written = 0;
  }
};

// Models the disk beneath the buffer manager. Real reads go through pread;
// optionally, a bandwidth/seek model serializes requests and sleeps, so
// bandwidth-sharing behavior (Cooperative Scans, paper [4]) is measurable on
// a machine whose page cache is warm. One IoDevice is shared by all files of
// a database.
class IoDevice {
 public:
  explicit IoDevice(const Config& config)
      : bandwidth_(config.sim_io_bandwidth_bytes_per_sec),
        seek_us_(config.sim_io_seek_us) {}

  // Accounts (and possibly sleeps for) a read of `bytes`.
  void ChargeRead(uint64_t bytes) VWISE_EXCLUDES(mu_);
  void ChargeWrite(uint64_t bytes);

  IoStats& stats() { return stats_; }

 private:
  uint64_t bandwidth_;
  uint64_t seek_us_;
  // A disk serves one request at a time: the bandwidth/seek model holds mu_
  // for the simulated transfer so concurrent readers queue. stats_ members
  // are atomics and are deliberately NOT guarded — counting must not
  // serialize the unsimulated (bandwidth_ == 0) fast path.
  Mutex mu_;
  // vwise-lint: allow(unguarded-member): IoStats fields are atomics
  IoStats stats_;
};

// A file opened for positional reads and appends.
//
// Every operation is a failpoint evaluation site named `<scope>.<op>`
// (common/failpoint.h): callers pick the scope at open time so faults can be
// aimed at one subsystem — the WAL opens its file with scope "wal"
// (-> wal.append, wal.sync, ...), table version files use "table", the
// catalog "catalog"; the default scope is "io". Disarmed cost per operation:
// one relaxed atomic load.
//
// Partial transfers and EINTR are handled here, not by callers: Read and
// Append loop until the full count moved (a short pread/pwrite is a retry,
// not success or failure), and Sync/Truncate retry EINTR.
class IoFile {
 public:
  static Result<std::unique_ptr<IoFile>> Create(const std::string& path,
                                                IoDevice* device,
                                                const std::string& scope = "io");
  static Result<std::unique_ptr<IoFile>> OpenRead(const std::string& path,
                                                  IoDevice* device,
                                                  const std::string& scope = "io");
  // Opens read-write, positioned for appends at the current end (WAL reuse).
  static Result<std::unique_ptr<IoFile>> OpenAppend(const std::string& path,
                                                    IoDevice* device,
                                                    const std::string& scope = "io");

  ~IoFile();
  IoFile(const IoFile&) = delete;
  IoFile& operator=(const IoFile&) = delete;

  Status Read(uint64_t offset, uint64_t size, void* out);
  // Appends `size` bytes; returns the offset they were written at. On
  // failure the logical size is unchanged: a later Append overwrites any
  // bytes a torn write left behind.
  Status Append(const void* data, uint64_t size, uint64_t* offset = nullptr);
  Status Sync();
  Status Truncate(uint64_t size);
  uint64_t size() const { return size_; }
  uint64_t id() const { return id_; }
  const std::string& path() const { return path_; }

 private:
  IoFile(int fd, std::string path, uint64_t size, IoDevice* device,
         const std::string& scope);

  int fd_;
  std::string path_;
  uint64_t size_;
  IoDevice* device_;
  uint64_t id_;
  // Precomputed failpoint site names, so the armed path does not concatenate
  // strings per operation (the disarmed path never touches them).
  std::string site_read_;
  std::string site_append_;
  std::string site_sync_;
  std::string site_truncate_;
  static std::atomic<uint64_t> next_id_;
};

// fsyncs the directory itself, making preceding renames/creates in it
// durable (POSIX: a rename is not guaranteed on disk until the parent
// directory is synced).
Status SyncDir(const std::string& dir);

}  // namespace vwise

#endif  // VWISE_STORAGE_IO_FILE_H_
