#include "storage/io_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"

namespace vwise {

std::atomic<uint64_t> IoFile::next_id_{1};

void IoDevice::ChargeRead(uint64_t bytes) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  if (bandwidth_ == 0 && seek_us_ == 0) return;
  // Hold the device mutex while "transferring": concurrent readers queue,
  // which is exactly the contention Cooperative Scans exploit.
  MutexLock lock(&mu_);
  uint64_t us = seek_us_;
  if (bandwidth_ > 0) us += bytes * 1000000 / bandwidth_;
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void IoDevice::ChargeWrite(uint64_t bytes) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
}

IoFile::IoFile(int fd, std::string path, uint64_t size, IoDevice* device,
               const std::string& scope)
    : fd_(fd), path_(std::move(path)), size_(size), device_(device),
      id_(next_id_.fetch_add(1)),
      site_read_(scope + ".read"),
      site_append_(scope + ".append"),
      site_sync_(scope + ".sync"),
      site_truncate_(scope + ".truncate") {}

IoFile::~IoFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<IoFile>> IoFile::Create(const std::string& path,
                                               IoDevice* device,
                                               const std::string& scope) {
  if (failpoint::Armed()) {
    VWISE_RETURN_IF_ERROR(failpoint::Check(scope + ".create"));
  }
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("create " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<IoFile>(new IoFile(fd, path, 0, device, scope));
}

Result<std::unique_ptr<IoFile>> IoFile::OpenRead(const std::string& path,
                                                 IoDevice* device,
                                                 const std::string& scope) {
  if (failpoint::Armed()) {
    VWISE_RETURN_IF_ERROR(failpoint::Check(scope + ".open"));
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  return std::unique_ptr<IoFile>(
      new IoFile(fd, path, static_cast<uint64_t>(size), device, scope));
}

Result<std::unique_ptr<IoFile>> IoFile::OpenAppend(const std::string& path,
                                                   IoDevice* device,
                                                   const std::string& scope) {
  if (failpoint::Armed()) {
    VWISE_RETURN_IF_ERROR(failpoint::Check(scope + ".open"));
  }
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  return std::unique_ptr<IoFile>(
      new IoFile(fd, path, static_cast<uint64_t>(size), device, scope));
}

Status IoFile::Read(uint64_t offset, uint64_t size, void* out) {
  failpoint::Action act;
  if (failpoint::Armed()) {
    act = failpoint::Evaluate(site_read_);
    if (!act.status.ok()) return act.status;
  }
  if (device_ != nullptr) device_->ChargeRead(size);
  uint8_t* dst = static_cast<uint8_t*>(out);
  uint64_t done = 0;
  while (done < size) {
    // A `short` failpoint caps every syscall's transfer; the loop must still
    // deliver the full count — that is the contract under test.
    uint64_t want = size - done;
    if (act.short_bytes > 0) want = std::min(want, act.short_bytes);
    ssize_t n = ::pread(fd_, dst + done, want,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path_ + ": " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("pread " + path_ + ": unexpected EOF");
    }
    done += static_cast<uint64_t>(n);
  }
  if (act.corrupt && size > 0) {
    uint64_t at = act.corrupt_at == UINT64_MAX ? size / 2
                                               : std::min(act.corrupt_at,
                                                          size - 1);
    dst[at] ^= 0x40;
  }
  return Status::OK();
}

Status IoFile::Append(const void* data, uint64_t size, uint64_t* offset) {
  failpoint::Action act;
  if (failpoint::Armed()) {
    act = failpoint::Evaluate(site_append_);
    if (!act.status.ok() && !act.torn) return act.status;
  }
  if (device_ != nullptr) device_->ChargeWrite(size);
  if (offset != nullptr) *offset = size_;
  // A torn write physically lands a prefix of the data — exactly what a
  // power cut mid-pwrite leaves behind — then fails without moving the
  // logical size, so recovery code sees the partial bytes on reopen.
  uint64_t limit = act.torn ? std::min(act.torn_bytes, size) : size;
  const uint8_t* src = static_cast<const uint8_t*>(data);
  uint64_t done = 0;
  while (done < limit) {
    uint64_t want = limit - done;
    if (act.short_bytes > 0) want = std::min(want, act.short_bytes);
    ssize_t n = ::pwrite(fd_, src + done, want,
                         static_cast<off_t>(size_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path_ + ": " + std::strerror(errno));
    }
    done += static_cast<uint64_t>(n);
  }
  if (act.torn) return act.status;
  size_ += size;
  return Status::OK();
}

Status IoFile::Sync() {
  if (failpoint::Armed()) {
    VWISE_RETURN_IF_ERROR(failpoint::Check(site_sync_));
  }
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status IoFile::Truncate(uint64_t size) {
  if (failpoint::Armed()) {
    VWISE_RETURN_IF_ERROR(failpoint::Check(site_truncate_));
  }
  while (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    if (errno == EINTR) continue;
    return Status::IOError("ftruncate " + path_ + ": " + std::strerror(errno));
  }
  size_ = size;
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + dir + ": " + std::strerror(errno));
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  // Some filesystems reject fsync on directories (EINVAL); treat that as
  // best-effort rather than failing the checkpoint.
  if (rc != 0 && errno != EINVAL) {
    Status s = Status::IOError("fsync dir " + dir + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace vwise
