#include "storage/io_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/macros.h"

namespace vwise {

std::atomic<uint64_t> IoFile::next_id_{1};

void IoDevice::ChargeRead(uint64_t bytes) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  if (bandwidth_ == 0 && seek_us_ == 0) return;
  // Hold the device mutex while "transferring": concurrent readers queue,
  // which is exactly the contention Cooperative Scans exploit.
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t us = seek_us_;
  if (bandwidth_ > 0) us += bytes * 1000000 / bandwidth_;
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void IoDevice::ChargeWrite(uint64_t bytes) {
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
}

IoFile::IoFile(int fd, std::string path, uint64_t size, IoDevice* device)
    : fd_(fd), path_(std::move(path)), size_(size), device_(device),
      id_(next_id_.fetch_add(1)) {}

IoFile::~IoFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<IoFile>> IoFile::Create(const std::string& path,
                                               IoDevice* device) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("create " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<IoFile>(new IoFile(fd, path, 0, device));
}

Result<std::unique_ptr<IoFile>> IoFile::OpenRead(const std::string& path,
                                                 IoDevice* device) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  return std::unique_ptr<IoFile>(
      new IoFile(fd, path, static_cast<uint64_t>(size), device));
}

Result<std::unique_ptr<IoFile>> IoFile::OpenAppend(const std::string& path,
                                                   IoDevice* device) {
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  return std::unique_ptr<IoFile>(
      new IoFile(fd, path, static_cast<uint64_t>(size), device));
}

Status IoFile::Read(uint64_t offset, uint64_t size, void* out) {
  if (device_ != nullptr) device_->ChargeRead(size);
  uint8_t* dst = static_cast<uint8_t*>(out);
  uint64_t done = 0;
  while (done < size) {
    ssize_t n = ::pread(fd_, dst + done, size - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path_ + ": " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("pread " + path_ + ": unexpected EOF");
    }
    done += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status IoFile::Append(const void* data, uint64_t size, uint64_t* offset) {
  if (device_ != nullptr) device_->ChargeWrite(size);
  if (offset != nullptr) *offset = size_;
  const uint8_t* src = static_cast<const uint8_t*>(data);
  uint64_t done = 0;
  while (done < size) {
    ssize_t n = ::pwrite(fd_, src + done, size - done,
                         static_cast<off_t>(size_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path_ + ": " + std::strerror(errno));
    }
    done += static_cast<uint64_t>(n);
  }
  size_ += size;
  return Status::OK();
}

Status IoFile::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status IoFile::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate " + path_ + ": " + std::strerror(errno));
  }
  size_ = size;
  return Status::OK();
}

}  // namespace vwise
