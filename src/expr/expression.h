#ifndef VWISE_EXPR_EXPRESSION_H_
#define VWISE_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "vector/chunk.h"

namespace vwise {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// A vectorized scalar expression. Eval() computes the expression at the
// active positions (sel, n) of the input chunk, writing results *at those
// positions* of the output vector, which keeps every vector of a chunk
// position-aligned (see DataChunk). Nodes own scratch vectors allocated by
// Prepare(), so evaluation allocates nothing.
class Expr {
 public:
  explicit Expr(DataType type) : type_(type) {}
  virtual ~Expr() = default;

  const DataType& type() const { return type_; }
  TypeId physical() const { return type_.physical(); }

  // Allocates scratch for chunks of up to `capacity` rows. Must be called
  // (once) before Eval.
  virtual Status Prepare(size_t capacity);

  // Evaluates at positions (sel, n); sel == nullptr means positions [0, n).
  // On success *out points to a vector valid until the next Eval on this
  // node (either the node's scratch or an input column).
  virtual Status Eval(DataChunk& in, const sel_t* sel, size_t n,
                      Vector** out) = 0;

  // True for literal nodes; binary operators use this to pick col x val
  // kernel variants.
  virtual bool IsConstant() const { return false; }

 protected:
  DataType type_;
  Vector scratch_;
  size_t capacity_ = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

// References column `index` of the input chunk (zero copy).
class ColRefExpr final : public Expr {
 public:
  ColRefExpr(size_t index, DataType type) : Expr(type), index_(index) {}
  Status Prepare(size_t capacity) override;
  Status Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) override;
  size_t index() const { return index_; }

 private:
  size_t index_;
  Vector ref_;
};

// A literal. The scratch vector is pre-filled at Prepare time, so Eval is
// free; binary operators instead read `value()` directly and use val-kernels.
class ConstExpr final : public Expr {
 public:
  ConstExpr(Value value, DataType type) : Expr(type), value_(std::move(value)) {}
  Status Prepare(size_t capacity) override;
  Status Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) override;
  bool IsConstant() const override { return true; }

  const Value& value() const { return value_; }
  int64_t AsI64() const { return value_.AsInt(); }
  double AsF64() const { return value_.AsDouble(); }

 private:
  Value value_;
  StringVal str_;
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

// left OP right; both children must have the same physical type, which must
// be kI64 or kF64 (the plan builder inserts casts).
class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr left, ExprPtr right);
  Status Prepare(size_t capacity) override;
  Status Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) override;

  ArithOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }

 private:
  ArithOp op_;
  ExprPtr left_, right_;
};

// Physical-representation casts. The target DataType determines semantics:
// decimal -> double divides by 10^scale, int casts widen, etc.
class CastExpr final : public Expr {
 public:
  CastExpr(ExprPtr input, DataType to);
  Status Prepare(size_t capacity) override;
  Status Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) override;

  const Expr& input() const { return *input_; }

 private:
  ExprPtr input_;
  double decimal_factor_ = 1.0;
};

// EXTRACT(YEAR FROM date_expr) -> int64.
class YearExpr final : public Expr {
 public:
  explicit YearExpr(ExprPtr input);
  Status Prepare(size_t capacity) override;
  Status Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) override;

  const Expr& input() const { return *input_; }

 private:
  ExprPtr input_;
};

// SUBSTRING(str_expr, start, len), 1-based start; zero-copy (points into the
// source string bytes).
class SubstrExpr final : public Expr {
 public:
  SubstrExpr(ExprPtr input, size_t start, size_t len);
  Status Prepare(size_t capacity) override;
  Status Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) override;

  const Expr& input() const { return *input_; }

 private:
  ExprPtr input_;
  size_t start_, len_;
};

class Filter;  // below

// CASE WHEN cond THEN a ELSE b END. Evaluates both branches at all active
// positions, then overwrites the `then` values at positions selected by
// `cond`. Branches must share the expression's type.
class CaseExpr final : public Expr {
 public:
  CaseExpr(std::unique_ptr<Filter> cond, ExprPtr then_expr, ExprPtr else_expr);
  ~CaseExpr() override;
  Status Prepare(size_t capacity) override;
  Status Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) override;

  const Filter& cond() const { return *cond_; }
  const Expr& then_expr() const { return *then_; }
  const Expr& else_expr() const { return *else_; }

 private:
  std::unique_ptr<Filter> cond_;
  ExprPtr then_, else_;
  std::shared_ptr<Buffer> cond_sel_;
};

// ---------------------------------------------------------------------------
// Filters (selection-vector producers)
// ---------------------------------------------------------------------------

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

// A predicate over a chunk. Select() writes the qualifying subset of the
// active positions (sel, n) into out_sel (ascending) and returns the count.
// Filters never modify the chunk.
class Filter {
 public:
  virtual ~Filter() = default;
  virtual Status Prepare(size_t capacity);
  virtual Status Select(DataChunk& in, const sel_t* sel, size_t n,
                        sel_t* out_sel, size_t* out_n) = 0;

 protected:
  size_t capacity_ = 0;
  std::shared_ptr<Buffer> tmp_sel_a_, tmp_sel_b_;
};

using FilterPtr = std::unique_ptr<Filter>;

// left CMP right. Works for all physical types, col x col and col x const.
class CmpFilter final : public Filter {
 public:
  CmpFilter(CmpOp op, ExprPtr left, ExprPtr right);
  Status Prepare(size_t capacity) override;
  Status Select(DataChunk& in, const sel_t* sel, size_t n, sel_t* out_sel,
                size_t* out_n) override;

  CmpOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }

 private:
  // Encoded fast path (compressed execution): when the left side is a direct
  // column reference whose vector arrives dict- or RLE-encoded and the right
  // side is a constant, Select compares codes/runs without normalizing. The
  // dict constant is translated to a code once per dictionary and cached
  // here; the cache holds the dictionary itself (not a raw pointer) so the
  // identity check cannot alias a recycled allocation.
  bool TryEncodedSelect(DataChunk& in, Expr* l, Expr* r, CmpOp op,
                        const sel_t* sel, size_t n, sel_t* out_sel,
                        size_t* out_n);

  CmpOp op_;
  ExprPtr left_, right_;
  std::shared_ptr<const StringDict> cached_dict_;
  uint32_t cached_code_ = 0;
};

// Conjunction: filters applied in order, each narrowing the selection.
class AndFilter final : public Filter {
 public:
  explicit AndFilter(std::vector<FilterPtr> children);
  Status Prepare(size_t capacity) override;
  Status Select(DataChunk& in, const sel_t* sel, size_t n, sel_t* out_sel,
                size_t* out_n) override;

  const std::vector<FilterPtr>& children() const { return children_; }

 private:
  std::vector<FilterPtr> children_;
};

// Disjunction: union (merge) of each child's qualifying positions.
class OrFilter final : public Filter {
 public:
  explicit OrFilter(std::vector<FilterPtr> children);
  Status Prepare(size_t capacity) override;
  Status Select(DataChunk& in, const sel_t* sel, size_t n, sel_t* out_sel,
                size_t* out_n) override;

  const std::vector<FilterPtr>& children() const { return children_; }

 private:
  std::vector<FilterPtr> children_;
  // Merge target for the ascending-union step, sized at Prepare so Select
  // stays allocation-free.
  std::shared_ptr<Buffer> merge_buf_;
};

// Complement of the child filter within the active positions.
class NotFilter final : public Filter {
 public:
  explicit NotFilter(FilterPtr child);
  Status Prepare(size_t capacity) override;
  Status Select(DataChunk& in, const sel_t* sel, size_t n, sel_t* out_sel,
                size_t* out_n) override;

  const Filter& child() const { return *child_; }

 private:
  FilterPtr child_;
};

// expr IN (v1, v2, ...). Linear membership test; the value lists in
// analytical predicates are short.
class InFilter final : public Filter {
 public:
  InFilter(ExprPtr input, std::vector<Value> values, bool negate = false);
  Status Prepare(size_t capacity) override;
  Status Select(DataChunk& in, const sel_t* sel, size_t n, sel_t* out_sel,
                size_t* out_n) override;

  const Expr& input() const { return *input_; }
  const std::vector<Value>& values() const { return values_; }
  bool negate() const { return negate_; }

 private:
  ExprPtr input_;
  std::vector<Value> values_;
  std::vector<int64_t> ints_;
  std::vector<std::string> strings_;
  bool negate_;
};

// SQL LIKE with % (any run) and _ (any one char).
class LikeFilter final : public Filter {
 public:
  LikeFilter(ExprPtr input, std::string pattern, bool negate = false);
  Status Prepare(size_t capacity) override;
  Status Select(DataChunk& in, const sel_t* sel, size_t n, sel_t* out_sel,
                size_t* out_n) override;

  // Exposed for tests.
  static bool Match(std::string_view s, std::string_view pattern);

  const Expr& input() const { return *input_; }
  const std::string& pattern() const { return pattern_; }
  bool negate() const { return negate_; }

 private:
  ExprPtr input_;
  std::string pattern_;
  bool negate_;
};

// ---------------------------------------------------------------------------
// Construction helpers (the plan-builder DSL uses these heavily)
// ---------------------------------------------------------------------------

namespace e {

ExprPtr Col(size_t index, DataType type);
ExprPtr I64(int64_t v);
ExprPtr F64(double v);
ExprPtr Str(std::string v);
ExprPtr DateLit(const char* ymd);        // "YYYY-MM-DD" -> date constant
ExprPtr Dec(double v, uint8_t scale);    // decimal constant from double
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);
ExprPtr Cast(ExprPtr x, DataType to);
ExprPtr ToF64(ExprPtr x);                // cast honoring decimal scale
ExprPtr Year(ExprPtr x);
ExprPtr Substr(ExprPtr x, size_t start, size_t len);
ExprPtr Case(FilterPtr cond, ExprPtr then_expr, ExprPtr else_expr);

FilterPtr Cmp(CmpOp op, ExprPtr l, ExprPtr r);
FilterPtr Eq(ExprPtr l, ExprPtr r);
FilterPtr Ne(ExprPtr l, ExprPtr r);
FilterPtr Lt(ExprPtr l, ExprPtr r);
FilterPtr Le(ExprPtr l, ExprPtr r);
FilterPtr Gt(ExprPtr l, ExprPtr r);
FilterPtr Ge(ExprPtr l, ExprPtr r);
FilterPtr And(std::vector<FilterPtr> children);
FilterPtr Or(std::vector<FilterPtr> children);
FilterPtr Not(FilterPtr f);
FilterPtr In(ExprPtr x, std::vector<Value> values);
FilterPtr NotIn(ExprPtr x, std::vector<Value> values);
FilterPtr Like(ExprPtr x, std::string pattern);
FilterPtr NotLike(ExprPtr x, std::string pattern);

}  // namespace e

}  // namespace vwise

#endif  // VWISE_EXPR_EXPRESSION_H_
