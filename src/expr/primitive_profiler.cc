#include "expr/primitive_profiler.h"

#include <cstdio>
#include <mutex>
#include <sstream>

#include "common/macros.h"

namespace vwise {

namespace {

// Catalog names in id order, generated from the same X-macro list as the
// PrimitiveId enum.
const char* const kPrimitiveNames[] = {
#define VWISE_MAP_PRIMITIVE(name, ctype, adapter, functor, caps) #name,
#define VWISE_SEL_PRIMITIVE(name, ctype, adapter, functor, caps) #name,
#define VWISE_ENC_PRIMITIVE(name, ctype, adapter, functor, repr) #name,
#include "expr/primitive_catalog.inc"
#undef VWISE_MAP_PRIMITIVE
#undef VWISE_SEL_PRIMITIVE
#undef VWISE_ENC_PRIMITIVE
};
static_assert(sizeof(kPrimitiveNames) / sizeof(kPrimitiveNames[0]) ==
                  kNumPrimitives,
              "name table out of sync with the PrimitiveId enum");

const char* MapTypeToken(TypeId ty) {
  switch (ty) {
    case TypeId::kU8:
      return "u8";
    case TypeId::kI32:
      return "i32";
    case TypeId::kI64:
      return "i64";
    case TypeId::kF64:
      return "f64";
    case TypeId::kStr:
      return "str";
  }
  return "?";
}

// The arithmetic id mapping assumes the catalog's block layout. Compose each
// name from the grammar and compare against the generated table once, so a
// reordered catalog fails loudly instead of mis-attributing counters.
void ValidateLayout() {
  static const char* const kMapOps[] = {"add", "sub", "mul", "div"};
  static const TypeId kMapTys[] = {TypeId::kI64, TypeId::kF64};
  static const char* const kMapKinds[] = {"col_%s_col", "col_%s_val",
                                          "val_%s_col"};
  for (int ty = 0; ty < 2; ty++) {
    for (int op = 0; op < 4; op++) {
      for (int kind = 0; kind < 3; kind++) {
        const char* tok = MapTypeToken(kMapTys[ty]);
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), kMapKinds[kind], tok);
        std::string want = std::string("map_") + kMapOps[op] + "_" + tok +
                           "_" + suffix;
        PrimitiveId id =
            MapPrimId(op, kMapTys[ty], static_cast<MapKind>(kind));
        VWISE_CHECK_MSG(want == kPrimitiveNames[id],
                        "primitive_catalog.inc layout drifted from "
                        "MapPrimId; fix the mapping in primitive_profiler");
      }
    }
  }
  static const char* const kSelOps[] = {"eq", "ne", "lt", "le", "gt", "ge"};
  static const TypeId kSelTys[] = {TypeId::kU8, TypeId::kI32, TypeId::kI64,
                                   TypeId::kF64, TypeId::kStr};
  for (int ty = 0; ty < 5; ty++) {
    for (int op = 0; op < 6; op++) {
      for (int rhs_val = 0; rhs_val < 2; rhs_val++) {
        const char* tok = MapTypeToken(kSelTys[ty]);
        std::string want = std::string("sel_") + kSelOps[op] + "_" + tok +
                           "_col_" + tok + (rhs_val ? "_val" : "_col");
        PrimitiveId id = SelPrimId(op, kSelTys[ty], rhs_val != 0);
        VWISE_CHECK_MSG(want == kPrimitiveNames[id],
                        "primitive_catalog.inc layout drifted from "
                        "SelPrimId; fix the mapping in primitive_profiler");
      }
    }
  }
  for (int op = 0; op < 2; op++) {
    std::string want =
        std::string("sel_") + kSelOps[op] + "_str_dict_str_val";
    VWISE_CHECK_MSG(want == kPrimitiveNames[DictSelPrimId(op)],
                    "primitive_catalog.inc layout drifted from "
                    "DictSelPrimId; fix the mapping in primitive_profiler");
  }
  static const TypeId kRleTys[] = {TypeId::kU8, TypeId::kI32, TypeId::kI64,
                                   TypeId::kF64};
  for (int ty = 0; ty < 4; ty++) {
    for (int op = 0; op < 6; op++) {
      const char* tok = MapTypeToken(kRleTys[ty]);
      std::string want = std::string("sel_") + kSelOps[op] + "_" + tok +
                         "_rle_" + tok + "_val";
      PrimitiveId id = RleSelPrimId(op, kRleTys[ty]);
      VWISE_CHECK_MSG(want == kPrimitiveNames[id],
                      "primitive_catalog.inc layout drifted from "
                      "RleSelPrimId; fix the mapping in primitive_profiler");
    }
  }
}

}  // namespace

PrimitiveId MapPrimId(int op, TypeId ty, MapKind kind) {
  // Catalog layout: i64 block then f64 block; each block add/sub/mul/div;
  // each op col_col, col_val, val_col.
  int ty_block = (ty == TypeId::kI64) ? 0 : 1;
  return static_cast<PrimitiveId>(kPrim_map_add_i64_col_i64_col +
                                  ty_block * 12 + op * 3 +
                                  static_cast<int>(kind));
}

PrimitiveId SelPrimId(int cmp, TypeId ty, bool rhs_val) {
  // Catalog layout: u8, i32, i64, f64, str blocks; each block
  // eq/ne/lt/le/gt/ge; each op the val variant then the col variant.
  int ty_block;
  switch (ty) {
    case TypeId::kU8:
      ty_block = 0;
      break;
    case TypeId::kI32:
      ty_block = 1;
      break;
    case TypeId::kI64:
      ty_block = 2;
      break;
    case TypeId::kF64:
      ty_block = 3;
      break;
    case TypeId::kStr:
      ty_block = 4;
      break;
    default:
      ty_block = 0;
      break;
  }
  return static_cast<PrimitiveId>(kPrim_sel_eq_u8_col_u8_val + ty_block * 12 +
                                  cmp * 2 + (rhs_val ? 0 : 1));
}

PrimitiveId DictSelPrimId(int cmp) {
  // Encoded-twin layout: the two dict selects (eq then ne) open the section.
  return static_cast<PrimitiveId>(kPrim_sel_eq_str_dict_str_val + cmp);
}

PrimitiveId RleSelPrimId(int cmp, TypeId ty) {
  // Encoded-twin layout: after the dict pair, one block per numeric type
  // (u8, i32, i64, f64), each eq/ne/lt/le/gt/ge.
  int ty_block;
  switch (ty) {
    case TypeId::kU8:
      ty_block = 0;
      break;
    case TypeId::kI32:
      ty_block = 1;
      break;
    case TypeId::kI64:
      ty_block = 2;
      break;
    case TypeId::kF64:
      ty_block = 3;
      break;
    default:
      ty_block = 0;
      break;
  }
  return static_cast<PrimitiveId>(kPrim_sel_eq_u8_rle_u8_val + ty_block * 6 +
                                  cmp);
}

std::atomic<bool> PrimitiveProfiler::enabled_{false};
PrimitiveProfiler::Counters PrimitiveProfiler::counters_[kNumPrimitives];

void PrimitiveProfiler::SetEnabled(bool on) {
  if (on) {
    static std::once_flag validated;
    std::call_once(validated, ValidateLayout);
  }
  enabled_.store(on, std::memory_order_relaxed);
}

const char* PrimitiveProfiler::Name(PrimitiveId id) {
  return id < kNumPrimitives ? kPrimitiveNames[id] : "<invalid>";
}

std::vector<PrimitiveCounters> PrimitiveProfiler::Snapshot() {
  std::vector<PrimitiveCounters> out(kNumPrimitives);
  for (int i = 0; i < kNumPrimitives; i++) {
    out[i].name = kPrimitiveNames[i];
    out[i].calls = counters_[i].calls.load(std::memory_order_relaxed);
    out[i].tuples = counters_[i].tuples.load(std::memory_order_relaxed);
    out[i].cycles = counters_[i].cycles.load(std::memory_order_relaxed);
  }
  return out;
}

void PrimitiveProfiler::Reset() {
  for (auto& c : counters_) {
    c.calls.store(0, std::memory_order_relaxed);
    c.tuples.store(0, std::memory_order_relaxed);
    c.cycles.store(0, std::memory_order_relaxed);
  }
}

std::string RenderPrimitiveProfile(const std::vector<PrimitiveCounters>& before,
                                   const std::vector<PrimitiveCounters>& after) {
  std::ostringstream os;
  bool any = false;
  for (size_t i = 0; i < after.size(); i++) {
    uint64_t calls = after[i].calls;
    uint64_t tuples = after[i].tuples;
    uint64_t cycles = after[i].cycles;
    if (i < before.size()) {
      calls -= before[i].calls;
      tuples -= before[i].tuples;
      cycles -= before[i].cycles;
    }
    if (calls == 0) continue;
    if (!any) {
      os << "primitives:\n";
      char header[96];
      std::snprintf(header, sizeof(header), "  %-28s %10s %12s %14s\n",
                    "name", "calls", "tuples", "cycles/tuple");
      os << header;
      any = true;
    }
    double cpt = tuples > 0 ? static_cast<double>(cycles) /
                                  static_cast<double>(tuples)
                            : 0.0;
    char line[128];
    std::snprintf(line, sizeof(line), "  %-28s %10llu %12llu %14.2f\n",
                  after[i].name, static_cast<unsigned long long>(calls),
                  static_cast<unsigned long long>(tuples), cpt);
    os << line;
  }
  return os.str();
}

}  // namespace vwise
