#ifndef VWISE_EXPR_PRIMITIVES_H_
#define VWISE_EXPR_PRIMITIVES_H_

#include <cstddef>

#include "vector/types.h"

// X100-style vectorized primitives: flat loops over value arrays, optionally
// driven by a selection vector of active positions. Results are written *at
// the same positions* as the inputs, keeping all vectors of a chunk aligned
// so selections can be propagated without compaction.
//
// Each primitive is instantiated per type combination by the expression
// layer; there are no per-value virtual calls or type dispatches — that is
// the entire point of vectorized execution (paper Sec. I-A).

namespace vwise::prim {

// ---- Map primitives: out[p] = OP(a[p], b[p]) ------------------------------

template <typename R, typename A, typename B, typename OP>
inline void MapColCol(const A* a, const B* b, R* out, const sel_t* sel,
                      size_t n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) out[i] = OP()(a[i], b[i]);
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out[p] = OP()(a[p], b[p]);
    }
  }
}

template <typename R, typename A, typename B, typename OP>
inline void MapColVal(const A* a, B b, R* out, const sel_t* sel, size_t n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) out[i] = OP()(a[i], b);
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out[p] = OP()(a[p], b);
    }
  }
}

template <typename R, typename A, typename B, typename OP>
inline void MapValCol(A a, const B* b, R* out, const sel_t* sel, size_t n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) out[i] = OP()(a, b[i]);
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out[p] = OP()(a, b[p]);
    }
  }
}

template <typename R, typename A, typename OP>
inline void MapUnary(const A* a, R* out, const sel_t* sel, size_t n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) out[i] = OP()(a[i]);
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out[p] = OP()(a[p]);
    }
  }
}

// ---- Select primitives: emit qualifying positions -------------------------
// Returns the number of positions written to out_sel (ascending order is
// preserved because the input selection is ascending).

template <typename A, typename B, typename OP>
inline size_t SelectColVal(const A* a, B b, const sel_t* sel, size_t n,
                           sel_t* out_sel) {
  size_t k = 0;
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) {
      out_sel[k] = static_cast<sel_t>(i);
      k += OP()(a[i], b);
    }
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out_sel[k] = p;
      k += OP()(a[p], b);
    }
  }
  return k;
}

template <typename A, typename B, typename OP>
inline size_t SelectColCol(const A* a, const B* b, const sel_t* sel, size_t n,
                           sel_t* out_sel) {
  size_t k = 0;
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) {
      out_sel[k] = static_cast<sel_t>(i);
      k += OP()(a[i], b[i]);
    }
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out_sel[k] = p;
      k += OP()(a[p], b[p]);
    }
  }
  return k;
}

// ---- Encoded-representation selects (compressed execution) -----------------
// These run on a vector's *encoded* form — PDICT codes or RLE runs — so a
// predicate costs one integer compare per tuple (dict; no string-heap
// traffic at all) or one compare per run (RLE) instead of one full-value
// compare per tuple. See DESIGN.md "Compressed execution".

// sel_<cmp>_str_dict_str_val: the string constant has been translated to its
// dictionary code once per vector (kDictCodeNotFound when absent — matching
// no code, which is exactly right for both eq and ne); rows then qualify by
// integer compare against the per-row codes.
template <typename OP>
inline size_t SelectDictVal(const uint32_t* codes, uint32_t code,
                            const sel_t* sel, size_t n, sel_t* out_sel) {
  return SelectColVal<uint32_t, uint32_t, OP>(codes, code, sel, n, out_sel);
}

// sel_<cmp>_<ty>_rle_<ty>_val: evaluates OP once per run and emits the
// positions the matching runs cover. run_starts has n_runs + 1 ascending
// entries with run_starts[0] == 0 and run_starts[n_runs] == n (the
// chunk-local run contract, vector/vector.h).
template <typename T, typename OP>
inline size_t SelectRleVal(const T* run_values, const uint32_t* run_starts,
                           uint32_t n_runs, T val, const sel_t* sel, size_t n,
                           sel_t* out_sel) {
  size_t k = 0;
  if (sel == nullptr) {
    for (uint32_t r = 0; r < n_runs; r++) {
      if (!OP()(run_values[r], val)) continue;
      uint32_t end = run_starts[r + 1];
      for (uint32_t p = run_starts[r]; p < end; p++) {
        out_sel[k++] = static_cast<sel_t>(p);
      }
    }
  } else {
    // Walk the (ascending) selection and the runs in tandem: one run-bound
    // advance plus one per-run compare amortized over the run's positions.
    uint32_t r = 0;
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      while (run_starts[r + 1] <= p) r++;
      out_sel[k] = p;
      k += OP()(run_values[r], val);
    }
  }
  return k;
}

// ---- Gather / scatter ------------------------------------------------------

template <typename T>
inline void Gather(const T* src, const sel_t* idx, size_t n, T* dst) {
  for (size_t i = 0; i < n; i++) dst[i] = src[idx[i]];
}

// ---- Operator functors -----------------------------------------------------

struct OpAdd {
  template <typename A, typename B>
  auto operator()(A a, B b) const {
    return a + b;
  }
};
struct OpSub {
  template <typename A, typename B>
  auto operator()(A a, B b) const {
    return a - b;
  }
};
struct OpMul {
  template <typename A, typename B>
  auto operator()(A a, B b) const {
    return a * b;
  }
};
struct OpDiv {
  template <typename A, typename B>
  auto operator()(A a, B b) const {
    return a / b;
  }
};
struct OpEq {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a == b;
  }
};
struct OpNe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a != b;
  }
};
struct OpLt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a < b;
  }
};
struct OpLe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a <= b;
  }
};
struct OpGt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a > b;
  }
};
struct OpGe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a >= b;
  }
};

}  // namespace vwise::prim

#endif  // VWISE_EXPR_PRIMITIVES_H_
