#ifndef VWISE_EXPR_PRIMITIVES_H_
#define VWISE_EXPR_PRIMITIVES_H_

#include <cstddef>

#include "vector/types.h"

// X100-style vectorized primitives: flat loops over value arrays, optionally
// driven by a selection vector of active positions. Results are written *at
// the same positions* as the inputs, keeping all vectors of a chunk aligned
// so selections can be propagated without compaction.
//
// Each primitive is instantiated per type combination by the expression
// layer; there are no per-value virtual calls or type dispatches — that is
// the entire point of vectorized execution (paper Sec. I-A).

namespace vwise::prim {

// ---- Map primitives: out[p] = OP(a[p], b[p]) ------------------------------

template <typename R, typename A, typename B, typename OP>
inline void MapColCol(const A* a, const B* b, R* out, const sel_t* sel,
                      size_t n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) out[i] = OP()(a[i], b[i]);
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out[p] = OP()(a[p], b[p]);
    }
  }
}

template <typename R, typename A, typename B, typename OP>
inline void MapColVal(const A* a, B b, R* out, const sel_t* sel, size_t n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) out[i] = OP()(a[i], b);
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out[p] = OP()(a[p], b);
    }
  }
}

template <typename R, typename A, typename B, typename OP>
inline void MapValCol(A a, const B* b, R* out, const sel_t* sel, size_t n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) out[i] = OP()(a, b[i]);
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out[p] = OP()(a, b[p]);
    }
  }
}

template <typename R, typename A, typename OP>
inline void MapUnary(const A* a, R* out, const sel_t* sel, size_t n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) out[i] = OP()(a[i]);
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out[p] = OP()(a[p]);
    }
  }
}

// ---- Select primitives: emit qualifying positions -------------------------
// Returns the number of positions written to out_sel (ascending order is
// preserved because the input selection is ascending).

template <typename A, typename B, typename OP>
inline size_t SelectColVal(const A* a, B b, const sel_t* sel, size_t n,
                           sel_t* out_sel) {
  size_t k = 0;
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) {
      out_sel[k] = static_cast<sel_t>(i);
      k += OP()(a[i], b);
    }
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out_sel[k] = p;
      k += OP()(a[p], b);
    }
  }
  return k;
}

template <typename A, typename B, typename OP>
inline size_t SelectColCol(const A* a, const B* b, const sel_t* sel, size_t n,
                           sel_t* out_sel) {
  size_t k = 0;
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) {
      out_sel[k] = static_cast<sel_t>(i);
      k += OP()(a[i], b[i]);
    }
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      out_sel[k] = p;
      k += OP()(a[p], b[p]);
    }
  }
  return k;
}

// ---- Gather / scatter ------------------------------------------------------

template <typename T>
inline void Gather(const T* src, const sel_t* idx, size_t n, T* dst) {
  for (size_t i = 0; i < n; i++) dst[i] = src[idx[i]];
}

// ---- Operator functors -----------------------------------------------------

struct OpAdd {
  template <typename A, typename B>
  auto operator()(A a, B b) const {
    return a + b;
  }
};
struct OpSub {
  template <typename A, typename B>
  auto operator()(A a, B b) const {
    return a - b;
  }
};
struct OpMul {
  template <typename A, typename B>
  auto operator()(A a, B b) const {
    return a * b;
  }
};
struct OpDiv {
  template <typename A, typename B>
  auto operator()(A a, B b) const {
    return a / b;
  }
};
struct OpEq {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a == b;
  }
};
struct OpNe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a != b;
  }
};
struct OpLt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a < b;
  }
};
struct OpLe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a <= b;
  }
};
struct OpGt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a > b;
  }
};
struct OpGe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    return a >= b;
  }
};

}  // namespace vwise::prim

#endif  // VWISE_EXPR_PRIMITIVES_H_
