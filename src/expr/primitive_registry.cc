#include "expr/primitive_registry.h"

#include <type_traits>

#include "expr/primitives.h"
#include "vector/representation.h"

namespace vwise {

namespace {

// Type-erased adapters over the template kernels in expr/primitives.h.

template <typename T, typename OP>
void MapColCol(const void* a, const void* b, void* out, const sel_t* sel,
               size_t n) {
  prim::MapColCol<T, T, T, OP>(static_cast<const T*>(a),
                               static_cast<const T*>(b), static_cast<T*>(out),
                               sel, n);
}

template <typename T, typename OP>
void MapColVal(const void* a, const void* b, void* out, const sel_t* sel,
               size_t n) {
  prim::MapColVal<T, T, T, OP>(static_cast<const T*>(a),
                               *static_cast<const T*>(b), static_cast<T*>(out),
                               sel, n);
}

template <typename T, typename OP>
void MapValCol(const void* a, const void* b, void* out, const sel_t* sel,
               size_t n) {
  prim::MapValCol<T, T, T, OP>(*static_cast<const T*>(a),
                               static_cast<const T*>(b), static_cast<T*>(out),
                               sel, n);
}

template <typename T, typename OP>
size_t SelColVal(const void* a, const void* b, const sel_t* sel, size_t n,
                 sel_t* out_sel) {
  return prim::SelectColVal<T, T, OP>(static_cast<const T*>(a),
                                      *static_cast<const T*>(b), sel, n,
                                      out_sel);
}

template <typename T, typename OP>
size_t SelColCol(const void* a, const void* b, const sel_t* sel, size_t n,
                 sel_t* out_sel) {
  return prim::SelectColCol<T, T, OP>(static_cast<const T*>(a),
                                      static_cast<const T*>(b), sel, n,
                                      out_sel);
}

// Encoded twins. The dict select's column operand is the uint32 code array
// (T is pinned to uint32_t by the catalog); the RLE select's is an
// RleColView describing the runs.
template <typename T, typename OP>
size_t EncSelDictVal(const void* a, const void* b, const sel_t* sel, size_t n,
                     sel_t* out_sel) {
  static_assert(std::is_same_v<T, uint32_t>, "dict codes are uint32");
  return prim::SelectDictVal<OP>(static_cast<const uint32_t*>(a),
                                 *static_cast<const uint32_t*>(b), sel, n,
                                 out_sel);
}

template <typename T, typename OP>
size_t EncSelRleVal(const void* a, const void* b, const sel_t* sel, size_t n,
                    sel_t* out_sel) {
  const auto* view = static_cast<const RleColView*>(a);
  return prim::SelectRleVal<T, OP>(static_cast<const T*>(view->run_values),
                                   view->run_starts, view->n_runs,
                                   *static_cast<const T*>(b), sel, n, out_sel);
}

}  // namespace

PrimitiveRegistry::PrimitiveRegistry() {
  // The catalog is a flat, explicit list — one line per primitive — so the
  // lint pass (tools/vwise_lint.py) can statically cross-check every entry
  // against the kernels and functors in expr/primitives.h.
#define VWISE_MAP_PRIMITIVE(name, ctype, adapter, functor, caps) \
  maps_[#name] = &adapter<ctype, prim::functor>;                 \
  caps_[#name] = static_cast<uint8_t>(caps);
#define VWISE_SEL_PRIMITIVE(name, ctype, adapter, functor, caps) \
  selects_[#name] = &adapter<ctype, prim::functor>;              \
  caps_[#name] = static_cast<uint8_t>(caps);
#define VWISE_ENC_PRIMITIVE(name, ctype, adapter, functor, repr) \
  enc_selects_[#name] = &adapter<ctype, prim::functor>;          \
  caps_[#name] = static_cast<uint8_t>(repr);
#include "expr/primitive_catalog.inc"
#undef VWISE_MAP_PRIMITIVE
#undef VWISE_SEL_PRIMITIVE
#undef VWISE_ENC_PRIMITIVE
}

const PrimitiveRegistry& PrimitiveRegistry::Instance() {
  static const PrimitiveRegistry* registry = new PrimitiveRegistry();
  return *registry;
}

PrimitiveRegistry::MapBinaryFn PrimitiveRegistry::FindMap(
    const std::string& name) const {
  auto it = maps_.find(name);
  return it == maps_.end() ? nullptr : it->second;
}

PrimitiveRegistry::SelectFn PrimitiveRegistry::FindSelect(
    const std::string& name) const {
  auto it = selects_.find(name);
  return it == selects_.end() ? nullptr : it->second;
}

PrimitiveRegistry::SelectFn PrimitiveRegistry::FindEncSelect(
    const std::string& name) const {
  auto it = enc_selects_.find(name);
  return it == enc_selects_.end() ? nullptr : it->second;
}

uint8_t PrimitiveRegistry::Caps(const std::string& name) const {
  auto it = caps_.find(name);
  return it == caps_.end() ? kReprFlat : it->second;
}

std::vector<std::string> PrimitiveRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (const auto& [name, fn] : maps_) {
    (void)fn;
    out.push_back(name);
  }
  for (const auto& [name, fn] : selects_) {
    (void)fn;
    out.push_back(name);
  }
  for (const auto& [name, fn] : enc_selects_) {
    (void)fn;
    out.push_back(name);
  }
  return out;
}

}  // namespace vwise
