#include "expr/primitive_registry.h"

#include "expr/primitives.h"

namespace vwise {

namespace {

// Type-erased adapters over the template kernels in expr/primitives.h.

template <typename T, typename OP>
void MapColCol(const void* a, const void* b, void* out, const sel_t* sel,
               size_t n) {
  prim::MapColCol<T, T, T, OP>(static_cast<const T*>(a),
                               static_cast<const T*>(b), static_cast<T*>(out),
                               sel, n);
}

template <typename T, typename OP>
void MapColVal(const void* a, const void* b, void* out, const sel_t* sel,
               size_t n) {
  prim::MapColVal<T, T, T, OP>(static_cast<const T*>(a),
                               *static_cast<const T*>(b), static_cast<T*>(out),
                               sel, n);
}

template <typename T, typename OP>
void MapValCol(const void* a, const void* b, void* out, const sel_t* sel,
               size_t n) {
  prim::MapValCol<T, T, T, OP>(*static_cast<const T*>(a),
                               static_cast<const T*>(b), static_cast<T*>(out),
                               sel, n);
}

template <typename T, typename OP>
size_t SelColVal(const void* a, const void* b, const sel_t* sel, size_t n,
                 sel_t* out_sel) {
  return prim::SelectColVal<T, T, OP>(static_cast<const T*>(a),
                                      *static_cast<const T*>(b), sel, n,
                                      out_sel);
}

template <typename T, typename OP>
size_t SelColCol(const void* a, const void* b, const sel_t* sel, size_t n,
                 sel_t* out_sel) {
  return prim::SelectColCol<T, T, OP>(static_cast<const T*>(a),
                                      static_cast<const T*>(b), sel, n,
                                      out_sel);
}

const char* TypeToken(TypeId t) { return TypeIdToString(t); }

}  // namespace

PrimitiveRegistry::PrimitiveRegistry() {
  // ---- map primitives: {add,sub,mul,div} x {i64,f64} x operand kinds ------
  auto reg_map_type = [&](auto type_tag, TypeId id) {
    using T = decltype(type_tag);
    auto reg_op = [&](const char* op, auto op_tag) {
      using OP = decltype(op_tag);
      std::string base = std::string("map_") + op + "_" + TypeToken(id);
      maps_[base + "_col_" + TypeToken(id) + "_col"] = &MapColCol<T, OP>;
      maps_[base + "_col_" + TypeToken(id) + "_val"] = &MapColVal<T, OP>;
      maps_[base + "_val_" + TypeToken(id) + "_col"] = &MapValCol<T, OP>;
    };
    reg_op("add", prim::OpAdd{});
    reg_op("sub", prim::OpSub{});
    reg_op("mul", prim::OpMul{});
    reg_op("div", prim::OpDiv{});
  };
  reg_map_type(int64_t{}, TypeId::kI64);
  reg_map_type(double{}, TypeId::kF64);

  // ---- select primitives: 6 comparisons x 5 types x {col_val, col_col} ----
  auto reg_sel_type = [&](auto type_tag, TypeId id) {
    using T = decltype(type_tag);
    auto reg_op = [&](const char* op, auto op_tag) {
      using OP = decltype(op_tag);
      std::string base = std::string("sel_") + op + "_" + TypeToken(id);
      selects_[base + "_col_" + TypeToken(id) + "_val"] = &SelColVal<T, OP>;
      selects_[base + "_col_" + TypeToken(id) + "_col"] = &SelColCol<T, OP>;
    };
    reg_op("eq", prim::OpEq{});
    reg_op("ne", prim::OpNe{});
    reg_op("lt", prim::OpLt{});
    reg_op("le", prim::OpLe{});
    reg_op("gt", prim::OpGt{});
    reg_op("ge", prim::OpGe{});
  };
  reg_sel_type(uint8_t{}, TypeId::kU8);
  reg_sel_type(int32_t{}, TypeId::kI32);
  reg_sel_type(int64_t{}, TypeId::kI64);
  reg_sel_type(double{}, TypeId::kF64);
  reg_sel_type(StringVal{}, TypeId::kStr);
}

const PrimitiveRegistry& PrimitiveRegistry::Instance() {
  static const PrimitiveRegistry* registry = new PrimitiveRegistry();
  return *registry;
}

PrimitiveRegistry::MapBinaryFn PrimitiveRegistry::FindMap(
    const std::string& name) const {
  auto it = maps_.find(name);
  return it == maps_.end() ? nullptr : it->second;
}

PrimitiveRegistry::SelectFn PrimitiveRegistry::FindSelect(
    const std::string& name) const {
  auto it = selects_.find(name);
  return it == selects_.end() ? nullptr : it->second;
}

std::vector<std::string> PrimitiveRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (const auto& [name, fn] : maps_) {
    (void)fn;
    out.push_back(name);
  }
  for (const auto& [name, fn] : selects_) {
    (void)fn;
    out.push_back(name);
  }
  return out;
}

}  // namespace vwise
