#ifndef VWISE_EXPR_PRIMITIVE_REGISTRY_H_
#define VWISE_EXPR_PRIMITIVE_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "vector/types.h"

namespace vwise {

// The X100 execution model exposes its kernels as a flat catalog of *named
// primitives* — `map_add_i64_col_i64_col`, `sel_lt_f64_col_f64_val`, ... —
// one specialized loop per (operation, type, operand-kind) combination
// (Boncz et al., CIDR'05; paper Sec. I-A). The expression layer normally
// binds kernels statically via templates; this registry exposes the same
// instantiations by name for introspection, testing, and the micro-bench
// harness (exactly how MonetDB/X100 enumerated its primitive table).
//
// Signatures are type-erased: operands are raw column pointers (or a
// pointer to a single value for `val` kinds), results are written at the
// active positions, following the engine-wide selection-vector discipline.

class PrimitiveRegistry {
 public:
  // out[p] = op(a[p], b[p])  /  op(a[p], *b)  /  op(*a, b[p])
  using MapBinaryFn = void (*)(const void* a, const void* b, void* out,
                               const sel_t* sel, size_t n);
  // Writes qualifying positions to out_sel, returns how many.
  using SelectFn = size_t (*)(const void* a, const void* b, const sel_t* sel,
                              size_t n, sel_t* out_sel);

  static const PrimitiveRegistry& Instance();

  // nullptr if the name is not registered.
  MapBinaryFn FindMap(const std::string& name) const;
  SelectFn FindSelect(const std::string& name) const;

  // All registered primitive names, sorted (map_* then sel_*).
  std::vector<std::string> Names() const;
  size_t size() const { return maps_.size() + selects_.size(); }

 private:
  PrimitiveRegistry();

  std::map<std::string, MapBinaryFn> maps_;
  std::map<std::string, SelectFn> selects_;
};

}  // namespace vwise

#endif  // VWISE_EXPR_PRIMITIVE_REGISTRY_H_
