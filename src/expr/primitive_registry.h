#ifndef VWISE_EXPR_PRIMITIVE_REGISTRY_H_
#define VWISE_EXPR_PRIMITIVE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vector/types.h"

namespace vwise {

// The X100 execution model exposes its kernels as a flat catalog of *named
// primitives* — `map_add_i64_col_i64_col`, `sel_lt_f64_col_f64_val`, ... —
// one specialized loop per (operation, type, operand-kind) combination
// (Boncz et al., CIDR'05; paper Sec. I-A). The expression layer normally
// binds kernels statically via templates; this registry exposes the same
// instantiations by name for introspection, testing, and the micro-bench
// harness (exactly how MonetDB/X100 enumerated its primitive table).
//
// Signatures are type-erased: operands are raw column pointers (or a
// pointer to a single value for `val` kinds), results are written at the
// active positions, following the engine-wide selection-vector discipline.
//
// Compressed execution adds *encoded twins* (sel_<cmp>_<ty>_{dict,rle}_...)
// whose column operand arrives in its storage encoding; the catalog's caps
// column records which representations each logical primitive accepts.

// Operand view for the sel_*_rle_* encoded selects through the erased
// interface: `a` points at one of these instead of a value array.
struct RleColView {
  const void* run_values = nullptr;     // n_runs values, TypeWidth each
  const uint32_t* run_starts = nullptr; // n_runs + 1; [0]=0, [n_runs]=n
  uint32_t n_runs = 0;
};

class PrimitiveRegistry {
 public:
  // out[p] = op(a[p], b[p])  /  op(a[p], *b)  /  op(*a, b[p])
  using MapBinaryFn = void (*)(const void* a, const void* b, void* out,
                               const sel_t* sel, size_t n);
  // Writes qualifying positions to out_sel, returns how many.
  using SelectFn = size_t (*)(const void* a, const void* b, const sel_t* sel,
                              size_t n, sel_t* out_sel);

  static const PrimitiveRegistry& Instance();

  // nullptr if the name is not registered.
  MapBinaryFn FindMap(const std::string& name) const;
  SelectFn FindSelect(const std::string& name) const;
  // Encoded twins only (sel_*_dict_* / sel_*_rle_*). Dict selects take the
  // uint32 code array as `a` and a pointer to the translated code as `b`;
  // RLE selects take a pointer to an RleColView as `a`.
  SelectFn FindEncSelect(const std::string& name) const;

  // Representation-capability mask of a named primitive (kRepr* bits,
  // vector/representation.h). kReprFlat for unknown names: a primitive that
  // is not in the catalog certainly consumes only normalized vectors.
  uint8_t Caps(const std::string& name) const;

  // All registered primitive names, sorted (map_* then sel_*, encoded twins
  // included).
  std::vector<std::string> Names() const;
  size_t size() const {
    return maps_.size() + selects_.size() + enc_selects_.size();
  }

 private:
  PrimitiveRegistry();

  std::map<std::string, MapBinaryFn> maps_;
  std::map<std::string, SelectFn> selects_;
  std::map<std::string, SelectFn> enc_selects_;
  std::map<std::string, uint8_t> caps_;
};

}  // namespace vwise

#endif  // VWISE_EXPR_PRIMITIVE_REGISTRY_H_
