#include "expr/expression.h"

#include <cstring>
#include <string_view>

#include "common/date.h"
#include "expr/primitive_profiler.h"
#include "expr/primitives.h"
#include "vector/representation.h"

namespace vwise {

// ---------------------------------------------------------------------------
// Expr base
// ---------------------------------------------------------------------------

Status Expr::Prepare(size_t capacity) {
  capacity_ = capacity;
  scratch_.Init(physical(), capacity);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ColRefExpr
// ---------------------------------------------------------------------------

Status ColRefExpr::Prepare(size_t capacity) {
  capacity_ = capacity;  // no scratch needed
  return Status::OK();
}

Status ColRefExpr::Eval(DataChunk& in, const sel_t* sel, size_t n,
                        Vector** out) {
  (void)sel;
  (void)n;
  if (index_ >= in.num_columns()) {
    return Status::Internal("column reference out of range");
  }
  Vector& col = in.column(index_);
  if (col.type() != physical()) {
    return Status::Internal("column reference type mismatch");
  }
  // Decode-on-demand boundary (DESIGN.md §12): a consumer reaching a column
  // through a plain reference expects flat data. Encoding-aware consumers
  // (CmpFilter's dict/RLE fast paths) inspect the representation *before*
  // Eval, so an encoded vector that survives to this point has no encoded
  // kernel and is normalized in place — the chunk's other readers then see
  // the flat form too.
  if (col.IsEncoded()) {
    // vwise-hotpath: allow(cold-call): decode runs once per chunk, only when
    // no encoded kernel claimed the column — never per tuple
    col.Normalize(in.count());
  }
  *out = &col;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ConstExpr
// ---------------------------------------------------------------------------

Status ConstExpr::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Expr::Prepare(capacity));
  switch (physical()) {
    case TypeId::kU8: {
      uint8_t v = static_cast<uint8_t>(value_.AsInt());
      std::memset(scratch_.Data<uint8_t>(), v, capacity);
      break;
    }
    case TypeId::kI32: {
      int32_t v = static_cast<int32_t>(value_.AsInt());
      int32_t* d = scratch_.Data<int32_t>();
      for (size_t i = 0; i < capacity; i++) d[i] = v;
      break;
    }
    case TypeId::kI64: {
      int64_t v = value_.AsInt();
      int64_t* d = scratch_.Data<int64_t>();
      for (size_t i = 0; i < capacity; i++) d[i] = v;
      break;
    }
    case TypeId::kF64: {
      double v = value_.AsDouble();
      double* d = scratch_.Data<double>();
      for (size_t i = 0; i < capacity; i++) d[i] = v;
      break;
    }
    case TypeId::kStr: {
      // Copy the bytes into the scratch vector's own heap so the emitted
      // vector upholds the string-liveness contract (a chunk referencing
      // this column carries the heap, not a pointer into this node).
      str_ = scratch_.GetStringHeap()->Add(value_.AsString());
      StringVal* d = scratch_.Data<StringVal>();
      for (size_t i = 0; i < capacity; i++) d[i] = str_;
      break;
    }
  }
  return Status::OK();
}

Status ConstExpr::Eval(DataChunk& in, const sel_t* sel, size_t n,
                       Vector** out) {
  (void)in;
  (void)sel;
  (void)n;
  *out = &scratch_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ArithExpr
// ---------------------------------------------------------------------------

namespace {

template <typename T>
T ConstScalar(const Expr* node);

template <>
int64_t ConstScalar<int64_t>(const Expr* node) {
  return static_cast<const ConstExpr*>(node)->AsI64();
}
template <>
double ConstScalar<double>(const Expr* node) {
  return static_cast<const ConstExpr*>(node)->AsF64();
}

// Physical type of a kernel instantiation, for primitive-counter keys.
template <typename T>
struct PhysOf;
template <>
struct PhysOf<uint8_t> {
  static constexpr TypeId value = TypeId::kU8;
};
template <>
struct PhysOf<int32_t> {
  static constexpr TypeId value = TypeId::kI32;
};
template <>
struct PhysOf<int64_t> {
  static constexpr TypeId value = TypeId::kI64;
};
template <>
struct PhysOf<double> {
  static constexpr TypeId value = TypeId::kF64;
};
template <>
struct PhysOf<StringVal> {
  static constexpr TypeId value = TypeId::kStr;
};

template <typename T, typename OP>
void ArithKernel(ArithOp op, Expr* left, Vector* lv, Expr* right, Vector* rv,
                 Vector* out, const sel_t* sel, size_t n) {
  T* o = out->Data<T>();
  constexpr TypeId kTy = PhysOf<T>::value;
  if (left->IsConstant() && right->IsConstant()) {
    // Constant folding at evaluation time (the builder does not fold); no
    // catalog primitive runs, so nothing is recorded.
    T v = OP()(ConstScalar<T>(left), ConstScalar<T>(right));
    if (sel == nullptr) {
      for (size_t i = 0; i < n; i++) o[i] = v;
    } else {
      for (size_t i = 0; i < n; i++) o[sel[i]] = v;
    }
  } else if (left->IsConstant()) {
    PrimProfileScope prof(MapPrimId(static_cast<int>(op), kTy, MapKind::kValCol), n);
    prim::MapValCol<T, T, T, OP>(ConstScalar<T>(left), rv->Data<T>(), o, sel, n);
  } else if (right->IsConstant()) {
    PrimProfileScope prof(MapPrimId(static_cast<int>(op), kTy, MapKind::kColVal), n);
    prim::MapColVal<T, T, T, OP>(lv->Data<T>(), ConstScalar<T>(right), o, sel, n);
  } else {
    PrimProfileScope prof(MapPrimId(static_cast<int>(op), kTy, MapKind::kColCol), n);
    prim::MapColCol<T, T, T, OP>(lv->Data<T>(), rv->Data<T>(), o, sel, n);
  }
}

template <typename T>
void ArithDispatch(ArithOp op, Expr* left, Vector* lv, Expr* right, Vector* rv,
                   Vector* out, const sel_t* sel, size_t n) {
  switch (op) {
    case ArithOp::kAdd:
      ArithKernel<T, prim::OpAdd>(op, left, lv, right, rv, out, sel, n);
      break;
    case ArithOp::kSub:
      ArithKernel<T, prim::OpSub>(op, left, lv, right, rv, out, sel, n);
      break;
    case ArithOp::kMul:
      ArithKernel<T, prim::OpMul>(op, left, lv, right, rv, out, sel, n);
      break;
    case ArithOp::kDiv:
      ArithKernel<T, prim::OpDiv>(op, left, lv, right, rv, out, sel, n);
      break;
  }
}

DataType ArithResultType(const ExprPtr& l, const ExprPtr& r) {
  // Children have been cast to a common physical type by the builder; the
  // logical result follows the left child (decimals are cast to double
  // before arithmetic, so scales never mix).
  (void)r;
  return l->type();
}

}  // namespace

ArithExpr::ArithExpr(ArithOp op, ExprPtr left, ExprPtr right)
    : Expr(ArithResultType(left, right)),
      op_(op),
      left_(std::move(left)),
      right_(std::move(right)) {
  VWISE_CHECK_MSG(left_->physical() == right_->physical(),
                  "arith children must share a physical type");
  VWISE_CHECK_MSG(
      left_->physical() == TypeId::kI64 || left_->physical() == TypeId::kF64,
      "arith only defined on i64/f64");
}

Status ArithExpr::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Expr::Prepare(capacity));
  VWISE_RETURN_IF_ERROR(left_->Prepare(capacity));
  return right_->Prepare(capacity);
}

Status ArithExpr::Eval(DataChunk& in, const sel_t* sel, size_t n,
                       Vector** out) {
  Vector* lv = nullptr;
  Vector* rv = nullptr;
  if (!left_->IsConstant()) VWISE_RETURN_IF_ERROR(left_->Eval(in, sel, n, &lv));
  if (!right_->IsConstant()) VWISE_RETURN_IF_ERROR(right_->Eval(in, sel, n, &rv));
  if (physical() == TypeId::kI64) {
    ArithDispatch<int64_t>(op_, left_.get(), lv, right_.get(), rv, &scratch_, sel, n);
  } else {
    ArithDispatch<double>(op_, left_.get(), lv, right_.get(), rv, &scratch_, sel, n);
  }
  *out = &scratch_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CastExpr
// ---------------------------------------------------------------------------

CastExpr::CastExpr(ExprPtr input, DataType to) : Expr(to), input_(std::move(input)) {
  if (input_->type().kind == LType::kDecimal && to.kind == LType::kDouble) {
    decimal_factor_ = 1.0;
    for (int i = 0; i < input_->type().scale; i++) decimal_factor_ *= 10.0;
  }
}

Status CastExpr::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Expr::Prepare(capacity));
  return input_->Prepare(capacity);
}

namespace {

struct OpI32ToI64 {
  int64_t operator()(int32_t v) const { return v; }
};
struct OpI32ToF64 {
  double operator()(int32_t v) const { return v; }
};
struct OpI64ToF64 {
  double operator()(int64_t v) const { return static_cast<double>(v); }
};
struct OpU8ToI64 {
  int64_t operator()(uint8_t v) const { return v; }
};

}  // namespace

Status CastExpr::Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) {
  Vector* iv = nullptr;
  VWISE_RETURN_IF_ERROR(input_->Eval(in, sel, n, &iv));
  TypeId from = input_->physical();
  TypeId to = physical();
  if (from == to) {
    // Logical-only cast (e.g. DATE -> INT32 reinterpretation).
    scratch_.Reference(*iv);
    *out = &scratch_;
    return Status::OK();
  }
  if (from == TypeId::kI32 && to == TypeId::kI64) {
    prim::MapUnary<int64_t, int32_t, OpI32ToI64>(iv->Data<int32_t>(),
                                                 scratch_.Data<int64_t>(), sel, n);
  } else if (from == TypeId::kI32 && to == TypeId::kF64) {
    prim::MapUnary<double, int32_t, OpI32ToF64>(iv->Data<int32_t>(),
                                                scratch_.Data<double>(), sel, n);
  } else if (from == TypeId::kI64 && to == TypeId::kF64) {
    if (decimal_factor_ != 1.0) {
      prim::MapColVal<double, int64_t, double, prim::OpDiv>(
          iv->Data<int64_t>(), decimal_factor_, scratch_.Data<double>(), sel, n);
    } else {
      prim::MapUnary<double, int64_t, OpI64ToF64>(iv->Data<int64_t>(),
                                                  scratch_.Data<double>(), sel, n);
    }
  } else if (from == TypeId::kU8 && to == TypeId::kI64) {
    prim::MapUnary<int64_t, uint8_t, OpU8ToI64>(iv->Data<uint8_t>(),
                                                scratch_.Data<int64_t>(), sel, n);
  } else {
    return Status::NotImplemented("unsupported cast");
  }
  *out = &scratch_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// YearExpr
// ---------------------------------------------------------------------------

YearExpr::YearExpr(ExprPtr input) : Expr(DataType::Int64()), input_(std::move(input)) {
  VWISE_CHECK_MSG(input_->physical() == TypeId::kI32, "YEAR requires a date input");
}

Status YearExpr::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Expr::Prepare(capacity));
  return input_->Prepare(capacity);
}

namespace {
struct OpYear {
  int64_t operator()(int32_t days) const { return date::ExtractYear(days); }
};
}  // namespace

Status YearExpr::Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) {
  Vector* iv = nullptr;
  VWISE_RETURN_IF_ERROR(input_->Eval(in, sel, n, &iv));
  prim::MapUnary<int64_t, int32_t, OpYear>(iv->Data<int32_t>(),
                                           scratch_.Data<int64_t>(), sel, n);
  *out = &scratch_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SubstrExpr
// ---------------------------------------------------------------------------

SubstrExpr::SubstrExpr(ExprPtr input, size_t start, size_t len)
    : Expr(DataType::Varchar()), input_(std::move(input)), start_(start), len_(len) {
  VWISE_CHECK_MSG(start_ >= 1, "SUBSTRING start is 1-based");
}

Status SubstrExpr::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Expr::Prepare(capacity));
  return input_->Prepare(capacity);
}

Status SubstrExpr::Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) {
  // Drop the previous chunk's heap references first — the result only needs
  // this chunk's input alive, and carrying old refs across chunks would pin
  // every heap the scan ever produced.
  scratch_.ClearHeapRefs();
  Vector* iv = nullptr;
  VWISE_RETURN_IF_ERROR(input_->Eval(in, sel, n, &iv));
  const StringVal* src = iv->Data<StringVal>();
  StringVal* dst = scratch_.Data<StringVal>();
  size_t off = start_ - 1;
  auto one = [&](sel_t p) {
    const StringVal& s = src[p];
    if (off >= s.len) {
      dst[p] = StringVal(s.ptr, 0);
    } else {
      uint32_t avail = s.len - static_cast<uint32_t>(off);
      uint32_t take = static_cast<uint32_t>(len_) < avail
                          ? static_cast<uint32_t>(len_)
                          : avail;
      dst[p] = StringVal(s.ptr + off, take);  // zero copy into source bytes
    }
  };
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) one(static_cast<sel_t>(i));
  } else {
    for (size_t i = 0; i < n; i++) one(sel[i]);
  }
  // The result aliases the input's bytes; carry its heap references along.
  scratch_.AddHeapsFrom(*iv);
  *out = &scratch_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CaseExpr
// ---------------------------------------------------------------------------

CaseExpr::CaseExpr(std::unique_ptr<Filter> cond, ExprPtr then_expr, ExprPtr else_expr)
    : Expr(then_expr->type()),
      cond_(std::move(cond)),
      then_(std::move(then_expr)),
      else_(std::move(else_expr)) {
  VWISE_CHECK_MSG(then_->physical() == else_->physical(),
                  "CASE branches must share a type");
}

CaseExpr::~CaseExpr() = default;

Status CaseExpr::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Expr::Prepare(capacity));
  VWISE_RETURN_IF_ERROR(cond_->Prepare(capacity));
  VWISE_RETURN_IF_ERROR(then_->Prepare(capacity));
  VWISE_RETURN_IF_ERROR(else_->Prepare(capacity));
  cond_sel_ = Buffer::Allocate(capacity * sizeof(sel_t));
  return Status::OK();
}

namespace {

template <typename T>
void CopyAtPositions(const Vector& src, Vector* dst, const sel_t* sel, size_t n) {
  const T* s = src.Data<T>();
  T* d = dst->Data<T>();
  if (sel == nullptr) {
    for (size_t i = 0; i < n; i++) d[i] = s[i];
  } else {
    for (size_t i = 0; i < n; i++) {
      sel_t p = sel[i];
      d[p] = s[p];
    }
  }
}

void CopyAtPositionsDispatch(const Vector& src, Vector* dst, const sel_t* sel,
                             size_t n) {
  switch (src.type()) {
    case TypeId::kU8:
      CopyAtPositions<uint8_t>(src, dst, sel, n);
      break;
    case TypeId::kI32:
      CopyAtPositions<int32_t>(src, dst, sel, n);
      break;
    case TypeId::kI64:
      CopyAtPositions<int64_t>(src, dst, sel, n);
      break;
    case TypeId::kF64:
      CopyAtPositions<double>(src, dst, sel, n);
      break;
    case TypeId::kStr:
      CopyAtPositions<StringVal>(src, dst, sel, n);
      break;
  }
}

}  // namespace

Status CaseExpr::Eval(DataChunk& in, const sel_t* sel, size_t n, Vector** out) {
  // Drop last chunk's heap references so the string branch below reuses the
  // scratch vector's own heap (Reset) instead of growing it every vector.
  scratch_.ClearHeapRefs();
  // 1. ELSE branch everywhere active.
  Vector* ev = nullptr;
  VWISE_RETURN_IF_ERROR(else_->Eval(in, sel, n, &ev));
  CopyAtPositionsDispatch(*ev, &scratch_, sel, n);
  // 2. THEN branch overwrites the condition-selected positions.
  sel_t* csel = cond_sel_->As<sel_t>();
  size_t k = 0;
  VWISE_RETURN_IF_ERROR(cond_->Select(in, sel, n, csel, &k));
  if (k > 0) {
    Vector* tv = nullptr;
    VWISE_RETURN_IF_ERROR(then_->Eval(in, csel, k, &tv));
    CopyAtPositionsDispatch(*tv, &scratch_, csel, k);
  }
  if (physical() == TypeId::kStr) {
    // StringVals may point into either branch's bytes; keep both alive by
    // copying into our own heap (CASE over strings is rare and cold).
    StringHeap* heap = scratch_.GetStringHeap();
    StringVal* d = scratch_.Data<StringVal>();
    auto copy_one = [&](sel_t p) { d[p] = heap->Add(d[p].view()); };
    if (sel == nullptr) {
      for (size_t i = 0; i < n; i++) copy_one(static_cast<sel_t>(i));
    } else {
      for (size_t i = 0; i < n; i++) copy_one(sel[i]);
    }
  }
  *out = &scratch_;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Filter base
// ---------------------------------------------------------------------------

Status Filter::Prepare(size_t capacity) {
  capacity_ = capacity;
  tmp_sel_a_ = Buffer::Allocate(capacity * sizeof(sel_t));
  tmp_sel_b_ = Buffer::Allocate(capacity * sizeof(sel_t));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CmpFilter
// ---------------------------------------------------------------------------

CmpFilter::CmpFilter(CmpOp op, ExprPtr left, ExprPtr right)
    : op_(op), left_(std::move(left)), right_(std::move(right)) {
  VWISE_CHECK_MSG(left_->physical() == right_->physical(),
                  "comparison children must share a physical type");
}

Status CmpFilter::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Filter::Prepare(capacity));
  VWISE_RETURN_IF_ERROR(left_->Prepare(capacity));
  return right_->Prepare(capacity);
}

namespace {

template <typename T>
T ConstCmpScalar(const Expr* node);

template <>
uint8_t ConstCmpScalar<uint8_t>(const Expr* node) {
  return static_cast<uint8_t>(static_cast<const ConstExpr*>(node)->AsI64());
}
template <>
int32_t ConstCmpScalar<int32_t>(const Expr* node) {
  return static_cast<int32_t>(static_cast<const ConstExpr*>(node)->AsI64());
}
template <>
int64_t ConstCmpScalar<int64_t>(const Expr* node) {
  return static_cast<const ConstExpr*>(node)->AsI64();
}
template <>
double ConstCmpScalar<double>(const Expr* node) {
  return static_cast<const ConstExpr*>(node)->AsF64();
}
template <>
StringVal ConstCmpScalar<StringVal>(const Expr* node) {
  return StringVal(static_cast<const ConstExpr*>(node)->value().AsString());
}

template <typename T, typename OP>
size_t CmpKernel(CmpOp op, Expr* left, Vector* lv, Expr* right, Vector* rv,
                 const sel_t* sel, size_t n, sel_t* out_sel) {
  // The left side is always materialized (constants pre-fill their scratch
  // vector at Prepare), so only the right side needs a val fast path.
  (void)left;
  constexpr TypeId kTy = PhysOf<T>::value;
  if (right->IsConstant()) {
    PrimProfileScope prof(SelPrimId(static_cast<int>(op), kTy, true), n);
    return prim::SelectColVal<T, T, OP>(lv->Data<T>(), ConstCmpScalar<T>(right),
                                        sel, n, out_sel);
  }
  PrimProfileScope prof(SelPrimId(static_cast<int>(op), kTy, false), n);
  return prim::SelectColCol<T, T, OP>(lv->Data<T>(), rv->Data<T>(), sel, n, out_sel);
}

template <typename T>
size_t CmpDispatchOp(CmpOp op, Expr* left, Vector* lv, Expr* right, Vector* rv,
                     const sel_t* sel, size_t n, sel_t* out_sel) {
  switch (op) {
    case CmpOp::kEq:
      return CmpKernel<T, prim::OpEq>(op, left, lv, right, rv, sel, n, out_sel);
    case CmpOp::kNe:
      return CmpKernel<T, prim::OpNe>(op, left, lv, right, rv, sel, n, out_sel);
    case CmpOp::kLt:
      return CmpKernel<T, prim::OpLt>(op, left, lv, right, rv, sel, n, out_sel);
    case CmpOp::kLe:
      return CmpKernel<T, prim::OpLe>(op, left, lv, right, rv, sel, n, out_sel);
    case CmpOp::kGt:
      return CmpKernel<T, prim::OpGt>(op, left, lv, right, rv, sel, n, out_sel);
    case CmpOp::kGe:
      return CmpKernel<T, prim::OpGe>(op, left, lv, right, rv, sel, n, out_sel);
  }
  return 0;
}

CmpOp MirrorOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

// sel_<eq|ne>_str_dict_str_val: integer compare over the code array — no
// string bytes touched on the hot path.
size_t DictSelKernel(CmpOp op, const uint32_t* codes, uint32_t code,
                     const sel_t* sel, size_t n, sel_t* out_sel) {
  PrimProfileScope prof(DictSelPrimId(static_cast<int>(op)), n);
  if (op == CmpOp::kEq) {
    return prim::SelectDictVal<prim::OpEq>(codes, code, sel, n, out_sel);
  }
  return prim::SelectDictVal<prim::OpNe>(codes, code, sel, n, out_sel);
}

// sel_<cmp>_<ty>_rle_<ty>_val: one compare per run instead of per tuple.
template <typename T, typename OP>
size_t RleSelKernel(CmpOp op, const Vector& col, T val, const sel_t* sel,
                    size_t n, sel_t* out_sel) {
  PrimProfileScope prof(RleSelPrimId(static_cast<int>(op), PhysOf<T>::value),
                        n);
  return prim::SelectRleVal<T, OP>(col.rle_values<T>(), col.rle_starts(),
                                   col.rle_runs(), val, sel, n, out_sel);
}

template <typename T>
size_t RleSelDispatchOp(CmpOp op, const Vector& col, const Expr* r,
                        const sel_t* sel, size_t n, sel_t* out_sel) {
  T val = ConstCmpScalar<T>(r);
  switch (op) {
    case CmpOp::kEq:
      return RleSelKernel<T, prim::OpEq>(op, col, val, sel, n, out_sel);
    case CmpOp::kNe:
      return RleSelKernel<T, prim::OpNe>(op, col, val, sel, n, out_sel);
    case CmpOp::kLt:
      return RleSelKernel<T, prim::OpLt>(op, col, val, sel, n, out_sel);
    case CmpOp::kLe:
      return RleSelKernel<T, prim::OpLe>(op, col, val, sel, n, out_sel);
    case CmpOp::kGt:
      return RleSelKernel<T, prim::OpGt>(op, col, val, sel, n, out_sel);
    case CmpOp::kGe:
      return RleSelKernel<T, prim::OpGe>(op, col, val, sel, n, out_sel);
  }
  return 0;
}

}  // namespace

bool CmpFilter::TryEncodedSelect(DataChunk& in, Expr* l, Expr* r, CmpOp op,
                                 const sel_t* sel, size_t n, sel_t* out_sel,
                                 size_t* out_n) {
  if (!r->IsConstant()) return false;
  auto* colref = dynamic_cast<ColRefExpr*>(l);
  if (colref == nullptr || colref->index() >= in.num_columns()) return false;
  Vector& col = in.column(colref->index());
  if (col.type() != l->physical()) return false;
  if (col.repr() == VectorRepr::kDict) {
    // Caps: the dict twins exist only for string eq/ne (ordering compares
    // would need the dictionary's sort order, which PDICT does not promise).
    if (op != CmpOp::kEq && op != CmpOp::kNe) return false;
    const StringDict* d = col.dict();
    if (d != cached_dict_.get()) {
      // vwise-hotpath: allow(cold-call): constant→code translation runs once
      // per dictionary (i.e. per storage segment), not per chunk or tuple.
      // Holding the shared_ptr pins the dictionary: without it a freed
      // dictionary's address can be recycled by the next stripe's dictionary
      // and the identity check would keep a stale code.
      cached_dict_ = col.dict_ref();
      cached_code_ = kDictCodeNotFound;
      std::string_view needle =
          static_cast<const ConstExpr*>(r)->value().AsString();
      for (uint32_t c = 0; c < d->size; c++) {
        if (d->values[c].view() == needle) {
          cached_code_ = c;
          break;
        }
      }
    }
    *out_n = DictSelKernel(op, col.dict_codes(), cached_code_, sel, n, out_sel);
    return true;
  }
  if (col.repr() == VectorRepr::kRle) {
    switch (col.type()) {
      case TypeId::kU8:
        *out_n = RleSelDispatchOp<uint8_t>(op, col, r, sel, n, out_sel);
        return true;
      case TypeId::kI32:
        *out_n = RleSelDispatchOp<int32_t>(op, col, r, sel, n, out_sel);
        return true;
      case TypeId::kI64:
        *out_n = RleSelDispatchOp<int64_t>(op, col, r, sel, n, out_sel);
        return true;
      case TypeId::kF64:
        *out_n = RleSelDispatchOp<double>(op, col, r, sel, n, out_sel);
        return true;
      case TypeId::kStr:
        return false;  // string RLE never reaches execution (codec gates it)
    }
  }
  return false;
}

Status CmpFilter::Select(DataChunk& in, const sel_t* sel, size_t n,
                         sel_t* out_sel, size_t* out_n) {
  // Normalize "const OP col" to "col OP' const" so kernels only need the
  // col x val fast path on the right.
  Expr* l = left_.get();
  Expr* r = right_.get();
  CmpOp op = op_;
  if (l->IsConstant() && !r->IsConstant()) {
    std::swap(l, r);
    op = MirrorOp(op);
  }
  // Compressed execution: if the left column arrives encoded and an encoded
  // twin of this select exists, run it on the codes/runs directly — the
  // Eval below would otherwise normalize the vector (ColRefExpr's
  // decode-on-demand boundary).
  if (TryEncodedSelect(in, l, r, op, sel, n, out_sel, out_n)) {
    return Status::OK();
  }
  // Evaluate the left side unconditionally: for a (rare) constant left with
  // constant right, ConstExpr's pre-filled scratch serves as the "column".
  Vector* lv = nullptr;
  Vector* rv = nullptr;
  VWISE_RETURN_IF_ERROR(l->Eval(in, sel, n, &lv));
  if (!r->IsConstant()) VWISE_RETURN_IF_ERROR(r->Eval(in, sel, n, &rv));
  switch (l->physical()) {
    case TypeId::kU8:
      *out_n = CmpDispatchOp<uint8_t>(op, l, lv, r, rv, sel, n, out_sel);
      break;
    case TypeId::kI32:
      *out_n = CmpDispatchOp<int32_t>(op, l, lv, r, rv, sel, n, out_sel);
      break;
    case TypeId::kI64:
      *out_n = CmpDispatchOp<int64_t>(op, l, lv, r, rv, sel, n, out_sel);
      break;
    case TypeId::kF64:
      *out_n = CmpDispatchOp<double>(op, l, lv, r, rv, sel, n, out_sel);
      break;
    case TypeId::kStr:
      *out_n = CmpDispatchOp<StringVal>(op, l, lv, r, rv, sel, n, out_sel);
      break;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AndFilter / OrFilter / NotFilter
// ---------------------------------------------------------------------------

AndFilter::AndFilter(std::vector<FilterPtr> children)
    : children_(std::move(children)) {
  VWISE_CHECK(!children_.empty());
}

Status AndFilter::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Filter::Prepare(capacity));
  for (auto& c : children_) VWISE_RETURN_IF_ERROR(c->Prepare(capacity));
  return Status::OK();
}

Status AndFilter::Select(DataChunk& in, const sel_t* sel, size_t n,
                         sel_t* out_sel, size_t* out_n) {
  // Apply children in order, each narrowing the active set. Ping-pong
  // between a scratch buffer and out_sel so the final result lands in
  // out_sel regardless of child count.
  sel_t* bufs[2] = {tmp_sel_a_->As<sel_t>(), out_sel};
  const sel_t* cur_sel = sel;
  size_t cur_n = n;
  // Choose starting buffer so the last write hits out_sel.
  int idx = (children_.size() % 2 == 0) ? 0 : 1;
  for (auto& c : children_) {
    size_t k = 0;
    // vwise-hotpath: allow(virtual-in-loop): loop over conjuncts, not
    // tuples — each Select filters a full vector
    VWISE_RETURN_IF_ERROR(c->Select(in, cur_sel, cur_n, bufs[idx], &k));
    cur_sel = bufs[idx];
    cur_n = k;
    idx ^= 1;
    if (cur_n == 0) break;
  }
  if (cur_sel != out_sel && cur_n > 0) {
    std::memcpy(out_sel, cur_sel, cur_n * sizeof(sel_t));
  }
  *out_n = cur_n;
  return Status::OK();
}

OrFilter::OrFilter(std::vector<FilterPtr> children)
    : children_(std::move(children)) {
  VWISE_CHECK(!children_.empty());
}

Status OrFilter::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Filter::Prepare(capacity));
  for (auto& c : children_) VWISE_RETURN_IF_ERROR(c->Prepare(capacity));
  merge_buf_ = Buffer::Allocate(capacity * sizeof(sel_t));
  return Status::OK();
}

Status OrFilter::Select(DataChunk& in, const sel_t* sel, size_t n,
                        sel_t* out_sel, size_t* out_n) {
  // Union of children's qualifying positions: evaluate each child against
  // the full active set and merge the ascending results.
  sel_t* acc = tmp_sel_a_->As<sel_t>();
  sel_t* child_buf = tmp_sel_b_->As<sel_t>();
  size_t acc_n = 0;
  VWISE_RETURN_IF_ERROR(children_[0]->Select(in, sel, n, acc, &acc_n));
  // The union of two ascending position lists has at most n entries (both
  // draw from the same (sel, n) active set), so the Prepare-sized merge
  // buffer always fits and Select allocates nothing.
  sel_t* merged = merge_buf_->As<sel_t>();
  for (size_t ci = 1; ci < children_.size(); ci++) {
    size_t k = 0;
    // vwise-hotpath: allow(virtual-in-loop): loop over disjuncts, not
    // tuples — each Select filters a full vector
    VWISE_RETURN_IF_ERROR(children_[ci]->Select(in, sel, n, child_buf, &k));
    size_t m = 0;
    size_t i = 0, j = 0;
    while (i < acc_n && j < k) {
      if (acc[i] < child_buf[j]) {
        merged[m++] = acc[i++];
      } else if (acc[i] > child_buf[j]) {
        merged[m++] = child_buf[j++];
      } else {
        merged[m++] = acc[i];
        i++;
        j++;
      }
    }
    while (i < acc_n) merged[m++] = acc[i++];
    while (j < k) merged[m++] = child_buf[j++];
    acc_n = m;
    if (acc_n != 0) std::memcpy(acc, merged, acc_n * sizeof(sel_t));
  }
  if (acc_n != 0) std::memcpy(out_sel, acc, acc_n * sizeof(sel_t));
  *out_n = acc_n;
  return Status::OK();
}

NotFilter::NotFilter(FilterPtr child) : child_(std::move(child)) {}

Status NotFilter::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Filter::Prepare(capacity));
  return child_->Prepare(capacity);
}

Status NotFilter::Select(DataChunk& in, const sel_t* sel, size_t n,
                         sel_t* out_sel, size_t* out_n) {
  sel_t* hit = tmp_sel_a_->As<sel_t>();
  size_t k = 0;
  VWISE_RETURN_IF_ERROR(child_->Select(in, sel, n, hit, &k));
  // Complement within (sel, n): both lists are ascending.
  size_t o = 0, j = 0;
  for (size_t i = 0; i < n; i++) {
    sel_t p = sel ? sel[i] : static_cast<sel_t>(i);
    if (j < k && hit[j] == p) {
      j++;
    } else {
      out_sel[o++] = p;
    }
  }
  *out_n = o;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// InFilter
// ---------------------------------------------------------------------------

InFilter::InFilter(ExprPtr input, std::vector<Value> values, bool negate)
    : input_(std::move(input)), values_(std::move(values)), negate_(negate) {
  for (const Value& v : values_) {
    if (v.kind() == Value::Kind::kString) {
      strings_.push_back(v.AsString());
    } else {
      ints_.push_back(v.AsInt());
    }
  }
}

Status InFilter::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Filter::Prepare(capacity));
  return input_->Prepare(capacity);
}

Status InFilter::Select(DataChunk& in, const sel_t* sel, size_t n,
                        sel_t* out_sel, size_t* out_n) {
  Vector* iv = nullptr;
  VWISE_RETURN_IF_ERROR(input_->Eval(in, sel, n, &iv));
  size_t k = 0;
  auto emit = [&](sel_t p, bool member) {
    out_sel[k] = p;
    k += (member != negate_);
  };
  switch (input_->physical()) {
    case TypeId::kStr: {
      const StringVal* d = iv->Data<StringVal>();
      for (size_t i = 0; i < n; i++) {
        sel_t p = sel ? sel[i] : static_cast<sel_t>(i);
        bool member = false;
        for (const std::string& s : strings_) {
          if (d[p].view() == s) {
            member = true;
            break;
          }
        }
        emit(p, member);
      }
      break;
    }
    case TypeId::kI32: {
      const int32_t* d = iv->Data<int32_t>();
      for (size_t i = 0; i < n; i++) {
        sel_t p = sel ? sel[i] : static_cast<sel_t>(i);
        bool member = false;
        for (int64_t v : ints_) {
          if (d[p] == v) {
            member = true;
            break;
          }
        }
        emit(p, member);
      }
      break;
    }
    case TypeId::kI64: {
      const int64_t* d = iv->Data<int64_t>();
      for (size_t i = 0; i < n; i++) {
        sel_t p = sel ? sel[i] : static_cast<sel_t>(i);
        bool member = false;
        for (int64_t v : ints_) {
          if (d[p] == v) {
            member = true;
            break;
          }
        }
        emit(p, member);
      }
      break;
    }
    default:
      return Status::NotImplemented("IN on this type");
  }
  *out_n = k;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LikeFilter
// ---------------------------------------------------------------------------

LikeFilter::LikeFilter(ExprPtr input, std::string pattern, bool negate)
    : input_(std::move(input)), pattern_(std::move(pattern)), negate_(negate) {
  VWISE_CHECK_MSG(input_->physical() == TypeId::kStr, "LIKE requires a string");
}

Status LikeFilter::Prepare(size_t capacity) {
  VWISE_RETURN_IF_ERROR(Filter::Prepare(capacity));
  return input_->Prepare(capacity);
}

bool LikeFilter::Match(std::string_view s, std::string_view pattern) {
  // Iterative wildcard match with single-level backtracking: on mismatch,
  // retry from the last '%' with the string position advanced.
  size_t si = 0, pi = 0;
  size_t star_p = std::string_view::npos, star_s = 0;
  while (si < s.size()) {
    if (pi < pattern.size() && (pattern[pi] == '_' || pattern[pi] == s[si])) {
      si++;
      pi++;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_s = si;
    } else if (star_p != std::string_view::npos) {
      pi = star_p + 1;
      si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') pi++;
  return pi == pattern.size();
}

Status LikeFilter::Select(DataChunk& in, const sel_t* sel, size_t n,
                          sel_t* out_sel, size_t* out_n) {
  Vector* iv = nullptr;
  VWISE_RETURN_IF_ERROR(input_->Eval(in, sel, n, &iv));
  const StringVal* d = iv->Data<StringVal>();
  size_t k = 0;
  for (size_t i = 0; i < n; i++) {
    sel_t p = sel ? sel[i] : static_cast<sel_t>(i);
    out_sel[k] = p;
    k += (Match(d[p].view(), pattern_) != negate_);
  }
  *out_n = k;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Builder helpers
// ---------------------------------------------------------------------------

namespace e {

ExprPtr Col(size_t index, DataType type) {
  return std::make_unique<ColRefExpr>(index, type);
}
ExprPtr I64(int64_t v) {
  return std::make_unique<ConstExpr>(Value::Int(v), DataType::Int64());
}
ExprPtr F64(double v) {
  return std::make_unique<ConstExpr>(Value::Double(v), DataType::Double());
}
ExprPtr Str(std::string v) {
  return std::make_unique<ConstExpr>(Value::String(std::move(v)),
                                     DataType::Varchar());
}
ExprPtr DateLit(const char* ymd) {
  return std::make_unique<ConstExpr>(Value::Int(date::Parse(ymd)),
                                     DataType::Date());
}
ExprPtr Dec(double v, uint8_t scale) {
  double factor = 1.0;
  for (int i = 0; i < scale; i++) factor *= 10.0;
  int64_t scaled = static_cast<int64_t>(v * factor + (v >= 0 ? 0.5 : -0.5));
  return std::make_unique<ConstExpr>(Value::Int(scaled), DataType::Decimal(scale));
}
ExprPtr Add(ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(ArithOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(ArithOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(ArithOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(ArithOp::kDiv, std::move(l), std::move(r));
}
ExprPtr Cast(ExprPtr x, DataType to) {
  return std::make_unique<CastExpr>(std::move(x), to);
}
ExprPtr ToF64(ExprPtr x) {
  return std::make_unique<CastExpr>(std::move(x), DataType::Double());
}
ExprPtr Year(ExprPtr x) { return std::make_unique<YearExpr>(std::move(x)); }
ExprPtr Substr(ExprPtr x, size_t start, size_t len) {
  return std::make_unique<SubstrExpr>(std::move(x), start, len);
}
ExprPtr Case(FilterPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  return std::make_unique<CaseExpr>(std::move(cond), std::move(then_expr),
                                    std::move(else_expr));
}

FilterPtr Cmp(CmpOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<CmpFilter>(op, std::move(l), std::move(r));
}
FilterPtr Eq(ExprPtr l, ExprPtr r) {
  return Cmp(CmpOp::kEq, std::move(l), std::move(r));
}
FilterPtr Ne(ExprPtr l, ExprPtr r) {
  return Cmp(CmpOp::kNe, std::move(l), std::move(r));
}
FilterPtr Lt(ExprPtr l, ExprPtr r) {
  return Cmp(CmpOp::kLt, std::move(l), std::move(r));
}
FilterPtr Le(ExprPtr l, ExprPtr r) {
  return Cmp(CmpOp::kLe, std::move(l), std::move(r));
}
FilterPtr Gt(ExprPtr l, ExprPtr r) {
  return Cmp(CmpOp::kGt, std::move(l), std::move(r));
}
FilterPtr Ge(ExprPtr l, ExprPtr r) {
  return Cmp(CmpOp::kGe, std::move(l), std::move(r));
}
FilterPtr And(std::vector<FilterPtr> children) {
  return std::make_unique<AndFilter>(std::move(children));
}
FilterPtr Or(std::vector<FilterPtr> children) {
  return std::make_unique<OrFilter>(std::move(children));
}
FilterPtr Not(FilterPtr f) { return std::make_unique<NotFilter>(std::move(f)); }
FilterPtr In(ExprPtr x, std::vector<Value> values) {
  return std::make_unique<InFilter>(std::move(x), std::move(values));
}
FilterPtr NotIn(ExprPtr x, std::vector<Value> values) {
  return std::make_unique<InFilter>(std::move(x), std::move(values), true);
}
FilterPtr Like(ExprPtr x, std::string pattern) {
  return std::make_unique<LikeFilter>(std::move(x), std::move(pattern));
}
FilterPtr NotLike(ExprPtr x, std::string pattern) {
  return std::make_unique<LikeFilter>(std::move(x), std::move(pattern), true);
}

}  // namespace e

}  // namespace vwise
