#ifndef VWISE_EXPR_PRIMITIVE_PROFILER_H_
#define VWISE_EXPR_PRIMITIVE_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "vector/types.h"

namespace vwise {

// ---------------------------------------------------------------------------
// Primitive ids
// ---------------------------------------------------------------------------
//
// One enumerator per catalog entry, in catalog order, generated from the same
// X-macro file that feeds the registry (expr/primitive_catalog.inc) — the
// profiler, the registry, and the lint all key off one list. The expression
// dispatch path maps its (op, type, operand-kind) coordinates onto these ids
// arithmetically (MapPrimId / SelPrimId below); the layout assumption is
// validated against the generated name table the first time profiling is
// enabled.

enum PrimitiveId : uint16_t {
#define VWISE_MAP_PRIMITIVE(name, ctype, adapter, functor, caps) kPrim_##name,
#define VWISE_SEL_PRIMITIVE(name, ctype, adapter, functor, caps) kPrim_##name,
#define VWISE_ENC_PRIMITIVE(name, ctype, adapter, functor, repr) kPrim_##name,
#include "expr/primitive_catalog.inc"
#undef VWISE_MAP_PRIMITIVE
#undef VWISE_SEL_PRIMITIVE
#undef VWISE_ENC_PRIMITIVE
  kNumPrimitives,
};

// Operand-kind index of a map primitive, in catalog block order.
enum class MapKind : uint8_t { kColCol = 0, kColVal = 1, kValCol = 2 };

// Maps (ArithOp index, physical type, operand kind) to the catalog id.
// `op` is the integer value of ArithOp (add=0, sub, mul, div); `ty` must be
// kI64 or kF64.
PrimitiveId MapPrimId(int op, TypeId ty, MapKind kind);

// Maps (CmpOp index, physical type, rhs kind) to the catalog id. `cmp` is
// the integer value of CmpOp (eq=0, ne, lt, le, gt, ge); `rhs_val` selects
// the col x val variant.
PrimitiveId SelPrimId(int cmp, TypeId ty, bool rhs_val);

// Encoded twins (compressed execution). DictSelPrimId: the dict-code select
// for CmpOp eq (0) or ne (1). RleSelPrimId: the per-run select for any
// CmpOp and a numeric physical type.
PrimitiveId DictSelPrimId(int cmp);
PrimitiveId RleSelPrimId(int cmp, TypeId ty);

// ---------------------------------------------------------------------------
// Cycle counter
// ---------------------------------------------------------------------------

// Raw timestamp counter: TSC on x86-64, the virtual counter on aarch64, and
// steady_clock ticks elsewhere. Not serializing and not constant-rate-
// calibrated — good for the relative cycles/tuple the X100 papers report,
// not for cross-machine absolute numbers (see DESIGN.md "Profiling &
// benchmarking" for the caveats).
struct CycleClock {
  static inline uint64_t Now() {
#if defined(__x86_64__) || defined(_M_X64)
    unsigned lo, hi;
    __asm__ __volatile__("rdtsc" : "=a"(lo), "=d"(hi));
    return (static_cast<uint64_t>(hi) << 32) | lo;
#elif defined(__aarch64__)
    uint64_t v;
    __asm__ __volatile__("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }
};

// ---------------------------------------------------------------------------
// Per-primitive counters
// ---------------------------------------------------------------------------

// A snapshot of one primitive's counters (cumulative since process start or
// the last Reset()).
struct PrimitiveCounters {
  const char* name = nullptr;
  uint64_t calls = 0;
  uint64_t tuples = 0;  // active positions processed
  uint64_t cycles = 0;  // CycleClock ticks inside the kernel
};

// Process-wide per-primitive profile. Counters are fixed-size atomics indexed
// by PrimitiveId, so recording is wait-free and safe from Xchg worker
// threads; when disabled the dispatch path pays one relaxed load + branch.
class PrimitiveProfiler {
 public:
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Idempotent; validates the id <-> catalog-name layout on first enable.
  static void SetEnabled(bool on);

  static void Record(PrimitiveId id, uint64_t tuples, uint64_t cycles) {
    Counters& c = counters_[id];
    c.calls.fetch_add(1, std::memory_order_relaxed);
    c.tuples.fetch_add(tuples, std::memory_order_relaxed);
    c.cycles.fetch_add(cycles, std::memory_order_relaxed);
  }

  static const char* Name(PrimitiveId id);

  // All kNumPrimitives counters, in catalog order (calls may be zero).
  static std::vector<PrimitiveCounters> Snapshot();
  static void Reset();

  // Enables for a scope (a profiled query run), restoring the previous state.
  class ScopedEnable {
   public:
    explicit ScopedEnable(bool on) : prev_(Enabled()) {
      if (on) SetEnabled(true);
    }
    ~ScopedEnable() { SetEnabled(prev_); }
    ScopedEnable(const ScopedEnable&) = delete;
    ScopedEnable& operator=(const ScopedEnable&) = delete;

   private:
    bool prev_;
  };

 private:
  struct Counters {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> tuples{0};
    std::atomic<uint64_t> cycles{0};
  };
  static std::atomic<bool> enabled_;
  static Counters counters_[kNumPrimitives];
};

// RAII guard around one kernel invocation in the dispatch path: reads the
// cycle counter only when profiling is enabled.
class PrimProfileScope {
 public:
  PrimProfileScope(PrimitiveId id, size_t n)
      : on_(PrimitiveProfiler::Enabled()),
        id_(id),
        n_(n),
        t0_(on_ ? CycleClock::Now() : 0) {}
  ~PrimProfileScope() {
    if (on_) PrimitiveProfiler::Record(id_, n_, CycleClock::Now() - t0_);
  }
  PrimProfileScope(const PrimProfileScope&) = delete;
  PrimProfileScope& operator=(const PrimProfileScope&) = delete;

 private:
  bool on_;
  PrimitiveId id_;
  size_t n_;
  uint64_t t0_;
};

// "primitives:" section of the EXPLAIN ANALYZE text: every primitive whose
// counters advanced between the two snapshots, with calls, tuples, and
// cycles/tuple. Empty string when nothing advanced.
std::string RenderPrimitiveProfile(const std::vector<PrimitiveCounters>& before,
                                   const std::vector<PrimitiveCounters>& after);

}  // namespace vwise

#endif  // VWISE_EXPR_PRIMITIVE_PROFILER_H_
