// Allocation-regression suite: proves the steady-state Next() loop performs
// ZERO heap allocations — the dynamic counterpart of the static hot-path
// analyzer (tools/vwise_hotpath.py). The analyzer argues from the call
// graph; this test measures the real binary through the counting operator
// new/delete replacement in alloc_probe.cc, so a regression that sneaks
// past the syntactic closure (std::function captures, implicit
// std::string temporaries in templates, container growth inside the
// standard library) still fails CI.
//
// Measurement model: every top-level Next() call is bracketed with
// allocation-counter snapshots. Warm-up calls are allowed to allocate —
// that is where stripes are decoded, hash tables grow, scratch vectors and
// string heaps reach their high-water mark. Every call AFTER warm-up must
// allocate nothing:
//
//   * streaming pipelines (scan > select > project) warm up in a few
//     vectors, then every further vector must be allocation-free;
//   * blocking pipelines (Q1 aggregation, Q3 join+sort) do all consume-side
//     work inside the first Next(); the emit phase is forced to span
//     multiple chunks with a tiny vector_size so the steady emit loop is
//     actually observed.
//
// The tables are loaded with a stripe size larger than any SF-0.005 table,
// so per-stripe work (decode, buffer-manager traffic) happens once, inside
// warm-up, and cannot excuse allocations later in the scan.

#include <utility>
#include <vector>

#include "alloc_probe.h"
#include "common/date.h"
#include "gtest/gtest.h"
#include "planner/plan_builder.h"
#include "tpch/generator.h"
#include "tpch/queries.h"
#include "tpch/schema.h"

#include <filesystem>
#include <string>

namespace vwise {
namespace {

using namespace vwise::tpch::col;  // NOLINT: positional plan construction

constexpr double kSf = 0.005;

// Per-Next allocation trace of one full run to end-of-stream.
struct DriveTrace {
  Status status = Status::OK();
  std::vector<uint64_t> allocs;  // per Next() call, including the EOS call
  std::vector<uint64_t> bytes;
  size_t rows = 0;
};

DriveTrace Drive(OperatorPtr root, size_t vector_size) {
  DriveTrace t;
  t.status = root->Open(nullptr);
  if (!t.status.ok()) {
    root->Close();
    return t;
  }
  DataChunk chunk;
  chunk.Init(root->OutputTypes(), vector_size);
  while (true) {
    chunk.Reset();
    test::AllocSnapshot before = test::TakeAllocSnapshot();
    Status st = root->Next(&chunk);
    test::AllocSnapshot after = test::TakeAllocSnapshot();
    t.allocs.push_back(test::AllocsBetween(before, after));
    t.bytes.push_back(test::BytesBetween(before, after));
    if (!st.ok()) {
      t.status = st;
      break;
    }
    if (chunk.ActiveCount() == 0) break;
    t.rows += chunk.ActiveCount();
  }
  root->Close();
  return t;
}

// Every Next() call at index >= warmup must have allocated zero times.
void ExpectSteadyStateClean(const DriveTrace& t, size_t warmup,
                            const char* what) {
  ASSERT_TRUE(t.status.ok()) << what << ": " << t.status.ToString();
  ASSERT_GT(t.allocs.size(), warmup)
      << what << ": produced only " << t.allocs.size()
      << " Next() calls — nothing left to measure after warm-up";
  for (size_t i = warmup; i < t.allocs.size(); i++) {
    EXPECT_EQ(t.allocs[i], 0u)
        << what << ": Next() call #" << i << " performed " << t.allocs[i]
        << " allocations (" << t.bytes[i] << " bytes) after warm-up";
  }
}

class AllocRegressionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/vwise_alloc_suite");
    std::filesystem::remove_all(*dir_);
    config_ = new Config();
    // One stripe per table: stripe-boundary work (decode, buffer pins)
    // happens inside warm-up instead of excusing allocations mid-scan.
    config_->stripe_rows = 1u << 20;
    device_ = new IoDevice(*config_);
    buffers_ = new BufferManager(config_->buffer_pool_bytes);
    auto mgr = TransactionManager::Open(*dir_, *config_, device_, buffers_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    mgr_ = mgr->release();
    tpch::Generator gen(kSf);
    ASSERT_TRUE(gen.LoadAll(mgr_).ok());
  }
  static void TearDownTestSuite() {
    delete mgr_;
    std::filesystem::remove_all(*dir_);
    delete buffers_;
    delete device_;
    delete config_;
    delete dir_;
  }

  static DriveTrace DriveQuery(int q, size_t vector_size) {
    Config cfg = *config_;
    cfg.vector_size = vector_size;
    auto plan = tpch::BuildQuery(q, mgr_, cfg);
    if (!plan.ok()) {
      DriveTrace t;
      t.status = plan.status();
      return t;
    }
    return Drive(std::move(*plan), vector_size);
  }

  static std::string* dir_;
  static Config* config_;
  static IoDevice* device_;
  static BufferManager* buffers_;
  static TransactionManager* mgr_;
};

std::string* AllocRegressionTest::dir_ = nullptr;
Config* AllocRegressionTest::config_ = nullptr;
IoDevice* AllocRegressionTest::device_ = nullptr;
BufferManager* AllocRegressionTest::buffers_ = nullptr;
TransactionManager* AllocRegressionTest::mgr_ = nullptr;

// The probe itself must not allocate — otherwise every measurement below is
// self-contaminated.
TEST_F(AllocRegressionTest, SnapshotIsAllocationFree) {
  test::AllocSnapshot a = test::TakeAllocSnapshot();
  test::AllocSnapshot b = test::TakeAllocSnapshot();
  EXPECT_EQ(test::AllocsBetween(a, b), 0u);
}

// ... and it must actually see allocations. The compiler may merge or elide
// new-expressions ([expr.new]p12, even with a replaced operator new), so the
// pointer is laundered through an asm barrier before the second snapshot.
TEST_F(AllocRegressionTest, ProbeCountsAllocations) {
  test::AllocSnapshot before = test::TakeAllocSnapshot();
  auto* p = new std::vector<int>(1024);
  asm volatile("" : : "g"(p) : "memory");
  test::AllocSnapshot after = test::TakeAllocSnapshot();
  delete p;
  EXPECT_GE(test::AllocsBetween(before, after), 1u);
  EXPECT_GE(test::BytesBetween(before, after), 1024u * sizeof(int));
}

// Streaming pipeline (the per-vector loop proper): scan lineitem, filter on
// shipdate, project an arithmetic expression AND a string column — the
// string passthrough pins the StringHeap reuse path (vector/string_heap.h)
// that used to leak one heap allocation per chunk. ~30 vectors at SF 0.005;
// after 4 warm-up vectors every remaining Next() must be allocation-free.
TEST_F(AllocRegressionTest, StreamingScanSelectProjectSteadyState) {
  Config cfg = *config_;
  cfg.vector_size = 1024;
  PlanBuilder q(mgr_, cfg);
  ASSERT_TRUE(q.Scan("lineitem", {l::kShipdate, l::kDiscount,
                                  l::kExtendedprice, l::kReturnflag})
                  .ok());
  q.Select(e::And(Fs(e::Ge(q.Col(0), e::DateLit("1994-01-01")),
                     e::Lt(q.Col(0), e::DateLit("1995-01-01")))));
  q.Project(Es(e::Mul(q.F(2), q.F(1)), q.Col(3)),
            {DataType::Double(), DataType::Varchar()});
  auto plan = q.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  DriveTrace t = Drive(std::move(*plan), cfg.vector_size);
  EXPECT_GT(t.rows, 0u);
  ExpectSteadyStateClean(t, /*warmup=*/4, "scan>select>project");
}

// Q1 (blocking aggregation + sort): all consume-side work happens inside the
// first Next(). vector_size 2 forces the 4 result groups across multiple
// emit chunks, so the steady emit loop — including the VARCHAR group keys
// being written through the output chunk's string heap — is observed.
TEST_F(AllocRegressionTest, Q1EmitPhaseSteadyState) {
  DriveTrace t = DriveQuery(1, /*vector_size=*/2);
  EXPECT_EQ(t.rows, 4u);
  ExpectSteadyStateClean(t, /*warmup=*/1, "Q1");
}

// Q6 (streaming select + single-group aggregation): one result row, so the
// steady state here is the post-emit EOS probe.
TEST_F(AllocRegressionTest, Q6EmitPhaseSteadyState) {
  DriveTrace t = DriveQuery(6, /*vector_size=*/1024);
  EXPECT_EQ(t.rows, 1u);
  ExpectSteadyStateClean(t, /*warmup=*/1, "Q6");
}

// Q3 (two joins + aggregation + top-10 sort): vector_size 4 spreads the ten
// result rows across three emit chunks; every emit after the first Next()
// must be allocation-free.
TEST_F(AllocRegressionTest, Q3EmitPhaseSteadyState) {
  DriveTrace t = DriveQuery(3, /*vector_size=*/4);
  EXPECT_EQ(t.rows, 10u);
  ExpectSteadyStateClean(t, /*warmup=*/1, "Q3");
}

}  // namespace
}  // namespace vwise
