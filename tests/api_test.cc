#include <filesystem>

#include "api/database.h"
#include "gtest/gtest.h"

namespace vwise {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/vwise_api_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    Open();
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }
  void Open() {
    db_.reset();
    auto db = Database::Open(dir_, Config());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, EndToEndQuickstartFlow) {
  TableSchema sales("sales", {ColumnDef("day", DataType::Date()),
                              ColumnDef("item", DataType::Varchar()),
                              ColumnDef("amount", DataType::Decimal(2))});
  ASSERT_TRUE(db_->CreateTable(sales).ok());
  ASSERT_TRUE(db_->BulkLoad("sales", [](TableWriter* w) -> Status {
    const char* items[] = {"apple", "pear", "plum"};
    for (int64_t i = 0; i < 3000; i++) {
      VWISE_RETURN_IF_ERROR(w->AppendRow(
          {Value::Int(8000 + i % 365), Value::String(items[i % 3]),
           Value::Int(100 + i % 900)}));
    }
    return Status::OK();
  }).ok());

  // SELECT item, count(*), sum(amount) FROM sales WHERE amount >= 5 GROUP BY
  // item — through the full session lifecycle: Connect -> Prepare ->
  // Execute -> Wait.
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("sales", {1, 2}).ok());
  q.Select(e::Ge(q.Col(1), e::Dec(5.0, 2)));
  q.Agg({0}, {AggSpec::CountStar(), AggSpec::Sum(1)},
        {DataType::Varchar(), DataType::Int64(), DataType::Decimal(2)});
  q.Sort({{0, true}});
  auto prepared = session->Prepare(&q, {"item", "n", "total"});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto handle = (*prepared)->Execute();
  const auto& result = handle->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(handle->done());
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0].AsString(), "apple");
  EXPECT_EQ(result->column_names[0], "item");
  int64_t n = 0;
  for (const auto& row : result->rows) n += row[1].AsInt();
  // amounts are (100 + i%900) cents; >= 500 holds for i%900 in [400,900),
  // i.e. 500 per full cycle of 900, and 3000 rows = 3 full cycles + 300 low.
  EXPECT_EQ(n, 1500);
}

TEST_F(DatabaseTest, TransactionsVisibleThroughQueries) {
  TableSchema t("t", {ColumnDef("k", DataType::Int64()),
                      ColumnDef("v", DataType::Int64())});
  ASSERT_TRUE(db_->CreateTable(t).ok());
  ASSERT_TRUE(db_->BulkLoad("t", [](TableWriter* w) -> Status {
    for (int64_t i = 0; i < 10; i++) {
      VWISE_RETURN_IF_ERROR(w->AppendRow({Value::Int(i), Value::Int(0)}));
    }
    return Status::OK();
  }).ok());

  auto txn = db_->Begin();
  ASSERT_TRUE(txn->Modify("t", 4, 1, Value::Int(99)).ok());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());

  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("t", {0, 1}).ok());
  q.Select(e::Eq(q.Col(1), e::I64(99)));
  auto result = session->Query(&q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 4);
}

TEST_F(DatabaseTest, SurvivesReopenWithCheckpoint) {
  TableSchema t("t", {ColumnDef("k", DataType::Int64())});
  ASSERT_TRUE(db_->CreateTable(t).ok());
  auto txn = db_->Begin();
  for (int64_t i = 0; i < 50; i++) {
    ASSERT_TRUE(txn->Append("t", {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  ASSERT_TRUE(db_->Checkpoint().ok());
  Open();  // reopen from disk
  PlanBuilder q = db_->NewPlan();
  ASSERT_TRUE(q.Scan("t", {0}).ok());
  auto result = db_->Run(&q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 50u);
}

TEST_F(DatabaseTest, RunRejectsEmptyPlan) {
  PlanBuilder q = db_->NewPlan();
  EXPECT_FALSE(db_->Run(&q).ok());
}

}  // namespace
}  // namespace vwise
