// Three-engine differential oracle: seeded random plans over TPC-H SF-0.01
// executed on (1) the vectorized X100 engine, (2) the tuple-at-a-time
// Volcano baseline, and (3) the materializing column-at-a-time baseline.
// The three implementations share no operator code, so any disagreement is
// a bug in one of them. Results must be BIT-identical after a canonical
// sort — the plan space is restricted to operations that are exact on all
// engines (integer-family arithmetic and order-independent aggregates; see
// GenPlan), so no epsilon is needed.
//
// Reproduction: every failure prints its seed and writes a plan dump +
// result diff under $VWISE_FAIL_ARTIFACT_DIR (default
// ./vwise-failure-artifacts, uploaded by CI). Override the campaign with
// VWISE_ORACLE_SEED / VWISE_ORACLE_ITERS.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "baseline/column_engine.h"
#include "baseline/tuple_engine.h"
#include "gtest/gtest.h"
#include "planner/plan_builder.h"
#include "planner/plan_verifier.h"
#include "tpch/generator.h"
#include "tpch/schema.h"

namespace vwise {
namespace {

using baseline::MatColumn;
using baseline::Row;

constexpr double kSf = 0.01;

// --- plan specification ------------------------------------------------------
//
// A PlanSpec is the seed-derived description interpreted three times, once
// per engine. Column references are positions into the current layout.

struct FilterSpec {
  size_t pos;      // position in the scan layout
  CmpOp op;
  bool is_string;
  int64_t ival;
  std::string sval;
};

struct ProjSpec {
  enum Kind { kPass, kArith, kArithConst } kind;
  ArithOp op;
  size_t a = 0;
  size_t b = 0;
  int64_t c = 0;
};

struct AggItemSpec {
  AggSpec::Fn fn;
  size_t col = 0;
};

struct JoinSpecT {
  bool present = false;
  int build_table = 0;
  JoinType type = JoinType::kInner;
  size_t probe_key = 0;             // position in probe scan layout
  size_t build_key = 0;             // position in build scan layout
  std::vector<size_t> scan;         // build scan: positions into allowed cols
  std::vector<FilterSpec> filters;  // over the build scan layout
  std::vector<size_t> payload;      // positions in build scan layout (inner)
};

struct PlanSpec {
  int table = 0;
  std::vector<size_t> scan;  // positions into the table's allowed cols
  std::vector<FilterSpec> filters;
  JoinSpecT join;
  bool has_proj = false;
  std::vector<ProjSpec> proj;
  bool has_agg = false;
  std::vector<size_t> group_cols;
  std::vector<AggItemSpec> aggs;
  bool has_sort = false;
  std::vector<SortKey> sort_keys;
  size_t vector_size = 1024;
};

// --- base tables -------------------------------------------------------------

struct OracleTable {
  const char* name;
  std::vector<uint32_t> cols;      // catalog column indices (the allowed set)
  std::vector<DataType> types;     // logical type per allowed column
  // |values| bound is modest (keys, dates, small decimals): products of two
  // such columns cannot overflow an i64 sum over the whole table.
  std::vector<bool> small;
  std::vector<Row> rows;           // raw boxed rows (physical representation)
  std::vector<MatColumn> columns;  // the same data transposed
};

bool IsIntCol(const DataType& t) { return t.physical() != TypeId::kStr; }

// --- seeded plan generator ---------------------------------------------------

class Rng {
 public:
  explicit Rng(uint64_t seed) : g_(seed) {}
  size_t Index(size_t n) { return std::uniform_int_distribution<size_t>(0, n - 1)(g_); }
  bool Chance(int pct) { return static_cast<int>(Index(100)) < pct; }

 private:
  std::mt19937_64 g_;
};

class DifferentialOracleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    using namespace tpch::col;
    dir_ = new std::string(::testing::TempDir() + "/vwise_diff_oracle");
    std::filesystem::remove_all(*dir_);
    config_ = new Config();
    config_->verify_plans = true;
    device_ = new IoDevice(*config_);
    buffers_ = new BufferManager(config_->buffer_pool_bytes);
    auto mgr = TransactionManager::Open(*dir_, *config_, device_, buffers_);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    mgr_ = mgr->release();
    tpch::Generator gen(kSf);
    ASSERT_TRUE(gen.LoadAll(mgr_).ok());

    tables_ = new std::vector<OracleTable>();
    tables_->push_back(
        {"customer",
         {c::kCustkey, c::kNationkey, c::kAcctbal, c::kMktsegment},
         {DataType::Int64(), DataType::Int64(), DataType::Decimal(2),
          DataType::Varchar()},
         {true, true, false, false},
         {},
         {}});
    tables_->push_back(
        {"orders",
         {o::kOrderkey, o::kCustkey, o::kOrderstatus, o::kTotalprice,
          o::kOrderdate, o::kShippriority},
         {DataType::Int64(), DataType::Int64(), DataType::Varchar(),
          DataType::Decimal(2), DataType::Date(), DataType::Int64()},
         {true, true, false, false, true, true},
         {},
         {}});
    tables_->push_back(
        {"lineitem",
         {l::kOrderkey, l::kPartkey, l::kSuppkey, l::kLinenumber,
          l::kQuantity, l::kExtendedprice, l::kDiscount, l::kReturnflag,
          l::kLinestatus, l::kShipdate},
         {DataType::Int64(), DataType::Int64(), DataType::Int64(),
          DataType::Int64(), DataType::Decimal(2), DataType::Decimal(2),
          DataType::Decimal(2), DataType::Varchar(), DataType::Varchar(),
          DataType::Date()},
         {true, true, true, true, true, false, true, false, false, true},
         {},
         {}});
    for (OracleTable& t : *tables_) {
      PlanBuilder b(mgr_, *config_);
      ASSERT_TRUE(b.Scan(t.name, t.cols).ok());
      auto root = b.Build();
      ASSERT_TRUE(root.ok()) << root.status().ToString();
      // No declared logical types -> raw physical Values (decimals stay
      // scaled i64 cents, dates stay i32 day numbers), the representation
      // all three engines compute on.
      auto res = CollectRows(root->get(), 1024);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      t.rows = std::move(res->rows);
      t.columns.assign(t.cols.size(), {});
      for (size_t c = 0; c < t.cols.size(); c++) {
        t.columns[c].reserve(t.rows.size());
        for (const Row& r : t.rows) t.columns[c].push_back(r[c]);
      }
      ASSERT_GT(t.rows.size(), 0u) << t.name;
    }
  }
  static void TearDownTestSuite() {
    delete tables_;
    delete mgr_;
    std::filesystem::remove_all(*dir_);
    delete buffers_;
    delete device_;
    delete config_;
    delete dir_;
  }

  // -- generation -------------------------------------------------------------

  static Value SampleConst(Rng& rng, int table, size_t allowed_pos) {
    const MatColumn& col = (*tables_)[table].columns[allowed_pos];
    return col[rng.Index(col.size())];
  }

  static FilterSpec GenFilter(Rng& rng, int table,
                              const std::vector<size_t>& scan) {
    const OracleTable& t = (*tables_)[table];
    FilterSpec f;
    f.pos = rng.Index(scan.size());
    const size_t ap = scan[f.pos];
    static const CmpOp kOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                 CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
    f.op = kOps[rng.Index(6)];
    const Value v = SampleConst(rng, table, ap);
    f.is_string = !IsIntCol(t.types[ap]);
    if (f.is_string) {
      f.sval = v.AsString();
    } else {
      f.ival = v.AsInt();
    }
    return f;
  }

  static std::vector<size_t> GenScan(Rng& rng, int table, size_t must_have) {
    const OracleTable& t = (*tables_)[table];
    std::vector<size_t> scan;
    for (size_t i = 0; i < t.cols.size(); i++) {
      if (i == must_have || rng.Chance(55)) scan.push_back(i);
    }
    return scan;
  }

  static PlanSpec GenPlan(uint64_t seed) {
    Rng rng(seed);
    PlanSpec s;
    s.table = static_cast<int>(rng.Index(3));
    s.vector_size = std::vector<size_t>{1024, 257, 64}[rng.Index(3)];

    // Join edges: probe table -> (build table, probe allowed pos, build
    // allowed pos). customer->orders and orders->customer use the custkey
    // FK; lineitem->orders uses orderkey.
    s.join.present = rng.Chance(40);
    size_t probe_key_ap = 0;
    if (s.join.present) {
      size_t build_key_ap;
      if (s.table == 0) {  // customer -> orders
        s.join.build_table = 1;
        probe_key_ap = 0;  // c_custkey
        build_key_ap = 1;  // o_custkey
      } else if (s.table == 1) {  // orders -> customer
        s.join.build_table = 0;
        probe_key_ap = 1;  // o_custkey
        build_key_ap = 0;  // c_custkey
      } else {  // lineitem -> orders
        s.join.build_table = 1;
        probe_key_ap = 0;  // l_orderkey
        build_key_ap = 0;  // o_orderkey
      }
      static const JoinType kTypes[] = {JoinType::kInner, JoinType::kLeftSemi,
                                        JoinType::kLeftAnti};
      s.join.type = kTypes[rng.Index(3)];
      s.join.scan = GenScan(rng, s.join.build_table, build_key_ap);
      for (size_t i = 0; i < s.join.scan.size(); i++) {
        if (s.join.scan[i] == build_key_ap) s.join.build_key = i;
      }
      if (rng.Chance(40)) {
        s.join.filters.push_back(GenFilter(rng, s.join.build_table, s.join.scan));
      }
      if (s.join.type == JoinType::kInner) {
        for (size_t i = 0; i < s.join.scan.size(); i++) {
          if (rng.Chance(35)) s.join.payload.push_back(i);
        }
      }
    }

    s.scan = GenScan(rng, s.table, probe_key_ap);
    if (s.join.present) {
      for (size_t i = 0; i < s.scan.size(); i++) {
        if (s.scan[i] == probe_key_ap) s.join.probe_key = i;
      }
    }
    const size_t n_filters = rng.Index(3);  // 0..2
    for (size_t i = 0; i < n_filters; i++) {
      s.filters.push_back(GenFilter(rng, s.table, s.scan));
    }

    // Current layout after scan+join, described as (logical type, origin)
    // where origin addresses the base column constants/smallness come from.
    struct Col {
      DataType type;
      int table;
      size_t allowed_pos;
      bool computed = false;
    };
    std::vector<Col> layout;
    const OracleTable& pt = (*tables_)[s.table];
    for (size_t p : s.scan) layout.push_back({pt.types[p], s.table, p});
    if (s.join.present && s.join.type == JoinType::kInner) {
      const OracleTable& bt = (*tables_)[s.join.build_table];
      for (size_t p : s.join.payload) {
        layout.push_back({bt.types[s.join.scan[p]], s.join.build_table,
                          s.join.scan[p]});
      }
    }

    auto is_small = [&](size_t pos) {
      return !layout[pos].computed &&
             (*tables_)[layout[pos].table].small[layout[pos].allowed_pos];
    };

    s.has_proj = rng.Chance(50);
    if (s.has_proj) {
      std::vector<size_t> int_cols;
      for (size_t i = 0; i < layout.size(); i++) {
        if (IsIntCol(layout[i].type)) int_cols.push_back(i);
      }
      std::vector<Col> new_layout;
      const size_t n_exprs = 1 + rng.Index(4);
      for (size_t i = 0; i < n_exprs; i++) {
        ProjSpec e;
        const int kind = static_cast<int>(rng.Index(3));
        if (kind == 0 || int_cols.empty()) {
          e.kind = ProjSpec::kPass;
          e.a = rng.Index(layout.size());
          new_layout.push_back(layout[e.a]);
        } else if (kind == 1) {
          e.kind = ProjSpec::kArith;
          e.a = int_cols[rng.Index(int_cols.size())];
          e.b = int_cols[rng.Index(int_cols.size())];
          // Multiplication can overflow the i64 SUM accumulator (UB);
          // only small x small products are allowed.
          e.op = (is_small(e.a) && is_small(e.b) && rng.Chance(40))
                     ? ArithOp::kMul
                     : (rng.Chance(50) ? ArithOp::kAdd : ArithOp::kSub);
          new_layout.push_back({DataType::Int64(), 0, 0, true});
        } else {
          e.kind = ProjSpec::kArithConst;
          e.a = int_cols[rng.Index(int_cols.size())];
          e.c = static_cast<int64_t>(rng.Index(100)) + 1;
          e.op = rng.Chance(35) ? ArithOp::kMul
                                : (rng.Chance(50) ? ArithOp::kAdd : ArithOp::kSub);
          new_layout.push_back({DataType::Int64(), 0, 0, true});
        }
        s.proj.push_back(std::move(e));
      }
      layout = std::move(new_layout);
    }

    s.has_agg = rng.Chance(45);
    if (s.has_agg) {
      std::vector<size_t> int_cols;
      for (size_t i = 0; i < layout.size(); i++) {
        if (IsIntCol(layout[i].type)) int_cols.push_back(i);
      }
      const size_t n_groups = rng.Index(3);  // 0..2
      for (size_t g = 0; g < n_groups; g++) {
        const size_t col = rng.Index(layout.size());
        bool dup = false;
        for (size_t prev : s.group_cols) dup |= prev == col;
        if (!dup) s.group_cols.push_back(col);
      }
      const size_t n_aggs = 1 + rng.Index(3);
      for (size_t a = 0; a < n_aggs; a++) {
        AggItemSpec item;
        const int pick = static_cast<int>(rng.Index(6));
        // AVG accumulates in double: exact only over base (bounded)
        // columns where sums stay below 2^53, and only without a join so
        // all engines see the same accumulation order.
        const bool avg_ok = !s.join.present && !s.has_proj && !int_cols.empty();
        if (pick == 0 || int_cols.empty()) {
          item.fn = AggSpec::Fn::kCountStar;
        } else if (pick == 1) {
          item.fn = AggSpec::Fn::kCount;
          item.col = rng.Index(layout.size());
        } else if (pick == 5 && avg_ok) {
          item.fn = AggSpec::Fn::kAvg;
          item.col = int_cols[rng.Index(int_cols.size())];
        } else {
          static const AggSpec::Fn kFns[] = {AggSpec::Fn::kSum,
                                             AggSpec::Fn::kMin,
                                             AggSpec::Fn::kMax};
          item.fn = kFns[rng.Index(3)];
          item.col = int_cols[rng.Index(int_cols.size())];
        }
        s.aggs.push_back(item);
      }
      std::vector<Col> new_layout;
      for (size_t g : s.group_cols) new_layout.push_back(layout[g]);
      for (size_t a = 0; a < s.aggs.size(); a++) {
        new_layout.push_back({DataType::Int64(), 0, 0, true});
      }
      layout = std::move(new_layout);
    }

    s.has_sort = rng.Chance(50);
    if (s.has_sort) {
      const size_t n_keys = 1 + rng.Index(2);
      for (size_t k = 0; k < n_keys; k++) {
        s.sort_keys.push_back({rng.Index(layout.size()), rng.Chance(50)});
      }
    }
    return s;
  }

  // -- vectorized interpretation ---------------------------------------------

  static ExprPtr ConstOfType(const DataType& t, const FilterSpec& f) {
    if (f.is_string) return e::Str(f.sval);
    return std::make_unique<ConstExpr>(Value::Int(f.ival), t);
  }

  static FilterPtr VecFilter(const PlanBuilder& b, const FilterSpec& f) {
    return e::Cmp(f.op, b.Col(f.pos), ConstOfType(b.TypeOf(f.pos), f));
  }

  static Result<std::vector<Row>> RunVectorized(const PlanSpec& s,
                                                std::string* explain,
                                                bool encoded_exec) {
    Config cfg = *config_;
    cfg.verify_plans = true;
    cfg.vector_size = s.vector_size;
    cfg.enable_encoded_exec = encoded_exec;
    const OracleTable& pt = (*tables_)[s.table];
    PlanBuilder b(mgr_, cfg);
    std::vector<uint32_t> cat;
    for (size_t p : s.scan) cat.push_back(pt.cols[p]);
    VWISE_RETURN_IF_ERROR(b.Scan(pt.name, std::move(cat)));
    for (const FilterSpec& f : s.filters) b.Select(VecFilter(b, f));
    if (s.join.present) {
      const OracleTable& bt = (*tables_)[s.join.build_table];
      PlanBuilder bb(mgr_, cfg);
      std::vector<uint32_t> bcat;
      for (size_t p : s.join.scan) bcat.push_back(bt.cols[p]);
      VWISE_RETURN_IF_ERROR(bb.Scan(bt.name, std::move(bcat)));
      for (const FilterSpec& f : s.join.filters) bb.Select(VecFilter(bb, f));
      b.Join(std::move(bb), s.join.type, {s.join.probe_key},
             {s.join.build_key}, s.join.payload);
    }
    if (s.has_proj) {
      std::vector<ExprPtr> exprs;
      std::vector<DataType> types;
      for (const ProjSpec& p : s.proj) {
        if (p.kind == ProjSpec::kPass) {
          exprs.push_back(b.Col(p.a));
          types.push_back(b.TypeOf(p.a));
        } else if (p.kind == ProjSpec::kArith) {
          exprs.push_back(std::make_unique<ArithExpr>(
              p.op, e::Cast(b.Col(p.a), DataType::Int64()),
              e::Cast(b.Col(p.b), DataType::Int64())));
          types.push_back(DataType::Int64());
        } else {
          exprs.push_back(std::make_unique<ArithExpr>(
              p.op, e::Cast(b.Col(p.a), DataType::Int64()), e::I64(p.c)));
          types.push_back(DataType::Int64());
        }
      }
      b.Project(std::move(exprs), std::move(types));
    }
    if (s.has_agg) {
      std::vector<AggSpec> aggs;
      std::vector<DataType> out_types;
      for (size_t g : s.group_cols) out_types.push_back(b.TypeOf(g));
      for (const AggItemSpec& a : s.aggs) {
        aggs.push_back({a.fn, a.col});
        switch (a.fn) {
          case AggSpec::Fn::kSum:
            out_types.push_back(DataType::Int64());
            break;
          case AggSpec::Fn::kMin:
          case AggSpec::Fn::kMax:
            out_types.push_back(b.TypeOf(a.col));
            break;
          case AggSpec::Fn::kAvg:
            out_types.push_back(DataType::Double());
            break;
          case AggSpec::Fn::kCount:
          case AggSpec::Fn::kCountStar:
            out_types.push_back(DataType::Int64());
            break;
        }
      }
      b.Agg(s.group_cols, std::move(aggs), std::move(out_types));
    }
    if (s.has_sort) b.Sort(s.sort_keys);
    VWISE_ASSIGN_OR_RETURN(OperatorPtr root, b.Build());
    *explain = ExplainPlan(*root);
    VWISE_ASSIGN_OR_RETURN(QueryResult res,
                           CollectRows(root.get(), cfg.vector_size));
    return std::move(res.rows);
  }

  // -- tuple-at-a-time interpretation ----------------------------------------

  static baseline::RExprPtr RexFilter(const FilterSpec& f) {
    using namespace baseline::rex;
    Value v = f.is_string ? Value::String(f.sval) : Value::Int(f.ival);
    switch (f.op) {
      case CmpOp::kEq: return Eq(Col(f.pos), Const(std::move(v)));
      case CmpOp::kNe: return Ne(Col(f.pos), Const(std::move(v)));
      case CmpOp::kLt: return Lt(Col(f.pos), Const(std::move(v)));
      case CmpOp::kLe: return Le(Col(f.pos), Const(std::move(v)));
      case CmpOp::kGt: return Gt(Col(f.pos), Const(std::move(v)));
      case CmpOp::kGe: return Ge(Col(f.pos), Const(std::move(v)));
    }
    return nullptr;
  }

  static baseline::TupleOperatorPtr TupleScanNarrow(
      int table, const std::vector<size_t>& scan,
      const std::vector<FilterSpec>& filters) {
    using namespace baseline;
    TupleOperatorPtr op =
        std::make_unique<TupleScan>(&(*tables_)[table].rows);
    std::vector<RExprPtr> narrow;
    for (size_t p : scan) narrow.push_back(rex::Col(p));
    op = std::make_unique<TupleProject>(std::move(op), std::move(narrow));
    for (const FilterSpec& f : filters) {
      op = std::make_unique<TupleSelect>(std::move(op), RexFilter(f));
    }
    return op;
  }

  static std::vector<Row> RunTuple(const PlanSpec& s) {
    using namespace baseline;
    TupleOperatorPtr op = TupleScanNarrow(s.table, s.scan, s.filters);
    if (s.join.present) {
      TupleOperatorPtr build =
          TupleScanNarrow(s.join.build_table, s.join.scan, s.join.filters);
      TupleHashJoin::Type t = s.join.type == JoinType::kInner
                                  ? TupleHashJoin::Type::kInner
                              : s.join.type == JoinType::kLeftSemi
                                  ? TupleHashJoin::Type::kLeftSemi
                                  : TupleHashJoin::Type::kLeftAnti;
      op = std::make_unique<TupleHashJoin>(
          std::move(op), std::move(build), t,
          std::vector<size_t>{s.join.probe_key},
          std::vector<size_t>{s.join.build_key}, s.join.payload);
    }
    if (s.has_proj) {
      std::vector<RExprPtr> exprs;
      for (const ProjSpec& p : s.proj) {
        if (p.kind == ProjSpec::kPass) {
          exprs.push_back(rex::Col(p.a));
        } else {
          RExprPtr rhs = p.kind == ProjSpec::kArith
                             ? rex::Col(p.b)
                             : rex::Const(Value::Int(p.c));
          switch (p.op) {
            case ArithOp::kAdd:
              exprs.push_back(rex::Add(rex::Col(p.a), std::move(rhs)));
              break;
            case ArithOp::kSub:
              exprs.push_back(rex::Sub(rex::Col(p.a), std::move(rhs)));
              break;
            case ArithOp::kMul:
              exprs.push_back(rex::Mul(rex::Col(p.a), std::move(rhs)));
              break;
            case ArithOp::kDiv:
              exprs.push_back(rex::Div(rex::Col(p.a), std::move(rhs)));
              break;
          }
        }
      }
      op = std::make_unique<TupleProject>(std::move(op), std::move(exprs));
    }
    if (s.has_agg) {
      std::vector<TupleAgg::Spec> aggs;
      for (const AggItemSpec& a : s.aggs) {
        TupleAgg::Fn fn = TupleAgg::Fn::kCount;
        switch (a.fn) {
          case AggSpec::Fn::kSum: fn = TupleAgg::Fn::kSumI64; break;
          case AggSpec::Fn::kMin: fn = TupleAgg::Fn::kMin; break;
          case AggSpec::Fn::kMax: fn = TupleAgg::Fn::kMax; break;
          case AggSpec::Fn::kCount: fn = TupleAgg::Fn::kCount; break;
          case AggSpec::Fn::kCountStar: fn = TupleAgg::Fn::kCountStar; break;
          case AggSpec::Fn::kAvg: fn = TupleAgg::Fn::kAvg; break;
        }
        aggs.push_back({fn, a.col});
      }
      op = std::make_unique<TupleAgg>(std::move(op), s.group_cols,
                                      std::move(aggs));
    }
    if (s.has_sort) {
      std::vector<TupleSort::Key> keys;
      for (const SortKey& k : s.sort_keys) keys.push_back({k.col, k.ascending});
      op = std::make_unique<TupleSort>(std::move(op), std::move(keys));
    }
    return TupleCollect(op.get());
  }

  // -- column-at-a-time interpretation ---------------------------------------

  static baseline::MatCmp ToMatCmp(CmpOp op) {
    switch (op) {
      case CmpOp::kEq: return baseline::MatCmp::kEq;
      case CmpOp::kNe: return baseline::MatCmp::kNe;
      case CmpOp::kLt: return baseline::MatCmp::kLt;
      case CmpOp::kLe: return baseline::MatCmp::kLe;
      case CmpOp::kGt: return baseline::MatCmp::kGt;
      case CmpOp::kGe: return baseline::MatCmp::kGe;
    }
    return baseline::MatCmp::kEq;
  }

  static baseline::MatArith ToMatArith(ArithOp op) {
    switch (op) {
      case ArithOp::kAdd: return baseline::MatArith::kAdd;
      case ArithOp::kSub: return baseline::MatArith::kSub;
      case ArithOp::kMul: return baseline::MatArith::kMul;
      case ArithOp::kDiv: return baseline::MatArith::kDiv;
    }
    return baseline::MatArith::kAdd;
  }

  static std::vector<MatColumn> ColumnScan(baseline::ColumnEngine& eng,
                                           int table,
                                           const std::vector<size_t>& scan,
                                           const std::vector<FilterSpec>& fs) {
    std::vector<MatColumn> cur;
    for (size_t p : scan) cur.push_back((*tables_)[table].columns[p]);
    for (const FilterSpec& f : fs) {
      Value v = f.is_string ? Value::String(f.sval) : Value::Int(f.ival);
      auto sel = eng.SelectCmpConst(cur[f.pos], ToMatCmp(f.op), v);
      for (MatColumn& c : cur) c = eng.GatherV(c, sel);
    }
    return cur;
  }

  static std::vector<Row> RunColumn(const PlanSpec& s) {
    baseline::ColumnEngine eng;
    std::vector<MatColumn> cur = ColumnScan(eng, s.table, s.scan, s.filters);
    if (s.join.present) {
      std::vector<MatColumn> build =
          ColumnScan(eng, s.join.build_table, s.join.scan, s.join.filters);
      if (s.join.type == JoinType::kInner) {
        std::vector<uint32_t> pi, bi;
        eng.HashJoinPairs({&cur[s.join.probe_key]},
                          {&build[s.join.build_key]}, &pi, &bi);
        std::vector<MatColumn> next;
        for (MatColumn& c : cur) next.push_back(eng.GatherV(c, pi));
        for (size_t p : s.join.payload) {
          next.push_back(eng.GatherV(build[p], bi));
        }
        cur = std::move(next);
      } else {
        auto sel = eng.SemiJoinSel({&cur[s.join.probe_key]},
                                   {&build[s.join.build_key]},
                                   s.join.type == JoinType::kLeftAnti);
        for (MatColumn& c : cur) c = eng.GatherV(c, sel);
      }
    }
    if (s.has_proj) {
      std::vector<MatColumn> next;
      for (const ProjSpec& p : s.proj) {
        if (p.kind == ProjSpec::kPass) {
          next.push_back(cur[p.a]);
        } else if (p.kind == ProjSpec::kArith) {
          next.push_back(eng.MapArith(ToMatArith(p.op), cur[p.a], cur[p.b]));
        } else {
          next.push_back(
              eng.MapArithConst(ToMatArith(p.op), cur[p.a], Value::Int(p.c)));
        }
      }
      cur = std::move(next);
    }
    if (s.has_agg) {
      const size_t rows = cur.empty() ? 0 : cur[0].size();
      std::vector<uint32_t> groups;
      std::vector<uint32_t> reps;
      size_t n_groups = 0;
      if (s.group_cols.empty()) {
        groups.assign(rows, 0);
        n_groups = 1;  // the global group always emits (zero row when empty)
      } else {
        std::vector<const MatColumn*> keys;
        for (size_t g : s.group_cols) keys.push_back(&cur[g]);
        groups = eng.GroupIds(keys, &n_groups, &reps);
      }
      std::vector<MatColumn> next;
      for (size_t g : s.group_cols) next.push_back(eng.GatherV(cur[g], reps));
      for (const AggItemSpec& a : s.aggs) {
        switch (a.fn) {
          case AggSpec::Fn::kSum:
            next.push_back(eng.AggGrouped(baseline::MatAgg::kSumI64,
                                          cur[a.col], groups, n_groups));
            break;
          case AggSpec::Fn::kMin:
            next.push_back(eng.AggGrouped(baseline::MatAgg::kMin, cur[a.col],
                                          groups, n_groups));
            break;
          case AggSpec::Fn::kMax:
            next.push_back(eng.AggGrouped(baseline::MatAgg::kMax, cur[a.col],
                                          groups, n_groups));
            break;
          case AggSpec::Fn::kCount:
            next.push_back(eng.AggGrouped(baseline::MatAgg::kCount, cur[a.col],
                                          groups, n_groups));
            break;
          case AggSpec::Fn::kCountStar:
            next.push_back(eng.AggGroupedCount(groups, n_groups));
            break;
          case AggSpec::Fn::kAvg:
            next.push_back(eng.AggGrouped(baseline::MatAgg::kAvg, cur[a.col],
                                          groups, n_groups));
            break;
        }
      }
      cur = std::move(next);
    }
    if (s.has_sort && !cur.empty()) {
      std::vector<const MatColumn*> keys;
      std::vector<bool> asc;
      for (const SortKey& k : s.sort_keys) {
        keys.push_back(&cur[k.col]);
        asc.push_back(k.ascending);
      }
      auto order = eng.SortPositions(keys, asc);
      for (MatColumn& c : cur) c = eng.GatherV(c, order);
    }
    // Transpose back to rows.
    std::vector<Row> out;
    const size_t rows = cur.empty() ? 0 : cur[0].size();
    out.reserve(rows);
    for (size_t r = 0; r < rows; r++) {
      Row row;
      row.reserve(cur.size());
      for (const MatColumn& c : cur) row.push_back(c[r]);
      out.push_back(std::move(row));
    }
    return out;
  }

  // -- comparison & artifacts -------------------------------------------------

  static void Canonicalize(std::vector<Row>* rows) {
    std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size() && i < b.size(); i++) {
        const int c = Compare(a[i], b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    });
  }

  // Bit-identity: same row count, same kinds, Compare == 0 everywhere
  // (doubles compare by bit pattern, so this is exact).
  static bool Identical(const std::vector<Row>& a, const std::vector<Row>& b,
                        std::string* why) {
    if (a.size() != b.size()) {
      *why = "row counts differ: " + std::to_string(a.size()) + " vs " +
             std::to_string(b.size());
      return false;
    }
    for (size_t r = 0; r < a.size(); r++) {
      if (a[r].size() != b[r].size()) {
        *why = "row " + std::to_string(r) + " widths differ";
        return false;
      }
      for (size_t c = 0; c < a[r].size(); c++) {
        if (a[r][c].kind() != b[r][c].kind() ||
            Compare(a[r][c], b[r][c]) != 0) {
          *why = "row " + std::to_string(r) + " col " + std::to_string(c) +
                 ": " + a[r][c].ToString() + " vs " + b[r][c].ToString();
          return false;
        }
      }
    }
    return true;
  }

  static std::string DumpRows(const std::vector<Row>& rows, size_t max_rows) {
    std::string out;
    for (size_t r = 0; r < rows.size() && r < max_rows; r++) {
      for (size_t c = 0; c < rows[r].size(); c++) {
        if (c > 0) out += " | ";
        out += rows[r][c].ToString();
      }
      out += "\n";
    }
    if (rows.size() > max_rows) {
      out += "... (" + std::to_string(rows.size()) + " rows total)\n";
    }
    return out;
  }

  static std::filesystem::path ArtifactDir() {
    const char* env = std::getenv("VWISE_FAIL_ARTIFACT_DIR");
    return env != nullptr && env[0] != '\0'
               ? std::filesystem::path(env)
               : std::filesystem::path("vwise-failure-artifacts");
  }

  static std::string WriteArtifact(uint64_t seed, const std::string& body) {
    const auto dir = ArtifactDir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const auto path = dir / ("oracle_seed_" + std::to_string(seed) + ".txt");
    std::ofstream f(path);
    f << body;
    return path.string();
  }

  static std::string* dir_;
  static Config* config_;
  static IoDevice* device_;
  static BufferManager* buffers_;
  static TransactionManager* mgr_;
  static std::vector<OracleTable>* tables_;
};

std::string* DifferentialOracleTest::dir_ = nullptr;
Config* DifferentialOracleTest::config_ = nullptr;
IoDevice* DifferentialOracleTest::device_ = nullptr;
BufferManager* DifferentialOracleTest::buffers_ = nullptr;
TransactionManager* DifferentialOracleTest::mgr_ = nullptr;
std::vector<OracleTable>* DifferentialOracleTest::tables_ = nullptr;

TEST_F(DifferentialOracleTest, RandomPlansAgreeAcrossThreeEngines) {
  const char* seed_env = std::getenv("VWISE_ORACLE_SEED");
  const char* iters_env = std::getenv("VWISE_ORACLE_ITERS");
  const uint64_t base_seed =
      seed_env != nullptr && seed_env[0] != '\0'
          ? std::strtoull(seed_env, nullptr, 10)
          : 20260805ull;
  const size_t iters = iters_env != nullptr && iters_env[0] != '\0'
                           ? std::strtoull(iters_env, nullptr, 10)
                           : 240;
  size_t nonempty = 0;
  for (size_t i = 0; i < iters; i++) {
    const uint64_t seed = base_seed + i;
    const PlanSpec spec = GenPlan(seed);
    std::string explain;
    auto vec = RunVectorized(spec, &explain, /*encoded_exec=*/true);
    ASSERT_TRUE(vec.ok()) << "seed=" << seed << "\n"
                          << vec.status().ToString();
    // Compressed execution must be invisible: the same plan with encoded
    // adoption off yields row-for-row identical output (pre-canonicalization
    // — even the emission order may not change).
    std::string explain_off;
    auto vec_off = RunVectorized(spec, &explain_off, /*encoded_exec=*/false);
    ASSERT_TRUE(vec_off.ok()) << "seed=" << seed << "\n"
                              << vec_off.status().ToString();
    std::string why_enc;
    if (!Identical(*vec, *vec_off, &why_enc)) {
      const std::string path = WriteArtifact(
          seed, "encoded/flat divergence\nseed=" + std::to_string(seed) +
                    "\n" + why_enc + "\nplan:\n" + explain +
                    "\nencoded result:\n" + DumpRows(*vec, 50) +
                    "\nflat result:\n" + DumpRows(*vec_off, 50));
      FAIL() << "encoded execution diverges from flat; seed=" << seed
             << "\nartifact: " << path << "\n"
             << why_enc << "\nplan:\n" << explain;
    }
    std::vector<Row> tup = RunTuple(spec);
    std::vector<Row> col = RunColumn(spec);
    Canonicalize(&*vec);
    Canonicalize(&tup);
    Canonicalize(&col);
    std::string why_tup;
    std::string why_col;
    const bool tup_ok = Identical(*vec, tup, &why_tup);
    const bool col_ok = Identical(*vec, col, &why_col);
    if (!tup_ok || !col_ok) {
      std::string body = "differential oracle failure\nseed=" +
                         std::to_string(seed) + "\n";
      if (!tup_ok) body += "vectorized vs tuple engine: " + why_tup + "\n";
      if (!col_ok) body += "vectorized vs column engine: " + why_col + "\n";
      body += "\nvectorized plan:\n" + explain;
      body += "\nvectorized result (canonical):\n" + DumpRows(*vec, 50);
      body += "\ntuple result (canonical):\n" + DumpRows(tup, 50);
      body += "\ncolumn result (canonical):\n" + DumpRows(col, 50);
      const std::string path = WriteArtifact(seed, body);
      FAIL() << "engines disagree; seed=" << seed
             << " (re-run with VWISE_ORACLE_SEED=" << seed
             << " VWISE_ORACLE_ITERS=1)\nartifact: " << path << "\n"
             << (tup_ok ? "" : "tuple: " + why_tup + "\n")
             << (col_ok ? "" : "column: " + why_col + "\n")
             << "plan:\n" << explain;
    }
    if (!vec->empty()) nonempty++;
  }
  // The campaign must exercise real data, not degenerate empty streams.
  EXPECT_GT(nonempty, iters / 3) << "plan generator is producing mostly "
                                    "empty results; tighten the constants";
}

}  // namespace
}  // namespace vwise
