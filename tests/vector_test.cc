#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "vector/chunk.h"
#include "vector/string_heap.h"
#include "vector/vector.h"

namespace vwise {
namespace {

TEST(TypesTest, PhysicalMapping) {
  EXPECT_EQ(DataType::Bool().physical(), TypeId::kU8);
  EXPECT_EQ(DataType::Int32().physical(), TypeId::kI32);
  EXPECT_EQ(DataType::Date().physical(), TypeId::kI32);
  EXPECT_EQ(DataType::Int64().physical(), TypeId::kI64);
  EXPECT_EQ(DataType::Decimal(2).physical(), TypeId::kI64);
  EXPECT_EQ(DataType::Double().physical(), TypeId::kF64);
  EXPECT_EQ(DataType::Varchar().physical(), TypeId::kStr);
}

TEST(TypesTest, Widths) {
  EXPECT_EQ(TypeWidth(TypeId::kU8), 1u);
  EXPECT_EQ(TypeWidth(TypeId::kI32), 4u);
  EXPECT_EQ(TypeWidth(TypeId::kI64), 8u);
  EXPECT_EQ(TypeWidth(TypeId::kF64), 8u);
  EXPECT_EQ(TypeWidth(TypeId::kStr), sizeof(StringVal));
}

TEST(TypesTest, StringValCompare) {
  std::string a = "apple", b = "banana", a2 = "apple";
  EXPECT_EQ(StringVal(a), StringVal(a2));
  EXPECT_NE(StringVal(a), StringVal(b));
  EXPECT_LT(StringVal(a), StringVal(b));
  EXPECT_LE(StringVal(a), StringVal(a2));
  EXPECT_GT(StringVal(b), StringVal(a));
}

TEST(StringHeapTest, AddCopiesBytes) {
  StringHeap heap;
  std::string src = "hello world";
  StringVal sv = heap.Add(src);
  src[0] = 'X';  // mutating the source must not affect the heap copy
  EXPECT_EQ(sv.ToString(), "hello world");
}

TEST(StringHeapTest, EmptyFirstAddOnFreshArena) {
  // Regression: a fresh arena has no chunk, and a zero-byte reservation used
  // to skip Grow (0 + 0 > 0 is false) and dereference chunks_.back() on an
  // empty vector. Outer joins feed such empty, null-data StringVals as
  // zero-filled padding for unmatched rows.
  StringHeap heap;
  StringVal sv = heap.Add(std::string_view());
  EXPECT_EQ(sv.len, 0u);
  StringVal after = heap.Add("tail");
  EXPECT_EQ(after.ToString(), "tail");
}

TEST(StringHeapTest, LargeStringsSpanChunks) {
  StringHeap heap;
  std::string big(200000, 'z');
  StringVal sv = heap.Add(big);
  EXPECT_EQ(sv.len, 200000u);
  EXPECT_EQ(sv.view().back(), 'z');
}

TEST(VectorTest, TypedAccess) {
  Vector v(TypeId::kI64, 128);
  int64_t* d = v.Data<int64_t>();
  for (int i = 0; i < 128; i++) d[i] = i * 3;
  EXPECT_EQ(v.Data<int64_t>()[100], 300);
  EXPECT_EQ(v.capacity(), 128u);
}

TEST(VectorTest, ReferenceSharesBuffer) {
  Vector a(TypeId::kI32, 16);
  a.Data<int32_t>()[5] = 99;
  Vector b;
  b.Reference(a);
  EXPECT_EQ(b.Data<int32_t>()[5], 99);
  b.Data<int32_t>()[5] = 7;
  EXPECT_EQ(a.Data<int32_t>()[5], 7);
}

class ChunkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chunk_.Init({TypeId::kI64, TypeId::kF64, TypeId::kStr}, 64);
    int64_t* a = chunk_.column(0).Data<int64_t>();
    double* b = chunk_.column(1).Data<double>();
    StringVal* s = chunk_.column(2).Data<StringVal>();
    StringHeap* heap = chunk_.column(2).GetStringHeap();
    for (int i = 0; i < 10; i++) {
      a[i] = i;
      b[i] = i * 0.5;
      s[i] = heap->Add("row" + std::to_string(i));
    }
    chunk_.SetCount(10);
  }
  DataChunk chunk_;
};

TEST_F(ChunkTest, ActiveCountWithoutSelection) {
  EXPECT_EQ(chunk_.ActiveCount(), 10u);
  EXPECT_FALSE(chunk_.has_selection());
}

TEST_F(ChunkTest, SelectionRestrictsActive) {
  sel_t* sel = chunk_.MutableSel();
  sel[0] = 2;
  sel[1] = 5;
  sel[2] = 9;
  chunk_.SetSelection(3);
  EXPECT_EQ(chunk_.ActiveCount(), 3u);
  EXPECT_EQ(chunk_.GetValue(0, 1).AsInt(), 5);
  EXPECT_EQ(chunk_.GetValue(2, 2).AsString(), "row9");
}

TEST_F(ChunkTest, FlattenCompacts) {
  sel_t* sel = chunk_.MutableSel();
  sel[0] = 1;
  sel[1] = 4;
  sel[2] = 7;
  chunk_.SetSelection(3);
  chunk_.Flatten();
  EXPECT_FALSE(chunk_.has_selection());
  EXPECT_EQ(chunk_.count(), 3u);
  EXPECT_EQ(chunk_.GetValue(0, 0).AsInt(), 1);
  EXPECT_EQ(chunk_.GetValue(0, 2).AsInt(), 7);
  EXPECT_DOUBLE_EQ(chunk_.GetValue(1, 1).AsDouble(), 2.0);
  EXPECT_EQ(chunk_.GetValue(2, 2).AsString(), "row7");
}

TEST_F(ChunkTest, FlattenWithoutSelectionIsNoop) {
  chunk_.Flatten();
  EXPECT_EQ(chunk_.count(), 10u);
}

TEST_F(ChunkTest, ResetClears) {
  chunk_.SetSelection(0);
  chunk_.Reset();
  EXPECT_EQ(chunk_.count(), 0u);
  EXPECT_FALSE(chunk_.has_selection());
}

TEST_F(ChunkTest, GetValueRendersDates) {
  DataChunk c;
  c.Init({TypeId::kI32}, 4);
  c.column(0).Data<int32_t>()[0] = 0;
  c.SetCount(1);
  DataType date = DataType::Date();
  EXPECT_EQ(c.GetValue(0, 0, &date).AsString(), "1970-01-01");
}

// --- hot-path reuse regressions (DESIGN.md §9) -----------------------------
// Steady-state string production must reuse the buffers already owned by the
// heap/vector; these pin the Reset()/GetStringHeap() contract the hot-path
// analyzer's allow(alloc) escapes rely on.

TEST(StringHeapTest, ResetReusesSingleChunk) {
  StringHeap heap;
  StringVal first = heap.Add("steady");
  size_t cap = heap.capacity();
  ASSERT_EQ(heap.chunk_count(), 1u);
  heap.Reset();
  // Same buffer, rewound: the next Add lands on the same address and no
  // capacity is shed or acquired.
  StringVal again = heap.Add("state!");
  EXPECT_EQ(again.ptr, first.ptr);
  EXPECT_EQ(heap.capacity(), cap);
  EXPECT_EQ(heap.chunk_count(), 1u);
  EXPECT_EQ(again.ToString(), "state!");
}

TEST(StringHeapTest, ResetCoalescesSprawledChunks) {
  StringHeap heap;
  // Three 40KB strings overflow the 64KB chunks — the heap sprawls.
  std::string s(40 * 1024, 'a');
  for (int i = 0; i < 3; i++) heap.Add(s);
  size_t sprawled = heap.bytes_used();
  ASSERT_GT(heap.chunk_count(), 1u);
  heap.Reset();
  // Coalesced into ONE buffer sized for everything the heap held, so the
  // same per-vector volume now fits without touching the allocator again.
  EXPECT_EQ(heap.chunk_count(), 1u);
  EXPECT_GE(heap.capacity(), sprawled);
  size_t cap = heap.capacity();
  for (int i = 0; i < 3; i++) heap.Add(s);
  EXPECT_EQ(heap.chunk_count(), 1u);
  EXPECT_EQ(heap.capacity(), cap);
  heap.Reset();
  EXPECT_EQ(heap.chunk_count(), 1u);
  EXPECT_EQ(heap.capacity(), cap);
}

TEST(VectorTest, OwnHeapReusedAcrossClearHeapRefs) {
  Vector v(TypeId::kStr, 16);
  StringHeap* h1 = v.GetStringHeap();
  StringVal sv1 = h1->Add("chunk-1 payload");
  // Next fill cycle, no downstream reference: the SAME heap object comes
  // back, Reset() — the new bytes land on the old address.
  v.ClearHeapRefs();
  StringHeap* h2 = v.GetStringHeap();
  EXPECT_EQ(h2, h1);
  StringVal sv2 = h2->Add("chunk-2 payload");
  EXPECT_EQ(sv2.ptr, sv1.ptr);
}

TEST(VectorTest, OwnHeapNotResetWhileReferencedDownstream) {
  Vector v(TypeId::kStr, 16);
  StringHeap* h1 = v.GetStringHeap();
  StringVal sv1 = h1->Add("buffered by a blocking operator");
  // A consumer (join build, sort run) still holds the previous chunk's
  // heap: the vector must NOT rewind it under the consumer's feet.
  std::shared_ptr<StringHeap> downstream = v.string_heap();
  ASSERT_NE(downstream, nullptr);
  v.ClearHeapRefs();
  StringHeap* h2 = v.GetStringHeap();
  EXPECT_NE(h2, h1);
  EXPECT_EQ(sv1.ToString(), "buffered by a blocking operator");
  // Once the downstream reference drains, the replacement heap is the one
  // that gets cached and reused.
  downstream.reset();
  v.ClearHeapRefs();
  EXPECT_EQ(v.GetStringHeap(), h2);
}

TEST(VectorTest, HeapRefVectorKeepsCapacityAcrossClear) {
  Vector v(TypeId::kStr, 16);
  auto extra = std::make_shared<StringHeap>();
  v.GetStringHeap();
  v.AddStringHeapRef(extra);
  EXPECT_EQ(v.heaps().size(), 2u);
  // Registering the same heap again is a no-op (scan chunks carry at most a
  // couple of distinct heap sources).
  v.AddStringHeapRef(extra);
  EXPECT_EQ(v.heaps().size(), 2u);
  v.ClearHeapRefs();
  EXPECT_TRUE(v.heaps().empty());
  EXPECT_GE(v.heaps().capacity(), 2u);  // clear() keeps the capacity
}

}  // namespace
}  // namespace vwise
