#include <string>
#include <vector>

#include "common/rng.h"
#include "expr/primitive_registry.h"
#include "gtest/gtest.h"
#include "vector/representation.h"

namespace vwise {
namespace {

TEST(PrimitiveRegistryTest, CatalogSizeAndNaming) {
  const auto& reg = PrimitiveRegistry::Instance();
  // 4 ops x 2 types x 3 kinds = 24 maps; 6 cmps x 5 types x 2 kinds = 60
  // sels; 2 dict + 6 cmps x 4 numeric types rle = 26 encoded twins.
  EXPECT_EQ(reg.size(), 24u + 60u + 26u);
  auto names = reg.Names();
  EXPECT_EQ(names.size(), reg.size());
  for (const auto& n : names) {
    EXPECT_TRUE(n.rfind("map_", 0) == 0 || n.rfind("sel_", 0) == 0) << n;
  }
}

TEST(PrimitiveRegistryTest, LookupKnownAndUnknown) {
  const auto& reg = PrimitiveRegistry::Instance();
  EXPECT_NE(reg.FindMap("map_add_i64_col_i64_col"), nullptr);
  EXPECT_NE(reg.FindMap("map_mul_f64_col_f64_val"), nullptr);
  EXPECT_NE(reg.FindSelect("sel_lt_i64_col_i64_val"), nullptr);
  EXPECT_NE(reg.FindSelect("sel_eq_str_col_str_col"), nullptr);
  EXPECT_EQ(reg.FindMap("map_add_str_col_str_col"), nullptr);  // no string math
  EXPECT_EQ(reg.FindSelect("sel_like_str_col_str_val"), nullptr);
  EXPECT_EQ(reg.FindMap("nonsense"), nullptr);
  // Encoded twins live in their own namespace: visible through
  // FindEncSelect only, never through the flat select lookup.
  EXPECT_NE(reg.FindEncSelect("sel_eq_str_dict_str_val"), nullptr);
  EXPECT_NE(reg.FindEncSelect("sel_ge_i64_rle_i64_val"), nullptr);
  EXPECT_EQ(reg.FindSelect("sel_eq_str_dict_str_val"), nullptr);
  EXPECT_EQ(reg.FindEncSelect("sel_eq_str_col_str_val"), nullptr);
}

TEST(PrimitiveRegistryTest, CapsColumnMatchesEncodedTwins) {
  const auto& reg = PrimitiveRegistry::Instance();
  EXPECT_EQ(reg.Caps("map_add_i64_col_i64_col"), kReprFlat);
  EXPECT_EQ(reg.Caps("sel_eq_str_col_str_val"), kReprFlat | kReprDict);
  EXPECT_EQ(reg.Caps("sel_eq_str_col_str_col"), kReprFlat);
  EXPECT_EQ(reg.Caps("sel_lt_i64_col_i64_val"), kReprFlat | kReprRle);
  EXPECT_EQ(reg.Caps("sel_lt_str_col_str_val"), kReprFlat);
  EXPECT_EQ(reg.Caps("sel_eq_str_dict_str_val"), kReprDict);
  EXPECT_EQ(reg.Caps("sel_lt_f64_rle_f64_val"), kReprRle);
  EXPECT_EQ(reg.Caps("unknown_primitive"), kReprFlat);
  // Every granted dict/rle capability has its encoded twin registered under
  // the name with the column's `col` token swapped for the representation.
  for (const auto& name : reg.Names()) {
    if (name.find("_col_") == std::string::npos) continue;  // the twins
    uint8_t caps = reg.Caps(name);
    if (caps & kReprDict) {
      std::string twin = name;
      twin.replace(twin.find("_col_"), 5, "_dict_");
      EXPECT_NE(reg.FindEncSelect(twin), nullptr) << name;
    }
    if (caps & kReprRle) {
      std::string twin = name;
      twin.replace(twin.find("_col_"), 5, "_rle_");
      EXPECT_NE(reg.FindEncSelect(twin), nullptr) << name;
    }
  }
}

TEST(PrimitiveRegistryTest, DictSelectComparesCodes) {
  const auto& reg = PrimitiveRegistry::Instance();
  auto fn = reg.FindEncSelect("sel_eq_str_dict_str_val");
  ASSERT_NE(fn, nullptr);
  std::vector<uint32_t> codes = {2, 0, 2, 1, 2};
  uint32_t needle = 2;
  std::vector<sel_t> out(codes.size());
  size_t n = fn(codes.data(), &needle, nullptr, codes.size(), out.data());
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 2u);
  EXPECT_EQ(out[2], 4u);
}

TEST(PrimitiveRegistryTest, RleSelectMatchesScalarReference) {
  const auto& reg = PrimitiveRegistry::Instance();
  auto fn = reg.FindEncSelect("sel_ge_i64_rle_i64_val");
  ASSERT_NE(fn, nullptr);
  // Runs: 4x10, 3x-5, 2x10, 1x99 -> 10 values.
  std::vector<int64_t> run_vals = {10, -5, 10, 99};
  std::vector<uint32_t> starts = {0, 4, 7, 9, 10};
  RleColView view{run_vals.data(), starts.data(), 4};
  int64_t pivot = 10;
  std::vector<sel_t> out(10);
  size_t n = fn(&view, &pivot, nullptr, 10, out.data());
  std::vector<sel_t> got(out.begin(), out.begin() + n);
  EXPECT_EQ(got, (std::vector<sel_t>{0, 1, 2, 3, 7, 8, 9}));
  // Same predicate through an input selection vector.
  sel_t sel[5] = {1, 4, 6, 8, 9};
  n = fn(&view, &pivot, sel, 5, out.data());
  got.assign(out.begin(), out.begin() + n);
  EXPECT_EQ(got, (std::vector<sel_t>{1, 8, 9}));
}

TEST(PrimitiveRegistryTest, MapKernelComputesThroughErasedSignature) {
  const auto& reg = PrimitiveRegistry::Instance();
  auto fn = reg.FindMap("map_mul_i64_col_i64_val");
  ASSERT_NE(fn, nullptr);
  std::vector<int64_t> a = {1, 2, 3, 4, 5};
  int64_t scale = 10;
  std::vector<int64_t> out(5, 0);
  fn(a.data(), &scale, out.data(), nullptr, a.size());
  EXPECT_EQ(out, (std::vector<int64_t>{10, 20, 30, 40, 50}));
}

TEST(PrimitiveRegistryTest, MapKernelHonorsSelectionVector) {
  const auto& reg = PrimitiveRegistry::Instance();
  auto fn = reg.FindMap("map_add_f64_col_f64_col");
  ASSERT_NE(fn, nullptr);
  std::vector<double> a = {1, 2, 3, 4}, b = {10, 20, 30, 40};
  std::vector<double> out = {-1, -1, -1, -1};
  sel_t sel[2] = {1, 3};
  fn(a.data(), b.data(), out.data(), sel, 2);
  EXPECT_EQ(out, (std::vector<double>{-1, 22, -1, 44}));  // untouched elsewhere
}

TEST(PrimitiveRegistryTest, SelectKernelMatchesScalarReference) {
  const auto& reg = PrimitiveRegistry::Instance();
  auto fn = reg.FindSelect("sel_ge_i32_col_i32_val");
  ASSERT_NE(fn, nullptr);
  Rng rng(3);
  std::vector<int32_t> a(300);
  for (auto& v : a) v = static_cast<int32_t>(rng.Uniform(-50, 50));
  int32_t pivot = 7;
  std::vector<sel_t> out(300);
  size_t n = fn(a.data(), &pivot, nullptr, a.size(), out.data());
  size_t expect = 0;
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i] >= pivot) {
      ASSERT_LT(expect, n);
      EXPECT_EQ(out[expect], i);
      expect++;
    }
  }
  EXPECT_EQ(n, expect);
}

TEST(PrimitiveRegistryTest, StringSelectThroughRegistry) {
  const auto& reg = PrimitiveRegistry::Instance();
  auto fn = reg.FindSelect("sel_eq_str_col_str_val");
  ASSERT_NE(fn, nullptr);
  std::string storage[3] = {"foo", "bar", "foo"};
  std::vector<StringVal> col;
  for (const auto& s : storage) col.emplace_back(s);
  StringVal needle(storage[0]);
  std::vector<sel_t> out(3);
  size_t n = fn(col.data(), &needle, nullptr, col.size(), out.data());
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 2u);
}

TEST(PrimitiveRegistryTest, EveryRegisteredMapRunsWithoutCrashing) {
  const auto& reg = PrimitiveRegistry::Instance();
  // Smoke-drive all 110 primitives through the erased interface with benign
  // operands (value 1 avoids div-by-zero).
  std::vector<int64_t> i64a(64, 6), i64b(64, 1), i64o(64);
  std::vector<double> f64a(64, 6.0), f64b(64, 1.0), f64o(64);
  std::vector<uint8_t> u8a(64, 1), u8b(64, 1);
  std::vector<int32_t> i32a(64, 2), i32b(64, 2);
  std::string s = "x";
  std::vector<StringVal> stra(64, StringVal(s)), strb(64, StringVal(s));
  std::vector<sel_t> out_sel(64);
  std::vector<uint32_t> codes(64, 1);
  uint32_t code_val = 1;
  std::vector<uint32_t> run_starts = {0, 32, 64};
  for (const auto& name : reg.Names()) {
    if (name.find("_dict_") != std::string::npos) {
      auto fn = reg.FindEncSelect(name);
      ASSERT_NE(fn, nullptr) << name;
      size_t n = fn(codes.data(), &code_val, nullptr, 64, out_sel.data());
      EXPECT_LE(n, 64u) << name;
      continue;
    }
    if (name.find("_rle_") != std::string::npos) {
      auto fn = reg.FindEncSelect(name);
      ASSERT_NE(fn, nullptr) << name;
      RleColView view{nullptr, run_starts.data(), 2};
      const void* b = nullptr;
      if (name.find("_u8_") != std::string::npos) {
        view.run_values = u8a.data();
        b = u8b.data();
      } else if (name.find("_i32_") != std::string::npos) {
        view.run_values = i32a.data();
        b = i32b.data();
      } else if (name.find("_i64_") != std::string::npos) {
        view.run_values = i64a.data();
        b = i64b.data();
      } else {
        view.run_values = f64a.data();
        b = f64b.data();
      }
      size_t n = fn(&view, b, nullptr, 64, out_sel.data());
      EXPECT_LE(n, 64u) << name;
      continue;
    }
    if (name.rfind("map_", 0) == 0) {
      auto fn = reg.FindMap(name);
      ASSERT_NE(fn, nullptr) << name;
      if (name.find("_i64_") != std::string::npos) {
        fn(i64a.data(), i64b.data(), i64o.data(), nullptr, 64);
      } else {
        fn(f64a.data(), f64b.data(), f64o.data(), nullptr, 64);
      }
    } else {
      auto fn = reg.FindSelect(name);
      ASSERT_NE(fn, nullptr) << name;
      const void* a = nullptr;
      const void* b = nullptr;
      if (name.find("_u8_") != std::string::npos) {
        a = u8a.data();
        b = u8b.data();
      } else if (name.find("_i32_") != std::string::npos) {
        a = i32a.data();
        b = i32b.data();
      } else if (name.find("_i64_") != std::string::npos) {
        a = i64a.data();
        b = i64b.data();
      } else if (name.find("_f64_") != std::string::npos) {
        a = f64a.data();
        b = f64b.data();
      } else {
        a = stra.data();
        b = strb.data();
      }
      size_t n = fn(a, b, nullptr, 64, out_sel.data());
      EXPECT_LE(n, 64u) << name;
    }
  }
}

}  // namespace
}  // namespace vwise
