#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/failpoint.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/xchg.h"
#include "gtest/gtest.h"
#include "service/session.h"
#include "storage/spill_file.h"

namespace vwise {
namespace {

namespace fs = std::filesystem;

// Spill-to-disk coverage: pipeline breakers degrading gracefully under
// per-query memory budgets (external sort, radix-partitioned hash join and
// aggregation), the budget-accounting regressions that rode along
// (offset+limit size_t wrap in Sort, reserve-after-insert in HashAgg,
// build_rows_ surviving re-execution in HashJoin), spill failpoint
// injection, and temp-file lifecycle.

// Parks deliberately-abandoned objects in a static sink so LeakSanitizer
// sees them as reachable: a simulated crash must run no destructors (that is
// what the recovery assertions are about), but the bytes are not "lost".
void AbandonAfterSimulatedCrash(void* p) {
  static std::vector<void*>* sink = new std::vector<void*>();
  sink->push_back(p);
}

// Counts regular files under `base`, recursively. 0 for a missing dir.
size_t CountSpillFiles(const std::string& base) {
  std::error_code ec;
  size_t n = 0;
  fs::recursive_directory_iterator it(base, ec), end;
  if (ec) return 0;
  for (; it != end; ++it) {
    if (it->is_regular_file()) n++;
  }
  return n;
}

class SpillTest : public ::testing::Test {
 protected:
  static constexpr int64_t kLRows = 4000;
  static constexpr int64_t kORows = 1200;

  void SetUp() override {
    failpoint::DisarmAll();
    dir_ = ::testing::TempDir() + "/vwise_spill_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    fs::remove_all(dir_);
    config_.vector_size = 64;
    config_.stripe_rows = 512;
    auto db = Database::Open(dir_, config_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    // "l": lineitem-shaped. l_key unique (join/build key and a unique sort
    // tiebreaker), l_grp a low-cardinality string, l_qty / l_price numeric.
    TableSchema l("l", {ColumnDef("l_key", DataType::Int64()),
                        ColumnDef("l_grp", DataType::Varchar()),
                        ColumnDef("l_qty", DataType::Int64()),
                        ColumnDef("l_price", DataType::Double())});
    ASSERT_TRUE(db_->CreateTable(l).ok());
    ASSERT_TRUE(db_->BulkLoad("l", [](TableWriter* w) -> Status {
      for (int64_t i = 0; i < kLRows; i++) {
        VWISE_RETURN_IF_ERROR(w->AppendRow(
            {Value::Int(i), Value::String("g" + std::to_string(i % 7)),
             Value::Int(i % 50),
             Value::Double(static_cast<double>(i % 97) * 1.5)}));
      }
      return Status::OK();
    }).ok());
    // "o": orders-shaped probe side; keys stride past kLRows so outer and
    // anti joins see both matched and unmatched probe rows.
    TableSchema o("o", {ColumnDef("o_key", DataType::Int64()),
                        ColumnDef("o_prio", DataType::Int64())});
    ASSERT_TRUE(db_->CreateTable(o).ok());
    ASSERT_TRUE(db_->BulkLoad("o", [](TableWriter* w) -> Status {
      for (int64_t i = 0; i < kORows; i++) {
        VWISE_RETURN_IF_ERROR(
            w->AppendRow({Value::Int(i * 5), Value::Int(i % 3)}));
      }
      return Status::OK();
    }).ok());
  }

  void TearDown() override {
    failpoint::DisarmAll();
    db_.reset();
    fs::remove_all(dir_);
  }

  std::string SpillBase() const { return dir_ + "/spill"; }

  // Runs `build` twice through one session: unlimited budget (baseline) and
  // under `budget`. Asserts the budgeted run spilled, stayed within budget,
  // and produced bit-identical rows; returns the budgeted result.
  QueryResult RunAndCompare(PlanBuilder* plan, Session* session,
                            size_t budget) {
    auto prepared = session->Prepare(plan);
    EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
    Result<QueryResult> base = (*prepared)->Run();
    EXPECT_TRUE(base.ok()) << base.status().ToString();
    EXPECT_EQ(base->spill_bytes_written, 0u)
        << "baseline run must stay in memory — lower the working set";
    QueryOptions opt;
    opt.memory_budget_bytes = budget;
    Result<QueryResult> budgeted = (*prepared)->Run(opt);
    EXPECT_TRUE(budgeted.ok()) << budgeted.status().ToString();
    if (!base.ok() || !budgeted.ok()) return {};
    EXPECT_GT(budgeted->spill_bytes_written, 0u)
        << "budget " << budget << " did not force a spill";
    EXPECT_LE(budgeted->peak_reserved_bytes, budget);
    EXPECT_EQ(base->rows.size(), budgeted->rows.size());
    if (base->rows.size() == budgeted->rows.size()) {
      for (size_t i = 0; i < base->rows.size(); i++) {
        EXPECT_EQ(base->rows[i], budgeted->rows[i]) << "row " << i;
      }
    }
    // Spill scratch is torn down eagerly when the breakers close.
    EXPECT_EQ(CountSpillFiles(SpillBase()), 0u);
    return std::move(*budgeted);
  }

  Config config_;
  std::string dir_;
  std::unique_ptr<Database> db_;
};

// --- accounting-bug regressions ---------------------------------------------

// offset_ + limit_ used to be added raw in ConsumeAndSort ("want") and
// Next ("end"); with limit near SIZE_MAX and a nonzero offset the sum
// wrapped to a tiny value and the sort silently emitted nothing.
TEST_F(SpillTest, SortOffsetPlusLimitDoesNotWrap) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {0}).ok());
  q.Sort({SortKey{0, true}}, /*limit=*/SIZE_MAX - 2, /*offset=*/5);
  auto r = session->Query(&q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), static_cast<size_t>(kLRows - 5));
  EXPECT_EQ(r->rows.front()[0].AsInt(), 5);
  EXPECT_EQ(r->rows.back()[0].AsInt(), kLRows - 1);
}

// HashAgg used to reserve group memory only AFTER ProcessChunk had already
// inserted the groups, so the table could overrun the budget untracked.
// With the worst-case pre-reserve the overrun is caught up front and turns
// into a spill: total spilled state far exceeds the budget while the
// reservation high-water mark never does.
TEST_F(SpillTest, AggReservesWorstCaseBeforeInsertion) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {0, 2}).ok());
  q.Agg({0}, {AggSpec::Sum(1)}, {DataType::Int64(), DataType::Int64()});
  q.Sort({SortKey{0, true}});
  constexpr size_t kBudget = 64 << 10;
  QueryResult r = RunAndCompare(&q, session.get(), kBudget);
  // ~4000 groups of state on disk: the table contents alone exceeded the
  // budget, which only a reserve-before-insert protocol can catch in time.
  EXPECT_GT(r.spill_bytes_written, kBudget);
}

// build_rows_ survived Close() and was never reset by OpenImpl, so the
// second execution of a prepared join indexed a rebuilt (smaller) build
// store with the stale doubled row count.
TEST_F(SpillTest, PreparedJoinReExecutesBitIdentically) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("o", {0, 1}).ok());
  PlanBuilder build = session->NewPlan();
  ASSERT_TRUE(build.Scan("l", {0, 2}).ok());
  q.Join(std::move(build), JoinType::kInner, {0}, {0}, {1});
  q.Sort({SortKey{0, true}});
  auto prepared = session->Prepare(&q);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  Result<QueryResult> first = (*prepared)->Run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->rows.size(), 800u);  // o keys 0,5,..,3995 hit l's 0..3999
  Result<QueryResult> second = (*prepared)->Run();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(first->rows.size(), second->rows.size());
  for (size_t i = 0; i < first->rows.size(); i++) {
    EXPECT_EQ(first->rows[i], second->rows[i]) << "row " << i;
  }
}

TEST_F(SpillTest, PreparedSortWithLimitReExecutesBitIdentically) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {2, 0}).ok());
  q.Sort({SortKey{0, false}, SortKey{1, true}}, /*limit=*/50, /*offset=*/10);
  auto prepared = session->Prepare(&q);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  Result<QueryResult> first = (*prepared)->Run();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->rows.size(), 50u);
  Result<QueryResult> second = (*prepared)->Run();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  for (size_t i = 0; i < first->rows.size(); i++) {
    EXPECT_EQ(first->rows[i], second->rows[i]) << "row " << i;
  }
}

// --- spill-path bit-identity (TPC-H-shaped plans) ----------------------------

// Q1 shape: scan -> filter -> grouped aggregation (string group key, sum /
// avg / min / max / count) -> sort. Budget ~1/8 of the in-memory working
// set: the agg radix-spills, the sort runs externally, and the final rows
// must come out bit-identical (the sort key is a unique total order).
TEST_F(SpillTest, Q1ShapeBitIdenticalUnderBudget) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {1, 0, 2, 3}).ok());
  q.Select(e::Lt(q.Col(2), e::I64(48)));
  // Group by (l_grp, l_key): 7 * kLRows-ish distinct groups, string keys.
  q.Agg({0, 1},
        {AggSpec::Sum(2), AggSpec::Avg(3), AggSpec::Min(3), AggSpec::Max(2),
         AggSpec::CountStar()},
        {DataType::Varchar(), DataType::Int64(), DataType::Int64(),
         DataType::Double(), DataType::Double(), DataType::Int64(),
         DataType::Int64()});
  q.Sort({SortKey{0, true}, SortKey{1, true}});
  // ~1/8 of the in-memory working set (the agg state alone is ~360KB), but
  // enough headroom for one reloaded radix partition plus its table.
  RunAndCompare(&q, session.get(), /*budget=*/128 << 10);
}

// Q6 shape: scan -> filter -> ungrouped aggregation. The global aggregate
// never spills (one group), so this pins the budget path around it: the
// f64 sum must be bit-identical because input order never changes.
TEST_F(SpillTest, Q6ShapeBitIdenticalUnderBudget) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {2, 3, 0}).ok());
  q.Select(e::Lt(q.Col(0), e::I64(25)));
  q.Agg({}, {AggSpec::Sum(1), AggSpec::CountStar()},
        {DataType::Double(), DataType::Int64()});
  // An ungrouped agg under any budget stays in memory; drive the spill from
  // a sort below it instead to keep the shape end-to-end spilling.
  auto prepared = session->Prepare(&q);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  Result<QueryResult> base = (*prepared)->Run();
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  QueryOptions opt;
  opt.memory_budget_bytes = 16 << 10;
  Result<QueryResult> budgeted = (*prepared)->Run(opt);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  ASSERT_EQ(base->rows.size(), 1u);
  ASSERT_EQ(budgeted->rows.size(), 1u);
  EXPECT_EQ(base->rows[0], budgeted->rows[0]);
}

// Q3 shape: join -> grouped aggregation -> sort, everything under budget at
// once. Join partitions preserve within-partition probe order and a group's
// rows never straddle partitions (same key => same hash => same partition),
// so the f64 aggregate of every group adds in the same order and the final
// sorted rows are bit-identical.
TEST_F(SpillTest, Q3ShapeBitIdenticalUnderBudget) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("o", {0, 1}).ok());
  PlanBuilder build = session->NewPlan();
  ASSERT_TRUE(build.Scan("l", {0, 3}).ok());
  q.Join(std::move(build), JoinType::kInner, {0}, {0}, {1});
  q.Agg({0, 1}, {AggSpec::Sum(2), AggSpec::CountStar()},
        {DataType::Int64(), DataType::Int64(), DataType::Double(),
         DataType::Int64()});
  q.Sort({SortKey{0, true}, SortKey{1, true}});
  // Three stacked breakers share this budget; the join's partition reload
  // needs headroom next to the capped agg and sort buffers.
  RunAndCompare(&q, session.get(), /*budget=*/48 << 10);
}

// The join's own spill: inner join with string payload under a budget far
// below the build side. Sorted by the unique probe key, the spilled run
// must match the in-memory run row for row.
TEST_F(SpillTest, JoinSpillBitIdentical) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("o", {0, 1}).ok());
  PlanBuilder build = session->NewPlan();
  ASSERT_TRUE(build.Scan("l", {0, 1, 3}).ok());
  q.Join(std::move(build), JoinType::kInner, {0}, {0}, {1, 2});
  q.Sort({SortKey{0, true}});
  RunAndCompare(&q, session.get(), /*budget=*/64 << 10);
}

TEST_F(SpillTest, LeftOuterJoinSpillBitIdentical) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("o", {0, 1}).ok());
  PlanBuilder build = session->NewPlan();
  ASSERT_TRUE(build.Scan("l", {0, 1}).ok());
  q.Join(std::move(build), JoinType::kLeftOuter, {0}, {0}, {1});
  q.Sort({SortKey{0, true}});
  QueryResult r = RunAndCompare(&q, session.get(), /*budget=*/40 << 10);
  // Probe keys stride to 5995; l stops at 3999, so the tail rows are
  // unmatched and zero-padded with the match flag down.
  ASSERT_EQ(r.rows.size(), static_cast<size_t>(kORows));
}

TEST_F(SpillTest, SemiAndAntiJoinSpillBitIdentical) {
  auto session = db_->Connect();
  for (JoinType type : {JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    SCOPED_TRACE(static_cast<int>(type));
    PlanBuilder q = session->NewPlan();
    ASSERT_TRUE(q.Scan("o", {0, 1}).ok());
    PlanBuilder build = session->NewPlan();
    ASSERT_TRUE(build.Scan("l", {0}).ok());
    q.Join(std::move(build), type, {0}, {0});
    q.Sort({SortKey{0, true}});
    QueryResult r = RunAndCompare(&q, session.get(), /*budget=*/24 << 10);
    // o keys 0,5,...: 800 land inside l's 0..3999, 400 beyond it.
    ASSERT_EQ(r.rows.size(), type == JoinType::kLeftSemi ? 800u : 400u);
  }
}

// The external sort alone, with a string column in flight and a unique
// total order.
TEST_F(SpillTest, ExternalSortBitIdentical) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {2, 1, 0}).ok());
  q.Sort({SortKey{0, false}, SortKey{2, true}});
  RunAndCompare(&q, session.get(), /*budget=*/24 << 10);
}

TEST_F(SpillTest, ExternalSortHonorsLimitAndOffset) {
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {2, 0}).ok());
  q.Sort({SortKey{0, true}, SortKey{1, false}}, /*limit=*/100, /*offset=*/37);
  QueryResult r = RunAndCompare(&q, session.get(), /*budget=*/24 << 10);
  ASSERT_EQ(r.rows.size(), 100u);
}

// EXPLAIN ANALYZE surfaces the degradation: per-node spill annotations plus
// the query-level byte totals.
TEST_F(SpillTest, ExplainAnalyzeShowsSpill) {
  Config cfg = config_;
  cfg.profile = true;
  auto db = Database::Open(dir_ + "_prof", cfg);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  TableSchema t("t", {ColumnDef("k", DataType::Int64()),
                      ColumnDef("v", DataType::Int64())});
  ASSERT_TRUE((*db)->CreateTable(t).ok());
  ASSERT_TRUE((*db)->BulkLoad("t", [](TableWriter* w) -> Status {
    for (int64_t i = 0; i < 4000; i++) {
      VWISE_RETURN_IF_ERROR(w->AppendRow({Value::Int(i), Value::Int(i % 9)}));
    }
    return Status::OK();
  }).ok());
  auto session = (*db)->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("t", {0, 1}).ok());
  q.Agg({0}, {AggSpec::Sum(1)}, {DataType::Int64(), DataType::Int64()});
  q.Sort({SortKey{0, true}});
  auto prepared = session->Prepare(&q);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  QueryOptions opt;
  // Half of this budget must cover one reloaded agg partition (~24KB for
  // 4000 unique groups over 8 partitions) beside the capped sort buffer.
  opt.memory_budget_bytes = 64 << 10;
  auto handle = (*prepared)->Execute(opt);
  const Result<QueryResult>& r = handle->Wait();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->spill_bytes_written, 0u);
  const std::string& profile = handle->profile();
  EXPECT_NE(profile.find("spill_partitions="), std::string::npos) << profile;
  EXPECT_NE(profile.find("spill_runs="), std::string::npos) << profile;
  EXPECT_NE(profile.find("spill: bytes_written="), std::string::npos)
      << profile;
  // Unbudgeted, the same plan reports no spill lines.
  auto clean = (*prepared)->Execute();
  ASSERT_TRUE(clean->Wait().ok());
  EXPECT_EQ(clean->profile().find("spill"), std::string::npos)
      << clean->profile();
  session.reset();
  db->reset();
  fs::remove_all(dir_ + "_prof");
}

// --- recursive repartitioning -----------------------------------------------

// Sorts rows by their (unique, integer) first column: spilled output is
// partition-major, so comparisons against an in-memory baseline need a
// canonical order that doesn't depend on partitioning shape.
void SortRowsByFirstCol(std::vector<std::vector<Value>>* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              return a[0].AsInt() < b[0].AsInt();
            });
}

// A budget small enough that a level-0 partition's build side alone overruns
// it forces the join to re-partition recursively. With spill_partitions=2
// every level halves the partition, so the first one or two halvings still
// do not fit and the join must go depth >= 2 — exactly the shape that used
// to die with ResourceExhausted when one grace level was all there was.
TEST_F(SpillTest, JoinRepartitionsOversizedPartitionBeyondDepth2) {
  Config cfg = config_;
  cfg.spill_partitions = 2;
  cfg.spill_max_repartition_depth = 6;
  auto snap_l = db_->Internals().tm->GetSnapshot("l");
  ASSERT_TRUE(snap_l.ok());
  auto snap_o = db_->Internals().tm->GetSnapshot("o");
  ASSERT_TRUE(snap_o.ok());
  auto make_join = [&]() -> OperatorPtr {
    HashJoinOperator::Spec spec;
    spec.probe_keys = {0};
    spec.build_keys = {0};
    spec.build_payload = {1};
    return std::make_unique<HashJoinOperator>(
        std::make_unique<ScanOperator>(*snap_o, std::vector<uint32_t>{0, 1},
                                       cfg),
        std::make_unique<ScanOperator>(*snap_l, std::vector<uint32_t>{0, 2},
                                       cfg),
        std::move(spec), cfg);
  };
  // Baseline: unconstrained, in memory.
  OperatorPtr base_op = make_join();
  QueryContext base_ctx;
  Result<QueryResult> base = CollectRows(base_op.get(), &base_ctx,
                                         cfg.vector_size);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_EQ(base->rows.size(), 800u);

  OperatorPtr op = make_join();
  auto* join = static_cast<HashJoinOperator*>(op.get());
  QueryContext ctx;
  ctx.set_memory_budget(8 << 10);  // far below one half of the build side
  ctx.set_spill_dir(SpillBase());
  Result<QueryResult> r = CollectRows(op.get(), &ctx, cfg.vector_size);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(join->spill_repartition_depth(), 2u)
      << "budget fit after " << join->spill_repartitions()
      << " repartitions — tighten it";
  EXPECT_GE(join->spill_repartitions(), 2u);
  SortRowsByFirstCol(&base->rows);
  SortRowsByFirstCol(&r->rows);
  ASSERT_EQ(base->rows.size(), r->rows.size());
  for (size_t i = 0; i < base->rows.size(); i++) {
    EXPECT_EQ(base->rows[i], r->rows[i]) << "row " << i;
  }
  op->Close();
  EXPECT_EQ(ctx.reserved_bytes(), 0u);
  EXPECT_EQ(CountSpillFiles(SpillBase()), 0u);
}

// The aggregation-side twin: one partition's merged groups alone exceed the
// budget, so the emit phase splits it onto fresh radix levels until each
// child's group set fits.
TEST_F(SpillTest, AggRepartitionsOversizedPartitionBeyondDepth2) {
  Config cfg = config_;
  cfg.spill_partitions = 2;
  cfg.spill_max_repartition_depth = 6;
  auto snap = db_->Internals().tm->GetSnapshot("l");
  ASSERT_TRUE(snap.ok());
  auto make_agg = [&]() -> OperatorPtr {
    return std::make_unique<HashAggOperator>(
        std::make_unique<ScanOperator>(*snap, std::vector<uint32_t>{0, 2},
                                       cfg),
        std::vector<size_t>{0}, std::vector<AggSpec>{AggSpec::Sum(1)}, cfg);
  };
  OperatorPtr base_op = make_agg();
  QueryContext base_ctx;
  Result<QueryResult> base = CollectRows(base_op.get(), &base_ctx,
                                         cfg.vector_size);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_EQ(base->rows.size(), static_cast<size_t>(kLRows));

  OperatorPtr op = make_agg();
  auto* agg = static_cast<HashAggOperator*>(op.get());
  QueryContext ctx;
  ctx.set_memory_budget(8 << 10);  // ~2000 groups per level-0 partition
  ctx.set_spill_dir(SpillBase());
  Result<QueryResult> r = CollectRows(op.get(), &ctx, cfg.vector_size);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(agg->spill_repartition_depth(), 2u)
      << "budget fit after " << agg->spill_repartitions()
      << " repartitions — tighten it";
  SortRowsByFirstCol(&base->rows);
  SortRowsByFirstCol(&r->rows);
  ASSERT_EQ(base->rows.size(), r->rows.size());
  for (size_t i = 0; i < base->rows.size(); i++) {
    EXPECT_EQ(base->rows[i], r->rows[i]) << "row " << i;
  }
  op->Close();
  EXPECT_EQ(ctx.reserved_bytes(), 0u);
  EXPECT_EQ(CountSpillFiles(SpillBase()), 0u);
}

// The depth bound is a real guard: identical keys hash identically at every
// level, so no amount of re-partitioning can split a one-key flood. The
// query must fail with ResourceExhausted once the bound is hit — not loop.
TEST_F(SpillTest, DuplicateKeyFloodExhaustsDepthBoundCleanly) {
  Config cfg = config_;
  cfg.spill_partitions = 2;
  cfg.spill_max_repartition_depth = 2;
  TableSchema dup("dup", {ColumnDef("k", DataType::Int64()),
                          ColumnDef("v", DataType::Int64())});
  ASSERT_TRUE(db_->CreateTable(dup).ok());
  ASSERT_TRUE(db_->BulkLoad("dup", [](TableWriter* w) -> Status {
    for (int64_t i = 0; i < 4000; i++) {
      VWISE_RETURN_IF_ERROR(w->AppendRow({Value::Int(7), Value::Int(i)}));
    }
    return Status::OK();
  }).ok());
  auto snap = db_->Internals().tm->GetSnapshot("dup");
  ASSERT_TRUE(snap.ok());
  HashJoinOperator::Spec spec;
  spec.probe_keys = {0};
  spec.build_keys = {0};
  spec.build_payload = {1};
  HashJoinOperator join(
      std::make_unique<ScanOperator>(*snap, std::vector<uint32_t>{0}, cfg),
      std::make_unique<ScanOperator>(*snap, std::vector<uint32_t>{0, 1}, cfg),
      std::move(spec), cfg);
  QueryContext ctx;
  ctx.set_memory_budget(8 << 10);
  ctx.set_spill_dir(SpillBase());
  Result<QueryResult> r = CollectRows(&join, &ctx, cfg.vector_size);
  ASSERT_FALSE(r.ok()) << "a 4000^2-row one-key join fit in 8KB?";
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_EQ(join.spill_repartition_depth(), 2u);  // bound reached, then fail
  join.Close();
  EXPECT_EQ(ctx.reserved_bytes(), 0u);
  EXPECT_EQ(CountSpillFiles(SpillBase()), 0u);
}

// --- budget exhaustion with spilling disabled --------------------------------

// Every breaker's Grow/Reserve site fails cleanly when spilling is off: the
// query reports ResourceExhausted, the context drains to zero reserved
// bytes, and the tree can be re-run within the same process.
TEST_F(SpillTest, BudgetExhaustionSweepFailsCleanWithoutSpill) {
  Config cfg = config_;
  cfg.enable_spill = false;
  auto snap_l = db_->Internals().tm->GetSnapshot("l");
  ASSERT_TRUE(snap_l.ok());
  auto snap_o = db_->Internals().tm->GetSnapshot("o");
  ASSERT_TRUE(snap_o.ok());

  struct Case {
    const char* name;
    size_t budget;
    std::function<OperatorPtr()> make;
  };
  const Case cases[] = {
      {"join build", 2048,
       [&]() -> OperatorPtr {
         HashJoinOperator::Spec spec;
         spec.probe_keys = {0};
         spec.build_keys = {0};
         spec.build_payload = {1};
         return std::make_unique<HashJoinOperator>(
             std::make_unique<ScanOperator>(*snap_o,
                                            std::vector<uint32_t>{0}, cfg),
             std::make_unique<ScanOperator>(
                 *snap_l, std::vector<uint32_t>{0, 2}, cfg),
             std::move(spec), cfg);
       }},
      {"agg groups", 2048,
       [&]() -> OperatorPtr {
         return std::make_unique<HashAggOperator>(
             std::make_unique<ScanOperator>(*snap_l,
                                            std::vector<uint32_t>{0, 2}, cfg),
             std::vector<size_t>{0},
             std::vector<AggSpec>{AggSpec::Sum(1)}, cfg);
       }},
      {"sort buffer", 2048,
       [&]() -> OperatorPtr {
         return std::make_unique<SortOperator>(
             std::make_unique<ScanOperator>(*snap_l,
                                            std::vector<uint32_t>{0, 2}, cfg),
             std::vector<SortKey>{SortKey{0, false}}, cfg);
       }},
      // Below one chunk's footprint: the very first PushChunk reservation
      // fails regardless of how fast the consumer drains the queue.
      {"xchg queue", 256,
       [&]() -> OperatorPtr {
         auto factory = [snap = *snap_l, cfg](int, int) -> Result<OperatorPtr> {
           return OperatorPtr(std::make_unique<ScanOperator>(
               snap, std::vector<uint32_t>{0}, cfg));
         };
         return std::make_unique<XchgOperator>(
             factory, 2, std::vector<TypeId>{TypeId::kI64}, cfg);
       }},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    QueryContext ctx;
    ctx.set_memory_budget(c.budget);
    ctx.set_spill_dir(SpillBase());
    OperatorPtr op = c.make();
    Result<QueryResult> r = CollectRows(op.get(), &ctx, cfg.vector_size);
    ASSERT_FALSE(r.ok()) << c.name << " finished under a tiny budget";
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << r.status().ToString();
    EXPECT_EQ(ctx.reserved_bytes(), 0u)
        << c.name << " leaked reservation on unwind";
    // Spilling was off: nothing may have touched disk.
    EXPECT_EQ(ctx.spill_counters().bytes_written.load(), 0u);
    // The same tree runs to completion once the budget pressure is gone.
    QueryContext roomy;
    Result<QueryResult> ok = CollectRows(op.get(), &roomy, cfg.vector_size);
    EXPECT_TRUE(ok.ok()) << c.name << ": " << ok.status().ToString();
  }
  // A budget-failed query never poisons its session either.
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {0}).ok());
  q.Sort({SortKey{0, true}});
  auto r = session->Query(&q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), static_cast<size_t>(kLRows));
}

// Even with spilling ON, a budget too small for a single partition /
// vector's worth of state must fail with ResourceExhausted — and still
// unwind clean, deleting whatever scratch it had created.
TEST_F(SpillTest, ImpossiblyTightBudgetFailsCleanEvenWithSpill) {
  QueryContext ctx;
  ctx.set_memory_budget(256);  // below one chunk of sort input
  ctx.set_spill_dir(SpillBase());
  auto snap = db_->Internals().tm->GetSnapshot("l");
  ASSERT_TRUE(snap.ok());
  SortOperator sort(std::make_unique<ScanOperator>(
                        *snap, std::vector<uint32_t>{0, 1}, config_),
                    {SortKey{0, true}}, config_);
  Result<QueryResult> r = CollectRows(&sort, &ctx, config_.vector_size);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_EQ(ctx.reserved_bytes(), 0u);
  EXPECT_EQ(CountSpillFiles(SpillBase()), 0u);
}

// --- spill file format + failpoints ------------------------------------------

TEST_F(SpillTest, SpillPartitionCountClampsToPowerOfTwo) {
  EXPECT_EQ(SpillPartitionCount(0), 2u);
  EXPECT_EQ(SpillPartitionCount(1), 2u);
  EXPECT_EQ(SpillPartitionCount(2), 2u);
  EXPECT_EQ(SpillPartitionCount(3), 4u);
  EXPECT_EQ(SpillPartitionCount(8), 8u);
  EXPECT_EQ(SpillPartitionCount(100), 128u);
  EXPECT_EQ(SpillPartitionCount(100000), 256u);
}

TEST_F(SpillTest, WriterReaderRoundTripsSelectionsAndStrings) {
  fs::create_directories(SpillBase());
  std::string path = SpillBase() + "/unit-0.spill";
  std::vector<TypeId> types = {TypeId::kI64, TypeId::kStr, TypeId::kF64};
  QueryContext::SpillCounters counters;
  auto writer = SpillWriter::Create(path, types, &counters);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  DataChunk chunk;
  chunk.Init(types, 8);
  StringHeap* heap = chunk.column(1).GetStringHeap();
  for (size_t i = 0; i < 8; i++) {
    chunk.column(0).Data<int64_t>()[i] = static_cast<int64_t>(i) * 11;
    chunk.column(1).Data<StringVal>()[i] =
        heap->Add("row" + std::to_string(i));
    chunk.column(2).Data<double>()[i] = static_cast<double>(i) * 0.25;
  }
  chunk.SetCount(8);
  // Block 1: dense. Block 2: every other row via the selection vector.
  ASSERT_TRUE((*writer)->Append(chunk).ok());
  sel_t* sel = chunk.MutableSel();
  for (size_t i = 0; i < 4; i++) sel[i] = static_cast<sel_t>(i * 2);
  chunk.SetSelection(4);
  ASSERT_TRUE((*writer)->Append(chunk).ok());
  EXPECT_EQ((*writer)->rows_written(), 12u);
  writer->reset();  // close before reading

  auto reader = SpillReader::Open(path, types, &counters);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  DataChunk out;
  out.Init(types, 8);
  auto more = (*reader)->Next(&out);
  ASSERT_TRUE(more.ok() && *more);
  ASSERT_EQ(out.count(), 8u);
  for (size_t i = 0; i < 8; i++) {
    EXPECT_EQ(out.column(0).Data<int64_t>()[i], static_cast<int64_t>(i) * 11);
    EXPECT_EQ(out.column(1).Data<StringVal>()[i].view(),
              "row" + std::to_string(i));
    EXPECT_EQ(out.column(2).Data<double>()[i], static_cast<double>(i) * 0.25);
  }
  more = (*reader)->Next(&out);
  ASSERT_TRUE(more.ok() && *more);
  ASSERT_EQ(out.count(), 4u);
  for (size_t i = 0; i < 4; i++) {
    EXPECT_EQ(out.column(0).Data<int64_t>()[i],
              static_cast<int64_t>(i) * 22);
    EXPECT_EQ(out.column(1).Data<StringVal>()[i].view(),
              "row" + std::to_string(i * 2));
  }
  more = (*reader)->Next(&out);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);  // EOF
  EXPECT_GT(counters.bytes_written.load(), 0u);
  EXPECT_GT(counters.bytes_read.load(), 0u);
}

TEST_F(SpillTest, ReaderRejectsFlippedBytes) {
  fs::create_directories(SpillBase());
  std::string path = SpillBase() + "/corrupt-0.spill";
  std::vector<TypeId> types = {TypeId::kI64};
  auto writer = SpillWriter::Create(path, types, nullptr);
  ASSERT_TRUE(writer.ok());
  DataChunk chunk;
  chunk.Init(types, 4);
  for (size_t i = 0; i < 4; i++) {
    chunk.column(0).Data<int64_t>()[i] = static_cast<int64_t>(i);
  }
  chunk.SetCount(4);
  ASSERT_TRUE((*writer)->Append(chunk).ok());
  writer->reset();
  // Flip one payload byte on disk; the block CRC must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-6, std::ios::end);
    char b;
    f.seekg(-6, std::ios::end);
    f.get(b);
    f.seekp(-6, std::ios::end);
    f.put(static_cast<char>(b ^ 0x40));
  }
  auto reader = SpillReader::Open(path, types, nullptr);
  ASSERT_TRUE(reader.ok());
  DataChunk out;
  out.Init(types, 4);
  auto more = (*reader)->Next(&out);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kCorruption)
      << more.status().ToString();
}

// Deterministic fault sweep over the spill I/O sites: every injected error
// surfaces as a clean query failure (no crash, no leaked reservation), and
// the scratch files disappear with the query context.
TEST_F(SpillTest, FailpointSweepOverSpillSites) {
  auto snap = db_->Internals().tm->GetSnapshot("l");
  ASSERT_TRUE(snap.ok());
  struct Fault {
    const char* spec;
    StatusCode expect;
  };
  const Fault faults[] = {
      {"spill.create=err", StatusCode::kIOError},
      {"spill.append=err", StatusCode::kIOError},
      {"spill.append=torn:7,nth:3", StatusCode::kIOError},
      {"spill.open=err", StatusCode::kIOError},
      {"spill.read=err", StatusCode::kIOError},
      {"spill.read=corrupt,nth:2", StatusCode::kCorruption},
  };
  for (const Fault& f : faults) {
    SCOPED_TRACE(f.spec);
    ASSERT_TRUE(failpoint::Arm(f.spec).ok());
    {
      QueryContext ctx;
      ctx.set_memory_budget(24 << 10);
      ctx.set_spill_dir(SpillBase());
      SortOperator sort(std::make_unique<ScanOperator>(
                            *snap, std::vector<uint32_t>{0, 1}, config_),
                        {SortKey{0, true}}, config_);
      Result<QueryResult> r = CollectRows(&sort, &ctx, config_.vector_size);
      ASSERT_FALSE(r.ok()) << f.spec << " did not fire";
      EXPECT_EQ(r.status().code(), f.expect) << r.status().ToString();
      EXPECT_EQ(ctx.reserved_bytes(), 0u);
    }
    failpoint::DisarmAll();
    // ~QueryContext removed the per-query scratch directory.
    EXPECT_EQ(CountSpillFiles(SpillBase()), 0u);
  }
  // Short transfers are absorbed by the I/O retry loops: the spilled query
  // must still succeed, bit-identically.
  ASSERT_TRUE(failpoint::Arm("spill.read=short:5;spill.append=short:5").ok());
  {
    QueryContext ctx;
    ctx.set_memory_budget(24 << 10);
    ctx.set_spill_dir(SpillBase());
    SortOperator sort(std::make_unique<ScanOperator>(
                          *snap, std::vector<uint32_t>{0, 1}, config_),
                      {SortKey{0, true}}, config_);
    Result<QueryResult> r = CollectRows(&sort, &ctx, config_.vector_size);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows.size(), static_cast<size_t>(kLRows));
    EXPECT_GT(ctx.spill_counters().bytes_written.load(), 0u);
  }
  failpoint::DisarmAll();
}

// --- temp-file lifecycle ------------------------------------------------------

// A crash mid-spill leaks the per-query scratch (by design: nothing runs
// after SIGKILL); the next Database::Open sweeps the spill base clean.
TEST_F(SpillTest, CrashMidSpillIsSweptOnReopen) {
  auto snap = db_->Internals().tm->GetSnapshot("l");
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(failpoint::Arm("spill.read=crash").ok());
  // Heap-allocate and abandon both the context and the plan: destructors do
  // not run across a process death, so their cleanup must not either.
  auto* ctx = new QueryContext();
  ctx->set_memory_budget(24 << 10);
  ctx->set_spill_dir(SpillBase());
  auto* sort = new SortOperator(
      std::make_unique<ScanOperator>(*snap, std::vector<uint32_t>{0, 1},
                                     config_),
      std::vector<SortKey>{SortKey{0, true}}, config_);
  bool crashed = false;
  try {
    Result<QueryResult> r = CollectRows(sort, ctx, config_.vector_size);
    (void)r;
  } catch (const SimulatedCrash& c) {
    crashed = true;
    EXPECT_EQ(c.site(), "spill.read");
  }
  ASSERT_TRUE(crashed);
  AbandonAfterSimulatedCrash(ctx);
  AbandonAfterSimulatedCrash(sort);
  failpoint::DisarmAll();
  EXPECT_GT(CountSpillFiles(SpillBase()), 0u) << "crash left no scratch — "
                                                 "the site never spilled";
  // Recovery: reopening the database sweeps the orphaned scratch.
  db_.reset();
  auto db = Database::Open(dir_, config_);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  db_ = std::move(*db);
  EXPECT_EQ(CountSpillFiles(SpillBase()), 0u);
  // And the reopened database still answers the query that "died".
  auto session = db_->Connect();
  PlanBuilder q = session->NewPlan();
  ASSERT_TRUE(q.Scan("l", {0, 1}).ok());
  q.Sort({SortKey{0, true}});
  QueryOptions opt;
  opt.memory_budget_bytes = 24 << 10;
  auto prepared = session->Prepare(&q);
  ASSERT_TRUE(prepared.ok());
  Result<QueryResult> r = (*prepared)->Run(opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), static_cast<size_t>(kLRows));
}

// Cancellation mid-spill unwinds through Close and leaves no scratch.
TEST_F(SpillTest, CancelMidSpillLeavesNoScratch) {
  auto snap = db_->Internals().tm->GetSnapshot("l");
  ASSERT_TRUE(snap.ok());
  QueryContext ctx;
  ctx.set_memory_budget(24 << 10);
  ctx.set_spill_dir(SpillBase());
  SortOperator sort(std::make_unique<ScanOperator>(
                        *snap, std::vector<uint32_t>{0, 1}, config_),
                    {SortKey{0, true}}, config_);
  ASSERT_TRUE(sort.Open(&ctx).ok());
  DataChunk out;
  out.Init(sort.OutputTypes(), config_.vector_size);
  // First Next() consumes the input and spills runs; cancel right after it.
  ASSERT_TRUE(sort.Next(&out).ok());
  EXPECT_GT(sort.spill_runs(), 0u);
  ctx.Cancel();
  Status s = sort.Next(&out);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  sort.Close();
  EXPECT_EQ(ctx.reserved_bytes(), 0u);
  EXPECT_EQ(CountSpillFiles(SpillBase()), 0u);
}

TEST_F(SpillTest, VwiseSpillDirEnvOverridesDefault) {
  // Resolution order is Config::spill_dir, then $VWISE_SPILL_DIR, then the
  // per-database default. The context-level resolution is what embedded
  // (CollectRows) callers hit.
  std::string env_dir = dir_ + "/env_spill";
  ::setenv("VWISE_SPILL_DIR", env_dir.c_str(), 1);
  auto snap = db_->Internals().tm->GetSnapshot("l");
  ASSERT_TRUE(snap.ok());
  {
    QueryContext ctx;  // no set_spill_dir: falls through to the env var
    ctx.set_memory_budget(24 << 10);
    SortOperator sort(std::make_unique<ScanOperator>(
                          *snap, std::vector<uint32_t>{0, 1}, config_),
                      {SortKey{0, true}}, config_);
    DataChunk out;
    out.Init(sort.OutputTypes(), config_.vector_size);
    ASSERT_TRUE(sort.Open(&ctx).ok());
    ASSERT_TRUE(sort.Next(&out).ok());
    EXPECT_GT(sort.spill_runs(), 0u);
    EXPECT_GT(CountSpillFiles(env_dir), 0u);
    sort.Close();
  }
  ::unsetenv("VWISE_SPILL_DIR");
  EXPECT_EQ(CountSpillFiles(env_dir), 0u);
  fs::remove_all(env_dir);
}

}  // namespace
}  // namespace vwise
