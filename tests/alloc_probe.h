#ifndef VWISE_TESTS_ALLOC_PROBE_H_
#define VWISE_TESTS_ALLOC_PROBE_H_

#include <cstdint>

namespace vwise::test {

// Process-wide allocation counters, maintained by the counting global
// operator new/delete replacement in alloc_probe.cc. Linking alloc_probe.cc
// into a test binary routes EVERY C++ heap allocation in the process through
// the counters — no sampling, so a hidden std::make_unique or std::vector
// growth in a per-vector loop cannot slip past.
//
// Intended use is differential: take a snapshot, run the region under test,
// take another, assert on the delta. The counters are monotonically
// increasing relaxed atomics; taking a snapshot allocates nothing. The
// counters are process-global, so run the measured region single-threaded —
// traffic from concurrent threads would be attributed to the region.
struct AllocSnapshot {
  uint64_t allocs;  // operator new / new[] calls, all variants
  uint64_t frees;   // operator delete / delete[] calls, all variants
  uint64_t bytes;   // sum of sizes requested from operator new
};

AllocSnapshot TakeAllocSnapshot();

// Deltas between two snapshots (after - before).
uint64_t AllocsBetween(const AllocSnapshot& before, const AllocSnapshot& after);
uint64_t BytesBetween(const AllocSnapshot& before, const AllocSnapshot& after);

}  // namespace vwise::test

#endif  // VWISE_TESTS_ALLOC_PROBE_H_
