#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "txn/transaction_manager.h"

namespace vwise {
namespace {

using Row = std::vector<Value>;

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/vwise_txn_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    config_.stripe_rows = 64;
    device_ = std::make_unique<IoDevice>(config_);
    buffers_ = std::make_unique<BufferManager>(config_.buffer_pool_bytes);
    ReopenManager();
  }
  void TearDown() override {
    mgr_.reset();
    std::filesystem::remove_all(dir_);
  }

  void ReopenManager() {
    mgr_.reset();
    buffers_->EvictAll();
    auto mgr = TransactionManager::Open(dir_, config_, device_.get(), buffers_.get());
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    mgr_ = std::move(*mgr);
  }

  void CreateAccounts(int64_t n) {
    TableSchema schema("accounts", {ColumnDef("id", DataType::Int64()),
                                    ColumnDef("balance", DataType::Int64()),
                                    ColumnDef("owner", DataType::Varchar())});
    ASSERT_TRUE(mgr_->CreateTable(schema, ColumnGroups::Dsm(3)).ok());
    ASSERT_TRUE(mgr_
                    ->BulkLoad("accounts",
                               [&](TableWriter* w) -> Status {
                                 for (int64_t i = 0; i < n; i++) {
                                   std::string owner = "u";
                                   owner += std::to_string(i);
                                   VWISE_RETURN_IF_ERROR(w->AppendRow(
                                       {Value::Int(i), Value::Int(100),
                                        Value::String(owner)}));
                                 }
                                 return Status::OK();
                               })
                    .ok());
  }

  // Materializes the visible table of a snapshot through the merge scanner.
  std::vector<Row> VisibleRows(const TableSnapshot& snap) {
    std::vector<Row> out;
    size_t n_cols = snap.schema->num_columns();
    Pdt empty;
    const Pdt* pdt = snap.deltas ? snap.deltas.get() : &empty;
    Pdt::MergeScanner scanner(*pdt, snap.stable->row_count());
    Pdt::MergeEvent ev;
    std::vector<DecodedColumn> cols(n_cols);
    size_t cur_stripe = SIZE_MAX;
    auto stable_row = [&](uint64_t sid) {
      size_t stripe = 0;
      while (stripe + 1 < snap.stable->stripe_count() &&
             snap.stable->stripe_first_row(stripe + 1) <= sid) {
        stripe++;
      }
      if (stripe != cur_stripe) {
        for (size_t c = 0; c < n_cols; c++) {
          EXPECT_TRUE(snap.stable
                          ->ReadStripeColumn(stripe, static_cast<uint32_t>(c), &cols[c])
                          .ok());
        }
        cur_stripe = stripe;
      }
      size_t local = sid - snap.stable->stripe_first_row(stripe);
      Row row;
      for (size_t c = 0; c < n_cols; c++) {
        switch (cols[c].type) {
          case TypeId::kI64:
            row.push_back(Value::Int(cols[c].Data<int64_t>()[local]));
            break;
          case TypeId::kStr:
            row.push_back(Value::String(cols[c].Data<StringVal>()[local].ToString()));
            break;
          default:
            row.push_back(Value::Null());
        }
      }
      return row;
    };
    while (scanner.Next(&ev, 1024)) {
      switch (ev.kind) {
        case Pdt::MergeEvent::kStableRun:
          for (uint64_t i = 0; i < ev.count; i++) out.push_back(stable_row(ev.sid + i));
          break;
        case Pdt::MergeEvent::kModifiedRow: {
          Row r = stable_row(ev.sid);
          for (const auto& [col, v] : ev.rec->mods) r[col] = v;
          out.push_back(std::move(r));
          break;
        }
        case Pdt::MergeEvent::kDeletedRow:
          break;
        case Pdt::MergeEvent::kInsertedRow:
          out.push_back(ev.rec->row);
          break;
      }
    }
    return out;
  }

  Config config_;
  std::string dir_;
  std::unique_ptr<IoDevice> device_;
  std::unique_ptr<BufferManager> buffers_;
  std::unique_ptr<TransactionManager> mgr_;
};

TEST_F(TxnTest, CreateAndSnapshot) {
  CreateAccounts(10);
  auto snap = mgr_->GetSnapshot("accounts");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->visible_rows(), 10u);
  EXPECT_EQ(VisibleRows(*snap).size(), 10u);
}

TEST_F(TxnTest, CommitPublishesWrites) {
  CreateAccounts(5);
  auto txn = mgr_->Begin();
  ASSERT_TRUE(txn->Modify("accounts", 2, 1, Value::Int(250)).ok());
  ASSERT_TRUE(txn->Append("accounts", {Value::Int(5), Value::Int(7), Value::String("new")}).ok());
  ASSERT_TRUE(txn->Delete("accounts", 0).ok());
  ASSERT_TRUE(mgr_->Commit(txn.get()).ok());

  auto snap = mgr_->GetSnapshot("accounts");
  auto rows = VisibleRows(*snap);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0].AsInt(), 1);      // id 0 deleted
  EXPECT_EQ(rows[1][1].AsInt(), 250);    // id 2 modified
  EXPECT_EQ(rows[4][2].AsString(), "new");
}

TEST_F(TxnTest, SnapshotIsolation) {
  CreateAccounts(4);
  auto reader = mgr_->Begin();
  auto view_before = reader->GetView("accounts");
  ASSERT_TRUE(view_before.ok());

  auto writer = mgr_->Begin();
  ASSERT_TRUE(writer->Modify("accounts", 1, 1, Value::Int(999)).ok());
  ASSERT_TRUE(mgr_->Commit(writer.get()).ok());

  // The reader's view must still see the old balance.
  auto rows = VisibleRows(*view_before);
  EXPECT_EQ(rows[1][1].AsInt(), 100);
  // A fresh snapshot sees the new one.
  auto fresh = mgr_->GetSnapshot("accounts");
  EXPECT_EQ(VisibleRows(*fresh)[1][1].AsInt(), 999);
}

TEST_F(TxnTest, ReadYourOwnWrites) {
  CreateAccounts(3);
  auto txn = mgr_->Begin();
  ASSERT_TRUE(txn->Modify("accounts", 0, 1, Value::Int(1)).ok());
  auto view = txn->GetView("accounts");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(VisibleRows(*view)[0][1].AsInt(), 1);
  // Not visible to others before commit.
  auto other = mgr_->GetSnapshot("accounts");
  EXPECT_EQ(VisibleRows(*other)[0][1].AsInt(), 100);
  mgr_->Abort(txn.get());
}

TEST_F(TxnTest, WriteWriteConflictAborts) {
  CreateAccounts(4);
  auto t1 = mgr_->Begin();
  auto t2 = mgr_->Begin();
  ASSERT_TRUE(t1->Modify("accounts", 2, 1, Value::Int(10)).ok());
  ASSERT_TRUE(t2->Modify("accounts", 2, 1, Value::Int(20)).ok());
  ASSERT_TRUE(mgr_->Commit(t1.get()).ok());
  Status s = mgr_->Commit(t2.get());
  EXPECT_TRUE(s.IsConflict()) << s.ToString();
  EXPECT_EQ(mgr_->aborts(), 1u);
  auto snap = mgr_->GetSnapshot("accounts");
  EXPECT_EQ(VisibleRows(*snap)[2][1].AsInt(), 10);  // first committer wins
}

TEST_F(TxnTest, DisjointConcurrentCommitsBothApply) {
  CreateAccounts(6);
  auto t1 = mgr_->Begin();
  auto t2 = mgr_->Begin();
  ASSERT_TRUE(t1->Modify("accounts", 1, 1, Value::Int(11)).ok());
  ASSERT_TRUE(t2->Modify("accounts", 4, 1, Value::Int(44)).ok());
  ASSERT_TRUE(t2->Delete("accounts", 5).ok());
  ASSERT_TRUE(mgr_->Commit(t1.get()).ok());
  ASSERT_TRUE(mgr_->Commit(t2.get()).ok()) << "disjoint rows must not conflict";
  auto rows = VisibleRows(*mgr_->GetSnapshot("accounts"));
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[1][1].AsInt(), 11);
  EXPECT_EQ(rows[4][1].AsInt(), 44);
}

// Regression: commits() / aborts() used to read their counters without
// taking mu_, racing with the counter increments inside Commit(). The reads
// are now locked (TransactionManager::commits/aborts take a MutexLock);
// under TSan the old code makes this test fail.
TEST_F(TxnTest, CommitCounterReadsDoNotRaceWithCommits) {
  constexpr int kWriters = 4;
  constexpr int kCommitsEach = 25;
  CreateAccounts(kWriters * kCommitsEach);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t now = mgr_->commits() + mgr_->aborts();
      EXPECT_GE(now, last);  // monotonic under concurrent committers
      last = now;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kCommitsEach; i++) {
        auto txn = mgr_->Begin();
        // Disjoint row ranges: every commit must succeed.
        int64_t row = w * kCommitsEach + i;
        ASSERT_TRUE(txn->Modify("accounts", row, 1, Value::Int(row)).ok());
        ASSERT_TRUE(mgr_->Commit(txn.get()).ok());
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(mgr_->commits(), static_cast<uint64_t>(kWriters) * kCommitsEach);
  EXPECT_EQ(mgr_->aborts(), 0u);
}

TEST_F(TxnTest, ConcurrentAppendsBothSurvive) {
  CreateAccounts(2);
  auto t1 = mgr_->Begin();
  auto t2 = mgr_->Begin();
  ASSERT_TRUE(t1->Append("accounts", {Value::Int(10), Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(t2->Append("accounts", {Value::Int(20), Value::Int(2), Value::String("b")}).ok());
  ASSERT_TRUE(mgr_->Commit(t1.get()).ok());
  ASSERT_TRUE(mgr_->Commit(t2.get()).ok());
  auto rows = VisibleRows(*mgr_->GetSnapshot("accounts"));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[2][0].AsInt(), 10);
  EXPECT_EQ(rows[3][0].AsInt(), 20);
}

TEST_F(TxnTest, DeleteShiftsConcurrentModifyExactly) {
  CreateAccounts(6);
  auto t1 = mgr_->Begin();
  auto t2 = mgr_->Begin();
  // t1 deletes row 0; t2 modifies visible row 3 (stable sid 3).
  ASSERT_TRUE(t1->Delete("accounts", 0).ok());
  ASSERT_TRUE(t2->Modify("accounts", 3, 1, Value::Int(33)).ok());
  ASSERT_TRUE(mgr_->Commit(t1.get()).ok());
  ASSERT_TRUE(mgr_->Commit(t2.get()).ok());
  auto rows = VisibleRows(*mgr_->GetSnapshot("accounts"));
  ASSERT_EQ(rows.size(), 5u);
  // Stable row id=3 must carry the modification despite the shift.
  EXPECT_EQ(rows[2][0].AsInt(), 3);
  EXPECT_EQ(rows[2][1].AsInt(), 33);
}

TEST_F(TxnTest, WalRecoveryReplaysCommits) {
  CreateAccounts(4);
  auto txn = mgr_->Begin();
  ASSERT_TRUE(txn->Modify("accounts", 1, 1, Value::Int(777)).ok());
  ASSERT_TRUE(txn->Append("accounts", {Value::Int(9), Value::Int(9), Value::String("r")}).ok());
  ASSERT_TRUE(mgr_->Commit(txn.get()).ok());

  // "Crash": reopen without checkpoint. WAL must restore the deltas.
  ReopenManager();
  auto rows = VisibleRows(*mgr_->GetSnapshot("accounts"));
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[1][1].AsInt(), 777);
  EXPECT_EQ(rows[4][2].AsString(), "r");
}

TEST_F(TxnTest, TornWalTailIgnored) {
  CreateAccounts(3);
  auto t1 = mgr_->Begin();
  ASSERT_TRUE(t1->Modify("accounts", 0, 1, Value::Int(5)).ok());
  ASSERT_TRUE(mgr_->Commit(t1.get()).ok());
  auto t2 = mgr_->Begin();
  ASSERT_TRUE(t2->Modify("accounts", 1, 1, Value::Int(6)).ok());
  ASSERT_TRUE(mgr_->Commit(t2.get()).ok());
  mgr_.reset();

  // Tear the last record: truncate a few bytes off the WAL.
  std::string wal = dir_ + "/wal.log";
  auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 5);

  ReopenManager();
  auto rows = VisibleRows(*mgr_->GetSnapshot("accounts"));
  EXPECT_EQ(rows[0][1].AsInt(), 5);    // first commit survived
  EXPECT_EQ(rows[1][1].AsInt(), 100);  // torn second commit rolled back
}

TEST_F(TxnTest, CheckpointMergesAndSurvivesReopen) {
  CreateAccounts(100);
  auto txn = mgr_->Begin();
  // Modify id 50 first, then delete id 10 (order matters: positions shift).
  ASSERT_TRUE(txn->Modify("accounts", 50, 1, Value::Int(5000)).ok());
  ASSERT_TRUE(txn->Delete("accounts", 10).ok());
  ASSERT_TRUE(txn->Append("accounts", {Value::Int(100), Value::Int(1), Value::String("z")}).ok());
  ASSERT_TRUE(mgr_->Commit(txn.get()).ok());
  ASSERT_TRUE(mgr_->Checkpoint().ok());

  // After checkpoint the PDT is empty and the file carries the merge.
  auto snap = mgr_->GetSnapshot("accounts");
  EXPECT_TRUE(snap->deltas == nullptr || snap->deltas->empty());
  EXPECT_EQ(snap->stable->row_count(), 100u);

  ReopenManager();
  auto rows = VisibleRows(*mgr_->GetSnapshot("accounts"));
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows[10][0].AsInt(), 11);  // row 10 gone
  // Row with id 50 now at index 49.
  EXPECT_EQ(rows[49][0].AsInt(), 50);
  EXPECT_EQ(rows[49][1].AsInt(), 5000);
  EXPECT_EQ(rows[99][2].AsString(), "z");
}

TEST_F(TxnTest, CatalogPersistsSchemas) {
  CreateAccounts(3);
  ReopenManager();
  ASSERT_TRUE(mgr_->HasTable("accounts"));
  const TableSchema* schema = mgr_->GetSchema("accounts");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->num_columns(), 3u);
  EXPECT_EQ(schema->column(1).name, "balance");
}

TEST_F(TxnTest, ReadOnlyTxnAlwaysCommits) {
  CreateAccounts(2);
  auto t1 = mgr_->Begin();
  (void)t1->GetView("accounts");
  auto t2 = mgr_->Begin();
  ASSERT_TRUE(t2->Modify("accounts", 0, 1, Value::Int(1)).ok());
  ASSERT_TRUE(mgr_->Commit(t2.get()).ok());
  EXPECT_TRUE(mgr_->Commit(t1.get()).ok());
}

TEST_F(TxnTest, BulkLoadRequiresEmptyTable) {
  CreateAccounts(2);
  Status s = mgr_->BulkLoad("accounts", [](TableWriter*) { return Status::OK(); });
  EXPECT_FALSE(s.ok());
}

TEST_F(TxnTest, UnknownTableErrors) {
  EXPECT_FALSE(mgr_->GetSnapshot("ghost").ok());
  auto txn = mgr_->Begin();
  EXPECT_FALSE(txn->Delete("ghost", 0).ok());
  mgr_->Abort(txn.get());
}

}  // namespace
}  // namespace vwise
